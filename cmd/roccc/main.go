// Command roccc compiles a restricted-C kernel to RTL VHDL, mirroring
// the paper's flow (Fig. 1): it prints the exported data-path function,
// the data-path structure, the generated VHDL files and the Virtex-II
// synthesis report.
//
// Usage:
//
//	roccc -func fir [-o outdir] [-period 5.0] [-unroll 2] [-unrollall] kernel.c
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"roccc"
)

func main() {
	var (
		fname     = flag.String("func", "", "kernel function name (required)")
		outDir    = flag.String("o", "", "directory for generated VHDL (print summary only if empty)")
		period    = flag.Float64("period", 5.0, "target clock period in ns")
		unroll    = flag.Int("unroll", 0, "partial unroll factor for the innermost loop")
		unrollAll = flag.Bool("unrollall", false, "fully unroll all constant-bound loops")
		noOpt     = flag.Bool("noopt", false, "disable CSE/copy-prop/DCE")
		dot       = flag.Bool("dot", false, "print the data-path DOT graph")
		bus       = flag.Int("bus", 1, "memory bus width in elements")
	)
	flag.Parse()
	if *fname == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: roccc -func NAME [flags] kernel.c")
		flag.Usage()
		os.Exit(2)
	}
	// Misused flags exit through usage with a message, never through a
	// downstream panic or a silently degenerate compile: a non-positive
	// period has no achievable clock, a non-positive bus sizes
	// zero-length buffers, and a negative unroll factor is meaningless
	// (0 means "do not partially unroll").
	if *period <= 0 {
		fmt.Fprintf(os.Stderr, "roccc: -period must be a positive clock period in ns (got %v)\n", *period)
		os.Exit(2)
	}
	if *bus < 1 {
		fmt.Fprintf(os.Stderr, "roccc: -bus must be at least 1 element (got %d)\n", *bus)
		os.Exit(2)
	}
	if *unroll < 0 {
		fmt.Fprintf(os.Stderr, "roccc: -unroll must be >= 0 (got %d); use -unrollall for full unrolling\n", *unroll)
		os.Exit(2)
	}
	if *unroll > 0 && *unrollAll {
		fmt.Fprintln(os.Stderr, "roccc: -unroll and -unrollall are mutually exclusive")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	opt := roccc.DefaultOptions()
	opt.PeriodNs = *period
	opt.UnrollFactor = int64(*unroll)
	opt.UnrollAll = *unrollAll
	opt.Optimize = !*noOpt
	res, err := roccc.Compile(string(src), *fname, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== exported data-path function (scalar replacement, Fig. 3/4) ==")
	fmt.Println(res.Kernel.DataPathC())
	fmt.Println()
	fmt.Println("== data path ==")
	fmt.Println(res.Datapath.Summary())
	fmt.Printf("latency %d cycles, est. clock %.0f MHz\n",
		res.Datapath.Latency(), res.Datapath.ClockMHz())
	if *dot {
		fmt.Println(res.Datapath.Dot())
	}
	fmt.Println()
	fmt.Println("== synthesis (Virtex-II xc2v2000-5 model) ==")
	fmt.Println(roccc.Synthesize(res, *bus))
	files, err := roccc.GenerateVHDL(res)
	if err != nil {
		fatal(err)
	}
	if *outDir == "" {
		fmt.Println("== generated files (use -o DIR to write) ==")
		for _, f := range files {
			fmt.Printf("  %s (%d bytes)\n", f.Name, len(f.Content))
		}
		return
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	for _, f := range files {
		path := filepath.Join(*outDir, f.Name)
		if err := os.WriteFile(path, []byte(f.Content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roccc:", err)
	os.Exit(1)
}
