// Command rocccsim compiles a streaming kernel and runs it through the
// full execution model of the paper's Fig. 2 (engine → BRAM → smart
// buffer → pipelined data path → BRAM), verifying the hardware against
// the software (interpreter) semantics on random input data.
//
// With -jobs N it verifies N independently-seeded input streams,
// sharded across -workers goroutines through a netlist.SystemPool —
// the sweep-style workload the batch execution path targets.
//
// Usage:
//
//	rocccsim -func fir [-seed 1] [-bus 1] [-jobs 1] [-workers 0] [-backend interp] kernel.c
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"roccc"
	"roccc/internal/cc"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rocccsim -func NAME [-seed N] [-bus N] [-jobs N] [-workers N] [-backend NAME] kernel.c")
	flag.PrintDefaults()
}

func main() {
	var (
		fname    = flag.String("func", "", "kernel function name (required)")
		seed     = flag.Int64("seed", 1, "random input seed (job i uses seed+i)")
		bus      = flag.Int("bus", 1, "memory bus width in elements")
		jobs     = flag.Int("jobs", 1, "independent input streams to verify")
		workers  = flag.Int("workers", 0, "goroutines sharding the streams (0 = GOMAXPROCS)")
		backendF = flag.String("backend", "interp", "data-path execution backend: interp, threaded or cone")
	)
	flag.Usage = usage
	flag.Parse()
	// Misused flags exit through usage, never through a panic: a
	// non-positive bus would size zero-length buffers, and a
	// non-positive job count has nothing to run.
	if *fname == "" || flag.NArg() != 1 || *bus < 1 || *jobs < 1 {
		usage()
		os.Exit(2)
	}
	backend, err := roccc.ParseBackend(*backendF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocccsim:", err)
		usage()
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	src := string(srcBytes)
	res, err := roccc.Compile(src, *fname, roccc.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	file, err := cc.Parse(src)
	if err != nil {
		fatal(err)
	}
	info, err := cc.Analyze(file)
	if err != nil {
		fatal(err)
	}

	// One job per stream, each with its own deterministic input data.
	batch := make([]roccc.SweepJob, *jobs)
	for j := range batch {
		rng := rand.New(rand.NewSource(*seed + int64(j)))
		inputs := map[string][]int64{}
		for _, w := range res.Kernel.Reads {
			vals := make([]int64, w.Arr.Len())
			for i := range vals {
				vals[i] = w.Arr.Elem.Wrap(rng.Int63n(1 << uint(min(w.Arr.Elem.Bits, 16))))
			}
			inputs[w.Arr.Name] = vals
		}
		batch[j] = roccc.SweepJob{Inputs: inputs}
	}

	pool, err := roccc.NewSystemPool(res, roccc.SystemConfig{BusElems: *bus, Backend: backend}, *workers)
	if err != nil {
		fatal(err)
	}
	defer pool.Close()
	if err := pool.RunBatch(batch); err != nil {
		fatal(err)
	}

	// Verify every stream against the C interpreter.
	mismatches := 0
	for j := range batch {
		ref := cc.NewInterp(info)
		for name, vals := range batch[j].Inputs {
			ref.SetArray(name, vals)
		}
		if _, _, err := ref.Call(*fname); err != nil {
			fatal(err)
		}
		for _, wr := range res.Kernel.Writes {
			hw := batch[j].Outputs[wr.Arr.Name]
			sw := ref.Arrays[wr.Arr.Name]
			for i := range sw {
				if hw[i] != sw[i] {
					if mismatches < 5 {
						fmt.Printf("MISMATCH job %d %s[%d]: hw=%d sw=%d\n", j, wr.Arr.Name, i, hw[i], sw[i])
					}
					mismatches++
				}
			}
		}
	}
	iters := res.Kernel.Nest.TotalIterations()
	if *jobs == 1 {
		fmt.Printf("ran %d iterations in %d cycles (latency %d, initiation interval 1)\n",
			iters, batch[0].Cycles, res.Datapath.Latency())
	} else {
		var cycles int64
		for j := range batch {
			cycles += int64(batch[j].Cycles)
		}
		fmt.Printf("ran %d streams × %d iterations in %d total cycles across %d workers (latency %d, initiation interval 1)\n",
			*jobs, iters, cycles, pool.Workers(), res.Datapath.Latency())
	}
	for _, wr := range res.Kernel.Writes {
		fmt.Printf("output %s: %d elements × %d streams checked\n", wr.Arr.Name, wr.Arr.Len(), *jobs)
	}
	if mismatches == 0 {
		fmt.Println("hardware == software: all outputs bit-identical")
	} else {
		fmt.Printf("%d mismatches\n", mismatches)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rocccsim:", err)
	os.Exit(1)
}
