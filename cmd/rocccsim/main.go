// Command rocccsim compiles a streaming kernel and runs it through the
// full execution model of the paper's Fig. 2 (engine → BRAM → smart
// buffer → pipelined data path → BRAM), verifying the hardware against
// the software (interpreter) semantics on random input data.
//
// Usage:
//
//	rocccsim -func fir [-seed 1] [-bus 1] kernel.c
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"roccc"
	"roccc/internal/cc"
)

func main() {
	var (
		fname = flag.String("func", "", "kernel function name (required)")
		seed  = flag.Int64("seed", 1, "random input seed")
		bus   = flag.Int("bus", 1, "memory bus width in elements")
	)
	flag.Parse()
	if *fname == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rocccsim -func NAME [flags] kernel.c")
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	src := string(srcBytes)
	res, err := roccc.Compile(src, *fname, roccc.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	sys, err := roccc.NewSystem(res, roccc.SystemConfig{BusElems: *bus})
	if err != nil {
		fatal(err)
	}

	// Random input data, shared with the reference interpreter.
	rng := rand.New(rand.NewSource(*seed))
	file, err := cc.Parse(src)
	if err != nil {
		fatal(err)
	}
	info, err := cc.Analyze(file)
	if err != nil {
		fatal(err)
	}
	ref := cc.NewInterp(info)
	inputs := map[string][]int64{}
	for _, w := range res.Kernel.Reads {
		vals := make([]int64, w.Arr.Len())
		for i := range vals {
			vals[i] = w.Arr.Elem.Wrap(rng.Int63n(1 << uint(min(w.Arr.Elem.Bits, 16))))
		}
		inputs[w.Arr.Name] = vals
		if err := sys.LoadInput(w.Arr.Name, vals); err != nil {
			fatal(err)
		}
		ref.SetArray(w.Arr.Name, vals)
	}
	sim, err := sys.Run()
	if err != nil {
		fatal(err)
	}
	_ = sim
	if _, _, err := ref.Call(*fname); err != nil {
		fatal(err)
	}
	fmt.Printf("ran %d iterations in %d cycles (latency %d, initiation interval 1)\n",
		res.Kernel.Nest.TotalIterations(), sys.Cycles(), res.Datapath.Latency())
	mismatches := 0
	for _, wr := range res.Kernel.Writes {
		hw, err := sys.Output(wr.Arr.Name)
		if err != nil {
			fatal(err)
		}
		sw := ref.Arrays[wr.Arr.Name]
		for i := range sw {
			if hw[i] != sw[i] {
				if mismatches < 5 {
					fmt.Printf("MISMATCH %s[%d]: hw=%d sw=%d\n", wr.Arr.Name, i, hw[i], sw[i])
				}
				mismatches++
			}
		}
		fmt.Printf("output %s: %d elements checked\n", wr.Arr.Name, len(sw))
	}
	if mismatches == 0 {
		fmt.Println("hardware == software: all outputs bit-identical")
	} else {
		fmt.Printf("%d mismatches\n", mismatches)
		os.Exit(1)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rocccsim:", err)
	os.Exit(1)
}
