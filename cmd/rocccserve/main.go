// Command rocccserve is the long-lived simulation service: the Table 1
// kernels stay resident behind warm netlist.SystemPools, and clients
// stream input windows in / output windows out over a length-prefixed
// binary TCP protocol (see internal/serve/proto.go for the framing and
// the README for a quickstart). The protocol is v2: one connection
// carries many pipelined requests, and v1 (serial) clients keep
// working unchanged.
//
// Usage:
//
//	rocccserve [-addr :9944] [-workers N] [-max-idle N] [-shards N]
//	           [-metrics :9945] [-max-resident N] [-backend interp]
//
// Kernels compile on first request and stay cached (the compiled system
// plan lives on the kernel itself, so every pooled System shares it).
// With -shards > 1 the process runs a fleet: kernels are
// consistent-hashed across N in-process worker servers behind a
// front-end router with admission control (saturated shards shed with a
// typed Busy fault) and registry hygiene (-max-resident caps warm
// pools per shard, LRU-evicted; pool idle caps autotune from observed
// load). -metrics serves a JSON snapshot of every counter at /metrics.
// SIGINT/SIGTERM drain gracefully: in-flight streams finish, new
// requests are refused, then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"roccc/client"
	"roccc/internal/dp"
	"roccc/internal/fleet"
	"roccc/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":9944", "TCP listen address")
		workers     = flag.Int("workers", 0, "pool shard width per kernel (0 = GOMAXPROCS)")
		maxIdle     = flag.Int("max-idle", 0, "cap on idle pooled Systems per kernel (0 = unbounded)")
		grace       = flag.Duration("grace", 10*time.Second, "drain budget on shutdown")
		backendF    = flag.String("backend", "interp", "data-path execution backend for every registered kernel: interp, threaded or cone")
		shards      = flag.Int("shards", 1, "in-process worker shards behind the front-end router (1 = single server, no router)")
		metricsAddr = flag.String("metrics", "", "HTTP listen address for the /metrics endpoint (empty = disabled)")
		maxResident = flag.Int("max-resident", 0, "cap on kernels with warm pools per shard, LRU-evicted (0 = unbounded; needs -shards)")
		hygiene     = flag.Duration("hygiene", 15*time.Second, "registry-hygiene sweep interval (eviction + idle-cap autotune; needs -shards)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rocccserve: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 0 || *maxIdle < 0 || *grace <= 0 || *shards < 1 || *maxResident < 0 || *hygiene <= 0 {
		fmt.Fprintln(os.Stderr, "rocccserve: -workers, -max-idle and -max-resident must be >= 0 (0 = default), -shards >= 1, -grace and -hygiene positive")
		flag.Usage()
		os.Exit(2)
	}
	if *maxResident > 0 && *shards == 1 {
		fmt.Fprintln(os.Stderr, "rocccserve: -max-resident needs a fleet (-shards > 1); a single server never evicts")
		flag.Usage()
		os.Exit(2)
	}
	backend, err := dp.ParseBackend(*backendF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocccserve:", err)
		flag.Usage()
		os.Exit(2)
	}

	specs := serve.Table1Specs()
	names := make([]string, 0, len(specs))
	for i := range specs {
		specs[i].Config.Backend = backend
		names = append(names, specs[i].Name)
	}
	sort.Strings(names)

	// Topology: a single server registers everything itself; a fleet
	// registers every kernel on every worker shard (the router picks the
	// serving shard by consistent hash, so only that shard ever compiles
	// it) and the front-end server dispatches through the router.
	front := serve.NewServer(*workers)
	front.SetMaxIdle(*maxIdle)
	var router *fleet.Router
	var workersSrvs []*serve.Server
	if *shards > 1 {
		fshards := make([]fleet.Shard, *shards)
		for i := range fshards {
			w := serve.NewServer(*workers)
			w.SetMaxIdle(*maxIdle)
			for _, spec := range specs {
				if err := w.Register(spec); err != nil {
					fatal(err)
				}
			}
			workersSrvs = append(workersSrvs, w)
			fshards[i] = fleet.Shard{Local: w}
		}
		router, err = fleet.NewRouter(fshards)
		if err != nil {
			fatal(err)
		}
		front.SetDispatcher(router)
	} else {
		for _, spec := range specs {
			if err := front.Register(spec); err != nil {
				fatal(err)
			}
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rocccserve: listening on %s (proto v%d)\n", ln.Addr(), serve.ProtoV2)
	fmt.Printf("rocccserve: %d kernels resident across %d shard(s) (lazy-compiled, backend=%v): %v\n",
		len(names), *shards, backend, names)

	// Observability plane: one JSON snapshot of every counter — the
	// front server's wire/connection counters plus, in fleet mode, every
	// shard's kernels, pools and shed counts.
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", serve.FleetMetricsHandler(func() any {
			if router != nil {
				fm := router.Metrics()
				return client.FleetSnapshot{Front: front.Metrics(), Fleet: &fm}
			}
			return front.Metrics()
		}))
		msrv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "rocccserve: metrics endpoint: %v\n", err)
			}
		}()
		defer msrv.Close()
		fmt.Printf("rocccserve: metrics on http://%s/metrics\n", *metricsAddr)
	}

	// Registry hygiene: periodic LRU eviction of cold kernels past the
	// residency cap, and pool idle caps re-derived from each kernel's
	// observed concurrency high-water mark.
	hygieneStop := make(chan struct{})
	if router != nil {
		go func() {
			t := time.NewTicker(*hygiene)
			defer t.Stop()
			for {
				select {
				case <-hygieneStop:
					return
				case <-t.C:
					router.Autotune()
					if *maxResident > 0 {
						if n := router.EvictIdle(*maxResident); n > 0 {
							fmt.Printf("rocccserve: hygiene: evicted %d cold pool(s)\n", n)
						}
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- front.Serve(ln) }()

	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case s := <-sig:
		fmt.Printf("rocccserve: %v — draining (up to %s)\n", s, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := front.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "rocccserve: drain incomplete: %v\n", err)
		}
		<-done
	}
	close(hygieneStop)
	if router != nil {
		router.Close()
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		for _, w := range workersSrvs {
			if err := w.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "rocccserve: shard drain incomplete: %v\n", err)
			}
		}
		cancel()
	}

	report := func(srv *serve.Server, label string) {
		streams, faults := srv.Served()
		if streams == 0 && label != "front" {
			return
		}
		fmt.Printf("rocccserve: %s served %d streams (%d faults)\n", label, streams, faults)
		stats := srv.Stats()
		poolNames := make([]string, 0, len(stats))
		for name := range stats {
			poolNames = append(poolNames, name)
		}
		sort.Strings(poolNames)
		for _, name := range poolNames {
			st := stats[name]
			fmt.Printf("rocccserve: %s pool %-14s built=%d gets=%d puts=%d rejected=%d idle=%d jobs=%d\n",
				label, name, st.Built, st.Gets, st.Puts, st.Rejected, st.Idle, st.Jobs)
		}
	}
	report(front, "front")
	for i, w := range workersSrvs {
		report(w, fmt.Sprintf("shard %d", i))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rocccserve:", err)
	os.Exit(1)
}
