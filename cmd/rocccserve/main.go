// Command rocccserve is the long-lived simulation service: the Table 1
// kernels stay resident behind warm netlist.SystemPools, and clients
// stream input windows in / output windows out over a length-prefixed
// binary TCP protocol (see internal/serve/proto.go for the framing and
// the README for a quickstart). The protocol is v2: one connection
// carries many pipelined requests, and v1 (serial) clients keep
// working unchanged.
//
// Usage:
//
//	rocccserve [-addr :9944] [-workers N] [-max-idle N] [-shards N]
//	           [-metrics :9945] [-max-resident N] [-backend interp]
//	           [-calibrate[=interval]] [-once]
//
// Kernels compile on first request and stay cached (the compiled system
// plan lives on the kernel itself, so every pooled System shares it).
// With -shards > 1 the process runs a fleet: kernels are
// consistent-hashed across N in-process worker servers behind a
// front-end router with admission control (saturated shards shed with a
// typed Busy fault) and registry hygiene (-max-resident caps warm
// pools per shard, LRU-evicted; pool idle caps autotune from observed
// load). -metrics serves a JSON snapshot of every counter at /metrics.
// SIGINT/SIGTERM drain gracefully: in-flight streams finish, new
// requests are refused, then the listener closes.
//
// -calibrate arms backend auto-pick: every kernel is measured on all
// execution backends at first compile and served on the fastest (ties
// keep -backend). With a duration (-calibrate=30s) kernels are also
// re-trialed on that interval — live pool swaps on a changed pick are
// invisible to clients. -calibrate -once runs one calibration pass over
// every registered kernel, prints each verdict plus a cigate-parseable
// summary, and exits without serving (the CI smoke gate).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"roccc/client"
	"roccc/internal/calib"
	"roccc/internal/dp"
	"roccc/internal/fleet"
	"roccc/internal/netlist"
	"roccc/internal/serve"
)

// calibFlag is the -calibrate[=interval] value: bare -calibrate arms
// first-compile calibration only; -calibrate=30s additionally re-trials
// every compiled kernel on that interval.
type calibFlag struct {
	on       bool
	interval time.Duration
}

func (f *calibFlag) String() string {
	switch {
	case !f.on:
		return "false"
	case f.interval > 0:
		return f.interval.String()
	default:
		return "true"
	}
}

// IsBoolFlag lets the flag package accept bare -calibrate (no value).
func (f *calibFlag) IsBoolFlag() bool { return true }

func (f *calibFlag) Set(s string) error {
	switch s {
	case "", "true":
		f.on = true
		return nil
	case "false":
		f.on = false
		f.interval = 0
		return nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return fmt.Errorf("want a boolean or a positive duration, got %q", s)
	}
	f.on = true
	f.interval = d
	return nil
}

func main() {
	var (
		addr        = flag.String("addr", ":9944", "TCP listen address")
		workers     = flag.Int("workers", 0, "pool shard width per kernel (0 = GOMAXPROCS)")
		maxIdle     = flag.Int("max-idle", 0, "cap on idle pooled Systems per kernel (0 = unbounded)")
		grace       = flag.Duration("grace", 10*time.Second, "drain budget on shutdown")
		backendF    = flag.String("backend", "interp", "data-path execution backend for every registered kernel: interp, threaded or cone")
		shards      = flag.Int("shards", 1, "in-process worker shards behind the front-end router (1 = single server, no router)")
		metricsAddr = flag.String("metrics", "", "HTTP listen address for the /metrics endpoint (empty = disabled)")
		maxResident = flag.Int("max-resident", 0, "cap on kernels with warm pools per shard, LRU-evicted (0 = unbounded; needs -shards)")
		hygiene     = flag.Duration("hygiene", 15*time.Second, "registry-hygiene sweep interval (eviction + idle-cap autotune; needs -shards)")
		once        = flag.Bool("once", false, "with -calibrate: run one calibration pass over every kernel, print the verdicts and exit without serving")
		calibrate   calibFlag
	)
	flag.Var(&calibrate, "calibrate", "auto-pick each kernel's execution backend at first compile; with a duration (e.g. -calibrate=30s), also re-trial on that interval")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rocccserve: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 0 || *maxIdle < 0 || *grace <= 0 || *shards < 1 || *maxResident < 0 || *hygiene <= 0 {
		fmt.Fprintln(os.Stderr, "rocccserve: -workers, -max-idle and -max-resident must be >= 0 (0 = default), -shards >= 1, -grace and -hygiene positive")
		flag.Usage()
		os.Exit(2)
	}
	if *maxResident > 0 && *shards == 1 {
		fmt.Fprintln(os.Stderr, "rocccserve: -max-resident needs a fleet (-shards > 1); a single server never evicts")
		flag.Usage()
		os.Exit(2)
	}
	if *once && !calibrate.on {
		fmt.Fprintln(os.Stderr, "rocccserve: -once is a calibration smoke pass; it needs -calibrate")
		flag.Usage()
		os.Exit(2)
	}
	backend, err := dp.ParseBackend(*backendF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocccserve:", err)
		flag.Usage()
		os.Exit(2)
	}

	specs := serve.Table1Specs()
	names := make([]string, 0, len(specs))
	for i := range specs {
		specs[i].Config.Backend = backend
		names = append(names, specs[i].Name)
	}
	sort.Strings(names)

	// Topology: a single server registers everything itself; a fleet
	// registers every kernel on every worker shard (the router picks the
	// serving shard by consistent hash, so only that shard ever compiles
	// it) and the front-end server dispatches through the router.
	front := serve.NewServer(*workers)
	front.SetMaxIdle(*maxIdle)
	var router *fleet.Router
	var workersSrvs []*serve.Server
	if *shards > 1 {
		fshards := make([]fleet.Shard, *shards)
		for i := range fshards {
			w := serve.NewServer(*workers)
			w.SetMaxIdle(*maxIdle)
			for _, spec := range specs {
				if err := w.Register(spec); err != nil {
					fatal(err)
				}
			}
			workersSrvs = append(workersSrvs, w)
			fshards[i] = fleet.Shard{Local: w}
		}
		router, err = fleet.NewRouter(fshards)
		if err != nil {
			fatal(err)
		}
		front.SetDispatcher(router)
	} else {
		for _, spec := range specs {
			if err := front.Register(spec); err != nil {
				fatal(err)
			}
		}
	}

	// -once: one calibration pass over the whole registry — compile,
	// trial, report, exit. The summary line is cigate's Cmd contract.
	// Auto-calibration stays unarmed: the pass trials each kernel itself.
	if *once {
		os.Exit(calibrateOnce(front, router, workersSrvs, specs))
	}

	// Backend calibration: arm first-compile auto-pick everywhere, so a
	// kernel's first pool is already built on the measured winner.
	if calibrate.on {
		if router != nil {
			router.EnableCalibration(calib.Options{})
		} else {
			front.SetAutoCalibrate(true, calib.Options{})
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rocccserve: listening on %s (proto v%d)\n", ln.Addr(), serve.ProtoV2)
	fmt.Printf("rocccserve: %d kernels resident across %d shard(s) (lazy-compiled, backend=%v): %v\n",
		len(names), *shards, backend, names)

	// Observability plane: one JSON snapshot of every counter — the
	// front server's wire/connection counters plus, in fleet mode, every
	// shard's kernels, pools and shed counts.
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", serve.FleetMetricsHandler(func() any {
			if router != nil {
				fm := router.Metrics()
				return client.FleetSnapshot{Front: front.Metrics(), Fleet: &fm}
			}
			return front.Metrics()
		}))
		msrv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "rocccserve: metrics endpoint: %v\n", err)
			}
		}()
		defer msrv.Close()
		fmt.Printf("rocccserve: metrics on http://%s/metrics\n", *metricsAddr)
	}

	// Registry hygiene: periodic LRU eviction of cold kernels past the
	// residency cap, and pool idle caps re-derived from each kernel's
	// observed concurrency high-water mark.
	hygieneStop := make(chan struct{})
	if router != nil {
		go func() {
			t := time.NewTicker(*hygiene)
			defer t.Stop()
			for {
				select {
				case <-hygieneStop:
					return
				case <-t.C:
					router.Autotune()
					if *maxResident > 0 {
						if n := router.EvictIdle(*maxResident); n > 0 {
							fmt.Printf("rocccserve: hygiene: evicted %d cold pool(s)\n", n)
						}
					}
				}
			}
		}()
	}

	// Periodic recalibration (-calibrate=interval): re-trial every
	// compiled kernel; the noise-floor guard keeps incumbents unless a
	// challenger genuinely wins, so steady state swaps nothing.
	if calibrate.interval > 0 {
		go func() {
			t := time.NewTicker(calibrate.interval)
			defer t.Stop()
			for {
				select {
				case <-hygieneStop:
					return
				case <-t.C:
					if router != nil {
						if n, err := router.Calibrate(); err != nil {
							fmt.Fprintf(os.Stderr, "rocccserve: calibrate: %v\n", err)
						} else if n > 0 {
							fmt.Printf("rocccserve: calibrated %d kernel(s)\n", n)
						}
					} else if _, err := front.Calibrate(calib.Options{}); err != nil {
						fmt.Fprintf(os.Stderr, "rocccserve: calibrate: %v\n", err)
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- front.Serve(ln) }()

	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case s := <-sig:
		fmt.Printf("rocccserve: %v — draining (up to %s)\n", s, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := front.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "rocccserve: drain incomplete: %v\n", err)
		}
		<-done
	}
	close(hygieneStop)
	if router != nil {
		router.Close()
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		for _, w := range workersSrvs {
			if err := w.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "rocccserve: shard drain incomplete: %v\n", err)
			}
		}
		cancel()
	}

	report := func(srv *serve.Server, label string) {
		streams, faults := srv.Served()
		if streams == 0 && label != "front" {
			return
		}
		fmt.Printf("rocccserve: %s served %d streams (%d faults)\n", label, streams, faults)
		stats := srv.Stats()
		poolNames := make([]string, 0, len(stats))
		for name := range stats {
			poolNames = append(poolNames, name)
		}
		sort.Strings(poolNames)
		for _, name := range poolNames {
			st := stats[name]
			fmt.Printf("rocccserve: %s pool %-14s built=%d gets=%d puts=%d rejected=%d idle=%d jobs=%d\n",
				label, name, st.Built, st.Gets, st.Puts, st.Rejected, st.Idle, st.Jobs)
		}
	}
	report(front, "front")
	for i, w := range workersSrvs {
		report(w, fmt.Sprintf("shard %d", i))
	}
}

// calibrateOnce compiles and trials every registered kernel — on its
// ring-owner shard in fleet mode, on the front server otherwise — and
// prints one verdict per kernel plus cigate-metric lines and the
// "<n> violations in <s>s" summary the cigate Cmd contract parses.
// Combinational kernels cannot stream and are reported as skipped, not
// violations. Returns the process exit code.
func calibrateOnce(front *serve.Server, router *fleet.Router, workersSrvs []*serve.Server, specs []serve.KernelSpec) int {
	start := time.Now()
	violations, trials, switched, skipped := 0, 0, 0, 0
	for _, spec := range specs {
		target := front
		if router != nil {
			target = workersSrvs[router.ShardFor(spec.Name)]
		}
		res, err := target.CalibrateKernel(spec.Name, calib.Options{})
		switch {
		case errors.Is(err, netlist.ErrCombinational):
			skipped++
			fmt.Printf("rocccserve: calibrate %-15s skipped: combinational (no loop nest)\n", spec.Name)
		case err != nil:
			violations++
			fmt.Printf("rocccserve: calibrate %-15s VIOLATION: %v\n", spec.Name, err)
		default:
			trials++
			if res.Switched {
				switched++
			}
			verdict := "kept"
			if res.Switched {
				verdict = "switched"
			}
			fmt.Printf("rocccserve: calibrate %-15s configured=%s picked=%s (%s)", spec.Name, res.Configured, res.Picked, verdict)
			for _, s := range res.Samples {
				fmt.Printf("  %s=%.0fns", s.Backend, s.NsPerIter)
			}
			fmt.Println()
		}
	}
	fmt.Printf("cigate-metric calib_trials %d\n", trials)
	fmt.Printf("cigate-metric calib_switched %d\n", switched)
	fmt.Printf("cigate-metric calib_skipped %d\n", skipped)
	fmt.Printf("%d violations in %.2fs\n", violations, time.Since(start).Seconds())
	if violations != 0 {
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rocccserve:", err)
	os.Exit(1)
}
