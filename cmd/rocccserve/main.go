// Command rocccserve is the long-lived simulation service: the Table 1
// kernels stay resident behind warm netlist.SystemPools, and clients
// stream input windows in / output windows out over a length-prefixed
// binary TCP protocol (see internal/serve/proto.go for the framing and
// the README for a quickstart).
//
// Usage:
//
//	rocccserve [-addr :9944] [-workers N] [-max-idle N]
//
// Kernels compile on first request and stay cached (the compiled system
// plan lives on the kernel itself, so every pooled System shares it).
// SIGINT/SIGTERM drain gracefully: in-flight streams finish, new
// requests are refused, then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"roccc/internal/dp"
	"roccc/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":9944", "TCP listen address")
		workers  = flag.Int("workers", 0, "pool shard width per kernel (0 = GOMAXPROCS)")
		maxIdle  = flag.Int("max-idle", 0, "cap on idle pooled Systems per kernel (0 = unbounded)")
		grace    = flag.Duration("grace", 10*time.Second, "drain budget on shutdown")
		backendF = flag.String("backend", "interp", "data-path execution backend for every registered kernel: interp, threaded or cone")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rocccserve: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 0 || *maxIdle < 0 || *grace <= 0 {
		fmt.Fprintln(os.Stderr, "rocccserve: -workers and -max-idle must be >= 0 (0 = default), -grace must be positive")
		flag.Usage()
		os.Exit(2)
	}
	backend, err := dp.ParseBackend(*backendF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocccserve:", err)
		flag.Usage()
		os.Exit(2)
	}

	srv := serve.NewServer(*workers)
	srv.SetMaxIdle(*maxIdle)
	names := make([]string, 0, 16)
	for _, spec := range serve.Table1Specs() {
		spec.Config.Backend = backend
		if err := srv.Register(spec); err != nil {
			fatal(err)
		}
		names = append(names, spec.Name)
	}
	sort.Strings(names)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rocccserve: listening on %s\n", ln.Addr())
	fmt.Printf("rocccserve: %d kernels resident (lazy-compiled, backend=%v): %v\n", len(names), backend, names)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case s := <-sig:
		fmt.Printf("rocccserve: %v — draining (up to %s)\n", s, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "rocccserve: drain incomplete: %v\n", err)
		}
		<-done
	}

	streams, faults := srv.Served()
	fmt.Printf("rocccserve: served %d streams (%d faults)\n", streams, faults)
	for name, st := range srv.Stats() {
		fmt.Printf("rocccserve: pool %-14s built=%d gets=%d puts=%d rejected=%d idle=%d jobs=%d\n",
			name, st.Built, st.Gets, st.Puts, st.Rejected, st.Idle, st.Jobs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rocccserve:", err)
	os.Exit(1)
}
