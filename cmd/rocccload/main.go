// Command rocccload is the open-loop load harness for a rocccserve
// fleet: it fires requests at fixed arrival rates (Poisson or uniform
// interarrival) from a single pacing clock — the next arrival never
// waits for the last response, so queueing collapse shows up as tail
// latency instead of being absorbed — and measures every latency from
// the request's scheduled arrival time (coordinated-omission debt is in
// the quantiles, not hidden). Traffic follows a mixed scenario profile:
// a weighted kernel mix over Table 1 + ci/corpus, a planted-fault
// fraction and a rude-disconnect fraction. Load-sheds (the fleet's
// typed Busy fault) are classified as backpressure, separate from
// errors, and /metrics is scraped between steps to correlate latency
// with pool saturation.
//
// Usage:
//
//	rocccload -local 2                  # self-hosted 2-shard fleet, knee search
//	rocccload -addr host:9944 -rate 200 # one fixed-rate step on a live fleet
//	rocccload -local 2 -gate -out LOAD_report.json
//	rocccload -local 2 -calibrate -gate # before/after backend auto-pick knees
//
// Without -rate the harness runs the knee search: step-doubling then
// bisection to the highest rate where p99 stays under -slo with zero
// non-shed errors, then post-knee probes proving the shed rate rises
// monotonically under deepening overload. -calibrate (local fleets
// only) runs the knee search twice — once on the configured backends,
// then again after calibrating every kernel onto its measured fastest
// backend — so the report carries the auto-pick's payoff as a
// before/after pair. -out writes the full machine-readable report;
// -gate evaluates the load gate contract and prints a cigate-parseable
// summary ("N violations in X.XXs") plus cigate-metric lines folded
// into the BENCH trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"roccc/internal/calib"
	"roccc/internal/dp"
	"roccc/internal/load"
)

func main() {
	var (
		addr        = flag.String("addr", "", "rocccserve TCP address (mutually exclusive with -local)")
		metricsURL  = flag.String("metrics", "", "rocccserve /metrics URL to scrape between steps (external fleets)")
		local       = flag.Int("local", 0, "stand up a self-hosted in-process fleet with N shards (0 = use -addr)")
		localSlots  = flag.Int("local-slots", 48, "per-shard concurrent-stream budget for the local fleet (sheds past it)")
		poolWorkers = flag.Int("pool-workers", 0, "SystemPool workers per kernel on local shards (0 = GOMAXPROCS)")

		rate     = flag.Float64("rate", 0, "fixed offered rate in req/s (0 = knee search)")
		duration = flag.Duration("duration", 2*time.Second, "arrival window per rate step")
		distF    = flag.String("dist", "poisson", "arrival process: poisson or uniform")
		conns    = flag.Int("conns", 2, "pipelined client connections")
		slots    = flag.Int("slots", 64, "client-side request slots per connection (0 = unbounded)")
		workers  = flag.Int("workers", 0, "firing goroutines (0 = conns*16)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request deadline")
		seed     = flag.Uint64("seed", 1, "deterministic seed for schedules and the mix draw")

		streams   = flag.Int("streams", 1, "streams per request")
		faultFrac = flag.Float64("fault-frac", 0.05, "fraction of arrivals with a planted divide-by-zero")
		discFrac  = flag.Float64("disc-frac", 0.01, "fraction of arrivals that rudely disconnect mid-request")
		backendF  = flag.String("backend", "interp", "execution backend for every kernel: interp, threaded or cone")
		corpusDir = flag.String("corpus", "ci/corpus", "fuzz-corpus kernels to mix in (empty or missing = Table 1 only)")

		slo       = flag.Duration("slo", 100*time.Millisecond, "p99 ceiling defining the knee")
		startRate = flag.Float64("start-rate", 50, "knee search starting rate (req/s)")
		maxRate   = flag.Float64("max-rate", 1<<20, "knee search ceiling (req/s)")
		bisects   = flag.Int("bisects", 3, "bisection refinements after the doubling phase")

		calibrate = flag.Bool("calibrate", false, "after the knee search, calibrate every kernel's backend and search again (local fleets only; proves the auto-pick's payoff)")

		out       = flag.String("out", "", "write the machine-readable JSON report here")
		gate      = flag.Bool("gate", false, "evaluate the load gate contract and print a cigate summary")
		gateCPU   = flag.Int("gate-min-cpu", 4, "CPU count at or above which the knee rate floor applies")
		gateFloor = flag.Float64("gate-floor", 100, "knee rate floor in req/s (CPU-conditioned; 0 = shape checks only)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rocccload: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	switch {
	case *local == 0 && *addr == "":
		usageErr("one of -addr or -local is required")
	case *local != 0 && *addr != "":
		usageErr("-addr and -local are mutually exclusive")
	case *local < 0 || (*local > 0 && *local < 2):
		usageErr("-local needs at least 2 shards (the router is what sheds)")
	case *rate < 0 || *startRate <= 0 || *maxRate <= 0 || *maxRate < *startRate:
		usageErr("-rate must be >= 0 and -start-rate/-max-rate positive with -max-rate >= -start-rate")
	case *duration <= 0 || *timeout <= 0 || *slo <= 0:
		usageErr("-duration, -timeout and -slo must be positive")
	case *conns <= 0 || *slots < 0 || *workers < 0 || *streams <= 0 || *bisects <= 0:
		usageErr("-conns, -streams and -bisects must be positive; -slots and -workers >= 0 (0 = default)")
	case *localSlots <= 0 || *poolWorkers < 0:
		usageErr("-local-slots must be positive and -pool-workers >= 0")
	case *faultFrac < 0 || *discFrac < 0 || *faultFrac+*discFrac >= 1:
		usageErr("-fault-frac and -disc-frac must be >= 0 and sum below 1")
	case *gate && *rate > 0:
		usageErr("-gate needs the knee search (drop -rate)")
	case *calibrate && *rate > 0:
		usageErr("-calibrate compares knee searches (drop -rate)")
	case *calibrate && *local == 0:
		usageErr("-calibrate needs a -local fleet (external fleets own their calibration via rocccserve -calibrate)")
	case *gateCPU < 1 || *gateFloor < 0:
		usageErr("-gate-min-cpu must be positive and -gate-floor >= 0")
	}
	dist, err := load.ParseDist(*distF)
	if err != nil {
		usageErr(err.Error())
	}
	backend, err := dp.ParseBackend(*backendF)
	if err != nil {
		usageErr(err.Error())
	}

	scenario, err := load.BuildScenario(backend, *corpusDir, *faultFrac, *discFrac, *streams)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rocccload: scenario: %d kernels in the mix, %.0f%% faults, %.0f%% rude disconnects, %d stream(s)/request\n",
		len(scenario.Mix), *faultFrac*100, *discFrac*100, *streams)

	target, mURL := *addr, *metricsURL
	var fleet *load.LocalFleet
	if *local > 0 {
		fleet, err = load.StartLocalFleet(*local, *localSlots, *poolWorkers, scenario.Specs)
		if err != nil {
			fatal(err)
		}
		defer fleet.Close()
		target, mURL = fleet.Addr, fleet.MetricsURL
		fmt.Printf("rocccload: local fleet: %d shards x %d slots at %s (metrics %s)\n",
			*local, *localSlots, target, mURL)
	}

	warmN := *workers
	if warmN == 0 {
		per := *slots
		if per <= 0 {
			per = 64
		}
		warmN = *conns * per
	}
	if warmN > 256 {
		warmN = 256
	}
	if err := load.Warmup(target, scenario, warmN); err != nil {
		fatal(err)
	}

	stepCfg := load.StepConfig{
		Addr:       target,
		MetricsURL: mURL,
		Duration:   *duration,
		Dist:       dist,
		Conns:      *conns,
		Slots:      *slots,
		Workers:    *workers,
		Timeout:    *timeout,
		Seed:       *seed,
		Scenario:   scenario,
	}
	report := &load.Report{
		Addr:    target,
		CPUs:    runtime.NumCPU(),
		Backend: backend.String(),
		Dist:    dist.String(),
		Conns:   *conns, Slots: *slots, Workers: *workers,
		StepSec:            duration.Seconds(),
		StreamsPerRequest:  *streams,
		FaultFraction:      *faultFrac,
		DisconnectFraction: *discFrac,
		Mix:                scenario.Mix,
	}

	begin := time.Now()
	if *rate > 0 {
		stepCfg.Rate = *rate
		res, err := load.RunStep(stepCfg)
		if err != nil {
			fatal(err)
		}
		report.Knee = &load.KneeResult{SLOMs: float64(*slo) / 1e6, Steps: []load.StepResult{*res}}
		blob, _ := json.MarshalIndent(res, "", "  ")
		fmt.Printf("rocccload: fixed-rate step:\n%s\n", blob)
	} else {
		kr, err := load.FindKnee(load.KneeConfig{
			Step:      stepCfg,
			StartRate: *startRate,
			MaxRate:   *maxRate,
			SLO:       *slo,
			Bisects:   *bisects,
			Log: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		if kr != nil {
			report.Knee = kr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("rocccload: %s\n", kr)

		if *calibrate {
			// Before/after pair: the search above measured the configured
			// backends; repick every kernel from live trials, then search
			// again on the auto-picked fleet. Same schedule seed, so the
			// only variable between the two knees is the backend choice.
			trials, err := fleet.Calibrate(calib.Options{})
			if err != nil {
				fatal(err)
			}
			report.CalibTrials = trials
			fmt.Printf("rocccload: calibrated %d kernel(s); re-running the knee search on the auto-picked fleet\n", trials)
			kc, err := load.FindKnee(load.KneeConfig{
				Step:      stepCfg,
				StartRate: *startRate,
				MaxRate:   *maxRate,
				SLO:       *slo,
				Bisects:   *bisects,
				Log: func(format string, args ...any) {
					fmt.Printf(format+"\n", args...)
				},
			})
			if kc != nil {
				report.KneeCalibrated = kc
			}
			if err != nil {
				fatal(err)
			}
			fmt.Printf("rocccload: calibrated: %s\n", kc)
		}
	}
	elapsed := time.Since(begin)

	var violations []string
	if fleet != nil {
		if err := fleet.PoolsBalanced(10 * time.Second); err != nil {
			violations = append(violations, err.Error())
		}
	}

	if *out != "" {
		if err := report.WriteFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("rocccload: wrote %s\n", *out)
	}

	if *gate {
		violations = append(violations, report.Gate(*gateCPU, *gateFloor)...)
		for _, v := range violations {
			fmt.Printf("rocccload: VIOLATION: %s\n", v)
		}
		// Machine-readable metric lines: cigate folds these into the
		// BENCH_<sha>.json trajectory next to the gate verdicts.
		if report.Knee != nil {
			fmt.Printf("cigate-metric knee_rps %.0f\n", report.Knee.KneeRPS)
			fmt.Printf("cigate-metric p99_at_knee_ms %.3f\n", p99AtKnee(report.Knee))
			fmt.Printf("cigate-metric shed_monotonic %d\n", boolMetric(report.Knee.ShedMonotonic))
			fmt.Printf("cigate-metric load_steps %d\n", len(report.Knee.Steps))
		}
		if report.KneeCalibrated != nil {
			fmt.Printf("cigate-metric knee_rps_uncalibrated %.0f\n", report.Knee.KneeRPS)
			fmt.Printf("cigate-metric knee_rps_calibrated %.0f\n", report.KneeCalibrated.KneeRPS)
			fmt.Printf("cigate-metric calib_trials %d\n", report.CalibTrials)
		}
		fmt.Printf("rocccload: %d violations in %.2fs\n", len(violations), elapsed.Seconds())
		if len(violations) > 0 {
			os.Exit(1)
		}
		return
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "rocccload: %s\n", v)
		}
		os.Exit(1)
	}
}

// p99AtKnee returns the knee-rate step's p99 (the last step run exactly
// at the knee rate; 0 when no knee was found).
func p99AtKnee(kr *load.KneeResult) float64 {
	p99 := 0.0
	for _, s := range kr.Steps {
		if s.Rate == kr.KneeRPS {
			p99 = s.P99Ms
		}
	}
	return p99
}

func boolMetric(b bool) int {
	if b {
		return 1
	}
	return 0
}

func usageErr(msg string) {
	fmt.Fprintln(os.Stderr, "rocccload:", msg)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rocccload:", err)
	os.Exit(1)
}
