// Command cigate is the CI benchmark gate runner: it replaces the old
// awk/shell pipelines in ci.yml with one Go program that runs the
// benchmarks itself, parses their output, evaluates the checked-in
// gates (ci/gates.json) and prints a pass/fail table. With -json it
// also writes a machine-readable BENCH_<sha>.json trajectory file
// (ns/op, allocs/op, speedups) for CI to upload as an artifact, so
// future changes have a perf baseline to compare against.
//
// Usage:
//
//	cigate [-gates ci/gates.json] [-json out.json] [-baseline ci/baseline/BENCH_seed.json] [-cpus N] [-v]
//
// -baseline diffs the fresh results against a committed trajectory file
// (ns/op and allocs/op per benchmark), so every CI run shows where the
// numbers stand relative to the checked-in baseline — informational,
// never gating: absolute ns/op is runner-dependent, which is exactly
// why the gates themselves are ratios and alloc counts.
//
// Exit status is nonzero if any gate fails or any gated benchmark is
// missing from the output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// GateFile is the checked-in gate configuration.
type GateFile struct {
	// Pkg is the package directory the benchmarks live in (default ".").
	Pkg string `json:"pkg"`
	// Groups each run one `go test -bench` invocation.
	Groups []Group `json:"groups"`
}

// Group is one benchmark run (or one command run) and the gates
// evaluated on it.
type Group struct {
	Name string `json:"name"`
	// Bench is the -bench regexp; Benchtime the -benchtime value
	// (iteration counts like "200x" keep CI deterministic).
	Bench     string `json:"bench"`
	Benchtime string `json:"benchtime"`
	// Cmd, when set, replaces the benchmark invocation with an
	// arbitrary command (argv form). The command's output must carry a
	// summary line with "<n> violations" and a "<x.xx>s" elapsed time —
	// cmd/rocccvet's format — which MaxViolations/MaxSeconds gate.
	Cmd   []string `json:"cmd,omitempty"`
	Gates []Gate   `json:"gates"`
}

// Gate is one assertion over a benchmark's results. Exactly one of the
// assertion families applies: MaxAllocs/MaxNsOp bound the benchmark
// itself; Baseline+Speedups require bench to beat baseline by a
// CPU-count-conditional factor.
type Gate struct {
	// Bench is the exact benchmark name, without the -N GOMAXPROCS
	// suffix (e.g. "BenchmarkBatchSweep/sharded").
	Bench string `json:"bench"`
	// MaxAllocs caps allocs/op (steady-state zero-alloc gates use 0).
	MaxAllocs *int64 `json:"max_allocs,omitempty"`
	// MaxNsOp caps ns/op absolutely (rarely useful on shared runners).
	MaxNsOp *float64 `json:"max_ns_op,omitempty"`
	// Baseline names the benchmark to compare against; the speedup is
	// baseline ns/op divided by bench ns/op.
	Baseline string `json:"baseline,omitempty"`
	// Speedups are CPU-conditioned floors: the rule with the largest
	// MinCPUs <= the runner's CPU count applies.
	Speedups []SpeedupRule `json:"speedups,omitempty"`
	// MaxViolations caps the violation count a Cmd group's summary
	// reports (static verification gates use 0).
	MaxViolations *int64 `json:"max_violations,omitempty"`
	// MaxSeconds caps the elapsed seconds the Cmd summary reports.
	MaxSeconds *float64 `json:"max_seconds,omitempty"`
}

// SpeedupRule is one CPU-count-conditional speedup floor.
type SpeedupRule struct {
	MinCPUs int     `json:"min_cpus"`
	Min     float64 `json:"min"`
}

// Result is one parsed benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsOp    float64            `json:"ns_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Verdict is one evaluated gate.
type Verdict struct {
	Group    string  `json:"group"`
	Bench    string  `json:"bench"`
	Check    string  `json:"check"`
	Observed float64 `json:"observed"`
	Bound    float64 `json:"bound"`
	OK       bool    `json:"ok"`
	Detail   string  `json:"detail,omitempty"`
}

// Trajectory is the -json artifact: one CI run's full benchmark state.
type Trajectory struct {
	SHA     string    `json:"sha"`
	Date    time.Time `json:"date"`
	Go      string    `json:"go"`
	CPUs    int       `json:"cpus"`
	Results []Result  `json:"results"`
	Gates   []Verdict `json:"gates"`
}

func main() {
	var (
		gatesPath = flag.String("gates", "ci/gates.json", "gate configuration file")
		jsonOut   = flag.String("json", "", "write a BENCH trajectory JSON to this path ('auto' derives BENCH_<sha>.json)")
		baseline  = flag.String("baseline", "", "committed BENCH_*.json trajectory to diff the fresh results against (informational)")
		cpus      = flag.Int("cpus", runtime.NumCPU(), "CPU count used to select speedup rules")
		group     = flag.String("group", "", "run only the named gate group (default: all)")
		verbose   = flag.Bool("v", false, "echo raw benchmark output")
	)
	flag.Parse()

	raw, err := os.ReadFile(*gatesPath)
	if err != nil {
		fatal(err)
	}
	var gf GateFile
	if err := json.Unmarshal(raw, &gf); err != nil {
		fatal(fmt.Errorf("%s: %w", *gatesPath, err))
	}
	if gf.Pkg == "" {
		gf.Pkg = "."
	}
	if *group != "" {
		var kept []Group
		for _, g := range gf.Groups {
			if g.Name == *group {
				kept = append(kept, g)
			}
		}
		if len(kept) == 0 {
			fatal(fmt.Errorf("no gate group named %q in %s", *group, *gatesPath))
		}
		gf.Groups = kept
	}

	results := map[string]Result{}
	var ordered []Result
	var cmdVerdicts []Verdict
	for _, g := range gf.Groups {
		if len(g.Cmd) > 0 {
			vs, r, out := runCmdGroup(g)
			if *verbose || !allOK(vs) {
				fmt.Print(out)
			}
			cmdVerdicts = append(cmdVerdicts, vs...)
			results[r.Name] = r
			ordered = append(ordered, r)
			continue
		}
		out, err := runGroup(gf.Pkg, g)
		if *verbose || err != nil {
			fmt.Print(out)
		}
		if err != nil {
			fatal(fmt.Errorf("group %s: %w", g.Name, err))
		}
		for _, r := range parseBench(out) {
			results[r.Name] = r
			ordered = append(ordered, r)
		}
	}

	verdicts := append(evaluate(gf, results, *cpus), cmdVerdicts...)
	fmt.Print(formatVerdicts(verdicts, *cpus))

	if *baseline != "" {
		// The diff is informational, never gating — a missing or stale
		// baseline file must not fail a run whose gates all passed.
		if base, err := loadTrajectory(*baseline); err != nil {
			fmt.Fprintf(os.Stderr, "cigate: baseline diff skipped: %v\n", err)
		} else {
			fmt.Print(formatBaselineDiff(base, ordered))
		}
	}

	failed := false
	for _, v := range verdicts {
		if !v.OK {
			failed = true
		}
	}

	if *jsonOut != "" {
		path := *jsonOut
		sha := headSHA()
		if path == "auto" {
			path = fmt.Sprintf("BENCH_%s.json", sha)
		}
		traj := Trajectory{
			SHA:     sha,
			Date:    time.Now().UTC(),
			Go:      runtime.Version(),
			CPUs:    *cpus,
			Results: ordered,
			Gates:   verdicts,
		}
		blob, err := json.MarshalIndent(traj, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("cigate: wrote %s\n", path)
	}

	if failed {
		os.Exit(1)
	}
}

// runGroup executes one `go test -bench` invocation and returns its
// combined output.
func runGroup(pkg string, g Group) (string, error) {
	bt := g.Benchtime
	if bt == "" {
		bt = "100x"
	}
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", g.Bench,
		"-benchtime", bt, "-benchmem", pkg)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// cmdSummary matches a verifier summary line: "... <n> violations ...
// <x.xx>s" — cmd/rocccvet's last line. The elapsed time is the tool's
// self-reported one, so the gate is independent of go-run build time.
var cmdSummary = regexp.MustCompile(`(\d+) violations.*?([0-9]+(?:\.[0-9]+)?)s`)

// runCmdGroup executes one Cmd group, parses its violation summary and
// evaluates the group's MaxViolations/MaxSeconds gates. A command that
// exits nonzero is not fatal by itself: the summary decides the
// verdicts, and a run with no parseable summary fails every gate.
func runCmdGroup(g Group) ([]Verdict, Result, string) {
	cmd := exec.Command(g.Cmd[0], g.Cmd[1:]...)
	outBytes, runErr := cmd.CombinedOutput()
	out := string(outBytes)

	var violations float64
	var seconds float64
	found := false
	extra := map[string]float64{}
	for _, line := range strings.Split(out, "\n") {
		if m := cmdSummary.FindStringSubmatch(line); m != nil {
			violations, _ = strconv.ParseFloat(m[1], 64)
			seconds, _ = strconv.ParseFloat(m[2], 64)
			found = true
		}
		// Tools may report extra metrics as "cigate-metric <name> <value>"
		// lines (rocccload's knee_rps etc.); they ride along into the
		// trajectory next to the violation counts.
		if f := strings.Fields(line); len(f) == 3 && f[0] == "cigate-metric" {
			if v, err := strconv.ParseFloat(f[2], 64); err == nil {
				extra[f[1]] = v
			}
		}
	}

	var vs []Verdict
	for _, gate := range g.Gates {
		bench := gate.Bench
		if bench == "" {
			bench = strings.Join(g.Cmd, " ")
		}
		if gate.MaxViolations != nil {
			v := Verdict{Group: g.Name, Bench: bench, Check: "violations",
				Observed: violations, Bound: float64(*gate.MaxViolations)}
			v.OK = found && int64(violations) <= *gate.MaxViolations
			if !found {
				v.Detail = noSummaryDetail(runErr)
			}
			vs = append(vs, v)
		}
		if gate.MaxSeconds != nil {
			v := Verdict{Group: g.Name, Bench: bench, Check: "seconds",
				Observed: seconds, Bound: *gate.MaxSeconds}
			v.OK = found && seconds <= *gate.MaxSeconds
			if !found {
				v.Detail = noSummaryDetail(runErr)
			}
			vs = append(vs, v)
		}
	}
	r := Result{Name: "cmd:" + g.Name,
		Metrics: map[string]float64{"violations": violations, "seconds": seconds}}
	for k, v := range extra {
		r.Metrics[k] = v
	}
	return vs, r, out
}

func noSummaryDetail(runErr error) string {
	if runErr != nil {
		return fmt.Sprintf("no violations summary in output (%v)", runErr)
	}
	return "no violations summary in output"
}

func allOK(vs []Verdict) bool {
	for _, v := range vs {
		if !v.OK {
			return false
		}
	}
	return true
}

// benchLine matches one `go test -bench` result line.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parseBench extracts benchmark results from `go test -bench` output.
// Metric pairs after the iteration count are "<value> <unit>"; ns/op is
// promoted to its own field, everything else (allocs/op, B/op, custom
// b.ReportMetric units) lands in Metrics.
func parseBench(out string) []Result {
	var results []Result
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: m[1], Iters: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				r.NsOp = v
			} else {
				r.Metrics[unit] = v
			}
		}
		results = append(results, r)
	}
	return results
}

// pickSpeedup selects the floor whose MinCPUs condition is the tightest
// satisfied one.
func pickSpeedup(rules []SpeedupRule, cpus int) (SpeedupRule, bool) {
	best, found := SpeedupRule{MinCPUs: -1}, false
	for _, r := range rules {
		if cpus >= r.MinCPUs && r.MinCPUs > best.MinCPUs {
			best, found = r, true
		}
	}
	return best, found
}

// evaluate turns parsed results into gate verdicts.
func evaluate(gf GateFile, results map[string]Result, cpus int) []Verdict {
	var out []Verdict
	for _, g := range gf.Groups {
		if len(g.Cmd) > 0 {
			continue // gated by runCmdGroup
		}
		for _, gate := range g.Gates {
			r, ok := results[gate.Bench]
			if !ok {
				out = append(out, Verdict{Group: g.Name, Bench: gate.Bench,
					Check: "present", Detail: "benchmark missing from output"})
				continue
			}
			if gate.MaxAllocs != nil {
				allocs, has := r.Metrics["allocs/op"]
				v := Verdict{Group: g.Name, Bench: gate.Bench, Check: "allocs/op",
					Observed: allocs, Bound: float64(*gate.MaxAllocs)}
				v.OK = has && int64(allocs) <= *gate.MaxAllocs
				if !has {
					v.Detail = "allocs/op missing (run with -benchmem)"
				}
				out = append(out, v)
			}
			if gate.MaxNsOp != nil {
				out = append(out, Verdict{Group: g.Name, Bench: gate.Bench,
					Check: "ns/op", Observed: r.NsOp, Bound: *gate.MaxNsOp,
					OK: r.NsOp <= *gate.MaxNsOp})
			}
			if gate.Baseline != "" {
				base, baseOK := results[gate.Baseline]
				rule, ruleOK := pickSpeedup(gate.Speedups, cpus)
				v := Verdict{Group: g.Name, Bench: gate.Bench, Check: "speedup"}
				switch {
				case !baseOK:
					v.Detail = fmt.Sprintf("baseline %s missing from output", gate.Baseline)
				case !ruleOK:
					v.Detail = fmt.Sprintf("no speedup rule covers %d CPUs", cpus)
				case r.NsOp <= 0:
					v.Detail = "ns/op is zero"
				default:
					v.Observed = base.NsOp / r.NsOp
					v.Bound = rule.Min
					v.OK = v.Observed >= rule.Min
					v.Detail = fmt.Sprintf("vs %s (floor for >=%d CPUs)", gate.Baseline, rule.MinCPUs)
				}
				out = append(out, v)
			}
		}
	}
	return out
}

// formatVerdicts renders the pass/fail table.
func formatVerdicts(vs []Verdict, cpus int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cigate: %d gates on %d CPUs\n", len(vs), cpus)
	fmt.Fprintf(&b, "%-6s %-10s %-45s %-10s %12s %12s  %s\n",
		"result", "group", "benchmark", "check", "observed", "bound", "detail")
	for _, v := range vs {
		status := "PASS"
		if !v.OK {
			status = "FAIL"
		}
		obs, bound := trimFloat(v.Observed), trimFloat(v.Bound)
		fmt.Fprintf(&b, "%-6s %-10s %-45s %-10s %12s %12s  %s\n",
			status, v.Group, v.Bench, v.Check, obs, bound, v.Detail)
	}
	return b.String()
}

func trimFloat(f float64) string {
	s := strconv.FormatFloat(f, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// loadTrajectory reads a committed BENCH_*.json file.
func loadTrajectory(path string) (*Trajectory, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Trajectory
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &t, nil
}

// formatBaselineDiff renders the perf trajectory: fresh results against
// a committed baseline, benchmark by benchmark. The ratio column is
// baseline ns/op over fresh ns/op (>1 means faster now); alloc deltas
// surface regressions the ns columns can hide. Benchmarks on one side
// only are listed so renames and new meters stay visible in review.
func formatBaselineDiff(base *Trajectory, fresh []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cigate: trajectory vs baseline %s (%s, %d CPUs)\n",
		base.SHA, base.Date.Format("2006-01-02"), base.CPUs)
	fmt.Fprintf(&b, "%-50s %12s %12s %8s %9s\n",
		"benchmark", "base ns/op", "now ns/op", "ratio", "allocs")
	baseBy := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	seen := map[string]bool{}
	for _, r := range fresh {
		seen[r.Name] = true
		br, ok := baseBy[r.Name]
		if !ok {
			fmt.Fprintf(&b, "%-50s %12s %12s %8s %9s\n",
				r.Name, "-", trimFloat(r.NsOp), "new", trimFloat(r.Metrics["allocs/op"]))
			continue
		}
		ratio := "-"
		if r.NsOp > 0 && br.NsOp > 0 {
			ratio = trimFloat(br.NsOp/r.NsOp) + "x"
		}
		fmt.Fprintf(&b, "%-50s %12s %12s %8s %9s\n",
			r.Name, trimFloat(br.NsOp), trimFloat(r.NsOp), ratio,
			allocDelta(br.Metrics["allocs/op"], r.Metrics["allocs/op"]))
	}
	for _, r := range base.Results {
		if !seen[r.Name] {
			fmt.Fprintf(&b, "%-50s %12s %12s %8s %9s\n", r.Name, trimFloat(r.NsOp), "-", "gone", "")
		}
	}
	return b.String()
}

// allocDelta renders an allocs/op transition compactly ("0", "3→0").
func allocDelta(base, now float64) string {
	if base == now {
		return trimFloat(now)
	}
	return trimFloat(base) + "→" + trimFloat(now)
}

// headSHA resolves the commit being gated: GITHUB_SHA in CI, git
// rev-parse locally, "unknown" without either.
func headSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cigate:", err)
	os.Exit(1)
}
