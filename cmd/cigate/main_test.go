package main

import (
	"os"
	"strings"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

const sampleOutput = `
goos: linux
goarch: amd64
pkg: roccc
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig2ExecutionModel-8         	     200	      4400 ns/op	        10.29 cycles/output	       0 B/op	       0 allocs/op
BenchmarkBatchSweep/serial-8          	     100	    171000 ns/op	     152 B/op	       3 allocs/op
BenchmarkBatchSweep/sharded-8         	     100	     71250 ns/op	       0 B/op	       0 allocs/op
BenchmarkServeThroughput/inproc       	     200	      5367 ns/op	       0 B/op	       0 allocs/op
BenchmarkServeThroughput/tcp-serial-2 	     200	     33800 ns/op	    1460 B/op	      17 allocs/op
BenchmarkServeThroughput/tcp-concurrent-2 	     200	     26929 ns/op	    1526 B/op	      17 allocs/op
PASS
ok  	roccc	12.3s
`

func TestParseBench(t *testing.T) {
	rs := parseBench(sampleOutput)
	if len(rs) != 6 {
		t.Fatalf("parsed %d results, want 6", len(rs))
	}
	byName := map[string]Result{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	fig2, ok := byName["BenchmarkFig2ExecutionModel"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix was not stripped")
	}
	if fig2.NsOp != 4400 || fig2.Iters != 200 {
		t.Fatalf("fig2 = %+v", fig2)
	}
	if fig2.Metrics["allocs/op"] != 0 || fig2.Metrics["cycles/output"] != 10.29 {
		t.Fatalf("fig2 metrics = %+v", fig2.Metrics)
	}
	if byName["BenchmarkServeThroughput/tcp-serial"].Metrics["allocs/op"] != 17 {
		t.Fatal("sub-benchmark with suffix not parsed")
	}
	// A name without suffix parses too.
	if byName["BenchmarkServeThroughput/inproc"].NsOp != 5367 {
		t.Fatal("suffix-less benchmark not parsed")
	}
}

func gateFixture() GateFile {
	zero := int64(0)
	return GateFile{Groups: []Group{
		{
			Name: "alloc",
			Gates: []Gate{
				{Bench: "BenchmarkFig2ExecutionModel", MaxAllocs: &zero},
				{Bench: "BenchmarkBatchSweep/sharded", MaxAllocs: &zero},
				{Bench: "BenchmarkServeThroughput/tcp-serial", MaxAllocs: &zero}, // must fail: 17
			},
		},
		{
			Name: "speedup",
			Gates: []Gate{
				{Bench: "BenchmarkBatchSweep/sharded", Baseline: "BenchmarkBatchSweep/serial",
					Speedups: []SpeedupRule{{MinCPUs: 4, Min: 2.0}, {MinCPUs: 2, Min: 1.2}, {MinCPUs: 0, Min: 0.7}}},
				{Bench: "BenchmarkMissing", MaxAllocs: &zero},
			},
		},
	}}
}

func TestEvaluateGates(t *testing.T) {
	results := map[string]Result{}
	for _, r := range parseBench(sampleOutput) {
		results[r.Name] = r
	}
	// On 8 CPUs the 2.0x rule applies: 171000/71250 = 2.4x passes.
	vs := evaluate(gateFixture(), results, 8)
	if len(vs) != 5 {
		t.Fatalf("verdicts = %d, want 5", len(vs))
	}
	get := func(bench, check string) Verdict {
		for _, v := range vs {
			if v.Bench == bench && v.Check == check {
				return v
			}
		}
		t.Fatalf("no verdict for %s %s", bench, check)
		return Verdict{}
	}
	if v := get("BenchmarkFig2ExecutionModel", "allocs/op"); !v.OK {
		t.Errorf("fig2 alloc gate failed: %+v", v)
	}
	if v := get("BenchmarkServeThroughput/tcp-serial", "allocs/op"); v.OK || v.Observed != 17 {
		t.Errorf("tcp-serial alloc gate should fail with 17: %+v", v)
	}
	if v := get("BenchmarkBatchSweep/sharded", "speedup"); !v.OK || v.Bound != 2.0 || v.Observed < 2.3 {
		t.Errorf("speedup gate on 8 CPUs: %+v", v)
	}
	if v := get("BenchmarkMissing", "present"); v.OK {
		t.Errorf("missing benchmark must fail: %+v", v)
	}

	// On 1 CPU the 0.7x floor applies instead.
	vs1 := evaluate(gateFixture(), results, 1)
	for _, v := range vs1 {
		if v.Check == "speedup" && v.Bound != 0.7 {
			t.Errorf("1-CPU speedup floor = %v, want 0.7", v.Bound)
		}
	}

	out := formatVerdicts(vs, 8)
	for _, want := range []string{"PASS", "FAIL", "speedup", "allocs/op"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatBaselineDiff(t *testing.T) {
	base := &Trajectory{
		SHA:  "seed00000000",
		CPUs: 8,
		Results: []Result{
			{Name: "BenchmarkFig2ExecutionModel", NsOp: 4400, Metrics: map[string]float64{"allocs/op": 0}},
			{Name: "BenchmarkOld", NsOp: 100, Metrics: map[string]float64{}},
			{Name: "BenchmarkLeaky", NsOp: 50, Metrics: map[string]float64{"allocs/op": 3}},
		},
	}
	fresh := []Result{
		{Name: "BenchmarkFig2ExecutionModel", NsOp: 2200, Metrics: map[string]float64{"allocs/op": 0}},
		{Name: "BenchmarkLeaky", NsOp: 50, Metrics: map[string]float64{"allocs/op": 0}},
		{Name: "BenchmarkSysRun/fir4k-streak", NsOp: 275000, Metrics: map[string]float64{"allocs/op": 0}},
	}
	out := formatBaselineDiff(base, fresh)
	for _, want := range []string{
		"seed00000000",
		"2x",   // 4400/2200: the headline speedup is visible in review
		"new",  // fresh benchmark absent from the baseline
		"gone", // baseline benchmark that disappeared
		"3→0",  // alloc transition
	} {
		if !strings.Contains(out, want) {
			t.Errorf("baseline diff missing %q:\n%s", want, out)
		}
	}
}

func TestLoadTrajectoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/BENCH_test.json"
	blob := `{"sha":"abc","date":"2026-07-26T00:00:00Z","go":"go1.24","cpus":2,
		"results":[{"name":"BenchmarkX","iters":10,"ns_op":123.5,"metrics":{"allocs/op":1}}]}`
	if err := writeFile(path, blob); err != nil {
		t.Fatal(err)
	}
	tr, err := loadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SHA != "abc" || len(tr.Results) != 1 || tr.Results[0].NsOp != 123.5 {
		t.Fatalf("trajectory = %+v", tr)
	}
	if _, err := loadTrajectory(dir + "/missing.json"); err == nil {
		t.Fatal("missing baseline must error")
	}
}

func TestPickSpeedup(t *testing.T) {
	rules := []SpeedupRule{{MinCPUs: 4, Min: 2.0}, {MinCPUs: 2, Min: 1.2}, {MinCPUs: 0, Min: 0.7}}
	for cpus, want := range map[int]float64{1: 0.7, 2: 1.2, 3: 1.2, 4: 2.0, 64: 2.0} {
		r, ok := pickSpeedup(rules, cpus)
		if !ok || r.Min != want {
			t.Errorf("cpus=%d: rule %+v ok=%v, want floor %v", cpus, r, ok, want)
		}
	}
	if _, ok := pickSpeedup([]SpeedupRule{{MinCPUs: 4, Min: 2}}, 2); ok {
		t.Error("uncovered CPU count must report no rule")
	}
}

func TestRunCmdGroupParsesSummary(t *testing.T) {
	zero := int64(0)
	five := 5.0
	g := Group{
		Name: "static",
		Cmd:  []string{"echo", "rocccvet: 45 kernel-backend pairs, 0 violations, 0 broken, 0.02s"},
		Gates: []Gate{
			{Bench: "rocccvet", MaxViolations: &zero, MaxSeconds: &five},
		},
	}
	vs, r, _ := runCmdGroup(g)
	if len(vs) != 2 {
		t.Fatalf("got %d verdicts, want 2", len(vs))
	}
	for _, v := range vs {
		if !v.OK {
			t.Errorf("%s gate failed: %+v", v.Check, v)
		}
	}
	if r.Name != "cmd:static" || r.Metrics["violations"] != 0 || r.Metrics["seconds"] != 0.02 {
		t.Errorf("bad trajectory result: %+v", r)
	}
}

func TestRunCmdGroupFailsOnViolations(t *testing.T) {
	zero := int64(0)
	g := Group{
		Name:  "static",
		Cmd:   []string{"echo", "rocccvet: 45 kernel-backend pairs, 3 violations, 0 broken, 0.10s"},
		Gates: []Gate{{Bench: "rocccvet", MaxViolations: &zero}},
	}
	vs, _, _ := runCmdGroup(g)
	if len(vs) != 1 || vs[0].OK {
		t.Fatalf("3 violations against a 0 bound must fail: %+v", vs)
	}
	if vs[0].Observed != 3 {
		t.Errorf("observed = %v, want 3", vs[0].Observed)
	}
}

func TestRunCmdGroupFailsWithoutSummary(t *testing.T) {
	zero := int64(0)
	five := 5.0
	g := Group{
		Name:  "static",
		Cmd:   []string{"echo", "no summary here"},
		Gates: []Gate{{Bench: "rocccvet", MaxViolations: &zero, MaxSeconds: &five}},
	}
	vs, _, _ := runCmdGroup(g)
	if len(vs) != 2 {
		t.Fatalf("got %d verdicts, want 2", len(vs))
	}
	for _, v := range vs {
		if v.OK {
			t.Errorf("gate %s passed without a summary line", v.Check)
		}
		if !strings.Contains(v.Detail, "no violations summary") {
			t.Errorf("gate %s detail = %q", v.Check, v.Detail)
		}
	}
}

func TestRunCmdGroupSecondsBound(t *testing.T) {
	limit := 0.01
	g := Group{
		Name:  "static",
		Cmd:   []string{"echo", "rocccvet: 45 kernel-backend pairs, 0 violations, 0 broken, 4.20s"},
		Gates: []Gate{{Bench: "rocccvet", MaxSeconds: &limit}},
	}
	vs, _, _ := runCmdGroup(g)
	if len(vs) != 1 || vs[0].OK {
		t.Fatalf("4.20s against a 0.01s bound must fail: %+v", vs)
	}
}
