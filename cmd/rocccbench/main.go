// Command rocccbench regenerates the paper's evaluation: Table 1, the
// §5 DCT throughput comparison, the §2 area-estimation claim, and the
// structural figures (Fig. 3, 4, 6, 7).
//
// Usage:
//
//	rocccbench [-figures] [-estimation] [-throughput] [-sweep] [-sysbatch] [-serve] [-fleet] [-all]
package main

import (
	"flag"
	"fmt"
	"os"

	"roccc/internal/dp"
	"roccc/internal/exp"
)

func main() {
	var (
		figures    = flag.Bool("figures", false, "print the figure reproductions")
		estimation = flag.Bool("estimation", false, "print the area-estimation experiment")
		throughput = flag.Bool("throughput", false, "print the DCT throughput experiment")
		sweep      = flag.Bool("sweep", false, "print the batch sweep (serial vs sharded SystemPool)")
		sysbatch   = flag.Bool("sysbatch", false, "print the system cycle-loop batching sweep (serial vs streak-batched System.Run)")
		servesweep = flag.Bool("serve", false, "print the serve sweep (rocccserve TCP vs serial System.Run)")
		fleetsweep = flag.Bool("fleet", false, "print the fleet sweep (pipelined v2 client + sharded router vs serial System.Run)")
		calibrated = flag.Bool("calibrated", false, "run the -fleet sweep in calibrated mode: auto-pick each kernel's backend, verify bit-identical to serial interp")
		shardsN    = flag.Int("shards", 3, "worker shards for the -fleet sweep")
		corpusDir  = flag.String("corpus", "ci/corpus", "extra .c kernels for the -fleet sweep (function name k); empty skips")
		jobs       = flag.Int("jobs", 64, "independent input streams per sweep")
		workers    = flag.Int("workers", 0, "sweep shard width (0 = GOMAXPROCS)")
		backendF   = flag.String("backend", "threaded", "execution backend for the -sysbatch sweep's backend columns: interp, threaded or cone")
		all        = flag.Bool("all", false, "print everything")
	)
	flag.Parse()
	if *jobs < 1 {
		fmt.Fprintln(os.Stderr, "rocccbench: -jobs must be at least 1")
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "rocccbench: -workers must be >= 0 (0 = GOMAXPROCS)")
		flag.Usage()
		os.Exit(2)
	}
	backend, err := dp.ParseBackend(*backendF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocccbench:", err)
		flag.Usage()
		os.Exit(2)
	}

	rows, err := exp.Table1()
	if err != nil {
		fatal(err)
	}
	fmt.Println(exp.FormatTable1(rows, true))

	if *throughput || *all {
		t, err := exp.DCTThroughput()
		if err != nil {
			fatal(err)
		}
		fmt.Println("== §5 DCT throughput ==")
		fmt.Printf("Xilinx IP: %.0f MHz x %.0f output/cycle = %.0f Msamples/s\n",
			t.IPClockMHz, t.IPOutsPerCycle, t.IPMsps)
		fmt.Printf("ROCCC:     %.0f MHz x %.0f output/cycle = %.0f Msamples/s\n",
			t.RocccClockMHz, t.RocccOutsPerCycle, t.RocccMsps)
		fmt.Printf("overall throughput ratio: %.2fx (paper: higher despite 0.735x clock)\n\n", t.Speedup)
	}
	if *sweep || *all {
		fir, err := exp.SystemSweep(*jobs, *workers)
		if err != nil {
			fatal(err)
		}
		dct, err := exp.DCTSystemSweep(*jobs, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatSweeps([]*exp.SweepResult{fir, dct}))
	}
	if *sysbatch || *all {
		rows, err := exp.SysBatchSweep(*jobs/8, backend)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatSysBatch(rows))
	}
	if *servesweep || *all {
		rows, err := exp.ServeSweep(*jobs)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatServeSweep(rows))
	}
	if *fleetsweep || *all {
		rows, err := exp.FleetSweep(*jobs, *shardsN, backend, *corpusDir, *calibrated)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatFleetSweep(rows, *shardsN))
	}
	if *estimation || *all {
		est, err := exp.AreaEstimation()
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatEstimation(est))
		fmt.Println()
	}
	if *all {
		sp, err := exp.Speedups()
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatSpeedups(sp))
		fmt.Println()
	}
	if *all {
		ab, err := exp.FormatAblations()
		if err != nil {
			fatal(err)
		}
		fmt.Println(ab)
	}
	if *figures || *all {
		f3, err := exp.Fig3()
		if err != nil {
			fatal(err)
		}
		fmt.Println(f3.Text)
		f4, err := exp.Fig4()
		if err != nil {
			fatal(err)
		}
		fmt.Println(f4.Text)
		f6, _, err := exp.Fig6()
		if err != nil {
			fatal(err)
		}
		fmt.Println(f6.Text)
		f7, _, err := exp.Fig7()
		if err != nil {
			fatal(err)
		}
		fmt.Println(f7.Text)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rocccbench:", err)
	os.Exit(1)
}
