// roccclint runs the repo's Go-level contract analyzers over the
// module: hotpathalloc (no per-cycle allocation in //roccc:hotpath
// code), replaycontract (batch faults must reach the serial replay) and
// poolhygiene (every SystemPool.Get paired with a Put or an escape).
// It is built only on the standard library's go/ast and go/types — no
// toolchain fork-out, no network — and exits nonzero on any finding.
//
// Usage: roccclint [-root dir] [packages...], defaulting to ./... of
// the enclosing module.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"roccc/internal/lint"
)

func main() {
	rootFlag := flag.String("root", "", "module root (default: ascend from the working directory to go.mod)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root := *rootFlag
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "roccclint: %v\n", err)
			os.Exit(2)
		}
	}

	diags, npkgs, err := lint.Run(root, patterns, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "roccclint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Printf("roccclint: %d findings in %d packages\n", len(diags), npkgs)
		os.Exit(1)
	}
	fmt.Printf("roccclint: %d packages clean\n", npkgs)
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}
