// rocccvet statically verifies every compiled artifact of the repo's
// kernels without executing a cycle: simulator plans (ring offsets,
// wrap congruence, the A/B/C batch partition, closed-form feedback
// cones), system plans (routing tables, odometer, harvest ring), smart
// buffers (span+bus capacity contract) and the emitted VHDL file sets.
//
// It runs the nine Table 1 kernels plus every .c file in the checked-in
// fuzz corpus (ci/corpus), under one or all execution backends, and
// exits nonzero on any violation. CI's `static` gate parses the final
// summary line and requires zero violations inside a wall-clock budget.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"roccc/internal/bench"
	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/dpverify"
)

func main() {
	backendFlag := flag.String("backend", "all", "execution backend to verify: all, interp, threaded or cone")
	corpusDir := flag.String("corpus", "ci/corpus", "directory of extra .c kernels (function name k); empty string skips the corpus")
	verbose := flag.Bool("v", false, "report every verified kernel, not only failures")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "rocccvet: unexpected arguments: %s\n", strings.Join(flag.Args(), " "))
		flag.Usage()
		os.Exit(2)
	}

	backends, err := parseBackends(*backendFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rocccvet: %v\n", err)
		os.Exit(2)
	}

	start := time.Now()
	var pairs, violations, broken int
	report := func(name string, b dp.Backend, vs []dp.Violation, err error) {
		pairs++
		switch {
		case err != nil:
			broken++
			fmt.Printf("FAIL %s [%s]: %v\n", name, b, err)
		case len(vs) > 0:
			violations += len(vs)
			for _, v := range vs {
				fmt.Printf("FAIL %s [%s]: %s\n", name, b, v)
			}
		case *verbose:
			fmt.Printf("ok   %s [%s]\n", name, b)
		}
	}

	for _, k := range bench.All() {
		res, err := k.Compile()
		if err != nil {
			// A Table 1 kernel that no longer compiles is a hard failure
			// on every backend at once.
			broken++
			pairs += len(backends)
			fmt.Printf("FAIL %s: compile: %v\n", k.Name, err)
			continue
		}
		for _, b := range backends {
			vs, err := dpverify.VerifyResult(res, k.BusElems, k.Scalars, b)
			report(k.Name, b, vs, err)
		}
	}

	if *corpusDir != "" {
		files, err := filepath.Glob(filepath.Join(*corpusDir, "*.c"))
		if err == nil && len(files) == 0 {
			err = fmt.Errorf("no .c kernels in %s (run from the repo root, or pass -corpus)", *corpusDir)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rocccvet: corpus: %v\n", err)
			os.Exit(2)
		}
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rocccvet: corpus: %v\n", err)
				os.Exit(2)
			}
			name := filepath.Base(f)
			for _, b := range backends {
				vs, err := dpverify.VerifySource(string(src), "k", core.DefaultOptions(), 1, nil, b)
				report(name, b, vs, err)
			}
		}
	}

	// Summary format is load-bearing: cigate's static gate parses
	// "<n> violations" and the elapsed seconds from this line.
	fmt.Printf("rocccvet: %d kernel-backend pairs, %d violations, %d broken, %.2fs\n",
		pairs, violations+broken, broken, time.Since(start).Seconds())
	if violations+broken > 0 {
		os.Exit(1)
	}
}

func parseBackends(s string) ([]dp.Backend, error) {
	if s == "all" {
		return dp.Backends(), nil
	}
	b, err := dp.ParseBackend(s)
	if err != nil {
		return nil, err
	}
	return []dp.Backend{b}, nil
}
