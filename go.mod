module roccc

go 1.24.0
