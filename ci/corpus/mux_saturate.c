/* Conditional assignment lowered to a mux over narrow types: stresses
 * plan/wrap-congruence on int12 arithmetic and the mux arm of the
 * feedback-cone grammar when combined with an accumulator. */
int A[24];
int acc;
void k() {
	int i;
	int12 v;
	acc = 0;
	for (i = 0; i < 24; i++) {
		v = A[i];
		if (v > 100) {
			acc = acc + 100;
		} else {
			acc = acc + v;
		}
	}
}
