/* Scalar pipeline mixing widths, shifts and comparisons: stresses
 * plan/wrap-congruence (narrow intermediates force single and double
 * wraps) and plan/ring-offset (reconvergent operands cross stages). */
void k(int x0, int x1, int x2, int* o0, int* o1) {
	int a; int b; int c;
	uint8 n;
	a = (x0 << 3) - x1;
	n = x2 + a;
	b = (n > 19) + (x0 == x1);
	c = a * b + (x2 >> 2);
	*o0 = c + n;
	*o1 = a - c;
}
