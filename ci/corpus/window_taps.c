/* 1-D sliding window with a 5-tap reuse pattern: stresses
 * buffer/capacity (span + bus elements exactly), system/routing (tap
 * to input-port table) and vhdl/file-set (smart buffer + addrgen). */
int A[36];
int C[32];
void k() {
	int i;
	for (i = 0; i < 32; i = i + 1) {
		C[i] = 2*A[i] - 3*A[i+1] + A[i+2] + 5*A[i+3] - A[i+4];
	}
}
