/* Streaming accumulator: the canonical closed-form feedback cone.
 * Stresses plan/cone-grammar, plan/batch-partition (class B holds the
 * whole cone), system/harvest-ring and system/need-clear. */
int A[48];
int sum;
void k() {
	int i;
	sum = 0;
	for (i = 0; i < 48; i++) {
		sum = sum + A[i];
	}
}
