/* Division by a runtime operand expands into the deepest pipeline the
 * compiler builds: stresses plan/geometry (large history rings),
 * plan/ring-need and plan/worklist on many-stage plans. */
void k(int x0, int x1, int x2, int* o0) {
	int q; int r;
	q = x0 / (x1 | 1);
	r = q + x2 / ((x0 & 7) | 1);
	*o0 = r - q;
}
