/* 2-D cross stencil: the two-dimensional smart-buffer span formula
 * ((rows-1)*rowlen + cols) and a two-level odometer. Stresses
 * buffer/capacity, system/nest and system/routing on 2-D windows. */
int img[10][10];
int out[10][10];
void k() {
	int i; int j;
	for (i = 1; i < 9; i++)
		for (j = 1; j < 9; j++)
			out[i][j] = img[i-1][j] + img[i+1][j] + img[i][j-1] + img[i][j+1] - 4*img[i][j];
}
