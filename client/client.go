// Package client is the supported public surface for driving a
// rocccserve instance or fleet: the TCP client, its dial options, the
// typed load-shed error, and the metrics-plane snapshot types, all
// re-exported from the internal packages so external drivers (and
// cmd/rocccload) never reach into internal/serve piecemeal.
//
// The stable surface is exactly what this package exports:
//
//   - DialContext with the DialOption set (WithPipelined,
//     WithDialTimeout, WithProtocolVersion) — the one way to open a
//     Conn, serial (v1) or pipelined (v2).
//   - Conn.Run / Conn.RunContext / Conn.Ping / Conn.Healthy /
//     Conn.Close and the Job batch type they fill in place.
//   - BusyError, the typed load-shed a saturated fleet shard raises —
//     match with errors.As and count it as backpressure, not failure.
//   - FaultError, the typed mid-stream data-path fault (operator class,
//     abort cycle, message), identical to what a local System.Run
//     raises.
//   - Metrics / KernelInfo / ConnInfo / FleetMetrics / ShardMetrics /
//     KernelRoute / PoolStats / CalibrationResult / CalibrationSample —
//     the JSON shapes the /metrics endpoint serves — plus FleetSnapshot
//     and ScrapeMetrics to fetch and parse either the single-server or
//     the fleet form.
//
// Everything else under internal/ remains free to change between PRs.
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"roccc/internal/calib"
	"roccc/internal/dp"
	"roccc/internal/fleet"
	"roccc/internal/netlist"
	"roccc/internal/serve"
)

// Conn is the TCP client connection; see DialContext.
type Conn = serve.Conn

// DialOption configures DialContext.
type DialOption = serve.DialOption

// Job is one independent input stream in a Run batch: inputs in,
// outputs/feedbacks/cycles (or a typed Err) out, buffers reused across
// calls.
type Job = netlist.Job

// BusyError is the typed load-shed raised when a fleet shard's slot
// budget is full; clients should treat it as backpressure.
type BusyError = serve.BusyError

// FaultError is the typed mid-stream data-path fault (Job.Err).
type FaultError = dp.FaultError

// PoolStats is one kernel pool's admission balance sheet.
type PoolStats = netlist.PoolStats

// Metrics is a single server's metrics snapshot (the /metrics JSON).
type Metrics = serve.Metrics

// KernelInfo is the per-kernel slice of a server snapshot.
type KernelInfo = serve.KernelInfo

// ConnInfo is the per-connection slice of a server snapshot.
type ConnInfo = serve.ConnInfo

// FleetMetrics is the router-level snapshot of a sharded fleet.
type FleetMetrics = fleet.Metrics

// ShardMetrics is the per-shard slice of a fleet snapshot.
type ShardMetrics = fleet.ShardMetrics

// KernelRoute is the per-kernel routing slice of a fleet snapshot.
type KernelRoute = fleet.KernelRoute

// CalibrationResult is a kernel's last backend-calibration trial, as
// surfaced in KernelInfo.Calibration: the configured backend, the
// measured pick, whether the pick switched the serving pool, and one
// ns/iter sample per backend.
type CalibrationResult = calib.Result

// CalibrationSample is one backend's measured ns/iter in a
// CalibrationResult.
type CalibrationSample = calib.Sample

// DialContext connects to a rocccserve address; see serve.DialContext.
func DialContext(ctx context.Context, addr string, opts ...DialOption) (*Conn, error) {
	return serve.DialContext(ctx, addr, opts...)
}

// WithPipelined negotiates protocol v2 for concurrent requests over one
// socket; slots > 0 bounds the client-side in-flight count.
func WithPipelined(slots int) DialOption { return serve.WithPipelined(slots) }

// WithDialTimeout bounds the TCP connect.
func WithDialTimeout(d time.Duration) DialOption { return serve.WithDialTimeout(d) }

// WithProtocolVersion overrides the offered protocol version.
func WithProtocolVersion(v int) DialOption { return serve.WithProtocolVersion(v) }

// FleetSnapshot is the /metrics document: the front server's snapshot
// plus, when the process runs a sharded fleet, the router's. A
// single-server rocccserve serves the bare Metrics object instead;
// ScrapeMetrics normalizes both shapes into this struct.
type FleetSnapshot struct {
	Front Metrics       `json:"front"`
	Fleet *FleetMetrics `json:"fleet,omitempty"`
}

// ScrapeMetrics fetches and parses a rocccserve /metrics endpoint,
// accepting both the single-server and the fleet document shapes.
func ScrapeMetrics(ctx context.Context, url string) (*FleetSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("client: reading %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: %s: %s", url, resp.Status)
	}
	return ParseMetrics(body)
}

// ParseMetrics parses a /metrics JSON document in either shape (bare
// server Metrics, or the fleet {front, fleet} snapshot).
func ParseMetrics(body []byte) (*FleetSnapshot, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(body, &probe); err != nil {
		return nil, fmt.Errorf("client: malformed metrics document: %w", err)
	}
	var snap FleetSnapshot
	if _, fleetShape := probe["front"]; fleetShape {
		if err := json.Unmarshal(body, &snap); err != nil {
			return nil, fmt.Errorf("client: malformed fleet metrics: %w", err)
		}
		return &snap, nil
	}
	if err := json.Unmarshal(body, &snap.Front); err != nil {
		return nil, fmt.Errorf("client: malformed server metrics: %w", err)
	}
	return &snap, nil
}
