package client

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// fleetGolden is a fleet-shaped /metrics document as the front-end of a
// sharded rocccserve writes it: the front server snapshot plus the
// router's, with one in-process shard carrying a full per-shard server
// snapshot whose kernel was calibrated (configured interp, picked
// threaded, pool swapped). Optional fields are exercised both present
// (shard 0) and absent (shard 1, a TCP shard; the fir kernel's
// never-calibrated sibling).
const fleetGolden = `{
  "front": {
    "proto": 2,
    "workers": 8,
    "draining": false,
    "served": 420,
    "faults": 3,
    "sheds": 7,
    "in_flight": 1,
    "calibrations": 0,
    "calib_swaps": 0,
    "kernels": [],
    "conns": [
      {"remote": "127.0.0.1:50001", "opens": 2, "streams": 420, "faults": 3}
    ]
  },
  "fleet": {
    "calibrations": 6,
    "calib_swaps": 2,
    "shards": [
      {
        "index": 0,
        "in_process": true,
        "slots": 48,
        "in_flight": 0,
        "high_water": 12,
        "streams": 300,
        "sheds": 7,
        "idle_conns": 0,
        "calibrations": 6,
        "calib_swaps": 2,
        "server": {
          "proto": 2,
          "workers": 4,
          "draining": false,
          "served": 300,
          "faults": 2,
          "sheds": 0,
          "in_flight": 0,
          "calibrations": 6,
          "calib_swaps": 2,
          "kernels": [
            {
              "kernel": "mul_acc",
              "compiled": true,
              "resident": true,
              "backend_configured": "interp",
              "backend_active": "threaded",
              "closed_form_cone": true,
              "calibrations": 2,
              "calibration": {
                "kernel": "mul_acc",
                "configured": "interp",
                "picked": "threaded",
                "switched": true,
                "samples": [
                  {"backend": "interp", "ns_per_iter": 79000},
                  {"backend": "threaded", "ns_per_iter": 36000},
                  {"backend": "cone", "ns_per_iter": 41000}
                ]
              },
              "opens": 10,
              "streams": 200,
              "faults": 0,
              "in_flight": 0,
              "high_water": 6,
              "evictions": 0,
              "last_use": 44,
              "max_idle": 8,
              "pool": {"Gets": 200, "Puts": 200, "Rejected": 0}
            },
            {
              "kernel": "fir",
              "compiled": true,
              "resident": false,
              "backend_configured": "interp",
              "closed_form_cone": false,
              "opens": 4,
              "streams": 100,
              "faults": 2,
              "in_flight": 0,
              "high_water": 3,
              "evictions": 1,
              "last_use": 40,
              "max_idle": 8
            }
          ],
          "conns": []
        }
      },
      {
        "index": 1,
        "addr": "10.0.0.7:9944",
        "in_process": false,
        "slots": 48,
        "in_flight": 1,
        "high_water": 9,
        "streams": 120,
        "sheds": 0,
        "idle_conns": 2
      }
    ],
    "kernels": [
      {"kernel": "fir", "shard": 1, "uses": 120, "in_flight": 1, "high_water": 9, "last_use": 43},
      {"kernel": "mul_acc", "shard": 0, "uses": 300, "in_flight": 0, "high_water": 12, "last_use": 44}
    ]
  }
}`

// TestParseMetricsFleetGolden pins the fleet document shape end to end:
// per-shard servers, per-kernel calibration verdicts with raw samples,
// and the optional fields' presence/absence semantics.
func TestParseMetricsFleetGolden(t *testing.T) {
	snap, err := ParseMetrics([]byte(fleetGolden))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Front.Served != 420 || snap.Front.Sheds != 7 || len(snap.Front.Conns) != 1 {
		t.Fatalf("front: %+v", snap.Front)
	}
	if snap.Fleet == nil {
		t.Fatal("fleet section dropped")
	}
	if snap.Fleet.Calibrations != 6 || snap.Fleet.CalibSwaps != 2 {
		t.Fatalf("fleet calibration totals: %+v", snap.Fleet)
	}
	if len(snap.Fleet.Shards) != 2 || len(snap.Fleet.Kernels) != 2 {
		t.Fatalf("shards/kernels: %d/%d", len(snap.Fleet.Shards), len(snap.Fleet.Kernels))
	}

	local := snap.Fleet.Shards[0]
	if !local.InProcess || local.Server == nil || local.Calibrations != 6 || local.CalibSwaps != 2 {
		t.Fatalf("local shard: %+v", local)
	}
	kernels := local.Server.Kernels
	if len(kernels) != 2 {
		t.Fatalf("shard kernels: %+v", kernels)
	}
	ma := kernels[0]
	if ma.Kernel != "mul_acc" || ma.BackendConfigured != "interp" || ma.BackendActive != "threaded" {
		t.Fatalf("mul_acc backends: %+v", ma)
	}
	if !ma.ClosedFormCone || ma.Calibrations != 2 || ma.Calibration == nil {
		t.Fatalf("mul_acc calibration plumbing: %+v", ma)
	}
	cal := ma.Calibration
	if cal.Configured != "interp" || cal.Picked != "threaded" || !cal.Switched {
		t.Fatalf("calibration verdict: %+v", cal)
	}
	if len(cal.Samples) != 3 || cal.Samples[1].Backend != "threaded" || cal.Samples[1].NsPerIter != 36000 {
		t.Fatalf("calibration samples: %+v", cal.Samples)
	}
	if ma.Pool == nil || ma.Pool.Gets != ma.Pool.Puts+ma.Pool.Rejected {
		t.Fatalf("mul_acc pool: %+v", ma.Pool)
	}

	// Optional fields absent: the evicted fir kernel has no active
	// backend, no calibration and no pool; the TCP shard no server.
	fir := kernels[1]
	if fir.BackendActive != "" || fir.Calibration != nil || fir.Calibrations != 0 || fir.Pool != nil {
		t.Fatalf("fir optional fields should be zero: %+v", fir)
	}
	tcp := snap.Fleet.Shards[1]
	if tcp.InProcess || tcp.Server != nil || tcp.Calibrations != 0 || tcp.Addr != "10.0.0.7:9944" {
		t.Fatalf("tcp shard: %+v", tcp)
	}
}

// TestParseMetricsBareServer: a single-server rocccserve serves the
// bare Metrics object; ParseMetrics must normalize it into a snapshot
// with no fleet section.
func TestParseMetricsBareServer(t *testing.T) {
	body := `{"proto": 2, "workers": 4, "served": 9, "calibrations": 3, "calib_swaps": 1,
	          "kernels": [{"kernel": "fir", "compiled": true, "backend_configured": "cone"}]}`
	snap, err := ParseMetrics([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Fleet != nil {
		t.Fatalf("bare server grew a fleet section: %+v", snap.Fleet)
	}
	if snap.Front.Served != 9 || snap.Front.Calibrations != 3 || snap.Front.CalibSwaps != 1 {
		t.Fatalf("front: %+v", snap.Front)
	}
	if len(snap.Front.Kernels) != 1 || snap.Front.Kernels[0].BackendConfigured != "cone" {
		t.Fatalf("kernels: %+v", snap.Front.Kernels)
	}
}

// TestParseMetricsRoundTrip: a snapshot built from the exported types
// must survive marshal -> ParseMetrics unchanged, so the golden fixture
// can never drift from the structs silently.
func TestParseMetricsRoundTrip(t *testing.T) {
	want, err := ParseMetrics([]byte(fleetGolden))
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMetrics(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestParseMetricsMalformed: both document shapes reject garbage with a
// diagnosis naming the layer that failed.
func TestParseMetricsMalformed(t *testing.T) {
	if _, err := ParseMetrics([]byte(`[1, 2]`)); err == nil || !strings.Contains(err.Error(), "malformed metrics") {
		t.Fatalf("array accepted: %v", err)
	}
	if _, err := ParseMetrics([]byte(`{"front": 7}`)); err == nil || !strings.Contains(err.Error(), "malformed fleet") {
		t.Fatalf("bad fleet shape accepted: %v", err)
	}
	if _, err := ParseMetrics([]byte(`{"served": "many"}`)); err == nil || !strings.Contains(err.Error(), "malformed server") {
		t.Fatalf("bad server shape accepted: %v", err)
	}
}
