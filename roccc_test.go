package roccc

import (
	"strings"
	"testing"
)

const firC = `
int A[21];
int C[17];
void fir() {
	int i;
	for (i = 0; i < 17; i = i + 1) {
		C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
	}
}
`

func TestPublicCompile(t *testing.T) {
	res, err := Compile(firC, "fir", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Datapath == nil || res.Kernel == nil {
		t.Fatal("incomplete result")
	}
	if len(res.Datapath.Inputs) != 5 || len(res.Datapath.Outputs) != 1 {
		t.Errorf("ports: %d in, %d out", len(res.Datapath.Inputs), len(res.Datapath.Outputs))
	}
}

func TestPublicVHDL(t *testing.T) {
	res, err := Compile(firC, "fir", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	files, err := GenerateVHDL(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("files = %d, want >= 4 (dp, buffer, addrgen, controller)", len(files))
	}
	names := map[string]bool{}
	for _, f := range files {
		names[f.Name] = true
		if !strings.Contains(f.Content, "entity") {
			t.Errorf("%s has no entity", f.Name)
		}
	}
	if !names["fir_dp.vhd"] {
		t.Error("missing fir_dp.vhd")
	}
}

func TestPublicSynthesize(t *testing.T) {
	res, err := Compile(firC, "fir", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := Synthesize(res, 1)
	if rep.Slices <= 0 || rep.ClockMHz <= 0 {
		t.Errorf("report: %d slices, %.0f MHz", rep.Slices, rep.ClockMHz)
	}
}

func TestPublicSystem(t *testing.T) {
	res, err := Compile(firC, "fir", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(res, SystemConfig{BusElems: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]int64, 21)
	for i := range in {
		in[i] = int64(i)
	}
	if err := sys.LoadInput("A", in); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	out, err := sys.Output("C")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 17; i++ {
		want := 3*in[i] + 5*in[i+1] + 7*in[i+2] + 9*in[i+3] - in[i+4]
		if out[i] != want {
			t.Errorf("C[%d] = %d, want %d", i, out[i], want)
		}
	}
}

func TestPublicTable1(t *testing.T) {
	out := Table1()
	if !strings.Contains(out, "bit_correlator") || !strings.Contains(out, "geometric mean") {
		t.Errorf("table output:\n%s", out)
	}
}
