// bench_test.go regenerates every table and figure of the paper's
// evaluation as Go benchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// BenchmarkTable1/<row> compiles and synthesizes one Table 1 kernel and
// reports the reproduced clock/area ratios as benchmark metrics;
// BenchmarkFig* regenerate the structural figures; the remaining
// benchmarks cover the §5 throughput claim and the §2 area-estimation
// claim.
package roccc

import (
	"context"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roccc/internal/bench"
	"roccc/internal/calib"
	"roccc/internal/dp"
	"roccc/internal/exp"
	"roccc/internal/fleet"
	"roccc/internal/ip"
	"roccc/internal/load"
	"roccc/internal/netlist"
	"roccc/internal/serve"
)

// BenchmarkTable1 regenerates each row of Table 1: compile → pipeline →
// synthesize, reporting the ROCCC/IP clock and area ratios.
func BenchmarkTable1(b *testing.B) {
	kernels := bench.All()
	cores := ip.All()
	if len(kernels) != len(cores) {
		b.Fatalf("%d bench kernels but %d IP baselines", len(kernels), len(cores))
	}
	for i, k := range kernels {
		core := cores[i]
		// The two lists are paired by index: a silent mispairing would
		// divide kernel X's clock/area by kernel Y's baseline and report
		// plausible-looking nonsense, so reordering either list must
		// fail loudly.
		if core.Name != k.Name {
			b.Fatalf("row %d pairs kernel %q with IP core %q; bench.All() and ip.All() must list Table 1 rows in the same order", i, k.Name, core.Name)
		}
		b.Run(k.Name, func(b *testing.B) {
			var clockRatio, areaRatio float64
			for n := 0; n < b.N; n++ {
				_, rep, err := exp.SynthesizeKernel(k)
				if err != nil {
					b.Fatal(err)
				}
				clockRatio = rep.ClockMHz / core.Report.ClockMHz
				areaRatio = float64(rep.Slices) / float64(core.Report.Slices)
			}
			b.ReportMetric(clockRatio, "%clock")
			b.ReportMetric(areaRatio, "%area")
		})
	}
}

// BenchmarkFig2ExecutionModel streams the FIR through the full system
// (engine → BRAM → smart buffer → data path → BRAM) and reports cycles
// per produced output. The system is built once and Reset between
// iterations — the sweep-reuse pattern the compiled sysPlan targets —
// and the steady state is gated at 0 allocs/op in CI.
func BenchmarkFig2ExecutionModel(b *testing.B) {
	res, err := Compile(exp.Fig3Source, "fir", DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	in := make([]int64, 21)
	for i := range in {
		in[i] = rng.Int63n(255) - 128
	}
	sys, err := netlist.NewSystem(res.Kernel, res.Datapath, netlist.Config{BusElems: 1})
	if err != nil {
		b.Fatal(err)
	}
	// Warm-up grows the simulator's batch lane scratch once, so the
	// timed loop measures the zero-alloc steady state the gate holds.
	if err := sys.LoadInput("A", in); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		b.Fatal(err)
	}
	var cycles int
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		sys.Reset()
		if err := sys.LoadInput("A", in); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		cycles = sys.Cycles()
	}
	b.ReportMetric(float64(cycles)/17.0, "cycles/output")
}

// BenchmarkSysRun compares the serial per-cycle System.Run dispatch
// against the streak-batched default on identical systems — the
// regression meter for the system cycle-loop batching. fig3 is the
// Fig. 2 benchmark workload (17 iterations: fill/drain-edge heavy);
// fir4k is the 4096-iteration steady state. CI gates the streak
// variants at 0 allocs/op and at CPU-conditioned speedup floors over
// their serial baselines (ci/gates.json, sysbatch group); the committed
// ci/baseline/BENCH_seed.json holds the pre-batching numbers the
// trajectory is measured against.
func BenchmarkSysRun(b *testing.B) {
	for _, tc := range []struct {
		name, src string
		iters     int
	}{
		{"fig3", exp.Fig3Source, 17},
		{"fir4k", exp.LongFIRSource, 4096},
	} {
		res, err := Compile(tc.src, "fir", DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		in := make([]int64, tc.iters+4)
		for i := range in {
			in[i] = rng.Int63n(255) - 128
		}
		modes := []struct {
			name string
			cfg  netlist.Config
		}{
			{tc.name + "-serial", netlist.Config{BusElems: 1, Serial: true}},
			{tc.name + "-streak", netlist.Config{BusElems: 1}},
		}
		for _, backend := range dp.Backends()[1:] {
			modes = append(modes, struct {
				name string
				cfg  netlist.Config
			}{tc.name + "-streak-" + backend.String(), netlist.Config{BusElems: 1, Backend: backend}})
		}
		for _, m := range modes {
			b.Run(m.name, func(b *testing.B) {
				sys, err := netlist.NewSystem(res.Kernel, res.Datapath, m.cfg)
				if err != nil {
					b.Fatalf("%s: %v", m.name, err)
				}
				run := func() {
					sys.Reset()
					if err := sys.LoadInput("A", in); err != nil {
						b.Fatalf("%s: %v", m.name, err)
					}
					if _, err := sys.Run(); err != nil {
						b.Fatalf("%s: %v", m.name, err)
					}
				}
				run() // warm-up: grows the batch lane scratch once
				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					run()
				}
				b.ReportMetric(float64(sys.BatchedCycles())/float64(sys.Cycles())*100, "batched-%")
			})
		}
	}
}

// BenchmarkFig3ScalarReplacement measures the front end through scalar
// replacement on the Fig. 3 FIR.
func BenchmarkFig3ScalarReplacement(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := exp.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4FeedbackDetection measures feedback detection on the
// Fig. 4 accumulator.
func BenchmarkFig4FeedbackDetection(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := exp.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6BranchDatapath measures data-path building with mux and
// pipe nodes on the Fig. 5 kernel, reporting the hard-node counts. The
// counts are asserted: Fig. 6 requires at least one mux node (the SSA
// phis of the join block) and one pipe node (live values crossing the
// branch), and the seed's magic ordinals 2/1 had them swapped.
func BenchmarkFig6BranchDatapath(b *testing.B) {
	var muxes, pipes int
	for n := 0; n < b.N; n++ {
		_, d, err := exp.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		muxes = len(d.NodesOfKind(dp.MuxNode))
		pipes = len(d.NodesOfKind(dp.PipeNode))
	}
	if muxes == 0 {
		b.Fatal("Fig. 6 data path built no mux node")
	}
	if pipes == 0 {
		b.Fatal("Fig. 6 data path built no pipe node")
	}
	b.ReportMetric(float64(muxes), "mux-nodes")
	b.ReportMetric(float64(pipes), "pipe-nodes")
}

// BenchmarkFig7AccumulatorDatapath measures the feedback-latch data path
// of Fig. 7.
func BenchmarkFig7AccumulatorDatapath(b *testing.B) {
	for n := 0; n < b.N; n++ {
		_, d, err := exp.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Feedbacks) != 1 {
			b.Fatal("missing feedback latch")
		}
	}
}

// BenchmarkDCTThroughput regenerates the §5 throughput comparison and
// reports the overall samples-per-second ratio.
func BenchmarkDCTThroughput(b *testing.B) {
	var speedup float64
	for n := 0; n < b.N; n++ {
		t, err := exp.DCTThroughput()
		if err != nil {
			b.Fatal(err)
		}
		speedup = t.Speedup
	}
	b.ReportMetric(speedup, "throughput-ratio")
}

// BenchmarkAreaEstimation regenerates the §2 estimation experiment and
// reports the mean absolute error.
func BenchmarkAreaEstimation(b *testing.B) {
	var meanAbs float64
	for n := 0; n < b.N; n++ {
		rows, err := exp.AreaEstimation()
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			e := r.ErrorPct
			if e < 0 {
				e = -e
			}
			sum += e
		}
		meanAbs = sum / float64(len(rows))
	}
	b.ReportMetric(meanAbs, "mean-abs-err-%")
}

// BenchmarkDatapathSim measures the cycle-accurate simulator's rate on
// the DCT data path (one iteration = 8 outputs).
func BenchmarkDatapathSim(b *testing.B) {
	k := bench.DCT()
	res, err := k.Compile()
	if err != nil {
		b.Fatal(err)
	}
	sim := NewSim(res)
	in := make([]int64, len(res.Datapath.Inputs))
	rng := rand.New(rand.NewSource(2))
	for i := range in {
		in[i] = rng.Int63n(255) - 128
	}
	b.ReportAllocs() // steady-state Step must stay at 0 allocs/op
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := sim.Step(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatapathSimBatch is BenchmarkDatapathSim on the batch path:
// StepN in 256-iteration dispatches, so ns/op is directly comparable
// with the serial benchmark's per-Step cost. Sub-benchmarks pair each
// execution backend with a feedback-free kernel (dct, the pure op-major
// path) and the feedback kernel (mul_acc, whose accumulate cone the
// threaded/cone backends vectorize in closed form). The steady states
// are gated at 0 allocs/op in CI (codegen group), and the threaded
// variants at CPU-conditioned speedup floors over interp.
func BenchmarkDatapathSimBatch(b *testing.B) {
	for _, k := range []bench.Kernel{bench.DCT(), bench.MulAcc()} {
		res, err := k.Compile()
		if err != nil {
			b.Fatal(err)
		}
		for _, backend := range dp.Backends() {
			b.Run(k.Name+"-"+backend.String(), func(b *testing.B) {
				sim := dp.NewSimWith(res.Datapath, backend)
				const batch = 256
				in := make([]int64, batch*len(res.Datapath.Inputs))
				rng := rand.New(rand.NewSource(2))
				for i := range in {
					in[i] = rng.Int63n(255) - 128
				}
				if _, err := sim.StepN(in, batch); err != nil { // warm-up grows the lane scratch
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; n += batch {
					if _, err := sim.StepN(in, batch); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBatchSweep is the multi-core sweep: 32 independent FIR input
// streams through the Fig. 2 system, either serially (one System, one
// stream at a time — the pre-SystemPool path) or sharded across the
// SystemPool's worker crew. CI gates the sharded/serial throughput
// ratio on multi-core runners and the sharded steady state at
// 0 allocs/op.
func BenchmarkBatchSweep(b *testing.B) {
	res, err := Compile(exp.Fig3Source, "fir", DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	const jobs = 32
	streams := make([][]int64, jobs)
	for j := range streams {
		rng := rand.New(rand.NewSource(int64(j + 1)))
		in := make([]int64, 21)
		for i := range in {
			in[i] = rng.Int63n(255) - 128
		}
		streams[j] = in
	}
	b.Run("serial", func(b *testing.B) {
		sys, err := netlist.NewSystem(res.Kernel, res.Datapath, netlist.Config{BusElems: 1})
		if err != nil {
			b.Fatal(err)
		}
		out := make([]int64, 17)
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			for j := range streams {
				sys.Reset()
				if err := sys.LoadInput("A", streams[j]); err != nil {
					b.Fatal(err)
				}
				if _, err := sys.Run(); err != nil {
					b.Fatal(err)
				}
				if err := sys.OutputInto("C", out); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("sharded", func(b *testing.B) {
		pool, err := netlist.NewSystemPool(res.Kernel, res.Datapath, netlist.Config{BusElems: 1}, 0)
		if err != nil {
			b.Fatal(err)
		}
		defer pool.Close()
		batch := make([]netlist.Job, jobs)
		for j := range batch {
			batch[j] = netlist.Job{Inputs: map[string][]int64{"A": streams[j]}}
		}
		// Warm-up spawns the workers, fills the pool and allocates the
		// per-job output buffers once.
		if err := pool.RunBatch(batch); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			if err := pool.RunBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompile measures full-pipeline compilation of the wavelet
// engine, the largest kernel.
func BenchmarkCompile(b *testing.B) {
	k := bench.Wavelet()
	for n := 0; n < b.N; n++ {
		if _, err := k.Compile(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPUSpeedup regenerates the §1 speedup-over-microprocessor
// experiment and reports the FIR kernel's speedup factor.
func BenchmarkCPUSpeedup(b *testing.B) {
	var firSpeedup float64
	for n := 0; n < b.N; n++ {
		rows, err := exp.Speedups()
		if err != nil {
			b.Fatal(err)
		}
		firSpeedup = rows[0].Speedup
	}
	b.ReportMetric(firSpeedup, "speedup-x")
}

// BenchmarkAblations regenerates the three design-choice studies
// (DCT symmetry, latch-placement sweep, unroll sweep).
func BenchmarkAblations(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := exp.FormatAblations(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeThroughput measures the rocccserve request path on the
// Fig. 2 FIR system; one benchmark op is one served stream, so the
// sub-benchmarks compare directly.
//
//   - inproc: the in-process client straight into the warm SystemPool —
//     the pool path the CI gate holds at 0 allocs/op in steady state.
//   - tcp-serial: one TCP client, one stream per request, sequential
//     round trips — the throughput floor.
//   - tcp-concurrent: several TCP clients issuing the same single-stream
//     requests concurrently; CI gates this at >= the serial floor on
//     multi-core runners (round trips overlap even on small machines).
//   - tcp-pipelined: several request slots multiplexed over ONE v2
//     pipelined connection — the Serve v2 headline. Requests overlap in
//     flight on a single socket, so the per-stream round-trip latency
//     amortizes away; CI gates this against tcp-serial (serve2 group).
func BenchmarkServeThroughput(b *testing.B) {
	srv := serve.NewServer(0)
	if err := srv.Register(serve.KernelSpec{
		Name: "fir", Source: exp.Fig3Source, Func: "fir",
		Options: DefaultOptions(), Config: netlist.Config{BusElems: 1},
	}); err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	mkJobs := func(n int) []netlist.Job {
		jobs := make([]netlist.Job, n)
		for j := range jobs {
			rng := rand.New(rand.NewSource(int64(j + 1)))
			in := make([]int64, 21)
			for i := range in {
				in[i] = rng.Int63n(255) - 128
			}
			jobs[j] = netlist.Job{Inputs: map[string][]int64{"A": in}}
		}
		return jobs
	}

	b.Run("inproc", func(b *testing.B) {
		client := srv.Local()
		const batch = 32
		jobs := mkJobs(batch)
		// Warm-up compiles the kernel, spawns the pool workers and
		// allocates the reusable output buffers.
		if err := client.Run("fir", jobs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		// Exactly b.N streams: the final batch is truncated so ns/op and
		// allocs/op really are per stream.
		for n := 0; n < b.N; {
			k := min(batch, b.N-n)
			if err := client.Run("fir", jobs[:k]); err != nil {
				b.Fatal(err)
			}
			n += k
		}
	})
	b.Run("tcp-serial", func(b *testing.B) {
		conn, err := serve.Dial(ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		jobs := mkJobs(1)
		if err := conn.Run("fir", jobs); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			if err := conn.Run("fir", jobs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tcp-concurrent", func(b *testing.B) {
		clients := min(8, max(2, runtime.GOMAXPROCS(0)))
		conns := make([]*serve.Conn, clients)
		for i := range conns {
			c, err := serve.Dial(ln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			conns[i] = c
			warm := mkJobs(1)
			if err := c.Run("fir", warm); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		var wg sync.WaitGroup
		var next atomic.Int64
		for i := range conns {
			wg.Add(1)
			go func(c *serve.Conn) {
				defer wg.Done()
				jobs := mkJobs(1)
				for int(next.Add(1)) <= b.N {
					if err := c.Run("fir", jobs); err != nil {
						b.Error(err)
						return
					}
				}
			}(conns[i])
		}
		wg.Wait()
	})
	b.Run("tcp-pipelined", func(b *testing.B) {
		conn, err := serve.DialPipelined(ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		slots := min(8, max(2, runtime.GOMAXPROCS(0)))
		warm := mkJobs(1)
		if err := conn.Run("fir", warm); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var wg sync.WaitGroup
		var next atomic.Int64
		var failed atomic.Bool
		for i := 0; i < slots; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				jobs := mkJobs(1)
				for int(next.Add(1)) <= b.N {
					if err := conn.Run("fir", jobs); err != nil {
						if failed.CompareAndSwap(false, true) {
							b.Error(err)
						}
						return
					}
				}
			}()
		}
		wg.Wait()
	})
}

// BenchmarkFleetRouter measures the fleet placement layer's overhead on
// the in-process fast path: Dispatch resolves the kernel's cached route
// and RunStream admits the stream against the shard's slot budget before
// handing it to the worker's warm SystemPool. One op is one served
// stream on a reused Job, so the admission + routing tax sits directly
// on top of the inproc ServeThroughput numbers; CI holds the steady
// state at 0 allocs/op (serve2 group) — routing must stay a pointer
// chase plus a few atomics, never an allocation.
func BenchmarkFleetRouter(b *testing.B) {
	spec := serve.KernelSpec{
		Name: "fir", Source: exp.Fig3Source, Func: "fir",
		Options: DefaultOptions(), Config: netlist.Config{BusElems: 1},
	}
	shards := make([]fleet.Shard, 2)
	for i := range shards {
		w := serve.NewServer(2)
		if err := w.Register(spec); err != nil {
			b.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			w.Shutdown(ctx)
		}()
		shards[i] = fleet.Shard{Local: w, Slots: 4}
	}
	r, err := fleet.NewRouter(shards)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	rng := rand.New(rand.NewSource(1))
	in := make([]int64, 21)
	for i := range in {
		in[i] = rng.Int63n(255) - 128
	}
	job := netlist.Job{Inputs: map[string][]int64{"A": in}}
	// Warm-up compiles the kernel on its owning shard, spawns the pool
	// workers and allocates THIS job's reusable output buffers — the
	// timed loop reuses the same Job so the steady state stays at 0
	// allocs/op.
	warm, err := r.Dispatch("fir")
	if err != nil {
		b.Fatal(err)
	}
	if warm.RunStream(&job); job.Err != nil {
		b.Fatal(job.Err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		runner, err := r.Dispatch("fir")
		if err != nil {
			b.Fatal(err)
		}
		if runner.RunStream(&job); job.Err != nil {
			b.Fatal(job.Err)
		}
	}
}

// BenchmarkLoadRecord measures rocccload's per-arrival hot path: one
// pacing-clock tick (Poisson interarrival draw) plus one histogram
// record. The loadpath gate holds it at zero allocations so the
// open-loop harness never perturbs the latencies it is measuring.
func BenchmarkLoadRecord(b *testing.B) {
	pacer := load.NewPacer(load.DistPoisson, 1e6, 42)
	var h load.Hist
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(pacer.Next())
	}
	if h.Count() != uint64(b.N) {
		b.Fatalf("recorded %d of %d ticks", h.Count(), b.N)
	}
}

// BenchmarkCalibrateTrial measures the calibration trial's timed region
// — calib.RunIters, the only code inside a trial's ns/iter measurement.
// The calibrate gate holds it at zero allocations: a measurement loop
// that allocated would fold GC noise into every backend pick.
func BenchmarkCalibrateTrial(b *testing.B) {
	res, err := Compile(exp.Fig3Source, "fir", DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	sys, err := netlist.NewSystem(res.Kernel, res.Datapath, netlist.Config{BusElems: 1})
	if err != nil {
		b.Fatal(err)
	}
	feeds := calib.FeedsFor(calib.InputsFor(res.Kernel, calib.DefaultSeed))
	// One unmeasured pass so pool-free setup (plan cache, lazy buffers)
	// lands outside the measurement, as a trial's warmup does.
	if err := calib.RunIters(sys, feeds, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := calib.RunIters(sys, feeds, 1); err != nil {
			b.Fatal(err)
		}
	}
}
