// Package roccc is a from-scratch Go reproduction of the ROCCC C-to-VHDL
// compiler described in "Optimized Generation of Data-path from C Codes
// for FPGAs" (Guo, Buyukkurt, Najjar, Vissers — DATE 2005).
//
// The library compiles restricted-C kernels into pipelined data paths:
//
//	res, err := roccc.Compile(src, "fir", roccc.DefaultOptions())
//	files, err := roccc.GenerateVHDL(res)     // RTL VHDL (§4.2.4)
//	report := roccc.Synthesize(res, 1)        // Virtex-II area/clock model
//	sys, _ := roccc.NewSystem(res, roccc.SystemConfig{BusElems: 1})
//
// The full pipeline follows the paper: C front end → loop-level
// optimization → scalar replacement and feedback detection (§4.1) →
// SUIFvm lowering, CFG and SSA (§4.2.1) → data-path building with soft,
// mux and pipe nodes (§4.2.2) → latch placement (§4.2.3) → bit-width
// inference and VHDL generation (§4.2.4). Generated circuits are
// cycle-accurately simulated and verified against the C semantics.
//
// Simulation follows hardware drain semantics: pipeline bubbles (fill
// and drain cycles) carry a poison bit, so ops fed by a bubble cannot
// fault — a zero divisor or out-of-range LUT index in a bubble lane is
// masked, exactly as real hardware ignores bubble lanes while flushing —
// while the same fault on a valid iteration still aborts the run. A
// System runs once per Reset: Run a second time without Reset is an
// error (its address generators and buffers are consumed), and Output
// errors until a run has completed.
package roccc

import (
	"fmt"

	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/exp"
	"roccc/internal/netlist"
	"roccc/internal/smartbuf"
	"roccc/internal/synth"
	"roccc/internal/vhdl"
)

// Options control compilation; see core.Options for the field docs.
type Options = core.Options

// Result carries every intermediate representation of a compiled kernel.
type Result = core.Result

// VHDLFile is one generated design unit.
type VHDLFile = vhdl.File

// Report is a synthesis (area/clock) report.
type Report = synth.Report

// System is the Fig. 2 execution model: BRAMs, smart buffers, address
// generators, controller and the pipelined data path.
type System = netlist.System

// SystemConfig configures system construction.
type SystemConfig = netlist.Config

// Backend selects the data-path execution backend
// (SystemConfig.Backend): the interpreter reference, the threaded
// per-kernel compiled code, or the closed-form feedback-cone ablation.
// All backends are bit-identical; they differ only in host speed.
type Backend = dp.Backend

// The available execution backends. BackendInterp is the zero value.
const (
	BackendInterp   = dp.BackendInterp
	BackendThreaded = dp.BackendThreaded
	BackendCone     = dp.BackendCone
)

// ParseBackend parses a backend name: "interp", "threaded" or "cone".
func ParseBackend(s string) (Backend, error) { return dp.ParseBackend(s) }

// Sim is the cycle-accurate data-path simulator (the compiled,
// allocation-free core).
type Sim = dp.Sim

// RefSim is the direct, map-based reference simulator with identical
// semantics; differential tests step both in lockstep.
type RefSim = dp.RefSim

// SystemPool is a pool of Reset-able Systems for one compiled kernel
// with persistent workers sharding independent input streams across
// cores (netlist.SystemPool).
type SystemPool = netlist.SystemPool

// SweepJob is one independent input stream for SystemPool.RunBatch.
type SweepJob = netlist.Job

// DefaultOptions returns the standard optimizing configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// Compile compiles the kernel function fname from C source text through
// the full pipeline.
func Compile(src, fname string, opt Options) (*Result, error) {
	return core.CompileSource(src, fname, opt)
}

// GenerateVHDL renders the kernel's complete VHDL file set: the
// pipelined data path, ROM components with init files, smart buffers,
// address generators and the controller FSM. Kernels without a
// streaming loop nest deliberately get no buffer/controller units (a
// combinational data path needs none); for streaming kernels a buffer
// configuration failure is a real error and is returned rather than
// silently producing an incomplete file set.
func GenerateVHDL(res *Result) ([]VHDLFile, error) {
	files := vhdl.EmitDatapath(res.Datapath)
	var cfgs []smartbuf.Config
	if res.Kernel.Nest.Depth() > 0 && len(res.Kernel.Reads) > 0 {
		var err error
		cfgs, err = synth.KernelBufferConfigs(res.Kernel, 1)
		if err != nil {
			return nil, fmt.Errorf("roccc: smart-buffer configuration for %s: %w", res.Kernel.Name, err)
		}
	}
	return vhdl.EmitKernel(res.Kernel, files, cfgs, res.Datapath.Latency()), nil
}

// Synthesize costs the compiled kernel on the Virtex-II xc2v2000-5
// model (the reproduction's substitute for Xilinx ISE), including smart
// buffers and controller for streaming kernels.
func Synthesize(res *Result, busElems int) *Report {
	opt := synth.Options{}
	if res.Kernel.Nest.Depth() > 0 && len(res.Kernel.Reads) > 0 {
		if cfgs, err := synth.KernelBufferConfigs(res.Kernel, busElems); err == nil {
			opt.BufferConfigs = cfgs
			opt.ControllerIters = int(res.Kernel.Nest.TotalIterations())
		}
	}
	return synth.Synthesize(res.Datapath, opt)
}

// NewSystem builds the full execution-model simulation for a compiled
// streaming kernel.
func NewSystem(res *Result, cfg SystemConfig) (*System, error) {
	return netlist.NewSystem(res.Kernel, res.Datapath, cfg)
}

// NewSystemPool builds a pool of reusable Systems for a compiled
// streaming kernel; RunBatch on it shards independent input streams
// across up to workers goroutines (<= 0 means GOMAXPROCS).
func NewSystemPool(res *Result, cfg SystemConfig, workers int) (*SystemPool, error) {
	return netlist.NewSystemPool(res.Kernel, res.Datapath, cfg, workers)
}

// NewSim builds a cycle-accurate simulator for the data path alone
// (combinational kernels and unit tests). The data path's execution
// plan is compiled once and cached on it, so repeated NewSim calls in
// sweeps skip recompilation.
func NewSim(res *Result) *Sim { return dp.NewSim(res.Datapath) }

// NewRefSim builds the map-based reference simulator for differential
// checking against NewSim.
func NewRefSim(res *Result) *RefSim { return dp.NewRefSim(res.Datapath) }

// BufferConfig derives the smart-buffer configuration for read window i
// of a compiled kernel.
func BufferConfig(res *Result, i, busElems int) (smartbuf.Config, error) {
	return smartbuf.ConfigFor(res.Kernel.Reads[i], &res.Kernel.Nest, busElems)
}

// Table1 regenerates the paper's Table 1.
func Table1() string {
	rows, err := exp.Table1()
	if err != nil {
		return "table 1 failed: " + err.Error()
	}
	return exp.FormatTable1(rows, true)
}
