// Package cc implements the restricted-C front end of the ROCCC
// reproduction: a lexer, a recursive-descent parser and a semantic
// analyzer for the C subset the DATE'05 paper accepts (no recursion, no
// pointers except as multiple-return-value markers, integer types up to
// 32 bits, constant-bound for loops, 1-D and 2-D arrays).
package cc

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// Token kinds. Keyword kinds follow the punctuation block.
const (
	EOF Kind = iota
	IDENT
	NUMBER

	// Punctuation and operators.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	SEMI     // ;
	COMMA    // ,
	ASSIGN   // =
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	AMP      // &
	PIPE     // |
	CARET    // ^
	TILDE    // ~
	BANG     // !
	LT       // <
	GT       // >
	LE       // <=
	GE       // >=
	EQ       // ==
	NE       // !=
	SHL      // <<
	SHR      // >>
	LAND     // &&
	LOR      // ||
	QUEST    // ?
	COLON    // :
	INC      // ++
	DEC      // --
	PLUSEQ   // +=
	MINUSEQ  // -=
	STAREQ   // *=
	SLASHEQ  // /=
	SHLEQ    // <<=
	SHREQ    // >>=
	AMPEQ    // &=
	PIPEEQ   // |=
	CARETEQ  // ^=

	// Keywords.
	KwInt
	KwChar
	KwShort
	KwLong
	KwUnsigned
	KwSigned
	KwVoid
	KwIf
	KwElse
	KwFor
	KwWhile
	KwReturn
	KwConst
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", NUMBER: "number",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", SEMI: ";", COMMA: ",",
	ASSIGN: "=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/",
	PERCENT: "%", AMP: "&", PIPE: "|", CARET: "^", TILDE: "~",
	BANG: "!", LT: "<", GT: ">", LE: "<=", GE: ">=", EQ: "==",
	NE: "!=", SHL: "<<", SHR: ">>", LAND: "&&", LOR: "||",
	QUEST: "?", COLON: ":", INC: "++", DEC: "--",
	PLUSEQ: "+=", MINUSEQ: "-=", STAREQ: "*=", SLASHEQ: "/=",
	SHLEQ: "<<=", SHREQ: ">>=", AMPEQ: "&=", PIPEEQ: "|=", CARETEQ: "^=",
	KwInt: "int", KwChar: "char", KwShort: "short", KwLong: "long",
	KwUnsigned: "unsigned", KwSigned: "signed", KwVoid: "void",
	KwIf: "if", KwElse: "else", KwFor: "for", KwWhile: "while",
	KwReturn: "return", KwConst: "const",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"int": KwInt, "char": KwChar, "short": KwShort, "long": KwLong,
	"unsigned": KwUnsigned, "signed": KwSigned, "void": KwVoid,
	"if": KwIf, "else": KwElse, "for": KwFor, "while": KwWhile,
	"return": KwReturn, "const": KwConst,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token with its source position.
type Token struct {
	Kind Kind
	Text string
	Val  int64 // value for NUMBER tokens
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER:
		return fmt.Sprintf("%s(%s)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
