package cc

import (
	"fmt"
	"strconv"
)

// Lexer converts restricted-C source text into a token stream. It
// understands //-line and /* */-block comments, decimal, hexadecimal and
// character literals, and all operators used by the ROCCC C subset.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the entire input, returning the token slice terminated by
// an EOF token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			open := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return fmt.Errorf("cc: %s: unterminated block comment", open)
			}
		case c == '#':
			// Preprocessor lines (e.g. #define guards in test inputs) are
			// skipped wholesale; the subset does not use macros beyond the
			// ROCCC_* intrinsics which are plain calls.
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Next returns the next token in the stream.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: start}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		from := lx.off
		for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
			lx.advance()
		}
		text := lx.src[from:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: start}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: start}, nil
	case isDigit(c):
		return lx.number(start)
	case c == '\'':
		return lx.charLit(start)
	}
	lx.advance()
	two := func(second byte, withKind, aloneKind Kind) (Token, error) {
		if lx.peek() == second {
			lx.advance()
			return Token{Kind: withKind, Pos: start}, nil
		}
		return Token{Kind: aloneKind, Pos: start}, nil
	}
	switch c {
	case '(':
		return Token{Kind: LPAREN, Pos: start}, nil
	case ')':
		return Token{Kind: RPAREN, Pos: start}, nil
	case '{':
		return Token{Kind: LBRACE, Pos: start}, nil
	case '}':
		return Token{Kind: RBRACE, Pos: start}, nil
	case '[':
		return Token{Kind: LBRACKET, Pos: start}, nil
	case ']':
		return Token{Kind: RBRACKET, Pos: start}, nil
	case ';':
		return Token{Kind: SEMI, Pos: start}, nil
	case ',':
		return Token{Kind: COMMA, Pos: start}, nil
	case '?':
		return Token{Kind: QUEST, Pos: start}, nil
	case ':':
		return Token{Kind: COLON, Pos: start}, nil
	case '~':
		return Token{Kind: TILDE, Pos: start}, nil
	case '=':
		return two('=', EQ, ASSIGN)
	case '!':
		return two('=', NE, BANG)
	case '+':
		if lx.peek() == '+' {
			lx.advance()
			return Token{Kind: INC, Pos: start}, nil
		}
		return two('=', PLUSEQ, PLUS)
	case '-':
		if lx.peek() == '-' {
			lx.advance()
			return Token{Kind: DEC, Pos: start}, nil
		}
		return two('=', MINUSEQ, MINUS)
	case '*':
		return two('=', STAREQ, STAR)
	case '/':
		return two('=', SLASHEQ, SLASH)
	case '%':
		return Token{Kind: PERCENT, Pos: start}, nil
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return Token{Kind: LAND, Pos: start}, nil
		}
		return two('=', AMPEQ, AMP)
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: LOR, Pos: start}, nil
		}
		return two('=', PIPEEQ, PIPE)
	case '^':
		return two('=', CARETEQ, CARET)
	case '<':
		if lx.peek() == '<' {
			lx.advance()
			return two('=', SHLEQ, SHL)
		}
		return two('=', LE, LT)
	case '>':
		if lx.peek() == '>' {
			lx.advance()
			return two('=', SHREQ, SHR)
		}
		return two('=', GE, GT)
	}
	return Token{}, fmt.Errorf("cc: %s: unexpected character %q", start, c)
}

func (lx *Lexer) number(start Pos) (Token, error) {
	from := lx.off
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
	} else {
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
	}
	text := lx.src[from:lx.off]
	// Integer suffixes (u, U, l, L) are accepted and ignored.
	for lx.off < len(lx.src) {
		switch lx.peek() {
		case 'u', 'U', 'l', 'L':
			lx.advance()
		default:
			goto done
		}
	}
done:
	v, err := strconv.ParseInt(text, 0, 64)
	if err != nil {
		return Token{}, fmt.Errorf("cc: %s: bad number %q: %v", start, text, err)
	}
	return Token{Kind: NUMBER, Text: text, Val: v, Pos: start}, nil
}

func (lx *Lexer) charLit(start Pos) (Token, error) {
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		return Token{}, fmt.Errorf("cc: %s: unterminated character literal", start)
	}
	var v int64
	c := lx.advance()
	if c == '\\' {
		if lx.off >= len(lx.src) {
			return Token{}, fmt.Errorf("cc: %s: unterminated escape", start)
		}
		e := lx.advance()
		switch e {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case 'r':
			v = '\r'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		default:
			return Token{}, fmt.Errorf("cc: %s: unsupported escape \\%c", start, e)
		}
	} else {
		v = int64(c)
	}
	if lx.off >= len(lx.src) || lx.advance() != '\'' {
		return Token{}, fmt.Errorf("cc: %s: unterminated character literal", start)
	}
	return Token{Kind: NUMBER, Text: fmt.Sprintf("%d", v), Val: v, Pos: start}, nil
}
