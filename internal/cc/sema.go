package cc

import (
	"fmt"
	"strings"
)

// SymKind classifies a resolved symbol.
type SymKind int

// Symbol kinds.
const (
	SymGlobal     SymKind = iota // global scalar variable
	SymConstArray                // global const array (ROM / lookup table)
	SymArray                     // global mutable array (memory-resident data)
	SymParam                     // scalar input parameter
	SymOutParam                  // pointer output parameter
	SymArrayParam                // array parameter (memory-resident data)
	SymLocal                     // function-local scalar
)

func (k SymKind) String() string {
	switch k {
	case SymGlobal:
		return "global"
	case SymConstArray:
		return "const-array"
	case SymArray:
		return "array"
	case SymParam:
		return "param"
	case SymOutParam:
		return "out-param"
	case SymArrayParam:
		return "array-param"
	case SymLocal:
		return "local"
	}
	return "symbol"
}

// Symbol is a named program entity discovered during semantic analysis.
type Symbol struct {
	Name string
	Kind SymKind
	Type Type
	Decl *VarDecl // for globals/const arrays, else nil
}

// Elem returns the scalar type carried by the symbol (element type for
// arrays, pointee for out-params).
func (s *Symbol) Elem() IntType {
	switch t := s.Type.(type) {
	case IntType:
		return t
	case ArrayType:
		return t.Elem
	case PointerType:
		return t.Elem
	}
	return Int32
}

// Info is the result of semantic analysis: expression types and
// identifier resolutions for one translation unit.
type Info struct {
	File  *File
	Types map[Expr]Type    // type of every expression node
	Refs  map[Expr]*Symbol // *Ident and *Deref resolution
	Funcs map[string]*FuncDecl

	// Declaration-to-symbol bindings, used by HIR construction.
	GlobalSyms map[*VarDecl]*Symbol
	LocalSyms  map[*LocalDecl]*Symbol
	ParamSyms  map[*FuncDecl]map[string]*Symbol
}

// TypeOf returns the analyzed type of e; Int32 if unknown.
func (in *Info) TypeOf(e Expr) Type {
	if t, ok := in.Types[e]; ok {
		return t
	}
	return Int32
}

// IntTypeOf returns the analyzed integer type of e; Int32 if e is not an
// integer expression.
func (in *Info) IntTypeOf(e Expr) IntType {
	if t, ok := in.Types[e].(IntType); ok {
		return t
	}
	return Int32
}

// SymbolOf returns the symbol an *Ident or *Deref resolves to, or nil.
func (in *Info) SymbolOf(e Expr) *Symbol { return in.Refs[e] }

// Intrinsic names understood by the compiler. ROCCC_load_prev and
// ROCCC_store2next are the feedback annotations of Fig. 4; casts are
// produced by the parser for C cast syntax.
const (
	IntrinsicLoadPrev   = "ROCCC_load_prev"
	IntrinsicStoreNext  = "ROCCC_store2next"
	intrinsicCastPrefix = "__cast_"
)

// IsCastIntrinsic reports whether name is a width-cast intrinsic, and if
// so returns the target type.
func IsCastIntrinsic(name string) (IntType, bool) {
	if !strings.HasPrefix(name, intrinsicCastPrefix) {
		return IntType{}, false
	}
	return parseSizedTypeName(name[len(intrinsicCastPrefix):])
}

type scope struct {
	parent *scope
	syms   map[string]*Symbol
}

func (sc *scope) lookup(name string) *Symbol {
	for s := sc; s != nil; s = s.parent {
		if sym, ok := s.syms[name]; ok {
			return sym
		}
	}
	return nil
}

func (sc *scope) define(sym *Symbol) error {
	if _, ok := sc.syms[sym.Name]; ok {
		return fmt.Errorf("cc: redeclaration of %q", sym.Name)
	}
	sc.syms[sym.Name] = sym
	return nil
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, syms: map[string]*Symbol{}}
}

type checker struct {
	info    *Info
	globals *scope
	fn      *FuncDecl
	calls   map[string][]string // call graph for recursion detection
}

// Analyze type-checks a parsed file and returns the analysis results.
// It enforces the paper's front-end restrictions: no recursion, pointers
// only as output parameters, const-bounded arrays, integer-only data.
func Analyze(file *File) (*Info, error) {
	info := &Info{
		File:       file,
		Types:      map[Expr]Type{},
		Refs:       map[Expr]*Symbol{},
		Funcs:      map[string]*FuncDecl{},
		GlobalSyms: map[*VarDecl]*Symbol{},
		LocalSyms:  map[*LocalDecl]*Symbol{},
		ParamSyms:  map[*FuncDecl]map[string]*Symbol{},
	}
	ck := &checker{info: info, globals: newScope(nil), calls: map[string][]string{}}
	for _, g := range file.Globals {
		kind := SymGlobal
		switch t := g.Type.(type) {
		case ArrayType:
			if g.IsConst {
				kind = SymConstArray
				if g.InitArr == nil {
					return nil, fmt.Errorf("cc: %s: const array %q needs an initializer", g.Pos, g.Name)
				}
				want := t.Dims[0]
				if len(t.Dims) == 2 {
					want *= t.Dims[1]
				}
				if len(g.InitArr) > want {
					return nil, fmt.Errorf("cc: %s: too many initializers for %q", g.Pos, g.Name)
				}
			} else {
				kind = SymArray
			}
		case IntType:
			// scalar global
		default:
			return nil, fmt.Errorf("cc: %s: unsupported global type %s", g.Pos, g.Type)
		}
		sym := &Symbol{Name: g.Name, Kind: kind, Type: g.Type, Decl: g}
		if err := ck.globals.define(sym); err != nil {
			return nil, fmt.Errorf("%v at %s", err, g.Pos)
		}
		info.GlobalSyms[g] = sym
	}
	for _, fn := range file.Funcs {
		if _, dup := info.Funcs[fn.Name]; dup {
			return nil, fmt.Errorf("cc: %s: redefinition of function %q", fn.Pos, fn.Name)
		}
		info.Funcs[fn.Name] = fn
	}
	for _, fn := range file.Funcs {
		if err := ck.checkFunc(fn); err != nil {
			return nil, err
		}
	}
	if err := ck.checkNoRecursion(); err != nil {
		return nil, err
	}
	return info, nil
}

func (ck *checker) checkFunc(fn *FuncDecl) error {
	ck.fn = fn
	sc := newScope(ck.globals)
	for _, prm := range fn.Params {
		kind := SymParam
		switch prm.Type.(type) {
		case PointerType:
			kind = SymOutParam
		case ArrayType:
			kind = SymArrayParam
		case IntType:
			kind = SymParam
		default:
			return fmt.Errorf("cc: %s: unsupported parameter type %s", prm.Pos, prm.Type)
		}
		sym := &Symbol{Name: prm.Name, Kind: kind, Type: prm.Type}
		if err := sc.define(sym); err != nil {
			return fmt.Errorf("%v at %s", err, prm.Pos)
		}
		if ck.info.ParamSyms[fn] == nil {
			ck.info.ParamSyms[fn] = map[string]*Symbol{}
		}
		ck.info.ParamSyms[fn][prm.Name] = sym
	}
	return ck.checkBlock(fn.Body, sc)
}

func (ck *checker) checkBlock(b *Block, sc *scope) error {
	inner := newScope(sc)
	for _, s := range b.Stmts {
		if err := ck.checkStmt(s, inner); err != nil {
			return err
		}
	}
	return nil
}

func (ck *checker) checkStmt(s Stmt, sc *scope) error {
	switch s := s.(type) {
	case *Block:
		return ck.checkBlock(s, sc)
	case *LocalDecl:
		it, ok := s.Type.(IntType)
		if !ok {
			return fmt.Errorf("cc: %s: local %q must be an integer scalar", s.Pos, s.Name)
		}
		if s.Init != nil {
			if _, err := ck.checkExpr(s.Init, sc); err != nil {
				return err
			}
		}
		sym := &Symbol{Name: s.Name, Kind: SymLocal, Type: it}
		ck.info.LocalSyms[s] = sym
		return sc.define(sym)
	case *Assign:
		if err := ck.checkLValue(s.LHS, sc); err != nil {
			return err
		}
		_, err := ck.checkExpr(s.RHS, sc)
		return err
	case *If:
		if _, err := ck.checkExpr(s.Cond, sc); err != nil {
			return err
		}
		if err := ck.checkBlock(s.Then, sc); err != nil {
			return err
		}
		if s.Else != nil {
			return ck.checkBlock(s.Else, sc)
		}
		return nil
	case *For:
		inner := newScope(sc)
		if s.Init != nil {
			if err := ck.checkStmt(s.Init, inner); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if _, err := ck.checkExpr(s.Cond, inner); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := ck.checkStmt(s.Post, inner); err != nil {
				return err
			}
		}
		return ck.checkBlock(s.Body, inner)
	case *Return:
		if s.Value == nil {
			if _, isVoid := ck.fn.Ret.(VoidType); !isVoid {
				return fmt.Errorf("cc: %s: missing return value in %q", s.Pos, ck.fn.Name)
			}
			return nil
		}
		if _, isVoid := ck.fn.Ret.(VoidType); isVoid {
			return fmt.Errorf("cc: %s: returning a value from void function %q", s.Pos, ck.fn.Name)
		}
		_, err := ck.checkExpr(s.Value, sc)
		return err
	case *ExprStmt:
		call, ok := s.X.(*Call)
		if !ok {
			return fmt.Errorf("cc: %s: expression statement must be a call", s.Pos)
		}
		_, err := ck.checkExpr(call, sc)
		return err
	default:
		return fmt.Errorf("cc: unexpected statement %T", s)
	}
}

// checkLValue validates an assignment target and records its type.
func (ck *checker) checkLValue(e Expr, sc *scope) error {
	switch e := e.(type) {
	case *Ident:
		sym := sc.lookup(e.Name)
		if sym == nil {
			return fmt.Errorf("cc: %s: undeclared variable %q", e.Pos, e.Name)
		}
		switch sym.Kind {
		case SymLocal, SymGlobal, SymParam:
			ck.info.Refs[e] = sym
			ck.info.Types[e] = sym.Type
			return nil
		default:
			return fmt.Errorf("cc: %s: cannot assign to %s %q", e.Pos, sym.Kind, e.Name)
		}
	case *Index:
		sym := sc.lookup(e.Base.Name)
		if sym == nil {
			return fmt.Errorf("cc: %s: undeclared array %q", e.Pos, e.Base.Name)
		}
		if sym.Kind == SymConstArray {
			return fmt.Errorf("cc: %s: cannot assign to const array %q", e.Pos, e.Base.Name)
		}
		if sym.Kind != SymArray && sym.Kind != SymArrayParam {
			return fmt.Errorf("cc: %s: %q is not an array", e.Pos, e.Base.Name)
		}
		at := sym.Type.(ArrayType)
		if len(e.Idx) != len(at.Dims) {
			return fmt.Errorf("cc: %s: %q has %d dimensions, indexed with %d",
				e.Pos, e.Base.Name, len(at.Dims), len(e.Idx))
		}
		for _, ix := range e.Idx {
			if _, err := ck.checkExpr(ix, sc); err != nil {
				return err
			}
		}
		ck.info.Refs[e.Base] = sym
		ck.info.Refs[e] = sym
		ck.info.Types[e] = at.Elem
		return nil
	case *Deref:
		sym := sc.lookup(e.X.Name)
		if sym == nil {
			return fmt.Errorf("cc: %s: undeclared variable %q", e.Pos, e.X.Name)
		}
		if sym.Kind != SymOutParam {
			return fmt.Errorf("cc: %s: * is only allowed on pointer output parameters (ROCCC does not support pointers)", e.Pos)
		}
		ck.info.Refs[e] = sym
		ck.info.Refs[e.X] = sym
		ck.info.Types[e] = sym.Type.(PointerType).Elem
		return nil
	default:
		return fmt.Errorf("cc: %s: invalid assignment target", e.ExprPos())
	}
}

// integerPromote applies the C integer promotions: any type narrower
// than int is promoted to int (32-bit signed) — int can represent all
// its values since the subset caps widths at 32 bits.
func integerPromote(t IntType) IntType {
	if t.Bits < 32 {
		return Int32
	}
	return t
}

// promote implements the usual arithmetic conversions: both operands are
// integer-promoted (both end up 32 bits wide), then unsigned wins.
func promote(a, b IntType) IntType {
	a, b = integerPromote(a), integerPromote(b)
	if !a.Signed || !b.Signed {
		return UInt32
	}
	return Int32
}

// UInt1 is the 1-bit boolean produced by comparisons and logic operators.
var UInt1 = IntType{Bits: 1, Signed: false}

func (ck *checker) checkExpr(e Expr, sc *scope) (Type, error) {
	switch e := e.(type) {
	case *NumberLit:
		t := Int32
		ck.info.Types[e] = t
		return t, nil
	case *Ident:
		sym := sc.lookup(e.Name)
		if sym == nil {
			return nil, fmt.Errorf("cc: %s: undeclared variable %q", e.Pos, e.Name)
		}
		switch sym.Kind {
		case SymOutParam:
			return nil, fmt.Errorf("cc: %s: output parameter %q must be dereferenced", e.Pos, e.Name)
		case SymArray, SymConstArray, SymArrayParam:
			return nil, fmt.Errorf("cc: %s: array %q used without index", e.Pos, e.Name)
		}
		ck.info.Refs[e] = sym
		ck.info.Types[e] = sym.Type
		return sym.Type, nil
	case *Index:
		sym := sc.lookup(e.Base.Name)
		if sym == nil {
			return nil, fmt.Errorf("cc: %s: undeclared array %q", e.Pos, e.Base.Name)
		}
		at, ok := sym.Type.(ArrayType)
		if !ok {
			return nil, fmt.Errorf("cc: %s: %q is not an array", e.Pos, e.Base.Name)
		}
		if len(e.Idx) != len(at.Dims) {
			return nil, fmt.Errorf("cc: %s: %q has %d dimensions, indexed with %d",
				e.Pos, e.Base.Name, len(at.Dims), len(e.Idx))
		}
		for _, ix := range e.Idx {
			if _, err := ck.checkExpr(ix, sc); err != nil {
				return nil, err
			}
		}
		ck.info.Refs[e.Base] = sym
		ck.info.Refs[e] = sym
		ck.info.Types[e] = at.Elem
		return at.Elem, nil
	case *Deref:
		if err := ck.checkLValue(e, sc); err != nil {
			return nil, err
		}
		return ck.info.Types[e], nil
	case *Unary:
		xt, err := ck.checkExpr(e.X, sc)
		if err != nil {
			return nil, err
		}
		it, ok := xt.(IntType)
		if !ok {
			return nil, fmt.Errorf("cc: %s: unary %s on non-integer", e.Pos, e.Op)
		}
		var t IntType
		switch e.Op {
		case BANG:
			t = UInt1
		default: // MINUS, TILDE operate on the promoted operand
			t = integerPromote(it)
		}
		ck.info.Types[e] = t
		return t, nil
	case *Binary:
		xt, err := ck.checkExpr(e.X, sc)
		if err != nil {
			return nil, err
		}
		yt, err := ck.checkExpr(e.Y, sc)
		if err != nil {
			return nil, err
		}
		xi, xok := xt.(IntType)
		yi, yok := yt.(IntType)
		if !xok || !yok {
			return nil, fmt.Errorf("cc: %s: binary %s on non-integer operands", e.Pos, e.Op)
		}
		var t IntType
		switch e.Op {
		case LT, LE, GT, GE, EQ, NE, LAND, LOR:
			t = UInt1
		case SHL, SHR:
			t = integerPromote(xi) // the result has the promoted left type
		default:
			t = promote(xi, yi)
		}
		ck.info.Types[e] = t
		return t, nil
	case *CondExpr:
		if _, err := ck.checkExpr(e.Cond, sc); err != nil {
			return nil, err
		}
		tt, err := ck.checkExpr(e.Then, sc)
		if err != nil {
			return nil, err
		}
		ft, err := ck.checkExpr(e.Else, sc)
		if err != nil {
			return nil, err
		}
		ti, tok := tt.(IntType)
		fi, fok := ft.(IntType)
		if !tok || !fok {
			return nil, fmt.Errorf("cc: %s: non-integer conditional arms", e.Pos)
		}
		t := promote(ti, fi)
		ck.info.Types[e] = t
		return t, nil
	case *Call:
		return ck.checkCall(e, sc)
	default:
		return nil, fmt.Errorf("cc: unexpected expression %T", e)
	}
}

func (ck *checker) checkCall(e *Call, sc *scope) (Type, error) {
	if t, ok := IsCastIntrinsic(e.Name); ok {
		if len(e.Args) != 1 {
			return nil, fmt.Errorf("cc: %s: cast takes one operand", e.Pos)
		}
		if _, err := ck.checkExpr(e.Args[0], sc); err != nil {
			return nil, err
		}
		ck.info.Types[e] = t
		return t, nil
	}
	switch e.Name {
	case IntrinsicLoadPrev:
		if len(e.Args) != 1 {
			return nil, fmt.Errorf("cc: %s: %s takes one argument", e.Pos, e.Name)
		}
		id, ok := e.Args[0].(*Ident)
		if !ok {
			return nil, fmt.Errorf("cc: %s: %s argument must be a variable", e.Pos, e.Name)
		}
		sym := sc.lookup(id.Name)
		if sym == nil {
			return nil, fmt.Errorf("cc: %s: undeclared variable %q", id.Pos, id.Name)
		}
		ck.info.Refs[id] = sym
		t := sym.Elem()
		ck.info.Types[id] = t
		ck.info.Types[e] = t
		return t, nil
	case IntrinsicStoreNext:
		if len(e.Args) != 2 {
			return nil, fmt.Errorf("cc: %s: %s takes two arguments", e.Pos, e.Name)
		}
		id, ok := e.Args[0].(*Ident)
		if !ok {
			return nil, fmt.Errorf("cc: %s: %s target must be a variable", e.Pos, e.Name)
		}
		sym := sc.lookup(id.Name)
		if sym == nil {
			return nil, fmt.Errorf("cc: %s: undeclared variable %q", id.Pos, id.Name)
		}
		ck.info.Refs[id] = sym
		ck.info.Types[id] = sym.Elem()
		if _, err := ck.checkExpr(e.Args[1], sc); err != nil {
			return nil, err
		}
		ck.info.Types[e] = VoidType{}
		return VoidType{}, nil
	}
	callee, ok := ck.info.Funcs[e.Name]
	if !ok {
		return nil, fmt.Errorf("cc: %s: call to undefined function %q", e.Pos, e.Name)
	}
	ck.calls[ck.fn.Name] = append(ck.calls[ck.fn.Name], e.Name)
	var scalarParams []Param
	for _, prm := range callee.Params {
		if _, isInt := prm.Type.(IntType); isInt {
			scalarParams = append(scalarParams, prm)
		}
	}
	if len(e.Args) != len(scalarParams) {
		return nil, fmt.Errorf("cc: %s: %q expects %d scalar arguments, got %d",
			e.Pos, e.Name, len(scalarParams), len(e.Args))
	}
	for _, a := range e.Args {
		if _, err := ck.checkExpr(a, sc); err != nil {
			return nil, err
		}
	}
	ck.info.Types[e] = callee.Ret
	return callee.Ret, nil
}

// checkNoRecursion rejects direct or mutual recursion, one of the
// paper's stated restrictions on accepted C code.
func (ck *checker) checkNoRecursion() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(name string) error
	visit = func(name string) error {
		color[name] = gray
		for _, callee := range ck.calls[name] {
			switch color[callee] {
			case gray:
				return fmt.Errorf("cc: recursion involving %q is not supported", callee)
			case white:
				if err := visit(callee); err != nil {
					return err
				}
			}
		}
		color[name] = black
		return nil
	}
	for name := range ck.info.Funcs {
		if color[name] == white {
			if err := visit(name); err != nil {
				return err
			}
		}
	}
	return nil
}
