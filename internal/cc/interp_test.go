package cc

import (
	"testing"
	"testing/quick"
)

func TestInterpFIR(t *testing.T) {
	info := mustAnalyze(t, firSource)
	ip := NewInterp(info)
	in := make([]int64, 21)
	for i := range in {
		in[i] = int64(i + 1)
	}
	ip.SetArray("A", in)
	if _, _, err := ip.Call("fir"); err != nil {
		t.Fatal(err)
	}
	out := ip.Arrays["C"]
	for i := 0; i < 17; i++ {
		want := 3*in[i] + 5*in[i+1] + 7*in[i+2] + 9*in[i+3] - in[i+4]
		if out[i] != want {
			t.Errorf("C[%d] = %d, want %d", i, out[i], want)
		}
	}
}

func TestInterpAccumulator(t *testing.T) {
	info := mustAnalyze(t, accumSource)
	ip := NewInterp(info)
	in := make([]int64, 32)
	var want int64
	for i := range in {
		in[i] = int64(3*i - 7)
		want += in[i]
	}
	ip.SetArray("A", in)
	if _, _, err := ip.Call("accum"); err != nil {
		t.Fatal(err)
	}
	if got := ip.Globals["sum"]; got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestInterpIfElse(t *testing.T) {
	info := mustAnalyze(t, ifElseSource)
	ip := NewInterp(info)
	check := func(x1, x2 int64) {
		_, outs, err := ip.Call("if_else", x1, x2)
		if err != nil {
			t.Fatal(err)
		}
		c := x1 - x2
		var a int64
		if c < x2 {
			a = x1 * x1
		} else {
			a = x1*x2 + 3
		}
		c = c - a
		if outs[0] != Int32.Wrap(c) || outs[1] != Int32.Wrap(a) {
			t.Errorf("if_else(%d,%d) = (%d,%d), want (%d,%d)", x1, x2, outs[0], outs[1], c, a)
		}
	}
	check(10, 3)
	check(3, 10)
	check(-5, -5)
	check(0, 0)
}

func TestInterpIfElseQuick(t *testing.T) {
	info := mustAnalyze(t, ifElseSource)
	ip := NewInterp(info)
	f := func(x1, x2 int16) bool {
		_, outs, err := ip.Call("if_else", int64(x1), int64(x2))
		if err != nil {
			return false
		}
		c := int64(x1) - int64(x2)
		var a int64
		if c < int64(x2) {
			a = int64(x1) * int64(x1)
		} else {
			a = int64(x1)*int64(x2) + 3
		}
		c = Int32.Wrap(c - a)
		return outs[0] == c && outs[1] == Int32.Wrap(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterpWrapping(t *testing.T) {
	src := `void f(uint8 a, uint8 b, uint8* o) { *o = a + b; }`
	info := mustAnalyze(t, src)
	ip := NewInterp(info)
	_, outs, err := ip.Call("f", 200, 100)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != (200+100)%256 {
		t.Errorf("uint8 wrap: got %d, want %d", outs[0], (200+100)%256)
	}
}

func TestInterpSignedWrap(t *testing.T) {
	src := `void f(int8 a, int8* o) { *o = a + 1; }`
	info := mustAnalyze(t, src)
	ip := NewInterp(info)
	_, outs, err := ip.Call("f", 127)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != -128 {
		t.Errorf("int8 127+1 = %d, want -128", outs[0])
	}
}

func TestInterpUnsignedShiftRight(t *testing.T) {
	src := `void f(uint8 a, uint8* o) { *o = a >> 1; }`
	info := mustAnalyze(t, src)
	ip := NewInterp(info)
	_, outs, err := ip.Call("f", 0x80)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != 0x40 {
		t.Errorf("0x80 >> 1 = %#x, want 0x40", outs[0])
	}
}

func TestInterpDivMod(t *testing.T) {
	src := `void f(int a, int b, int* q, int* r) { *q = a / b; *r = a % b; }`
	info := mustAnalyze(t, src)
	ip := NewInterp(info)
	_, outs, err := ip.Call("f", 17, 5)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != 3 || outs[1] != 2 {
		t.Errorf("17/5 = %d rem %d", outs[0], outs[1])
	}
	if _, _, err := ip.Call("f", 17, 0); err == nil {
		t.Error("division by zero not reported")
	}
}

func TestInterpTernaryAndLogic(t *testing.T) {
	src := `void f(int a, int b, int* o) { *o = (a > b && a > 0) ? a : b; }`
	info := mustAnalyze(t, src)
	ip := NewInterp(info)
	_, outs, _ := ip.Call("f", 5, 3)
	if outs[0] != 5 {
		t.Errorf("got %d", outs[0])
	}
	_, outs, _ = ip.Call("f", -5, 3)
	if outs[0] != 3 {
		t.Errorf("got %d", outs[0])
	}
}

func TestInterpNestedLoops2D(t *testing.T) {
	src := `
int img[4][4];
int out[4][4];
void f() {
	int i; int j;
	for (i = 0; i < 4; i++)
		for (j = 0; j < 4; j++)
			out[i][j] = img[i][j] * 2 + i;
}
`
	info := mustAnalyze(t, src)
	ip := NewInterp(info)
	in := make([]int64, 16)
	for i := range in {
		in[i] = int64(i)
	}
	ip.SetArray("img", in)
	if _, _, err := ip.Call("f"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := in[i*4+j]*2 + int64(i)
			if got := ip.Arrays["out"][i*4+j]; got != want {
				t.Errorf("out[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestInterpFunctionCall(t *testing.T) {
	src := `
int sq(int x) { return x * x; }
void f(int a, int* o) { *o = sq(a) + sq(a + 1); }
`
	info := mustAnalyze(t, src)
	ip := NewInterp(info)
	_, outs, err := ip.Call("f", 3)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != 9+16 {
		t.Errorf("got %d, want 25", outs[0])
	}
}

func TestInterpConstArrayLookup(t *testing.T) {
	src := `
const int tab[4] = {10, 20, 30, 40};
void f(uint2 i, int* o) { *o = tab[i]; }
`
	info := mustAnalyze(t, src)
	ip := NewInterp(info)
	for i := int64(0); i < 4; i++ {
		_, outs, err := ip.Call("f", i)
		if err != nil {
			t.Fatal(err)
		}
		if outs[0] != (i+1)*10 {
			t.Errorf("tab[%d] = %d", i, outs[0])
		}
	}
}

func TestInterpCast(t *testing.T) {
	src := `void f(int a, int* o) { *o = (unsigned char)a; }`
	info := mustAnalyze(t, src)
	ip := NewInterp(info)
	_, outs, err := ip.Call("f", 300)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != 300%256 {
		t.Errorf("(uint8)300 = %d", outs[0])
	}
}

func TestInterpStepLimit(t *testing.T) {
	src := `void f() { int i; i = 0; while (i < 10) { i = i; } }`
	info := mustAnalyze(t, src)
	ip := NewInterp(info)
	ip.maxStep = 10000
	if _, _, err := ip.Call("f"); err == nil {
		t.Error("runaway loop not detected")
	}
}

func TestInterpFeedbackIntrinsics(t *testing.T) {
	// Fig. 4(c): the data-path function with explicit feedback macros
	// behaves, in software, exactly like the plain accumulator body.
	src := `
int sum;
void main_dp(int t0, int* t1) {
	int t2;
	t2 = ROCCC_load_prev(sum) + t0;
	ROCCC_store2next(sum, t2);
	*t1 = sum;
}
`
	info := mustAnalyze(t, src)
	ip := NewInterp(info)
	var want int64
	for i := int64(1); i <= 5; i++ {
		_, outs, err := ip.Call("main_dp", i)
		if err != nil {
			t.Fatal(err)
		}
		want += i
		if outs[0] != want {
			t.Errorf("iteration %d: out = %d, want %d", i, outs[0], want)
		}
	}
}

func TestWrapProperties(t *testing.T) {
	f := func(v int64, bits uint8) bool {
		b := int(bits%32) + 1
		ts := IntType{Bits: b, Signed: true}
		tu := IntType{Bits: b, Signed: false}
		sv := ts.Wrap(v)
		uv := tu.Wrap(v)
		if sv < ts.MinVal() || sv > ts.MaxVal() {
			return false
		}
		if uv < 0 || uv > tu.MaxVal() {
			return false
		}
		// Wrap must be idempotent.
		return ts.Wrap(sv) == sv && tu.Wrap(uv) == uv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
