package cc

import (
	"strings"
	"testing"
)

func mustAnalyze(t *testing.T, src string) *Info {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func analyzeErr(t *testing.T, src string) error {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Analyze(f)
	if err == nil {
		t.Fatalf("expected semantic error for:\n%s", src)
	}
	return err
}

func TestAnalyzeFIR(t *testing.T) {
	info := mustAnalyze(t, firSource)
	fn := info.File.Func("fir")
	loop := fn.Body.Stmts[1].(*For)
	assign := loop.Body.Stmts[0].(*Assign)
	lhs := assign.LHS.(*Index)
	if sym := info.SymbolOf(lhs); sym == nil || sym.Kind != SymArray {
		t.Errorf("C resolved to %v", info.SymbolOf(lhs))
	}
	if tt := info.IntTypeOf(assign.RHS); tt.Bits != 32 {
		t.Errorf("RHS type = %v", tt)
	}
}

func TestAnalyzeTypePromotion(t *testing.T) {
	src := `void f(uint8 a, int16 b, uint16 c, int* o1, int* o2, int* o3) {
		*o1 = a + b;
		*o2 = b + c;
		*o3 = a < b;
	}`
	info := mustAnalyze(t, src)
	body := info.File.Func("f").Body.Stmts
	// C integer promotion: sub-int operands are promoted to int first.
	t1 := info.IntTypeOf(body[0].(*Assign).RHS)
	if t1 != Int32 {
		t.Errorf("uint8+int16 = %v, want int32 (promoted)", t1)
	}
	t2 := info.IntTypeOf(body[1].(*Assign).RHS)
	if t2 != Int32 {
		t.Errorf("int16+uint16 = %v, want int32 (promoted)", t2)
	}
	t3 := info.IntTypeOf(body[2].(*Assign).RHS)
	if t3 != UInt1 {
		t.Errorf("comparison type = %v, want uint1", t3)
	}
	// uint32 mixed with int stays unsigned (usual arithmetic conversion).
	src2 := `void g(unsigned int a, int b, int* o) { *o = a + b; }`
	info2 := mustAnalyze(t, src2)
	t4 := info2.IntTypeOf(info2.File.Func("g").Body.Stmts[0].(*Assign).RHS)
	if t4 != UInt32 {
		t.Errorf("uint32+int32 = %v, want uint32", t4)
	}
}

func TestAnalyzeRejectsRecursion(t *testing.T) {
	err := analyzeErr(t, `
int f(int x) { return f(x - 1); }
`)
	if !strings.Contains(err.Error(), "recursion") {
		t.Errorf("error = %v", err)
	}
}

func TestAnalyzeRejectsMutualRecursion(t *testing.T) {
	err := analyzeErr(t, `
int g(int x);
int f(int x) { return g(x); }
int g(int x) { return f(x); }
`)
	_ = err
}

func TestAnalyzeRejectsBadPointerUse(t *testing.T) {
	analyzeErr(t, `void f(int a, int* o) { *o = o; }`) // reading out-param as value name
	analyzeErr(t, `void f(int a) { *a = 3; }`)         // deref of non-pointer
	analyzeErr(t, `int x; void f() { *x = 1; }`)       // deref of global scalar
}

func TestAnalyzeOutParamReadable(t *testing.T) {
	// Fig. 4(c) reads the fed-back variable after the store; reading an
	// out-param after writing is used in the exported data-path function.
	mustAnalyze(t, `void f(int a, int* o) { *o = a; }`)
}

func TestAnalyzeRejectsConstArrayStore(t *testing.T) {
	err := analyzeErr(t, `
const int tab[4] = {1, 2, 3, 4};
void f(int i) { tab[i] = 0; }
`)
	if !strings.Contains(err.Error(), "const") {
		t.Errorf("error = %v", err)
	}
}

func TestAnalyzeRejectsUndeclared(t *testing.T) {
	analyzeErr(t, `void f() { x = 1; }`)
	analyzeErr(t, `void f() { int y; y = x; }`)
	analyzeErr(t, `void f() { y[3] = 1; }`)
}

func TestAnalyzeRejectsDimensionMismatch(t *testing.T) {
	analyzeErr(t, `int A[4][4]; void f(int i) { A[i] = 1; }`)
	analyzeErr(t, `int A[4]; void f(int i) { A[i][i] = 1; }`)
}

func TestAnalyzeRejectsRedeclaration(t *testing.T) {
	analyzeErr(t, `void f() { int a; int a; }`)
	analyzeErr(t, `int g; int g; void f() {}`)
}

func TestAnalyzeScoping(t *testing.T) {
	// Block scoping: inner redeclaration in a nested block is legal C.
	mustAnalyze(t, `void f() { int a; a = 1; { int b; b = a; } }`)
}

func TestAnalyzeConstArrayNeedsInit(t *testing.T) {
	analyzeErr(t, `const int tab[4]; void f() {}`)
}

func TestAnalyzeIntrinsics(t *testing.T) {
	info := mustAnalyze(t, `
int sum;
void main_dp(int t0, int* t1) {
	int t2;
	t2 = ROCCC_load_prev(sum) + t0;
	ROCCC_store2next(sum, t2);
	*t1 = sum;
}
`)
	fn := info.File.Func("main_dp")
	call := fn.Body.Stmts[1].(*Assign).RHS.(*Binary).X.(*Call)
	if tt := info.IntTypeOf(call); tt.Bits != 32 {
		t.Errorf("load_prev type = %v", tt)
	}
}

func TestAnalyzeCallArity(t *testing.T) {
	analyzeErr(t, `int g(int a, int b) { return a + b; } void f(int x) { int y; y = g(x); }`)
	analyzeErr(t, `void f() { h(); }`)
	analyzeErr(t, `void f() { ROCCC_load_prev(); }`)
	analyzeErr(t, `int s; void f() { ROCCC_store2next(s); }`)
}

func TestAnalyzeReturnChecks(t *testing.T) {
	analyzeErr(t, `void f() { return 3; }`)
	analyzeErr(t, `int f() { return; }`)
	mustAnalyze(t, `int f() { return 3; }`)
	mustAnalyze(t, `void f() { return; }`)
}
