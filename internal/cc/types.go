package cc

import (
	"fmt"
	"strconv"
	"strings"
)

// Type is the interface implemented by all front-end types. The ROCCC
// subset has integer scalars up to 32 bits (signed and unsigned), void,
// one- and two-dimensional integer arrays, and pointers to scalars that
// may appear only as function output parameters.
type Type interface {
	String() string
	typ()
}

// IntType is a sized integer type. The paper supports "any signed and
// unsigned integer type up to 32 bit"; the parser accepts the standard C
// type names plus the explicit-width spellings intN/uintN (1 <= N <= 32).
type IntType struct {
	Bits   int
	Signed bool
}

func (t IntType) typ() {}

// String renders the type using the explicit-width spelling.
func (t IntType) String() string {
	if t.Signed {
		return fmt.Sprintf("int%d", t.Bits)
	}
	return fmt.Sprintf("uint%d", t.Bits)
}

// VoidType is the type of functions with no return value.
type VoidType struct{}

func (VoidType) typ() {}

// String returns "void".
func (VoidType) String() string { return "void" }

// ArrayType is a 1-D or 2-D integer array type.
type ArrayType struct {
	Elem IntType
	Dims []int // length 1 or 2; each dimension is a compile-time constant
}

func (ArrayType) typ() {}

// String renders the array type in C declaration order.
func (t ArrayType) String() string {
	var b strings.Builder
	b.WriteString(t.Elem.String())
	for _, d := range t.Dims {
		fmt.Fprintf(&b, "[%d]", d)
	}
	return b.String()
}

// PointerType is a pointer to a scalar. The subset permits it only as a
// function parameter marking an output value (see Fig. 5 of the paper:
// "The pointers are only used to indicate multiple return values").
type PointerType struct {
	Elem IntType
}

func (PointerType) typ() {}

// String renders the pointer type.
func (t PointerType) String() string { return t.Elem.String() + "*" }

// Standard C scalar widths used by the parser.
var (
	Int8   = IntType{Bits: 8, Signed: true}
	Int16  = IntType{Bits: 16, Signed: true}
	Int32  = IntType{Bits: 32, Signed: true}
	UInt8  = IntType{Bits: 8, Signed: false}
	UInt16 = IntType{Bits: 16, Signed: false}
	UInt32 = IntType{Bits: 32, Signed: false}
)

// parseSizedTypeName recognizes intN/uintN spellings. It returns the type
// and true when name is such a spelling with 1 <= N <= 32.
func parseSizedTypeName(name string) (IntType, bool) {
	signed := true
	rest := ""
	switch {
	case strings.HasPrefix(name, "uint"):
		signed = false
		rest = name[4:]
	case strings.HasPrefix(name, "int"):
		rest = name[3:]
	default:
		return IntType{}, false
	}
	if rest == "" {
		return IntType{}, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 || n > 32 {
		return IntType{}, false
	}
	return IntType{Bits: n, Signed: signed}, true
}

// MaxVal returns the largest value representable by t.
func (t IntType) MaxVal() int64 {
	if t.Signed {
		return (int64(1) << (t.Bits - 1)) - 1
	}
	return (int64(1) << t.Bits) - 1
}

// MinVal returns the smallest value representable by t.
func (t IntType) MinVal() int64 {
	if t.Signed {
		return -(int64(1) << (t.Bits - 1))
	}
	return 0
}

// Wrap reduces v modulo 2^Bits and reinterprets it in t, mirroring the
// two's-complement truncation hardware performs on a t-wide signal.
func (t IntType) Wrap(v int64) int64 {
	mask := uint64(1)<<uint(t.Bits) - 1
	u := uint64(v) & mask
	if t.Signed && t.Bits < 64 && u&(1<<uint(t.Bits-1)) != 0 {
		return int64(u) - int64(1)<<uint(t.Bits)
	}
	return int64(u)
}
