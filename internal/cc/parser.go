package cc

import (
	"fmt"
)

// Parser is a recursive-descent parser for the ROCCC C subset.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses src into a File. It reports the first syntax
// error encountered.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.file()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return Token{}, fmt.Errorf("cc: %s: expected %s, found %s", p.cur().Pos, k, p.cur())
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("cc: %s: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

// atType reports whether the current token begins a type specifier.
func (p *Parser) atType() bool {
	switch p.cur().Kind {
	case KwConst, KwVoid, KwInt, KwChar, KwShort, KwLong, KwUnsigned, KwSigned:
		return true
	case IDENT:
		_, ok := parseSizedTypeName(p.cur().Text)
		return ok
	}
	return false
}

// typeSpec parses a type specifier, returning the type and whether it was
// const-qualified.
func (p *Parser) typeSpec() (Type, bool, error) {
	isConst := p.accept(KwConst)
	switch p.cur().Kind {
	case KwVoid:
		p.next()
		return VoidType{}, isConst, nil
	case IDENT:
		if t, ok := parseSizedTypeName(p.cur().Text); ok {
			p.next()
			isConst = isConst || p.accept(KwConst)
			return t, isConst, nil
		}
		return nil, false, p.errf("unknown type name %q", p.cur().Text)
	}
	signed := true
	sawSign := false
	if p.accept(KwUnsigned) {
		signed, sawSign = false, true
	} else if p.accept(KwSigned) {
		sawSign = true
	}
	bits := 32
	sawBase := false
	switch p.cur().Kind {
	case KwChar:
		p.next()
		bits, sawBase = 8, true
	case KwShort:
		p.next()
		p.accept(KwInt)
		bits, sawBase = 16, true
	case KwLong:
		p.next()
		p.accept(KwLong) // "long long" is clamped to 32 bits in this subset
		p.accept(KwInt)
		bits, sawBase = 32, true
	case KwInt:
		p.next()
		bits, sawBase = 32, true
	}
	if !sawSign && !sawBase {
		return nil, false, p.errf("expected type, found %s", p.cur())
	}
	isConst = isConst || p.accept(KwConst)
	return IntType{Bits: bits, Signed: signed}, isConst, nil
}

// file parses the whole translation unit.
func (p *Parser) file() (*File, error) {
	f := &File{}
	for !p.at(EOF) {
		start := p.pos
		typ, isConst, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		isPtr := p.accept(STAR)
		nameTok, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.at(LPAREN) {
			if isPtr {
				return nil, p.errf("functions returning pointers are not supported")
			}
			p.pos = start
			fn, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			if fn.Body != nil { // prototypes are dropped
				f.Funcs = append(f.Funcs, fn)
			}
			continue
		}
		if isPtr {
			return nil, fmt.Errorf("cc: %s: global pointers are not supported", nameTok.Pos)
		}
		g, err := p.finishVarDecl(typ, isConst, nameTok)
		if err != nil {
			return nil, err
		}
		f.Globals = append(f.Globals, g)
	}
	return f, nil
}

// finishVarDecl parses the remainder of a variable declaration after the
// type and name: optional array dimensions, optional initializer, ';'.
func (p *Parser) finishVarDecl(typ Type, isConst bool, nameTok Token) (*VarDecl, error) {
	elem, isInt := typ.(IntType)
	var dims []int
	for p.accept(LBRACKET) {
		if !isInt {
			return nil, fmt.Errorf("cc: %s: arrays of non-integer type", nameTok.Pos)
		}
		n, err := p.expect(NUMBER)
		if err != nil {
			return nil, err
		}
		if n.Val <= 0 {
			return nil, fmt.Errorf("cc: %s: array dimension must be positive", n.Pos)
		}
		dims = append(dims, int(n.Val))
		if _, err := p.expect(RBRACKET); err != nil {
			return nil, err
		}
	}
	if len(dims) > 2 {
		return nil, fmt.Errorf("cc: %s: arrays beyond two dimensions are not supported", nameTok.Pos)
	}
	d := &VarDecl{Name: nameTok.Text, Type: typ, IsConst: isConst, Pos: nameTok.Pos}
	if len(dims) > 0 {
		d.Type = ArrayType{Elem: elem, Dims: dims}
	}
	if p.accept(ASSIGN) {
		if len(dims) > 0 {
			vals, err := p.initList()
			if err != nil {
				return nil, err
			}
			d.InitArr = vals
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return d, nil
}

// initList parses a braced, possibly nested, integer initializer list and
// returns the flattened values.
func (p *Parser) initList() ([]int64, error) {
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	var vals []int64
	for !p.at(RBRACE) {
		if p.at(LBRACE) {
			inner, err := p.initList()
			if err != nil {
				return nil, err
			}
			vals = append(vals, inner...)
		} else {
			neg := p.accept(MINUS)
			n, err := p.expect(NUMBER)
			if err != nil {
				return nil, err
			}
			v := n.Val
			if neg {
				v = -v
			}
			vals = append(vals, v)
		}
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(RBRACE); err != nil {
		return nil, err
	}
	return vals, nil
}

// funcDecl parses a function definition.
func (p *Parser) funcDecl() (*FuncDecl, error) {
	ret, _, err := p.typeSpec()
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: nameTok.Text, Ret: ret, Pos: nameTok.Pos}
	if !p.at(RPAREN) && !(p.at(KwVoid) && p.toks[p.pos+1].Kind == RPAREN) {
		for {
			prm, err := p.param()
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, prm)
			if !p.accept(COMMA) {
				break
			}
		}
	} else if p.at(KwVoid) {
		p.next()
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	// A trailing semicolon makes this a prototype (forward declaration);
	// prototypes carry no body and are dropped by the caller.
	if p.accept(SEMI) {
		return fn, nil
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// param parses a single parameter declaration.
func (p *Parser) param() (Param, error) {
	typ, _, err := p.typeSpec()
	if err != nil {
		return Param{}, err
	}
	it, isInt := typ.(IntType)
	if p.accept(STAR) {
		if !isInt {
			return Param{}, p.errf("pointer parameters must point to integers")
		}
		typ = PointerType{Elem: it}
	}
	nameTok, err := p.expect(IDENT)
	if err != nil {
		return Param{}, err
	}
	var dims []int
	for p.accept(LBRACKET) {
		n, err := p.expect(NUMBER)
		if err != nil {
			return Param{}, err
		}
		dims = append(dims, int(n.Val))
		if _, err := p.expect(RBRACKET); err != nil {
			return Param{}, err
		}
	}
	if len(dims) > 0 {
		if !isInt {
			return Param{}, p.errf("array parameters must have integer elements")
		}
		if len(dims) > 2 {
			return Param{}, p.errf("arrays beyond two dimensions are not supported")
		}
		typ = ArrayType{Elem: it, Dims: dims}
	}
	return Param{Name: nameTok.Text, Type: typ, Pos: nameTok.Pos}, nil
}

// block parses a brace-delimited statement list.
func (p *Parser) block() (*Block, error) {
	open, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: open.Pos}
	for !p.at(RBRACE) {
		if p.at(EOF) {
			return nil, fmt.Errorf("cc: %s: unterminated block", open.Pos)
		}
		// Declarations are parsed here (not in stmt) so that the
		// declarators of "int a, c;" land directly in this block's
		// statement list and scope.
		if p.atType() {
			decls, err := p.localDecls()
			if err != nil {
				return nil, err
			}
			b.Stmts = append(b.Stmts, decls...)
			continue
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.next() // RBRACE
	return b, nil
}

// stmt parses a single statement; it returns nil for empty statements.
func (p *Parser) stmt() (Stmt, error) {
	switch {
	case p.at(SEMI):
		p.next()
		return nil, nil
	case p.at(LBRACE):
		return p.block()
	case p.at(KwIf):
		return p.ifStmt()
	case p.at(KwFor):
		return p.forStmt()
	case p.at(KwWhile):
		return p.whileStmt()
	case p.at(KwReturn):
		tok := p.next()
		r := &Return{Pos: tok.Pos}
		if !p.at(SEMI) {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.Value = e
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return r, nil
	case p.atType():
		decls, err := p.localDecls()
		if err != nil {
			return nil, err
		}
		if len(decls) == 1 {
			return decls[0], nil
		}
		return &Block{Stmts: decls, Pos: decls[0].StmtPos()}, nil
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// localDecls parses one or more comma-separated local declarations
// sharing a type specifier, e.g. "int a, c;".
func (p *Parser) localDecls() ([]Stmt, error) {
	typ, _, err := p.typeSpec()
	if err != nil {
		return nil, err
	}
	if _, ok := typ.(VoidType); ok {
		return nil, p.errf("void local variables are not allowed")
	}
	var decls []Stmt
	for {
		nameTok, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		d := &LocalDecl{Name: nameTok.Text, Type: typ, Pos: nameTok.Pos}
		if p.accept(ASSIGN) {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		decls = append(decls, d)
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return decls, nil
}

// ifStmt parses an if or if/else statement; non-block bodies are wrapped
// in single-statement blocks.
func (p *Parser) ifStmt() (Stmt, error) {
	tok := p.next() // if
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	thenBlk, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	stmt := &If{Cond: cond, Then: thenBlk, Pos: tok.Pos}
	if p.accept(KwElse) {
		elseBlk, err := p.stmtAsBlock()
		if err != nil {
			return nil, err
		}
		stmt.Else = elseBlk
	}
	return stmt, nil
}

func (p *Parser) stmtAsBlock() (*Block, error) {
	if p.at(LBRACE) {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: p.cur().Pos}
	if s != nil {
		b.Stmts = append(b.Stmts, s)
		b.Pos = s.StmtPos()
	}
	return b, nil
}

// forStmt parses a canonical for loop.
func (p *Parser) forStmt() (Stmt, error) {
	tok := p.next() // for
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	f := &For{Pos: tok.Pos}
	if !p.at(SEMI) {
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		a, ok := s.(*Assign)
		if !ok {
			return nil, p.errf("for-loop initializer must be an assignment")
		}
		f.Init = a
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if !p.at(SEMI) {
		c, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Cond = c
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if !p.at(RPAREN) {
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		a, ok := s.(*Assign)
		if !ok {
			return nil, p.errf("for-loop post-statement must be an assignment")
		}
		f.Post = a
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// whileStmt parses a while loop, represented as a For with no init/post.
func (p *Parser) whileStmt() (Stmt, error) {
	tok := p.next() // while
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	return &For{Cond: cond, Body: body, Pos: tok.Pos}, nil
}

// simpleStmt parses an assignment (plain, compound, increment or
// decrement, all desugared to plain assignment) or a call statement.
func (p *Parser) simpleStmt() (Stmt, error) {
	startPos := p.cur().Pos
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case ASSIGN:
		p.next()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Assign{LHS: lhs, Op: ASSIGN, RHS: rhs, Pos: startPos}, nil
	case PLUSEQ, MINUSEQ, STAREQ, SLASHEQ, SHLEQ, SHREQ, AMPEQ, PIPEEQ, CARETEQ:
		op := p.next().Kind
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		bin := map[Kind]Kind{
			PLUSEQ: PLUS, MINUSEQ: MINUS, STAREQ: STAR, SLASHEQ: SLASH,
			SHLEQ: SHL, SHREQ: SHR, AMPEQ: AMP, PIPEEQ: PIPE, CARETEQ: CARET,
		}[op]
		return &Assign{LHS: lhs, Op: ASSIGN,
			RHS: &Binary{Op: bin, X: cloneExpr(lhs), Y: rhs, Pos: startPos}, Pos: startPos}, nil
	case INC, DEC:
		op := PLUS
		if p.next().Kind == DEC {
			op = MINUS
		}
		return &Assign{LHS: lhs, Op: ASSIGN,
			RHS: &Binary{Op: op, X: cloneExpr(lhs), Y: &NumberLit{Val: 1, Pos: startPos}, Pos: startPos},
			Pos: startPos}, nil
	default:
		if c, ok := lhs.(*Call); ok {
			return &ExprStmt{X: c, Pos: startPos}, nil
		}
		return nil, p.errf("expected assignment or call statement")
	}
}

// cloneExpr deep-copies a (pure) expression so the parser can duplicate
// the left-hand side when desugaring compound assignments.
func cloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case *NumberLit:
		cp := *e
		return &cp
	case *Ident:
		cp := *e
		return &cp
	case *Index:
		base := *e.Base
		idx := make([]Expr, len(e.Idx))
		for i, ix := range e.Idx {
			idx[i] = cloneExpr(ix)
		}
		return &Index{Base: &base, Idx: idx, Pos: e.Pos}
	case *Deref:
		x := *e.X
		return &Deref{X: &x, Pos: e.Pos}
	case *Unary:
		return &Unary{Op: e.Op, X: cloneExpr(e.X), Pos: e.Pos}
	case *Binary:
		return &Binary{Op: e.Op, X: cloneExpr(e.X), Y: cloneExpr(e.Y), Pos: e.Pos}
	case *CondExpr:
		return &CondExpr{Cond: cloneExpr(e.Cond), Then: cloneExpr(e.Then), Else: cloneExpr(e.Else), Pos: e.Pos}
	case *Call:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = cloneExpr(a)
		}
		return &Call{Name: e.Name, Args: args, Pos: e.Pos}
	default:
		panic(fmt.Sprintf("cc: cloneExpr: unexpected %T", e))
	}
}

// --- Expression parsing, standard C precedence ---

func (p *Parser) expr() (Expr, error) { return p.ternary() }

func (p *Parser) ternary() (Expr, error) {
	c, err := p.lor()
	if err != nil {
		return nil, err
	}
	if !p.accept(QUEST) {
		return c, nil
	}
	t, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	f, err := p.ternary()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: c, Then: t, Else: f, Pos: c.ExprPos()}, nil
}

// binaryLevel parses a left-associative binary level with the given
// operator set and next-higher-precedence parser.
func (p *Parser) binaryLevel(ops []Kind, sub func() (Expr, error)) (Expr, error) {
	x, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.at(op) {
				tok := p.next()
				y, err := sub()
				if err != nil {
					return nil, err
				}
				x = &Binary{Op: op, X: x, Y: y, Pos: tok.Pos}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *Parser) lor() (Expr, error) {
	return p.binaryLevel([]Kind{LOR}, p.land)
}
func (p *Parser) land() (Expr, error) {
	return p.binaryLevel([]Kind{LAND}, p.bitor)
}
func (p *Parser) bitor() (Expr, error) {
	return p.binaryLevel([]Kind{PIPE}, p.bitxor)
}
func (p *Parser) bitxor() (Expr, error) {
	return p.binaryLevel([]Kind{CARET}, p.bitand)
}
func (p *Parser) bitand() (Expr, error) {
	return p.binaryLevel([]Kind{AMP}, p.equality)
}
func (p *Parser) equality() (Expr, error) {
	return p.binaryLevel([]Kind{EQ, NE}, p.relational)
}
func (p *Parser) relational() (Expr, error) {
	return p.binaryLevel([]Kind{LT, LE, GT, GE}, p.shift)
}
func (p *Parser) shift() (Expr, error) {
	return p.binaryLevel([]Kind{SHL, SHR}, p.additive)
}
func (p *Parser) additive() (Expr, error) {
	return p.binaryLevel([]Kind{PLUS, MINUS}, p.multiplicative)
}
func (p *Parser) multiplicative() (Expr, error) {
	return p.binaryLevel([]Kind{STAR, SLASH, PERCENT}, p.unary)
}

func (p *Parser) unary() (Expr, error) {
	switch p.cur().Kind {
	case MINUS, TILDE, BANG:
		tok := p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: tok.Kind, X: x, Pos: tok.Pos}, nil
	case PLUS:
		p.next()
		return p.unary()
	case STAR:
		tok := p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		return &Deref{X: &Ident{Name: name.Text, Pos: name.Pos}, Pos: tok.Pos}, nil
	}
	return p.postfix()
}

func (p *Parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(LBRACKET):
			id, ok := x.(*Ident)
			if !ok {
				return nil, p.errf("only named arrays may be indexed")
			}
			idx := &Index{Base: id, Pos: id.Pos}
			for p.accept(LBRACKET) {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				idx.Idx = append(idx.Idx, e)
				if _, err := p.expect(RBRACKET); err != nil {
					return nil, err
				}
			}
			if len(idx.Idx) > 2 {
				return nil, p.errf("arrays beyond two dimensions are not supported")
			}
			x = idx
		case p.at(LPAREN):
			id, ok := x.(*Ident)
			if !ok {
				return nil, p.errf("call of non-function expression")
			}
			p.next()
			call := &Call{Name: id.Name, Pos: id.Pos}
			for !p.at(RPAREN) {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(COMMA) {
					break
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			x = call
		default:
			return x, nil
		}
	}
}

func (p *Parser) primary() (Expr, error) {
	switch p.cur().Kind {
	case NUMBER:
		t := p.next()
		return &NumberLit{Val: t.Val, Pos: t.Pos}, nil
	case IDENT:
		t := p.next()
		return &Ident{Name: t.Text, Pos: t.Pos}, nil
	case LPAREN:
		p.next()
		// A parenthesized type is a cast; the subset treats casts as
		// width conversions, represented as an intrinsic-like Call.
		if p.atType() {
			typ, _, err := p.typeSpec()
			if err != nil {
				return nil, err
			}
			it, ok := typ.(IntType)
			if !ok {
				return nil, p.errf("only integer casts are supported")
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &Call{Name: "__cast_" + it.String(), Args: []Expr{x}, Pos: x.ExprPos()}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("expected expression, found %s", p.cur())
}
