package cc

import (
	"fmt"
)

// Interp executes analyzed C functions directly. It is the reference
// ("software") semantics: the paper notes that the soft nodes of a
// generated data path must behave exactly as the original C does on a
// CPU, so every generated circuit in this reproduction is checked
// against this interpreter.
type Interp struct {
	info    *Info
	Globals map[string]int64   // scalar globals by name
	Arrays  map[string][]int64 // flattened array storage by name
	steps   int
	maxStep int
}

// NewInterp prepares an interpreter over the analyzed file. Global
// scalars and arrays are initialized from their declarations (zero
// otherwise).
func NewInterp(info *Info) *Interp {
	ip := &Interp{
		info:    info,
		Globals: map[string]int64{},
		Arrays:  map[string][]int64{},
		maxStep: 50_000_000,
	}
	for _, g := range info.File.Globals {
		switch t := g.Type.(type) {
		case IntType:
			var v int64
			if lit, ok := g.Init.(*NumberLit); ok {
				v = t.Wrap(lit.Val)
			}
			ip.Globals[g.Name] = v
		case ArrayType:
			n := t.Dims[0]
			if len(t.Dims) == 2 {
				n *= t.Dims[1]
			}
			arr := make([]int64, n)
			for i, v := range g.InitArr {
				arr[i] = t.Elem.Wrap(v)
			}
			ip.Arrays[g.Name] = arr
		}
	}
	return ip
}

// SetArray installs array contents (used to provide input data).
func (ip *Interp) SetArray(name string, vals []int64) {
	arr := make([]int64, len(vals))
	copy(arr, vals)
	ip.Arrays[name] = arr
}

type interpFrame struct {
	vars   map[string]int64
	arrays map[string][]int64 // array params aliased to backing storage
	outs   map[string]int64   // values written through out-params
	fn     *FuncDecl
	ret    int64
	hasRet bool
}

type returnSignal struct{}

// Call runs function name with the given scalar arguments (in parameter
// order, skipping array parameters, which are taken from ip.Arrays by
// name). It returns the function result (if non-void) followed by the
// out-parameter values in declaration order.
func (ip *Interp) Call(name string, args ...int64) (ret int64, outs []int64, err error) {
	fn, ok := ip.info.Funcs[name]
	if !ok {
		return 0, nil, fmt.Errorf("cc: interp: no function %q", name)
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(returnSignal); ok {
				return
			}
			err = fmt.Errorf("cc: interp: %v", r)
		}
	}()
	fr, err := ip.newFrame(fn, args)
	if err != nil {
		return 0, nil, err
	}
	ip.steps = 0
	if err := ip.execBlock(fn.Body, fr); err != nil && err != errReturn {
		return 0, nil, err
	}
	for _, prm := range fn.Params {
		if prm.IsOutput() {
			outs = append(outs, fr.outs[prm.Name])
		}
	}
	return fr.ret, outs, nil
}

func (ip *Interp) newFrame(fn *FuncDecl, args []int64) (*interpFrame, error) {
	fr := &interpFrame{
		vars:   map[string]int64{},
		arrays: map[string][]int64{},
		outs:   map[string]int64{},
		fn:     fn,
	}
	ai := 0
	for _, prm := range fn.Params {
		switch t := prm.Type.(type) {
		case IntType:
			if ai >= len(args) {
				return nil, fmt.Errorf("cc: interp: too few arguments to %q", fn.Name)
			}
			fr.vars[prm.Name] = t.Wrap(args[ai])
			ai++
		case ArrayType:
			arr, ok := ip.Arrays[prm.Name]
			if !ok {
				n := t.Dims[0]
				if len(t.Dims) == 2 {
					n *= t.Dims[1]
				}
				arr = make([]int64, n)
				ip.Arrays[prm.Name] = arr
			}
			fr.arrays[prm.Name] = arr
		case PointerType:
			fr.outs[prm.Name] = 0
		}
	}
	if ai != len(args) {
		return nil, fmt.Errorf("cc: interp: too many arguments to %q", fn.Name)
	}
	return fr, nil
}

func (ip *Interp) step() error {
	ip.steps++
	if ip.steps > ip.maxStep {
		return fmt.Errorf("cc: interp: step limit exceeded (runaway loop?)")
	}
	return nil
}

func (ip *Interp) execBlock(b *Block, fr *interpFrame) error {
	for _, s := range b.Stmts {
		done, err := ip.execStmt(s, fr)
		if err != nil {
			return err
		}
		if done {
			return errReturn
		}
	}
	return nil
}

// errReturn is an internal sentinel propagated when a return executes.
var errReturn = fmt.Errorf("cc: interp: return")

func (ip *Interp) execStmt(s Stmt, fr *interpFrame) (returned bool, err error) {
	if err := ip.step(); err != nil {
		return false, err
	}
	switch s := s.(type) {
	case *Block:
		err := ip.execBlock(s, fr)
		if err == errReturn {
			return true, nil
		}
		return false, err
	case *LocalDecl:
		v := int64(0)
		if s.Init != nil {
			v, err = ip.eval(s.Init, fr)
			if err != nil {
				return false, err
			}
		}
		fr.vars[s.Name] = s.Type.(IntType).Wrap(v)
		return false, nil
	case *Assign:
		v, err := ip.eval(s.RHS, fr)
		if err != nil {
			return false, err
		}
		return false, ip.store(s.LHS, v, fr)
	case *If:
		c, err := ip.eval(s.Cond, fr)
		if err != nil {
			return false, err
		}
		if c != 0 {
			err := ip.execBlock(s.Then, fr)
			if err == errReturn {
				return true, nil
			}
			return false, err
		}
		if s.Else != nil {
			err := ip.execBlock(s.Else, fr)
			if err == errReturn {
				return true, nil
			}
			return false, err
		}
		return false, nil
	case *For:
		if s.Init != nil {
			if _, err := ip.execStmt(s.Init, fr); err != nil {
				return false, err
			}
		}
		for {
			if err := ip.step(); err != nil {
				return false, err
			}
			if s.Cond != nil {
				c, err := ip.eval(s.Cond, fr)
				if err != nil {
					return false, err
				}
				if c == 0 {
					return false, nil
				}
			}
			err := ip.execBlock(s.Body, fr)
			if err == errReturn {
				return true, nil
			}
			if err != nil {
				return false, err
			}
			if s.Post != nil {
				if _, err := ip.execStmt(s.Post, fr); err != nil {
					return false, err
				}
			}
		}
	case *Return:
		if s.Value != nil {
			v, err := ip.eval(s.Value, fr)
			if err != nil {
				return false, err
			}
			if rt, ok := fr.fn.Ret.(IntType); ok {
				v = rt.Wrap(v)
			}
			fr.ret = v
			fr.hasRet = true
		}
		return true, nil
	case *ExprStmt:
		_, err := ip.eval(s.X, fr)
		return false, err
	default:
		return false, fmt.Errorf("cc: interp: unexpected statement %T", s)
	}
}

func (ip *Interp) store(lhs Expr, v int64, fr *interpFrame) error {
	switch lhs := lhs.(type) {
	case *Ident:
		sym := ip.info.SymbolOf(lhs)
		if sym == nil {
			return fmt.Errorf("cc: interp: unresolved %q", lhs.Name)
		}
		t := sym.Elem()
		switch sym.Kind {
		case SymGlobal:
			ip.Globals[lhs.Name] = t.Wrap(v)
		default:
			fr.vars[lhs.Name] = t.Wrap(v)
		}
		return nil
	case *Index:
		arr, at, off, err := ip.arrayAt(lhs, fr)
		if err != nil {
			return err
		}
		arr[off] = at.Elem.Wrap(v)
		return nil
	case *Deref:
		sym := ip.info.SymbolOf(lhs)
		fr.outs[sym.Name] = sym.Elem().Wrap(v)
		return nil
	default:
		return fmt.Errorf("cc: interp: bad store target %T", lhs)
	}
}

func (ip *Interp) arrayAt(e *Index, fr *interpFrame) ([]int64, ArrayType, int, error) {
	sym := ip.info.SymbolOf(e)
	if sym == nil {
		return nil, ArrayType{}, 0, fmt.Errorf("cc: interp: unresolved array %q", e.Base.Name)
	}
	at := sym.Type.(ArrayType)
	arr, ok := fr.arrays[e.Base.Name]
	if !ok {
		arr, ok = ip.Arrays[e.Base.Name]
		if !ok {
			return nil, at, 0, fmt.Errorf("cc: interp: no storage for array %q", e.Base.Name)
		}
	}
	off := 0
	for d, ix := range e.Idx {
		v, err := ip.eval(ix, fr)
		if err != nil {
			return nil, at, 0, err
		}
		if d == 0 && len(e.Idx) == 2 {
			off = int(v) * at.Dims[1]
		} else {
			off += int(v)
		}
	}
	if off < 0 || off >= len(arr) {
		return nil, at, 0, fmt.Errorf("cc: interp: index %d out of range for %q (len %d)",
			off, e.Base.Name, len(arr))
	}
	return arr, at, off, nil
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (ip *Interp) eval(e Expr, fr *interpFrame) (int64, error) {
	if err := ip.step(); err != nil {
		return 0, err
	}
	switch e := e.(type) {
	case *NumberLit:
		return e.Val, nil
	case *Ident:
		sym := ip.info.SymbolOf(e)
		if sym == nil {
			return 0, fmt.Errorf("cc: interp: unresolved %q", e.Name)
		}
		if sym.Kind == SymGlobal {
			return ip.Globals[e.Name], nil
		}
		v, ok := fr.vars[e.Name]
		if !ok {
			return 0, nil // uninitialized local reads as zero
		}
		return v, nil
	case *Index:
		arr, _, off, err := ip.arrayAt(e, fr)
		if err != nil {
			return 0, err
		}
		return arr[off], nil
	case *Deref:
		sym := ip.info.SymbolOf(e)
		return fr.outs[sym.Name], nil
	case *Unary:
		x, err := ip.eval(e.X, fr)
		if err != nil {
			return 0, err
		}
		t := ip.info.IntTypeOf(e)
		switch e.Op {
		case MINUS:
			return t.Wrap(-x), nil
		case TILDE:
			return t.Wrap(^x), nil
		case BANG:
			return boolToInt(x == 0), nil
		}
		return 0, fmt.Errorf("cc: interp: unary %s", e.Op)
	case *Binary:
		x, err := ip.eval(e.X, fr)
		if err != nil {
			return 0, err
		}
		// Short-circuit forms evaluate both sides in hardware; software
		// semantics differ only via side effects, which the subset bans,
		// so full evaluation is safe.
		y, err := ip.eval(e.Y, fr)
		if err != nil {
			return 0, err
		}
		t := ip.info.IntTypeOf(e)
		xt := ip.info.IntTypeOf(e.X)
		switch e.Op {
		case PLUS:
			return t.Wrap(x + y), nil
		case MINUS:
			return t.Wrap(x - y), nil
		case STAR:
			return t.Wrap(x * y), nil
		case SLASH:
			if y == 0 {
				return 0, fmt.Errorf("cc: interp: division by zero")
			}
			return t.Wrap(x / y), nil
		case PERCENT:
			if y == 0 {
				return 0, fmt.Errorf("cc: interp: modulo by zero")
			}
			return t.Wrap(x % y), nil
		case AMP:
			return t.Wrap(x & y), nil
		case PIPE:
			return t.Wrap(x | y), nil
		case CARET:
			return t.Wrap(x ^ y), nil
		case SHL:
			return t.Wrap(x << uint(y&63)), nil
		case SHR:
			if !xt.Signed {
				ux := uint64(x) & (uint64(1)<<uint(xt.Bits) - 1)
				return t.Wrap(int64(ux >> uint(y&63))), nil
			}
			return t.Wrap(x >> uint(y&63)), nil
		case LT:
			return boolToInt(x < y), nil
		case LE:
			return boolToInt(x <= y), nil
		case GT:
			return boolToInt(x > y), nil
		case GE:
			return boolToInt(x >= y), nil
		case EQ:
			return boolToInt(x == y), nil
		case NE:
			return boolToInt(x != y), nil
		case LAND:
			return boolToInt(x != 0 && y != 0), nil
		case LOR:
			return boolToInt(x != 0 || y != 0), nil
		}
		return 0, fmt.Errorf("cc: interp: binary %s", e.Op)
	case *CondExpr:
		c, err := ip.eval(e.Cond, fr)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return ip.eval(e.Then, fr)
		}
		return ip.eval(e.Else, fr)
	case *Call:
		return ip.evalCall(e, fr)
	default:
		return 0, fmt.Errorf("cc: interp: unexpected expression %T", e)
	}
}

func (ip *Interp) evalCall(e *Call, fr *interpFrame) (int64, error) {
	if t, ok := IsCastIntrinsic(e.Name); ok {
		v, err := ip.eval(e.Args[0], fr)
		if err != nil {
			return 0, err
		}
		return t.Wrap(v), nil
	}
	switch e.Name {
	case IntrinsicLoadPrev:
		// In software the feedback load is just a read of the variable.
		return ip.eval(e.Args[0], fr)
	case IntrinsicStoreNext:
		v, err := ip.eval(e.Args[1], fr)
		if err != nil {
			return 0, err
		}
		return 0, ip.store(e.Args[0], v, fr)
	}
	callee := ip.info.Funcs[e.Name]
	args := make([]int64, 0, len(e.Args))
	for _, a := range e.Args {
		v, err := ip.eval(a, fr)
		if err != nil {
			return 0, err
		}
		args = append(args, v)
	}
	sub, err := ip.newFrame(callee, args)
	if err != nil {
		return 0, err
	}
	if err := ip.execBlock(callee.Body, sub); err != nil && err != errReturn {
		return 0, err
	}
	return sub.ret, nil
}
