package cc

import (
	"testing"
	"testing/quick"
)

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex("for (i = 0; i < 17; i = i + 1) { C[i] = 3*A[i]; }")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{
		KwFor, LPAREN, IDENT, ASSIGN, NUMBER, SEMI, IDENT, LT, NUMBER, SEMI,
		IDENT, ASSIGN, IDENT, PLUS, NUMBER, RPAREN, LBRACE,
		IDENT, LBRACKET, IDENT, RBRACKET, ASSIGN, NUMBER, STAR,
		IDENT, LBRACKET, IDENT, RBRACKET, SEMI, RBRACE, EOF,
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexOperators(t *testing.T) {
	cases := map[string]Kind{
		"<<": SHL, ">>": SHR, "<=": LE, ">=": GE, "==": EQ, "!=": NE,
		"&&": LAND, "||": LOR, "+=": PLUSEQ, "-=": MINUSEQ, "<<=": SHLEQ,
		">>=": SHREQ, "++": INC, "--": DEC, "&=": AMPEQ, "|=": PIPEEQ,
		"^=": CARETEQ, "*=": STAREQ, "/=": SLASHEQ, "?": QUEST, ":": COLON,
	}
	for src, kind := range cases {
		toks, err := Lex(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].Kind != kind {
			t.Errorf("%q: got %s, want %s", src, toks[0].Kind, kind)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]int64{
		"0": 0, "42": 42, "0x1F": 31, "0XfF": 255, "100u": 100, "7L": 7,
		"'a'": 97, "'\\n'": 10, "'\\0'": 0,
	}
	for src, v := range cases {
		toks, err := Lex(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].Kind != NUMBER || toks[0].Val != v {
			t.Errorf("%q: got %v=%d, want NUMBER=%d", src, toks[0].Kind, toks[0].Val, v)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a /* mid */ b // end\nc")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for i, want := range []string{"a", "b", "c"} {
		if toks[i].Text != want {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, want)
		}
	}
}

func TestLexPreprocessorSkipped(t *testing.T) {
	toks, err := Lex("#define N 5\nint x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != KwInt {
		t.Fatalf("first token %v, want int keyword", toks[0])
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"$", "/* unterminated", "'x", "'\\q'"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestLexKeywords(t *testing.T) {
	for word, kind := range keywords {
		toks, err := Lex(word)
		if err != nil {
			t.Fatal(err)
		}
		if toks[0].Kind != kind {
			t.Errorf("%q: got %s, want %s", word, toks[0].Kind, kind)
		}
	}
}

// Property: any non-negative int value round-trips through the lexer.
func TestLexNumberRoundTripQuick(t *testing.T) {
	f := func(v uint32) bool {
		toks, err := Lex(Token{Kind: NUMBER, Val: int64(v)}.Text + "")
		_ = toks
		_ = err
		// Direct formatting round-trip:
		toks2, err := Lex(fmtInt(int64(v)))
		if err != nil || len(toks2) != 2 {
			return false
		}
		return toks2[0].Kind == NUMBER && toks2[0].Val == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fmtInt(v int64) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
