package cc

import (
	"strings"
	"testing"
)

// firSource is the paper's Fig. 3(a) 5-tap FIR kernel.
const firSource = `
int A[21];
int C[17];
void fir() {
	int i;
	for (i = 0; i < 17; i = i + 1) {
		C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
	}
}
`

func TestParseFIR(t *testing.T) {
	f, err := Parse(firSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Globals) != 2 {
		t.Fatalf("globals = %d, want 2", len(f.Globals))
	}
	fn := f.Func("fir")
	if fn == nil {
		t.Fatal("missing function fir")
	}
	if len(fn.Body.Stmts) != 2 {
		t.Fatalf("body statements = %d, want 2 (decl + for)", len(fn.Body.Stmts))
	}
	loop, ok := fn.Body.Stmts[1].(*For)
	if !ok {
		t.Fatalf("second statement is %T, want *For", fn.Body.Stmts[1])
	}
	if loop.Init == nil || loop.Cond == nil || loop.Post == nil {
		t.Fatal("for loop missing init/cond/post")
	}
	if len(loop.Body.Stmts) != 1 {
		t.Fatalf("loop body = %d statements, want 1", len(loop.Body.Stmts))
	}
}

// ifElseSource is the paper's Fig. 5 alternative-branch kernel.
const ifElseSource = `
void if_else(int x1, int x2, int* x3, int* x4) {
	int a, c;
	c = x1 - x2;
	if (c < x2)
		a = x1*x1;
	else
		a = x1 * x2 + 3;
	c = c - a;
	*x3 = c;
	*x4 = a;
	return;
}
`

func TestParseIfElse(t *testing.T) {
	f, err := Parse(ifElseSource)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Func("if_else")
	if fn == nil {
		t.Fatal("missing if_else")
	}
	if len(fn.Params) != 4 {
		t.Fatalf("params = %d, want 4", len(fn.Params))
	}
	if fn.Params[0].IsOutput() || !fn.Params[2].IsOutput() || !fn.Params[3].IsOutput() {
		t.Error("output parameter detection wrong")
	}
}

// accumSource is the paper's Fig. 4(a) accumulator.
const accumSource = `
int sum;
int A[32];
void accum() {
	int i;
	sum = 0;
	for (i = 0; i < 32; i++) {
		sum = sum + A[i];
	}
}
`

func TestParseAccumulatorWithIncrement(t *testing.T) {
	f, err := Parse(accumSource)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Func("accum")
	loop := fn.Body.Stmts[2].(*For)
	post := loop.Post
	// i++ must have been desugared to i = i + 1.
	bin, ok := post.RHS.(*Binary)
	if !ok || bin.Op != PLUS {
		t.Fatalf("post RHS = %s, want i + 1", FormatExpr(post.RHS))
	}
}

func TestParseCompoundAssignDesugar(t *testing.T) {
	src := `void f(int x, int* o) { int s; s = 1; s += x; s <<= 2; s &= 15; *o = s; }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Func("f").Body.Stmts
	a2 := body[2].(*Assign)
	if got := FormatExpr(a2.RHS); got != "(s + x)" {
		t.Errorf("s += x desugars to %s", got)
	}
	a3 := body[3].(*Assign)
	if got := FormatExpr(a3.RHS); got != "(s << 2)" {
		t.Errorf("s <<= 2 desugars to %s", got)
	}
	a4 := body[4].(*Assign)
	if got := FormatExpr(a4.RHS); got != "(s & 15)" {
		t.Errorf("s &= 15 desugars to %s", got)
	}
}

func TestParseSizedTypes(t *testing.T) {
	src := `void f(uint12 a, int19 b, uint1 nd, int24* out) { *out = a + b; }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Func("f")
	if it := fn.Params[0].Type.(IntType); it.Bits != 12 || it.Signed {
		t.Errorf("uint12 parsed as %v", it)
	}
	if it := fn.Params[1].Type.(IntType); it.Bits != 19 || !it.Signed {
		t.Errorf("int19 parsed as %v", it)
	}
	if pt := fn.Params[3].Type.(PointerType); pt.Elem.Bits != 24 {
		t.Errorf("int24* parsed as %v", pt)
	}
}

func TestParseStandardTypes(t *testing.T) {
	src := `void f(unsigned char a, short b, unsigned int c, long d, signed e) {}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Func("f")
	want := []IntType{
		{Bits: 8, Signed: false},
		{Bits: 16, Signed: true},
		{Bits: 32, Signed: false},
		{Bits: 32, Signed: true},
		{Bits: 32, Signed: true},
	}
	for i, w := range want {
		if got := fn.Params[i].Type.(IntType); got != w {
			t.Errorf("param %d: got %v, want %v", i, got, w)
		}
	}
}

func TestParseConstArrayROM(t *testing.T) {
	src := `
const int16 costab[8] = {16384, 15137, 11585, 6270, 0, -6270, -11585, -15137};
void f(uint3 x, int16* y) { *y = costab[x]; }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := f.Global("costab")
	if g == nil || !g.IsConst {
		t.Fatal("costab should be a const array")
	}
	if len(g.InitArr) != 8 || g.InitArr[5] != -6270 {
		t.Errorf("initializer = %v", g.InitArr)
	}
}

func TestParse2DArray(t *testing.T) {
	src := `
int img[16][16];
void f() {
	int i; int j;
	for (i = 0; i < 16; i++)
		for (j = 0; j < 16; j++)
			img[i][j] = i + j;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	at := f.Global("img").Type.(ArrayType)
	if len(at.Dims) != 2 || at.Dims[0] != 16 || at.Dims[1] != 16 {
		t.Errorf("dims = %v", at.Dims)
	}
}

func TestParsePrecedence(t *testing.T) {
	src := `void f(int a, int b, int c, int* o) { *o = a + b * c << 1 & 3 | 4 ^ 5; }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rhs := f.Func("f").Body.Stmts[0].(*Assign).RHS
	got := FormatExpr(rhs)
	want := "((((a + (b * c)) << 1) & 3) | (4 ^ 5))"
	if got != want {
		t.Errorf("precedence: got %s, want %s", got, want)
	}
}

func TestParseTernary(t *testing.T) {
	src := `void f(int a, int* o) { *o = a > 0 ? a : -a; }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rhs := f.Func("f").Body.Stmts[0].(*Assign).RHS
	if _, ok := rhs.(*CondExpr); !ok {
		t.Errorf("ternary parsed as %T", rhs)
	}
}

func TestParseCast(t *testing.T) {
	src := `void f(int a, int* o) { *o = (unsigned char)a + (int16)3; }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rhs := f.Func("f").Body.Stmts[0].(*Assign).RHS.(*Binary)
	c1 := rhs.X.(*Call)
	if c1.Name != "__cast_uint8" {
		t.Errorf("cast lowered to %q", c1.Name)
	}
	c2 := rhs.Y.(*Call)
	if c2.Name != "__cast_int16" {
		t.Errorf("cast lowered to %q", c2.Name)
	}
}

func TestParseWhile(t *testing.T) {
	src := `void f(int n, int* o) { int s; s = 0; while (n > 0) { s = s + n; n = n - 1; } *o = s; }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	loop, ok := f.Func("f").Body.Stmts[2].(*For)
	if !ok || loop.Init != nil || loop.Post != nil || loop.Cond == nil {
		t.Errorf("while not normalized to For: %+v", loop)
	}
}

func TestParseIntrinsics(t *testing.T) {
	src := `
int sum;
void main_dp(int t0, int* t1) {
	int t2;
	t2 = ROCCC_load_prev(sum) + t0;
	ROCCC_store2next(sum, t2);
	*t1 = sum;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Func("main_dp").Body.Stmts
	if _, ok := body[2].(*ExprStmt); !ok {
		t.Errorf("store2next statement parsed as %T", body[2])
	}
}

func TestParseVoidParamList(t *testing.T) {
	for _, src := range []string{`void f(void) {}`, `void f() {}`} {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if n := len(f.Func("f").Params); n != 0 {
			t.Errorf("%q: %d params", src, n)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`void f( { }`,
		`void f() { int; }`,
		`void f() { x = ; }`,
		`void f() { if x { } }`,
		`int A[0]; void f() {}`,
		`void f() { for (1; 1; 1) {} }`,
		`int A[2][2][2]; void f() {}`,
		`void f() { return 1; } void f() {}`, // caught at sema, parse ok; see below
	}
	for _, src := range cases[:len(cases)-1] {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestParseMultiDeclarators(t *testing.T) {
	src := `void f() { int a, b, c; a = 1; b = 2; c = a + b; }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// "int a, b, c;" splices three LocalDecls into the enclosing block.
	body := f.Func("f").Body.Stmts
	if len(body) != 6 {
		t.Fatalf("body has %d statements, want 6", len(body))
	}
	for i := 0; i < 3; i++ {
		if _, ok := body[i].(*LocalDecl); !ok {
			t.Errorf("stmt %d is %T, want *LocalDecl", i, body[i])
		}
	}
}

func TestFormatExprStable(t *testing.T) {
	src := `void f(int a, int b, int* o) { *o = (a < b) ? ~a : (a % b); }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got := FormatExpr(f.Func("f").Body.Stmts[0].(*Assign).RHS)
	if !strings.Contains(got, "?") || !strings.Contains(got, "~a") {
		t.Errorf("format = %s", got)
	}
}
