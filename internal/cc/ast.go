package cc

import (
	"fmt"
	"strings"
)

// File is a parsed translation unit: global declarations and functions.
type File struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Func returns the function named name, or nil.
func (f *File) Func(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// Global returns the global declaration named name, or nil.
func (f *File) Global(name string) *VarDecl {
	for _, g := range f.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// VarDecl declares a scalar or array variable. Globals with IsConst and
// an initializer list describe ROM contents (compiled to lookup tables).
type VarDecl struct {
	Name    string
	Type    Type
	IsConst bool
	Init    Expr    // scalar initializer, or nil
	InitArr []int64 // flattened array initializer, or nil
	Pos     Pos
}

// Param is a function parameter. Pointer-typed parameters are outputs.
type Param struct {
	Name string
	Type Type
	Pos  Pos
}

// IsOutput reports whether the parameter is a pointer output parameter.
func (p Param) IsOutput() bool {
	_, ok := p.Type.(PointerType)
	return ok
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    Type
	Params []Param
	Body   *Block
	Pos    Pos
}

// --- Statements ---

// Stmt is the interface implemented by all statement nodes.
type Stmt interface {
	stmt()
	StmtPos() Pos
}

// Block is a brace-delimited statement list.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// LocalDecl declares a function-local scalar with an optional initializer.
type LocalDecl struct {
	Name string
	Type Type
	Init Expr // or nil
	Pos  Pos
}

// Assign is an assignment statement. Op is ASSIGN for plain "=", or a
// compound kind (PLUSEQ etc.) already noted by the parser; the semantic
// pass rewrites compound forms into plain assignments.
type Assign struct {
	LHS Expr
	Op  Kind
	RHS Expr
	Pos Pos
}

// If is an if or if/else statement.
type If struct {
	Cond Expr
	Then *Block
	Else *Block // or nil
	Pos  Pos
}

// For is a for loop. Init and Post are assignments (or nil); Cond is the
// continuation test (or nil for an unconditional loop, which the subset
// rejects during semantic analysis).
type For struct {
	Init *Assign
	Cond Expr
	Post *Assign
	Body *Block
	Pos  Pos
}

// Return is a return statement with an optional value.
type Return struct {
	Value Expr // or nil
	Pos   Pos
}

// ExprStmt is an expression evaluated for effect (an intrinsic call).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (*Block) stmt()     {}
func (*LocalDecl) stmt() {}
func (*Assign) stmt()    {}
func (*If) stmt()        {}
func (*For) stmt()       {}
func (*Return) stmt()    {}
func (*ExprStmt) stmt()  {}

// StmtPos returns the statement's source position.
func (s *Block) StmtPos() Pos     { return s.Pos }
func (s *LocalDecl) StmtPos() Pos { return s.Pos }
func (s *Assign) StmtPos() Pos    { return s.Pos }
func (s *If) StmtPos() Pos        { return s.Pos }
func (s *For) StmtPos() Pos       { return s.Pos }
func (s *Return) StmtPos() Pos    { return s.Pos }
func (s *ExprStmt) StmtPos() Pos  { return s.Pos }

// --- Expressions ---

// Expr is the interface implemented by all expression nodes.
type Expr interface {
	expr()
	ExprPos() Pos
}

// NumberLit is an integer literal.
type NumberLit struct {
	Val int64
	Pos Pos
}

// Ident is a reference to a named variable or parameter.
type Ident struct {
	Name string
	Pos  Pos
}

// Index is a 1-D or 2-D array access.
type Index struct {
	Base *Ident
	Idx  []Expr // length 1 or 2
	Pos  Pos
}

// Deref is a pointer dereference (*p); legal only on output parameters.
type Deref struct {
	X   *Ident
	Pos Pos
}

// Unary is a unary operation: MINUS, TILDE or BANG.
type Unary struct {
	Op  Kind
	X   Expr
	Pos Pos
}

// Binary is a binary operation.
type Binary struct {
	Op   Kind
	X, Y Expr
	Pos  Pos
}

// CondExpr is the ternary conditional c ? t : f.
type CondExpr struct {
	Cond, Then, Else Expr
	Pos              Pos
}

// Call is a function or intrinsic call.
type Call struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (*NumberLit) expr() {}
func (*Ident) expr()     {}
func (*Index) expr()     {}
func (*Deref) expr()     {}
func (*Unary) expr()     {}
func (*Binary) expr()    {}
func (*CondExpr) expr()  {}
func (*Call) expr()      {}

// ExprPos returns the expression's source position.
func (e *NumberLit) ExprPos() Pos { return e.Pos }
func (e *Ident) ExprPos() Pos     { return e.Pos }
func (e *Index) ExprPos() Pos     { return e.Pos }
func (e *Deref) ExprPos() Pos     { return e.Pos }
func (e *Unary) ExprPos() Pos     { return e.Pos }
func (e *Binary) ExprPos() Pos    { return e.Pos }
func (e *CondExpr) ExprPos() Pos  { return e.Pos }
func (e *Call) ExprPos() Pos      { return e.Pos }

// FormatExpr renders an expression as C-like source, used in diagnostics
// and golden tests.
func FormatExpr(e Expr) string {
	switch e := e.(type) {
	case *NumberLit:
		return fmt.Sprintf("%d", e.Val)
	case *Ident:
		return e.Name
	case *Index:
		var b strings.Builder
		b.WriteString(e.Base.Name)
		for _, ix := range e.Idx {
			fmt.Fprintf(&b, "[%s]", FormatExpr(ix))
		}
		return b.String()
	case *Deref:
		return "*" + e.X.Name
	case *Unary:
		return e.Op.String() + FormatExpr(e.X)
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", FormatExpr(e.X), e.Op, FormatExpr(e.Y))
	case *CondExpr:
		return fmt.Sprintf("(%s ? %s : %s)", FormatExpr(e.Cond), FormatExpr(e.Then), FormatExpr(e.Else))
	case *Call:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = FormatExpr(a)
		}
		return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
	default:
		return fmt.Sprintf("<?expr %T>", e)
	}
}
