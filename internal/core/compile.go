// Package core is the compiler driver: it chains the reproduction's
// phases exactly as Fig. 1 of the paper lays them out — C front end,
// loop-level optimization on the high-level IR, scalar replacement and
// feedback detection, SUIFvm lowering, CFG + SSA, and data-path
// generation with pipelining and bit-width inference.
package core

import (
	"fmt"

	"roccc/internal/cc"
	"roccc/internal/cfg"
	"roccc/internal/dp"
	"roccc/internal/hir"
	"roccc/internal/ssa"
	"roccc/internal/synth"
	"roccc/internal/vm"
)

// Options control compilation.
type Options struct {
	// UnrollAll fully unrolls every constant-bound loop before kernel
	// extraction ("full loop unrolling ... eliminates the loop
	// controller", §2). Used for bit-level kernels such as udiv and
	// square root.
	UnrollAll bool
	// UnrollFactor partially unrolls the innermost loop by this factor
	// (0 or 1 disables), widening the data path.
	UnrollFactor int64
	// Optimize enables CSE, copy propagation, invariant hoisting and DCE
	// (on by default through DefaultOptions).
	Optimize bool
	// PeriodNs is the target clock period for latch placement.
	PeriodNs float64
	// Delay overrides the per-op delay model (nil = dp.DefaultDelay).
	Delay dp.DelayFn
}

// DefaultOptions returns the standard optimizing configuration with a
// 5 ns (200 MHz) pipeline target.
func DefaultOptions() Options {
	return Options{Optimize: true, PeriodNs: 5.0}
}

// Result carries every intermediate representation of one compiled
// kernel, so tools and tests can inspect any stage.
type Result struct {
	Program  *hir.Program
	Func     *hir.Func
	Kernel   *hir.Kernel
	Routine  *vm.Routine
	Graph    *cfg.Graph
	Datapath *dp.Datapath
}

// CompileSource parses, analyzes and compiles the kernel function named
// fname from C source text.
func CompileSource(src, fname string, opt Options) (*Result, error) {
	file, err := cc.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := cc.Analyze(file)
	if err != nil {
		return nil, err
	}
	prog, err := hir.Build(info)
	if err != nil {
		return nil, err
	}
	f := prog.Func(fname)
	if f == nil {
		return nil, fmt.Errorf("core: no kernel function %q", fname)
	}
	return Compile(prog, f, opt)
}

// Compile runs the middle and back ends on an already-built HIR function.
func Compile(prog *hir.Program, f *hir.Func, opt Options) (*Result, error) {
	if opt.PeriodNs <= 0 {
		opt.PeriodNs = 5.0
	}
	res := &Result{Program: prog, Func: f}

	// Loop-level optimization (§2).
	hir.Fold(f)
	if opt.UnrollAll {
		hir.UnrollAll(f)
	}
	if opt.UnrollFactor > 1 {
		if err := unrollInnermost(f, opt.UnrollFactor); err != nil {
			return nil, err
		}
	}
	if opt.Optimize {
		hir.HoistInvariants(f)
		hir.Fold(f)
	}

	// Scalar replacement + feedback detection (§4.1, §4.2.1).
	k, err := hir.ExtractKernel(prog, f)
	if err != nil {
		return nil, err
	}
	res.Kernel = k

	// Circuit-level cleanup on the exported data-path function.
	if opt.Optimize {
		hir.CSE(k.DP)
		hir.CopyProp(k.DP)
		hir.DCE(k.DP)
		hir.Fold(k.DP)
	}

	// Back end: SUIFvm lowering, CFG, SSA (§4.2.1).
	rt, err := vm.Lower(k.DP)
	if err != nil {
		return nil, err
	}
	res.Routine = rt
	g, err := cfg.Build(rt)
	if err != nil {
		return nil, err
	}
	if err := ssa.Convert(g); err != nil {
		return nil, err
	}
	res.Graph = g

	// Data-path building, width inference, pipelining (§4.2.2-4.2.4).
	d, err := dp.Build(k, g)
	if err != nil {
		return nil, err
	}
	dp.InferWidths(d)
	delay := opt.Delay
	if delay == nil {
		// Latch placement against the Virtex-II technology model, so the
		// pipeline structure matches what the synthesis report assumes.
		delay = synth.OpDelay(d, false)
	}
	if err := dp.Pipeline(d, dp.PipelineConfig{Period: opt.PeriodNs, Delay: delay}); err != nil {
		return nil, err
	}
	res.Datapath = d
	return res, nil
}

// unrollInnermost partially unrolls the innermost loop of the (single)
// top-level loop nest.
func unrollInnermost(f *hir.Func, factor int64) error {
	for i, s := range f.Body {
		l, ok := s.(*hir.For)
		if !ok {
			continue
		}
		// Descend to the innermost loop of a perfect nest.
		parent := (*hir.For)(nil)
		cur := l
		for len(cur.Body) == 1 {
			if inner, ok := cur.Body[0].(*hir.For); ok {
				parent = cur
				cur = inner
				continue
			}
			break
		}
		u, err := hir.UnrollBy(cur, factor)
		if err != nil {
			return err
		}
		if parent == nil {
			f.Body[i] = u
		} else {
			parent.Body[0] = u
		}
		return nil
	}
	return fmt.Errorf("core: no loop to unroll in %s", f.Name)
}
