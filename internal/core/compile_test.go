package core

import (
	"strings"
	"testing"

	"roccc/internal/dp"
	"roccc/internal/vm"
)

const firSource = `
int A[21];
int C[17];
void fir() {
	int i;
	for (i = 0; i < 17; i = i + 1) {
		C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
	}
}
`

func TestCompileSourceFIR(t *testing.T) {
	res, err := CompileSource(firSource, "fir", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel == nil || res.Routine == nil || res.Graph == nil || res.Datapath == nil {
		t.Fatal("missing intermediate representations")
	}
	if res.Datapath.Stages < 1 {
		t.Error("unpipelined data path")
	}
}

func TestCompileUnknownFunction(t *testing.T) {
	if _, err := CompileSource(firSource, "nope", DefaultOptions()); err == nil {
		t.Error("unknown kernel not reported")
	}
}

func TestCompileParseError(t *testing.T) {
	if _, err := CompileSource("void f( {", "f", DefaultOptions()); err == nil {
		t.Error("syntax error not reported")
	}
}

func TestCompileUnrollAllRemovesLoops(t *testing.T) {
	src := `
void pop(uint8 x, uint4* n) {
	int i; uint4 c;
	c = 0;
	for (i = 0; i < 8; i++) { c = c + ((x >> i) & 1); }
	*n = c;
}
`
	res, err := CompileSource(src, "pop", Options{Optimize: true, UnrollAll: true, PeriodNs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel.Nest.Depth() != 0 {
		t.Errorf("nest depth = %d after full unroll, want 0", res.Kernel.Nest.Depth())
	}
}

func TestCompileUnrollFactorWidensDatapath(t *testing.T) {
	narrow, err := CompileSource(firSource, "fir", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 17 iterations are not divisible by 2; use a 16-output variant.
	src := strings.ReplaceAll(firSource, "i < 17", "i < 16")
	opt := DefaultOptions()
	opt.UnrollFactor = 2
	wide, err := CompileSource(src, "fir", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(wide.Datapath.Outputs) != 2*len(narrow.Datapath.Outputs) {
		t.Errorf("unroll by 2: outputs %d vs %d", len(wide.Datapath.Outputs), len(narrow.Datapath.Outputs))
	}
	if wide.Kernel.Nest.Step[0] != 2 {
		t.Errorf("step = %d, want 2", wide.Kernel.Nest.Step[0])
	}
}

func TestCompileOptimizeReducesOps(t *testing.T) {
	src := `
void f(int a, int b, int* o1, int* o2) {
	*o1 = (a + b) * (a + b);
	*o2 = (a + b) * 3;
}
`
	opt := DefaultOptions()
	optimized, err := CompileSource(src, "f", opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize = false
	plain, err := CompileSource(src, "f", opt)
	if err != nil {
		t.Fatal(err)
	}
	countAdds := func(r *Result) int {
		n := 0
		for _, op := range r.Datapath.Ops {
			if op.Instr.Op == vm.ADD {
				n++
			}
		}
		return n
	}
	if countAdds(optimized) >= countAdds(plain) {
		t.Errorf("CSE did not reduce adders: %d vs %d", countAdds(optimized), countAdds(plain))
	}
}

func TestCompileDefaultPeriod(t *testing.T) {
	res, err := CompileSource(firSource, "fir", Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Datapath.Period != 5.0 {
		t.Errorf("default period = %.1f", res.Datapath.Period)
	}
}

func TestCompileRejectsWhileLoop(t *testing.T) {
	src := `void f(int n, int* o) { int s; s = 0; while (n > 0) { n = n - 1; } *o = s; }`
	if _, err := CompileSource(src, "f", DefaultOptions()); err == nil {
		t.Error("while loop not rejected")
	}
}

func TestCompileCustomDelayModel(t *testing.T) {
	opt := DefaultOptions()
	calls := 0
	opt.Delay = func(op *dp.Op) float64 { calls++; return 1.0 }
	res, err := CompileSource(firSource, "fir", opt)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("custom delay model never consulted")
	}
	if res.Datapath.MaxStageDelay <= 0 {
		t.Error("no stage delay recorded")
	}
}
