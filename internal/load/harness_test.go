package load

import (
	"testing"
	"time"

	"roccc/internal/dp"
)

// TestHarnessSmoke stands up the in-process 2-shard fleet and runs one
// short fixed-rate step through the full harness path: scenario mix
// with faults and rude disconnects, pipelined connections, the pacing
// clock, the /metrics probe, and the pool-balance teardown check.
func TestHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness smoke is not short")
	}
	sc, err := BuildScenario(dp.BackendInterp, "", 0.1, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := StartLocalFleet(2, 2, 0, sc.Specs)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	if err := Warmup(fleet.Addr, sc, 8); err != nil {
		t.Fatal(err)
	}

	res, err := RunStep(StepConfig{
		Addr:       fleet.Addr,
		MetricsURL: fleet.MetricsURL,
		Rate:       200,
		Duration:   500 * time.Millisecond,
		Dist:       DistUniform,
		Conns:      1,
		Slots:      8,
		Workers:    8,
		Timeout:    10 * time.Second,
		Seed:       3,
		Scenario:   sc,
	})
	if err != nil {
		t.Fatal(err)
	}

	// With a uniform 200 rps schedule over 500ms the offered count is
	// pinned by the pacing clock, not wall-clock luck.
	if res.Offered < 99 || res.Offered > 101 {
		t.Errorf("offered = %d, want ~100", res.Offered)
	}
	// Every arrival is classified exactly once.
	if got := res.Served + res.Faults + res.Sheds + res.Errors + res.Disconnects; got != res.Offered {
		t.Errorf("classified %d of %d arrivals", got, res.Offered)
	}
	if res.Served == 0 {
		t.Error("nothing served")
	}
	if res.Errors != 0 {
		t.Errorf("%d non-shed errors at a trivial rate", res.Errors)
	}
	// 10% faults and 5% disconnects over ~100 draws: both present for
	// this fixed seed.
	if res.Faults == 0 {
		t.Error("no planted faults surfaced")
	}
	if res.Disconnects == 0 {
		t.Error("no rude disconnects fired")
	}
	if res.P99Ms <= 0 || res.P50Ms > res.P99Ms || res.P99Ms > res.P999Ms {
		t.Errorf("quantiles out of order: p50=%.3f p99=%.3f p999=%.3f", res.P50Ms, res.P99Ms, res.P999Ms)
	}
	if res.Metrics == nil {
		t.Error("no /metrics probe in the step result")
	} else if len(res.Metrics.PoolIdle) == 0 {
		t.Error("metrics probe saw no kernel pools")
	}
	if err := fleet.PoolsBalanced(10 * time.Second); err != nil {
		t.Error(err)
	}
}
