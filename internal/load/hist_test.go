package load

import (
	"math"
	"sort"
	"testing"
)

// histOracle returns the exact quantile from a sorted copy of the
// recorded values (negatives clamped like Record does): the reference
// the histogram's bucketed answer is checked against.
func histOracle(vals []int64, q float64) int64 {
	sorted := make([]int64, len(vals))
	for i, v := range vals {
		if v < 0 {
			v = 0
		}
		sorted[i] = v
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// adversarialCases are distributions chosen to stress the bucketing:
// constants, bucket-boundary values, octave jumps, heavy tails, the
// int64 extremes, and negatives (clamped to zero).
func adversarialCases() map[string][]int64 {
	cases := map[string][]int64{
		"single":    {42},
		"zeros":     make([]int64, 100),
		"negatives": {-9_000_000_000, -5, -1, 0, 3, 7},
		"extremes":  {0, 1, math.MaxInt64, math.MaxInt64 - 1, 1 << 62},
	}
	constant := make([]int64, 5000)
	for i := range constant {
		constant[i] = 1000
	}
	cases["constant"] = constant

	var edges []int64
	for k := uint(0); k < 63; k++ {
		v := int64(1) << k
		edges = append(edges, v-1, v, v+1)
	}
	cases["bucket-edges"] = edges

	uniform := make([]int64, 100_000)
	for i := range uniform {
		uniform[i] = int64(i + 1)
	}
	cases["uniform"] = uniform

	// 10k fast requests with ten huge stragglers: the tail quantiles
	// must see the stragglers, not average them away.
	tail := make([]int64, 0, 10_010)
	rng := uint64(0xfeed)
	for i := 0; i < 10_000; i++ {
		tail = append(tail, int64(splitmix64(&rng)%50_000))
	}
	for i := 0; i < 10; i++ {
		tail = append(tail, int64(5e9)+int64(i)*1e8)
	}
	cases["heavy-tail"] = tail
	return cases
}

// TestHistQuantileOracle checks every quantile against the sorted-slice
// oracle: the histogram reports a bucket upper bound, so the answer
// must be >= the exact value and within the log-linear layout's 1/16
// relative-error envelope above it.
func TestHistQuantileOracle(t *testing.T) {
	quantiles := []float64{0, 0.001, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for name, vals := range adversarialCases() {
		t.Run(name, func(t *testing.T) {
			var h Hist
			for _, v := range vals {
				h.Record(v)
			}
			if h.Count() != uint64(len(vals)) {
				t.Fatalf("recorded %d of %d values", h.Count(), len(vals))
			}
			for _, q := range quantiles {
				got := h.Quantile(q)
				want := histOracle(vals, q)
				if got < want {
					t.Errorf("q%.3f = %d, below the exact value %d", q, got, want)
				}
				if slack := want>>histSubBits + 1; got-want > slack {
					t.Errorf("q%.3f = %d, exact %d: outside the 1/16 envelope (+%d)", q, got, want, slack)
				}
			}
		})
	}
}

// TestHistMergeAssociative proves worker histograms can be folded in
// any grouping: (a+b)+c, a+(b+c) and one histogram fed every value all
// agree bucket-for-bucket (Hist is comparable, so == is exhaustive).
func TestHistMergeAssociative(t *testing.T) {
	mk := func(seed uint64, n int) *Hist {
		var h Hist
		rng := seed
		for i := 0; i < n; i++ {
			h.Record(int64(splitmix64(&rng) >> 16))
		}
		return &h
	}
	a, b, c := mk(1, 1000), mk(2, 500), mk(3, 2000)

	var left Hist // (a+b)+c
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)

	var bc, right Hist // a+(b+c)
	bc.Merge(b)
	bc.Merge(c)
	right.Merge(a)
	right.Merge(&bc)

	if left != right {
		t.Fatal("(a+b)+c != a+(b+c)")
	}

	all := &Hist{}
	for seed, n := range map[uint64]int{1: 1000, 2: 500, 3: 2000} {
		rng := seed
		for i := 0; i < n; i++ {
			all.Record(int64(splitmix64(&rng) >> 16))
		}
	}
	if left != *all {
		t.Fatal("merged histogram differs from recording every value into one")
	}
	if left.Count() != 3500 {
		t.Fatalf("merged count = %d, want 3500", left.Count())
	}
}
