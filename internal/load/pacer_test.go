package load

import (
	"math"
	"testing"
)

// gaps draws n interarrival gaps (successive Next differences) in ns.
func gaps(p *Pacer, n int) []float64 {
	out := make([]float64, n)
	prev := int64(0)
	for i := range out {
		now := p.Next()
		out[i] = float64(now - prev)
		prev = now
	}
	return out
}

// TestPacerPoissonMoments checks the exponential interarrival draw
// against its first two moments: mean 1/rate and variance (1/rate)^2.
// With 200k draws the sampling error on both is well under the 2%/5%
// tolerances.
func TestPacerPoissonMoments(t *testing.T) {
	const rate = 1000.0 // mean gap 1e6 ns
	const mean = 1e9 / rate
	const n = 200_000
	g := gaps(NewPacer(DistPoisson, rate, 99), n)

	var sum, sum2 float64
	minGap := math.Inf(1)
	for _, v := range g {
		sum += v
		sum2 += v * v
		if v < minGap {
			minGap = v
		}
	}
	m := sum / n
	v := sum2/n - m*m
	if rel := math.Abs(m/mean - 1); rel > 0.02 {
		t.Errorf("mean gap %.0fns, want %.0fns (off %.1f%%)", m, mean, rel*100)
	}
	if rel := math.Abs(v/(mean*mean) - 1); rel > 0.05 {
		t.Errorf("gap variance %.3g, want %.3g (off %.1f%%)", v, mean*mean, rel*100)
	}
	if minGap < 0 {
		t.Errorf("negative interarrival gap %.0f", minGap)
	}
}

// TestPacerUniform pins the uniform process: every gap is exactly the
// mean interarrival (up to the 1ns truncation of the running schedule).
func TestPacerUniform(t *testing.T) {
	const rate = 4000.0
	const mean = 1e9 / rate
	for i, g := range gaps(NewPacer(DistUniform, rate, 7), 10_000) {
		if math.Abs(g-mean) > 1 {
			t.Fatalf("gap %d = %.0fns, want %.0fns", i, g, mean)
		}
	}
}

// TestPacerDeterministic proves the schedule is a pure function of
// (dist, rate, seed): reruns replay identical arrival times, and a
// different seed diverges.
func TestPacerDeterministic(t *testing.T) {
	a := NewPacer(DistPoisson, 500, 42)
	b := NewPacer(DistPoisson, 500, 42)
	c := NewPacer(DistPoisson, 500, 43)
	same, diff := true, false
	for i := 0; i < 1000; i++ {
		av, bv, cv := a.Next(), b.Next(), c.Next()
		if av != bv {
			same = false
		}
		if av != cv {
			diff = true
		}
	}
	if !same {
		t.Error("same seed replayed a different schedule")
	}
	if !diff {
		t.Error("different seeds produced identical schedules")
	}
}

// TestParseDist covers the flag surface.
func TestParseDist(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Dist
		ok   bool
	}{
		{"poisson", DistPoisson, true},
		{"uniform", DistUniform, true},
		{"bursty", 0, false},
		{"", 0, false},
	} {
		got, err := ParseDist(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseDist(%q) = %v, %v", tc.in, got, err)
		}
	}
}
