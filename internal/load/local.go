package load

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"roccc/client"
	"roccc/internal/calib"
	"roccc/internal/fleet"
	"roccc/internal/serve"
)

// LocalFleet is a self-hosted serving stack for the harness: a
// front-end server dispatching through a router into in-process worker
// shards, a TCP listener and a /metrics endpoint — the same topology
// `rocccserve -shards N -metrics :p` runs, stood up in-process so
// `rocccload -local` and the tests need no external server.
type LocalFleet struct {
	Addr       string
	MetricsURL string

	front   *serve.Server
	workers []*serve.Server
	router  *fleet.Router
	ln      net.Listener
	msrv    *http.Server
	mln     net.Listener
}

// StartLocalFleet stands up shards in-process worker servers behind a
// router (slots bounds each shard's concurrent streams — size it low to
// make shedding reachable at modest rates), registers every spec on
// every shard, and serves TCP + /metrics on loopback.
func StartLocalFleet(shards, slots, poolWorkers int, specs []serve.KernelSpec) (*LocalFleet, error) {
	if shards < 2 {
		return nil, fmt.Errorf("load: a local fleet needs at least 2 shards (got %d) — shedding is the router's job", shards)
	}
	if slots <= 0 {
		return nil, fmt.Errorf("load: shard slot budget must be positive (got %d)", slots)
	}
	lf := &LocalFleet{}
	fshards := make([]fleet.Shard, shards)
	for i := range fshards {
		w := serve.NewServer(poolWorkers)
		for _, spec := range specs {
			if err := w.Register(spec); err != nil {
				return nil, fmt.Errorf("load: registering %s on shard %d: %w", spec.Name, i, err)
			}
		}
		lf.workers = append(lf.workers, w)
		fshards[i] = fleet.Shard{Local: w, Slots: slots}
	}
	router, err := fleet.NewRouter(fshards)
	if err != nil {
		return nil, err
	}
	lf.router = router
	// The front's per-connection executor must be wider than the whole
	// fleet's slot budget, or it backpressures on the byte stream before
	// the router ever sheds — and the harness is here to measure the
	// router's admission control, not the front's read loop.
	lf.front = serve.NewServer(shards*slots + 64)
	lf.front.SetDispatcher(router)

	lf.ln, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		router.Close()
		return nil, err
	}
	lf.Addr = lf.ln.Addr().String()
	go lf.front.Serve(lf.ln)

	lf.mln, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lf.Close()
		return nil, err
	}
	mux := http.NewServeMux()
	front, r := lf.front, lf.router
	mux.Handle("/metrics", serve.FleetMetricsHandler(func() any {
		fm := r.Metrics()
		return client.FleetSnapshot{Front: front.Metrics(), Fleet: &fm}
	}))
	lf.msrv = &http.Server{Handler: mux}
	go lf.msrv.Serve(lf.mln)
	lf.MetricsURL = fmt.Sprintf("http://%s/metrics", lf.mln.Addr())
	return lf, nil
}

// Calibrate trials every compiled kernel on every shard across all
// execution backends and swaps each serving pool to its measured
// winner (see internal/calib). The harness uses it between knee runs:
// knee #1 measures the configured backends, Calibrate repicks, knee #2
// measures the auto-picked fleet — the before/after pair the calibrate
// gate compares. Returns the number of trials run.
func (lf *LocalFleet) Calibrate(opt calib.Options) (int, error) {
	trials := 0
	for i, w := range lf.workers {
		results, err := w.Calibrate(opt)
		if err != nil {
			return trials, fmt.Errorf("load: calibrating shard %d: %w", i, err)
		}
		trials += len(results)
	}
	return trials, nil
}

// PoolsBalanced verifies every shard drained to Gets == Puts + Rejected
// (waiting up to timeout for in-flight streams to finish) — the no-leak
// invariant after a storm that included rude disconnects.
func (lf *LocalFleet) PoolsBalanced(timeout time.Duration) error {
	for i, w := range lf.workers {
		if !w.WaitIdle(timeout) {
			return fmt.Errorf("load: shard %d still has in-flight streams after %s", i, timeout)
		}
		for name, st := range w.Stats() {
			if st.Gets != st.Puts+st.Rejected {
				return fmt.Errorf("load: shard %d pool %s unbalanced: gets=%d puts=%d rejected=%d",
					i, name, st.Gets, st.Puts, st.Rejected)
			}
		}
	}
	return nil
}

// Close drains and tears the stack down.
func (lf *LocalFleet) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if lf.front != nil {
		lf.front.Shutdown(ctx)
	}
	if lf.router != nil {
		lf.router.Close()
	}
	for _, w := range lf.workers {
		w.Shutdown(ctx)
	}
	if lf.msrv != nil {
		lf.msrv.Close()
	}
}
