package load

import (
	"fmt"

	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/exp"
	"roccc/internal/netlist"
	"roccc/internal/serve"
)

// faultSource is the planted-fault kernel: an elementwise divide whose
// fault variant carries one zero divisor on a valid iteration, so the
// served stream aborts with a typed dp.FaultError at a deterministic
// cycle — the harness's "expected fault" traffic class.
const faultSource = `
int A[24];
int B[24];
int Q[24];
void divide() {
	int i;
	for (i = 0; i < 24; i++) {
		Q[i] = A[i] / B[i];
	}
}
`

// ReqKind classifies one generated request.
type ReqKind int

const (
	// KindRun is a normal request expected to succeed (or shed under
	// saturation).
	KindRun ReqKind = iota
	// KindFault is a request with a planted divide-by-zero; the
	// expected outcome is a typed FaultError, not success.
	KindFault
	// KindDisconnect is a rude client: it opens a request promising
	// streams it never sends and slams the connection, exercising the
	// server's cleanup path mid-load.
	KindDisconnect
)

// Request is one drawn arrival: which kernel, which input template, and
// whether the outcome should be a success, a planted fault, or no
// response at all (rude disconnect).
type Request struct {
	Kind   ReqKind
	Kernel string
	Inputs map[string][]int64
}

// Mix is one kernel's share of the request mix. Input templates are
// generated once at scenario build (deterministic) and shared by every
// worker — the wire encoder only reads them.
type Mix struct {
	Kernel string  `json:"kernel"`
	Weight float64 `json:"weight"`

	inputs      map[string][]int64
	faultInputs map[string][]int64 // non-nil only for fault-capable kernels
}

// Scenario is a mixed request profile: a weighted kernel mix plus the
// fraction of arrivals that are planted faults or rude disconnects.
type Scenario struct {
	// Mix is the weighted request mix over streaming kernels.
	Mix []Mix `json:"mix"`
	// FaultFraction of arrivals run the fault-capable kernel with a
	// planted zero divisor (expected outcome: typed fault).
	FaultFraction float64 `json:"fault_fraction"`
	// DisconnectFraction of arrivals are rude disconnects.
	DisconnectFraction float64 `json:"disconnect_fraction"`
	// StreamsPerRequest is the batch width of every request.
	StreamsPerRequest int `json:"streams_per_request"`

	// Specs is everything the serving side must register (includes
	// kernels the mix skips as non-streaming).
	Specs []serve.KernelSpec `json:"-"`

	cum       []float64
	faultMix  []int // indexes into Mix with a fault template
	weightSum float64
}

// BuildScenario compiles the Table 1 kernels, the fault divider and the
// ci/corpus kernels (corpusDir may be empty or missing) into a request
// mix on the given backend: every streaming kernel enters the mix with
// equal weight, input templates are generated deterministically, and
// the divider also gets a planted-fault template. Combinational kernels
// stay in Specs (the fleet registers them) but draw no load.
func BuildScenario(backend dp.Backend, corpusDir string, faultFrac, discFrac float64, streams int) (*Scenario, error) {
	if faultFrac < 0 || discFrac < 0 || faultFrac+discFrac > 1 {
		return nil, fmt.Errorf("load: fault (%g) and disconnect (%g) fractions must be >= 0 and sum to <= 1", faultFrac, discFrac)
	}
	if streams <= 0 {
		return nil, fmt.Errorf("load: streams per request must be positive (got %d)", streams)
	}
	specs := serve.Table1Specs()
	specs = append(specs, serve.KernelSpec{
		Name: "divide_fault", Source: faultSource, Func: "divide",
		Options: core.DefaultOptions(), Config: netlist.Config{BusElems: 1},
	})
	corpus, err := exp.LoadCorpusSpecs(corpusDir, backend)
	if err != nil {
		return nil, err
	}
	specs = append(specs, corpus...)
	for i := range specs {
		specs[i].Config.Backend = backend
	}

	sc := &Scenario{
		FaultFraction:      faultFrac,
		DisconnectFraction: discFrac,
		StreamsPerRequest:  streams,
		Specs:              specs,
	}
	rng := uint64(0x9044) // fixed: templates are part of the scenario's identity
	for _, spec := range specs {
		res, err := core.CompileSource(spec.Source, spec.Func, spec.Options)
		if err != nil {
			return nil, fmt.Errorf("load: compiling %s: %w", spec.Name, err)
		}
		if res.Kernel.Nest.Depth() == 0 || len(res.Kernel.Reads) == 0 {
			continue // combinational: cannot stream, draws no load
		}
		m := Mix{Kernel: spec.Name, Weight: 1, inputs: map[string][]int64{}}
		for _, w := range res.Kernel.Reads {
			vals := make([]int64, w.Arr.Len())
			for j := range vals {
				vals[j] = int64(splitmix64(&rng)%255) - 128
			}
			if spec.Name == "divide_fault" && w.Arr.Name == "B" {
				for j := range vals {
					vals[j] = int64(splitmix64(&rng)%97) + 1
				}
			}
			m.inputs[w.Arr.Name] = vals
		}
		if spec.Name == "divide_fault" {
			m.faultInputs = map[string][]int64{}
			for name, vals := range m.inputs {
				fv := make([]int64, len(vals))
				copy(fv, vals)
				m.faultInputs[name] = fv
			}
			b := m.faultInputs["B"]
			b[int(splitmix64(&rng)%uint64(len(b)))] = 0
		}
		sc.Mix = append(sc.Mix, m)
	}
	if len(sc.Mix) == 0 {
		return nil, fmt.Errorf("load: no streaming kernels in the scenario")
	}
	sc.index()
	return sc, nil
}

// index precomputes the cumulative weight table and the fault-capable
// subset.
func (s *Scenario) index() {
	s.cum = make([]float64, len(s.Mix))
	s.faultMix = s.faultMix[:0]
	sum := 0.0
	for i, m := range s.Mix {
		sum += m.Weight
		s.cum[i] = sum
		if m.faultInputs != nil {
			s.faultMix = append(s.faultMix, i)
		}
	}
	s.weightSum = sum
}

// Draw generates one arrival from the profile, advancing the caller's
// deterministic rng state.
func (s *Scenario) Draw(rng *uint64) Request {
	u := float64(splitmix64(rng)>>11) / (1 << 53)
	if u < s.DisconnectFraction {
		// Rude disconnects open a real kernel so the server's request
		// state engages before the slam.
		return Request{Kind: KindDisconnect, Kernel: s.Mix[0].Kernel}
	}
	u -= s.DisconnectFraction
	if u < s.FaultFraction && len(s.faultMix) > 0 {
		m := &s.Mix[s.faultMix[int(splitmix64(rng)%uint64(len(s.faultMix)))]]
		return Request{Kind: KindFault, Kernel: m.Kernel, Inputs: m.faultInputs}
	}
	// Weighted kernel pick.
	w := float64(splitmix64(rng)>>11) / (1 << 53) * s.weightSum
	for i := range s.cum {
		if w < s.cum[i] {
			return Request{Kind: KindRun, Kernel: s.Mix[i].Kernel, Inputs: s.Mix[i].inputs}
		}
	}
	m := &s.Mix[len(s.Mix)-1]
	return Request{Kind: KindRun, Kernel: m.Kernel, Inputs: m.inputs}
}
