// Package load is the open-loop load harness for a rocccserve fleet:
// a pacing clock fires requests at fixed arrival rates (Poisson or
// uniform interarrival) regardless of how fast responses come back, so
// queueing collapse shows up as tail latency instead of being absorbed
// by a closed loop's self-throttling. Latency is measured from each
// request's *scheduled* arrival time — late dispatch is coordinated-
// omission debt, counted, never hidden. A step-doubling-then-bisect
// controller finds the knee: the highest rate where p99 stays under
// the SLO with a clean error budget, with load-sheds (serve.BusyError)
// classified as backpressure rather than failure.
package load

import "math/bits"

// The latency histogram is fixed-bucket log-linear (HDR-style): values
// below histLinear land in exact unit buckets; above, each power-of-two
// octave splits into histSub sub-buckets, bounding relative error at
// 1/histSub. Everything is a flat array — recording is branch-light,
// allocation-free and mergeable across workers by element-wise add.
const (
	histSubBits = 4                // 16 sub-buckets per octave
	histSub     = 1 << histSubBits // sub-buckets per octave
	histLinear  = histSub * 2      // values < 32 are exact

	// Octaves span bit-lengths histSubBits+2 .. 64.
	histBuckets = histLinear + (64-histSubBits-1)*histSub
)

// Hist is a fixed-bucket log-linear latency histogram. Units are the
// caller's (the harness records nanoseconds). The zero value is ready;
// Record is not safe for concurrent use — give each worker its own and
// Merge them.
type Hist struct {
	counts [histBuckets]uint64
	count  uint64
	sum    uint64
	max    int64
}

// Record adds one sample (negatives clamp to zero). This is the
// per-request hot path of every load worker.
//
//roccc:hotpath
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += uint64(v)
	if v > h.max {
		h.max = v
	}
	uv := uint64(v)
	var idx int
	if uv < histLinear {
		idx = int(uv)
	} else {
		n := bits.Len64(uv)
		idx = histLinear + (n-histSubBits-2)*histSub + int(uv>>(n-histSubBits-1)) - histSub
	}
	h.counts[idx]++
}

// Merge folds o into h (element-wise; associative and commutative, so
// per-worker histograms combine in any order).
func (h *Hist) Merge(o *Hist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.count }

// Mean returns the exact sample mean (the sum is tracked outside the
// buckets, so the mean has no quantization error).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest recorded sample, exactly.
func (h *Hist) Max() int64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// upper edge of the bucket holding the rank-⌈q·n⌉ sample. The bound is
// conservative (never understates a tail) and within 1/histSub relative
// error of the true order statistic.
func (h *Hist) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= rank {
			return bucketBound(i)
		}
	}
	return h.max
}

// bucketBound returns the largest value that lands in bucket idx.
func bucketBound(idx int) int64 {
	if idx < histLinear {
		return int64(idx)
	}
	octave := (idx - histLinear) / histSub
	sub := (idx-histLinear)%histSub + histSub
	shift := uint(octave + 1)
	return int64(sub+1)<<shift - 1
}
