package load

import (
	"fmt"
	"math"
)

// Dist selects the arrival process for a rate step.
type Dist int

const (
	// DistPoisson draws exponential interarrival gaps (a memoryless
	// arrival process — the open-loop default; bursts happen).
	DistPoisson Dist = iota
	// DistUniform spaces arrivals exactly 1/rate apart (deterministic;
	// isolates queueing from burstiness).
	DistUniform
)

// String names the distribution for reports.
func (d Dist) String() string {
	switch d {
	case DistPoisson:
		return "poisson"
	case DistUniform:
		return "uniform"
	default:
		return fmt.Sprintf("dist(%d)", int(d))
	}
}

// ParseDist parses a -dist flag value.
func ParseDist(s string) (Dist, error) {
	switch s {
	case "poisson":
		return DistPoisson, nil
	case "uniform":
		return DistUniform, nil
	default:
		return 0, fmt.Errorf("load: unknown arrival distribution %q (have poisson, uniform)", s)
	}
}

// Pacer generates one rate step's arrival schedule: successive Next
// calls return each arrival's offset from the step start, in
// nanoseconds, strictly non-decreasing. Deterministic for a given
// (dist, rate, seed).
type Pacer struct {
	dist   Dist
	meanNs float64
	rng    uint64
	sched  float64
}

// NewPacer builds a schedule for rate arrivals per second.
func NewPacer(dist Dist, rate float64, seed uint64) *Pacer {
	return &Pacer{dist: dist, meanNs: 1e9 / rate, rng: seed}
}

// Next returns the next arrival's offset from the step start. This is
// the pacing clock's per-tick hot path.
//
//roccc:hotpath
func (p *Pacer) Next() int64 {
	gap := p.meanNs
	if p.dist == DistPoisson {
		// 1-u is in (0,1], so the log is finite.
		u := float64(splitmix64(&p.rng)>>11) / (1 << 53)
		gap = -math.Log(1-u) * p.meanNs
	}
	p.sched += gap
	return int64(p.sched)
}

// splitmix64 advances the state and returns the next 64 random bits
// (Steele, Lea, Flood — deterministic, seedable, alloc-free).
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
