package load

import (
	"encoding/json"
	"fmt"
	"os"
)

// Report is the machine-readable harness output: the run's shape, the
// scenario profile, and the full knee-search trace. cmd/cigate's load
// gate group consumes it, and the run's headline numbers fold into the
// BENCH_<sha>.json trajectory.
type Report struct {
	Addr    string `json:"addr"`
	CPUs    int    `json:"cpus"`
	Backend string `json:"backend"`

	Dist    string  `json:"dist"`
	Conns   int     `json:"conns"`
	Slots   int     `json:"slots_per_conn"`
	Workers int     `json:"workers"`
	StepSec float64 `json:"step_sec"`

	StreamsPerRequest  int     `json:"streams_per_request"`
	FaultFraction      float64 `json:"fault_fraction"`
	DisconnectFraction float64 `json:"disconnect_fraction"`
	Mix                []Mix   `json:"mix"`

	Knee *KneeResult `json:"knee"`

	// KneeCalibrated is the second knee search of a -calibrate run,
	// measured after LocalFleet.Calibrate repicked every kernel's
	// backend; Knee holds the uncalibrated baseline. CalibTrials counts
	// the trials the repick ran between the two searches.
	KneeCalibrated *KneeResult `json:"knee_calibrated,omitempty"`
	CalibTrials    int         `json:"calib_trials,omitempty"`
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Gate evaluates the report against the load gate contract and returns
// the violations (empty = pass):
//
//   - a knee was found and the SLO held at it;
//   - below the knee every step had zero non-shed errors (sheds are
//     backpressure, not failures — they have their own check);
//   - at and past the knee the shed rate rises monotonically instead of
//     collapsing;
//   - on machines with at least minCPU cores, the knee clears floorRPS
//     (the CPU-conditioned p99-ceiling-at-rate gate: knee >= floor
//     means p99 met the SLO at the floor rate). Smaller machines skip
//     the floor but still gate the shape checks.
//
// A calibrated run (KneeCalibrated set) gates the second search with
// the same shape checks, and on machines with at least minCPU cores
// additionally requires the calibrated knee to be no worse than the
// uncalibrated one — the backend auto-pick must pay for itself or stay
// out of the way. Single-core runners skip the comparison: with no
// parallelism the threaded and cone backends have nothing to win, and
// scheduler noise would gate on a coin flip.
func (r *Report) Gate(minCPU int, floorRPS float64) []string {
	var v []string
	if r.Knee == nil {
		return []string{"load: report carries no knee result"}
	}
	v = append(v, gateKnee("", r.Knee, r.CPUs >= minCPU, floorRPS)...)
	if r.KneeCalibrated != nil {
		v = append(v, gateKnee("calibrated ", r.KneeCalibrated, r.CPUs >= minCPU, floorRPS)...)
		if r.CPUs >= minCPU && r.KneeCalibrated.KneeRPS < r.Knee.KneeRPS {
			v = append(v, fmt.Sprintf("load: calibrated knee %.0f rps regressed the uncalibrated %.0f rps (%d CPUs >= %d, so auto-pick must not lose)",
				r.KneeCalibrated.KneeRPS, r.Knee.KneeRPS, r.CPUs, minCPU))
		}
	}
	return v
}

// gateKnee applies the shape checks (and, when floorApplies, the rate
// floor) to one knee search; label prefixes the violations so the
// calibrated search's read distinctly from the baseline's.
func gateKnee(label string, kr *KneeResult, floorApplies bool, floorRPS float64) []string {
	var v []string
	if kr.KneeRPS <= 0 {
		v = append(v, fmt.Sprintf("load: no %sknee found (even the starting rate broke the %.0fms p99 SLO)", label, kr.SLOMs))
	}
	if !kr.ShedMonotonic {
		v = append(v, fmt.Sprintf("load: %sshed rate is not monotonic past the knee (the fleet collapsed instead of shedding)", label))
	}
	for _, s := range kr.Steps {
		if s.Rate <= kr.KneeRPS && s.Errors > 0 {
			v = append(v, fmt.Sprintf("load: %d non-shed errors at %.0f rps, below the %s%.0f rps knee", s.Errors, s.Rate, label, kr.KneeRPS))
		}
	}
	if floorApplies && floorRPS > 0 && kr.KneeRPS < floorRPS {
		v = append(v, fmt.Sprintf("load: %sknee %.0f rps under the %.0f rps floor (floor applies at this CPU count)",
			label, kr.KneeRPS, floorRPS))
	}
	return v
}
