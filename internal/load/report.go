package load

import (
	"encoding/json"
	"fmt"
	"os"
)

// Report is the machine-readable harness output: the run's shape, the
// scenario profile, and the full knee-search trace. cmd/cigate's load
// gate group consumes it, and the run's headline numbers fold into the
// BENCH_<sha>.json trajectory.
type Report struct {
	Addr    string `json:"addr"`
	CPUs    int    `json:"cpus"`
	Backend string `json:"backend"`

	Dist    string  `json:"dist"`
	Conns   int     `json:"conns"`
	Slots   int     `json:"slots_per_conn"`
	Workers int     `json:"workers"`
	StepSec float64 `json:"step_sec"`

	StreamsPerRequest  int     `json:"streams_per_request"`
	FaultFraction      float64 `json:"fault_fraction"`
	DisconnectFraction float64 `json:"disconnect_fraction"`
	Mix                []Mix   `json:"mix"`

	Knee *KneeResult `json:"knee"`
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Gate evaluates the report against the load gate contract and returns
// the violations (empty = pass):
//
//   - a knee was found and the SLO held at it;
//   - below the knee every step had zero non-shed errors (sheds are
//     backpressure, not failures — they have their own check);
//   - at and past the knee the shed rate rises monotonically instead of
//     collapsing;
//   - on machines with at least minCPU cores, the knee clears floorRPS
//     (the CPU-conditioned p99-ceiling-at-rate gate: knee >= floor
//     means p99 met the SLO at the floor rate). Smaller machines skip
//     the floor but still gate the shape checks.
func (r *Report) Gate(minCPU int, floorRPS float64) []string {
	var v []string
	if r.Knee == nil {
		return []string{"load: report carries no knee result"}
	}
	if r.Knee.KneeRPS <= 0 {
		v = append(v, fmt.Sprintf("load: no knee found (even the starting rate broke the %.0fms p99 SLO)", r.Knee.SLOMs))
	}
	if !r.Knee.ShedMonotonic {
		v = append(v, "load: shed rate is not monotonic past the knee (the fleet collapsed instead of shedding)")
	}
	for _, s := range r.Knee.Steps {
		if s.Rate <= r.Knee.KneeRPS && s.Errors > 0 {
			v = append(v, fmt.Sprintf("load: %d non-shed errors at %.0f rps, below the %.0f rps knee", s.Errors, s.Rate, r.Knee.KneeRPS))
		}
	}
	if r.CPUs >= minCPU && floorRPS > 0 && r.Knee.KneeRPS < floorRPS {
		v = append(v, fmt.Sprintf("load: knee %.0f rps under the %.0f rps floor (%d CPUs >= %d, so the floor applies)",
			r.Knee.KneeRPS, floorRPS, r.CPUs, minCPU))
	}
	return v
}
