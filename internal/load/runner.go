package load

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"roccc/client"
)

// StepConfig drives one open-loop rate step against a live fleet.
type StepConfig struct {
	Addr       string        // rocccserve TCP address
	MetricsURL string        // /metrics endpoint (empty = no scrape)
	Rate       float64       // offered arrivals per second
	Duration   time.Duration // step length (arrival window; in-flight work drains after)
	Dist       Dist          // arrival process
	Conns      int           // pipelined connections (default 2)
	Slots      int           // client-side slots per connection (0 = unbounded)
	Workers    int           // firing goroutines (default Conns*16)
	Timeout    time.Duration // per-request deadline (default 10s)
	Seed       uint64        // arrival schedule + mix draw seed
	Scenario   *Scenario
}

// StepResult is one rate step's measurement. Latency quantiles cover
// served requests only (successes and expected planted faults) and are
// measured from each arrival's *scheduled* time, so client-side queue
// delay — coordinated-omission debt — is inside them, not hidden.
// Sheds are counted separately: a shed is the fleet working as designed
// under overload, not a latency sample and not an error.
type StepResult struct {
	Rate    float64 `json:"rate_rps"`
	Offered int64   `json:"offered"`

	Served      int64 `json:"served"`
	Faults      int64 `json:"faults"`
	Sheds       int64 `json:"sheds"`
	Errors      int64 `json:"errors"`
	Disconnects int64 `json:"disconnects"`

	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`

	// Pacing-clock dispatch debt: how late ticket hand-off ran behind
	// the arrival schedule (the queueing between hand-off and the wire
	// is already inside the latency quantiles).
	LateMaxMs float64 `json:"late_max_ms"`

	ShedRate float64 `json:"shed_rate"`
	ErrRate  float64 `json:"err_rate"`

	ElapsedSec float64 `json:"elapsed_sec"`

	// Metrics is the post-step /metrics probe correlating the step's
	// latency with server-side saturation.
	Metrics *MetricsProbe `json:"metrics,omitempty"`
}

// MetricsProbe is the slice of a /metrics snapshot the harness
// correlates with each step: live concurrency, its high-water mark,
// cumulative sheds, and per-kernel warm-pool idle counts.
type MetricsProbe struct {
	InFlight  int64          `json:"in_flight"`
	HighWater int64          `json:"high_water"`
	Sheds     int64          `json:"sheds"`
	PoolIdle  map[string]int `json:"pool_idle,omitempty"`
}

// probeFrom distills a scraped snapshot. Fleet counters win when
// present (the front server's own counters see only wire connections).
func probeFrom(snap *client.FleetSnapshot) *MetricsProbe {
	p := &MetricsProbe{
		InFlight: snap.Front.InFlight,
		Sheds:    snap.Front.Sheds,
		PoolIdle: map[string]int{},
	}
	collect := func(m *client.Metrics) {
		for _, k := range m.Kernels {
			if k.HighWater > p.HighWater {
				p.HighWater = k.HighWater
			}
			if k.Pool != nil {
				p.PoolIdle[k.Kernel] = int(k.Pool.Idle)
			}
		}
	}
	collect(&snap.Front)
	if snap.Fleet != nil {
		p.InFlight, p.Sheds, p.HighWater = 0, 0, 0
		for i := range snap.Fleet.Shards {
			sh := &snap.Fleet.Shards[i]
			p.InFlight += sh.InFlight
			p.Sheds += sh.Sheds
			if sh.HighWater > p.HighWater {
				p.HighWater = sh.HighWater
			}
			if sh.Server != nil {
				collect(sh.Server)
			}
		}
	}
	return p
}

// worker is one firing goroutine's private state: its connection, its
// histogram (merged after the step), its outcome counters and its
// per-kernel reusable Job batches.
type worker struct {
	conn *client.Conn
	rng  uint64
	hist Hist
	jobs map[string][]client.Job

	served, faults, sheds, errors, disconnects int64
}

// batch returns the worker's reusable Job slice for a kernel variant,
// with fresh inputs installed (outputs/feedback buffers persist across
// requests — the client reuses them in place).
func (w *worker) batch(key string, inputs map[string][]int64, n int) []client.Job {
	jobs, ok := w.jobs[key]
	if !ok {
		jobs = make([]client.Job, n)
		w.jobs[key] = jobs
	}
	for i := range jobs {
		jobs[i].Inputs = inputs
	}
	return jobs
}

// fire executes one drawn arrival and classifies the outcome.
func (w *worker) fire(cfg *StepConfig, req Request, sched time.Time) {
	if req.Kind == KindDisconnect {
		rudeDisconnect(cfg.Addr, req.Kernel)
		w.disconnects++
		return
	}
	key := req.Kernel
	if req.Kind == KindFault {
		key += "!fault"
	}
	jobs := w.batch(key, req.Inputs, cfg.Scenario.StreamsPerRequest)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	err := w.conn.RunContext(ctx, req.Kernel, jobs)
	cancel()
	lat := time.Since(sched)
	switch {
	case err == nil:
		w.served++
		w.hist.Record(int64(lat))
	case errorsAsBusy(err):
		w.sheds++
	case req.Kind == KindFault && errorsAsFault(err):
		w.faults++
		w.hist.Record(int64(lat))
	default:
		w.errors++
	}
}

func errorsAsBusy(err error) bool {
	var be *client.BusyError
	return errors.As(err, &be)
}

func errorsAsFault(err error) bool {
	var fe *client.FaultError
	return errors.As(err, &fe)
}

// rudeDisconnect opens a request promising three streams it never
// sends, then slams the socket: the server must reap the dangling
// request state without leaking pooled Systems. (v1 byte streams are
// valid v2 byte streams, so no hello is needed.)
func rudeDisconnect(addr, kernel string) {
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return
	}
	payload := make([]byte, 0, 16+len(kernel))
	payload = append(payload, frameOpenByte)
	payload = binary.BigEndian.AppendUint32(payload, 1) // request id
	payload = append(payload, byte(len(kernel)))
	payload = append(payload, kernel...)
	payload = binary.BigEndian.AppendUint32(payload, 3) // promised streams
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(payload)))
	frame = append(frame, payload...)
	c.Write(frame)
	c.Close()
}

// frameOpenByte mirrors the protocol's 'O' frame type (the harness
// speaks raw bytes only here, to be rude on purpose; everything else
// goes through the public client).
const frameOpenByte = 'O'

// RunStep drives one open-loop rate step: a single pacing clock sleeps
// to each scheduled arrival and hands a ticket to a worker pool; every
// ticket is fired (late ones immediately — the debt lands in the
// latency measured from the scheduled time, which is the whole point of
// an open loop). Returns after all in-flight requests drain and, when
// configured, the /metrics probe lands.
func RunStep(cfg StepConfig) (*StepResult, error) {
	if cfg.Scenario == nil {
		return nil, fmt.Errorf("load: step needs a scenario")
	}
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("load: rate and duration must be positive")
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 2
	}
	if cfg.Workers <= 0 {
		// The pool bounds client-side concurrency; it must comfortably
		// exceed the fleet's admission budget or the harness closes the
		// loop itself and the router never sheds. One worker per client
		// slot keeps the two bounds aligned.
		per := cfg.Slots
		if per <= 0 {
			per = 64
		}
		cfg.Workers = cfg.Conns * per
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}

	conns := make([]*client.Conn, cfg.Conns)
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	for i := range conns {
		c, err := client.DialContext(dctx, cfg.Addr, client.WithPipelined(cfg.Slots))
		if err != nil {
			for _, pc := range conns[:i] {
				pc.Close()
			}
			return nil, fmt.Errorf("load: dialing %s: %w", cfg.Addr, err)
		}
		conns[i] = c
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	type ticket struct {
		sched time.Time
	}
	// The ticket queue is sized for the whole step so the clock never
	// blocks on slow workers: open-loop arrivals do not stop because
	// the system is drowning.
	expect := int(cfg.Rate*cfg.Duration.Seconds()) + cfg.Workers + 16
	tickets := make(chan ticket, expect)

	workers := make([]*worker, cfg.Workers)
	var wg sync.WaitGroup
	for i := range workers {
		w := &worker{
			conn: conns[i%len(conns)],
			rng:  cfg.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15),
			jobs: map[string][]client.Job{},
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tickets {
				req := cfg.Scenario.Draw(&w.rng)
				w.fire(&cfg, req, t.sched)
			}
		}()
	}

	// Pacing clock: one goroutine owns the schedule.
	pacer := NewPacer(cfg.Dist, cfg.Rate, cfg.Seed|1)
	start := time.Now()
	durNs := cfg.Duration.Nanoseconds()
	var offered int64
	var lateMax time.Duration
	for {
		off := pacer.Next()
		if off >= durNs {
			break
		}
		sched := start.Add(time.Duration(off))
		if late := time.Until(sched); late > 0 {
			time.Sleep(late)
		} else if -late > lateMax {
			lateMax = -late
		}
		select {
		case tickets <- ticket{sched: sched}:
		default:
			// Queue sizing failed us (rate far above estimate): block —
			// the lateness is still measured from sched by the worker.
			tickets <- ticket{sched: sched}
		}
		offered++
	}
	close(tickets)
	wg.Wait()
	elapsed := time.Since(start)

	res := &StepResult{Rate: cfg.Rate, Offered: offered, ElapsedSec: elapsed.Seconds(), LateMaxMs: ms(lateMax)}
	var hist Hist
	for _, w := range workers {
		hist.Merge(&w.hist)
		res.Served += w.served
		res.Faults += w.faults
		res.Sheds += w.sheds
		res.Errors += w.errors
		res.Disconnects += w.disconnects
	}
	res.P50Ms = ms(time.Duration(hist.Quantile(0.50)))
	res.P99Ms = ms(time.Duration(hist.Quantile(0.99)))
	res.P999Ms = ms(time.Duration(hist.Quantile(0.999)))
	res.MeanMs = hist.Mean() / 1e6
	res.MaxMs = ms(time.Duration(hist.Max()))
	if offered > 0 {
		res.ShedRate = float64(res.Sheds) / float64(offered)
		res.ErrRate = float64(res.Errors) / float64(offered)
	}
	if cfg.MetricsURL != "" {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		snap, err := client.ScrapeMetrics(sctx, cfg.MetricsURL)
		scancel()
		if err != nil {
			return res, fmt.Errorf("load: scraping %s: %w", cfg.MetricsURL, err)
		}
		res.Metrics = probeFrom(snap)
	}
	return res, nil
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// Warmup readies the fleet for measurement: every mix kernel (and its
// fault variant) runs once serially — lazy compilation and the first
// pool build happen here, not in step one — then a concurrent burst
// grows each kernel's pool to roughly its steady-state width so the
// first measured step does not pay cold-start System builds in its
// tail. Sheds and planted faults during the burst are expected and
// ignored.
func Warmup(addr string, sc *Scenario, concurrency int) error {
	if concurrency <= 0 {
		concurrency = 32
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	conn, err := client.DialContext(ctx, addr, client.WithPipelined(0))
	if err != nil {
		return fmt.Errorf("load: warmup dial: %w", err)
	}
	defer conn.Close()
	for i := range sc.Mix {
		m := &sc.Mix[i]
		jobs := []client.Job{{Inputs: m.inputs}}
		if err := conn.RunContext(ctx, m.Kernel, jobs); err != nil {
			return fmt.Errorf("load: warmup %s: %w", m.Kernel, err)
		}
		if m.faultInputs != nil {
			jobs = []client.Job{{Inputs: m.faultInputs}}
			if err := conn.RunContext(ctx, m.Kernel, jobs); err != nil && !errorsAsFault(err) {
				return fmt.Errorf("load: warmup %s (fault variant): %w", m.Kernel, err)
			}
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, concurrency)
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range sc.Mix {
				m := &sc.Mix[i]
				jobs := []client.Job{{Inputs: m.inputs}}
				err := conn.RunContext(ctx, m.Kernel, jobs)
				if err != nil && !errorsAsBusy(err) && !errorsAsFault(err) {
					errs[g] = fmt.Errorf("load: warmup burst %s: %w", m.Kernel, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
