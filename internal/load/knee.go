package load

import (
	"fmt"
	"sort"
	"time"
)

// KneeConfig drives the knee search: step-doubling from StartRate until
// a step breaks the SLO (or the error budget), then bisection between
// the last good and first bad rate, then post-knee probes for the
// shed-rate shape.
type KneeConfig struct {
	Step       StepConfig    // template; Rate is set per step
	StartRate  float64       // first offered rate (default 50 rps)
	MaxRate    float64       // search ceiling (default 1 << 20 rps)
	SLO        time.Duration // p99 ceiling for a passing step (default 100ms)
	MaxErrRate float64       // error budget for a passing step (default 0)
	Bisects    int           // bisection refinements (default 3)

	// ProbeFactors are rates past the knee (as multiples of it) run
	// after the search so the report can assert the shed rate rises
	// smoothly under overload instead of collapsing.
	ProbeFactors []float64 // default {1.3, 1.7}

	// Log, when set, receives one line per finished step.
	Log func(format string, args ...any)
}

// KneeResult is the full search trace plus the verdict.
type KneeResult struct {
	// KneeRPS is the highest offered rate that met the SLO with a
	// clean error budget; 0 when even StartRate failed.
	KneeRPS float64 `json:"knee_rps"`
	// SLOMs echoes the p99 ceiling the knee is defined against.
	SLOMs float64 `json:"slo_ms"`
	// Steps is every step run, in execution order (doubling, bisection,
	// post-knee probes).
	Steps []StepResult `json:"steps"`
	// ShedMonotonic reports whether, ordering all steps at or past the
	// knee by rate, the shed rate never decreases (small tolerance):
	// the fleet degrades by shedding more, not by collapsing.
	ShedMonotonic bool `json:"shed_monotonic"`
}

// pass reports whether a step met the knee criteria.
func (kc *KneeConfig) pass(res *StepResult) bool {
	if res.Served+res.Faults == 0 {
		return false // nothing was actually served; a 0 p99 is vacuous
	}
	return res.P99Ms <= float64(kc.SLO)/1e6 && res.ErrRate <= kc.MaxErrRate
}

// FindKnee runs the search. Every step reuses the template's scenario,
// connections count and duration; seeds differ per step so arrival
// schedules do not repeat.
func FindKnee(kc KneeConfig) (*KneeResult, error) {
	if kc.StartRate <= 0 {
		kc.StartRate = 50
	}
	if kc.MaxRate <= 0 {
		kc.MaxRate = 1 << 20
	}
	if kc.SLO <= 0 {
		kc.SLO = 100 * time.Millisecond
	}
	if kc.Bisects <= 0 {
		kc.Bisects = 3
	}
	if kc.ProbeFactors == nil {
		kc.ProbeFactors = []float64{1.3, 1.7}
	}
	logf := kc.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	out := &KneeResult{SLOMs: float64(kc.SLO) / 1e6}
	step := 0
	run := func(rate float64) (*StepResult, error) {
		cfg := kc.Step
		cfg.Rate = rate
		cfg.Seed = kc.Step.Seed + uint64(step)*0x1000193
		step++
		res, err := RunStep(cfg)
		if res != nil {
			out.Steps = append(out.Steps, *res)
		}
		if err != nil {
			return nil, err
		}
		logf("load: step %5.0f rps: served=%d faults=%d sheds=%d errors=%d p99=%.2fms shed_rate=%.3f",
			rate, res.Served, res.Faults, res.Sheds, res.Errors, res.P99Ms, res.ShedRate)
		return res, nil
	}

	// Phase 1: doubling.
	var lo, hi float64
	rate := kc.StartRate
	for {
		res, err := run(rate)
		if err != nil {
			return out, err
		}
		if !kc.pass(res) {
			hi = rate
			break
		}
		lo = rate
		if rate >= kc.MaxRate {
			break // never failed up to the ceiling; knee = ceiling
		}
		rate *= 2
		if rate > kc.MaxRate {
			rate = kc.MaxRate
		}
	}

	// Phase 2: bisection (only when a failing rate brackets the knee).
	if hi > 0 {
		blo := lo
		if blo == 0 {
			blo = hi / 16 // even StartRate failed: probe below it
		}
		for i := 0; i < kc.Bisects && hi-blo > 1; i++ {
			mid := (blo + hi) / 2
			res, err := run(mid)
			if err != nil {
				return out, err
			}
			if kc.pass(res) {
				blo, lo = mid, mid
			} else {
				hi = mid
			}
		}
	}
	out.KneeRPS = lo

	// Phase 3: post-knee probes for the shed curve.
	if lo > 0 {
		for _, f := range kc.ProbeFactors {
			if _, err := run(lo * f); err != nil {
				return out, err
			}
		}
	}
	out.ShedMonotonic = shedMonotonic(out.Steps, lo)
	return out, nil
}

// shedMonotonic orders the steps at or past the knee by offered rate
// and checks the shed rate never drops by more than a small tolerance:
// under deepening overload the fleet must shed more, not seize up.
func shedMonotonic(steps []StepResult, knee float64) bool {
	const tol = 0.02
	var past []StepResult
	for _, s := range steps {
		if s.Rate >= knee {
			past = append(past, s)
		}
	}
	sort.Slice(past, func(i, j int) bool { return past[i].Rate < past[j].Rate })
	prev := -1.0
	for _, s := range past {
		if s.ShedRate < prev-tol {
			return false
		}
		if s.ShedRate > prev {
			prev = s.ShedRate
		}
	}
	return true
}

// String renders a one-line verdict for logs.
func (r *KneeResult) String() string {
	return fmt.Sprintf("knee %.0f rps (p99 <= %.0fms, %d steps, shed monotonic: %v)",
		r.KneeRPS, r.SLOMs, len(r.Steps), r.ShedMonotonic)
}
