package load

import (
	"strings"
	"testing"
)

func knee(rps float64) *KneeResult {
	return &KneeResult{
		KneeRPS:       rps,
		SLOMs:         100,
		ShedMonotonic: true,
		Steps:         []StepResult{{Rate: rps, P99Ms: 12}},
	}
}

// TestGateCalibratedComparison pins the calibrate gate contract: on a
// big-enough machine the calibrated knee must not regress the baseline;
// under minCPU the comparison is skipped (single-core backends have
// nothing to win), but shape checks still run on both searches.
func TestGateCalibratedComparison(t *testing.T) {
	r := &Report{CPUs: 8, Knee: knee(200), KneeCalibrated: knee(150)}
	v := r.Gate(4, 0)
	if len(v) != 1 || !strings.Contains(v[0], "regressed") {
		t.Fatalf("violations = %q, want one regression", v)
	}

	r.KneeCalibrated = knee(200) // equal is fine: auto-pick may keep every backend
	if v := r.Gate(4, 0); len(v) != 0 {
		t.Fatalf("equal knees flagged: %q", v)
	}
	r.KneeCalibrated = knee(400)
	if v := r.Gate(4, 0); len(v) != 0 {
		t.Fatalf("improved knee flagged: %q", v)
	}

	// Under the CPU floor the comparison is skipped...
	r.CPUs = 2
	r.KneeCalibrated = knee(50)
	if v := r.Gate(4, 0); len(v) != 0 {
		t.Fatalf("small machine gated the comparison: %q", v)
	}
	// ...but the calibrated search's shape checks still apply.
	r.KneeCalibrated.ShedMonotonic = false
	v = r.Gate(4, 0)
	if len(v) != 1 || !strings.Contains(v[0], "calibrated shed rate") {
		t.Fatalf("violations = %q, want calibrated shed-shape violation", v)
	}
}

// TestGateFloorAppliesToBothKnees: the CPU-conditioned rate floor gates
// the baseline and the calibrated search independently, with labelled
// violations.
func TestGateFloorAppliesToBothKnees(t *testing.T) {
	r := &Report{CPUs: 8, Knee: knee(80), KneeCalibrated: knee(90)}
	v := r.Gate(4, 100)
	if len(v) != 2 {
		t.Fatalf("violations = %q, want both knees under the floor", v)
	}
	if !strings.Contains(v[1], "calibrated knee") {
		t.Fatalf("second violation not labelled calibrated: %q", v)
	}
}

// TestGateUncalibratedUnchanged: without a calibrated knee the gate is
// the original contract — no knee result is itself a violation.
func TestGateUncalibratedUnchanged(t *testing.T) {
	r := &Report{CPUs: 8}
	if v := r.Gate(4, 100); len(v) != 1 || !strings.Contains(v[0], "no knee result") {
		t.Fatalf("violations = %v", r.Gate(4, 100))
	}
	r.Knee = knee(200)
	if v := r.Gate(4, 100); len(v) != 0 {
		t.Fatalf("clean report flagged: %q", v)
	}
	r.Knee.KneeRPS = 0
	r.Knee.Steps = nil
	if v := r.Gate(4, 0); len(v) != 1 || !strings.Contains(v[0], "no knee found") {
		t.Fatalf("violations = %q, want no-knee violation", v)
	}
}
