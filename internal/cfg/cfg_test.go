package cfg

import (
	"strings"
	"testing"

	"roccc/internal/cc"
	"roccc/internal/hir"
	"roccc/internal/vm"
)

func lower(t *testing.T, src, name string) *vm.Routine {
	t.Helper()
	p, f, err := hir.BuildFunc(src, name)
	if err != nil {
		t.Fatal(err)
	}
	k, err := hir.ExtractKernel(p, f)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := vm.Lower(k.DP)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestBuildStraightLine(t *testing.T) {
	rt := lower(t, `void f(int a, int b, int* o) { *o = a + b * 2; }`, "f")
	g, err := Build(rt)
	if err != nil {
		t.Fatal(err)
	}
	// Straight-line code: a single block into the exit.
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	if len(g.Entry().Succs) != 1 || g.Entry().Succs[0] != g.Exit {
		t.Error("entry must flow to exit")
	}
}

func TestBuildDiamond(t *testing.T) {
	src := `void f(int a, int* o) { int r; if (a > 0) { r = a; } else { r = -a; } *o = r; }`
	g, err := Build(lower(t, src, "f"))
	if err != nil {
		t.Fatal(err)
	}
	entry := g.Entry()
	if entry.BranchCond == nil || len(entry.Succs) != 2 {
		t.Fatal("entry is not a branch")
	}
	// Both branch targets converge.
	joins := 0
	for _, b := range g.Blocks {
		if len(b.Preds) == 2 {
			joins++
		}
	}
	if joins != 1 {
		t.Errorf("joins = %d, want 1", joins)
	}
}

func TestBuildNestedDiamonds(t *testing.T) {
	src := `
void f(int a, int b, int* o) {
	int r;
	if (a > 0) {
		if (b > 0) { r = 1; } else { r = 2; }
	} else {
		if (b > 0) { r = 3; } else { r = 4; }
	}
	*o = r;
}
`
	g, err := Build(lower(t, src, "f"))
	if err != nil {
		t.Fatal(err)
	}
	branches := 0
	for _, b := range g.Blocks {
		if b.BranchCond != nil {
			branches++
		}
	}
	if branches != 3 {
		t.Errorf("branches = %d, want 3", branches)
	}
	// RPO visits entry first and every reachable block once.
	rpo := g.ReversePostOrder()
	if rpo[0] != g.Entry() {
		t.Error("RPO does not start at entry")
	}
	seen := map[*Block]bool{}
	for _, b := range rpo {
		if seen[b] {
			t.Error("duplicate block in RPO")
		}
		seen[b] = true
	}
}

func TestDominatorsChain(t *testing.T) {
	src := `
void f(int a, int* o) {
	int r;
	r = a;
	if (a > 0) { r = r + 1; }
	if (a > 1) { r = r + 2; }
	*o = r;
}
`
	g, err := Build(lower(t, src, "f"))
	if err != nil {
		t.Fatal(err)
	}
	idom := g.Dominators()
	entry := g.Entry()
	if idom[entry] != entry {
		t.Error("entry must dominate itself")
	}
	// Every reachable block walks up to the entry.
	for _, b := range g.ReversePostOrder() {
		d := b
		for i := 0; i < 50 && d != entry; i++ {
			nd, ok := idom[d]
			if !ok {
				t.Fatalf("block %d has no idom", d.ID)
			}
			d = nd
		}
		if d != entry {
			t.Errorf("block %d does not reach entry in the dom tree", b.ID)
		}
	}
}

func TestDominanceFrontierTriangle(t *testing.T) {
	// If without else: the join's frontier relation still holds.
	src := `void f(int a, int* o) { int r; r = 0; if (a > 0) { r = a; } *o = r; }`
	g, err := Build(lower(t, src, "f"))
	if err != nil {
		t.Fatal(err)
	}
	df := g.DominanceFrontier()
	var join *Block
	for _, b := range g.Blocks {
		if len(b.Preds) == 2 {
			join = b
		}
	}
	if join == nil {
		t.Fatal("no join")
	}
	found := false
	for _, frontier := range df {
		for _, fb := range frontier {
			if fb == join {
				found = true
			}
		}
	}
	if !found {
		t.Error("join not in any dominance frontier")
	}
}

func TestPredIndex(t *testing.T) {
	src := `void f(int a, int* o) { int r; if (a > 0) { r = 1; } else { r = 2; } *o = r; }`
	g, err := Build(lower(t, src, "f"))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range g.Blocks {
		for i, p := range b.Preds {
			if b.PredIndex(p) != i {
				t.Errorf("PredIndex mismatch at block %d", b.ID)
			}
		}
		if b.PredIndex(g.Exit) != -1 && len(b.Preds) == 0 {
			t.Error("PredIndex of non-pred should be -1")
		}
	}
}

func TestGraphString(t *testing.T) {
	g, err := Build(lower(t, `void f(int a, int* o) { *o = a; }`, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.String(), "block 0") {
		t.Error("graph printout missing block header")
	}
}

func TestUnknownLabelError(t *testing.T) {
	rt := &vm.Routine{
		Name:    "bad",
		RegType: map[vm.Reg]cc.IntType{},
		Instrs: []*vm.Instr{
			{Op: vm.JMP, Label: "nowhere"},
			{Op: vm.RET},
		},
	}
	if _, err := Build(rt); err == nil {
		t.Error("unknown label not reported")
	}
}
