// Package cfg is the reproduction's Machine-SUIF Control Flow Graph
// library analogue [14]: it groups a vm Routine's linear instruction
// stream into basic blocks, builds the edge structure, and provides
// dominator and traversal utilities used by SSA conversion and data-path
// building.
package cfg

import (
	"fmt"
	"strings"

	"roccc/internal/vm"
)

// Block is a basic block: straight-line compute instructions plus an
// optional conditional-branch condition at the end.
type Block struct {
	ID     int
	Label  string // label the block starts at, if any
	Instrs []*vm.Instr
	Succs  []*Block
	Preds  []*Block
	// BranchCond holds the conditional branch instruction when the block
	// ends in one; Succs[0] is the taken target, Succs[1] the fallthrough.
	BranchCond *vm.Instr
	// Phis holds SSA phi instructions once ssa.Convert has run; the i-th
	// source of each phi corresponds to Preds[i].
	Phis []*vm.Instr
}

// PredIndex returns the position of p in b.Preds, or -1.
func (b *Block) PredIndex(p *Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	return -1
}

// IsEmpty reports whether the block holds no compute instructions.
func (b *Block) IsEmpty() bool { return len(b.Instrs) == 0 }

// String renders the block header and instructions.
func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "block %d", b.ID)
	if b.Label != "" {
		fmt.Fprintf(&sb, " (%s)", b.Label)
	}
	sb.WriteString(":\n")
	for _, in := range b.Instrs {
		sb.WriteString(in.String())
		sb.WriteByte('\n')
	}
	if b.BranchCond != nil {
		fmt.Fprintf(&sb, "  branch on %s\n", b.BranchCond.Srcs[0])
	}
	var succs []string
	for _, s := range b.Succs {
		succs = append(succs, fmt.Sprintf("%d", s.ID))
	}
	fmt.Fprintf(&sb, "  -> [%s]\n", strings.Join(succs, " "))
	return sb.String()
}

// Graph is a control flow graph over a vm routine.
type Graph struct {
	Routine *vm.Routine
	Blocks  []*Block // Blocks[0] is the entry
	Exit    *Block   // synthetic exit (holds no instructions)
}

// Entry returns the entry block.
func (g *Graph) Entry() *Block { return g.Blocks[0] }

// Build groups rt's instructions into basic blocks and connects edges.
func Build(rt *vm.Routine) (*Graph, error) {
	g := &Graph{Routine: rt}
	// Identify leaders: first instruction, label positions, and
	// instructions following branches.
	labels := map[string]int{}
	leaders := map[int]bool{0: true}
	for i, in := range rt.Instrs {
		switch in.Op {
		case vm.LAB:
			labels[in.Label] = i
			leaders[i] = true
		case vm.JMP, vm.BTR, vm.BFL, vm.RET:
			leaders[i+1] = true
		}
	}
	// Carve blocks.
	exit := &Block{ID: -1}
	g.Exit = exit
	blockAt := map[int]*Block{}
	var order []int
	var cur *Block
	for i, in := range rt.Instrs {
		if leaders[i] {
			cur = &Block{ID: len(g.Blocks)}
			g.Blocks = append(g.Blocks, cur)
			blockAt[i] = cur
			order = append(order, i)
		}
		switch in.Op {
		case vm.LAB:
			if cur.Label == "" && len(cur.Instrs) == 0 {
				cur.Label = in.Label
			}
		case vm.NOP:
		default:
			cur.Instrs = append(cur.Instrs, in)
		}
	}
	exit.ID = len(g.Blocks)
	// Wire edges.
	addEdge := func(from, to *Block) {
		from.Succs = append(from.Succs, to)
		to.Preds = append(to.Preds, from)
	}
	targetOf := func(label string) (*Block, error) {
		ix, ok := labels[label]
		if !ok {
			return nil, fmt.Errorf("cfg: unknown label %q", label)
		}
		// The label instruction is a leader.
		return blockAt[ix], nil
	}
	for bi, start := range order {
		blk := blockAt[start]
		// Find last instruction of the block in the original stream.
		end := len(rt.Instrs)
		if bi+1 < len(order) {
			end = order[bi+1]
		}
		var last *vm.Instr
		for i := end - 1; i >= start; i-- {
			if rt.Instrs[i].Op != vm.LAB && rt.Instrs[i].Op != vm.NOP {
				last = rt.Instrs[i]
				break
			}
		}
		fallthroughTo := func() *Block {
			if bi+1 < len(order) {
				return blockAt[order[bi+1]]
			}
			return exit
		}
		if last == nil {
			addEdge(blk, fallthroughTo())
			continue
		}
		switch last.Op {
		case vm.JMP:
			// JMP is control-only: drop it from Instrs.
			blk.Instrs = blk.Instrs[:len(blk.Instrs)-1]
			t, err := targetOf(last.Label)
			if err != nil {
				return nil, err
			}
			addEdge(blk, t)
		case vm.BTR, vm.BFL:
			blk.Instrs = blk.Instrs[:len(blk.Instrs)-1]
			blk.BranchCond = last
			t, err := targetOf(last.Label)
			if err != nil {
				return nil, err
			}
			// Succs[0] = taken, Succs[1] = fallthrough.
			addEdge(blk, t)
			addEdge(blk, fallthroughTo())
		case vm.RET:
			blk.Instrs = blk.Instrs[:len(blk.Instrs)-1]
			addEdge(blk, exit)
		default:
			addEdge(blk, fallthroughTo())
		}
	}
	return g, nil
}

// ReversePostOrder returns the blocks in reverse post-order from the
// entry (the exit block is excluded).
func (g *Graph) ReversePostOrder() []*Block {
	seen := map[*Block]bool{g.Exit: true}
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry())
	rpo := make([]*Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	return rpo
}

// Dominators computes the immediate-dominator relation with the
// Cooper–Harvey–Kennedy iterative algorithm. The entry block's idom is
// itself.
func (g *Graph) Dominators() map[*Block]*Block {
	rpo := g.ReversePostOrder()
	index := map[*Block]int{}
	for i, b := range rpo {
		index[b] = i
	}
	idom := map[*Block]*Block{rpo[0]: rpo[0]}
	intersect := func(a, b *Block) *Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if _, ok := idom[p]; !ok {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom == nil {
				continue
			}
			if idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// DominanceFrontier computes each block's dominance frontier.
func (g *Graph) DominanceFrontier() map[*Block][]*Block {
	idom := g.Dominators()
	df := map[*Block][]*Block{}
	inDF := map[*Block]map[*Block]bool{}
	for _, b := range g.ReversePostOrder() {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			runner := p
			for runner != idom[b] && runner != nil {
				if inDF[runner] == nil {
					inDF[runner] = map[*Block]bool{}
				}
				if !inDF[runner][b] {
					inDF[runner][b] = true
					df[runner] = append(df[runner], b)
				}
				next, ok := idom[runner]
				if !ok || next == runner {
					break
				}
				runner = next
			}
		}
	}
	return df
}

// String renders the whole graph.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		sb.WriteString(b.String())
	}
	return sb.String()
}
