package hir

import (
	"fmt"

	"roccc/internal/cc"
)

// Build converts an analyzed C file into HIR. All user function calls
// are inlined (the paper: "Function calls will either be inlined or
// whenever feasible made into a lookup table"); const arrays become ROMs;
// while-loops and other non-canonical loop forms are rejected because the
// hardware back end needs statically-structured loops.
func Build(info *cc.Info) (*Program, error) {
	b := &builder{
		info:   info,
		prog:   &Program{},
		vars:   map[*cc.Symbol]*Var{},
		arrays: map[*cc.Symbol]*Array{},
		roms:   map[*cc.Symbol]*Rom{},
	}
	for _, g := range info.File.Globals {
		if err := b.global(g); err != nil {
			return nil, err
		}
	}
	for _, fn := range info.File.Funcs {
		// Non-void functions exist only to be inlined at their call
		// sites; only void functions are kernel entry points.
		if _, isVoid := fn.Ret.(cc.VoidType); !isVoid {
			continue
		}
		f, err := b.function(fn)
		if err != nil {
			return nil, err
		}
		b.prog.Funcs = append(b.prog.Funcs, f)
	}
	return b.prog, nil
}

// BuildFunc is a convenience wrapper: parse, analyze and build, then
// return the named function and its program.
func BuildFunc(src, name string) (*Program, *Func, error) {
	file, err := cc.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	info, err := cc.Analyze(file)
	if err != nil {
		return nil, nil, err
	}
	prog, err := Build(info)
	if err != nil {
		return nil, nil, err
	}
	f := prog.Func(name)
	if f == nil {
		return nil, nil, fmt.Errorf("hir: no function %q", name)
	}
	return prog, f, nil
}

type builder struct {
	info   *cc.Info
	prog   *Program
	vars   map[*cc.Symbol]*Var
	arrays map[*cc.Symbol]*Array
	roms   map[*cc.Symbol]*Rom

	fn    *Func  // function being built
	out   []Stmt // statement accumulator of the current block
	depth int    // inlining depth guard
}

func (b *builder) global(g *cc.VarDecl) error {
	sym := b.info.GlobalSyms[g]
	if sym == nil {
		return fmt.Errorf("hir: global %q has no symbol", g.Name)
	}
	switch t := g.Type.(type) {
	case cc.IntType:
		v := &Var{Name: g.Name, Type: t, Kind: VarGlobal}
		if lit, ok := g.Init.(*cc.NumberLit); ok {
			v.Init = t.Wrap(lit.Val)
		}
		b.vars[sym] = v
		b.prog.Globals = append(b.prog.Globals, v)
	case cc.ArrayType:
		if g.IsConst {
			r := &Rom{Name: g.Name, Elem: t.Elem, Size: sizeOf(t)}
			r.Content = make([]int64, r.Size)
			for i, v := range g.InitArr {
				r.Content[i] = t.Elem.Wrap(v)
			}
			b.roms[sym] = r
			b.prog.Roms = append(b.prog.Roms, r)
		} else {
			a := &Array{Name: g.Name, Elem: t.Elem, Dims: t.Dims}
			b.arrays[sym] = a
			b.prog.Arrays = append(b.prog.Arrays, a)
		}
	}
	return nil
}

func sizeOf(t cc.ArrayType) int {
	n := t.Dims[0]
	if len(t.Dims) == 2 {
		n *= t.Dims[1]
	}
	return n
}

func (b *builder) function(fn *cc.FuncDecl) (*Func, error) {
	f := &Func{Name: fn.Name}
	b.fn = f
	sub := map[*cc.Symbol]*Var{} // function-local symbol bindings
	for _, prm := range fn.Params {
		sym := b.paramSym(fn, prm.Name)
		switch t := prm.Type.(type) {
		case cc.IntType:
			v := &Var{Name: prm.Name, Type: t, Kind: VarParam}
			sub[sym] = v
			f.Params = append(f.Params, v)
		case cc.PointerType:
			v := &Var{Name: prm.Name, Type: t.Elem, Kind: VarOut}
			sub[sym] = v
			f.Outs = append(f.Outs, v)
		case cc.ArrayType:
			a := &Array{Name: prm.Name, Elem: t.Elem, Dims: t.Dims}
			if b.prog.Array(prm.Name) == nil {
				b.prog.Arrays = append(b.prog.Arrays, a)
			} else {
				a = b.prog.Array(prm.Name)
			}
			b.arrays[sym] = a
		}
	}
	body, err := b.convertBlock(fn.Body, sub)
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// paramSym returns the checker's Symbol for a parameter of fn.
func (b *builder) paramSym(fn *cc.FuncDecl, name string) *cc.Symbol {
	if m := b.info.ParamSyms[fn]; m != nil {
		if sym, ok := m[name]; ok {
			return sym
		}
	}
	return &cc.Symbol{Name: name, Kind: cc.SymParam}
}

func (b *builder) convertBlock(blk *cc.Block, sub map[*cc.Symbol]*Var) ([]Stmt, error) {
	saved := b.out
	b.out = nil
	for _, s := range blk.Stmts {
		if err := b.convertStmt(s, sub); err != nil {
			b.out = saved
			return nil, err
		}
	}
	res := b.out
	b.out = saved
	return res, nil
}

func (b *builder) emit(s Stmt) { b.out = append(b.out, s) }

func (b *builder) convertStmt(s cc.Stmt, sub map[*cc.Symbol]*Var) error {
	switch s := s.(type) {
	case *cc.Block:
		inner, err := b.convertBlock(s, sub)
		if err != nil {
			return err
		}
		b.out = append(b.out, inner...)
		return nil
	case *cc.LocalDecl:
		sym := b.info.LocalSyms[s]
		if sym == nil {
			sym = &cc.Symbol{Name: s.Name, Kind: cc.SymLocal, Type: s.Type}
		}
		v := &Var{Name: s.Name, Type: s.Type.(cc.IntType), Kind: VarLocal}
		sub[sym] = v
		if s.Init != nil {
			src, err := b.convertExpr(s.Init, sub)
			if err != nil {
				return err
			}
			b.emit(&Assign{Dst: v, Src: b.coerce(src, v.Type)})
		}
		return nil
	case *cc.Assign:
		src, err := b.convertExpr(s.RHS, sub)
		if err != nil {
			return err
		}
		return b.convertStore(s.LHS, src, sub)
	case *cc.If:
		cond, err := b.convertExpr(s.Cond, sub)
		if err != nil {
			return err
		}
		thenStmts, err := b.convertBlock(s.Then, sub)
		if err != nil {
			return err
		}
		var elseStmts []Stmt
		if s.Else != nil {
			elseStmts, err = b.convertBlock(s.Else, sub)
			if err != nil {
				return err
			}
		}
		b.emit(&If{Cond: cond, Then: thenStmts, Else: elseStmts})
		return nil
	case *cc.For:
		return b.convertFor(s, sub)
	case *cc.Return:
		if s.Value == nil {
			return nil
		}
		// Returns with values only appear in inlined callees; the
		// function() driver rejects top-level value returns earlier.
		return fmt.Errorf("hir: unexpected value return (only void kernels are compiled)")
	case *cc.ExprStmt:
		call, ok := s.X.(*cc.Call)
		if !ok {
			return fmt.Errorf("hir: expression statement must be a call")
		}
		return b.convertCallStmt(call, sub)
	default:
		return fmt.Errorf("hir: unexpected statement %T", s)
	}
}

func (b *builder) convertStore(lhs cc.Expr, src Expr, sub map[*cc.Symbol]*Var) error {
	switch lhs := lhs.(type) {
	case *cc.Ident:
		v, err := b.varFor(lhs, sub)
		if err != nil {
			return err
		}
		b.emit(&Assign{Dst: v, Src: b.coerce(src, v.Type)})
		return nil
	case *cc.Index:
		sym := b.info.SymbolOf(lhs)
		arr, ok := b.arrays[sym]
		if !ok {
			return fmt.Errorf("hir: store to unknown array %q", lhs.Base.Name)
		}
		idx := make([]Expr, len(lhs.Idx))
		for i, ix := range lhs.Idx {
			e, err := b.convertExpr(ix, sub)
			if err != nil {
				return err
			}
			idx[i] = e
		}
		b.emit(&Store{Arr: arr, Idx: idx, Src: b.coerce(src, arr.Elem)})
		return nil
	case *cc.Deref:
		sym := b.info.SymbolOf(lhs)
		v, ok := sub[sym]
		if !ok {
			return fmt.Errorf("hir: store through unknown out-param %q", lhs.X.Name)
		}
		b.emit(&Assign{Dst: v, Src: b.coerce(src, v.Type)})
		return nil
	default:
		return fmt.Errorf("hir: bad store target %T", lhs)
	}
}

func (b *builder) varFor(id *cc.Ident, sub map[*cc.Symbol]*Var) (*Var, error) {
	sym := b.info.SymbolOf(id)
	if sym == nil {
		return nil, fmt.Errorf("hir: unresolved identifier %q", id.Name)
	}
	if v, ok := sub[sym]; ok {
		return v, nil
	}
	if v, ok := b.vars[sym]; ok {
		return v, nil
	}
	// First sight of a local/global symbol via use (e.g. loop variables
	// declared in enclosing scopes).
	v := &Var{Name: sym.Name, Type: sym.Elem(), Kind: VarLocal}
	if sym.Kind == cc.SymGlobal {
		v.Kind = VarGlobal
	}
	b.vars[sym] = v
	return v, nil
}

// convertFor canonicalizes a C for-loop into the HIR counted form.
func (b *builder) convertFor(s *cc.For, sub map[*cc.Symbol]*Var) error {
	if s.Init == nil || s.Cond == nil || s.Post == nil {
		return fmt.Errorf("hir: loop must have init, condition and post statement (while-loops are not synthesizable)")
	}
	initID, ok := s.Init.LHS.(*cc.Ident)
	if !ok {
		return fmt.Errorf("hir: loop initializer must assign the induction variable")
	}
	iv, err := b.varFor(initID, sub)
	if err != nil {
		return err
	}
	iv.Kind = VarLoop
	from, err := b.convertExpr(s.Init.RHS, sub)
	if err != nil {
		return err
	}
	cond, ok := s.Cond.(*cc.Binary)
	if !ok {
		return fmt.Errorf("hir: loop condition must be i < bound or i <= bound")
	}
	condID, ok := cond.X.(*cc.Ident)
	if !ok || b.info.SymbolOf(condID) != b.info.SymbolOf(initID) {
		return fmt.Errorf("hir: loop condition must test the induction variable")
	}
	to, err := b.convertExpr(cond.Y, sub)
	if err != nil {
		return err
	}
	switch cond.Op {
	case cc.LT:
	case cc.LE:
		to = &Bin{Op: OpAdd, X: to, Y: &Const{Val: 1, Typ: to.Type()}, Typ: to.Type()}
	default:
		return fmt.Errorf("hir: loop condition must use < or <=")
	}
	postID, ok := s.Post.LHS.(*cc.Ident)
	if !ok || b.info.SymbolOf(postID) != b.info.SymbolOf(initID) {
		return fmt.Errorf("hir: loop post statement must update the induction variable")
	}
	step, err := stepOf(s.Post.RHS, initID, b.info)
	if err != nil {
		return err
	}
	body, err := b.convertBlock(s.Body, sub)
	if err != nil {
		return err
	}
	b.emit(&For{Var: iv, From: from, To: to, Step: step, Body: body})
	return nil
}

// stepOf extracts the constant positive step from "i = i + c" / "i = c + i".
func stepOf(rhs cc.Expr, iv *cc.Ident, info *cc.Info) (int64, error) {
	bin, ok := rhs.(*cc.Binary)
	if !ok || bin.Op != cc.PLUS {
		return 0, fmt.Errorf("hir: loop step must be i = i + constant")
	}
	var cexpr cc.Expr
	if id, ok := bin.X.(*cc.Ident); ok && info.SymbolOf(id) == info.SymbolOf(iv) {
		cexpr = bin.Y
	} else if id, ok := bin.Y.(*cc.Ident); ok && info.SymbolOf(id) == info.SymbolOf(iv) {
		cexpr = bin.X
	} else {
		return 0, fmt.Errorf("hir: loop step must be i = i + constant")
	}
	lit, ok := cexpr.(*cc.NumberLit)
	if !ok || lit.Val <= 0 {
		return 0, fmt.Errorf("hir: loop step must be a positive constant")
	}
	return lit.Val, nil
}

var binOps = map[cc.Kind]Op{
	cc.PLUS: OpAdd, cc.MINUS: OpSub, cc.STAR: OpMul, cc.SLASH: OpDiv,
	cc.PERCENT: OpRem, cc.AMP: OpAnd, cc.PIPE: OpOr, cc.CARET: OpXor,
	cc.SHL: OpShl, cc.SHR: OpShr, cc.LT: OpLt, cc.LE: OpLe, cc.GT: OpGt,
	cc.GE: OpGe, cc.EQ: OpEq, cc.NE: OpNe, cc.LAND: OpLAnd, cc.LOR: OpLOr,
}

// coerce inserts a Cast when the expression's type differs from want.
func (b *builder) coerce(e Expr, want cc.IntType) Expr {
	if e.Type() == want {
		return e
	}
	if c, ok := e.(*Const); ok {
		return &Const{Val: want.Wrap(c.Val), Typ: want}
	}
	return &Cast{X: e, Typ: want}
}

func (b *builder) convertExpr(e cc.Expr, sub map[*cc.Symbol]*Var) (Expr, error) {
	switch e := e.(type) {
	case *cc.NumberLit:
		return &Const{Val: e.Val, Typ: b.info.IntTypeOf(e)}, nil
	case *cc.Ident:
		v, err := b.varFor(e, sub)
		if err != nil {
			return nil, err
		}
		return &VarRef{Var: v}, nil
	case *cc.Index:
		sym := b.info.SymbolOf(e)
		if rom, ok := b.roms[sym]; ok {
			if len(e.Idx) != 1 {
				return nil, fmt.Errorf("hir: 2-D ROMs are not supported")
			}
			ix, err := b.convertExpr(e.Idx[0], sub)
			if err != nil {
				return nil, err
			}
			return &LutRef{Rom: rom, Idx: ix}, nil
		}
		arr, ok := b.arrays[sym]
		if !ok {
			return nil, fmt.Errorf("hir: load from unknown array %q", e.Base.Name)
		}
		idx := make([]Expr, len(e.Idx))
		for i, ix := range e.Idx {
			conv, err := b.convertExpr(ix, sub)
			if err != nil {
				return nil, err
			}
			idx[i] = conv
		}
		return &Load{Arr: arr, Idx: idx}, nil
	case *cc.Deref:
		sym := b.info.SymbolOf(e)
		v, ok := sub[sym]
		if !ok {
			return nil, fmt.Errorf("hir: read of unknown out-param %q", e.X.Name)
		}
		return &VarRef{Var: v}, nil
	case *cc.Unary:
		x, err := b.convertExpr(e.X, sub)
		if err != nil {
			return nil, err
		}
		t := b.info.IntTypeOf(e)
		switch e.Op {
		case cc.MINUS:
			return &Un{Op: OpNeg, X: x, Typ: t}, nil
		case cc.TILDE:
			return &Un{Op: OpNot, X: x, Typ: t}, nil
		case cc.BANG:
			return &Un{Op: OpLNot, X: x, Typ: t}, nil
		}
		return nil, fmt.Errorf("hir: unary %s", e.Op)
	case *cc.Binary:
		x, err := b.convertExpr(e.X, sub)
		if err != nil {
			return nil, err
		}
		y, err := b.convertExpr(e.Y, sub)
		if err != nil {
			return nil, err
		}
		op, ok := binOps[e.Op]
		if !ok {
			return nil, fmt.Errorf("hir: binary %s", e.Op)
		}
		return &Bin{Op: op, X: x, Y: y, Typ: b.info.IntTypeOf(e)}, nil
	case *cc.CondExpr:
		c, err := b.convertExpr(e.Cond, sub)
		if err != nil {
			return nil, err
		}
		tt, err := b.convertExpr(e.Then, sub)
		if err != nil {
			return nil, err
		}
		ff, err := b.convertExpr(e.Else, sub)
		if err != nil {
			return nil, err
		}
		t := b.info.IntTypeOf(e)
		return &Sel{Cond: c, Then: b.coerce(tt, t), Else: b.coerce(ff, t), Typ: t}, nil
	case *cc.Call:
		return b.convertCallExpr(e, sub)
	default:
		return nil, fmt.Errorf("hir: unexpected expression %T", e)
	}
}

func (b *builder) convertCallExpr(e *cc.Call, sub map[*cc.Symbol]*Var) (Expr, error) {
	if t, ok := cc.IsCastIntrinsic(e.Name); ok {
		x, err := b.convertExpr(e.Args[0], sub)
		if err != nil {
			return nil, err
		}
		if c, ok := x.(*Const); ok {
			return &Const{Val: t.Wrap(c.Val), Typ: t}, nil
		}
		return &Cast{X: x, Typ: t}, nil
	}
	if e.Name == cc.IntrinsicLoadPrev {
		id := e.Args[0].(*cc.Ident)
		v, err := b.varFor(id, sub)
		if err != nil {
			return nil, err
		}
		return &LoadPrev{Var: v}, nil
	}
	// User function call: inline.
	return b.inlineCall(e, sub)
}

func (b *builder) convertCallStmt(e *cc.Call, sub map[*cc.Symbol]*Var) error {
	if e.Name == cc.IntrinsicStoreNext {
		id := e.Args[0].(*cc.Ident)
		v, err := b.varFor(id, sub)
		if err != nil {
			return err
		}
		src, err := b.convertExpr(e.Args[1], sub)
		if err != nil {
			return err
		}
		b.emit(&StoreNext{Var: v, Src: b.coerce(src, v.Type)})
		return nil
	}
	_, err := b.convertCallExpr(e, sub)
	return err
}

// inlineCall expands a user function call into the current statement
// stream, returning the expression holding the return value.
func (b *builder) inlineCall(e *cc.Call, sub map[*cc.Symbol]*Var) (Expr, error) {
	if b.depth > 32 {
		return nil, fmt.Errorf("hir: inlining depth exceeded at call to %q", e.Name)
	}
	callee, ok := b.info.Funcs[e.Name]
	if !ok {
		return nil, fmt.Errorf("hir: call to unknown function %q", e.Name)
	}
	inner := map[*cc.Symbol]*Var{}
	ai := 0
	for _, prm := range callee.Params {
		switch t := prm.Type.(type) {
		case cc.IntType:
			tmp := b.fn.NewTemp(t)
			arg, err := b.convertExpr(e.Args[ai], sub)
			if err != nil {
				return nil, err
			}
			b.emit(&Assign{Dst: tmp, Src: b.coerce(arg, t)})
			inner[b.paramSym(callee, prm.Name)] = tmp
			ai++
		case cc.PointerType:
			return nil, fmt.Errorf("hir: cannot inline %q: pointer parameters in callees are not supported", e.Name)
		case cc.ArrayType:
			// Array parameters bind by name to the program-scope array.
			sym := b.paramSym(callee, prm.Name)
			arr := b.prog.Array(prm.Name)
			if arr == nil {
				arr = &Array{Name: prm.Name, Elem: t.Elem, Dims: t.Dims}
				b.prog.Arrays = append(b.prog.Arrays, arr)
			}
			b.arrays[sym] = arr
		}
	}
	// The subset requires value returns to be the final statement.
	stmts := callee.Body.Stmts
	var retExpr cc.Expr
	if n := len(stmts); n > 0 {
		if r, ok := stmts[n-1].(*cc.Return); ok {
			retExpr = r.Value
			stmts = stmts[:n-1]
		}
	}
	b.depth++
	defer func() { b.depth-- }()
	for _, s := range stmts {
		if err := b.convertStmt(s, inner); err != nil {
			return nil, err
		}
	}
	if retExpr == nil {
		return &Const{Val: 0, Typ: cc.Int32}, nil
	}
	ret, err := b.convertExpr(retExpr, inner)
	if err != nil {
		return nil, err
	}
	rt, isInt := callee.Ret.(cc.IntType)
	if !isInt {
		return ret, nil
	}
	tmp := b.fn.NewTemp(rt)
	b.emit(&Assign{Dst: tmp, Src: b.coerce(ret, rt)})
	return &VarRef{Var: tmp}, nil
}
