package hir

import (
	"strings"
	"testing"

	"roccc/internal/cc"
)

// The paper's running examples.
const firSource = `
int A[21];
int C[17];
void fir() {
	int i;
	for (i = 0; i < 17; i = i + 1) {
		C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
	}
}
`

const accumSource = `
int A[32];
int sum;
void accum() {
	int i;
	sum = 0;
	for (i = 0; i < 32; i++) {
		sum = sum + A[i];
	}
}
`

const ifElseSource = `
void if_else(int x1, int x2, int* x3, int* x4) {
	int a, c;
	c = x1 - x2;
	if (c < x2)
		a = x1*x1;
	else
		a = x1 * x2 + 3;
	c = c - a;
	*x3 = c;
	*x4 = a;
	return;
}
`

func mustBuild(t *testing.T, src, name string) (*Program, *Func) {
	t.Helper()
	p, f, err := BuildFunc(src, name)
	if err != nil {
		t.Fatal(err)
	}
	return p, f
}

func TestBuildFIR(t *testing.T) {
	p, f := mustBuild(t, firSource, "fir")
	if len(p.Arrays) != 2 {
		t.Fatalf("arrays = %d, want 2", len(p.Arrays))
	}
	if len(f.Body) != 1 {
		t.Fatalf("body = %d stmts, want 1 (the loop)", len(f.Body))
	}
	loop, ok := f.Body[0].(*For)
	if !ok {
		t.Fatalf("not a loop: %T", f.Body[0])
	}
	if n, ok := TripCount(loop); !ok || n != 17 {
		t.Errorf("trip count = %d,%v", n, ok)
	}
}

func TestBuildIfElse(t *testing.T) {
	_, f := mustBuild(t, ifElseSource, "if_else")
	if len(f.Params) != 2 || len(f.Outs) != 2 {
		t.Fatalf("params=%d outs=%d", len(f.Params), len(f.Outs))
	}
	found := false
	for _, s := range f.Body {
		if _, ok := s.(*If); ok {
			found = true
		}
	}
	if !found {
		t.Error("missing If statement")
	}
}

func TestBuildLE(t *testing.T) {
	src := `int A[10]; void f() { int i; for (i = 0; i <= 9; i++) { A[i] = i; } }`
	_, f := mustBuild(t, src, "f")
	loop := f.Body[0].(*For)
	to := FoldExpr(loop.To)
	c, ok := to.(*Const)
	if !ok || c.Val != 10 {
		t.Errorf("<=9 normalizes to To=%s, want 10", ExprString(to))
	}
}

func TestBuildRejectsWhile(t *testing.T) {
	src := `void f(int n, int* o) { int s; s = 0; while (n > 0) { n = n - 1; } *o = s; }`
	_, _, err := BuildFunc(src, "f")
	if err == nil || !strings.Contains(err.Error(), "while") {
		t.Errorf("err = %v", err)
	}
}

func TestBuildInlining(t *testing.T) {
	src := `
int sq(int x) { return x * x; }
void f(int a, int* o) { *o = sq(a) + sq(a + 1); }
`
	p, f := mustBuild(t, src, "f")
	// Inlined: evaluating must give a^2 + (a+1)^2.
	env := NewEnv()
	outs, err := RunProgramFunc(p, f, env, []int64{3})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != 9+16 {
		t.Errorf("out = %d, want 25", outs[0])
	}
}

func TestBuildConstArrayToRom(t *testing.T) {
	src := `
const int16 tab[4] = {5, 6, 7, 8};
void f(uint2 i, int16* o) { *o = tab[i]; }
`
	p, f := mustBuild(t, src, "f")
	if len(p.Roms) != 1 || p.Roms[0].Size != 4 {
		t.Fatalf("roms = %+v", p.Roms)
	}
	env := NewEnv()
	outs, err := RunProgramFunc(p, f, env, []int64{2})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != 7 {
		t.Errorf("tab[2] = %d", outs[0])
	}
}

func TestBuildEvalMatchesCCInterp(t *testing.T) {
	// The HIR evaluator and the C interpreter must agree on if_else for
	// a sweep of inputs.
	file, err := cc.Parse(ifElseSource)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cc.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}
	ip := cc.NewInterp(info)
	p, f := mustBuild(t, ifElseSource, "if_else")
	for x1 := int64(-20); x1 <= 20; x1 += 3 {
		for x2 := int64(-20); x2 <= 20; x2 += 7 {
			_, ccOuts, err := ip.Call("if_else", x1, x2)
			if err != nil {
				t.Fatal(err)
			}
			env := NewEnv()
			hirOuts, err := RunProgramFunc(p, f, env, []int64{x1, x2})
			if err != nil {
				t.Fatal(err)
			}
			if ccOuts[0] != hirOuts[0] || ccOuts[1] != hirOuts[1] {
				t.Fatalf("(%d,%d): cc=(%d,%d) hir=(%d,%d)", x1, x2,
					ccOuts[0], ccOuts[1], hirOuts[0], hirOuts[1])
			}
		}
	}
}

func TestBuildFIRSemantics(t *testing.T) {
	p, f := mustBuild(t, firSource, "fir")
	env := NewEnv()
	a := p.Array("A")
	in := make([]int64, 21)
	for i := range in {
		in[i] = int64(2*i - 5)
	}
	env.BindArray(a, in)
	if _, err := RunProgramFunc(p, f, env, nil); err != nil {
		t.Fatal(err)
	}
	c := p.Array("C")
	for i := 0; i < 17; i++ {
		want := 3*in[i] + 5*in[i+1] + 7*in[i+2] + 9*in[i+3] - in[i+4]
		if got := env.Arrays[c][i]; got != want {
			t.Errorf("C[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestBuild2D(t *testing.T) {
	src := `
int img[8][8];
int out[8][8];
void f() {
	int i; int j;
	for (i = 1; i < 7; i++)
		for (j = 1; j < 7; j++)
			out[i][j] = img[i-1][j] + img[i+1][j] + img[i][j-1] + img[i][j+1];
}
`
	p, f := mustBuild(t, src, "f")
	env := NewEnv()
	img := p.Array("img")
	in := make([]int64, 64)
	for i := range in {
		in[i] = int64(i * i % 37)
	}
	env.BindArray(img, in)
	if _, err := RunProgramFunc(p, f, env, nil); err != nil {
		t.Fatal(err)
	}
	out := p.Array("out")
	for i := 1; i < 7; i++ {
		for j := 1; j < 7; j++ {
			want := in[(i-1)*8+j] + in[(i+1)*8+j] + in[i*8+j-1] + in[i*8+j+1]
			if got := env.Arrays[out][i*8+j]; got != want {
				t.Errorf("out[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}
