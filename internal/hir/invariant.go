package hir

// invariant.go implements loop-invariant code motion: scalar assignments
// whose right-hand sides do not depend on anything the loop changes are
// hoisted in front of the loop.

// HoistInvariants moves loop-invariant assignments out of every loop in
// f (innermost first) and returns the number of hoisted statements.
func HoistInvariants(f *Func) int {
	n := 0
	f.Body = hoistInList(f.Body, &n)
	return n
}

func hoistInList(list []Stmt, n *int) []Stmt {
	var out []Stmt
	for _, s := range list {
		switch s := s.(type) {
		case *For:
			s.Body = hoistInList(s.Body, n)
			hoisted, rest := splitInvariants(s)
			*n += len(hoisted)
			out = append(out, hoisted...)
			s.Body = rest
			out = append(out, s)
		case *If:
			s.Then = hoistInList(s.Then, n)
			s.Else = hoistInList(s.Else, n)
			out = append(out, s)
		default:
			out = append(out, s)
		}
	}
	return out
}

// splitInvariants pulls hoistable assignments off the front region of
// the loop body. An assignment is hoistable when:
//   - its RHS reads no variable assigned anywhere in the loop,
//   - its RHS does not touch memory or feedback state,
//   - its destination is a local assigned exactly once in the loop, and
//   - the destination is not read earlier in the body (no use of the
//     previous iteration's value).
func splitInvariants(l *For) (hoisted, rest []Stmt) {
	assigned := AssignedVars(l.Body)
	assigned[l.Var] = true
	counts := assignCounts(l.Body)
	for i, s := range l.Body {
		a, ok := s.(*Assign)
		if !ok {
			rest = append(rest, l.Body[i:]...)
			return hoisted, rest
		}
		if a.Dst.Kind != VarLocal || counts[a.Dst] != 1 ||
			exprUses(a.Src, assigned) || exprReadsMemory(a.Src) || readsFeedback(a.Src) {
			rest = append(rest, l.Body[i:]...)
			return hoisted, rest
		}
		// Safe: RHS is invariant and the single definition dominates all
		// uses in the body because it is at the front.
		hoisted = append(hoisted, a)
		delete(assigned, a.Dst)
	}
	return hoisted, rest
}

func assignCounts(list []Stmt) map[*Var]int {
	counts := map[*Var]int{}
	var scan func([]Stmt)
	scan = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *Assign:
				counts[s.Dst]++
			case *StoreNext:
				counts[s.Var]++
			case *If:
				scan(s.Then)
				scan(s.Else)
			case *For:
				counts[s.Var]++
				scan(s.Body)
			}
		}
	}
	scan(list)
	return counts
}

func readsFeedback(e Expr) bool {
	found := false
	visitExpr(CloneExpr(e), func(x Expr) Expr {
		if _, ok := x.(*LoadPrev); ok {
			found = true
		}
		return x
	})
	return found
}
