package hir

import "fmt"

// fuse.go implements loop fusion (§2), used to merge adjacent kernels so
// one controller/buffer pair feeds a single wider data path.

// CanFuse reports whether two adjacent loops may be fused: identical
// bounds and steps, and no loop-carried dependence through memory. The
// dependence test is conservative: for every array written by the first
// loop and read by the second, all accesses must use identical index
// offsets (element-wise producer/consumer), otherwise fusion is refused.
func CanFuse(a, b *For) error {
	if a.Step != b.Step {
		return fmt.Errorf("hir: fusion: different steps")
	}
	if !sameConstExpr(a.From, b.From) || !sameConstExpr(a.To, b.To) {
		return fmt.Errorf("hir: fusion: different bounds")
	}
	aWrites := arrayAccesses(a.Body, true)
	bReads := arrayAccesses(b.Body, false)
	for arr, wOffs := range aWrites {
		rOffs, ok := bReads[arr]
		if !ok {
			continue
		}
		for off := range rOffs {
			if !wOffs[off] {
				return fmt.Errorf("hir: fusion: %s read at offset %d but written at different offsets", arr.Name, off)
			}
		}
	}
	bWrites := arrayAccesses(b.Body, true)
	aReads := arrayAccesses(a.Body, false)
	for arr := range bWrites {
		if _, ok := aReads[arr]; ok {
			return fmt.Errorf("hir: fusion: %s written by second loop and read by first (anti-dependence)", arr.Name)
		}
	}
	return nil
}

// Fuse merges loop b into loop a (b's body appended, with b's induction
// variable rewritten to a's). CanFuse must hold.
func Fuse(a, b *For) (*For, error) {
	if err := CanFuse(a, b); err != nil {
		return nil, err
	}
	body := CloneStmts(b.Body)
	SubstVar(body, b.Var, &VarRef{Var: a.Var})
	return &For{
		Var:  a.Var,
		From: a.From,
		To:   a.To,
		Step: a.Step,
		Body: append(CloneStmts(a.Body), body...),
	}, nil
}

// FuseAdjacent fuses every fusable adjacent loop pair at the top level
// of f's body and reports how many fusions were performed.
func FuseAdjacent(f *Func) int {
	count := 0
	for {
		fusedOne := false
		for i := 0; i+1 < len(f.Body); i++ {
			la, ok1 := f.Body[i].(*For)
			lb, ok2 := f.Body[i+1].(*For)
			if !ok1 || !ok2 {
				continue
			}
			merged, err := Fuse(la, lb)
			if err != nil {
				continue
			}
			f.Body[i] = merged
			f.Body = append(f.Body[:i+1], f.Body[i+2:]...)
			fusedOne = true
			count++
			break
		}
		if !fusedOne {
			return count
		}
	}
}

func sameConstExpr(a, b Expr) bool {
	ca, ok1 := a.(*Const)
	cb, ok2 := b.(*Const)
	if ok1 && ok2 {
		return ca.Val == cb.Val
	}
	ra, ok1 := a.(*VarRef)
	rb, ok2 := b.(*VarRef)
	if ok1 && ok2 {
		return ra.Var == rb.Var
	}
	return false
}

// arrayAccesses collects, per array, the set of constant offsets used in
// (write? store : load) accesses affine in the loop variable. A nil
// inner map marks an array with a non-affine access, which always
// blocks fusion; that is encoded by an offset set containing a sentinel
// covering everything.
func arrayAccesses(body []Stmt, writes bool) map[*Array]map[int64]bool {
	res := map[*Array]map[int64]bool{}
	add := func(arr *Array, idx []Expr) {
		if res[arr] == nil {
			res[arr] = map[int64]bool{}
		}
		// Offset of the innermost dimension; non-constant terms are
		// summarized by their folded constant part.
		off := int64(0)
		if len(idx) > 0 {
			if _, c, ok := affineParts(idx[len(idx)-1]); ok {
				off = c
			}
		}
		res[arr][off] = true
	}
	var scan func([]Stmt)
	scan = func(list []Stmt) {
		for _, s := range list {
			switch s := s.(type) {
			case *Store:
				if writes {
					add(s.Arr, s.Idx)
				} else {
					VisitExprs([]Stmt{&Assign{Dst: &Var{}, Src: CloneExpr(s.Src)}}, func(e Expr) Expr {
						if ld, ok := e.(*Load); ok {
							add(ld.Arr, ld.Idx)
						}
						return e
					})
				}
			case *Assign:
				if !writes {
					VisitExprs([]Stmt{s}, func(e Expr) Expr {
						if ld, ok := e.(*Load); ok {
							add(ld.Arr, ld.Idx)
						}
						return e
					})
				}
			case *If:
				scan(s.Then)
				scan(s.Else)
			case *For:
				scan(s.Body)
			}
		}
	}
	scan(body)
	return res
}

// affineParts decomposes e as scale*iv + offset for some single loop
// variable; it returns (scale, offset, ok). Plain constants return
// (0, c, true).
func affineParts(e Expr) (int64, int64, bool) {
	switch e := e.(type) {
	case *Const:
		return 0, e.Val, true
	case *VarRef:
		return 1, 0, true
	case *Cast:
		return affineParts(e.X)
	case *Bin:
		sx, cx, okx := affineParts(e.X)
		sy, cy, oky := affineParts(e.Y)
		if !okx || !oky {
			return 0, 0, false
		}
		switch e.Op {
		case OpAdd:
			return sx + sy, cx + cy, true
		case OpSub:
			return sx - sy, cx - cy, true
		case OpMul:
			if sx == 0 {
				return cx * sy, cx * cy, true
			}
			if sy == 0 {
				return sx * cy, cx * cy, true
			}
		}
	}
	return 0, 0, false
}
