package hir

import "fmt"

// stripmine.go implements loop strip-mining, one of ROCCC's
// "FPGA-specific optimizations" (§2): a loop is split into an outer loop
// over strips and a constant-bound inner loop that can be fully unrolled
// to widen the data path to the memory bus.

// StripMine splits a constant-bound, unit-step loop into strips of the
// given width. The trip count must be a positive multiple of width. The
// returned loop iterates over strip starts; its body holds the inner
// (width-trip) loop.
func StripMine(l *For, width int64) (*For, error) {
	if width <= 1 {
		return nil, fmt.Errorf("hir: strip width must be > 1")
	}
	if l.Step != 1 {
		return nil, fmt.Errorf("hir: strip-mining requires a unit-step loop")
	}
	n, ok := TripCount(l)
	if !ok {
		return nil, fmt.Errorf("hir: cannot strip-mine %s: bounds are not constant", l.Var.Name)
	}
	if n == 0 || n%width != 0 {
		return nil, fmt.Errorf("hir: trip count %d is not a positive multiple of strip width %d", n, width)
	}
	from := l.From.(*Const).Val
	outerVar := &Var{Name: l.Var.Name + "_strip", Type: l.Var.Type, Kind: VarLoop}
	inner := &For{
		Var:  l.Var,
		From: &VarRef{Var: outerVar},
		To: &Bin{Op: OpAdd, X: &VarRef{Var: outerVar},
			Y: &Const{Val: width, Typ: l.Var.Type}, Typ: l.Var.Type},
		Step: 1,
		Body: l.Body,
	}
	return &For{
		Var:  outerVar,
		From: &Const{Val: from, Typ: l.Var.Type},
		To:   &Const{Val: from + n, Typ: l.Var.Type},
		Step: width,
		Body: []Stmt{inner},
	}, nil
}

// StripMineAndUnroll strip-mines the loop and fully unrolls the inner
// strip, producing a single loop whose body processes width elements per
// iteration — the transformation ROCCC applies to match the data path
// width to the memory bus width.
func StripMineAndUnroll(l *For, width int64) (*For, error) {
	outer, err := StripMine(l, width)
	if err != nil {
		return nil, err
	}
	inner := outer.Body[0].(*For)
	// The inner loop runs from outerVar to outerVar+width with step 1;
	// unroll it symbolically by substituting i -> strip + k.
	var body []Stmt
	for k := int64(0); k < width; k++ {
		copyK := CloneStmts(inner.Body)
		var iv Expr = &VarRef{Var: outer.Var}
		if k > 0 {
			iv = &Bin{Op: OpAdd, X: iv, Y: &Const{Val: k, Typ: outer.Var.Type}, Typ: outer.Var.Type}
		}
		SubstVar(copyK, inner.Var, iv)
		body = append(body, copyK...)
	}
	outer.Body = foldStmts(body)
	return outer, nil
}
