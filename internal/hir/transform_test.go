package hir

import (
	"math/rand"
	"testing"
	"testing/quick"

	"roccc/internal/cc"
)

// randomEnvRun executes f twice — original and transformed — on the same
// random inputs and array contents, and compares outputs and arrays.
func semanticsPreserved(t *testing.T, src, name string, transform func(*Func)) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		p1, f1 := mustBuild(t, src, name)
		p2, f2 := mustBuild(t, src, name)
		transform(f2)

		env1, env2 := NewEnv(), NewEnv()
		args := make([]int64, len(f1.Params))
		for i, prm := range f1.Params {
			args[i] = rng.Int63n(1<<uint(min(prm.Type.Bits, 16))) - 1<<uint(min(prm.Type.Bits, 16)-1)
		}
		for i, arr := range p1.Arrays {
			vals := make([]int64, arr.Len())
			for j := range vals {
				vals[j] = rng.Int63n(255) - 128
			}
			env1.BindArray(arr, vals)
			env2.BindArray(p2.Arrays[i], vals)
		}
		out1, err1 := RunProgramFunc(p1, f1, env1, args)
		out2, err2 := RunProgramFunc(p2, f2, env2, args)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: err1=%v err2=%v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		for i := range out1 {
			if out1[i] != out2[i] {
				t.Fatalf("trial %d: output %d: %d != %d", trial, i, out1[i], out2[i])
			}
		}
		for i, arr := range p1.Arrays {
			a1 := env1.Arrays[arr]
			a2 := env2.Arrays[p2.Arrays[i]]
			for j := range a1 {
				if a1[j] != a2[j] {
					t.Fatalf("trial %d: %s[%d]: %d != %d", trial, arr.Name, j, a1[j], a2[j])
				}
			}
		}
		// Globals must match too.
		for i, g := range p1.Globals {
			if env1.Vars[g] != env2.Vars[p2.Globals[i]] {
				t.Fatalf("trial %d: global %s: %d != %d", trial, g.Name,
					env1.Vars[g], env2.Vars[p2.Globals[i]])
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestFoldConstants(t *testing.T) {
	e := FoldExpr(&Bin{Op: OpAdd,
		X:   &Bin{Op: OpMul, X: &Const{Val: 3, Typ: cc.Int32}, Y: &Const{Val: 4, Typ: cc.Int32}, Typ: cc.Int32},
		Y:   &Const{Val: 5, Typ: cc.Int32},
		Typ: cc.Int32})
	c, ok := e.(*Const)
	if !ok || c.Val != 17 {
		t.Errorf("3*4+5 folded to %s", ExprString(e))
	}
}

func TestFoldIdentities(t *testing.T) {
	v := &Var{Name: "x", Type: cc.Int32}
	cases := []struct {
		e    Expr
		want string
	}{
		{&Bin{Op: OpAdd, X: &VarRef{Var: v}, Y: &Const{Val: 0, Typ: cc.Int32}, Typ: cc.Int32}, "x"},
		{&Bin{Op: OpMul, X: &VarRef{Var: v}, Y: &Const{Val: 1, Typ: cc.Int32}, Typ: cc.Int32}, "x"},
		{&Bin{Op: OpMul, X: &VarRef{Var: v}, Y: &Const{Val: 0, Typ: cc.Int32}, Typ: cc.Int32}, "0"},
		{&Bin{Op: OpShl, X: &VarRef{Var: v}, Y: &Const{Val: 0, Typ: cc.Int32}, Typ: cc.Int32}, "x"},
		{&Bin{Op: OpAnd, X: &VarRef{Var: v}, Y: &Const{Val: 0, Typ: cc.Int32}, Typ: cc.Int32}, "0"},
	}
	for _, tc := range cases {
		if got := ExprString(FoldExpr(tc.e)); got != tc.want {
			t.Errorf("folded to %s, want %s", got, tc.want)
		}
	}
}

func TestFoldDeadBranch(t *testing.T) {
	src := `void f(int a, int* o) { if (1 < 2) { *o = a; } else { *o = -a; } }`
	_, f := mustBuild(t, src, "f")
	Fold(f)
	if len(f.Body) != 1 {
		t.Fatalf("body = %d stmts", len(f.Body))
	}
	if _, ok := f.Body[0].(*Assign); !ok {
		t.Errorf("dead branch not pruned: %T", f.Body[0])
	}
}

func TestFoldPreservesSemantics(t *testing.T) {
	semanticsPreserved(t, ifElseSource, "if_else", Fold)
}

func TestUnrollFullFIR(t *testing.T) {
	_, f := mustBuild(t, firSource, "fir")
	loop := f.Body[0].(*For)
	body, err := UnrollFull(loop)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 17 {
		t.Errorf("unrolled to %d stmts, want 17", len(body))
	}
	// First iteration indexes are folded constants.
	st := body[0].(*Store)
	c, ok := st.Idx[0].(*Const)
	if !ok || c.Val != 0 {
		t.Errorf("first store index = %s", ExprString(st.Idx[0]))
	}
}

func TestUnrollPreservesSemantics(t *testing.T) {
	semanticsPreserved(t, firSource, "fir", func(f *Func) { UnrollAll(f) })
	semanticsPreserved(t, accumSource, "accum", func(f *Func) { UnrollAll(f) })
}

func TestUnrollByFactor(t *testing.T) {
	src := `int A[16]; int B[16]; void f() { int i; for (i = 0; i < 16; i++) { B[i] = A[i] * 2; } }`
	_, f := mustBuild(t, src, "f")
	loop := f.Body[0].(*For)
	u, err := UnrollBy(loop, 4)
	if err != nil {
		t.Fatal(err)
	}
	if u.Step != 4 {
		t.Errorf("step = %d, want 4", u.Step)
	}
	if len(u.Body) != 4 {
		t.Errorf("body = %d stores, want 4", len(u.Body))
	}
	semanticsPreserved(t, src, "f", func(f *Func) {
		l := f.Body[0].(*For)
		if nl, err := UnrollBy(l, 4); err == nil {
			f.Body[0] = nl
		}
	})
}

func TestUnrollByRejectsNonMultiple(t *testing.T) {
	src := `int A[10]; void f() { int i; for (i = 0; i < 10; i++) { A[i] = i; } }`
	_, f := mustBuild(t, src, "f")
	if _, err := UnrollBy(f.Body[0].(*For), 3); err == nil {
		t.Error("expected non-multiple factor rejection")
	}
}

func TestStripMine(t *testing.T) {
	src := `int A[16]; int B[16]; void f() { int i; for (i = 0; i < 16; i++) { B[i] = A[i] + 1; } }`
	_, f := mustBuild(t, src, "f")
	outer, err := StripMine(f.Body[0].(*For), 4)
	if err != nil {
		t.Fatal(err)
	}
	if outer.Step != 4 {
		t.Errorf("outer step = %d", outer.Step)
	}
	inner, ok := outer.Body[0].(*For)
	if !ok {
		t.Fatalf("inner not a loop")
	}
	if inner.Step != 1 {
		t.Errorf("inner step = %d", inner.Step)
	}
	semanticsPreserved(t, src, "f", func(f *Func) {
		if nl, err := StripMine(f.Body[0].(*For), 4); err == nil {
			f.Body[0] = nl
		}
	})
}

func TestStripMineAndUnroll(t *testing.T) {
	src := `int A[16]; int B[16]; void f() { int i; for (i = 0; i < 16; i++) { B[i] = A[i] + 1; } }`
	_, f := mustBuild(t, src, "f")
	outer, err := StripMineAndUnroll(f.Body[0].(*For), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(outer.Body) != 4 {
		t.Errorf("widened body = %d stores, want 4", len(outer.Body))
	}
	semanticsPreserved(t, src, "f", func(f *Func) {
		if nl, err := StripMineAndUnroll(f.Body[0].(*For), 4); err == nil {
			f.Body[0] = nl
		}
	})
}

func TestFuse(t *testing.T) {
	src := `
int A[8]; int B[8]; int C[8];
void f() {
	int i; int j;
	for (i = 0; i < 8; i++) { B[i] = A[i] * 2; }
	for (j = 0; j < 8; j++) { C[j] = B[j] + 1; }
}
`
	_, f := mustBuild(t, src, "f")
	if n := FuseAdjacent(f); n != 1 {
		t.Fatalf("fused %d pairs, want 1", n)
	}
	if len(f.Body) != 1 {
		t.Fatalf("body = %d stmts after fusion", len(f.Body))
	}
	semanticsPreserved(t, src, "f", func(f *Func) { FuseAdjacent(f) })
}

func TestFuseRejectsOffsetMismatch(t *testing.T) {
	src := `
int A[9]; int B[9]; int C[8];
void f() {
	int i; int j;
	for (i = 0; i < 8; i++) { B[i] = A[i] * 2; }
	for (j = 0; j < 8; j++) { C[j] = B[j+1] + 1; }
}
`
	_, f := mustBuild(t, src, "f")
	if n := FuseAdjacent(f); n != 0 {
		t.Errorf("fused %d pairs, want 0 (loop-carried dependence)", n)
	}
}

func TestFuseRejectsDifferentBounds(t *testing.T) {
	src := `
int A[10]; int B[10]; int C[8];
void f() {
	int i; int j;
	for (i = 0; i < 10; i++) { B[i] = A[i]; }
	for (j = 0; j < 8; j++) { C[j] = B[j]; }
}
`
	_, f := mustBuild(t, src, "f")
	if n := FuseAdjacent(f); n != 0 {
		t.Errorf("fused %d pairs, want 0", n)
	}
}

func TestHoistInvariants(t *testing.T) {
	src := `
int A[8]; int B[8];
void f(int k) {
	int i; int c;
	for (i = 0; i < 8; i++) {
		c = k * 3;
		B[i] = A[i] + c;
	}
}
`
	_, f := mustBuild(t, src, "f")
	if n := HoistInvariants(f); n != 1 {
		t.Fatalf("hoisted %d, want 1", n)
	}
	if _, ok := f.Body[0].(*Assign); !ok {
		t.Errorf("hoisted statement missing; body[0] is %T", f.Body[0])
	}
	semanticsPreserved(t, src, "f", func(f *Func) { HoistInvariants(f) })
}

func TestHoistRefusesLoopCarried(t *testing.T) {
	src := `
int A[8]; int B[8];
void f(int k) {
	int i; int c;
	c = 0;
	for (i = 0; i < 8; i++) {
		c = c + k;
		B[i] = A[i] + c;
	}
}
`
	_, f := mustBuild(t, src, "f")
	if n := HoistInvariants(f); n != 0 {
		t.Errorf("hoisted %d, want 0 (c is loop-carried)", n)
	}
}

func TestCSERemovesDuplicates(t *testing.T) {
	src := `void f(int a, int b, int* o1, int* o2) {
		*o1 = (a + b) * (a + b);
		*o2 = (a + b) * 3;
	}`
	_, f := mustBuild(t, src, "f")
	if n := CSE(f); n < 2 {
		t.Errorf("CSE replaced %d, want >= 2 (a+b reused)", n)
	}
	CopyProp(f)
	DCE(f)
	adds := 0
	VisitExprs(f.Body, func(e Expr) Expr {
		if b, ok := e.(*Bin); ok && b.Op == OpAdd {
			adds++
		}
		return e
	})
	if adds != 1 {
		t.Errorf("adds after CSE = %d, want 1", adds)
	}
	semanticsPreserved(t, src, "f", func(f *Func) { CSE(f); CopyProp(f); DCE(f) })
}

func TestCSEPreservesIfElse(t *testing.T) {
	semanticsPreserved(t, ifElseSource, "if_else", func(f *Func) { CSE(f); CopyProp(f); DCE(f) })
}

func TestDCERemovesDeadCode(t *testing.T) {
	src := `void f(int a, int* o) { int dead; dead = a * 17; *o = a + 1; }`
	_, f := mustBuild(t, src, "f")
	DCE(f)
	if len(f.Body) != 1 {
		t.Errorf("body = %d stmts after DCE, want 1", len(f.Body))
	}
	semanticsPreserved(t, src, "f", DCE)
}

func TestLinearizeThreeAddress(t *testing.T) {
	src := `void f(int a, int b, int* o) { *o = (a + b) * (a - b) + 7; }`
	_, f := mustBuild(t, src, "f")
	Linearize(f)
	for _, s := range f.Body {
		a, ok := s.(*Assign)
		if !ok {
			continue
		}
		// RHS must have depth <= 1: operands are leaves.
		if bin, ok := a.Src.(*Bin); ok {
			if !isLeaf(bin.X) || !isLeaf(bin.Y) {
				t.Errorf("non-linearized: %s", StmtString(a))
			}
		}
	}
	semanticsPreserved(t, src, "f", Linearize)
}

func isLeaf(e Expr) bool {
	switch e.(type) {
	case *Const, *VarRef, *LoadPrev:
		return true
	}
	return false
}

func TestPipelineOfPassesQuick(t *testing.T) {
	// Property: the full optimization pipeline preserves if_else
	// semantics on random inputs.
	p, f := mustBuild(t, ifElseSource, "if_else")
	Fold(f)
	CSE(f)
	CopyProp(f)
	DCE(f)
	pr, fr := mustBuild(t, ifElseSource, "if_else")
	check := func(x1, x2 int16) bool {
		e1, e2 := NewEnv(), NewEnv()
		o1, err1 := RunProgramFunc(p, f, e1, []int64{int64(x1), int64(x2)})
		o2, err2 := RunProgramFunc(pr, fr, e2, []int64{int64(x1), int64(x2)})
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return o1[0] == o2[0] && o1[1] == o2[1]
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
