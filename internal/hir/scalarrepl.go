package hir

import (
	"fmt"
	"sort"
	"sync"

	"roccc/internal/cc"
)

// scalarrepl.go implements the paper's scalar replacement transformation
// (§4.1, Fig. 3): memory accesses in the innermost loop body are
// isolated from the computation. Array reads affine in the loop
// induction variables become fresh input scalars (the sliding window fed
// by the smart buffer), array writes become output scalars, and the
// remaining pure-scalar region is exported to the data path generator.

// Affine is a decomposed index expression: Scale*Var + Offset.
type Affine struct {
	Var    *Var // nil when the index is constant
	Scale  int64
	Offset int64
}

// DecomposeAffine decomposes e into scale*iv + offset where iv is one of
// the given loop variables (or none, for constants).
func DecomposeAffine(e Expr, loopVars map[*Var]bool) (Affine, bool) {
	switch e := e.(type) {
	case *Const:
		return Affine{Offset: e.Val}, true
	case *VarRef:
		if loopVars[e.Var] {
			return Affine{Var: e.Var, Scale: 1}, true
		}
		return Affine{}, false
	case *Cast:
		return DecomposeAffine(e.X, loopVars)
	case *Un:
		if e.Op != OpNeg {
			return Affine{}, false
		}
		a, ok := DecomposeAffine(e.X, loopVars)
		if !ok {
			return Affine{}, false
		}
		return Affine{Var: a.Var, Scale: -a.Scale, Offset: -a.Offset}, true
	case *Bin:
		ax, okx := DecomposeAffine(e.X, loopVars)
		ay, oky := DecomposeAffine(e.Y, loopVars)
		if !okx || !oky {
			return Affine{}, false
		}
		switch e.Op {
		case OpAdd:
			return combineAffine(ax, ay, 1)
		case OpSub:
			return combineAffine(ax, ay, -1)
		case OpMul:
			if ax.Var == nil {
				return Affine{Var: ay.Var, Scale: ax.Offset * ay.Scale, Offset: ax.Offset * ay.Offset}, true
			}
			if ay.Var == nil {
				return Affine{Var: ax.Var, Scale: ay.Offset * ax.Scale, Offset: ay.Offset * ax.Offset}, true
			}
		case OpShl:
			if ay.Var == nil && ay.Offset >= 0 && ay.Offset < 31 {
				f := int64(1) << uint(ay.Offset)
				return Affine{Var: ax.Var, Scale: ax.Scale * f, Offset: ax.Offset * f}, true
			}
		}
		return Affine{}, false
	default:
		return Affine{}, false
	}
}

func combineAffine(a, b Affine, sign int64) (Affine, bool) {
	if a.Var != nil && b.Var != nil && a.Var != b.Var {
		return Affine{}, false
	}
	v := a.Var
	if v == nil {
		v = b.Var
	}
	return Affine{Var: v, Scale: a.Scale + sign*b.Scale, Offset: a.Offset + sign*b.Offset}, true
}

// WindowElem is one tap of a sliding window: the constant offset vector
// (one entry per indexed dimension) and the data-path scalar carrying it.
type WindowElem struct {
	Offsets []int64
	Elem    *Var
}

// Window is the per-array read access pattern extracted by scalar
// replacement. The smart buffer generator consumes it.
type Window struct {
	Arr   *Array
	Dims  []WindowDim  // per-dimension induction variable and scale
	Elems []WindowElem // sorted by offset vector
}

// WindowDim describes how one array dimension is indexed.
type WindowDim struct {
	Var   *Var
	Scale int64
}

// Span returns, for dimension d, the lowest offset and the window extent
// (max-min+1) over that dimension.
func (w *Window) Span(d int) (min, extent int64) {
	min = w.Elems[0].Offsets[d]
	max := min
	for _, e := range w.Elems[1:] {
		if e.Offsets[d] < min {
			min = e.Offsets[d]
		}
		if e.Offsets[d] > max {
			max = e.Offsets[d]
		}
	}
	return min, max - min + 1
}

// WriteAccess is the per-array write pattern: each written offset vector
// and the data-path scalar that produces it.
type WriteAccess struct {
	Arr   *Array
	Dims  []WindowDim
	Elems []WindowElem
}

// FeedbackVar is a loop-carried scalar detected by the front-end
// data-flow analysis (§4.2.1, Fig. 4).
type FeedbackVar struct {
	Var  *Var  // the architectural state (latch)
	Out  *Var  // data-path output carrying the new value each iteration
	Init int64 // latch reset value
}

// LoopNest is the canonicalized counted-loop nest (outermost first).
type LoopNest struct {
	Vars []*Var
	From []int64
	To   []int64
	Step []int64
}

// Depth returns the nest depth.
func (n *LoopNest) Depth() int { return len(n.Vars) }

// Trips returns the trip count of level d.
func (n *LoopNest) Trips(d int) int64 {
	if n.Step[d] <= 0 {
		return 0
	}
	if n.To[d] <= n.From[d] {
		return 0
	}
	return (n.To[d] - n.From[d] + n.Step[d] - 1) / n.Step[d]
}

// TotalIterations returns the product of all trip counts.
func (n *LoopNest) TotalIterations() int64 {
	total := int64(1)
	for d := range n.Vars {
		total *= n.Trips(d)
	}
	return total
}

// Kernel is the result of the front end: the pure scalar data-path
// function plus everything the controller/buffer generators need.
type Kernel struct {
	Name string
	// DP is the exported data-path function (Fig. 3(c) / Fig. 4(c)):
	// straight-line or if/else scalar code, no loops, no memory.
	DP *Func
	// Nest is the surrounding loop nest; empty for pure combinational
	// kernels (no loops in the source).
	Nest LoopNest
	// Reads are per-array sliding windows feeding DP's inputs.
	Reads []*Window
	// Writes are per-array store patterns fed by DP's outputs.
	Writes []*WriteAccess
	// IVInputs are DP inputs that carry loop induction variable values
	// (when the computation uses the index itself).
	IVInputs map[*Var]*Var // loop var -> DP param
	// Feedback lists loop-carried scalars with their latches.
	Feedback []*FeedbackVar
	// ScalarParams are kernel-level scalar inputs passed through to DP.
	ScalarParams []*Var
	// Roms referenced by the data path.
	Roms []*Rom

	// PlanCache holds opaque compiled artifacts keyed by downstream
	// packages (e.g. netlist caches its compiled system plan here, keyed
	// by datapath and bus width). Living on the kernel — rather than in a
	// global map — the cache is reclaimed exactly when the kernel is,
	// so sweep-style reuse skips recompilation without pinning every
	// kernel ever compiled.
	PlanCache sync.Map
}

// ExtractKernel runs scalar replacement and feedback detection on f and
// builds the Kernel. The function body must be (a) optional feedback
// initializers, (b) one perfect loop nest, or (c) loop-free scalar code.
func ExtractKernel(p *Program, f *Func) (*Kernel, error) {
	k := &Kernel{
		Name:     f.Name,
		IVInputs: map[*Var]*Var{},
	}
	dp := &Func{Name: f.Name + "_dp"}
	k.DP = dp

	// Collect ROMs referenced anywhere in the function.
	romSet := map[*Rom]bool{}
	VisitExprs(f.Body, func(e Expr) Expr {
		if lr, ok := e.(*LutRef); ok {
			romSet[lr.Rom] = true
		}
		return e
	})
	for _, r := range p.Roms {
		if romSet[r] {
			k.Roms = append(k.Roms, r)
		}
	}

	// Split the body: leading scalar assignments (feedback initializers),
	// a single loop nest, trailing statements (currently rejected). A
	// body with no top-level loop is a pure combinational kernel.
	var pre []Stmt
	var nest []*For
	body := f.Body
	hasTopLoop := false
	for _, s := range body {
		if _, ok := s.(*For); ok {
			hasTopLoop = true
			break
		}
	}
	i := 0
	if hasTopLoop {
		for ; i < len(body); i++ {
			if a, ok := body[i].(*Assign); ok {
				pre = append(pre, a)
				continue
			}
			break
		}
		l, ok := body[i].(*For)
		if !ok {
			return nil, fmt.Errorf("hir: kernel %s: unsupported statement %T before the loop nest", f.Name, body[i])
		}
		if i+1 != len(body) {
			return nil, fmt.Errorf("hir: kernel %s: statements after the loop nest are not supported", f.Name)
		}
		// Walk into the perfect nest.
		for {
			nest = append(nest, l)
			if len(l.Body) == 1 {
				if inner, ok := l.Body[0].(*For); ok {
					l = inner
					continue
				}
			}
			if HasLoops(l.Body) {
				return nil, fmt.Errorf("hir: kernel %s: imperfect loop nests are not supported (unroll inner loops first)", f.Name)
			}
			break
		}
	}

	if len(nest) == 0 {
		// Pure combinational kernel: the body is already the data path.
		if HasLoops(body) {
			return nil, fmt.Errorf("hir: kernel %s: loops must be at top level or fully unrolled", f.Name)
		}
		dp.Params = append(dp.Params, f.Params...)
		k.ScalarParams = f.Params
		dp.Outs = append(dp.Outs, f.Outs...)
		dp.Body = CloneStmts(body)
		if err := detectFeedback(k, nil); err != nil {
			return nil, err
		}
		return k, fixupDP(k)
	}

	// Canonicalize nest bounds to constants.
	loopVars := map[*Var]bool{}
	for _, l := range nest {
		from, ok1 := l.From.(*Const)
		to, ok2 := l.To.(*Const)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("hir: kernel %s: loop bounds must be compile-time constants", f.Name)
		}
		k.Nest.Vars = append(k.Nest.Vars, l.Var)
		k.Nest.From = append(k.Nest.From, from.Val)
		k.Nest.To = append(k.Nest.To, to.Val)
		k.Nest.Step = append(k.Nest.Step, l.Step)
		loopVars[l.Var] = true
	}

	inner := nest[len(nest)-1]
	dpBody := CloneStmts(inner.Body)

	// Replace array reads with window input scalars.
	readWins := map[*Array]*Window{}
	var replaceErr error
	VisitExprs(dpBody, func(e Expr) Expr {
		ld, ok := e.(*Load)
		if !ok || replaceErr != nil {
			return e
		}
		elem, err := windowElemFor(k, readWins, ld, loopVars, dp)
		if err != nil {
			replaceErr = err
			return e
		}
		return &VarRef{Var: elem}
	})
	if replaceErr != nil {
		return nil, replaceErr
	}

	// Replace array writes with output scalars.
	writeAccs := map[*Array]*WriteAccess{}
	dpBody, replaceErr = replaceStores(k, writeAccs, dpBody, loopVars, dp)
	if replaceErr != nil {
		return nil, replaceErr
	}

	// Induction variables used directly in the computation become DP
	// inputs fed by the address generator.
	used := UsedVars(dpBody)
	for _, iv := range k.Nest.Vars {
		if used[iv] {
			in := &Var{Name: iv.Name + "_iv", Type: iv.Type, Kind: VarParam}
			SubstVar(dpBody, iv, &VarRef{Var: in})
			dp.Params = append(dp.Params, in)
			k.IVInputs[iv] = in
		}
	}

	// Kernel-level scalar parameters referenced in the body pass through.
	for _, prm := range f.Params {
		if used[prm] {
			dp.Params = append(dp.Params, prm)
			k.ScalarParams = append(k.ScalarParams, prm)
		}
	}

	dp.Body = dpBody
	if err := detectFeedback(k, pre); err != nil {
		return nil, err
	}
	// Deterministic ordering for reads/writes (by array name).
	sortWindows(k)
	return k, fixupDP(k)
}

// windowElemFor finds or creates the window input scalar for a load.
func windowElemFor(k *Kernel, wins map[*Array]*Window, ld *Load, loopVars map[*Var]bool, dp *Func) (*Var, error) {
	offs := make([]int64, len(ld.Idx))
	dims := make([]WindowDim, len(ld.Idx))
	for d, ix := range ld.Idx {
		a, ok := DecomposeAffine(FoldExpr(CloneExpr(ix)), loopVars)
		if !ok {
			return nil, fmt.Errorf("hir: non-affine index %q on array %s", ExprString(ix), ld.Arr.Name)
		}
		offs[d] = a.Offset
		dims[d] = WindowDim{Var: a.Var, Scale: a.Scale}
	}
	w := wins[ld.Arr]
	if w == nil {
		w = &Window{Arr: ld.Arr, Dims: dims}
		wins[ld.Arr] = w
		k.Reads = append(k.Reads, w)
	} else if err := checkDims(w.Dims, dims, ld.Arr.Name); err != nil {
		return nil, err
	}
	for _, e := range w.Elems {
		if offsEqual(e.Offsets, offs) {
			return e.Elem, nil
		}
	}
	elem := &Var{
		Name: fmt.Sprintf("%s%d", ld.Arr.Name, len(w.Elems)),
		Type: ld.Arr.Elem,
		Kind: VarParam,
	}
	w.Elems = append(w.Elems, WindowElem{Offsets: offs, Elem: elem})
	dp.Params = append(dp.Params, elem)
	return elem, nil
}

func replaceStores(k *Kernel, accs map[*Array]*WriteAccess, list []Stmt, loopVars map[*Var]bool, dp *Func) ([]Stmt, error) {
	var out []Stmt
	for _, s := range list {
		switch s := s.(type) {
		case *Store:
			offs := make([]int64, len(s.Idx))
			dims := make([]WindowDim, len(s.Idx))
			for d, ix := range s.Idx {
				a, ok := DecomposeAffine(FoldExpr(CloneExpr(ix)), loopVars)
				if !ok {
					return nil, fmt.Errorf("hir: non-affine store index %q on array %s", ExprString(ix), s.Arr.Name)
				}
				offs[d] = a.Offset
				dims[d] = WindowDim{Var: a.Var, Scale: a.Scale}
			}
			acc := accs[s.Arr]
			if acc == nil {
				acc = &WriteAccess{Arr: s.Arr, Dims: dims}
				accs[s.Arr] = acc
				k.Writes = append(k.Writes, acc)
			} else if err := checkDims(acc.Dims, dims, s.Arr.Name); err != nil {
				return nil, err
			}
			var outVar *Var
			for _, e := range acc.Elems {
				if offsEqual(e.Offsets, offs) {
					outVar = e.Elem
					break
				}
			}
			if outVar == nil {
				outVar = &Var{
					Name: fmt.Sprintf("Tmp%d", totalWriteElems(k)),
					Type: s.Arr.Elem,
					Kind: VarOut,
				}
				acc.Elems = append(acc.Elems, WindowElem{Offsets: offs, Elem: outVar})
				dp.Outs = append(dp.Outs, outVar)
			}
			out = append(out, &Assign{Dst: outVar, Src: s.Src})
		case *If:
			thenStmts, err := replaceStores(k, accs, s.Then, loopVars, dp)
			if err != nil {
				return nil, err
			}
			elseStmts, err := replaceStores(k, accs, s.Else, loopVars, dp)
			if err != nil {
				return nil, err
			}
			out = append(out, &If{Cond: s.Cond, Then: thenStmts, Else: elseStmts})
		default:
			out = append(out, s)
		}
	}
	return out, nil
}

func totalWriteElems(k *Kernel) int {
	n := 0
	for _, w := range k.Writes {
		n += len(w.Elems)
	}
	return n
}

func checkDims(a, b []WindowDim, name string) error {
	if len(a) != len(b) {
		return fmt.Errorf("hir: inconsistent dimensionality on array %s", name)
	}
	for d := range a {
		if a[d].Var != b[d].Var || a[d].Scale != b[d].Scale {
			return fmt.Errorf("hir: accesses to %s mix induction variables or strides", name)
		}
	}
	return nil
}

func offsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// detectFeedback finds loop-carried scalars in the DP body: variables
// read before (or without) being written in the body, and written in the
// body. It rewrites reads of the previous value to LoadPrev, the write
// to StoreNext, and exposes the new value as a DP output (Fig. 4(c)).
// pre holds initializer assignments preceding the loop; constant
// initializers become latch reset values.
func detectFeedback(k *Kernel, pre []Stmt) error {
	dp := k.DP
	inputs := map[*Var]bool{}
	for _, p := range dp.Params {
		inputs[p] = true
	}
	outputs := map[*Var]bool{}
	for _, o := range dp.Outs {
		outputs[o] = true
	}
	// Candidates: globals or locals that are (a) possibly read before
	// written in a straight-line scan, and (b) written somewhere.
	assigned := AssignedVars(dp.Body)
	candidates := readBeforeWrite(dp.Body)
	var fbVars []*Var
	for v := range candidates {
		if inputs[v] || outputs[v] || v.Kind == VarLoop {
			continue
		}
		if assigned[v] {
			fbVars = append(fbVars, v)
		}
	}
	sort.Slice(fbVars, func(i, j int) bool { return fbVars[i].Name < fbVars[j].Name })

	inits := map[*Var]int64{}
	for _, s := range pre {
		if a, ok := s.(*Assign); ok {
			if c, ok2 := a.Src.(*Const); ok2 {
				inits[a.Dst] = c.Val
			}
		}
	}

	for _, v := range fbVars {
		init := v.Init
		if iv, ok := inits[v]; ok {
			init = iv
		}
		newVal := &Var{Name: v.Name + "_next", Type: v.Type, Kind: VarLocal}
		if err := rewriteFeedback(dp, v, newVal); err != nil {
			return err
		}
		outVar := &Var{Name: v.Name + "_out", Type: v.Type, Kind: VarOut}
		dp.Body = append(dp.Body, &Assign{Dst: outVar, Src: &VarRef{Var: newVal}})
		dp.Outs = append(dp.Outs, outVar)
		v.Kind = VarFeedback
		v.Init = init
		k.Feedback = append(k.Feedback, &FeedbackVar{Var: v, Out: outVar, Init: init})
	}
	return nil
}

// readBeforeWrite returns variables whose first access along some path
// through the statement list is a read.
func readBeforeWrite(list []Stmt) map[*Var]bool {
	reads := map[*Var]bool{}
	noteReads := func(e Expr, written map[*Var]bool) {
		visitExpr(CloneExpr(e), func(x Expr) Expr {
			if ref, ok := x.(*VarRef); ok && !written[ref.Var] {
				reads[ref.Var] = true
			}
			if lp, ok := x.(*LoadPrev); ok && !written[lp.Var] {
				reads[lp.Var] = true
			}
			return x
		})
	}
	var scan func([]Stmt, map[*Var]bool)
	scan = func(ss []Stmt, written map[*Var]bool) {
		for _, s := range ss {
			switch s := s.(type) {
			case *Assign:
				noteReads(s.Src, written)
				written[s.Dst] = true
			case *StoreNext:
				noteReads(s.Src, written)
				written[s.Var] = true
			case *Store:
				for _, ix := range s.Idx {
					noteReads(ix, written)
				}
				noteReads(s.Src, written)
			case *If:
				noteReads(s.Cond, written)
				thenW := copyVarSet(written)
				elseW := copyVarSet(written)
				scan(s.Then, thenW)
				scan(s.Else, elseW)
				// Written after the If only if written on both paths.
				for v := range thenW {
					if elseW[v] {
						written[v] = true
					}
				}
			case *For:
				scan(s.Body, written)
			}
		}
	}
	scan(list, map[*Var]bool{})
	return reads
}

func copyVarSet(m map[*Var]bool) map[*Var]bool {
	cp := make(map[*Var]bool, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// rewriteFeedback renames feedback variable v through the data-path body
// (an SSA-style renaming restricted to v): reads of the incoming value
// become LoadPrev(v); every write creates a fresh local carrying the new
// value; conditional writes are merged at the join by assigning a merge
// local on both paths (the back end turns that into a mux node). At the
// end, a single StoreNext(v, <final value>) latches the iteration's
// result, and newVal is assigned that final value.
func rewriteFeedback(dp *Func, v, newVal *Var) error {
	fresh := 0
	newTemp := func() *Var {
		fresh++
		return &Var{Name: fmt.Sprintf("%s_v%d", v.Name, fresh), Type: v.Type, Kind: VarLocal}
	}
	// curr is the expression currently holding v's value.
	subst := func(e Expr, curr Expr) Expr {
		return visitExpr(e, func(x Expr) Expr {
			if ref, ok := x.(*VarRef); ok && ref.Var == v {
				return CloneExpr(curr)
			}
			return x
		})
	}
	var rewrite func(ss []Stmt, curr Expr) ([]Stmt, Expr)
	rewrite = func(ss []Stmt, curr Expr) ([]Stmt, Expr) {
		var out []Stmt
		for _, s := range ss {
			switch s := s.(type) {
			case *Assign:
				s.Src = subst(s.Src, curr)
				if s.Dst == v {
					t := newTemp()
					out = append(out, &Assign{Dst: t, Src: s.Src})
					curr = &VarRef{Var: t}
					continue
				}
				out = append(out, s)
			case *StoreNext:
				s.Src = subst(s.Src, curr)
				out = append(out, s)
			case *Store:
				for i := range s.Idx {
					s.Idx[i] = subst(s.Idx[i], curr)
				}
				s.Src = subst(s.Src, curr)
				out = append(out, s)
			case *If:
				s.Cond = subst(s.Cond, curr)
				thenStmts, thenCurr := rewrite(s.Then, curr)
				elseStmts, elseCurr := rewrite(s.Else, curr)
				if !sameValueExpr(thenCurr, elseCurr) {
					// The two paths carry different values: merge with a
					// local assigned on both paths (a phi/mux for the
					// back end).
					m := newTemp()
					thenStmts = append(thenStmts, &Assign{Dst: m, Src: thenCurr})
					elseStmts = append(elseStmts, &Assign{Dst: m, Src: elseCurr})
					curr = &VarRef{Var: m}
				} else {
					curr = thenCurr
				}
				s.Then, s.Else = thenStmts, elseStmts
				out = append(out, s)
			default:
				out = append(out, s)
			}
		}
		return out, curr
	}
	body, finalVal := rewrite(dp.Body, &LoadPrev{Var: v})
	body = append(body,
		&Assign{Dst: newVal, Src: finalVal},
		&StoreNext{Var: v, Src: &VarRef{Var: newVal}})
	dp.Body = body
	return nil
}

// sameValueExpr reports whether two renamed-value expressions are
// trivially the same value (same local or both the incoming LoadPrev).
func sameValueExpr(a, b Expr) bool {
	if ra, ok := a.(*VarRef); ok {
		if rb, ok2 := b.(*VarRef); ok2 {
			return ra.Var == rb.Var
		}
		return false
	}
	if la, ok := a.(*LoadPrev); ok {
		if lb, ok2 := b.(*LoadPrev); ok2 {
			return la.Var == lb.Var
		}
	}
	return false
}

func sortWindows(k *Kernel) {
	sort.Slice(k.Reads, func(i, j int) bool { return k.Reads[i].Arr.Name < k.Reads[j].Arr.Name })
	sort.Slice(k.Writes, func(i, j int) bool { return k.Writes[i].Arr.Name < k.Writes[j].Arr.Name })
	for _, w := range k.Reads {
		sortElems(w.Elems)
	}
	for _, w := range k.Writes {
		sortElems(w.Elems)
	}
}

func sortElems(elems []WindowElem) {
	sort.Slice(elems, func(i, j int) bool {
		a, b := elems[i].Offsets, elems[j].Offsets
		for d := range a {
			if a[d] != b[d] {
				return a[d] < b[d]
			}
		}
		return false
	})
}

// fixupDP validates the exported data-path function: no loops, no
// residual memory accesses, and runs a final cleanup.
func fixupDP(k *Kernel) error {
	if HasLoops(k.DP.Body) {
		return fmt.Errorf("hir: kernel %s: data-path function still contains loops", k.Name)
	}
	bad := false
	VisitExprs(k.DP.Body, func(e Expr) Expr {
		if _, ok := e.(*Load); ok {
			bad = true
		}
		return e
	})
	for _, s := range k.DP.Body {
		if _, ok := s.(*Store); ok {
			bad = true
		}
	}
	if bad {
		return fmt.Errorf("hir: kernel %s: residual memory access in data path (non-affine index?)", k.Name)
	}
	Fold(k.DP)
	DCE(k.DP)
	return nil
}

// DataPathC renders the exported data-path function as C, mirroring the
// paper's Fig. 3(c)/Fig. 4(c) presentation.
func (k *Kernel) DataPathC() string {
	return FuncString(k.DP)
}

// Type alias re-export so callers get the element type conveniently.
type IntType = cc.IntType
