package hir

import (
	"fmt"
)

// Env is the mutable state an HIR evaluation runs against: scalar values
// per variable and flattened storage per array. It is the software
// reference used to show transformations preserve semantics.
type Env struct {
	Vars   map[*Var]int64
	Arrays map[*Array][]int64
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{Vars: map[*Var]int64{}, Arrays: map[*Array][]int64{}}
}

// BindArray installs storage for arr (copied).
func (env *Env) BindArray(arr *Array, vals []int64) {
	cp := make([]int64, arr.Len())
	copy(cp, vals)
	env.Arrays[arr] = cp
}

// RunFunc evaluates f's body in env. Globals and feedback variables keep
// their current env values (initialize with v.Init for a cold start);
// parameter values must be pre-set in env.Vars.
func RunFunc(f *Func, env *Env) error {
	return runStmts(f.Body, env)
}

// RunProgramFunc initializes globals to their declared init values, binds
// f's parameters to args and runs it, returning output values in
// f.Outs order.
func RunProgramFunc(p *Program, f *Func, env *Env, args []int64) ([]int64, error) {
	if len(args) != len(f.Params) {
		return nil, fmt.Errorf("hir: %s takes %d args, got %d", f.Name, len(f.Params), len(args))
	}
	for _, g := range p.Globals {
		if _, ok := env.Vars[g]; !ok {
			env.Vars[g] = g.Init
		}
	}
	for _, arr := range p.Arrays {
		if _, ok := env.Arrays[arr]; !ok {
			env.Arrays[arr] = make([]int64, arr.Len())
		}
	}
	for i, prm := range f.Params {
		env.Vars[prm] = prm.Type.Wrap(args[i])
	}
	if err := RunFunc(f, env); err != nil {
		return nil, err
	}
	outs := make([]int64, len(f.Outs))
	for i, o := range f.Outs {
		outs[i] = env.Vars[o]
	}
	return outs, nil
}

func runStmts(list []Stmt, env *Env) error {
	for _, s := range list {
		if err := runStmt(s, env); err != nil {
			return err
		}
	}
	return nil
}

func runStmt(s Stmt, env *Env) error {
	switch s := s.(type) {
	case *Assign:
		v, err := Eval(s.Src, env)
		if err != nil {
			return err
		}
		env.Vars[s.Dst] = s.Dst.Type.Wrap(v)
		return nil
	case *StoreNext:
		// In software the feedback store is an ordinary assignment.
		v, err := Eval(s.Src, env)
		if err != nil {
			return err
		}
		env.Vars[s.Var] = s.Var.Type.Wrap(v)
		return nil
	case *Store:
		v, err := Eval(s.Src, env)
		if err != nil {
			return err
		}
		arr, off, err := arrayOffset(s.Arr, s.Idx, env)
		if err != nil {
			return err
		}
		arr[off] = s.Arr.Elem.Wrap(v)
		return nil
	case *If:
		c, err := Eval(s.Cond, env)
		if err != nil {
			return err
		}
		if c != 0 {
			return runStmts(s.Then, env)
		}
		return runStmts(s.Else, env)
	case *For:
		from, err := Eval(s.From, env)
		if err != nil {
			return err
		}
		for i := from; ; i += s.Step {
			env.Vars[s.Var] = s.Var.Type.Wrap(i)
			to, err := Eval(s.To, env)
			if err != nil {
				return err
			}
			if i >= to {
				return nil
			}
			if err := runStmts(s.Body, env); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("hir: eval: unexpected statement %T", s)
	}
}

func arrayOffset(a *Array, idx []Expr, env *Env) ([]int64, int, error) {
	arr, ok := env.Arrays[a]
	if !ok {
		arr = make([]int64, a.Len())
		env.Arrays[a] = arr
	}
	off := int64(0)
	for d, ix := range idx {
		v, err := Eval(ix, env)
		if err != nil {
			return nil, 0, err
		}
		if d == 0 && len(idx) == 2 {
			off = v * int64(a.Dims[1])
		} else {
			off += v
		}
	}
	if off < 0 || off >= int64(len(arr)) {
		return nil, 0, fmt.Errorf("hir: eval: index %d out of range for %s", off, a)
	}
	return arr, int(off), nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Eval evaluates an expression in env.
func Eval(e Expr, env *Env) (int64, error) {
	switch e := e.(type) {
	case *Const:
		return e.Val, nil
	case *VarRef:
		return env.Vars[e.Var], nil
	case *LoadPrev:
		return env.Vars[e.Var], nil
	case *Load:
		arr, off, err := arrayOffset(e.Arr, e.Idx, env)
		if err != nil {
			return 0, err
		}
		return arr[off], nil
	case *LutRef:
		ix, err := Eval(e.Idx, env)
		if err != nil {
			return 0, err
		}
		if ix < 0 || ix >= int64(e.Rom.Size) {
			return 0, fmt.Errorf("hir: eval: ROM index %d out of range for %s", ix, e.Rom.Name)
		}
		return e.Rom.Content[ix], nil
	case *Un:
		x, err := Eval(e.X, env)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case OpNeg:
			return e.Typ.Wrap(-x), nil
		case OpNot:
			return e.Typ.Wrap(^x), nil
		case OpLNot:
			return b2i(x == 0), nil
		}
		return 0, fmt.Errorf("hir: eval: unary %s", e.Op)
	case *Bin:
		x, err := Eval(e.X, env)
		if err != nil {
			return 0, err
		}
		y, err := Eval(e.Y, env)
		if err != nil {
			return 0, err
		}
		return evalBin(e, x, y)
	case *Sel:
		c, err := Eval(e.Cond, env)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			v, err := Eval(e.Then, env)
			if err != nil {
				return 0, err
			}
			return e.Typ.Wrap(v), nil
		}
		v, err := Eval(e.Else, env)
		if err != nil {
			return 0, err
		}
		return e.Typ.Wrap(v), nil
	case *Cast:
		v, err := Eval(e.X, env)
		if err != nil {
			return 0, err
		}
		return e.Typ.Wrap(v), nil
	default:
		return 0, fmt.Errorf("hir: eval: unexpected expression %T", e)
	}
}

func evalBin(e *Bin, x, y int64) (int64, error) {
	t := e.Typ
	switch e.Op {
	case OpAdd:
		return t.Wrap(x + y), nil
	case OpSub:
		return t.Wrap(x - y), nil
	case OpMul:
		return t.Wrap(x * y), nil
	case OpDiv:
		if y == 0 {
			return 0, fmt.Errorf("hir: eval: division by zero")
		}
		return t.Wrap(x / y), nil
	case OpRem:
		if y == 0 {
			return 0, fmt.Errorf("hir: eval: modulo by zero")
		}
		return t.Wrap(x % y), nil
	case OpAnd:
		return t.Wrap(x & y), nil
	case OpOr:
		return t.Wrap(x | y), nil
	case OpXor:
		return t.Wrap(x ^ y), nil
	case OpShl:
		return t.Wrap(x << uint(y&63)), nil
	case OpShr:
		xt := e.X.Type()
		if !xt.Signed {
			ux := uint64(x) & (uint64(1)<<uint(xt.Bits) - 1)
			return t.Wrap(int64(ux >> uint(y&63))), nil
		}
		return t.Wrap(x >> uint(y&63)), nil
	case OpLt:
		return b2i(x < y), nil
	case OpLe:
		return b2i(x <= y), nil
	case OpGt:
		return b2i(x > y), nil
	case OpGe:
		return b2i(x >= y), nil
	case OpEq:
		return b2i(x == y), nil
	case OpNe:
		return b2i(x != y), nil
	case OpLAnd:
		return b2i(x != 0 && y != 0), nil
	case OpLOr:
		return b2i(x != 0 || y != 0), nil
	}
	return 0, fmt.Errorf("hir: eval: binary %s", e.Op)
}
