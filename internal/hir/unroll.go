package hir

import "fmt"

// unroll.go implements loop unrolling. "Full loop unrolling converts a
// for-loop with constant bounds into a non-iterative block of code and
// therefore eliminates the loop controller" (§2); partial unrolling
// widens the data path by replicating the body.

// TripCount returns the constant trip count of a loop, or false when the
// bounds are not compile-time constants.
func TripCount(l *For) (int64, bool) {
	from, ok1 := l.From.(*Const)
	to, ok2 := l.To.(*Const)
	if !ok1 || !ok2 || l.Step <= 0 {
		return 0, false
	}
	if to.Val <= from.Val {
		return 0, true
	}
	return (to.Val - from.Val + l.Step - 1) / l.Step, true
}

// UnrollFull replaces a constant-bound loop with its fully-unrolled body
// and returns the resulting statement list.
func UnrollFull(l *For) ([]Stmt, error) {
	n, ok := TripCount(l)
	if !ok {
		return nil, fmt.Errorf("hir: cannot fully unroll %s: bounds are not constant", l.Var.Name)
	}
	const maxTrip = 4096
	if n > maxTrip {
		return nil, fmt.Errorf("hir: refusing to fully unroll %d iterations (max %d)", n, maxTrip)
	}
	from := l.From.(*Const).Val
	var out []Stmt
	for it := int64(0); it < n; it++ {
		iv := from + it*l.Step
		body := CloneStmts(l.Body)
		SubstVar(body, l.Var, &Const{Val: iv, Typ: l.Var.Type})
		out = append(out, body...)
	}
	return foldStmts(out), nil
}

// UnrollBy replicates the loop body factor times per iteration,
// multiplying the step. The trip count must be a constant multiple of
// factor (strip-mining handles the general case).
func UnrollBy(l *For, factor int64) (*For, error) {
	if factor <= 1 {
		return l, nil
	}
	n, ok := TripCount(l)
	if !ok {
		return nil, fmt.Errorf("hir: cannot unroll %s: bounds are not constant", l.Var.Name)
	}
	if n%factor != 0 {
		return nil, fmt.Errorf("hir: trip count %d is not a multiple of unroll factor %d", n, factor)
	}
	var body []Stmt
	for k := int64(0); k < factor; k++ {
		copyK := CloneStmts(l.Body)
		if k > 0 {
			// i is replaced by i + k*step in the k-th replica.
			SubstVar(copyK, l.Var, &Bin{
				Op:  OpAdd,
				X:   &VarRef{Var: l.Var},
				Y:   &Const{Val: k * l.Step, Typ: l.Var.Type},
				Typ: l.Var.Type,
			})
		}
		body = append(body, copyK...)
	}
	return &For{Var: l.Var, From: l.From, To: l.To, Step: l.Step * factor, Body: foldStmts(body)}, nil
}

// UnrollAll fully unrolls every constant-bound loop in the function,
// innermost first. Loops whose bounds are unknown are left in place.
func UnrollAll(f *Func) {
	f.Body = unrollAllStmts(f.Body)
	Fold(f)
}

func unrollAllStmts(list []Stmt) []Stmt {
	var out []Stmt
	for _, s := range list {
		switch s := s.(type) {
		case *For:
			s.Body = unrollAllStmts(s.Body)
			if expanded, err := UnrollFull(s); err == nil {
				out = append(out, expanded...)
				continue
			}
			out = append(out, s)
		case *If:
			s.Then = unrollAllStmts(s.Then)
			s.Else = unrollAllStmts(s.Else)
			out = append(out, s)
		default:
			out = append(out, s)
		}
	}
	return out
}
