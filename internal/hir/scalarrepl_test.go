package hir

import (
	"strings"
	"testing"
)

func mustKernel(t *testing.T, src, name string) (*Program, *Kernel) {
	t.Helper()
	p, f, err := BuildFunc(src, name)
	if err != nil {
		t.Fatal(err)
	}
	k, err := ExtractKernel(p, f)
	if err != nil {
		t.Fatal(err)
	}
	return p, k
}

// TestScalarReplacementFIR reproduces Fig. 3: the 5-tap FIR loop becomes
// a 5-input, 1-output pure data-path function plus a window access
// pattern.
func TestScalarReplacementFIR(t *testing.T) {
	_, k := mustKernel(t, firSource, "fir")
	if len(k.Reads) != 1 {
		t.Fatalf("reads = %d, want 1", len(k.Reads))
	}
	w := k.Reads[0]
	if w.Arr.Name != "A" || len(w.Elems) != 5 {
		t.Fatalf("window = %s with %d elements, want A with 5", w.Arr.Name, len(w.Elems))
	}
	lo, extent := w.Span(0)
	if lo != 0 || extent != 5 {
		t.Errorf("window span = (%d,%d), want (0,5)", lo, extent)
	}
	if len(k.Writes) != 1 || len(k.Writes[0].Elems) != 1 {
		t.Fatalf("writes = %+v", k.Writes)
	}
	if len(k.DP.Params) != 5 {
		t.Errorf("dp inputs = %d, want 5 (A0..A4)", len(k.DP.Params))
	}
	if k.DP.Params[0].Name != "A0" || k.DP.Params[4].Name != "A4" {
		t.Errorf("dp input names = %v..%v", k.DP.Params[0].Name, k.DP.Params[4].Name)
	}
	if len(k.DP.Outs) != 1 || !strings.HasPrefix(k.DP.Outs[0].Name, "Tmp") {
		t.Errorf("dp outputs = %+v", k.DP.Outs)
	}
	if len(k.Feedback) != 0 {
		t.Errorf("FIR has no feedback, found %d", len(k.Feedback))
	}
	if k.Nest.Depth() != 1 || k.Nest.Trips(0) != 17 {
		t.Errorf("nest = %+v", k.Nest)
	}
	// The exported function must be memory- and loop-free: evaluate it.
	env := NewEnv()
	in := []int64{1, 2, 3, 4, 5}
	for i, p := range k.DP.Params {
		env.Vars[p] = in[i]
	}
	if err := RunFunc(k.DP, env); err != nil {
		t.Fatal(err)
	}
	want := 3*1 + 5*2 + 7*3 + 9*4 - 5
	if got := env.Vars[k.DP.Outs[0]]; got != int64(want) {
		t.Errorf("dp(1..5) = %d, want %d", got, want)
	}
}

// TestScalarReplacementAccumulator reproduces Fig. 4: sum is detected as
// feedback, reads become LoadPrev, the write becomes StoreNext, and the
// new value is exported.
func TestScalarReplacementAccumulator(t *testing.T) {
	_, k := mustKernel(t, accumSource, "accum")
	if len(k.Feedback) != 1 {
		t.Fatalf("feedback vars = %d, want 1", len(k.Feedback))
	}
	fb := k.Feedback[0]
	if fb.Var.Name != "sum" || fb.Init != 0 {
		t.Errorf("feedback = %s init %d", fb.Var.Name, fb.Init)
	}
	// The DP body must contain LoadPrev and StoreNext on sum.
	text := FuncString(k.DP)
	if !strings.Contains(text, "ROCCC_load_prev(sum)") {
		t.Errorf("missing LoadPrev:\n%s", text)
	}
	if !strings.Contains(text, "ROCCC_store2next(sum") {
		t.Errorf("missing StoreNext:\n%s", text)
	}
	// Simulate three iterations: 10, 20, 30 must accumulate.
	env := NewEnv()
	env.Vars[fb.Var] = fb.Init
	total := int64(0)
	for _, v := range []int64{10, 20, 30} {
		env.Vars[k.DP.Params[0]] = v
		if err := RunFunc(k.DP, env); err != nil {
			t.Fatal(err)
		}
		total += v
		if got := env.Vars[fb.Out]; got != total {
			t.Errorf("after feeding %d: out = %d, want %d", v, got, total)
		}
	}
}

// TestScalarReplacementCombinational: a loop-free kernel (Fig. 5) passes
// through unchanged.
func TestScalarReplacementCombinational(t *testing.T) {
	_, k := mustKernel(t, ifElseSource, "if_else")
	if k.Nest.Depth() != 0 {
		t.Errorf("nest depth = %d, want 0", k.Nest.Depth())
	}
	if len(k.Reads)+len(k.Writes) != 0 {
		t.Errorf("combinational kernel has windows: %d reads %d writes", len(k.Reads), len(k.Writes))
	}
	if len(k.DP.Params) != 2 || len(k.DP.Outs) != 2 {
		t.Errorf("dp ports: %d in %d out", len(k.DP.Params), len(k.DP.Outs))
	}
}

// TestScalarReplacementConditionalFeedback covers the mul_acc pattern:
// feedback updated under a condition (new-data flag).
func TestScalarReplacementConditionalFeedback(t *testing.T) {
	src := `
int acc;
void mul_acc(int12 a, int12 b, uint1 nd) {
	int i;
	acc = 0;
	for (i = 0; i < 16; i++) {
		if (nd) {
			acc = acc + a * b;
		}
	}
}
`
	_, k := mustKernel(t, src, "mul_acc")
	if len(k.Feedback) != 1 {
		t.Fatalf("feedback = %d, want 1 (acc)", len(k.Feedback))
	}
	// nd=1: accumulates; nd=0: holds.
	env := NewEnv()
	fb := k.Feedback[0]
	env.Vars[fb.Var] = 0
	set := func(name string, v int64) {
		for _, p := range k.DP.Params {
			if p.Name == name {
				env.Vars[p] = v
				return
			}
		}
		t.Fatalf("no dp param %q", name)
	}
	set("a", 3)
	set("b", 4)
	set("nd", 1)
	if err := RunFunc(k.DP, env); err != nil {
		t.Fatal(err)
	}
	if env.Vars[fb.Out] != 12 {
		t.Errorf("acc after nd=1: %d, want 12", env.Vars[fb.Out])
	}
	set("nd", 0)
	if err := RunFunc(k.DP, env); err != nil {
		t.Fatal(err)
	}
	if env.Vars[fb.Out] != 12 {
		t.Errorf("acc after nd=0: %d, want 12 (hold)", env.Vars[fb.Out])
	}
}

func TestScalarReplacement2DWindow(t *testing.T) {
	src := `
int img[16][16];
int out[14][16];
void vsum() {
	int i; int j;
	for (i = 0; i < 14; i++)
		for (j = 0; j < 16; j++)
			out[i][j] = img[i][j] + img[i+1][j] + img[i+2][j];
}
`
	_, k := mustKernel(t, src, "vsum")
	if k.Nest.Depth() != 2 {
		t.Fatalf("nest depth = %d", k.Nest.Depth())
	}
	w := k.Reads[0]
	if len(w.Elems) != 3 {
		t.Fatalf("window elems = %d, want 3", len(w.Elems))
	}
	lo0, ext0 := w.Span(0)
	lo1, ext1 := w.Span(1)
	if lo0 != 0 || ext0 != 3 || lo1 != 0 || ext1 != 1 {
		t.Errorf("spans = (%d,%d) (%d,%d), want (0,3) (0,1)", lo0, ext0, lo1, ext1)
	}
}

func TestScalarReplacementStrideWindows(t *testing.T) {
	// DCT-like: stride-8 windows (loop step 8), eight reads and eight
	// writes per iteration.
	src := `
int X[64]; int Y[64];
void blk() {
	int i;
	for (i = 0; i < 64; i = i + 8) {
		Y[i]   = X[i] + X[i+7];
		Y[i+1] = X[i+1] + X[i+6];
		Y[i+2] = X[i+2] + X[i+5];
		Y[i+3] = X[i+3] + X[i+4];
		Y[i+4] = X[i+3] - X[i+4];
		Y[i+5] = X[i+2] - X[i+5];
		Y[i+6] = X[i+1] - X[i+6];
		Y[i+7] = X[i] - X[i+7];
	}
}
`
	_, k := mustKernel(t, src, "blk")
	if len(k.Reads[0].Elems) != 8 {
		t.Errorf("read window = %d elems, want 8", len(k.Reads[0].Elems))
	}
	if len(k.Writes[0].Elems) != 8 {
		t.Errorf("write elems = %d, want 8", len(k.Writes[0].Elems))
	}
	if k.Nest.Step[0] != 8 {
		t.Errorf("step = %d", k.Nest.Step[0])
	}
}

func TestScalarReplacementIVUse(t *testing.T) {
	src := `
int A[8]; int B[8];
void f() {
	int i;
	for (i = 0; i < 8; i++) { B[i] = A[i] + i; }
}
`
	_, k := mustKernel(t, src, "f")
	if len(k.IVInputs) != 1 {
		t.Fatalf("IV inputs = %d, want 1", len(k.IVInputs))
	}
}

func TestScalarReplacementRejectsNonAffine(t *testing.T) {
	src := `
int A[64]; int B[8];
void f() {
	int i;
	for (i = 0; i < 8; i++) { B[i] = A[i*i]; }
}
`
	p, f, err := BuildFunc(src, "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractKernel(p, f); err == nil {
		t.Error("expected non-affine rejection")
	}
}

func TestScalarReplacementSharedTaps(t *testing.T) {
	// The same element referenced twice maps to one window tap.
	src := `
int A[9]; int B[8];
void f() {
	int i;
	for (i = 0; i < 8; i++) { B[i] = A[i]*A[i] + A[i+1]; }
}
`
	_, k := mustKernel(t, src, "f")
	if len(k.Reads[0].Elems) != 2 {
		t.Errorf("window elems = %d, want 2 (A[i] shared)", len(k.Reads[0].Elems))
	}
}

func TestDecomposeAffine(t *testing.T) {
	iv := &Var{Name: "i", Type: IntType{Bits: 32, Signed: true}, Kind: VarLoop}
	lv := map[*Var]bool{iv: true}
	mk := func(e Expr) Affine {
		a, ok := DecomposeAffine(e, lv)
		if !ok {
			t.Fatalf("not affine: %s", ExprString(e))
		}
		return a
	}
	t32 := IntType{Bits: 32, Signed: true}
	ref := func() Expr { return &VarRef{Var: iv} }
	// i + 3
	a := mk(&Bin{Op: OpAdd, X: ref(), Y: &Const{Val: 3, Typ: t32}, Typ: t32})
	if a.Scale != 1 || a.Offset != 3 {
		t.Errorf("i+3 = %+v", a)
	}
	// 2*i - 1
	a = mk(&Bin{Op: OpSub,
		X: &Bin{Op: OpMul, X: &Const{Val: 2, Typ: t32}, Y: ref(), Typ: t32},
		Y: &Const{Val: 1, Typ: t32}, Typ: t32})
	if a.Scale != 2 || a.Offset != -1 {
		t.Errorf("2i-1 = %+v", a)
	}
	// i << 2
	a = mk(&Bin{Op: OpShl, X: ref(), Y: &Const{Val: 2, Typ: t32}, Typ: t32})
	if a.Scale != 4 {
		t.Errorf("i<<2 = %+v", a)
	}
	// i*i is not affine
	if _, ok := DecomposeAffine(&Bin{Op: OpMul, X: ref(), Y: ref(), Typ: t32}, lv); ok {
		t.Error("i*i reported affine")
	}
}
