package hir

// walk.go holds the traversal and substitution helpers shared by the
// transformation passes.

// VisitExprs calls fn on every expression in the statement list,
// bottom-up, replacing each expression with fn's result.
func VisitExprs(list []Stmt, fn func(Expr) Expr) {
	for _, s := range list {
		visitStmtExprs(s, fn)
	}
}

func visitStmtExprs(s Stmt, fn func(Expr) Expr) {
	switch s := s.(type) {
	case *Assign:
		s.Src = visitExpr(s.Src, fn)
	case *StoreNext:
		s.Src = visitExpr(s.Src, fn)
	case *Store:
		for i := range s.Idx {
			s.Idx[i] = visitExpr(s.Idx[i], fn)
		}
		s.Src = visitExpr(s.Src, fn)
	case *If:
		s.Cond = visitExpr(s.Cond, fn)
		VisitExprs(s.Then, fn)
		VisitExprs(s.Else, fn)
	case *For:
		s.From = visitExpr(s.From, fn)
		s.To = visitExpr(s.To, fn)
		VisitExprs(s.Body, fn)
	}
}

func visitExpr(e Expr, fn func(Expr) Expr) Expr {
	switch e := e.(type) {
	case *Load:
		for i := range e.Idx {
			e.Idx[i] = visitExpr(e.Idx[i], fn)
		}
	case *LutRef:
		e.Idx = visitExpr(e.Idx, fn)
	case *Un:
		e.X = visitExpr(e.X, fn)
	case *Bin:
		e.X = visitExpr(e.X, fn)
		e.Y = visitExpr(e.Y, fn)
	case *Sel:
		e.Cond = visitExpr(e.Cond, fn)
		e.Then = visitExpr(e.Then, fn)
		e.Else = visitExpr(e.Else, fn)
	case *Cast:
		e.X = visitExpr(e.X, fn)
	}
	return fn(e)
}

// SubstVar replaces every read of v in list with (a clone of) repl.
func SubstVar(list []Stmt, v *Var, repl Expr) {
	VisitExprs(list, func(e Expr) Expr {
		if ref, ok := e.(*VarRef); ok && ref.Var == v {
			return CloneExpr(repl)
		}
		return e
	})
}

// AssignedVars returns the set of scalar variables written anywhere in
// the statement list (including loop induction variables and feedback
// targets).
func AssignedVars(list []Stmt) map[*Var]bool {
	set := map[*Var]bool{}
	var scan func([]Stmt)
	scan = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *Assign:
				set[s.Dst] = true
			case *StoreNext:
				set[s.Var] = true
			case *If:
				scan(s.Then)
				scan(s.Else)
			case *For:
				set[s.Var] = true
				scan(s.Body)
			}
		}
	}
	scan(list)
	return set
}

// UsedVars returns the set of scalar variables read anywhere in the
// statement list.
func UsedVars(list []Stmt) map[*Var]bool {
	set := map[*Var]bool{}
	VisitExprs(list, func(e Expr) Expr {
		switch e := e.(type) {
		case *VarRef:
			set[e.Var] = true
		case *LoadPrev:
			set[e.Var] = true
		}
		return e
	})
	return set
}

// exprUses reports whether expression e reads any variable in set.
func exprUses(e Expr, set map[*Var]bool) bool {
	found := false
	visitExpr(CloneExpr(e), func(x Expr) Expr {
		switch x := x.(type) {
		case *VarRef:
			if set[x.Var] {
				found = true
			}
		case *LoadPrev:
			if set[x.Var] {
				found = true
			}
		}
		return x
	})
	return found
}

// exprReadsMemory reports whether e contains an array load.
func exprReadsMemory(e Expr) bool {
	found := false
	visitExpr(CloneExpr(e), func(x Expr) Expr {
		if _, ok := x.(*Load); ok {
			found = true
		}
		return x
	})
	return found
}

// HasLoops reports whether the statement list contains a For.
func HasLoops(list []Stmt) bool {
	for _, s := range list {
		switch s := s.(type) {
		case *For:
			return true
		case *If:
			if HasLoops(s.Then) || HasLoops(s.Else) {
				return true
			}
		}
	}
	return false
}

// CountOps counts arithmetic/logic operations, a rough software-side
// complexity metric used by area estimation and tests.
func CountOps(list []Stmt) int {
	n := 0
	VisitExprs(list, func(e Expr) Expr {
		switch e.(type) {
		case *Un, *Bin, *Sel:
			n++
		}
		return e
	})
	return n
}
