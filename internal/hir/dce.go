package hir

// dce.go implements dead code elimination: assignments whose targets are
// never observed (by outputs, memory stores, feedback stores or later
// reads) are deleted.

// DCE removes dead scalar assignments from f, iterating to a fixed
// point. Stores, StoreNexts, loops and conditionals with live bodies are
// always kept; globals and outputs are always observable.
func DCE(f *Func) {
	for {
		live := map[*Var]bool{}
		for _, o := range f.Outs {
			live[o] = true
		}
		// Seed with everything observable.
		markLive(f.Body, live)
		changed := false
		f.Body = sweep(f.Body, live, &changed)
		if !changed {
			return
		}
	}
}

// markLive computes an over-approximation of live variables: any var
// read anywhere, plus globals and feedback targets (their final values
// are architectural state).
func markLive(list []Stmt, live map[*Var]bool) {
	for v := range UsedVars(list) {
		live[v] = true
	}
	var scan func([]Stmt)
	scan = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *Assign:
				if s.Dst.Kind == VarGlobal || s.Dst.Kind == VarFeedback || s.Dst.Kind == VarOut {
					live[s.Dst] = true
				}
			case *StoreNext:
				live[s.Var] = true
			case *If:
				scan(s.Then)
				scan(s.Else)
			case *For:
				live[s.Var] = true
				scan(s.Body)
			}
		}
	}
	scan(list)
}

func sweep(list []Stmt, live map[*Var]bool, changed *bool) []Stmt {
	var out []Stmt
	for _, s := range list {
		switch s := s.(type) {
		case *Assign:
			if !live[s.Dst] && !exprReadsMemory(s.Src) {
				*changed = true
				continue
			}
			out = append(out, s)
		case *If:
			s.Then = sweep(s.Then, live, changed)
			s.Else = sweep(s.Else, live, changed)
			if len(s.Then) == 0 && len(s.Else) == 0 {
				*changed = true
				continue
			}
			out = append(out, s)
		case *For:
			s.Body = sweep(s.Body, live, changed)
			if len(s.Body) == 0 {
				*changed = true
				continue
			}
			out = append(out, s)
		default:
			out = append(out, s)
		}
	}
	return out
}
