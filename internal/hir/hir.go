// Package hir is the high-level intermediate representation of the ROCCC
// reproduction — the stage the DATE'05 paper implements on SUIF IRs.
// It preserves loop statements and array accesses so that loop-level
// optimizations (unrolling, strip-mining, fusion), scalar replacement and
// feedback detection can run before the kernel is handed to the
// Machine-SUIF-like back end (package vm).
package hir

import (
	"fmt"
	"strings"

	"roccc/internal/cc"
)

// Op is an HIR operator.
type Op int

// HIR operators. Comparison and logical operators produce 1-bit values.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpLAnd
	OpLOr
	OpNeg  // unary minus
	OpNot  // bitwise complement
	OpLNot // logical not
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpRem: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpEq: "==", OpNe: "!=",
	OpLAnd: "&&", OpLOr: "||", OpNeg: "-", OpNot: "~", OpLNot: "!",
}

// String returns the C spelling of the operator.
func (o Op) String() string { return opNames[o] }

// IsComparison reports whether the operator yields a 1-bit result.
func (o Op) IsComparison() bool {
	switch o {
	case OpLt, OpLe, OpGt, OpGe, OpEq, OpNe, OpLAnd, OpLOr, OpLNot:
		return true
	}
	return false
}

// VarKind classifies HIR variables.
type VarKind int

// Variable kinds.
const (
	VarLocal    VarKind = iota // function-local scalar
	VarParam                   // scalar input parameter
	VarOut                     // scalar output
	VarLoop                    // loop induction variable
	VarGlobal                  // global scalar (becomes feedback state)
	VarFeedback                // detected loop-carried scalar
)

func (k VarKind) String() string {
	switch k {
	case VarLocal:
		return "local"
	case VarParam:
		return "param"
	case VarOut:
		return "out"
	case VarLoop:
		return "loop"
	case VarGlobal:
		return "global"
	case VarFeedback:
		return "feedback"
	}
	return "var"
}

// Var is an HIR scalar variable.
type Var struct {
	Name string
	Type cc.IntType
	Kind VarKind
	// Init is the reset value for globals and feedback variables.
	Init int64
}

// String returns the variable name.
func (v *Var) String() string { return v.Name }

// Array is a memory-resident data array (mapped to BRAM in the paper's
// execution model, Fig. 2).
type Array struct {
	Name string
	Elem cc.IntType
	Dims []int
}

// Len returns the flattened element count.
func (a *Array) Len() int {
	n := a.Dims[0]
	if len(a.Dims) == 2 {
		n *= a.Dims[1]
	}
	return n
}

// String returns the array's C-style declaration.
func (a *Array) String() string {
	var b strings.Builder
	b.WriteString(a.Name)
	for _, d := range a.Dims {
		fmt.Fprintf(&b, "[%d]", d)
	}
	return b.String()
}

// Rom is a read-only lookup table (a const array in the source). The
// compiler instantiates it as a ROM IP with a plain-text init file, as
// §4.2.4 of the paper describes.
type Rom struct {
	Name    string
	Elem    cc.IntType
	Size    int
	Content []int64
	// Half marks a pre-existing half-wave sine/cosine IP component: the
	// stored table covers a quarter wave and the rest is mirrored, which
	// is why the Xilinx cos core is smaller than an arbitrary ROM with
	// the same ports (§5).
	Half bool
}

// String returns the ROM name.
func (r *Rom) String() string { return r.Name }

// Program is a whole compiled translation unit in HIR form.
type Program struct {
	Arrays  []*Array
	Roms    []*Rom
	Globals []*Var
	Funcs   []*Func
}

// Func returns the function named name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Array returns the array named name, or nil.
func (p *Program) Array(name string) *Array {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Func is an HIR function: scalar parameters, scalar outputs and a body.
// All user function calls have been inlined during construction.
type Func struct {
	Name   string
	Params []*Var
	Outs   []*Var
	Body   []Stmt

	nextTemp int
}

// NewTemp creates a fresh local variable with the given type.
func (f *Func) NewTemp(t cc.IntType) *Var {
	f.nextTemp++
	return &Var{Name: fmt.Sprintf("t%d", f.nextTemp), Type: t, Kind: VarLocal}
}

// --- Statements ---

// Stmt is an HIR statement.
type Stmt interface {
	stmtNode()
}

// Assign writes a scalar variable.
type Assign struct {
	Dst *Var
	Src Expr
}

// Store writes an array element.
type Store struct {
	Arr *Array
	Idx []Expr
	Src Expr
}

// StoreNext is the feedback write annotation (ROCCC_store2next /
// the SNX opcode of §4.2.1).
type StoreNext struct {
	Var *Var
	Src Expr
}

// If is a two-way conditional.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// For is a canonical counted loop: Var runs From (inclusive) to To
// (exclusive) in steps of Step.
type For struct {
	Var  *Var
	From Expr
	To   Expr
	Step int64
	Body []Stmt
}

func (*Assign) stmtNode()    {}
func (*Store) stmtNode()     {}
func (*StoreNext) stmtNode() {}
func (*If) stmtNode()        {}
func (*For) stmtNode()       {}

// --- Expressions ---

// Expr is an HIR expression.
type Expr interface {
	exprNode()
	// Type returns the expression's result type.
	Type() cc.IntType
}

// Const is an integer constant.
type Const struct {
	Val int64
	Typ cc.IntType
}

// VarRef reads a scalar variable.
type VarRef struct {
	Var *Var
}

// Load reads an array element.
type Load struct {
	Arr *Array
	Idx []Expr
}

// LutRef reads a ROM (lookup table); compiled to the LUT opcode.
type LutRef struct {
	Rom *Rom
	Idx Expr
}

// LoadPrev is the feedback read annotation (ROCCC_load_prev / LPR).
type LoadPrev struct {
	Var *Var
}

// Un is a unary operation.
type Un struct {
	Op  Op
	X   Expr
	Typ cc.IntType
}

// Bin is a binary operation.
type Bin struct {
	Op   Op
	X, Y Expr
	Typ  cc.IntType
}

// Sel is the ternary select c ? t : f.
type Sel struct {
	Cond, Then, Else Expr
	Typ              cc.IntType
}

// Cast converts a value to a different width/signedness.
type Cast struct {
	X   Expr
	Typ cc.IntType
}

func (*Const) exprNode()    {}
func (*VarRef) exprNode()   {}
func (*Load) exprNode()     {}
func (*LutRef) exprNode()   {}
func (*LoadPrev) exprNode() {}
func (*Un) exprNode()       {}
func (*Bin) exprNode()      {}
func (*Sel) exprNode()      {}
func (*Cast) exprNode()     {}

// Type implementations.
func (e *Const) Type() cc.IntType    { return e.Typ }
func (e *VarRef) Type() cc.IntType   { return e.Var.Type }
func (e *Load) Type() cc.IntType     { return e.Arr.Elem }
func (e *LutRef) Type() cc.IntType   { return e.Rom.Elem }
func (e *LoadPrev) Type() cc.IntType { return e.Var.Type }
func (e *Un) Type() cc.IntType       { return e.Typ }
func (e *Bin) Type() cc.IntType      { return e.Typ }
func (e *Sel) Type() cc.IntType      { return e.Typ }
func (e *Cast) Type() cc.IntType     { return e.Typ }

// String renders an expression as C-like text.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *Const:
		return fmt.Sprintf("%d", e.Val)
	case *VarRef:
		return e.Var.Name
	case *Load:
		var b strings.Builder
		b.WriteString(e.Arr.Name)
		for _, ix := range e.Idx {
			fmt.Fprintf(&b, "[%s]", ExprString(ix))
		}
		return b.String()
	case *LutRef:
		return fmt.Sprintf("%s[%s]", e.Rom.Name, ExprString(e.Idx))
	case *LoadPrev:
		return fmt.Sprintf("ROCCC_load_prev(%s)", e.Var.Name)
	case *Un:
		return fmt.Sprintf("%s%s", e.Op, ExprString(e.X))
	case *Bin:
		return fmt.Sprintf("(%s %s %s)", ExprString(e.X), e.Op, ExprString(e.Y))
	case *Sel:
		return fmt.Sprintf("(%s ? %s : %s)", ExprString(e.Cond), ExprString(e.Then), ExprString(e.Else))
	case *Cast:
		return fmt.Sprintf("(%s)%s", e.Typ, ExprString(e.X))
	default:
		return fmt.Sprintf("<?%T>", e)
	}
}

// StmtString renders a statement (single line for simple statements).
func StmtString(s Stmt) string {
	var b strings.Builder
	writeStmt(&b, s, 0)
	return strings.TrimRight(b.String(), "\n")
}

// FuncString renders a whole function body, used by golden tests.
func FuncString(f *Func) string {
	var b strings.Builder
	params := make([]string, 0, len(f.Params)+len(f.Outs))
	for _, p := range f.Params {
		params = append(params, fmt.Sprintf("%s %s", p.Type, p.Name))
	}
	for _, o := range f.Outs {
		params = append(params, fmt.Sprintf("%s* %s", o.Type, o.Name))
	}
	fmt.Fprintf(&b, "void %s(%s) {\n", f.Name, strings.Join(params, ", "))
	for _, s := range f.Body {
		writeStmt(&b, s, 1)
	}
	b.WriteString("}")
	return b.String()
}

func writeStmt(b *strings.Builder, s Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	switch s := s.(type) {
	case *Assign:
		fmt.Fprintf(b, "%s%s = %s;\n", ind, s.Dst.Name, ExprString(s.Src))
	case *Store:
		var ix strings.Builder
		for _, e := range s.Idx {
			fmt.Fprintf(&ix, "[%s]", ExprString(e))
		}
		fmt.Fprintf(b, "%s%s%s = %s;\n", ind, s.Arr.Name, ix.String(), ExprString(s.Src))
	case *StoreNext:
		fmt.Fprintf(b, "%sROCCC_store2next(%s, %s);\n", ind, s.Var.Name, ExprString(s.Src))
	case *If:
		fmt.Fprintf(b, "%sif (%s) {\n", ind, ExprString(s.Cond))
		for _, t := range s.Then {
			writeStmt(b, t, depth+1)
		}
		if len(s.Else) > 0 {
			fmt.Fprintf(b, "%s} else {\n", ind)
			for _, t := range s.Else {
				writeStmt(b, t, depth+1)
			}
		}
		fmt.Fprintf(b, "%s}\n", ind)
	case *For:
		fmt.Fprintf(b, "%sfor (%s = %s; %s < %s; %s += %d) {\n",
			ind, s.Var.Name, ExprString(s.From), s.Var.Name, ExprString(s.To), s.Var.Name, s.Step)
		for _, t := range s.Body {
			writeStmt(b, t, depth+1)
		}
		fmt.Fprintf(b, "%s}\n", ind)
	default:
		fmt.Fprintf(b, "%s<?stmt %T>\n", ind, s)
	}
}

// CloneExpr deep-copies an expression tree (Vars/Arrays/Roms are shared).
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case *Const:
		cp := *e
		return &cp
	case *VarRef:
		cp := *e
		return &cp
	case *Load:
		idx := make([]Expr, len(e.Idx))
		for i, ix := range e.Idx {
			idx[i] = CloneExpr(ix)
		}
		return &Load{Arr: e.Arr, Idx: idx}
	case *LutRef:
		return &LutRef{Rom: e.Rom, Idx: CloneExpr(e.Idx)}
	case *LoadPrev:
		cp := *e
		return &cp
	case *Un:
		return &Un{Op: e.Op, X: CloneExpr(e.X), Typ: e.Typ}
	case *Bin:
		return &Bin{Op: e.Op, X: CloneExpr(e.X), Y: CloneExpr(e.Y), Typ: e.Typ}
	case *Sel:
		return &Sel{Cond: CloneExpr(e.Cond), Then: CloneExpr(e.Then), Else: CloneExpr(e.Else), Typ: e.Typ}
	case *Cast:
		return &Cast{X: CloneExpr(e.X), Typ: e.Typ}
	default:
		panic(fmt.Sprintf("hir: CloneExpr: unexpected %T", e))
	}
}

// CloneStmt deep-copies a statement tree.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Assign:
		return &Assign{Dst: s.Dst, Src: CloneExpr(s.Src)}
	case *Store:
		idx := make([]Expr, len(s.Idx))
		for i, ix := range s.Idx {
			idx[i] = CloneExpr(ix)
		}
		return &Store{Arr: s.Arr, Idx: idx, Src: CloneExpr(s.Src)}
	case *StoreNext:
		return &StoreNext{Var: s.Var, Src: CloneExpr(s.Src)}
	case *If:
		return &If{Cond: CloneExpr(s.Cond), Then: CloneStmts(s.Then), Else: CloneStmts(s.Else)}
	case *For:
		return &For{Var: s.Var, From: CloneExpr(s.From), To: CloneExpr(s.To), Step: s.Step, Body: CloneStmts(s.Body)}
	default:
		panic(fmt.Sprintf("hir: CloneStmt: unexpected %T", s))
	}
}

// CloneStmts deep-copies a statement list.
func CloneStmts(list []Stmt) []Stmt {
	out := make([]Stmt, len(list))
	for i, s := range list {
		out[i] = CloneStmt(s)
	}
	return out
}
