package hir

// linearize.go rewrites expression trees into three-address form: every
// intermediate operation gets its own compiler temporary. The back end
// lowers instruction-per-operation anyway; doing it at HIR level lets
// local value numbering (cse.go) find repeated subexpressions, which is
// how the DCT kernel "explores the symmetry within the cosine
// coefficients" (§5).

// Linearize flattens all expressions in f into three-address form.
func Linearize(f *Func) {
	f.Body = linStmts(f, f.Body)
}

func linStmts(f *Func, list []Stmt) []Stmt {
	var out []Stmt
	emit := func(s Stmt) { out = append(out, s) }
	for _, s := range list {
		switch s := s.(type) {
		case *Assign:
			src := linExpr(f, s.Src, emit, true)
			emit(&Assign{Dst: s.Dst, Src: src})
		case *StoreNext:
			src := linExpr(f, s.Src, emit, false)
			emit(&StoreNext{Var: s.Var, Src: src})
		case *Store:
			idx := make([]Expr, len(s.Idx))
			for i, ix := range s.Idx {
				idx[i] = linExpr(f, ix, emit, false)
			}
			src := linExpr(f, s.Src, emit, false)
			emit(&Store{Arr: s.Arr, Idx: idx, Src: src})
		case *If:
			cond := linExpr(f, s.Cond, emit, false)
			emit(&If{Cond: cond, Then: linStmts(f, s.Then), Else: linStmts(f, s.Else)})
		case *For:
			// Loop bounds stay as-is (they feed the controller, not the
			// data path); the body is linearized.
			emit(&For{Var: s.Var, From: s.From, To: s.To, Step: s.Step, Body: linStmts(f, s.Body)})
		default:
			emit(s)
		}
	}
	return out
}

// linExpr linearizes e, emitting temp assignments via emit. When top is
// true the (single-op) root expression is returned as-is so the caller's
// assignment keeps one operation; otherwise a leaf (VarRef/Const) is
// returned.
func linExpr(f *Func, e Expr, emit func(Stmt), top bool) Expr {
	materialize := func(x Expr) Expr {
		t := f.NewTemp(x.Type())
		emit(&Assign{Dst: t, Src: x})
		return &VarRef{Var: t}
	}
	var lower func(e Expr, root bool) Expr
	lower = func(e Expr, root bool) Expr {
		switch e := e.(type) {
		case *Const, *VarRef, *LoadPrev:
			return e
		case *Load:
			idx := make([]Expr, len(e.Idx))
			for i, ix := range e.Idx {
				idx[i] = lower(ix, false)
			}
			n := &Load{Arr: e.Arr, Idx: idx}
			if root {
				return n
			}
			return materialize(n)
		case *LutRef:
			n := &LutRef{Rom: e.Rom, Idx: lower(e.Idx, false)}
			if root {
				return n
			}
			return materialize(n)
		case *Un:
			n := &Un{Op: e.Op, X: lower(e.X, false), Typ: e.Typ}
			if root {
				return n
			}
			return materialize(n)
		case *Bin:
			n := &Bin{Op: e.Op, X: lower(e.X, false), Y: lower(e.Y, false), Typ: e.Typ}
			if root {
				return n
			}
			return materialize(n)
		case *Sel:
			n := &Sel{Cond: lower(e.Cond, false), Then: lower(e.Then, false),
				Else: lower(e.Else, false), Typ: e.Typ}
			if root {
				return n
			}
			return materialize(n)
		case *Cast:
			n := &Cast{X: lower(e.X, false), Typ: e.Typ}
			if root {
				return n
			}
			return materialize(n)
		default:
			return e
		}
	}
	return lower(e, top)
}
