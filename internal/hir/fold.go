package hir

import "roccc/internal/cc"

// fold.go implements constant folding and algebraic simplification, one
// of ROCCC's "conventional optimizations" (§2).

// Fold folds constants and simplifies algebra across the whole function,
// then prunes statically-dead branches and empty loops.
func Fold(f *Func) {
	f.Body = foldStmts(f.Body)
}

func foldStmts(list []Stmt) []Stmt {
	var out []Stmt
	for _, s := range list {
		switch s := s.(type) {
		case *Assign:
			s.Src = FoldExpr(s.Src)
			out = append(out, s)
		case *StoreNext:
			s.Src = FoldExpr(s.Src)
			out = append(out, s)
		case *Store:
			for i := range s.Idx {
				s.Idx[i] = FoldExpr(s.Idx[i])
			}
			s.Src = FoldExpr(s.Src)
			out = append(out, s)
		case *If:
			s.Cond = FoldExpr(s.Cond)
			s.Then = foldStmts(s.Then)
			s.Else = foldStmts(s.Else)
			if c, ok := s.Cond.(*Const); ok {
				if c.Val != 0 {
					out = append(out, s.Then...)
				} else {
					out = append(out, s.Else...)
				}
				continue
			}
			if len(s.Then) == 0 && len(s.Else) == 0 {
				continue
			}
			out = append(out, s)
		case *For:
			s.From = FoldExpr(s.From)
			s.To = FoldExpr(s.To)
			s.Body = foldStmts(s.Body)
			if from, ok := s.From.(*Const); ok {
				if to, ok2 := s.To.(*Const); ok2 && from.Val >= to.Val {
					continue // zero-trip loop
				}
			}
			if len(s.Body) == 0 {
				continue
			}
			out = append(out, s)
		default:
			out = append(out, s)
		}
	}
	return out
}

// FoldExpr folds the expression tree bottom-up.
func FoldExpr(e Expr) Expr {
	switch e := e.(type) {
	case *Un:
		e.X = FoldExpr(e.X)
		if x, ok := e.X.(*Const); ok {
			switch e.Op {
			case OpNeg:
				return &Const{Val: e.Typ.Wrap(-x.Val), Typ: e.Typ}
			case OpNot:
				return &Const{Val: e.Typ.Wrap(^x.Val), Typ: e.Typ}
			case OpLNot:
				return &Const{Val: b2i(x.Val == 0), Typ: e.Typ}
			}
		}
		return e
	case *Bin:
		e.X = FoldExpr(e.X)
		e.Y = FoldExpr(e.Y)
		x, xc := e.X.(*Const)
		y, yc := e.Y.(*Const)
		if xc && yc {
			if v, err := evalBin(e, x.Val, y.Val); err == nil {
				return &Const{Val: v, Typ: e.Typ}
			}
			return e
		}
		return simplifyBin(e, x, xc, y, yc)
	case *Sel:
		e.Cond = FoldExpr(e.Cond)
		e.Then = FoldExpr(e.Then)
		e.Else = FoldExpr(e.Else)
		if c, ok := e.Cond.(*Const); ok {
			if c.Val != 0 {
				return coerceConst(e.Then, e.Typ)
			}
			return coerceConst(e.Else, e.Typ)
		}
		return e
	case *Cast:
		e.X = FoldExpr(e.X)
		if x, ok := e.X.(*Const); ok {
			return &Const{Val: e.Typ.Wrap(x.Val), Typ: e.Typ}
		}
		// Collapse nested casts when the outer one dominates.
		if inner, ok := e.X.(*Cast); ok && e.Typ.Bits <= inner.Typ.Bits {
			return &Cast{X: inner.X, Typ: e.Typ}
		}
		return e
	case *Load:
		for i := range e.Idx {
			e.Idx[i] = FoldExpr(e.Idx[i])
		}
		return e
	case *LutRef:
		e.Idx = FoldExpr(e.Idx)
		// A constant ROM index folds to the ROM content.
		if c, ok := e.Idx.(*Const); ok && c.Val >= 0 && c.Val < int64(e.Rom.Size) {
			return &Const{Val: e.Rom.Content[c.Val], Typ: e.Rom.Elem}
		}
		return e
	default:
		return e
	}
}

func coerceConst(e Expr, t cc.IntType) Expr {
	if c, ok := e.(*Const); ok {
		return &Const{Val: t.Wrap(c.Val), Typ: t}
	}
	if e.Type() == t {
		return e
	}
	return &Cast{X: e, Typ: t}
}

// simplifyBin applies identity/annihilator algebra when one side is
// constant.
func simplifyBin(e *Bin, x *Const, xc bool, y *Const, yc bool) Expr {
	switch e.Op {
	case OpAdd:
		if yc && y.Val == 0 {
			return coerceConst(e.X, e.Typ)
		}
		if xc && x.Val == 0 {
			return coerceConst(e.Y, e.Typ)
		}
	case OpSub:
		if yc && y.Val == 0 {
			return coerceConst(e.X, e.Typ)
		}
	case OpMul:
		if yc {
			switch y.Val {
			case 0:
				return &Const{Val: 0, Typ: e.Typ}
			case 1:
				return coerceConst(e.X, e.Typ)
			}
		}
		if xc {
			switch x.Val {
			case 0:
				return &Const{Val: 0, Typ: e.Typ}
			case 1:
				return coerceConst(e.Y, e.Typ)
			}
		}
	case OpShl, OpShr:
		if yc && y.Val == 0 {
			return coerceConst(e.X, e.Typ)
		}
	case OpOr, OpXor:
		if yc && y.Val == 0 {
			return coerceConst(e.X, e.Typ)
		}
		if xc && x.Val == 0 {
			return coerceConst(e.Y, e.Typ)
		}
	case OpAnd:
		if (yc && y.Val == 0) || (xc && x.Val == 0) {
			return &Const{Val: 0, Typ: e.Typ}
		}
	case OpDiv:
		if yc && y.Val == 1 {
			return coerceConst(e.X, e.Typ)
		}
	}
	return e
}
