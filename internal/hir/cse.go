package hir

import (
	"fmt"
	"sort"
)

// cse.go implements local value numbering over linearized regions —
// ROCCC's common-subexpression elimination. Combined with Linearize and
// DCE it removes redundant operators from the data path.

// CSE performs local value numbering on every straight-line region of f.
// The function should be linearized first (CSE calls Linearize itself
// for convenience). Returns the number of replaced right-hand sides.
func CSE(f *Func) int {
	Linearize(f)
	n := 0
	f.Body = cseRegion(f.Body, &n)
	return n
}

type vnState struct {
	varVN  map[*Var]int
	exprVN map[string]int
	repOf  map[int]*Var // value number -> variable currently holding it
	next   int
}

func newVNState() *vnState {
	return &vnState{varVN: map[*Var]int{}, exprVN: map[string]int{}, repOf: map[int]*Var{}}
}

func (st *vnState) fresh() int {
	st.next++
	return st.next
}

// vnOfVar returns the current value number of v, creating one if the
// variable is seen for the first time (an input value).
func (st *vnState) vnOfVar(v *Var) int {
	if vn, ok := st.varVN[v]; ok {
		return vn
	}
	vn := st.fresh()
	st.varVN[v] = vn
	st.repOf[vn] = v
	return vn
}

// valid reports whether rep still holds value number vn.
func (st *vnState) valid(rep *Var, vn int) bool {
	return rep != nil && st.varVN[rep] == vn
}

var commutative = map[Op]bool{
	OpAdd: true, OpMul: true, OpAnd: true, OpOr: true, OpXor: true,
	OpEq: true, OpNe: true, OpLAnd: true, OpLOr: true,
}

// keyOf builds the canonical value-numbering key for a linearized
// expression; ok is false when the expression must not be numbered
// (memory loads and anything unrecognized).
func (st *vnState) keyOf(e Expr) (string, bool) {
	switch e := e.(type) {
	case *Const:
		return fmt.Sprintf("c%d:%s", e.Val, e.Typ), true
	case *VarRef:
		return fmt.Sprintf("v%d", st.vnOfVar(e.Var)), true
	case *LoadPrev:
		// LPR reads the feedback latch, constant within one iteration.
		return fmt.Sprintf("lpr:%p", e.Var), true
	case *LutRef:
		k, ok := st.keyOf(e.Idx)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("lut:%s[%s]", e.Rom.Name, k), true
	case *Un:
		k, ok := st.keyOf(e.X)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("u%d:%s:%s", e.Op, k, e.Typ), true
	case *Bin:
		kx, okx := st.keyOf(e.X)
		ky, oky := st.keyOf(e.Y)
		if !okx || !oky {
			return "", false
		}
		if commutative[e.Op] && ky < kx {
			kx, ky = ky, kx
		}
		return fmt.Sprintf("b%d:%s:%s:%s", e.Op, kx, ky, e.Typ), true
	case *Sel:
		kc, okc := st.keyOf(e.Cond)
		kt, okt := st.keyOf(e.Then)
		ke, oke := st.keyOf(e.Else)
		if !okc || !okt || !oke {
			return "", false
		}
		return fmt.Sprintf("s:%s?%s:%s:%s", kc, kt, ke, e.Typ), true
	case *Cast:
		k, ok := st.keyOf(e.X)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("cast:%s:%s", k, e.Typ), true
	default:
		return "", false
	}
}

func cseRegion(list []Stmt, replaced *int) []Stmt {
	st := newVNState()
	var out []Stmt
	for _, s := range list {
		switch s := s.(type) {
		case *Assign:
			key, ok := st.keyOf(s.Src)
			if !ok {
				// Unnumberable RHS (memory load): dst gets a fresh value.
				st.varVN[s.Dst] = st.fresh()
				st.repOf[st.varVN[s.Dst]] = s.Dst
				out = append(out, s)
				continue
			}
			if vn, seen := st.exprVN[key]; seen {
				if rep := st.repOf[vn]; st.valid(rep, vn) && rep != s.Dst {
					if _, already := s.Src.(*VarRef); !already {
						s.Src = &VarRef{Var: rep}
						*replaced++
					}
				}
				st.varVN[s.Dst] = vn
				out = append(out, s)
				continue
			}
			vn := st.fresh()
			st.exprVN[key] = vn
			st.varVN[s.Dst] = vn
			st.repOf[vn] = s.Dst
			out = append(out, s)
		case *StoreNext:
			// The feedback write changes the variable's software value.
			vn := st.fresh()
			st.varVN[s.Var] = vn
			st.repOf[vn] = s.Var
			out = append(out, s)
		case *If:
			// Branch bodies are separate regions; state after the If is
			// conservatively reset for variables assigned inside.
			s.Then = cseRegion(s.Then, replaced)
			s.Else = cseRegion(s.Else, replaced)
			killAssigned(st, s.Then)
			killAssigned(st, s.Else)
			out = append(out, s)
		case *For:
			s.Body = cseRegion(s.Body, replaced)
			killAssigned(st, s.Body)
			st.varVN[s.Var] = st.fresh()
			out = append(out, s)
		default:
			out = append(out, s)
		}
	}
	return out
}

func killAssigned(st *vnState, body []Stmt) {
	assigned := AssignedVars(body)
	vars := make([]*Var, 0, len(assigned))
	for v := range assigned {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
	for _, v := range vars {
		vn := st.fresh()
		st.varVN[v] = vn
		st.repOf[vn] = v
	}
}

// CopyProp replaces reads of variables whose defining assignment in the
// same region is a plain copy (t = v) or constant (t = c), enabling DCE
// to drop the copies. Returns the number of replaced uses.
func CopyProp(f *Func) int {
	n := 0
	f.Body = copyPropRegion(f.Body, &n)
	return n
}

func copyPropRegion(list []Stmt, n *int) []Stmt {
	// binding: var -> replacement leaf expression currently valid.
	binding := map[*Var]Expr{}
	kill := func(v *Var) {
		delete(binding, v)
		// Any binding whose value reads v is stale.
		for dst, repl := range binding {
			if ref, ok := repl.(*VarRef); ok && ref.Var == v {
				delete(binding, dst)
			}
		}
	}
	substitute := func(e Expr) Expr {
		return visitExpr(e, func(x Expr) Expr {
			if ref, ok := x.(*VarRef); ok {
				if repl, ok2 := binding[ref.Var]; ok2 {
					*n++
					return CloneExpr(repl)
				}
			}
			return x
		})
	}
	var out []Stmt
	for _, s := range list {
		switch s := s.(type) {
		case *Assign:
			s.Src = substitute(s.Src)
			kill(s.Dst)
			switch src := s.Src.(type) {
			case *VarRef:
				if src.Var != s.Dst && s.Dst.Type == src.Var.Type {
					binding[s.Dst] = src
				}
			case *Const:
				if src.Typ == s.Dst.Type {
					binding[s.Dst] = src
				}
			}
			out = append(out, s)
		case *StoreNext:
			s.Src = substitute(s.Src)
			kill(s.Var) // the feedback write changes the software value
			out = append(out, s)
		case *Store:
			for i := range s.Idx {
				s.Idx[i] = substitute(s.Idx[i])
			}
			s.Src = substitute(s.Src)
			out = append(out, s)
		case *If:
			s.Cond = substitute(s.Cond)
			s.Then = copyPropRegion(s.Then, n)
			s.Else = copyPropRegion(s.Else, n)
			for v := range AssignedVars(s.Then) {
				kill(v)
			}
			for v := range AssignedVars(s.Else) {
				kill(v)
			}
			out = append(out, s)
		case *For:
			s.Body = copyPropRegion(s.Body, n)
			for v := range AssignedVars(s.Body) {
				kill(v)
			}
			kill(s.Var)
			out = append(out, s)
		default:
			out = append(out, s)
		}
	}
	return out
}
