// Package fleet is the placement layer above internal/serve: a
// front-end Router consistent-hashes kernel names across N worker
// shards, so one serving fleet scales kernels horizontally while every
// stream still lands on a warm SystemPool. A shard is either an
// in-process serve.Server or an addressable TCP worker (reached over
// pipelined v2 connections); the Router implements serve.Dispatcher, so
// a front-end serve.Server plugs it in with SetDispatcher and the wire
// layer never knows the difference.
//
// The Router also owns the fleet's resource hygiene:
//
//   - admission control: each shard has a slot budget (its executor
//     width by default); a stream arriving at a saturated shard is shed
//     immediately with a typed serve.BusyError instead of queueing
//     without bound;
//   - registry hygiene: EvictIdle drops the coldest kernels' warm pools
//     (LRU by last-open tick, never while streams are in flight) and
//     Autotune drives each kernel's pool idle cap from its observed
//     concurrency high-water mark.
package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"roccc/internal/calib"
	"roccc/internal/netlist"
	"roccc/internal/serve"
)

// Shard describes one worker for NewRouter: exactly one of Local (an
// in-process serve.Server) or Addr (a TCP worker speaking protocol v2)
// must be set. Slots bounds the shard's concurrent streams — admission
// control sheds beyond it; <= 0 derives it from the worker's executor
// width (Local.Workers for in-process shards, the dialed server's
// default otherwise).
type Shard struct {
	Local *serve.Server
	Addr  string
	Slots int
}

// defaultRemoteSlots is the admission budget for a TCP shard when the
// spec does not set one (the remote's executor width is not knowable
// before dialing).
const defaultRemoteSlots = 16

// vnodesPerShard is the consistent-hash ring's virtual-node fan-out:
// enough that kernel load spreads within a few percent of even, small
// enough that the ring stays a cache-resident binary-search array.
const vnodesPerShard = 64

// shard is the Router's per-worker state.
type shard struct {
	index int
	local *serve.Server
	addr  string
	slots int64

	inflight atomic.Int64
	hwm      atomic.Int64
	streams  atomic.Int64
	sheds    atomic.Int64

	// Free list of pipelined connections to a TCP shard (Router.Get/Put).
	cmu   sync.Mutex
	conns []*serve.Conn
}

// vnode is one ring point: a hash owned by a shard.
type vnode struct {
	hash  uint64
	shard int32
}

// kernelLoad is the Router's per-kernel record: the cached route (the
// ring is immutable, so a kernel's shard never changes) plus the load
// counters Autotune and the metrics plane read.
type kernelLoad struct {
	route    route
	inflight atomic.Int64
	hwm      atomic.Int64
	uses     atomic.Int64
	lastUse  atomic.Int64
}

// route is the serve.Runner a Dispatch resolves to: one kernel pinned
// to one shard.
type route struct {
	r      *Router
	sh     *shard
	load   *kernelLoad
	kernel string
}

// Router consistent-hashes kernel names across shards and admits
// streams against per-shard slot budgets. It implements
// serve.Dispatcher; it is safe for concurrent use.
type Router struct {
	shards []*shard
	ring   []vnode // sorted by hash
	tick   atomic.Int64

	lmu  sync.RWMutex
	load map[string]*kernelLoad

	// Backend calibration across in-process shards (EnableCalibration);
	// TCP shards calibrate themselves via their own -calibrate flag.
	calibMu  sync.Mutex
	calibOpt calib.Options
	calibOn  bool
}

// NewRouter builds a router over the given shards. The ring is fixed at
// construction: vnodesPerShard points per shard, hashed by shard
// identity, so the kernel→shard mapping is deterministic across
// restarts with the same topology.
func NewRouter(shards []Shard) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("fleet: no shards")
	}
	r := &Router{
		shards: make([]*shard, len(shards)),
		ring:   make([]vnode, 0, len(shards)*vnodesPerShard),
		load:   map[string]*kernelLoad{},
	}
	for i, s := range shards {
		if (s.Local == nil) == (s.Addr == "") {
			return nil, fmt.Errorf("fleet: shard %d: exactly one of Local or Addr must be set", i)
		}
		slots := s.Slots
		if slots <= 0 {
			if s.Local != nil {
				slots = s.Local.Workers()
			} else {
				slots = defaultRemoteSlots
			}
		}
		sh := &shard{index: i, local: s.Local, addr: s.Addr, slots: int64(slots)}
		r.shards[i] = sh
		key := s.Addr
		if key == "" {
			key = fmt.Sprintf("inproc-%d", i)
		}
		for v := 0; v < vnodesPerShard; v++ {
			r.ring = append(r.ring, vnode{hash: fnv64(fmt.Sprintf("%s#%d", key, v)), shard: int32(i)})
		}
	}
	sort.Slice(r.ring, func(i, j int) bool { return r.ring[i].hash < r.ring[j].hash })
	return r, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// fnv64 is the ring's hash: FNV-1a over the name, then a 64-bit
// avalanche finalizer (splitmix64's mixer). Raw FNV of short, similar
// strings — vnode labels, kernel names — clusters in the high bits the
// sorted ring is ordered by, skewing shard arcs as far as 60/40 on two
// shards; the finalizer spreads them to within a few percent of even.
//
//roccc:hotpath
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ShardFor maps a kernel name to its shard: first ring point at or
// after the name's hash, wrapping at the top.
//
//roccc:hotpath
func (r *Router) ShardFor(kernel string) int {
	h := fnv64(kernel)
	ring := r.ring
	lo, hi := 0, len(ring)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ring[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(ring) {
		lo = 0
	}
	return int(ring[lo].shard)
}

// Dispatch resolves a kernel to its shard's Runner (serve.Dispatcher).
// The route is cached per kernel — the ring is immutable — so the
// steady state is one read-locked map hit.
//
//roccc:hotpath
func (r *Router) Dispatch(kernel string) (serve.Runner, error) {
	r.lmu.RLock()
	kl := r.load[kernel]
	r.lmu.RUnlock()
	if kl == nil {
		var err error
		if kl, err = r.admitKernel(kernel); err != nil {
			return nil, err
		}
	}
	kl.uses.Add(1)
	kl.lastUse.Store(r.tick.Add(1))
	return &kl.route, nil
}

// admitKernel is Dispatch's first-use slow path: resolve the shard,
// refuse kernels an in-process shard does not know (so the request
// error surfaces at open, as the registry path would), and cache the
// route. Unknown kernels are not cached — a later registration on the
// shard makes them servable.
func (r *Router) admitKernel(kernel string) (*kernelLoad, error) {
	sh := r.shards[r.ShardFor(kernel)]
	if sh.local != nil && !sh.local.Registered(kernel) {
		return nil, fmt.Errorf("fleet: unknown kernel %q (shard %d)", kernel, sh.index)
	}
	r.lmu.Lock()
	defer r.lmu.Unlock()
	if kl := r.load[kernel]; kl != nil {
		return kl, nil
	}
	kl := &kernelLoad{}
	kl.route = route{r: r, sh: sh, load: kl, kernel: kernel}
	r.load[kernel] = kl
	return kl, nil
}

// RunStream admits the stream against the shard's slot budget — shedding
// with a typed serve.BusyError when saturated — and executes it on the
// shard (directly for in-process workers, over a pooled pipelined
// connection for TCP workers).
//
//roccc:hotpath
func (rt *route) RunStream(job *netlist.Job) error {
	sh := rt.sh
	if n := sh.inflight.Add(1); n > sh.slots {
		sh.inflight.Add(-1)
		sh.sheds.Add(1)
		job.Err = &serve.BusyError{Kernel: rt.kernel, Shard: sh.index}
		return job.Err
	}
	n := sh.inflight.Load()
	for hw := sh.hwm.Load(); n > hw && !sh.hwm.CompareAndSwap(hw, n); hw = sh.hwm.Load() {
	}
	kl := rt.load
	kn := kl.inflight.Add(1)
	for hw := kl.hwm.Load(); kn > hw && !kl.hwm.CompareAndSwap(hw, kn); hw = kl.hwm.Load() {
	}
	sh.streams.Add(1)
	var err error
	if sh.local != nil {
		err = sh.local.RunStream(rt.kernel, job)
	} else {
		err = rt.runRemote(job)
	}
	kl.inflight.Add(-1)
	sh.inflight.Add(-1)
	return err
}

// runRemote carries one stream to a TCP shard over a pooled pipelined
// connection.
func (rt *route) runRemote(job *netlist.Job) error {
	c, err := rt.r.Get(rt.sh.index)
	if err != nil {
		job.Err = fmt.Errorf("fleet: shard %d: %w", rt.sh.index, err)
		return job.Err
	}
	one := [1]netlist.Job{*job}
	err = c.Run(rt.kernel, one[:])
	*job = one[0]
	rt.r.Put(rt.sh.index, c)
	if err != nil && job.Err == nil {
		// Request-level failure (transport, unknown kernel on the
		// remote): no stream carries it, so the job does.
		job.Err = err
	}
	return job.Err
}

// Run streams a whole batch through one kernel's shard, filling each
// Job in place; the returned error is the first per-stream failure.
// Concurrency comes from the caller (or the front-end server's
// executors) — Run itself is a serial convenience for tools and
// benches.
func (r *Router) Run(kernel string, jobs []netlist.Job) error {
	runner, err := r.Dispatch(kernel)
	if err != nil {
		return err
	}
	for i := range jobs {
		runner.RunStream(&jobs[i])
	}
	for i := range jobs {
		if jobs[i].Err != nil {
			return fmt.Errorf("fleet: %s stream %d: %w", kernel, i, jobs[i].Err)
		}
	}
	return nil
}

// Get checks a pipelined connection to a TCP shard out of its free
// list, dialing a fresh one on a miss. Callers hand it back with Put —
// a dropped connection pins a socket and shrinks the shard's reuse
// pool.
func (r *Router) Get(i int) (*serve.Conn, error) {
	sh := r.shards[i]
	if sh.addr == "" {
		return nil, fmt.Errorf("fleet: shard %d is in-process: nothing to dial", i)
	}
	sh.cmu.Lock()
	if n := len(sh.conns); n > 0 {
		c := sh.conns[n-1]
		sh.conns = sh.conns[:n-1]
		sh.cmu.Unlock()
		return c, nil
	}
	sh.cmu.Unlock()
	return serve.DialPipelined(sh.addr)
}

// Put returns a connection to its shard's free list; poisoned
// connections are closed and dropped instead of being reused.
func (r *Router) Put(i int, c *serve.Conn) {
	if c == nil {
		return
	}
	if !c.Healthy() {
		c.Close()
		return
	}
	sh := r.shards[i]
	sh.cmu.Lock()
	sh.conns = append(sh.conns, c)
	sh.cmu.Unlock()
}

// EvictIdle enforces a per-shard residency cap on in-process shards:
// while more than maxResident kernels hold warm pools, the
// least-recently-opened ones are evicted (their compiled plans stay
// cached, so a return of traffic rebuilds the pool without
// recompiling). Kernels with in-flight streams are skipped — serve's
// Evict refuses them — and retried on the next sweep. Returns the
// number of pools dropped.
func (r *Router) EvictIdle(maxResident int) int {
	if maxResident < 0 {
		maxResident = 0
	}
	evicted := 0
	for _, sh := range r.shards {
		if sh.local == nil {
			continue
		}
		infos := sh.local.KernelInfos()
		resident := infos[:0]
		for _, info := range infos {
			if info.Resident {
				resident = append(resident, info)
			}
		}
		excess := len(resident) - maxResident
		if excess <= 0 {
			continue
		}
		sort.Slice(resident, func(i, j int) bool { return resident[i].LastUse < resident[j].LastUse })
		for _, info := range resident[:excess] {
			if err := sh.local.Evict(info.Kernel); err == nil {
				evicted++
			}
		}
	}
	return evicted
}

// Autotune drives each kernel's pool idle cap from observed load: the
// cap becomes the kernel's concurrency high-water mark since the last
// call (never below 1), so hot kernels keep enough warm Systems to
// serve their peak without rebuilds while cold ones shrink to a single
// resident System. The high-water mark resets to the current in-flight
// count, making each call a fresh observation window. When calibration
// is enabled (EnableCalibration), each call also re-trials every
// compiled kernel on its shard — cheap in steady state, because the
// noise-floor guard keeps the incumbent backend unless a challenger
// genuinely beats it, so pools are not rebuilt on jitter.
func (r *Router) Autotune() {
	r.lmu.RLock()
	kls := make([]*kernelLoad, 0, len(r.load))
	for _, kl := range r.load {
		kls = append(kls, kl)
	}
	r.lmu.RUnlock()
	for _, kl := range kls {
		sh := kl.route.sh
		if sh.local == nil {
			continue
		}
		hwm := kl.hwm.Swap(kl.inflight.Load())
		if hwm < 1 {
			hwm = 1
		}
		sh.local.SetMaxIdleFor(kl.route.kernel, int(hwm))
	}
	r.calibMu.Lock()
	on := r.calibOn
	r.calibMu.Unlock()
	if on {
		r.Calibrate()
	}
}

// EnableCalibration arms backend calibration fleet-wide: every
// in-process shard auto-calibrates kernels at first compile, and every
// Autotune tick re-trials the compiled ones (live pool swaps on a
// switched pick are invisible to streams — serve's eviction-retry
// handles the handover). opt bounds each trial; the zero Options
// selects the calib defaults. TCP shards are untouched: they own their
// calibration via their own server's -calibrate flag.
func (r *Router) EnableCalibration(opt calib.Options) {
	r.calibMu.Lock()
	r.calibOpt = opt
	r.calibOn = true
	r.calibMu.Unlock()
	for _, sh := range r.shards {
		if sh.local != nil {
			sh.local.SetAutoCalibrate(true, opt)
		}
	}
}

// Calibrate runs one calibration pass over every in-process shard's
// compiled kernels, returning the number of trials completed and the
// first per-shard failure (remaining shards still run).
func (r *Router) Calibrate() (trials int, err error) {
	r.calibMu.Lock()
	opt := r.calibOpt
	r.calibMu.Unlock()
	for _, sh := range r.shards {
		if sh.local == nil {
			continue
		}
		results, cerr := sh.local.Calibrate(opt)
		trials += len(results)
		if cerr != nil && err == nil {
			err = fmt.Errorf("fleet: shard %d: %w", sh.index, cerr)
		}
	}
	return trials, err
}

// Close drops every pooled shard connection. Shard servers belong to
// their owners and are not shut down.
func (r *Router) Close() error {
	for _, sh := range r.shards {
		sh.cmu.Lock()
		conns := sh.conns
		sh.conns = nil
		sh.cmu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}
	return nil
}
