package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roccc/internal/calib"
	"roccc/internal/core"
	"roccc/internal/netlist"
	"roccc/internal/serve"
)

const firSource = `
int A[21];
int C[17];
void fir() {
	int i;
	for (i = 0; i < 17; i = i + 1) {
		C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
	}
}
`

const accumSource = `
int A[32];
int sum;
void accum() {
	int i;
	sum = 0;
	for (i = 0; i < 32; i++) {
		sum = sum + A[i];
	}
}
`

const dividerSource = `
int A[24];
int B[24];
int Q[24];
void divide() {
	int i;
	for (i = 0; i < 24; i++) {
		Q[i] = A[i] / B[i];
	}
}
`

func testSpecs() []serve.KernelSpec {
	return []serve.KernelSpec{
		{Name: "fir", Source: firSource, Func: "fir", Options: core.DefaultOptions(), Config: netlist.Config{BusElems: 1}},
		{Name: "accum", Source: accumSource, Func: "accum", Options: core.DefaultOptions(), Config: netlist.Config{BusElems: 1}},
		{Name: "divide", Source: dividerSource, Func: "divide", Options: core.DefaultOptions(), Config: netlist.Config{BusElems: 1}},
	}
}

func firInputs(seed int64) map[string][]int64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([]int64, 21)
	for i := range in {
		in[i] = rng.Int63n(255) - 128
	}
	return map[string][]int64{"A": in}
}

func divInputs(seed int64) map[string][]int64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]int64, 24)
	b := make([]int64, 24)
	for i := range a {
		a[i] = rng.Int63n(255) - 128
		b[i] = rng.Int63n(96) + 1 // nonzero divisors: no faults in fleet tests
	}
	return map[string][]int64{"A": a, "B": b}
}

// serialRun executes one stream through a private System — the ground
// truth fleet routing must be bit-identical to.
func serialRun(t *testing.T, spec serve.KernelSpec, inputs map[string][]int64) *netlist.Job {
	t.Helper()
	res, err := core.CompileSource(spec.Source, spec.Func, spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := netlist.NewSystem(res.Kernel, res.Datapath, spec.Config)
	if err != nil {
		t.Fatal(err)
	}
	for name, vals := range inputs {
		if err := sys.LoadInput(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	sim, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	job := &netlist.Job{Inputs: inputs, Cycles: sys.Cycles(),
		Outputs: map[string][]int64{}, Feedbacks: map[string]int64{}}
	for _, w := range res.Kernel.Writes {
		out, err := sys.Output(w.Arr.Name)
		if err != nil {
			t.Fatal(err)
		}
		job.Outputs[w.Arr.Name] = out
	}
	for _, fb := range res.Datapath.Feedbacks {
		if v, ok := sim.FeedbackByName(fb.State.Name); ok {
			job.Feedbacks[fb.State.Name] = v
		}
	}
	return job
}

// workers brings up n in-process shard servers with the test kernels.
func workers(t *testing.T, n, width int) []*serve.Server {
	t.Helper()
	srvs := make([]*serve.Server, n)
	for i := range srvs {
		srvs[i] = serve.NewServer(width)
		for _, spec := range testSpecs() {
			if err := srvs[i].Register(spec); err != nil {
				t.Fatal(err)
			}
		}
		srv := srvs[i]
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
	}
	return srvs
}

// TestRouterShardFor: the ring must be deterministic across router
// instances with the same topology, cover every shard given enough
// names, and agree with Dispatch's placement.
func TestRouterShardFor(t *testing.T) {
	srvs := workers(t, 4, 1)
	mk := func() *Router {
		shards := make([]Shard, len(srvs))
		for i, s := range srvs {
			shards[i] = Shard{Local: s}
		}
		r, err := NewRouter(shards)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := mk(), mk()
	hit := map[int]int{}
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("kernel-%d", i)
		sa, sb := a.ShardFor(name), b.ShardFor(name)
		if sa != sb {
			t.Fatalf("%s: shard %d on one router, %d on its twin", name, sa, sb)
		}
		if sa < 0 || sa >= 4 {
			t.Fatalf("%s: shard %d out of range", name, sa)
		}
		hit[sa]++
	}
	if len(hit) != 4 {
		t.Fatalf("500 names landed on only %d of 4 shards: %v", len(hit), hit)
	}
	for s, n := range hit {
		if n > 350 { // a shard owning >70% of names means the ring skewed
			t.Fatalf("shard %d owns %d of 500 names: %v", s, n, hit)
		}
	}
	// Dispatch places streams where ShardFor says.
	jobs := []netlist.Job{{Inputs: firInputs(1)}}
	if err := a.Run("fir", jobs); err != nil {
		t.Fatal(err)
	}
	want := a.ShardFor("fir")
	for _, kr := range a.Metrics().Kernels {
		if kr.Kernel == "fir" && kr.Shard != want {
			t.Fatalf("fir routed to shard %d, ring says %d", kr.Shard, want)
		}
	}
}

// TestRouterDispatchUnknown: a kernel the owning shard does not know is
// refused at open — and not cached, so registering it later makes it
// servable without a router rebuild.
func TestRouterDispatchUnknown(t *testing.T) {
	srvs := workers(t, 2, 1)
	r, err := NewRouter([]Shard{{Local: srvs[0]}, {Local: srvs[1]}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Dispatch("late_kernel")
	if err == nil || !strings.Contains(err.Error(), `unknown kernel "late_kernel"`) {
		t.Fatalf("err = %v, want unknown-kernel", err)
	}
	owner := srvs[r.ShardFor("late_kernel")]
	if err := owner.Register(serve.KernelSpec{Name: "late_kernel", Source: firSource, Func: "fir",
		Options: core.DefaultOptions(), Config: netlist.Config{BusElems: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Dispatch("late_kernel"); err != nil {
		t.Fatalf("dispatch after late registration: %v", err)
	}
}

// TestRouterAdmissionShed: a stream arriving at a saturated shard is
// shed immediately with a typed serve.BusyError naming the kernel and
// shard; once slots free up, the same route serves again.
func TestRouterAdmissionShed(t *testing.T) {
	srvs := workers(t, 1, 2)
	r, err := NewRouter([]Shard{{Local: srvs[0], Slots: 2}})
	if err != nil {
		t.Fatal(err)
	}
	runner, err := r.Dispatch("fir")
	if err != nil {
		t.Fatal(err)
	}

	sh := r.shards[0]
	sh.inflight.Add(2) // saturate the slot budget
	job := netlist.Job{Inputs: firInputs(3)}
	if err := runner.RunStream(&job); err == nil {
		t.Fatal("saturated shard admitted a stream")
	}
	var be *serve.BusyError
	if !errors.As(job.Err, &be) || be.Kernel != "fir" || be.Shard != 0 {
		t.Fatalf("job.Err = %v, want a typed BusyError for fir/shard 0", job.Err)
	}
	if got := sh.sheds.Load(); got != 1 {
		t.Fatalf("sheds = %d, want 1", got)
	}
	if got := r.Metrics().Shards[0].Sheds; got != 1 {
		t.Fatalf("metrics sheds = %d, want 1", got)
	}

	sh.inflight.Add(-2)
	job = netlist.Job{Inputs: firInputs(3)}
	if err := runner.RunStream(&job); err != nil {
		t.Fatalf("stream after slots freed: %v", err)
	}
	want := serialRun(t, testSpecs()[0], firInputs(3))
	if job.Cycles != want.Cycles {
		t.Fatalf("post-shed stream: %d cycles, serial %d", job.Cycles, want.Cycles)
	}
}

// TestRouterConnPool: Get/Put pool pipelined connections per TCP shard —
// reuse by identity, refuse in-process shards, drop poisoned conns.
func TestRouterConnPool(t *testing.T) {
	srvs := workers(t, 1, 2)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srvs[0].Serve(ln)

	inproc, err := NewRouter([]Shard{{Local: srvs[0]}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inproc.Get(0); err == nil || !strings.Contains(err.Error(), "in-process") {
		t.Fatalf("Get on an in-process shard: %v, want refusal", err)
	}

	r, err := NewRouter([]Shard{{Addr: ln.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c1, err := r.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	r.Put(0, c1)
	if got := r.Metrics().Shards[0].IdleConns; got != 1 {
		t.Fatalf("idle conns = %d after Put, want 1", got)
	}
	c2, err := r.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Fatal("Get did not reuse the pooled connection")
	}
	// Poison it: Close waits for the reader to latch the transport error,
	// so Healthy is false and Put must drop it.
	c2.Close()
	r.Put(0, c2)
	if got := r.Metrics().Shards[0].IdleConns; got != 0 {
		t.Fatalf("idle conns = %d after putting a poisoned conn, want 0", got)
	}
	// Fresh dial still serves.
	c3, err := r.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []netlist.Job{{Inputs: firInputs(5)}}
	if err := c3.Run("fir", jobs); err != nil {
		t.Fatal(err)
	}
	r.Put(0, c3)
	r.Put(0, nil) // nil is a no-op, not a panic
	if got := r.Metrics().Shards[0].IdleConns; got != 1 {
		t.Fatalf("idle conns = %d, want 1", got)
	}
	r.Close()
	if got := r.Metrics().Shards[0].IdleConns; got != 0 {
		t.Fatalf("idle conns = %d after Close, want 0", got)
	}
}

// TestRouterEvictIdle: the residency cap holds per shard — coldest
// kernels lose their pools first, in-flight kernels are skipped, and
// evicted kernels come back on demand.
func TestRouterEvictIdle(t *testing.T) {
	srvs := workers(t, 2, 1)
	r, err := NewRouter([]Shard{{Local: srvs[0]}, {Local: srvs[1]}})
	if err != nil {
		t.Fatal(err)
	}
	ain := make([]int64, 32)
	for _, spec := range testSpecs() {
		in := firInputs(1)
		switch spec.Name {
		case "accum":
			in = map[string][]int64{"A": ain}
		case "divide":
			in = divInputs(2)
		}
		if err := r.Run(spec.Name, []netlist.Job{{Inputs: in}}); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	}
	resident := func() int {
		n := 0
		for _, s := range srvs {
			for _, info := range s.KernelInfos() {
				if info.Resident {
					n++
				}
			}
		}
		return n
	}
	before := resident()
	if before != len(testSpecs()) {
		t.Fatalf("%d pools resident after warming, want %d", before, len(testSpecs()))
	}

	evicted := r.EvictIdle(1)
	after := resident()
	for i, s := range srvs {
		n := 0
		for _, info := range s.KernelInfos() {
			if info.Resident {
				n++
			}
		}
		if n > 1 {
			t.Fatalf("shard %d still has %d resident pools past the cap", i, n)
		}
	}
	if evicted != before-after {
		t.Fatalf("EvictIdle reported %d, residency dropped by %d", evicted, before-after)
	}

	// An evicted kernel streams again transparently.
	jobs := []netlist.Job{{Inputs: firInputs(7)}}
	if err := r.Run("fir", jobs); err != nil {
		t.Fatalf("post-eviction run: %v", err)
	}
	want := serialRun(t, testSpecs()[0], firInputs(7))
	for i := range want.Outputs["C"] {
		if jobs[0].Outputs["C"][i] != want.Outputs["C"][i] {
			t.Fatalf("post-eviction C[%d] = %d, want %d", i, jobs[0].Outputs["C"][i], want.Outputs["C"][i])
		}
	}
}

// TestRouterAutotune: each routed kernel's pool idle cap follows its
// observed concurrency high-water mark, never dropping below one, and
// each call opens a fresh observation window.
func TestRouterAutotune(t *testing.T) {
	srvs := workers(t, 1, 4)
	r, err := NewRouter([]Shard{{Local: srvs[0]}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run("fir", []netlist.Job{{Inputs: firInputs(1)}}); err != nil {
		t.Fatal(err)
	}
	maxIdle := func() int {
		for _, info := range srvs[0].KernelInfos() {
			if info.Kernel == "fir" {
				return info.MaxIdle
			}
		}
		return -99
	}

	r.lmu.RLock()
	kl := r.load["fir"]
	r.lmu.RUnlock()
	kl.hwm.Store(5) // pretend the window peaked at 5 concurrent streams
	r.Autotune()
	if got := maxIdle(); got != 5 {
		t.Fatalf("idle cap = %d after a hwm-5 window, want 5", got)
	}
	// The window reset: with no traffic the next observation is idle, and
	// the cap floors at one warm System.
	r.Autotune()
	if got := maxIdle(); got != 1 {
		t.Fatalf("idle cap = %d after an idle window, want 1", got)
	}
}

// TestFleetRemoteShard: a TCP worker shard must serve bit-identically to
// serial System.Run, over pooled pipelined connections.
func TestFleetRemoteShard(t *testing.T) {
	srvs := workers(t, 1, 2)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srvs[0].Serve(ln)
	r, err := NewRouter([]Shard{{Addr: ln.Addr().String(), Slots: 8}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	jobs := make([]netlist.Job, 6)
	for i := range jobs {
		jobs[i] = netlist.Job{Inputs: firInputs(int64(20 + i))}
	}
	if err := r.Run("fir", jobs); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		want := serialRun(t, testSpecs()[0], firInputs(int64(20+i)))
		if jobs[i].Cycles != want.Cycles {
			t.Fatalf("stream %d: %d cycles via TCP shard, serial %d", i, jobs[i].Cycles, want.Cycles)
		}
		for j := range want.Outputs["C"] {
			if jobs[i].Outputs["C"][j] != want.Outputs["C"][j] {
				t.Fatalf("stream %d: C[%d] = %d via TCP shard, serial %d",
					i, j, jobs[i].Outputs["C"][j], want.Outputs["C"][j])
			}
		}
	}
	m := r.Metrics()
	if m.Shards[0].InProcess || m.Shards[0].Streams != 6 {
		t.Fatalf("shard metrics = %+v, want 6 streams on a TCP shard", m.Shards[0])
	}
	if m.Shards[0].IdleConns != 1 {
		t.Fatalf("idle conns = %d after a serial batch, want 1 pooled", m.Shards[0].IdleConns)
	}
	if st := srvs[0].Stats()["fir"]; st.Gets != st.Puts+st.Rejected {
		t.Fatalf("remote shard pool unbalanced: %+v", st)
	}
}

// TestFleetShardedSoak: pipelined clients hammer a front-end that
// dispatches through the router into small-slotted shards. Every stream
// is either bit-identical to its serial reference or a typed BusyError
// shed; nothing is dropped, and every shard pool balances afterwards.
func TestFleetShardedSoak(t *testing.T) {
	srvs := workers(t, 2, 2)
	r, err := NewRouter([]Shard{{Local: srvs[0], Slots: 2}, {Local: srvs[1], Slots: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	front := serve.NewServer(4)
	front.SetDispatcher(r)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go front.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		front.Shutdown(ctx)
	})

	// Serial ground truth per kernel (fixed inputs: the soak hammers
	// concurrency, not input variety).
	specs := testSpecs()
	inputs := map[string]map[string][]int64{
		"fir":   firInputs(42),
		"accum": {"A": make([]int64, 32)},
	}
	for i := range inputs["accum"]["A"] {
		inputs["accum"]["A"][i] = int64(i*3 - 40)
	}
	inputs["divide"] = divInputs(8)
	wants := map[string]*netlist.Job{}
	for _, spec := range specs {
		wants[spec.Name] = serialRun(t, spec, inputs[spec.Name])
	}

	const conns = 2
	const perConn = 2
	const iters = 40
	var requested, answered, shed atomic.Int64
	errCh := make(chan error, conns*perConn)
	var wg sync.WaitGroup
	for ci := 0; ci < conns; ci++ {
		conn, err := serve.DialPipelined(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		for w := 0; w < perConn; w++ {
			wg.Add(1)
			go func(conn *serve.Conn, id int) {
				defer wg.Done()
				jobs := make([]netlist.Job, 2)
				for it := 0; it < iters; it++ {
					spec := specs[(id+it)%len(specs)]
					want := wants[spec.Name]
					for i := range jobs {
						jobs[i] = netlist.Job{Inputs: inputs[spec.Name],
							Outputs: jobs[i].Outputs, Feedbacks: jobs[i].Feedbacks}
					}
					requested.Add(int64(len(jobs)))
					err := conn.Run(spec.Name, jobs)
					for i := range jobs {
						var be *serve.BusyError
						switch {
						case jobs[i].Err == nil:
							if jobs[i].Cycles != want.Cycles {
								errCh <- fmt.Errorf("%s: %d cycles, serial %d", spec.Name, jobs[i].Cycles, want.Cycles)
								return
							}
							for name, wv := range want.Outputs {
								for j := range wv {
									if jobs[i].Outputs[name][j] != wv[j] {
										errCh <- fmt.Errorf("%s: %s[%d] cross-wired", spec.Name, name, j)
										return
									}
								}
							}
							for name, wv := range want.Feedbacks {
								if jobs[i].Feedbacks[name] != wv {
									errCh <- fmt.Errorf("%s: feedback %s mismatched", spec.Name, name)
									return
								}
							}
							answered.Add(1)
						case errors.As(jobs[i].Err, &be):
							if be.Kernel != spec.Name {
								errCh <- fmt.Errorf("shed names kernel %q, requested %q", be.Kernel, spec.Name)
								return
							}
							shed.Add(1)
						default:
							errCh <- fmt.Errorf("%s: %v", spec.Name, jobs[i].Err)
							return
						}
					}
					if err != nil && shed.Load() == 0 {
						errCh <- fmt.Errorf("%s: run error with no shed or fault: %v", spec.Name, err)
						return
					}
				}
			}(conn, ci*perConn+w)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	if requested.Load() != answered.Load()+shed.Load() {
		t.Fatalf("dropped streams: %d requested, %d answered, %d shed",
			requested.Load(), answered.Load(), shed.Load())
	}
	for i, s := range srvs {
		if !s.WaitIdle(5 * time.Second) {
			t.Fatalf("shard %d did not drain", i)
		}
		for name, st := range s.Stats() {
			if st.Gets != st.Puts+st.Rejected {
				t.Errorf("shard %d pool %s unbalanced: %+v", i, name, st)
			}
		}
	}
	var metricSheds int64
	for _, sm := range r.Metrics().Shards {
		metricSheds += sm.Sheds
	}
	if metricSheds != shed.Load() {
		t.Fatalf("router counted %d sheds, clients saw %d", metricSheds, shed.Load())
	}
	t.Logf("fleet soak: %d answered, %d shed across %d shards", answered.Load(), shed.Load(), r.Shards())
}

// TestRouterCalibration: EnableCalibration must arm first-compile
// trials on every in-process shard, Autotune must re-trial compiled
// kernels, and the counters must fold into the fleet metrics snapshot —
// while every routed answer stays bit-identical to a serial run.
func TestRouterCalibration(t *testing.T) {
	srvs := workers(t, 2, 2)
	r, err := NewRouter([]Shard{{Local: srvs[0]}, {Local: srvs[1]}})
	if err != nil {
		t.Fatal(err)
	}
	fast := calib.Options{Warmup: 1, Reps: 1, Iters: 1}
	r.EnableCalibration(fast)

	// First dispatch compiles on the ring-owner shard and (armed) trials
	// the kernel before its first pool is built.
	inputs := firInputs(42)
	want := serialRun(t, testSpecs()[0], inputs)
	jobs := []netlist.Job{{Inputs: inputs}}
	if err := r.Run("fir", jobs); err != nil {
		t.Fatalf("routed run: %v", err)
	}
	for i, v := range want.Outputs["C"] {
		if jobs[0].Outputs["C"][i] != v {
			t.Fatalf("C[%d] = %d routed, %d serial", i, jobs[0].Outputs["C"][i], v)
		}
	}
	m := r.Metrics()
	if m.Calibrations == 0 {
		t.Fatal("first compile under EnableCalibration ran no trials")
	}
	base := m.Calibrations
	owner := m.Shards[r.ShardFor("fir")]
	if owner.Calibrations == 0 {
		t.Fatalf("ring-owner shard reports no calibrations: %+v", owner)
	}

	// The hygiene tick re-trials compiled kernels on their shards.
	r.Autotune()
	m = r.Metrics()
	if m.Calibrations <= base {
		t.Fatalf("Autotune did not calibrate: %d trials, had %d", m.Calibrations, base)
	}

	// An explicit pass reports how many trials it ran.
	trials, err := r.Calibrate()
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if trials == 0 {
		t.Fatal("explicit Calibrate pass ran no trials")
	}

	// Per-kernel calibration detail flows through the embedded shard
	// server snapshot.
	found := false
	for _, sm := range r.Metrics().Shards {
		if sm.Server == nil {
			continue
		}
		for _, ki := range sm.Server.Kernels {
			if ki.Kernel == "fir" && ki.Calibration != nil {
				found = true
				if len(ki.Calibration.Samples) == 0 {
					t.Fatal("fir calibration carries no samples")
				}
			}
		}
	}
	if !found {
		t.Fatal("no shard snapshot carries fir's calibration result")
	}
}
