package fleet

import (
	"sort"

	"roccc/internal/serve"
)

// ShardMetrics is the metrics-plane snapshot of one shard.
type ShardMetrics struct {
	Index     int    `json:"index"`
	Addr      string `json:"addr,omitempty"`
	InProcess bool   `json:"in_process"`
	Slots     int    `json:"slots"`
	InFlight  int64  `json:"in_flight"`
	HighWater int64  `json:"high_water"`
	Streams   int64  `json:"streams"`
	Sheds     int64  `json:"sheds"`
	IdleConns int    `json:"idle_conns"`

	// Calibrations/CalibSwaps mirror the in-process shard server's
	// backend-calibration totals (zero for TCP shards, whose own metrics
	// endpoint reports them).
	Calibrations int64 `json:"calibrations,omitempty"`
	CalibSwaps   int64 `json:"calib_swaps,omitempty"`

	// Server is the in-process shard's full serve snapshot (per-kernel
	// pool stats, backend/cone info, connection counters); nil for TCP
	// shards, whose own metrics endpoint reports it.
	Server *serve.Metrics `json:"server,omitempty"`
}

// KernelRoute is the metrics-plane view of one routed kernel: where the
// ring placed it and the load the router observed.
type KernelRoute struct {
	Kernel    string `json:"kernel"`
	Shard     int    `json:"shard"`
	Uses      int64  `json:"uses"`
	InFlight  int64  `json:"in_flight"`
	HighWater int64  `json:"high_water"`
	LastUse   int64  `json:"last_use"`
}

// Metrics is the fleet snapshot the front-end's HTTP endpoint
// serializes alongside (or instead of) a single server's.
type Metrics struct {
	Shards  []ShardMetrics `json:"shards"`
	Kernels []KernelRoute  `json:"kernels"`
	// Calibrations/CalibSwaps total backend trials and live pool swaps
	// across the fleet's in-process shards.
	Calibrations int64 `json:"calibrations"`
	CalibSwaps   int64 `json:"calib_swaps"`
}

// Metrics snapshots every shard and routed kernel.
func (r *Router) Metrics() Metrics {
	m := Metrics{Shards: make([]ShardMetrics, len(r.shards))}
	for i, sh := range r.shards {
		sh.cmu.Lock()
		idleConns := len(sh.conns)
		sh.cmu.Unlock()
		sm := ShardMetrics{
			Index:     sh.index,
			Addr:      sh.addr,
			InProcess: sh.local != nil,
			Slots:     int(sh.slots),
			InFlight:  sh.inflight.Load(),
			HighWater: sh.hwm.Load(),
			Streams:   sh.streams.Load(),
			Sheds:     sh.sheds.Load(),
			IdleConns: idleConns,
		}
		if sh.local != nil {
			srv := sh.local.Metrics()
			sm.Server = &srv
			sm.Calibrations, sm.CalibSwaps = srv.Calibrations, srv.CalibSwaps
			m.Calibrations += srv.Calibrations
			m.CalibSwaps += srv.CalibSwaps
		}
		m.Shards[i] = sm
	}
	r.lmu.RLock()
	for name, kl := range r.load {
		m.Kernels = append(m.Kernels, KernelRoute{
			Kernel:    name,
			Shard:     kl.route.sh.index,
			Uses:      kl.uses.Load(),
			InFlight:  kl.inflight.Load(),
			HighWater: kl.hwm.Load(),
			LastUse:   kl.lastUse.Load(),
		})
	}
	r.lmu.RUnlock()
	sort.Slice(m.Kernels, func(i, j int) bool { return m.Kernels[i].Kernel < m.Kernels[j].Kernel })
	return m
}
