package bench

import (
	"math"
	"math/rand"
	"testing"

	"roccc/internal/cc"
	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/netlist"
)

func TestAllKernelsCompile(t *testing.T) {
	for _, k := range All() {
		res, err := k.Compile()
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		if res.Datapath.NumOps() == 0 {
			t.Errorf("%s: empty data path", k.Name)
		}
	}
}

// simCombinational runs a combinational kernel's data path on a batch of
// input vectors.
func simCombinational(t *testing.T, res *core.Result, iters [][]int64) [][]int64 {
	t.Helper()
	sim := dp.NewSim(res.Datapath)
	outs, err := sim.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

func TestBitCorrelatorExhaustive(t *testing.T) {
	k := BitCorrelator()
	res, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var iters [][]int64
	for x := int64(0); x < 256; x++ {
		iters = append(iters, []int64{x})
	}
	outs := simCombinational(t, res, iters)
	for x := int64(0); x < 256; x++ {
		want := int64(0)
		for i := 0; i < 8; i++ {
			if (x>>uint(i))&1 == (182>>uint(i))&1 {
				want++
			}
		}
		want &= 15 // uint4 output port
		if outs[x][0] != want {
			t.Fatalf("bit_correlator(%d) = %d, want %d", x, outs[x][0], want)
		}
	}
}

func TestUDivExhaustive(t *testing.T) {
	k := UDiv()
	res, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var iters [][]int64
	var want []int64
	for num := int64(0); num < 256; num += 3 {
		for den := int64(1); den < 256; den += 7 {
			iters = append(iters, []int64{num, den})
			want = append(want, num/den)
		}
	}
	outs := simCombinational(t, res, iters)
	for i := range iters {
		if outs[i][0] != want[i] {
			t.Fatalf("udiv(%d,%d) = %d, want %d", iters[i][0], iters[i][1], outs[i][0], want[i])
		}
	}
}

func TestSquareRoot(t *testing.T) {
	k := SquareRoot()
	res, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var iters [][]int64
	for i := 0; i < 500; i++ {
		iters = append(iters, []int64{rng.Int63n(1 << 24)})
	}
	iters = append(iters, []int64{0}, []int64{1}, []int64{(1 << 24) - 1}, []int64{4194304})
	outs := simCombinational(t, res, iters)
	for i, in := range iters {
		want := int64(math.Sqrt(float64(in[0])))
		// Guard against float rounding at the boundary.
		for want*want > in[0] {
			want--
		}
		for (want+1)*(want+1) <= in[0] {
			want++
		}
		if outs[i][0] != want {
			t.Fatalf("sqrt(%d) = %d, want %d", in[0], outs[i][0], want)
		}
	}
}

func TestMulAccKernel(t *testing.T) {
	k := MulAcc()
	res, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sim := dp.NewSim(res.Datapath)
	iters := [][]int64{
		{100, 200, 1}, {50, 50, 1}, {999, 999, 0}, {-30, 40, 1},
	}
	if _, err := sim.Run(iters); err != nil {
		t.Fatal(err)
	}
	want := int64(100*200 + 50*50 - 30*40)
	got := sim.State[res.Datapath.Feedbacks[0].State]
	if got != want {
		t.Fatalf("acc = %d, want %d", got, want)
	}
}

func TestCosLUT(t *testing.T) {
	k := Cos()
	res, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kernel.Roms) != 1 || !res.Kernel.Roms[0].Half {
		t.Fatal("cos ROM not marked half-wave")
	}
	var iters [][]int64
	for i := int64(0); i < 1024; i += 13 {
		iters = append(iters, []int64{i})
	}
	outs := simCombinational(t, res, iters)
	for i, in := range iters {
		want := int64(math.Round(32767 * math.Cos(2*math.Pi*float64(in[0])/1024)))
		if outs[i][0] != want {
			t.Fatalf("cos[%d] = %d, want %d", in[0], outs[i][0], want)
		}
	}
}

func TestArbitraryLUT(t *testing.T) {
	k := ArbitraryLUT()
	res, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var iters [][]int64
	for i := int64(0); i < 1024; i += 11 {
		iters = append(iters, []int64{i})
	}
	outs := simCombinational(t, res, iters)
	for i, in := range iters {
		x := in[0]
		want := cc.IntType{Bits: 16, Signed: true}.Wrap((x*x*37 + x*911 + 13) % 32768)
		if outs[i][0] != want {
			t.Fatalf("lut[%d] = %d, want %d", x, outs[i][0], want)
		}
	}
}

// runSystemKernel streams a looped kernel through the full Fig. 2 system
// and compares every output BRAM against the C interpreter.
func runSystemKernel(t *testing.T, k Kernel, inputs map[string][]int64, outputs []string) {
	t.Helper()
	res, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := netlist.NewSystem(res.Kernel, res.Datapath, netlist.Config{
		BusElems: k.BusElems,
		Scalars:  k.Scalars,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, vals := range inputs {
		if err := sys.LoadInput(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// Reference: C interpreter.
	file, err := cc.Parse(k.Source)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cc.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}
	ip := cc.NewInterp(info)
	for name, vals := range inputs {
		ip.SetArray(name, vals)
	}
	var args []int64
	if _, _, err := ip.Call(k.Func, args...); err != nil {
		t.Fatal(err)
	}
	for _, name := range outputs {
		got, err := sys.Output(name)
		if err != nil {
			t.Fatal(err)
		}
		want := ip.Arrays[name]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: %s[%d] = %d, want %d", k.Name, name, i, got[i], want[i])
			}
		}
	}
}

func TestFIRSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	in := make([]int64, 64)
	for i := range in {
		in[i] = rng.Int63n(255) - 128
	}
	runSystemKernel(t, FIR(), map[string][]int64{"A": in}, []string{"C"})
}

func TestDCTSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in := make([]int64, 64)
	for i := range in {
		in[i] = rng.Int63n(255) - 128
	}
	runSystemKernel(t, DCT(), map[string][]int64{"X": in}, []string{"Y"})
}

func TestWaveletSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	in := make([]int64, 32*32)
	for i := range in {
		in[i] = rng.Int63n(255) - 128
	}
	runSystemKernel(t, Wavelet(), map[string][]int64{"img": in},
		[]string{"LL", "LH", "HL", "HH"})
}

func TestDCTExploitsSymmetry(t *testing.T) {
	// The DCT data path must share butterfly terms: fewer multipliers
	// than the 64 a naive 8x8 matrix would need.
	res, err := DCT().Compile()
	if err != nil {
		t.Fatal(err)
	}
	muls := 0
	for _, op := range res.Datapath.Ops {
		if op.Instr.Op.String() == "mul" {
			muls++
		}
	}
	if muls > 24 {
		t.Errorf("DCT uses %d multipliers; symmetry should keep it <= 24", muls)
	}
}
