// Package bench defines the nine Table 1 kernels of the DATE'05 paper as
// C sources for the ROCCC reproduction, with the compile options each
// row used (full unrolling for the bit-level kernels, partial unrolling
// to match the memory bus for FIR, LUT-style multipliers for FIR/DCT).
package bench

import (
	"fmt"
	"math"
	"strings"

	"roccc/internal/core"
)

// Kernel is one Table 1 row's ROCCC-side definition.
type Kernel struct {
	Name    string
	Source  string
	Func    string
	Options core.Options
	// BusElems for the system/synthesis model (elements per cycle).
	BusElems int
	// Scalars for system simulation.
	Scalars map[string]int64
	// OutputsPerCycle the generated circuit sustains once streaming.
	OutputsPerCycle float64
	// HalfWaveRoms lists ROM names that instantiate the half-wave
	// sine/cosine IP trick (§5).
	HalfWaveRoms []string
	// LUTMultStyle applies the ISE "multiplier style LUT" option (§5:
	// "we set the synthesis option 'multiplier style' as 'LUT' for the
	// ROCCC-generated DCT and FIR").
	LUTMultStyle bool
}

// BitCorrelator counts the bits of an 8-bit input equal to a constant
// mask (Table 1 row 1). The loop over bits is fully unrolled.
func BitCorrelator() Kernel {
	src := `
void bit_correlator(uint8 x, uint4* count) {
	int i;
	uint4 c;
	c = 0;
	for (i = 0; i < 8; i++) {
		c = c + (((x >> i) & 1) == ((182 >> i) & 1));
	}
	*count = c;
}
`
	return Kernel{
		Name: "bit_correlator", Source: src, Func: "bit_correlator",
		Options:         core.Options{Optimize: true, UnrollAll: true, PeriodNs: 5},
		BusElems:        1,
		OutputsPerCycle: 1,
	}
}

// MulAcc is the 12-bit multiplier-accumulator with an nd (new data)
// control input, expressed with an if statement as §5 describes.
func MulAcc() Kernel {
	src := `
int25 acc;
void mul_acc(int12 a, int12 b, uint1 nd) {
	int i;
	acc = 0;
	for (i = 0; i < 1024; i++) {
		if (nd) { acc = acc + a * b; }
	}
}
`
	return Kernel{
		Name: "mul_acc", Source: src, Func: "mul_acc",
		Options:         core.Options{Optimize: true, PeriodNs: 5},
		BusElems:        1,
		Scalars:         map[string]int64{"a": 3, "b": 4, "nd": 1},
		OutputsPerCycle: 1,
	}
}

// UDiv is the 8-bit unsigned divider: a fully-unrolled restoring
// shift-subtract array.
func UDiv() Kernel {
	src := `
void udiv(uint8 num, uint8 den, uint8* quo) {
	int i;
	uint17 r;
	uint17 d;
	uint8 q;
	r = num;
	d = (uint17)den << 8;
	q = 0;
	for (i = 0; i < 8; i++) {
		r = r << 1;
		q = q << 1;
		if (r >= d) {
			r = r - d;
			q = q | 1;
		}
	}
	*quo = q;
}
`
	return Kernel{
		Name: "udiv", Source: src, Func: "udiv",
		Options:         core.Options{Optimize: true, UnrollAll: true, PeriodNs: 2.6},
		BusElems:        1,
		OutputsPerCycle: 1,
	}
}

// SquareRoot computes a 24-bit integer square root by the restoring
// bit-pair method, fully unrolled.
func SquareRoot() Kernel {
	src := `
void square_root(uint24 x, uint12* root) {
	int i;
	uint24 rem;
	uint24 r;
	rem = x;
	r = 0;
	for (i = 0; i < 12; i++) {
		if (rem >= r + (1 << (22 - 2*i))) {
			rem = rem - (r + (1 << (22 - 2*i)));
			r = (r >> 1) + (1 << (22 - 2*i));
		} else {
			r = r >> 1;
		}
	}
	*root = (uint12)r;
}
`
	return Kernel{
		Name: "square_root", Source: src, Func: "square_root",
		Options:         core.Options{Optimize: true, UnrollAll: true, PeriodNs: 3.4},
		BusElems:        1,
		OutputsPerCycle: 1,
	}
}

// cosTable renders the 1024-entry, 16-bit cosine table the cos kernel
// looks up (the content of the Xilinx sine/cosine IP).
func cosTable() string {
	var b strings.Builder
	b.WriteString("const int16 costab[1024] = {")
	for i := 0; i < 1024; i++ {
		v := int(math.Round(32767 * math.Cos(2*math.Pi*float64(i)/1024)))
		if i%16 == 0 {
			b.WriteString("\n\t")
		}
		fmt.Fprintf(&b, "%d", v)
		if i != 1023 {
			b.WriteString(", ")
		}
	}
	b.WriteString("};\n")
	return b.String()
}

// Cos is the 10-bit-in / 16-bit-out cosine lookup. ROCCC instantiates
// the existing half-wave IP component, so the row matches the IP
// exactly (§5).
func Cos() Kernel {
	src := cosTable() + `
void cos_lut(uint10 theta, int16* y) {
	*y = costab[theta];
}
`
	return Kernel{
		Name: "cos", Source: src, Func: "cos_lut",
		Options:         core.Options{Optimize: true, PeriodNs: 7},
		BusElems:        1,
		OutputsPerCycle: 1,
		HalfWaveRoms:    []string{"costab"},
	}
}

// ArbitraryLUT is a full 1024x16 ROM with the same ports as Cos; both
// sides instantiate the same ROM IP, so the row is 1.00/1.00 in Table 1.
func ArbitraryLUT() Kernel {
	var b strings.Builder
	b.WriteString("const int16 pdf[1024] = {")
	for i := 0; i < 1024; i++ {
		// An arbitrary (probability-distribution-like) content.
		v := (i*i*37 + i*911 + 13) % 32768
		if i%16 == 0 {
			b.WriteString("\n\t")
		}
		fmt.Fprintf(&b, "%d", v)
		if i != 1023 {
			b.WriteString(", ")
		}
	}
	b.WriteString("};\n")
	src := b.String() + `
void arb_lut(uint10 addr, int16* y) {
	*y = pdf[addr];
}
`
	return Kernel{
		Name: "arbitrary_lut", Source: src, Func: "arb_lut",
		Options:         core.Options{Optimize: true, PeriodNs: 7},
		BusElems:        1,
		OutputsPerCycle: 1,
	}
}

// FIR is the paper's pair of 5-tap 8-bit constant-coefficient filters on
// a 16-bit bus: the innermost loop is unrolled by two so the data path
// consumes two elements (one bus word) per cycle.
func FIR() Kernel {
	src := `
int8 A[64];
int16 C[60];
void fir() {
	int i;
	for (i = 0; i < 60; i = i + 1) {
		C[i] = (int16)((3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4]) >> 3);
	}
}
`
	return Kernel{
		Name: "fir", Source: src, Func: "fir",
		Options:         core.Options{Optimize: true, UnrollFactor: 2, PeriodNs: 5},
		BusElems:        2,
		OutputsPerCycle: 2,
		LUTMultStyle:    true,
	}
}

// dctConsts are cos((2n+1)kπ/16) scaled by 2048.
var dctConsts = [8]int{2048, 2009, 1892, 1703, 1448, 1138, 784, 400}

// DCT is the 1-D 8-point discrete cosine transform: 8-bit inputs,
// 19-bit outputs, eight results per clock (stride-8 windows), constant
// multipliers in LUT style, and the even/odd butterfly symmetry that CSE
// exploits ("Both ROCCC DCT and Xilinx IP DCT explore the symmetry
// within the cosine coefficients").
func DCT() Kernel {
	c := dctConsts
	src := fmt.Sprintf(`
int8 X[64];
int19 Y[64];
void dct() {
	int i;
	for (i = 0; i < 64; i = i + 8) {
		int s07; int s16; int s25; int s34;
		int d07; int d16; int d25; int d34;
		int e0; int e1; int o0; int o1;
		s07 = X[i] + X[i+7];
		s16 = X[i+1] + X[i+6];
		s25 = X[i+2] + X[i+5];
		s34 = X[i+3] + X[i+4];
		d07 = X[i] - X[i+7];
		d16 = X[i+1] - X[i+6];
		d25 = X[i+2] - X[i+5];
		d34 = X[i+3] - X[i+4];
		e0 = s07 + s34;
		e1 = s16 + s25;
		o0 = s07 - s34;
		o1 = s16 - s25;
		Y[i]   = (int19)((%d*(e0 + e1)) >> 4);
		Y[i+4] = (int19)((%d*(e0 - e1)) >> 4);
		Y[i+2] = (int19)((%d*o0 + %d*o1) >> 4);
		Y[i+6] = (int19)((%d*o0 - %d*o1) >> 4);
		Y[i+1] = (int19)((%d*d07 + %d*d16 + %d*d25 + %d*d34) >> 4);
		Y[i+3] = (int19)((%d*d07 - %d*d16 - %d*d25 - %d*d34) >> 4);
		Y[i+5] = (int19)((%d*d07 - %d*d16 + %d*d25 + %d*d34) >> 4);
		Y[i+7] = (int19)((%d*d07 - %d*d16 + %d*d25 - %d*d34) >> 4);
	}
}
`,
		c[4], c[4], c[2], c[6], c[6], c[2],
		c[1], c[3], c[5], c[7],
		c[3], c[7], c[1], c[5],
		c[5], c[1], c[7], c[3],
		c[7], c[5], c[3], c[1])
	return Kernel{
		Name: "dct", Source: src, Func: "dct",
		Options:         core.Options{Optimize: true, PeriodNs: 6},
		BusElems:        8,
		OutputsPerCycle: 8,
	}
}

// Wavelet is the 2-D (5,3) wavelet engine: a 5x5 window sliding by two
// in both dimensions over a 32x32 image, producing the LL/LH/HL/HH
// subband samples — "the standard lossless JPEG2000 compression
// transform", including address generator, smart buffer and data path.
func Wavelet() Kernel {
	// Vertical then horizontal application of low = [-1 2 6 2 -1]/8 and
	// high = [-1 2 -1]/2 (the (5,3) analysis pair).
	var b strings.Builder
	b.WriteString(`
int8 img[32][32];
int16 LL[14][14];
int16 LH[14][14];
int16 HL[14][14];
int16 HH[14][14];
void wavelet() {
	int i; int j;
	for (i = 0; i < 14; i++) {
		for (j = 0; j < 14; j++) {
`)
	// Vertical low (v0..v4) and high (w0..w4) intermediates per column.
	for k := 0; k < 5; k++ {
		fmt.Fprintf(&b, "\t\t\tint v%d; int w%d;\n", k, k)
	}
	for k := 0; k < 5; k++ {
		fmt.Fprintf(&b,
			"\t\t\tv%d = -img[2*i][2*j+%d] + 2*img[2*i+1][2*j+%d] + 6*img[2*i+2][2*j+%d] + 2*img[2*i+3][2*j+%d] - img[2*i+4][2*j+%d];\n",
			k, k, k, k, k, k)
		fmt.Fprintf(&b,
			"\t\t\tw%d = -img[2*i+1][2*j+%d] + 2*img[2*i+2][2*j+%d] - img[2*i+3][2*j+%d];\n",
			k, k, k, k)
	}
	b.WriteString(`
			LL[i][j] = (int16)((-v0 + 2*v1 + 6*v2 + 2*v3 - v4) >> 6);
			LH[i][j] = (int16)((-v1 + 2*v2 - v3) >> 4);
			HL[i][j] = (int16)((-w0 + 2*w1 + 6*w2 + 2*w3 - w4) >> 6);
			HH[i][j] = (int16)((-w1 + 2*w2 - w3) >> 4);
		}
	}
}
`)
	return Kernel{
		Name: "wavelet", Source: b.String(), Func: "wavelet",
		Options:         core.Options{Optimize: true, PeriodNs: 9},
		BusElems:        4,
		OutputsPerCycle: 4,
	}
}

// All returns the nine Table 1 kernels in the paper's row order.
func All() []Kernel {
	return []Kernel{
		BitCorrelator(), MulAcc(), UDiv(), SquareRoot(),
		Cos(), ArbitraryLUT(), FIR(), DCT(), Wavelet(),
	}
}

// Compile compiles the kernel with its row options and marks half-wave
// ROM instantiations.
func (k Kernel) Compile() (*core.Result, error) {
	res, err := core.CompileSource(k.Source, k.Func, k.Options)
	if err != nil {
		return nil, err
	}
	for _, name := range k.HalfWaveRoms {
		for _, r := range res.Kernel.Roms {
			if r.Name == name {
				r.Half = true
			}
		}
	}
	return res, nil
}
