package vm

import (
	"testing"
	"testing/quick"

	"roccc/internal/cc"
)

func TestOpcodeClassifiers(t *testing.T) {
	if !BTR.IsBranch() || !JMP.IsBranch() || ADD.IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	if !ADD.HasDst() || SNX.HasDst() || RET.HasDst() {
		t.Error("HasDst misclassifies")
	}
	if !SNX.IsCompute() || RET.IsCompute() {
		t.Error("IsCompute misclassifies")
	}
	for op := NOP; op <= PHI; op++ {
		if op.String() == "" {
			t.Errorf("opcode %d has no mnemonic", int(op))
		}
	}
}

func TestInstrClone(t *testing.T) {
	in := &Instr{Op: ADD, Dst: 3, Srcs: []Operand{R(1), R(2)}, Typ: cc.Int32}
	cp := in.Clone()
	cp.Srcs[0].Reg = 99
	if in.Srcs[0].Reg != 1 {
		t.Error("clone shares operand storage")
	}
	cp.Dst = 7
	if in.Dst != 3 {
		t.Error("clone shares header")
	}
}

func TestInstrUses(t *testing.T) {
	in := &Instr{Op: MUX, Srcs: []Operand{R(1), Imm(5), R(2)}}
	uses := in.Uses()
	if len(uses) != 2 || uses[0] != 1 || uses[1] != 2 {
		t.Errorf("uses = %v", uses)
	}
}

// TestEvalOpMatchesGo checks the arithmetic opcodes against native Go
// semantics at 32-bit width on random operands.
func TestEvalOpMatchesGo(t *testing.T) {
	mk := func(op Opcode) *Instr {
		return &Instr{Op: op, Dst: 3, Srcs: []Operand{R(1), R(2)}, Typ: cc.Int32}
	}
	f := func(a, b int32) bool {
		vals := map[Reg]int64{1: int64(a), 2: int64(b)}
		val := func(o Operand) int64 {
			if o.IsImm {
				return o.Imm
			}
			return vals[o.Reg]
		}
		checks := []struct {
			op   Opcode
			want int64
		}{
			{ADD, int64(a + b)},
			{SUB, int64(a - b)},
			{MUL, int64(a * b)},
			{AND, int64(a & b)},
			{IOR, int64(a | b)},
			{XOR, int64(a ^ b)},
		}
		for _, c := range checks {
			got, err := EvalOp(mk(c.op), val)
			if err != nil || got != c.want {
				return false
			}
		}
		// Comparisons.
		slt, _ := EvalOp(mk(SLT), val)
		if (slt == 1) != (a < b) {
			return false
		}
		seq, _ := EvalOp(mk(SEQ), val)
		return (seq == 1) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvalOpShiftSemantics(t *testing.T) {
	// Arithmetic vs logical right shift by operand signedness.
	signed := &Instr{Op: SHR, Dst: 3, Srcs: []Operand{R(1), Imm(4)},
		Typ: cc.Int32, OperandTyp: cc.IntType{Bits: 16, Signed: true}}
	vals := map[Reg]int64{1: -32768}
	val := func(o Operand) int64 {
		if o.IsImm {
			return o.Imm
		}
		return vals[o.Reg]
	}
	got, err := EvalOp(signed, val)
	if err != nil || got != -2048 {
		t.Errorf("arithmetic shift: %d (%v), want -2048", got, err)
	}
	unsigned := &Instr{Op: SHR, Dst: 3, Srcs: []Operand{R(1), Imm(4)},
		Typ: cc.UInt32, OperandTyp: cc.IntType{Bits: 16, Signed: false}}
	vals[1] = 0x8000
	got, err = EvalOp(unsigned, val)
	if err != nil || got != 0x800 {
		t.Errorf("logical shift: %d (%v), want 2048", got, err)
	}
}

func TestEvalOpDivByZero(t *testing.T) {
	in := &Instr{Op: DIV, Dst: 3, Srcs: []Operand{Imm(5), Imm(0)}, Typ: cc.Int32}
	if _, err := EvalOp(in, func(o Operand) int64 { return o.Imm }); err == nil {
		t.Error("division by zero not reported")
	}
}

func TestExecArityChecks(t *testing.T) {
	rt := &Routine{Name: "t", RegType: map[Reg]cc.IntType{}}
	if _, err := Exec(rt, []int64{1}, nil); err == nil {
		t.Error("input arity not checked")
	}
}

func TestOperandString(t *testing.T) {
	if R(3).String() != "vr3" || Imm(-4).String() != "#-4" {
		t.Errorf("operand rendering: %s %s", R(3), Imm(-4))
	}
}
