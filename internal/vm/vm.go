// Package vm is the reproduction's Machine-SUIF SUIFvm analogue: an
// assembly-like virtual-machine IR with virtual registers (§4.2.1). The
// data-path function exported by the front end is lowered to vm
// instructions, which then undergo CFG construction (package cfg),
// data-flow analysis (package dfa) and SSA conversion (package ssa)
// before data-path building (package dp).
package vm

import (
	"fmt"
	"strings"

	"roccc/internal/cc"
	"roccc/internal/hir"
)

// Opcode is a SUIFvm-style opcode, extended with the ROCCC-specific
// opcodes of §4.2.1: LPR (load previous), SNX (store next) and LUT.
type Opcode int

// Opcodes.
const (
	NOP Opcode = iota
	LDC        // dst = immediate
	MOV        // dst = a
	ADD        // dst = a + b
	SUB        // dst = a - b
	MUL        // dst = a * b
	DIV        // dst = a / b
	REM        // dst = a % b
	AND        // dst = a & b
	IOR        // dst = a | b
	XOR        // dst = a ^ b
	SHL        // dst = a << b
	SHR        // dst = a >> b (arithmetic/logical by a's signedness)
	NEG        // dst = -a
	NOT        // dst = ^a
	SEQ        // dst = a == b
	SNE        // dst = a != b
	SLT        // dst = a < b
	SLE        // dst = a <= b
	MUX        // dst = a != 0 ? b : c
	CVT        // dst = (type)a
	LUT        // dst = rom[a]
	LPR        // dst = feedback latch of State
	SNX        // feedback latch of State <- a
	BTR        // branch to Label if a != 0
	BFL        // branch to Label if a == 0
	JMP        // unconditional branch to Label
	LAB        // label pseudo-instruction
	RET        // routine end
	PHI        // SSA phi: dst = phi(src per predecessor)
)

var opcodeNames = map[Opcode]string{
	NOP: "nop", LDC: "ldc", MOV: "mov", ADD: "add", SUB: "sub", MUL: "mul",
	DIV: "div", REM: "rem", AND: "and", IOR: "ior", XOR: "xor", SHL: "shl",
	SHR: "shr", NEG: "neg", NOT: "not", SEQ: "seq", SNE: "sne", SLT: "slt",
	SLE: "sle", MUX: "mux", CVT: "cvt", LUT: "lut", LPR: "lpr", SNX: "snx",
	BTR: "btr", BFL: "bfl", JMP: "jmp", LAB: "lab", RET: "ret", PHI: "phi",
}

// String returns the mnemonic.
func (o Opcode) String() string { return opcodeNames[o] }

// IsBranch reports whether the opcode transfers control.
func (o Opcode) IsBranch() bool { return o == BTR || o == BFL || o == JMP }

// HasDst reports whether the opcode defines its Dst register.
func (o Opcode) HasDst() bool {
	switch o {
	case NOP, SNX, BTR, BFL, JMP, LAB, RET:
		return false
	}
	return true
}

// IsCompute reports whether the instruction computes a value placed in
// the data path (arithmetic/logic/copy/state/lookup).
func (o Opcode) IsCompute() bool {
	return o.HasDst() || o == SNX
}

// Reg is a virtual register number. Register 0 is invalid.
type Reg int

// String renders the register as vrN, matching the paper's figures.
func (r Reg) String() string { return fmt.Sprintf("vr%d", int(r)) }

// Operand is either a virtual register or an immediate constant.
type Operand struct {
	IsImm bool
	Reg   Reg
	Imm   int64
}

// R makes a register operand.
func R(r Reg) Operand { return Operand{Reg: r} }

// Imm makes an immediate operand.
func Imm(v int64) Operand { return Operand{IsImm: true, Imm: v} }

// String renders the operand.
func (o Operand) String() string {
	if o.IsImm {
		return fmt.Sprintf("#%d", o.Imm)
	}
	return o.Reg.String()
}

// Instr is a single vm instruction.
type Instr struct {
	Op    Opcode
	Dst   Reg
	Srcs  []Operand
	Typ   cc.IntType // result (or operand, for SNX/branches) type
	Label string     // branch target or label name
	Rom   *hir.Rom   // LUT table
	State *hir.Var   // LPR/SNX feedback state
	// OperandTyp records the left operand's type where it changes the
	// operation's semantics (SHR: arithmetic vs logical shift).
	OperandTyp cc.IntType
}

// Clone returns a copy of the instruction with its own operand slice,
// so rewrites on the copy do not affect the original.
func (in *Instr) Clone() *Instr {
	cp := *in
	cp.Srcs = append([]Operand(nil), in.Srcs...)
	return &cp
}

// ShiftOperandType resolves the left-operand type that fixes SHR
// semantics (arithmetic vs logical shift): OperandTyp where the lowerer
// recorded it, else the result type. The vm interpreter and the
// compiled data-path simulator both dispatch on it so the two layers
// cannot drift apart.
func (in *Instr) ShiftOperandType() cc.IntType {
	if in.OperandTyp.Bits != 0 {
		return in.OperandTyp
	}
	return in.Typ
}

// Uses returns the register operands read by the instruction.
func (in *Instr) Uses() []Reg {
	var rs []Reg
	for _, s := range in.Srcs {
		if !s.IsImm && s.Reg != 0 {
			rs = append(rs, s.Reg)
		}
	}
	return rs
}

// String renders the instruction in a readable assembly syntax.
func (in *Instr) String() string {
	switch in.Op {
	case LAB:
		return in.Label + ":"
	case JMP:
		return fmt.Sprintf("  jmp %s", in.Label)
	case BTR, BFL:
		return fmt.Sprintf("  %s %s, %s", in.Op, in.Srcs[0], in.Label)
	case RET:
		return "  ret"
	case SNX:
		return fmt.Sprintf("  snx %s <- %s", in.State.Name, in.Srcs[0])
	case LPR:
		return fmt.Sprintf("  %s = lpr %s", in.Dst, in.State.Name)
	case LUT:
		return fmt.Sprintf("  %s = lut %s[%s]", in.Dst, in.Rom.Name, in.Srcs[0])
	case LDC:
		return fmt.Sprintf("  %s = ldc %s : %s", in.Dst, in.Srcs[0], in.Typ)
	default:
		var parts []string
		for _, s := range in.Srcs {
			parts = append(parts, s.String())
		}
		return fmt.Sprintf("  %s = %s %s : %s", in.Dst, in.Op, strings.Join(parts, ", "), in.Typ)
	}
}

// Port binds a data-path function variable to a virtual register.
type Port struct {
	Var *hir.Var
	Reg Reg
}

// Routine is a lowered data-path function: a linear instruction stream
// with labels (CFG construction groups it into blocks).
type Routine struct {
	Name    string
	Instrs  []*Instr
	Inputs  []Port
	Outputs []Port
	NumRegs int
	RegType map[Reg]cc.IntType
}

// String renders the routine.
func (rt *Routine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "routine %s\n", rt.Name)
	for _, p := range rt.Inputs {
		fmt.Fprintf(&b, "  in  %s = %s : %s\n", p.Reg, p.Var.Name, p.Var.Type)
	}
	for _, p := range rt.Outputs {
		fmt.Fprintf(&b, "  out %s = %s : %s\n", p.Reg, p.Var.Name, p.Var.Type)
	}
	for _, in := range rt.Instrs {
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	return b.String()
}
