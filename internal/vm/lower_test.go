package vm

import (
	"math/rand"
	"testing"

	"roccc/internal/hir"
)

const ifElseSource = `
void if_else(int x1, int x2, int* x3, int* x4) {
	int a, c;
	c = x1 - x2;
	if (c < x2)
		a = x1*x1;
	else
		a = x1 * x2 + 3;
	c = c - a;
	*x3 = c;
	*x4 = a;
	return;
}
`

const accumSource = `
int A[32];
int sum;
void accum() {
	int i;
	sum = 0;
	for (i = 0; i < 32; i++) {
		sum = sum + A[i];
	}
}
`

// lowerKernel builds a kernel from source and lowers its data path.
func lowerKernel(t *testing.T, src, name string) (*hir.Kernel, *Routine) {
	t.Helper()
	p, f, err := hir.BuildFunc(src, name)
	if err != nil {
		t.Fatal(err)
	}
	k, err := hir.ExtractKernel(p, f)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Lower(k.DP)
	if err != nil {
		t.Fatal(err)
	}
	return k, rt
}

func TestLowerIfElse(t *testing.T) {
	k, rt := lowerKernel(t, ifElseSource, "if_else")
	if len(rt.Inputs) != 2 || len(rt.Outputs) != 2 {
		t.Fatalf("ports: %d in %d out", len(rt.Inputs), len(rt.Outputs))
	}
	// Branches must be present (if/else lowers to BFL/JMP).
	hasBranch := false
	for _, in := range rt.Instrs {
		if in.Op == BFL || in.Op == BTR {
			hasBranch = true
		}
	}
	if !hasBranch {
		t.Error("no conditional branch emitted")
	}
	// Exec must agree with the HIR evaluator on random inputs.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		x1 := rng.Int63n(1<<15) - 1<<14
		x2 := rng.Int63n(1<<15) - 1<<14
		env := hir.NewEnv()
		for i, p := range k.DP.Params {
			env.Vars[p] = []int64{x1, x2}[i]
		}
		if err := hir.RunFunc(k.DP, env); err != nil {
			t.Fatal(err)
		}
		got, err := Exec(rt, []int64{x1, x2}, map[*hir.Var]int64{})
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range k.DP.Outs {
			if got[i] != env.Vars[o] {
				t.Fatalf("trial %d (%d,%d): out[%d] vm=%d hir=%d", trial, x1, x2, i, got[i], env.Vars[o])
			}
		}
	}
}

func TestLowerAccumulatorFeedback(t *testing.T) {
	k, rt := lowerKernel(t, accumSource, "accum")
	// LPR and SNX must appear (Fig. 4 / §4.2.1).
	var hasLPR, hasSNX bool
	for _, in := range rt.Instrs {
		if in.Op == LPR {
			hasLPR = true
		}
		if in.Op == SNX {
			hasSNX = true
		}
	}
	if !hasLPR || !hasSNX {
		t.Fatalf("LPR=%v SNX=%v, want both", hasLPR, hasSNX)
	}
	fb := k.Feedback[0]
	state := map[*hir.Var]int64{fb.Var: fb.Init}
	var want int64
	for i := int64(1); i <= 10; i++ {
		outs, err := Exec(rt, []int64{i}, state)
		if err != nil {
			t.Fatal(err)
		}
		want += i
		if outs[len(outs)-1] != want {
			t.Errorf("iteration %d: out=%v, want %d", i, outs, want)
		}
	}
	if state[fb.Var] != want {
		t.Errorf("final state = %d, want %d", state[fb.Var], want)
	}
}

func TestLowerMux(t *testing.T) {
	src := `void f(int a, int b, int* o) { *o = a > b ? a : b; }`
	k, rt := lowerKernel(t, src, "f")
	_ = k
	hasMux := false
	for _, in := range rt.Instrs {
		if in.Op == MUX {
			hasMux = true
		}
	}
	if !hasMux {
		t.Fatal("ternary did not lower to MUX")
	}
	outs, err := Exec(rt, []int64{5, 9}, map[*hir.Var]int64{})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != 9 {
		t.Errorf("max(5,9) = %d", outs[0])
	}
}

func TestLowerLUT(t *testing.T) {
	src := `
const int16 tab[8] = {1, 2, 4, 8, 16, 32, 64, 128};
void f(uint3 i, int16* o) { *o = tab[i]; }
`
	_, rt := lowerKernel(t, src, "f")
	hasLUT := false
	for _, in := range rt.Instrs {
		if in.Op == LUT {
			hasLUT = true
		}
	}
	if !hasLUT {
		t.Fatal("ROM access did not lower to LUT")
	}
	for i := int64(0); i < 8; i++ {
		outs, err := Exec(rt, []int64{i}, map[*hir.Var]int64{})
		if err != nil {
			t.Fatal(err)
		}
		if outs[0] != 1<<uint(i) {
			t.Errorf("tab[%d] = %d", i, outs[0])
		}
	}
}

func TestLowerShiftSemantics(t *testing.T) {
	src := `void f(uint8 a, int8 b, uint8* o1, int8* o2) { *o1 = a >> 1; *o2 = b >> 1; }`
	_, rt := lowerKernel(t, src, "f")
	outs, err := Exec(rt, []int64{0x80, -128}, map[*hir.Var]int64{})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != 0x40 {
		t.Errorf("logical shift: %d, want 64", outs[0])
	}
	if outs[1] != -64 {
		t.Errorf("arithmetic shift: %d, want -64", outs[1])
	}
}

func TestLowerLogicalOps(t *testing.T) {
	src := `void f(int a, int b, int* o) { *o = (a > 0 && b > 0) || (a < -5); }`
	_, rt := lowerKernel(t, src, "f")
	cases := []struct{ a, b, want int64 }{
		{1, 1, 1}, {1, -1, 0}, {-1, 1, 0}, {-10, -10, 1}, {0, 0, 0},
	}
	for _, tc := range cases {
		outs, err := Exec(rt, []int64{tc.a, tc.b}, map[*hir.Var]int64{})
		if err != nil {
			t.Fatal(err)
		}
		if outs[0] != tc.want {
			t.Errorf("f(%d,%d) = %d, want %d", tc.a, tc.b, outs[0], tc.want)
		}
	}
}

func TestRoutineString(t *testing.T) {
	_, rt := lowerKernel(t, ifElseSource, "if_else")
	s := rt.String()
	if len(s) == 0 {
		t.Fatal("empty printout")
	}
}
