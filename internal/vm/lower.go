package vm

import (
	"fmt"

	"roccc/internal/cc"
	"roccc/internal/hir"
)

// Lower translates the exported data-path function (straight-line +
// if/else scalar HIR) into a vm Routine. Each HIR variable is bound to
// one virtual register (SSA conversion renames them later); expression
// temporaries get fresh registers.
func Lower(f *hir.Func) (*Routine, error) {
	lo := &lowerer{
		rt:   &Routine{Name: f.Name, RegType: map[Reg]cc.IntType{}},
		bind: map[*hir.Var]Reg{},
	}
	for _, p := range f.Params {
		r := lo.newReg(p.Type)
		lo.bind[p] = r
		lo.rt.Inputs = append(lo.rt.Inputs, Port{Var: p, Reg: r})
	}
	if err := lo.stmts(f.Body); err != nil {
		return nil, err
	}
	for _, o := range f.Outs {
		r, ok := lo.bind[o]
		if !ok {
			return nil, fmt.Errorf("vm: output %s is never assigned", o.Name)
		}
		// Outputs get dedicated registers so the exit copy is explicit
		// ("All the input and output operands are copied to the entry or
		// exit of the data flow", §4.2.2).
		or := lo.newReg(o.Type)
		lo.emit(&Instr{Op: MOV, Dst: or, Srcs: []Operand{R(r)}, Typ: o.Type})
		lo.rt.Outputs = append(lo.rt.Outputs, Port{Var: o, Reg: or})
	}
	lo.emit(&Instr{Op: RET})
	return lo.rt, nil
}

type lowerer struct {
	rt        *Routine
	bind      map[*hir.Var]Reg
	nextLabel int
	// target, when set, is consumed by the root expression op so the
	// value lands directly in the assigned variable's register (depth
	// tracks expression nesting).
	target Reg
	depth  int
}

func (lo *lowerer) newReg(t cc.IntType) Reg {
	lo.rt.NumRegs++
	r := Reg(lo.rt.NumRegs)
	lo.rt.RegType[r] = t
	return r
}

// newDst picks the destination register for an operation: the pending
// assignment target at expression root, a fresh register otherwise.
func (lo *lowerer) newDst(t cc.IntType) Reg {
	if lo.depth == 1 && lo.target != 0 {
		r := lo.target
		lo.target = 0
		return r
	}
	return lo.newReg(t)
}

// exprInto lowers e so its root operation defines dst directly. It
// reports false (emitting nothing) when e is a leaf or its type differs
// from the variable's, in which case the caller materializes a MOV.
func (lo *lowerer) exprInto(e hir.Expr, dst Reg, typ cc.IntType) (bool, error) {
	switch e.(type) {
	case *hir.Bin, *hir.Un, *hir.Sel, *hir.Cast, *hir.LutRef, *hir.LoadPrev:
		if e.Type() != typ {
			return false, nil
		}
	default:
		return false, nil
	}
	lo.target = dst
	op, err := lo.expr(e)
	lo.target = 0
	if err != nil {
		return false, err
	}
	if op.IsImm || op.Reg != dst {
		// The root folded to something unexpected; fall back to a MOV.
		lo.emit(&Instr{Op: MOV, Dst: dst, Srcs: []Operand{op}, Typ: typ})
	}
	return true, nil
}

func (lo *lowerer) emit(in *Instr) { lo.rt.Instrs = append(lo.rt.Instrs, in) }

func (lo *lowerer) label(prefix string) string {
	lo.nextLabel++
	return fmt.Sprintf("%s%d", prefix, lo.nextLabel)
}

func (lo *lowerer) stmts(list []hir.Stmt) error {
	for _, s := range list {
		if err := lo.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lo *lowerer) stmt(s hir.Stmt) error {
	switch s := s.(type) {
	case *hir.Assign:
		dst, ok := lo.bind[s.Dst]
		if !ok {
			dst = lo.newReg(s.Dst.Type)
			lo.bind[s.Dst] = dst
		}
		// When the right-hand side is a single operation of the same
		// type, the op writes the variable's register directly; a MOV is
		// only materialized for leaf copies and type-changing roots.
		if in, err := lo.exprInto(s.Src, dst, s.Dst.Type); err != nil {
			return err
		} else if in {
			return nil
		}
		op, err := lo.expr(s.Src)
		if err != nil {
			return err
		}
		lo.emit(&Instr{Op: MOV, Dst: dst, Srcs: []Operand{op}, Typ: s.Dst.Type})
		return nil
	case *hir.StoreNext:
		op, err := lo.expr(s.Src)
		if err != nil {
			return err
		}
		lo.emit(&Instr{Op: SNX, Srcs: []Operand{op}, Typ: s.Var.Type, State: s.Var})
		return nil
	case *hir.If:
		cond, err := lo.expr(s.Cond)
		if err != nil {
			return err
		}
		elseLab := lo.label("else")
		endLab := lo.label("end")
		lo.emit(&Instr{Op: BFL, Srcs: []Operand{cond}, Typ: s.Cond.Type(), Label: elseLab})
		if err := lo.stmts(s.Then); err != nil {
			return err
		}
		lo.emit(&Instr{Op: JMP, Label: endLab})
		lo.emit(&Instr{Op: LAB, Label: elseLab})
		if err := lo.stmts(s.Else); err != nil {
			return err
		}
		lo.emit(&Instr{Op: LAB, Label: endLab})
		return nil
	default:
		return fmt.Errorf("vm: cannot lower %T (data-path functions are loop- and memory-free)", s)
	}
}

var binOpcodes = map[hir.Op]Opcode{
	hir.OpAdd: ADD, hir.OpSub: SUB, hir.OpMul: MUL, hir.OpDiv: DIV,
	hir.OpRem: REM, hir.OpAnd: AND, hir.OpOr: IOR, hir.OpXor: XOR,
	hir.OpShl: SHL, hir.OpShr: SHR, hir.OpEq: SEQ, hir.OpNe: SNE,
	hir.OpLt: SLT, hir.OpLe: SLE,
}

func (lo *lowerer) expr(e hir.Expr) (Operand, error) {
	lo.depth++
	defer func() { lo.depth-- }()
	switch e := e.(type) {
	case *hir.Const:
		return Imm(e.Val), nil
	case *hir.VarRef:
		r, ok := lo.bind[e.Var]
		if !ok {
			// Read of a never-written local: materialize zero.
			dst := lo.newReg(e.Var.Type)
			lo.emit(&Instr{Op: LDC, Dst: dst, Srcs: []Operand{Imm(0)}, Typ: e.Var.Type})
			lo.bind[e.Var] = dst
			return R(dst), nil
		}
		return R(r), nil
	case *hir.LoadPrev:
		dst := lo.newDst(e.Var.Type)
		lo.emit(&Instr{Op: LPR, Dst: dst, Typ: e.Var.Type, State: e.Var})
		return R(dst), nil
	case *hir.LutRef:
		idx, err := lo.expr(e.Idx)
		if err != nil {
			return Operand{}, err
		}
		dst := lo.newDst(e.Rom.Elem)
		lo.emit(&Instr{Op: LUT, Dst: dst, Srcs: []Operand{idx}, Typ: e.Rom.Elem, Rom: e.Rom})
		return R(dst), nil
	case *hir.Cast:
		x, err := lo.expr(e.X)
		if err != nil {
			return Operand{}, err
		}
		dst := lo.newDst(e.Typ)
		lo.emit(&Instr{Op: CVT, Dst: dst, Srcs: []Operand{x}, Typ: e.Typ})
		return R(dst), nil
	case *hir.Un:
		x, err := lo.expr(e.X)
		if err != nil {
			return Operand{}, err
		}
		dst := lo.newDst(e.Typ)
		switch e.Op {
		case hir.OpNeg:
			lo.emit(&Instr{Op: NEG, Dst: dst, Srcs: []Operand{x}, Typ: e.Typ})
		case hir.OpNot:
			lo.emit(&Instr{Op: NOT, Dst: dst, Srcs: []Operand{x}, Typ: e.Typ})
		case hir.OpLNot:
			lo.emit(&Instr{Op: SEQ, Dst: dst, Srcs: []Operand{x, Imm(0)}, Typ: cc.UInt1})
		default:
			return Operand{}, fmt.Errorf("vm: unary %s", e.Op)
		}
		return R(dst), nil
	case *hir.Bin:
		return lo.bin(e)
	case *hir.Sel:
		c, err := lo.expr(e.Cond)
		if err != nil {
			return Operand{}, err
		}
		t, err := lo.expr(e.Then)
		if err != nil {
			return Operand{}, err
		}
		f, err := lo.expr(e.Else)
		if err != nil {
			return Operand{}, err
		}
		dst := lo.newDst(e.Typ)
		lo.emit(&Instr{Op: MUX, Dst: dst, Srcs: []Operand{c, t, f}, Typ: e.Typ})
		return R(dst), nil
	default:
		return Operand{}, fmt.Errorf("vm: cannot lower expression %T", e)
	}
}

func (lo *lowerer) bin(e *hir.Bin) (Operand, error) {
	// Logical && / || evaluate both sides in hardware and operate on
	// booleanized (x != 0) values.
	if e.Op == hir.OpLAnd || e.Op == hir.OpLOr {
		xb, err := lo.boolize(e.X)
		if err != nil {
			return Operand{}, err
		}
		yb, err := lo.boolize(e.Y)
		if err != nil {
			return Operand{}, err
		}
		op := AND
		if e.Op == hir.OpLOr {
			op = IOR
		}
		dst := lo.newDst(cc.UInt1)
		lo.emit(&Instr{Op: op, Dst: dst, Srcs: []Operand{xb, yb}, Typ: cc.UInt1})
		return R(dst), nil
	}
	x, err := lo.expr(e.X)
	if err != nil {
		return Operand{}, err
	}
	y, err := lo.expr(e.Y)
	if err != nil {
		return Operand{}, err
	}
	switch e.Op {
	case hir.OpGt: // a > b  ==  b < a
		dst := lo.newDst(cc.UInt1)
		lo.emit(&Instr{Op: SLT, Dst: dst, Srcs: []Operand{y, x}, Typ: cc.UInt1})
		return R(dst), nil
	case hir.OpGe: // a >= b  ==  b <= a
		dst := lo.newDst(cc.UInt1)
		lo.emit(&Instr{Op: SLE, Dst: dst, Srcs: []Operand{y, x}, Typ: cc.UInt1})
		return R(dst), nil
	}
	op, ok := binOpcodes[e.Op]
	if !ok {
		return Operand{}, fmt.Errorf("vm: binary %s", e.Op)
	}
	typ := e.Typ
	if e.Op.IsComparison() {
		typ = cc.UInt1
	}
	dst := lo.newDst(typ)
	in := &Instr{Op: op, Dst: dst, Srcs: []Operand{x, y}, Typ: typ}
	if op == SLT || op == SLE || op == SHR {
		// Comparisons and right shifts need the operand signedness;
		// record the left operand type on the instruction.
		in.Typ = typ
		in.OperandTyp = e.X.Type()
	}
	lo.emit(in)
	return R(dst), nil
}

// boolize emits x != 0 unless x is already 1-bit.
func (lo *lowerer) boolize(e hir.Expr) (Operand, error) {
	x, err := lo.expr(e)
	if err != nil {
		return Operand{}, err
	}
	if e.Type() == cc.UInt1 {
		return x, nil
	}
	dst := lo.newReg(cc.UInt1)
	lo.emit(&Instr{Op: SNE, Dst: dst, Srcs: []Operand{x, Imm(0)}, Typ: cc.UInt1})
	return R(dst), nil
}
