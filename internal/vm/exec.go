package vm

import (
	"fmt"

	"roccc/internal/hir"
)

// Exec interprets a Routine: one invocation corresponds to one loop
// iteration of the kernel. state holds the feedback latches: LPR reads
// the incoming value, SNX stages the value for the next invocation;
// staged values are committed when the routine returns. Outputs are
// returned in Routine.Outputs order.
//
// Exec is the reference semantics of the vm layer, used to validate
// lowering, SSA conversion and data-path building against the HIR
// evaluator.
func Exec(rt *Routine, inputs []int64, state map[*hir.Var]int64) ([]int64, error) {
	if len(inputs) != len(rt.Inputs) {
		return nil, fmt.Errorf("vm: exec: %d inputs provided, routine has %d", len(inputs), len(rt.Inputs))
	}
	regs := make(map[Reg]int64, rt.NumRegs)
	for i, p := range rt.Inputs {
		regs[p.Reg] = p.Var.Type.Wrap(inputs[i])
	}
	next := map[*hir.Var]int64{}

	labels := map[string]int{}
	for i, in := range rt.Instrs {
		if in.Op == LAB {
			labels[in.Label] = i
		}
	}
	val := func(o Operand) int64 {
		if o.IsImm {
			return o.Imm
		}
		return regs[o.Reg]
	}
	steps := 0
	for pc := 0; pc < len(rt.Instrs); pc++ {
		steps++
		if steps > 1_000_000 {
			return nil, fmt.Errorf("vm: exec: step limit exceeded")
		}
		in := rt.Instrs[pc]
		switch in.Op {
		case NOP, LAB:
		case RET:
			pc = len(rt.Instrs)
		case JMP:
			ix, ok := labels[in.Label]
			if !ok {
				return nil, fmt.Errorf("vm: exec: unknown label %q", in.Label)
			}
			pc = ix
		case BTR, BFL:
			taken := val(in.Srcs[0]) != 0
			if in.Op == BFL {
				taken = !taken
			}
			if taken {
				ix, ok := labels[in.Label]
				if !ok {
					return nil, fmt.Errorf("vm: exec: unknown label %q", in.Label)
				}
				pc = ix
			}
		case SNX:
			next[in.State] = in.Typ.Wrap(val(in.Srcs[0]))
		case LPR:
			regs[in.Dst] = state[in.State]
		case LUT:
			ix := val(in.Srcs[0])
			if ix < 0 || ix >= int64(in.Rom.Size) {
				return nil, fmt.Errorf("vm: exec: LUT index %d out of range for %s", ix, in.Rom.Name)
			}
			regs[in.Dst] = in.Rom.Content[ix]
		default:
			v, err := EvalOp(in, val)
			if err != nil {
				return nil, err
			}
			regs[in.Dst] = v
		}
	}
	for v, nv := range next {
		state[v] = nv
	}
	outs := make([]int64, len(rt.Outputs))
	for i, p := range rt.Outputs {
		outs[i] = regs[p.Reg]
	}
	return outs, nil
}

// EvalOp computes a pure compute opcode over operand values supplied by
// val. It is shared by the vm interpreter and the netlist simulator so
// both layers have identical arithmetic.
func EvalOp(in *Instr, val func(Operand) int64) (int64, error) {
	t := in.Typ
	a := int64(0)
	b := int64(0)
	c := int64(0)
	if len(in.Srcs) > 0 {
		a = val(in.Srcs[0])
	}
	if len(in.Srcs) > 1 {
		b = val(in.Srcs[1])
	}
	if len(in.Srcs) > 2 {
		c = val(in.Srcs[2])
	}
	switch in.Op {
	case LDC, MOV, CVT:
		return t.Wrap(a), nil
	case ADD:
		return t.Wrap(a + b), nil
	case SUB:
		return t.Wrap(a - b), nil
	case MUL:
		return t.Wrap(a * b), nil
	case DIV:
		if b == 0 {
			return 0, fmt.Errorf("vm: division by zero")
		}
		return t.Wrap(a / b), nil
	case REM:
		if b == 0 {
			return 0, fmt.Errorf("vm: modulo by zero")
		}
		return t.Wrap(a % b), nil
	case AND:
		return t.Wrap(a & b), nil
	case IOR:
		return t.Wrap(a | b), nil
	case XOR:
		return t.Wrap(a ^ b), nil
	case SHL:
		return t.Wrap(a << uint(b&63)), nil
	case SHR:
		ot := in.ShiftOperandType()
		if !ot.Signed {
			ua := uint64(a) & (uint64(1)<<uint(ot.Bits) - 1)
			return t.Wrap(int64(ua >> uint(b&63))), nil
		}
		return t.Wrap(a >> uint(b&63)), nil
	case NEG:
		return t.Wrap(-a), nil
	case NOT:
		return t.Wrap(^a), nil
	case SEQ:
		return boolVal(a == b), nil
	case SNE:
		return boolVal(a != b), nil
	case SLT:
		return boolVal(a < b), nil
	case SLE:
		return boolVal(a <= b), nil
	case MUX:
		if a != 0 {
			return t.Wrap(b), nil
		}
		return t.Wrap(c), nil
	}
	return 0, fmt.Errorf("vm: EvalOp: unsupported opcode %s", in.Op)
}

func boolVal(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
