package ctrl

import (
	"testing"

	"roccc/internal/hir"
)

func TestReadGenSequential(t *testing.T) {
	g := NewReadGen(10, 3)
	var got []int
	for !g.Done() {
		got = append(got, g.Next()...)
	}
	if len(got) != 10 {
		t.Fatalf("issued %d addresses, want 10", len(got))
	}
	for i, a := range got {
		if a != i {
			t.Errorf("address %d = %d", i, a)
		}
	}
	if g.Next() != nil {
		t.Error("Next after done must return nil")
	}
	g.Reset()
	if g.Done() {
		t.Error("reset generator reports done")
	}
}

func TestReadGenBusBatches(t *testing.T) {
	g := NewReadGen(8, 4)
	if n := len(g.Next()); n != 4 {
		t.Errorf("first batch = %d", n)
	}
	if n := len(g.Next()); n != 4 {
		t.Errorf("second batch = %d", n)
	}
	if !g.Done() {
		t.Error("not done after 8 addresses")
	}
}

func nest1D(iv *hir.Var, from, to, step int64) *hir.LoopNest {
	return &hir.LoopNest{
		Vars: []*hir.Var{iv},
		From: []int64{from},
		To:   []int64{to},
		Step: []int64{step},
	}
}

func TestWriteGen1D(t *testing.T) {
	iv := &hir.Var{Name: "i", Kind: hir.VarLoop}
	arr := &hir.Array{Name: "C", Dims: []int{20}}
	acc := &hir.WriteAccess{
		Arr:  arr,
		Dims: []hir.WindowDim{{Var: iv, Scale: 1}},
		Elems: []hir.WindowElem{
			{Offsets: []int64{0}, Elem: &hir.Var{Name: "t0"}},
		},
	}
	g, err := NewWriteGen(acc, nest1D(iv, 0, 17, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 17; i++ {
		addrs := g.Next()
		if len(addrs) != 1 || addrs[0] != i {
			t.Fatalf("iteration %d: addrs = %v", i, addrs)
		}
	}
	if !g.Done() || g.Next() != nil {
		t.Error("generator not exhausted after the nest")
	}
}

func TestWriteGenStride8(t *testing.T) {
	iv := &hir.Var{Name: "i", Kind: hir.VarLoop}
	arr := &hir.Array{Name: "Y", Dims: []int{64}}
	elems := make([]hir.WindowElem, 8)
	for k := range elems {
		elems[k] = hir.WindowElem{Offsets: []int64{int64(k)}, Elem: &hir.Var{Name: "t"}}
	}
	acc := &hir.WriteAccess{Arr: arr, Dims: []hir.WindowDim{{Var: iv, Scale: 1}}, Elems: elems}
	g, err := NewWriteGen(acc, nest1D(iv, 0, 64, 8))
	if err != nil {
		t.Fatal(err)
	}
	for blk := 0; blk < 8; blk++ {
		addrs := g.Next()
		for k, a := range addrs {
			if a != blk*8+k {
				t.Fatalf("block %d elem %d: addr %d", blk, k, a)
			}
		}
	}
	if !g.Done() {
		t.Error("not done")
	}
}

func TestWriteGen2D(t *testing.T) {
	i := &hir.Var{Name: "i", Kind: hir.VarLoop}
	j := &hir.Var{Name: "j", Kind: hir.VarLoop}
	nest := &hir.LoopNest{
		Vars: []*hir.Var{i, j},
		From: []int64{0, 0},
		To:   []int64{3, 4},
		Step: []int64{1, 1},
	}
	arr := &hir.Array{Name: "out", Dims: []int{3, 4}}
	acc := &hir.WriteAccess{
		Arr:  arr,
		Dims: []hir.WindowDim{{Var: i, Scale: 1}, {Var: j, Scale: 1}},
		Elems: []hir.WindowElem{
			{Offsets: []int64{0, 0}, Elem: &hir.Var{Name: "t"}},
		},
	}
	g, err := NewWriteGen(acc, nest)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for !g.Done() {
		addrs := g.Next()
		if addrs == nil {
			break
		}
		if addrs[0] != want {
			t.Fatalf("addr = %d, want %d (row-major order)", addrs[0], want)
		}
		want++
	}
	if want != 12 {
		t.Errorf("iterations = %d, want 12", want)
	}
}

func TestWriteGenScaled(t *testing.T) {
	// wavelet-style: out[i][j] with stride-2 scale on a nest over 14x14.
	i := &hir.Var{Name: "i", Kind: hir.VarLoop}
	arr := &hir.Array{Name: "LL", Dims: []int{14}}
	acc := &hir.WriteAccess{
		Arr:   arr,
		Dims:  []hir.WindowDim{{Var: i, Scale: 1}},
		Elems: []hir.WindowElem{{Offsets: []int64{0}, Elem: &hir.Var{Name: "t"}}},
	}
	g, err := NewWriteGen(acc, nest1D(i, 0, 14, 1))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for !g.Done() {
		if g.Next() == nil {
			break
		}
		n++
	}
	if n != 14 {
		t.Errorf("n = %d", n)
	}
}

func TestWriteGenRejectsUnknownVar(t *testing.T) {
	iv := &hir.Var{Name: "i", Kind: hir.VarLoop}
	other := &hir.Var{Name: "x"}
	arr := &hir.Array{Name: "C", Dims: []int{8}}
	acc := &hir.WriteAccess{
		Arr:   arr,
		Dims:  []hir.WindowDim{{Var: other, Scale: 1}},
		Elems: []hir.WindowElem{{Offsets: []int64{0}, Elem: &hir.Var{Name: "t"}}},
	}
	if _, err := NewWriteGen(acc, nest1D(iv, 0, 8, 1)); err == nil {
		t.Error("unknown index variable not rejected")
	}
}

func TestControllerFSM(t *testing.T) {
	c := NewController(3, 2)
	if c.StateNow() != Idle {
		t.Error("controller must start idle")
	}
	// Window not ready: fill, no feed.
	if c.Tick(false) {
		t.Error("fed without a ready window")
	}
	if c.StateNow() != Fill {
		t.Errorf("state = %s, want fill", c.StateNow())
	}
	// Feed three iterations.
	for i := 0; i < 3; i++ {
		if !c.Tick(true) {
			t.Fatalf("iteration %d not fed", i)
		}
	}
	if c.Fed() != 3 {
		t.Errorf("fed = %d", c.Fed())
	}
	// No more feeds.
	if c.Tick(true) {
		t.Error("fed beyond the iteration count")
	}
	if c.StateNow() != Drain {
		t.Errorf("state = %s, want drain", c.StateNow())
	}
	for i := 0; i < 3; i++ {
		c.Collect()
	}
	if !c.Finished() {
		t.Errorf("state = %s, want done", c.StateNow())
	}
}

func TestControllerStateStrings(t *testing.T) {
	for _, s := range []State{Idle, Fill, Stream, Drain, DoneSt} {
		if s.String() == "?" {
			t.Errorf("state %d has no name", s)
		}
	}
}

// TestGeneratorResetAndNextInto pins the reuse surface the netlist
// cycle loop depends on: NextInto fills caller buffers without
// allocating, and Reset rewinds both generator kinds and the controller
// for an identical second run.
func TestGeneratorResetAndNextInto(t *testing.T) {
	rg := NewReadGen(7, 3)
	buf := make([]int, 3)
	var got []int
	for {
		batch := rg.NextInto(buf)
		if batch == nil {
			break
		}
		got = append(got, batch...)
	}
	if len(got) != 7 {
		t.Fatalf("issued %d addresses, want 7", len(got))
	}

	iv := &hir.Var{Name: "i", Kind: hir.VarLoop}
	arr := &hir.Array{Name: "C", Dims: []int{8}}
	acc := &hir.WriteAccess{
		Arr:   arr,
		Dims:  []hir.WindowDim{{Var: iv, Scale: 1}},
		Elems: []hir.WindowElem{{Offsets: []int64{0}, Elem: &hir.Var{Name: "t"}}},
	}
	wg, err := NewWriteGen(acc, nest1D(iv, 0, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	collect := func() []int {
		dst := make([]int, 1)
		var addrs []int
		for {
			a := wg.NextInto(dst)
			if a == nil {
				break
			}
			addrs = append(addrs, a[0])
		}
		return addrs
	}
	first := collect()
	if len(first) != 8 || !wg.Done() {
		t.Fatalf("first pass: %v", first)
	}
	wg.Reset()
	if wg.Done() {
		t.Fatal("Reset generator reports done")
	}
	second := collect()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("address %d after Reset = %d, want %d", i, second[i], first[i])
		}
	}

	c := NewController(2, 1)
	c.Tick(true)
	c.Tick(true)
	c.Collect()
	c.Collect()
	if !c.Finished() {
		t.Fatal("controller not finished")
	}
	c.Reset()
	if c.StateNow() != Idle || c.Fed() != 0 || c.Collected() != 0 || c.Finished() {
		t.Fatal("controller Reset did not return to idle")
	}
}
