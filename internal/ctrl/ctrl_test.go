package ctrl

import (
	"testing"

	"roccc/internal/hir"
)

func TestReadGenSequential(t *testing.T) {
	g := NewReadGen(10, 3)
	var got []int
	for !g.Done() {
		got = append(got, g.Next()...)
	}
	if len(got) != 10 {
		t.Fatalf("issued %d addresses, want 10", len(got))
	}
	for i, a := range got {
		if a != i {
			t.Errorf("address %d = %d", i, a)
		}
	}
	if g.Next() != nil {
		t.Error("Next after done must return nil")
	}
	g.Reset()
	if g.Done() {
		t.Error("reset generator reports done")
	}
}

func TestReadGenBusBatches(t *testing.T) {
	g := NewReadGen(8, 4)
	if n := len(g.Next()); n != 4 {
		t.Errorf("first batch = %d", n)
	}
	if n := len(g.Next()); n != 4 {
		t.Errorf("second batch = %d", n)
	}
	if !g.Done() {
		t.Error("not done after 8 addresses")
	}
}

func nest1D(iv *hir.Var, from, to, step int64) *hir.LoopNest {
	return &hir.LoopNest{
		Vars: []*hir.Var{iv},
		From: []int64{from},
		To:   []int64{to},
		Step: []int64{step},
	}
}

func TestWriteGen1D(t *testing.T) {
	iv := &hir.Var{Name: "i", Kind: hir.VarLoop}
	arr := &hir.Array{Name: "C", Dims: []int{20}}
	acc := &hir.WriteAccess{
		Arr:  arr,
		Dims: []hir.WindowDim{{Var: iv, Scale: 1}},
		Elems: []hir.WindowElem{
			{Offsets: []int64{0}, Elem: &hir.Var{Name: "t0"}},
		},
	}
	g, err := NewWriteGen(acc, nest1D(iv, 0, 17, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 17; i++ {
		addrs := g.Next()
		if len(addrs) != 1 || addrs[0] != i {
			t.Fatalf("iteration %d: addrs = %v", i, addrs)
		}
	}
	if !g.Done() || g.Next() != nil {
		t.Error("generator not exhausted after the nest")
	}
}

func TestWriteGenStride8(t *testing.T) {
	iv := &hir.Var{Name: "i", Kind: hir.VarLoop}
	arr := &hir.Array{Name: "Y", Dims: []int{64}}
	elems := make([]hir.WindowElem, 8)
	for k := range elems {
		elems[k] = hir.WindowElem{Offsets: []int64{int64(k)}, Elem: &hir.Var{Name: "t"}}
	}
	acc := &hir.WriteAccess{Arr: arr, Dims: []hir.WindowDim{{Var: iv, Scale: 1}}, Elems: elems}
	g, err := NewWriteGen(acc, nest1D(iv, 0, 64, 8))
	if err != nil {
		t.Fatal(err)
	}
	for blk := 0; blk < 8; blk++ {
		addrs := g.Next()
		for k, a := range addrs {
			if a != blk*8+k {
				t.Fatalf("block %d elem %d: addr %d", blk, k, a)
			}
		}
	}
	if !g.Done() {
		t.Error("not done")
	}
}

func TestWriteGen2D(t *testing.T) {
	i := &hir.Var{Name: "i", Kind: hir.VarLoop}
	j := &hir.Var{Name: "j", Kind: hir.VarLoop}
	nest := &hir.LoopNest{
		Vars: []*hir.Var{i, j},
		From: []int64{0, 0},
		To:   []int64{3, 4},
		Step: []int64{1, 1},
	}
	arr := &hir.Array{Name: "out", Dims: []int{3, 4}}
	acc := &hir.WriteAccess{
		Arr:  arr,
		Dims: []hir.WindowDim{{Var: i, Scale: 1}, {Var: j, Scale: 1}},
		Elems: []hir.WindowElem{
			{Offsets: []int64{0, 0}, Elem: &hir.Var{Name: "t"}},
		},
	}
	g, err := NewWriteGen(acc, nest)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for !g.Done() {
		addrs := g.Next()
		if addrs == nil {
			break
		}
		if addrs[0] != want {
			t.Fatalf("addr = %d, want %d (row-major order)", addrs[0], want)
		}
		want++
	}
	if want != 12 {
		t.Errorf("iterations = %d, want 12", want)
	}
}

func TestWriteGenScaled(t *testing.T) {
	// wavelet-style: out[i][j] with stride-2 scale on a nest over 14x14.
	i := &hir.Var{Name: "i", Kind: hir.VarLoop}
	arr := &hir.Array{Name: "LL", Dims: []int{14}}
	acc := &hir.WriteAccess{
		Arr:   arr,
		Dims:  []hir.WindowDim{{Var: i, Scale: 1}},
		Elems: []hir.WindowElem{{Offsets: []int64{0}, Elem: &hir.Var{Name: "t"}}},
	}
	g, err := NewWriteGen(acc, nest1D(i, 0, 14, 1))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for !g.Done() {
		if g.Next() == nil {
			break
		}
		n++
	}
	if n != 14 {
		t.Errorf("n = %d", n)
	}
}

func TestWriteGenRejectsUnknownVar(t *testing.T) {
	iv := &hir.Var{Name: "i", Kind: hir.VarLoop}
	other := &hir.Var{Name: "x"}
	arr := &hir.Array{Name: "C", Dims: []int{8}}
	acc := &hir.WriteAccess{
		Arr:   arr,
		Dims:  []hir.WindowDim{{Var: other, Scale: 1}},
		Elems: []hir.WindowElem{{Offsets: []int64{0}, Elem: &hir.Var{Name: "t"}}},
	}
	if _, err := NewWriteGen(acc, nest1D(iv, 0, 8, 1)); err == nil {
		t.Error("unknown index variable not rejected")
	}
}

func TestControllerFSM(t *testing.T) {
	c := NewController(3, 2)
	if c.StateNow() != Idle {
		t.Error("controller must start idle")
	}
	// Window not ready: fill, no feed.
	if c.Tick(false) {
		t.Error("fed without a ready window")
	}
	if c.StateNow() != Fill {
		t.Errorf("state = %s, want fill", c.StateNow())
	}
	// Feed three iterations.
	for i := 0; i < 3; i++ {
		if !c.Tick(true) {
			t.Fatalf("iteration %d not fed", i)
		}
	}
	if c.Fed() != 3 {
		t.Errorf("fed = %d", c.Fed())
	}
	// No more feeds.
	if c.Tick(true) {
		t.Error("fed beyond the iteration count")
	}
	if c.StateNow() != Drain {
		t.Errorf("state = %s, want drain", c.StateNow())
	}
	for i := 0; i < 3; i++ {
		c.Collect()
	}
	if !c.Finished() {
		t.Errorf("state = %s, want done", c.StateNow())
	}
}

func TestControllerStateStrings(t *testing.T) {
	for _, s := range []State{Idle, Fill, Stream, Drain, DoneSt} {
		if s.String() == "?" {
			t.Errorf("state %d has no name", s)
		}
	}
}

// TestGeneratorResetAndNextInto pins the reuse surface the netlist
// cycle loop depends on: NextInto fills caller buffers without
// allocating, and Reset rewinds both generator kinds and the controller
// for an identical second run.
func TestGeneratorResetAndNextInto(t *testing.T) {
	rg := NewReadGen(7, 3)
	buf := make([]int, 3)
	var got []int
	for {
		batch := rg.NextInto(buf)
		if batch == nil {
			break
		}
		got = append(got, batch...)
	}
	if len(got) != 7 {
		t.Fatalf("issued %d addresses, want 7", len(got))
	}

	iv := &hir.Var{Name: "i", Kind: hir.VarLoop}
	arr := &hir.Array{Name: "C", Dims: []int{8}}
	acc := &hir.WriteAccess{
		Arr:   arr,
		Dims:  []hir.WindowDim{{Var: iv, Scale: 1}},
		Elems: []hir.WindowElem{{Offsets: []int64{0}, Elem: &hir.Var{Name: "t"}}},
	}
	wg, err := NewWriteGen(acc, nest1D(iv, 0, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	collect := func() []int {
		dst := make([]int, 1)
		var addrs []int
		for {
			a := wg.NextInto(dst)
			if a == nil {
				break
			}
			addrs = append(addrs, a[0])
		}
		return addrs
	}
	first := collect()
	if len(first) != 8 || !wg.Done() {
		t.Fatalf("first pass: %v", first)
	}
	wg.Reset()
	if wg.Done() {
		t.Fatal("Reset generator reports done")
	}
	second := collect()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("address %d after Reset = %d, want %d", i, second[i], first[i])
		}
	}

	c := NewController(2, 1)
	c.Tick(true)
	c.Tick(true)
	c.Collect()
	c.Collect()
	if !c.Finished() {
		t.Fatal("controller not finished")
	}
	c.Reset()
	if c.StateNow() != Idle || c.Fed() != 0 || c.Collected() != 0 || c.Finished() {
		t.Fatal("controller Reset did not return to idle")
	}
}

// TestTickFeedN pins the bulk admit against the per-cycle FSM: n
// guaranteed feed Ticks and one TickFeedN(n) must agree on fed count
// and state from every reachable starting point, and the bulk form
// must refuse (admitting nothing) what the serial form would refuse.
func TestTickFeedN(t *testing.T) {
	for _, pre := range []int{0, 1, 5} {
		for _, n := range []int{1, 3, 5} {
			a := NewController(8, 2)
			b := NewController(8, 2)
			for i := 0; i < pre; i++ {
				a.Tick(true)
				b.Tick(true)
			}
			want := pre+n <= 8
			if got := b.TickFeedN(n); got != want {
				t.Fatalf("pre=%d n=%d: TickFeedN = %v, want %v", pre, n, got, want)
			}
			if !want {
				if b.Fed() != pre {
					t.Fatalf("refused TickFeedN still admitted: fed %d", b.Fed())
				}
				continue
			}
			for i := 0; i < n; i++ {
				if !a.Tick(true) {
					t.Fatalf("pre=%d n=%d: serial Tick %d refused", pre, n, i)
				}
			}
			if a.Fed() != b.Fed() || a.StateNow() != b.StateNow() {
				t.Fatalf("pre=%d n=%d: serial fed=%d state=%s, bulk fed=%d state=%s",
					pre, n, a.Fed(), a.StateNow(), b.Fed(), b.StateNow())
			}
		}
	}
	// Draining controllers admit nothing.
	c := NewController(2, 1)
	c.Tick(true)
	c.Tick(true)
	if c.StateNow() != Drain {
		t.Fatal("controller not draining")
	}
	if c.TickFeedN(1) {
		t.Error("TickFeedN admitted a feed while draining")
	}
	if c.TickFeedN(0) {
		// Zero-length streaks are vacuously fine but nothing to admit.
		t.Error("TickFeedN(0) reported an admit")
	}
}

// TestReadGenNextRange pins the ranged form against NextInto: the same
// consecutive addresses, the same exhaustion point.
func TestReadGenNextRange(t *testing.T) {
	a := NewReadGen(10, 4)
	b := NewReadGen(10, 4)
	buf := make([]int, 4)
	for {
		addrs := a.NextInto(buf)
		start, n := b.NextRange()
		if (addrs == nil) != (n == 0) {
			t.Fatalf("exhaustion mismatch: addrs=%v n=%d", addrs, n)
		}
		if addrs == nil {
			break
		}
		if len(addrs) != n || addrs[0] != start {
			t.Fatalf("NextInto %v vs NextRange (%d,%d)", addrs, start, n)
		}
	}
	if !b.Done() {
		t.Error("ranged generator not done")
	}
}

// TestWriteGenFastPathParity drives the compiled depth-1 fast path and
// a shadow generator forced through the generic loop over the same
// access pattern; every address batch must match.
func TestWriteGenFastPathParity(t *testing.T) {
	i := &hir.Var{Name: "i", Kind: hir.VarLoop}
	arr := &hir.Array{Name: "C", Dims: []int{40}}
	acc := &hir.WriteAccess{
		Arr:  arr,
		Dims: []hir.WindowDim{{Var: i, Scale: 2}},
		Elems: []hir.WindowElem{
			{Offsets: []int64{0}, Elem: &hir.Var{Name: "t0"}},
			{Offsets: []int64{1}, Elem: &hir.Var{Name: "t1"}},
		},
	}
	nest := nest1D(i, 1, 37, 2)
	fast, err := NewWriteGen(acc, nest)
	if err != nil {
		t.Fatal(err)
	}
	if !fast.fast {
		t.Fatal("depth-1 single-dim access did not compile the fast path")
	}
	slow, err := NewWriteGen(acc, nest)
	if err != nil {
		t.Fatal(err)
	}
	slow.fast = false
	fb, sb := make([]int, 2), make([]int, 2)
	for step := 0; ; step++ {
		fa := fast.NextInto(fb)
		sa := slow.NextInto(sb)
		if (fa == nil) != (sa == nil) {
			t.Fatalf("step %d: exhaustion mismatch", step)
		}
		if fa == nil {
			break
		}
		for ei := range fa {
			if fa[ei] != sa[ei] {
				t.Fatalf("step %d elem %d: fast %d, generic %d", step, ei, fa[ei], sa[ei])
			}
		}
	}
	if fast.Done() != slow.Done() {
		t.Error("done mismatch")
	}
}
