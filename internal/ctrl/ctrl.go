// Package ctrl implements the paper's controllers (§4.1): "The
// controllers include address generators, which export a series of
// memory addresses according to the memory access pattern, and a
// higher-level controller, which controls the address generators. They
// are all implemented as pre-existing parameterized FSMs in a VHDL
// library." This package is the behavioural model of those parameterized
// FSMs; package vhdl emits their HDL counterparts.
package ctrl

import (
	"fmt"

	"roccc/internal/hir"
)

// ReadGen streams the element addresses of an input array region in
// row-major order, up to BusElems addresses per cycle — the read-side
// address generator feeding BRAM fetches into the smart buffer.
type ReadGen struct {
	Total    int // elements to stream
	BusElems int
	pos      int
}

// NewReadGen builds a read address generator over total elements.
func NewReadGen(total, busElems int) *ReadGen {
	return &ReadGen{Total: total, BusElems: busElems}
}

// Next returns the next batch of addresses (nil once exhausted).
func (g *ReadGen) Next() []int {
	return g.NextInto(make([]int, g.BusElems))
}

// NextInto is Next writing into a caller-provided buffer of at least
// BusElems capacity (so a cycle loop does not allocate); it returns the
// filled prefix of dst, or nil once exhausted.
//
//roccc:hotpath
func (g *ReadGen) NextInto(dst []int) []int {
	if g.pos >= g.Total {
		return nil
	}
	n := g.BusElems
	if g.pos+n > g.Total {
		n = g.Total - g.pos
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = g.pos + i
	}
	g.pos += n
	return dst
}

// NextRange is NextInto for consecutive streaming: it returns the start
// address and length of the next bus word (length 0 once exhausted), so
// the memory stage can fetch a BRAM range with one bounds check instead
// of an address-array round trip.
//
//roccc:hotpath
func (g *ReadGen) NextRange() (start, n int) {
	if g.pos >= g.Total {
		return 0, 0
	}
	start = g.pos
	n = g.BusElems
	if start+n > g.Total {
		n = g.Total - start
	}
	g.pos += n
	return start, n
}

// Done reports whether all addresses have been issued.
func (g *ReadGen) Done() bool { return g.pos >= g.Total }

// Reset restarts the sequence.
func (g *ReadGen) Reset() { g.pos = 0 }

// WriteGen produces, per kernel iteration, the flattened store addresses
// for one output array — the write-side address generator placing
// data-path results into the output BRAM.
type WriteGen struct {
	acc  *hir.WriteAccess
	nest *hir.LoopNest
	// levels[d] is the nest level of write dimension d, resolved once at
	// construction instead of by scanning nest.Vars on every address.
	levels []int
	// from/step/trips are the nest bounds copied dense at construction,
	// so the per-iteration address loop reads slices instead of calling
	// back into the loop-nest accessors.
	from, step, trips []int64
	// iteration counters per nest level (outermost first).
	iter []int64
	done bool
	dims []int
	// Compiled fast path for depth-1 single-dimension accesses (the
	// common streaming shape): addr(ei) = fastBase[ei] + iter*fastDelta.
	fast      bool
	fastDelta int64
	fastBase  []int64
}

// NewWriteGen builds a write address generator from the front end's
// write access pattern and loop nest.
func NewWriteGen(acc *hir.WriteAccess, nest *hir.LoopNest) (*WriteGen, error) {
	levels := make([]int, len(acc.Dims))
	for d, dim := range acc.Dims {
		if dim.Var == nil {
			return nil, fmt.Errorf("ctrl: write dimension %d of %s is constant", d, acc.Arr.Name)
		}
		levels[d] = -1
		for l, v := range nest.Vars {
			if v == dim.Var {
				levels[d] = l
			}
		}
		if levels[d] < 0 {
			return nil, fmt.Errorf("ctrl: write index of %s uses non-nest variable %s", acc.Arr.Name, dim.Var.Name)
		}
	}
	g := &WriteGen{
		acc:    acc,
		nest:   nest,
		levels: levels,
		iter:   make([]int64, nest.Depth()),
		dims:   acc.Arr.Dims,
	}
	for l := 0; l < nest.Depth(); l++ {
		g.from = append(g.from, nest.From[l])
		g.step = append(g.step, nest.Step[l])
		g.trips = append(g.trips, nest.Trips(l))
	}
	if nest.Depth() == 1 && len(acc.Dims) == 1 {
		g.fast = true
		g.fastDelta = g.step[0] * acc.Dims[0].Scale
		for _, elem := range acc.Elems {
			g.fastBase = append(g.fastBase, g.from[0]*acc.Dims[0].Scale+elem.Offsets[0])
		}
	}
	return g, nil
}

// Next returns the flattened addresses for the current iteration, one
// per write element (in acc.Elems order), then advances the iteration.
// It returns nil when the nest is exhausted.
func (g *WriteGen) Next() []int {
	return g.NextInto(make([]int, len(g.acc.Elems)))
}

// NextInto is Next writing into a caller-provided buffer of at least
// len(acc.Elems) capacity (so a cycle loop does not allocate); it
// returns the filled prefix of dst, or nil when the nest is exhausted.
//
//roccc:hotpath
func (g *WriteGen) NextInto(dst []int) []int {
	if g.done {
		return nil
	}
	if g.fast {
		addrs := dst[:len(g.fastBase)]
		it := g.iter[0]
		for ei, base := range g.fastBase {
			addrs[ei] = int(base + it*g.fastDelta)
		}
		if g.iter[0] = it + 1; g.iter[0] >= g.trips[0] {
			g.done = true
		}
		return addrs
	}
	addrs := dst[:len(g.acc.Elems)]
	for ei, elem := range g.acc.Elems {
		flat := 0
		for d, dim := range g.acc.Dims {
			level := g.levels[d]
			iv := g.from[level] + g.iter[level]*g.step[level]
			coord := int(iv*dim.Scale + elem.Offsets[d])
			if d == 0 && len(g.acc.Dims) == 2 {
				flat = coord * g.dims[1]
			} else {
				flat += coord
			}
		}
		addrs[ei] = flat
	}
	// Advance odometer, innermost fastest.
	for l := len(g.iter) - 1; l >= 0; l-- {
		g.iter[l]++
		if g.iter[l] < g.trips[l] {
			return addrs
		}
		g.iter[l] = 0
	}
	g.done = true
	return addrs
}

// Done reports whether the iteration space is exhausted.
func (g *WriteGen) Done() bool { return g.done }

// Reset rewinds the generator to the first iteration.
func (g *WriteGen) Reset() {
	for l := range g.iter {
		g.iter[l] = 0
	}
	g.done = false
}

// State enumerates the higher-level controller's FSM states.
type State int

// Controller FSM states: the execution model of Fig. 2.
const (
	Idle   State = iota // waiting for start
	Fill                // priming the smart buffer
	Stream              // one iteration per cycle through the data path
	Drain               // flushing the pipeline
	DoneSt              // all outputs written
)

func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Fill:
		return "fill"
	case Stream:
		return "stream"
	case Drain:
		return "drain"
	case DoneSt:
		return "done"
	}
	return "?"
}

// Controller is the higher-level FSM that sequences the address
// generators, smart buffer and data path.
type Controller struct {
	TotalIters int // loop nest iterations to execute
	Latency    int // data-path latency in cycles

	state State
	fed   int // iterations fed to the data path
	done  int // iterations whose outputs have been collected
}

// NewController builds the top-level sequencer.
func NewController(totalIters, latency int) *Controller {
	return &Controller{TotalIters: totalIters, Latency: latency, state: Idle}
}

// StateNow returns the current FSM state.
func (c *Controller) StateNow() State { return c.state }

// Fed returns the number of iterations issued to the data path.
func (c *Controller) Fed() int { return c.fed }

// Collected returns the number of completed iterations.
func (c *Controller) Collected() int { return c.done }

// Tick advances the FSM one clock. windowReady tells whether the smart
// buffer can export a window this cycle. It returns true when the data
// path should accept a real iteration this cycle; otherwise the cycle
// is a pipeline bubble. Output collection timing is owned by the
// cycle-accurate system model (package netlist), which calls Collect for
// every harvested iteration.
//
//roccc:hotpath
func (c *Controller) Tick(windowReady bool) (feed bool) {
	switch c.state {
	case Idle:
		c.state = Fill
		fallthrough
	case Fill, Stream:
		if windowReady && c.fed < c.TotalIters {
			feed = true
			c.fed++
			c.state = Stream
		}
		if c.fed >= c.TotalIters {
			c.state = Drain
		}
	case Drain, DoneSt:
	}
	return feed
}

// TickFeedN admits n consecutive guaranteed feed cycles in one
// transition — exactly n Tick(true) calls that all feed, for callers
// that have proven the whole streak (netlist's streak-batched Run). It
// returns false (admitting nothing) if n is not positive or the FSM
// could not feed n more iterations.
//
//roccc:hotpath
func (c *Controller) TickFeedN(n int) bool {
	if n <= 0 {
		return false
	}
	switch c.state {
	case Idle, Fill, Stream:
		if c.fed+n > c.TotalIters {
			return false
		}
		c.fed += n
		c.state = Stream
		if c.fed >= c.TotalIters {
			c.state = Drain
		}
		return true
	}
	return false
}

// Collect records one completed iteration; when all iterations have
// completed the FSM reaches its final state.
//
//roccc:hotpath
func (c *Controller) Collect() {
	c.done++
	if c.done >= c.TotalIters && (c.state == Drain || c.fed >= c.TotalIters) {
		c.state = DoneSt
	}
}

// Finished reports whether every iteration has been fed and collected.
func (c *Controller) Finished() bool { return c.state == DoneSt }

// Reset returns the FSM to Idle with no iterations fed or collected.
func (c *Controller) Reset() {
	c.state = Idle
	c.fed = 0
	c.done = 0
}
