package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"roccc/internal/netlist"
)

// accumBatch builds n accum streams with distinct inputs.
func accumBatch(n int) []netlist.Job {
	jobs := make([]netlist.Job, n)
	for i := range jobs {
		in := make([]int64, 32)
		for j := range in {
			in[j] = int64(i + j)
		}
		jobs[i].Inputs = map[string][]int64{"A": in}
	}
	return jobs
}

// TestRunContextSlotCancel cancels a request while it is still waiting
// for a connection slot: a single-slot pipelined connection is occupied
// by a long batch, so the second RunContext blocks on slot acquisition
// and must return the context error without corrupting the connection
// or stealing the slot.
func TestRunContextSlotCancel(t *testing.T) {
	srv, addr := startServer(t, 2)
	c, err := DialContext(context.Background(), addr, WithPipelined(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Warm the pool so the long batch below is sim time, not compile.
	if err := c.Run("accum", accumBatch(1)); err != nil {
		t.Fatal(err)
	}

	long := make(chan error, 1)
	go func() { long <- c.RunContext(context.Background(), "accum", accumBatch(20000)) }()

	// Let the long batch take the only slot, then time out behind it.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = c.RunContext(ctx, "accum", accumBatch(1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slot-blocked RunContext = %v, want DeadlineExceeded", err)
	}

	if err := <-long; err != nil {
		t.Fatalf("long batch on the held slot failed: %v", err)
	}
	if !c.Healthy() {
		t.Fatal("connection poisoned after a slot-wait cancellation")
	}
	if err := c.Run("accum", accumBatch(2)); err != nil {
		t.Fatalf("follow-up request after cancellation: %v", err)
	}
	assertPoolsBalanced(t, srv)
}

// TestRunContextDeadlineMidFlight cancels a request that is already on
// the wire: a batch far too large for its deadline. The cancelled
// request must release its slot, the demux loop must stay healthy as
// the server's late frames for the dead request drain, and a follow-up
// request on the same connection must succeed with the pools balanced
// afterwards — the ISSUE's Gets == Puts + Rejected invariant.
func TestRunContextDeadlineMidFlight(t *testing.T) {
	srv, addr := startServer(t, 2)
	c, err := DialContext(context.Background(), addr, WithPipelined(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Run("accum", accumBatch(1)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err = c.RunContext(ctx, "accum", accumBatch(20000))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-flight RunContext = %v, want DeadlineExceeded", err)
	}
	if !c.Healthy() {
		t.Fatal("connection poisoned by a mid-flight cancellation")
	}

	// The demux loop must survive the dead request's late frames: the
	// follow-up runs on the same connection, interleaved with them.
	follow := accumBatch(3)
	if err := c.RunContext(context.Background(), "accum", follow); err != nil {
		t.Fatalf("follow-up request on the same connection: %v", err)
	}
	for i, job := range follow {
		if job.Err != nil || job.Cycles == 0 {
			t.Fatalf("follow-up stream %d: err=%v cycles=%d", i, job.Err, job.Cycles)
		}
	}
	if !c.Healthy() {
		t.Fatal("connection unhealthy after the follow-up")
	}
	assertPoolsBalanced(t, srv)
}

// assertPoolsBalanced waits for the server to drain and checks every
// kernel pool returned each System it handed out.
func assertPoolsBalanced(t *testing.T, srv *Server) {
	t.Helper()
	if !srv.WaitIdle(30 * time.Second) {
		t.Fatal("server still has in-flight streams")
	}
	for name, st := range srv.Stats() {
		if st.Gets != st.Puts+st.Rejected {
			t.Errorf("pool %s unbalanced: gets=%d puts=%d rejected=%d", name, st.Gets, st.Puts, st.Rejected)
		}
	}
}
