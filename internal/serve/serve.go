// Package serve is the long-lived simulation service over
// netlist.SystemPool: many kernels resident, request = input streams,
// response = output streams. A server compiles and caches each kernel on
// first use (the compiled system plan lives on hir.Kernel.PlanCache, so
// every pooled System shares it), keeps a warm SystemPool per kernel,
// and speaks a length-prefixed binary framing over TCP (proto.go).
// Mid-stream faults — e.g. a divide-by-zero on a valid iteration —
// travel as typed dp.FaultError values carrying the abort cycle, so a
// served fault is indistinguishable from the same fault raised by a
// serial netlist.System.Run.
//
// The serving stack is three explicit layers (PR 8):
//
//   - wire: the framed protocol and the per-connection loop below, which
//     demuxes many concurrent requests per connection by request id
//     (proto.go documents v1 vs v2);
//   - placement: the Dispatcher seam — by default a server executes on
//     its own kernel registry, but a front-end can plug a fleet router
//     that consistent-hashes kernels across worker shards
//     (internal/fleet) without touching the wire layer;
//   - observability: Metrics/KernelInfos/ConnInfos snapshot every
//     counter this file maintains (metrics.go serves them over HTTP).
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"roccc/internal/bench"
	"roccc/internal/calib"
	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/netlist"
)

// KernelSpec names one servable kernel: the C source, the function to
// extract, its compile options and the system configuration its pooled
// Systems are built with. Compilation is deferred to the first request.
type KernelSpec struct {
	Name    string
	Source  string
	Func    string
	Options core.Options
	Config  netlist.Config
}

// SpecFor adapts a Table 1 bench kernel to a servable spec.
func SpecFor(k bench.Kernel) KernelSpec {
	return KernelSpec{
		Name:    k.Name,
		Source:  k.Source,
		Func:    k.Func,
		Options: k.Options,
		Config:  netlist.Config{BusElems: k.BusElems, Scalars: k.Scalars},
	}
}

// Table1Specs returns every Table 1 kernel as a servable spec. The
// combinational rows (fully unrolled bit-level kernels, LUTs) carry no
// loop nest, so a request for them reports a typed request error at
// first use rather than at registration.
func Table1Specs() []KernelSpec {
	ks := bench.All()
	specs := make([]KernelSpec, len(ks))
	for i, k := range ks {
		specs[i] = SpecFor(k)
	}
	return specs
}

// Runner executes admitted streams for one kernel, resolved once at
// request open. The returned error is the job's (per-stream failures,
// including typed *dp.FaultError faults and *BusyError load-sheds).
type Runner interface {
	RunStream(job *netlist.Job) error
}

// Dispatcher resolves a kernel name at request-open time to the Runner
// its streams execute on. A plain Server dispatches into its own kernel
// registry; a front-end server fronting worker shards plugs a
// fleet.Router here instead — the wire layer is identical either way.
type Dispatcher interface {
	Dispatch(kernel string) (Runner, error)
}

// BusyError is the typed load-shed fault: admission control refused the
// stream because the target shard's executors were saturated. It
// travels the wire as a stream-level error frame whose message the
// client reconstructs into the same typed value.
type BusyError struct {
	Kernel string
	Shard  int
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("serve: busy: kernel %q shard %d: executors saturated", e.Kernel, e.Shard)
}

// parseBusy reconstructs a typed BusyError from its wire message, nil
// when the message is not a busy shed.
func parseBusy(msg string) *BusyError {
	var kernel string
	var shard int
	if n, _ := fmt.Sscanf(msg, "serve: busy: kernel %q shard %d:", &kernel, &shard); n == 2 {
		return &BusyError{Kernel: kernel, Shard: shard}
	}
	return nil
}

// ErrEvictBusy marks an eviction refused because the kernel had
// in-flight streams; match with errors.Is.
var ErrEvictBusy = errors.New("kernel has in-flight streams")

// kernelEntry is one registered kernel: compiled on first use, then a
// warm pool of Systems until eviction. The compiled artifacts survive
// eviction — hir.Kernel carries the plan cache — so a post-eviction
// request rebuilds only the pool, not the plans. pool is an atomic
// pointer because streams, metrics and eviction all peek at it
// concurrently; mu orders the slow paths (compile, pool build, evict).
type kernelEntry struct {
	srv  *Server
	spec KernelSpec

	mu       sync.Mutex
	compiled *core.Result
	cerr     error // latched compile/build error: deterministic, never retried
	pool     atomic.Pointer[netlist.SystemPool]

	// Probed off the eagerly built System at pool-build time (metrics):
	// the actual execution backend and whether the plan's feedback cone
	// vectorizes in closed form. Guarded by mu during writes; read after
	// pool is visible.
	backend dp.Backend
	cone    bool

	// idleOverride is the per-kernel idle cap (SetMaxIdleFor); negative
	// means inherit the server-wide cap.
	idleOverride atomic.Int64

	// picked is the calibration backend override: 0 means serve the spec
	// config, otherwise dp.Backend(picked-1). It outlives the pool —
	// post-eviction rebuilds keep the pick. lastCalib is the most recent
	// trial result (metrics plane); calibrations counts trials.
	picked       atomic.Int32
	lastCalib    atomic.Pointer[calib.Result]
	calibrations atomic.Int64

	// Counters for the metrics plane. inflight gates eviction; hwm is
	// the concurrency high-water mark since the last Autotune drain.
	inflight  atomic.Int64
	hwm       atomic.Int64
	opens     atomic.Int64
	streams   atomic.Int64
	faults    atomic.Int64
	evictions atomic.Int64
	lastUse   atomic.Int64 // server logical tick of the most recent open
}

func (e *kernelEntry) idleCap() int {
	if n := e.idleOverride.Load(); n >= 0 {
		return int(n)
	}
	return int(e.srv.maxIdle.Load())
}

// ensure compiles the kernel (first use only) and builds its pool
// (first use and after eviction). The compiled plans live on the
// hir.Kernel, so a post-eviction rebuild reuses them.
func (e *kernelEntry) ensure() error {
	if e.pool.Load() != nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cerr != nil {
		return e.cerr
	}
	if e.pool.Load() != nil {
		return nil
	}
	if e.compiled == nil {
		res, err := core.CompileSource(e.spec.Source, e.spec.Func, e.spec.Options)
		if err != nil {
			e.cerr = fmt.Errorf("serve: kernel %q: %w", e.spec.Name, err)
			return e.cerr
		}
		e.compiled = res
		// On-register calibration trigger (registration never compiles, so
		// first compile is the earliest the kernel can be measured): pick
		// the backend before the first pool exists.
		e.autoCalibrateLocked()
	}
	pool, err := netlist.NewSystemPool(e.compiled.Kernel, e.compiled.Datapath, e.effectiveConfig(), e.srv.workers)
	if err != nil {
		// Deterministic (geometry/config), so latch it like a compile
		// failure: combinational kernels refuse every request the same way.
		e.cerr = fmt.Errorf("serve: kernel %q: %w", e.spec.Name, err)
		return e.cerr
	}
	pool.SetMaxIdle(e.idleCap())
	// Probe the eagerly built System for the metrics plane: the actual
	// backend it executes on and whether its feedback cone is closed-form.
	if sys, err := pool.Get(); err == nil {
		e.backend = sys.Backend()
		e.cone = sys.HasClosedFormCone()
		pool.Put(sys)
	}
	e.pool.Store(pool)
	return nil
}

// getPool returns a live pool for the kernel, compiling on first use
// and rebuilding after an eviction. Callers keep the returned pointer:
// an eviction racing them swaps the entry's pool to nil, so a re-Load
// could observe nil mid-stream — while a captured pool at worst fails
// jobs with ErrPoolClosed, which the callers retry.
func (e *kernelEntry) getPool() (*netlist.SystemPool, error) {
	for {
		if p := e.pool.Load(); p != nil {
			return p, nil
		}
		if err := e.ensure(); err != nil {
			return nil, err
		}
	}
}

// RunStream executes one stream on the kernel's pool, counting it for
// the metrics plane. A stream that loses the race with an eviction
// (ErrPoolClosed) retries once on the rebuilt pool, so eviction is
// invisible to clients.
func (e *kernelEntry) RunStream(job *netlist.Job) error {
	n := e.inflight.Add(1)
	for hw := e.hwm.Load(); n > hw && !e.hwm.CompareAndSwap(hw, n); hw = e.hwm.Load() {
	}
	defer e.inflight.Add(-1)
	e.streams.Add(1)
	pool, err := e.getPool()
	if err != nil {
		job.Err = err
		return err
	}
	pool.RunJob(job)
	if errors.Is(job.Err, netlist.ErrPoolClosed) {
		if pool, err = e.getPool(); err != nil {
			job.Err = err
		} else {
			pool.RunJob(job)
		}
	}
	if job.Err != nil {
		var fe *dp.FaultError
		if errors.As(job.Err, &fe) {
			e.faults.Add(1)
		}
	}
	return job.Err
}

// runBatch is RunStream for a whole batch (the in-process client),
// sharded over the pool's worker crew, with the same eviction-retry and
// accounting contract.
func (e *kernelEntry) runBatch(jobs []netlist.Job) error {
	n := e.inflight.Add(1)
	for hw := e.hwm.Load(); n > hw && !e.hwm.CompareAndSwap(hw, n); hw = e.hwm.Load() {
	}
	defer e.inflight.Add(-1)
	e.streams.Add(int64(len(jobs)))
	pool, err := e.getPool()
	if err != nil {
		return err
	}
	err = pool.RunBatch(jobs)
	if errors.Is(err, netlist.ErrPoolClosed) {
		if pool, err = e.getPool(); err == nil {
			err = pool.RunBatch(jobs)
		}
	}
	for i := range jobs {
		if jobs[i].Err == nil {
			continue // &fe escapes: declare it only on the fault path
		}
		var fe *dp.FaultError
		if errors.As(jobs[i].Err, &fe) {
			e.faults.Add(1)
		}
	}
	return err
}

// Server is the streaming simulation service. Zero value is not usable;
// build with NewServer, Register kernels, then Serve a listener (or use
// the in-process client via Local).
type Server struct {
	workers int
	maxIdle atomic.Int64 // per-pool idle cap, applied as kernels compile
	tick    atomic.Int64 // logical clock for per-kernel LRU recency

	// dispatcher overrides kernel resolution (SetDispatcher); nil means
	// this server's own registry.
	dispatcher Dispatcher

	mu      sync.Mutex
	kernels map[string]*kernelEntry
	conns   map[net.Conn]*srvConn
	ln      net.Listener

	// streams tracks in-flight stream executions across all connections
	// and in-process clients, for graceful drain. drainMu orders stream
	// admission against the closing transition: admissions hold the read
	// side while they check closing and Add, Shutdown takes the write
	// side to flip closing — so no Add can race a Wait parked on a zero
	// counter (documented sync.WaitGroup misuse).
	drainMu  sync.RWMutex
	streams  sync.WaitGroup
	inflight atomic.Int64
	closing  atomic.Bool

	// Served counters (for logs/metrics).
	served atomic.Int64
	faults atomic.Int64
	sheds  atomic.Int64

	// calib is the backend-calibration plane (calibrate.go).
	calib calibState
}

// NewServer builds a server whose per-kernel pools shard across workers
// goroutines (<= 0 means GOMAXPROCS); workers also bounds each
// connection's concurrent stream executions — with pipelined (v2)
// clients it acts as the per-request-slot semaphore all of one
// connection's requests share. The value is normalized here so the
// connection executors see the same width the pools do.
func NewServer(workers int) *Server {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Server{
		workers: workers,
		kernels: map[string]*kernelEntry{},
		conns:   map[net.Conn]*srvConn{},
	}
}

// Workers returns the per-connection executor width (also each kernel
// pool's shard width) — the capacity figure admission control budgets
// against.
func (s *Server) Workers() int { return s.workers }

// SetDispatcher replaces kernel resolution for every subsequent request
// open: streams execute on whatever Runner d resolves instead of this
// server's registry. Set it before Serve; a front-end server fronting a
// fleet needs no registered kernels at all.
func (s *Server) SetDispatcher(d Dispatcher) { s.dispatcher = d }

// Register adds a kernel spec. Re-registering a name is an error (the
// pool identity would silently change under live clients).
func (s *Server) Register(spec KernelSpec) error {
	if spec.Name == "" || len(spec.Name) > maxName {
		return fmt.Errorf("serve: invalid kernel name %q", spec.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.kernels[spec.Name]; dup {
		return fmt.Errorf("serve: kernel %q already registered", spec.Name)
	}
	e := &kernelEntry{srv: s, spec: spec}
	e.idleOverride.Store(-1)
	s.kernels[spec.Name] = e
	return nil
}

// Registered reports whether a kernel name is in this server's registry
// (fleet routers use it to refuse unknown kernels at request open).
func (s *Server) Registered(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.kernels[name]
	return ok
}

// Kernels lists registered kernel names (sorted by registration map
// iteration — callers sort if they need stable order).
func (s *Server) Kernels() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.kernels))
	for n := range s.kernels {
		names = append(names, n)
	}
	return names
}

// entry resolves and compiles a kernel by name.
func (s *Server) entry(name string) (*kernelEntry, error) {
	s.mu.Lock()
	e, ok := s.kernels[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown kernel %q", name)
	}
	if err := e.ensure(); err != nil {
		return nil, err
	}
	return e, nil
}

// dispatch resolves a kernel at request open: the plugged Dispatcher if
// any, this server's registry otherwise. Registry opens count toward
// the kernel's recency and open counters.
func (s *Server) dispatch(kernel string) (Runner, error) {
	if d := s.dispatcher; d != nil {
		return d.Dispatch(kernel)
	}
	e, err := s.entry(kernel)
	if err != nil {
		return nil, err
	}
	e.opens.Add(1)
	e.lastUse.Store(s.tick.Add(1))
	return e, nil
}

// RunStream executes one stream of one kernel through the dispatch seam
// — the same path a TCP stream frame takes, minus the wire. Fleet
// workers call it; per-stream failures land in job.Err.
func (s *Server) RunStream(kernel string, job *netlist.Job) error {
	if !s.beginStream() {
		job.Err = fmt.Errorf("serve: server is draining")
		return job.Err
	}
	defer s.endStream()
	r, err := s.dispatch(kernel)
	if err != nil {
		job.Err = err
		return err
	}
	r.RunStream(job)
	s.countStream(job.Err)
	return job.Err
}

// countStream maintains the served/fault/shed totals for one answered
// stream.
func (s *Server) countStream(err error) {
	s.served.Add(1)
	if err == nil {
		return
	}
	var fe *dp.FaultError
	var be *BusyError
	switch {
	case errors.As(err, &fe):
		s.faults.Add(1)
	case errors.As(err, &be):
		s.sheds.Add(1)
	}
}

// Evict drops a kernel's warm pool, refusing (ErrEvictBusy) while any
// of its streams is in flight. The compiled artifacts stay cached on
// the entry — the next request rebuilds the pool from the plans on
// hir.Kernel.PlanCache without recompiling anything — so eviction is a
// memory-pressure valve, not an unregistration.
func (s *Server) Evict(name string) error {
	s.mu.Lock()
	e, ok := s.kernels[name]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: unknown kernel %q", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := e.inflight.Load(); n != 0 {
		return fmt.Errorf("serve: evict %q: %w (%d)", name, ErrEvictBusy, n)
	}
	pool := e.pool.Swap(nil)
	if pool == nil {
		return nil // already cold
	}
	pool.Close()
	e.evictions.Add(1)
	return nil
}

// SetMaxIdle caps each kernel pool's idle free list (<= 0 removes the
// cap). It applies to pools compiled after the call and to already-warm
// pools immediately; per-kernel overrides (SetMaxIdleFor) win over it.
func (s *Server) SetMaxIdle(n int) {
	s.maxIdle.Store(int64(n))
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.kernels {
		if e.idleOverride.Load() >= 0 {
			continue
		}
		if pool := e.pool.Load(); pool != nil {
			pool.SetMaxIdle(n)
		}
	}
}

// SetMaxIdleFor pins one kernel's idle cap (n < 0 clears the override
// back to the server-wide cap). Fleet autotuning drives it from
// observed per-kernel load.
func (s *Server) SetMaxIdleFor(name string, n int) error {
	s.mu.Lock()
	e, ok := s.kernels[name]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: unknown kernel %q", name)
	}
	if n < 0 {
		n = -1
	}
	e.idleOverride.Store(int64(n))
	if pool := e.pool.Load(); pool != nil {
		pool.SetMaxIdle(e.idleCap())
	}
	return nil
}

// Stats snapshots each compiled kernel's pool counters.
func (s *Server) Stats() map[string]netlist.PoolStats {
	s.mu.Lock()
	entries := make([]*kernelEntry, 0, len(s.kernels))
	for _, e := range s.kernels {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	out := map[string]netlist.PoolStats{}
	for _, e := range entries {
		if pool := e.pool.Load(); pool != nil {
			out[e.spec.Name] = pool.Stats()
		}
	}
	return out
}

// Served returns the total streams answered and the faulted subset.
func (s *Server) Served() (streams, faults int64) {
	return s.served.Load(), s.faults.Load()
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until the listener closes (Shutdown).
// It returns nil after a graceful Shutdown, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.closing.Load() {
				return nil
			}
			return err
		}
		sc := &srvConn{
			srv:  s,
			c:    c,
			reqs: map[uint32]*reqState{},
			sem:  make(chan struct{}, s.workers),
		}
		// Register under mu with a closing re-check in the same critical
		// section: Shutdown flips closing before its close-all pass takes
		// mu, so a conn either lands in s.conns in time to be closed
		// there, or sees closing here and is refused — never neither.
		s.mu.Lock()
		if s.closing.Load() {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = sc
		s.mu.Unlock()
		go sc.serve()
	}
}

// Addr returns the listening address (for tests using ":0").
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// beginStream admits one stream execution unless the server is
// draining; endStream retires it. See drainMu for the ordering contract.
func (s *Server) beginStream() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.closing.Load() {
		return false
	}
	s.streams.Add(1)
	s.inflight.Add(1)
	return true
}

func (s *Server) endStream() {
	s.inflight.Add(-1)
	s.streams.Done()
}

// Shutdown drains the server: new requests are refused, in-flight
// streams finish, then connections close and the per-kernel worker
// crews stop. ctx bounds the drain; on expiry remaining connections are
// closed anyway and ctx.Err is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.closing.Store(true)
	s.drainMu.Unlock()
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.streams.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}

	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	clear(s.conns)
	entries := make([]*kernelEntry, 0, len(s.kernels))
	for _, e := range s.kernels {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	for _, e := range entries {
		if pool := e.pool.Load(); pool != nil {
			pool.Close()
		}
	}
	return err
}

// reqState is one open request on a connection: the kernel's resolved
// Runner and the count of stream responses still owed before 'D'. With
// a pipelined client many reqStates are live on one connection at once.
type reqState struct {
	kernel    string
	runner    Runner
	remaining uint32 // responses owed; guarded by srvConn.mu
}

// srvConn is the server side of one client connection.
type srvConn struct {
	srv *Server
	c   net.Conn

	// wmu serializes response frames (executors finish out of order).
	wmu sync.Mutex
	enc encoder

	mu   sync.Mutex
	reqs map[uint32]*reqState

	// sem is the per-request-slot semaphore: it bounds this connection's
	// concurrent stream executions across all its in-flight requests; the
	// reader blocks acquiring it, which stops reading the socket and
	// backpressures the client through TCP itself.
	sem chan struct{}

	// Per-connection counters (metrics plane).
	opens   atomic.Int64
	streams atomic.Int64
	faults  atomic.Int64
}

func (sc *srvConn) serve() {
	c, s := sc.c, sc.srv
	defer func() {
		// Wait for this connection's in-flight executors (they hold sem
		// slots) so their pooled Systems are back before the conn is
		// forgotten; response writes after close fail harmlessly.
		for i := 0; i < cap(sc.sem); i++ {
			sc.sem <- struct{}{}
		}
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()

	var buf []byte
	for {
		payload, err := readFrame(c, buf)
		if err != nil {
			// Client went away (EOF / closed conn) or sent garbage. A
			// protocol error (oversized/zero/truncated frame) gets a
			// best-effort error frame before the close.
			if !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				sc.writeError(reqNone, streamNone, err.Error())
			}
			return
		}
		buf = payload[:cap(payload)]
		if cap(buf) > bufHighWater && len(payload) < bufHighWater/4 {
			buf = nil // small traffic again: stop pinning the high-water scratch
		}
		if !sc.frame(payload) {
			return
		}
	}
}

// frame dispatches one client frame; false closes the connection.
func (sc *srvConn) frame(payload []byte) bool {
	d := decoder{b: payload}
	typ := d.u8()
	req := d.u32()
	switch typ {
	case frameHello:
		ver := d.u16()
		if d.err != nil || d.remaining() || ver == 0 {
			sc.writeError(req, streamNone, "serve: malformed hello frame")
			return false
		}
		sc.writeHello(req, min(int(ver), ProtoV2))
		return true
	case frameKeepAlive:
		if d.err != nil || d.remaining() {
			sc.writeError(req, streamNone, "serve: malformed keepalive frame")
			return false
		}
		sc.writeKeepAlive(req)
		return true
	case frameOpen:
		kernel := d.str8()
		count := d.u32()
		if d.err != nil || d.remaining() {
			sc.writeError(req, streamNone, "serve: malformed open frame")
			return false
		}
		return sc.open(req, kernel, count)
	case frameStream:
		return sc.stream(req, &d)
	default:
		sc.writeError(req, streamNone, fmt.Sprintf("serve: unexpected frame type %q", typ))
		return false
	}
}

func (sc *srvConn) open(req uint32, kernel string, count uint32) bool {
	if sc.srv.closing.Load() {
		sc.writeError(req, streamNone, "serve: server is draining")
		return true
	}
	sc.mu.Lock()
	_, dup := sc.reqs[req]
	sc.mu.Unlock()
	if dup {
		sc.writeError(req, streamNone, fmt.Sprintf("serve: request %d already open", req))
		return false
	}
	runner, err := sc.srv.dispatch(kernel)
	if err != nil {
		sc.writeError(req, streamNone, err.Error())
		return true // request refused; connection stays usable
	}
	sc.opens.Add(1)
	if count == 0 {
		sc.writeDone(req)
		return true
	}
	sc.mu.Lock()
	sc.reqs[req] = &reqState{kernel: kernel, runner: runner, remaining: count}
	sc.mu.Unlock()
	return true
}

func (sc *srvConn) stream(req uint32, d *decoder) bool {
	idx := d.u32()
	narr := int(d.u16())
	sc.mu.Lock()
	st := sc.reqs[req]
	sc.mu.Unlock()
	if st == nil {
		// Unknown request id: either never opened (protocol misuse) or
		// already aborted by a request-level error — drop the frame.
		return true
	}
	job := netlist.Job{Inputs: make(map[string][]int64, narr)}
	for i := 0; i < narr; i++ {
		name := d.str8()
		vals := d.valsInto(nil)
		if d.err != nil {
			break
		}
		job.Inputs[name] = vals
	}
	if d.err != nil || d.remaining() {
		sc.writeError(req, streamNone, "serve: malformed stream frame")
		return false
	}

	if !sc.srv.beginStream() {
		// Draining: answer the stream with an error (keeping the 'D'
		// accounting intact) instead of racing the shutdown Wait.
		job.Err = fmt.Errorf("serve: server is draining")
		sc.respond(req, idx, &job)
		sc.finishStream(req)
		return true
	}
	sc.sem <- struct{}{} // backpressure: bounded in-flight per connection
	go func() {
		defer func() {
			<-sc.sem
			sc.srv.endStream()
		}()
		st.runner.RunStream(&job) // error is job.Err; pooled Systems return either way
		sc.respond(req, idx, &job)
		sc.finishStream(req)
	}()
	return true
}

// respond writes the stream's result/fault/error frame.
func (sc *srvConn) respond(req, idx uint32, job *netlist.Job) {
	sc.srv.countStream(job.Err)
	sc.streams.Add(1)
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	e := &sc.enc
	switch {
	case job.Err == nil:
		e.begin(frameResult, req)
		e.u32(idx)
		e.u64(uint64(job.Cycles))
		e.u16(uint16(len(job.Outputs)))
		for name, vals := range job.Outputs {
			e.str8(name)
			e.vals(vals)
		}
		e.u16(uint16(len(job.Feedbacks)))
		for name, v := range job.Feedbacks {
			e.str8(name)
			e.i64(v)
		}
	default:
		var fe *dp.FaultError
		if errors.As(job.Err, &fe) {
			sc.faults.Add(1)
			e.begin(frameFault, req)
			e.u32(idx)
			e.u32(uint32(fe.Cycle))
			e.str8(fe.Op)
			e.str16(fe.Msg)
		} else {
			e.begin(frameError, req)
			e.u32(idx)
			e.str16(job.Err.Error())
		}
	}
	sc.c.Write(e.finish())
}

// finishStream decrements the request's owed-response count and emits
// 'D' after the last one.
func (sc *srvConn) finishStream(req uint32) {
	sc.mu.Lock()
	st := sc.reqs[req]
	done := false
	if st != nil {
		st.remaining--
		if st.remaining == 0 {
			delete(sc.reqs, req)
			done = true
		}
	}
	sc.mu.Unlock()
	if done {
		sc.writeDone(req)
	}
}

func (sc *srvConn) writeDone(req uint32) {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.enc.begin(frameDone, req)
	sc.c.Write(sc.enc.finish())
}

func (sc *srvConn) writeHello(req uint32, version int) {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.enc.begin(frameHello, req)
	sc.enc.u16(uint16(version))
	sc.c.Write(sc.enc.finish())
}

func (sc *srvConn) writeKeepAlive(req uint32) {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.enc.begin(frameKeepAlive, req)
	sc.c.Write(sc.enc.finish())
}

func (sc *srvConn) writeError(req, stream uint32, msg string) {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.enc.begin(frameError, req)
	sc.enc.u32(stream)
	sc.enc.str16(msg)
	sc.c.Write(sc.enc.finish())
	// A request-level error aborts the request: owed streams are dropped.
	if stream == streamNone {
		sc.mu.Lock()
		delete(sc.reqs, req)
		sc.mu.Unlock()
	}
}

// WaitIdle blocks until no stream is in flight or the timeout elapses;
// tests use it to assert pool balance after a client disconnect.
func (s *Server) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for s.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// sortedEntries snapshots the registry in name order (metrics plane).
func (s *Server) sortedEntries() []*kernelEntry {
	s.mu.Lock()
	entries := make([]*kernelEntry, 0, len(s.kernels))
	for _, e := range s.kernels {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].spec.Name < entries[j].spec.Name })
	return entries
}
