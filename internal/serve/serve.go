// Package serve is the long-lived simulation service over
// netlist.SystemPool: many kernels resident, request = input streams,
// response = output streams. A server compiles and caches each kernel on
// first use (the compiled system plan lives on hir.Kernel.PlanCache, so
// every pooled System shares it), keeps a warm SystemPool per kernel,
// and speaks a length-prefixed binary framing over TCP (proto.go).
// Mid-stream faults — e.g. a divide-by-zero on a valid iteration —
// travel as typed dp.FaultError values carrying the abort cycle, so a
// served fault is indistinguishable from the same fault raised by a
// serial netlist.System.Run.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"roccc/internal/bench"
	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/netlist"
)

// KernelSpec names one servable kernel: the C source, the function to
// extract, its compile options and the system configuration its pooled
// Systems are built with. Compilation is deferred to the first request.
type KernelSpec struct {
	Name    string
	Source  string
	Func    string
	Options core.Options
	Config  netlist.Config
}

// SpecFor adapts a Table 1 bench kernel to a servable spec.
func SpecFor(k bench.Kernel) KernelSpec {
	return KernelSpec{
		Name:    k.Name,
		Source:  k.Source,
		Func:    k.Func,
		Options: k.Options,
		Config:  netlist.Config{BusElems: k.BusElems, Scalars: k.Scalars},
	}
}

// Table1Specs returns every Table 1 kernel as a servable spec. The
// combinational rows (fully unrolled bit-level kernels, LUTs) carry no
// loop nest, so a request for them reports a typed request error at
// first use rather than at registration.
func Table1Specs() []KernelSpec {
	ks := bench.All()
	specs := make([]KernelSpec, len(ks))
	for i, k := range ks {
		specs[i] = SpecFor(k)
	}
	return specs
}

// kernelEntry is one registered kernel: compiled on first use, then a
// warm pool of Systems for the rest of the server's life. pool is an
// atomic pointer because Stats/SetMaxIdle/Shutdown peek at it from
// other goroutines while a first request may still be compiling.
type kernelEntry struct {
	spec KernelSpec
	once sync.Once
	pool atomic.Pointer[netlist.SystemPool]
	err  error
}

func (e *kernelEntry) ensure(workers, maxIdle int) error {
	e.once.Do(func() {
		res, err := core.CompileSource(e.spec.Source, e.spec.Func, e.spec.Options)
		if err != nil {
			e.err = fmt.Errorf("serve: kernel %q: %w", e.spec.Name, err)
			return
		}
		pool, err := netlist.NewSystemPool(res.Kernel, res.Datapath, e.spec.Config, workers)
		if err != nil {
			e.err = fmt.Errorf("serve: kernel %q: %w", e.spec.Name, err)
			return
		}
		pool.SetMaxIdle(maxIdle)
		e.pool.Store(pool)
	})
	return e.err
}

// Server is the streaming simulation service. Zero value is not usable;
// build with NewServer, Register kernels, then Serve a listener (or use
// the in-process client via Local).
type Server struct {
	workers int
	maxIdle atomic.Int64 // per-pool idle cap, applied as kernels compile

	mu      sync.Mutex
	kernels map[string]*kernelEntry
	conns   map[net.Conn]struct{}
	ln      net.Listener

	// streams tracks in-flight stream executions across all connections
	// and in-process clients, for graceful drain. drainMu orders stream
	// admission against the closing transition: admissions hold the read
	// side while they check closing and Add, Shutdown takes the write
	// side to flip closing — so no Add can race a Wait parked on a zero
	// counter (documented sync.WaitGroup misuse).
	drainMu  sync.RWMutex
	streams  sync.WaitGroup
	inflight atomic.Int64
	closing  atomic.Bool

	// Served counters (for logs/metrics).
	served atomic.Int64
	faults atomic.Int64
}

// NewServer builds a server whose per-kernel pools shard across workers
// goroutines (<= 0 means GOMAXPROCS); workers also bounds each
// connection's concurrent stream executions. The value is normalized
// here so the connection executors see the same width the pools do.
func NewServer(workers int) *Server {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Server{
		workers: workers,
		kernels: map[string]*kernelEntry{},
		conns:   map[net.Conn]struct{}{},
	}
}

// Register adds a kernel spec. Re-registering a name is an error (the
// pool identity would silently change under live clients).
func (s *Server) Register(spec KernelSpec) error {
	if spec.Name == "" || len(spec.Name) > maxName {
		return fmt.Errorf("serve: invalid kernel name %q", spec.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.kernels[spec.Name]; dup {
		return fmt.Errorf("serve: kernel %q already registered", spec.Name)
	}
	s.kernels[spec.Name] = &kernelEntry{spec: spec}
	return nil
}

// Kernels lists registered kernel names (sorted by registration map
// iteration — callers sort if they need stable order).
func (s *Server) Kernels() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.kernels))
	for n := range s.kernels {
		names = append(names, n)
	}
	return names
}

// entry resolves and compiles a kernel by name.
func (s *Server) entry(name string) (*kernelEntry, error) {
	s.mu.Lock()
	e, ok := s.kernels[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown kernel %q", name)
	}
	if err := e.ensure(s.workers, int(s.maxIdle.Load())); err != nil {
		return nil, err
	}
	return e, nil
}

// SetMaxIdle caps each kernel pool's idle free list (<= 0 removes the
// cap). It applies to pools compiled after the call and to already-warm
// pools immediately.
func (s *Server) SetMaxIdle(n int) {
	s.maxIdle.Store(int64(n))
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.kernels {
		if pool := e.pool.Load(); pool != nil {
			pool.SetMaxIdle(n)
		}
	}
}

// Stats snapshots each compiled kernel's pool counters.
func (s *Server) Stats() map[string]netlist.PoolStats {
	s.mu.Lock()
	entries := make([]*kernelEntry, 0, len(s.kernels))
	for _, e := range s.kernels {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	out := map[string]netlist.PoolStats{}
	for _, e := range entries {
		if pool := e.pool.Load(); pool != nil {
			out[e.spec.Name] = pool.Stats()
		}
	}
	return out
}

// Served returns the total streams answered and the faulted subset.
func (s *Server) Served() (streams, faults int64) {
	return s.served.Load(), s.faults.Load()
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until the listener closes (Shutdown).
// It returns nil after a graceful Shutdown, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.closing.Load() {
				return nil
			}
			return err
		}
		// Register under mu with a closing re-check in the same critical
		// section: Shutdown flips closing before its close-all pass takes
		// mu, so a conn either lands in s.conns in time to be closed
		// there, or sees closing here and is refused — never neither.
		s.mu.Lock()
		if s.closing.Load() {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go s.handle(c)
	}
}

// Addr returns the listening address (for tests using ":0").
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// beginStream admits one stream execution unless the server is
// draining; endStream retires it. See drainMu for the ordering contract.
func (s *Server) beginStream() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.closing.Load() {
		return false
	}
	s.streams.Add(1)
	s.inflight.Add(1)
	return true
}

func (s *Server) endStream() {
	s.inflight.Add(-1)
	s.streams.Done()
}

// Shutdown drains the server: new requests are refused, in-flight
// streams finish, then connections close and the per-kernel worker
// crews stop. ctx bounds the drain; on expiry remaining connections are
// closed anyway and ctx.Err is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.closing.Store(true)
	s.drainMu.Unlock()
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.streams.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}

	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	clear(s.conns)
	entries := make([]*kernelEntry, 0, len(s.kernels))
	for _, e := range s.kernels {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	for _, e := range entries {
		if pool := e.pool.Load(); pool != nil {
			pool.Close()
		}
	}
	return err
}

// reqState is one open request on a connection: the compiled kernel and
// the count of stream responses still owed before 'D'.
type reqState struct {
	entry     *kernelEntry
	remaining uint32 // responses owed; guarded by srvConn.mu
}

// srvConn is the server side of one client connection.
type srvConn struct {
	srv *Server
	c   net.Conn

	// wmu serializes response frames (executors finish out of order).
	wmu sync.Mutex
	enc encoder

	mu   sync.Mutex
	reqs map[uint32]*reqState

	// sem bounds concurrent stream executions for this connection; the
	// reader blocks acquiring it, which stops reading the socket and
	// backpressures the client through TCP itself.
	sem chan struct{}
}

func (s *Server) handle(c net.Conn) {
	sc := &srvConn{
		srv:  s,
		c:    c,
		reqs: map[uint32]*reqState{},
		sem:  make(chan struct{}, s.workers),
	}
	defer func() {
		// Wait for this connection's in-flight executors (they hold sem
		// slots) so their pooled Systems are back before the conn is
		// forgotten; response writes after close fail harmlessly.
		for i := 0; i < cap(sc.sem); i++ {
			sc.sem <- struct{}{}
		}
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()

	var buf []byte
	for {
		payload, err := readFrame(c, buf)
		if err != nil {
			// Client went away (EOF / closed conn) or sent garbage. A
			// protocol error (oversized/zero/truncated frame) gets a
			// best-effort error frame before the close.
			if !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				sc.writeError(reqNone, streamNone, err.Error())
			}
			return
		}
		buf = payload[:cap(payload)]
		if cap(buf) > bufHighWater && len(payload) < bufHighWater/4 {
			buf = nil // small traffic again: stop pinning the high-water scratch
		}
		if !sc.frame(payload) {
			return
		}
	}
}

// frame dispatches one client frame; false closes the connection.
func (sc *srvConn) frame(payload []byte) bool {
	d := decoder{b: payload}
	typ := d.u8()
	req := d.u32()
	switch typ {
	case frameOpen:
		kernel := d.str8()
		count := d.u32()
		if d.err != nil || d.remaining() {
			sc.writeError(req, streamNone, "serve: malformed open frame")
			return false
		}
		return sc.open(req, kernel, count)
	case frameStream:
		return sc.stream(req, &d)
	default:
		sc.writeError(req, streamNone, fmt.Sprintf("serve: unexpected frame type %q", typ))
		return false
	}
}

func (sc *srvConn) open(req uint32, kernel string, count uint32) bool {
	if sc.srv.closing.Load() {
		sc.writeError(req, streamNone, "serve: server is draining")
		return true
	}
	sc.mu.Lock()
	_, dup := sc.reqs[req]
	sc.mu.Unlock()
	if dup {
		sc.writeError(req, streamNone, fmt.Sprintf("serve: request %d already open", req))
		return false
	}
	entry, err := sc.srv.entry(kernel)
	if err != nil {
		sc.writeError(req, streamNone, err.Error())
		return true // request refused; connection stays usable
	}
	if count == 0 {
		sc.writeDone(req)
		return true
	}
	sc.mu.Lock()
	sc.reqs[req] = &reqState{entry: entry, remaining: count}
	sc.mu.Unlock()
	return true
}

func (sc *srvConn) stream(req uint32, d *decoder) bool {
	idx := d.u32()
	narr := int(d.u16())
	sc.mu.Lock()
	st := sc.reqs[req]
	sc.mu.Unlock()
	if st == nil {
		// Unknown request id: either never opened (protocol misuse) or
		// already aborted by a request-level error — drop the frame.
		return true
	}
	job := netlist.Job{Inputs: make(map[string][]int64, narr)}
	for i := 0; i < narr; i++ {
		name := d.str8()
		vals := d.valsInto(nil)
		if d.err != nil {
			break
		}
		job.Inputs[name] = vals
	}
	if d.err != nil || d.remaining() {
		sc.writeError(req, streamNone, "serve: malformed stream frame")
		return false
	}

	if !sc.srv.beginStream() {
		// Draining: answer the stream with an error (keeping the 'D'
		// accounting intact) instead of racing the shutdown Wait.
		job.Err = fmt.Errorf("serve: server is draining")
		sc.respond(req, idx, &job)
		sc.finishStream(req)
		return true
	}
	sc.sem <- struct{}{} // backpressure: bounded in-flight per connection
	go func() {
		defer func() {
			<-sc.sem
			sc.srv.endStream()
		}()
		st.entry.pool.Load().RunJob(&job) // error is job.Err; System returns to the pool either way
		sc.respond(req, idx, &job)
		sc.finishStream(req)
	}()
	return true
}

// respond writes the stream's result/fault/error frame.
func (sc *srvConn) respond(req, idx uint32, job *netlist.Job) {
	sc.srv.served.Add(1)
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	e := &sc.enc
	switch {
	case job.Err == nil:
		e.begin(frameResult, req)
		e.u32(idx)
		e.u64(uint64(job.Cycles))
		e.u16(uint16(len(job.Outputs)))
		for name, vals := range job.Outputs {
			e.str8(name)
			e.vals(vals)
		}
		e.u16(uint16(len(job.Feedbacks)))
		for name, v := range job.Feedbacks {
			e.str8(name)
			e.i64(v)
		}
	default:
		var fe *dp.FaultError
		if errors.As(job.Err, &fe) {
			sc.srv.faults.Add(1)
			e.begin(frameFault, req)
			e.u32(idx)
			e.u32(uint32(fe.Cycle))
			e.str8(fe.Op)
			e.str16(fe.Msg)
		} else {
			e.begin(frameError, req)
			e.u32(idx)
			e.str16(job.Err.Error())
		}
	}
	sc.c.Write(e.finish())
}

// finishStream decrements the request's owed-response count and emits
// 'D' after the last one.
func (sc *srvConn) finishStream(req uint32) {
	sc.mu.Lock()
	st := sc.reqs[req]
	done := false
	if st != nil {
		st.remaining--
		if st.remaining == 0 {
			delete(sc.reqs, req)
			done = true
		}
	}
	sc.mu.Unlock()
	if done {
		sc.writeDone(req)
	}
}

func (sc *srvConn) writeDone(req uint32) {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.enc.begin(frameDone, req)
	sc.c.Write(sc.enc.finish())
}

func (sc *srvConn) writeError(req, stream uint32, msg string) {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.enc.begin(frameError, req)
	sc.enc.u32(stream)
	sc.enc.str16(msg)
	sc.c.Write(sc.enc.finish())
	// A request-level error aborts the request: owed streams are dropped.
	if stream == streamNone {
		sc.mu.Lock()
		delete(sc.reqs, req)
		sc.mu.Unlock()
	}
}

// WaitIdle blocks until no stream is in flight or the timeout elapses;
// tests use it to assert pool balance after a client disconnect.
func (s *Server) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for s.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}
