package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/netlist"
)

// soakRef is one precomputed request/response pair: inputs plus the
// serial System.Run ground truth (outputs, feedbacks, cycle count, or
// the exact fault).
type soakRef struct {
	kernel    string
	inputs    map[string][]int64
	outputs   map[string][]int64
	feedbacks map[string]int64
	cycles    int
	fault     *dp.FaultError
}

// buildSoakRefs compiles each spec once and runs every seed serially —
// the bit-exact baseline the soak clients check against.
func buildSoakRefs(t *testing.T, specs []KernelSpec, seeds int) []soakRef {
	t.Helper()
	var refs []soakRef
	for _, spec := range specs {
		res, err := core.CompileSource(spec.Source, spec.Func, spec.Options)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		sys, err := netlist.NewSystem(res.Kernel, res.Datapath, spec.Config)
		if err != nil {
			t.Logf("soak: skipping %s (not streamable: %v)", spec.Name, err)
			continue
		}
		for seed := 0; seed < seeds; seed++ {
			rng := rand.New(rand.NewSource(int64(seed)*7919 + 1))
			ref := soakRef{kernel: spec.Name, inputs: map[string][]int64{}}
			for _, w := range res.Kernel.Reads {
				vals := make([]int64, w.Arr.Len())
				for i := range vals {
					vals[i] = rng.Int63n(255) - 128
				}
				if spec.Name == "soak_divide" {
					// Keep divisors nonzero on even seeds; odd seeds plant
					// one zero on a valid iteration — a guaranteed fault.
					if w.Arr.Name == "B" {
						for i := range vals {
							vals[i] = rng.Int63n(97) + 1
						}
						if seed%2 == 1 {
							vals[rng.Intn(len(vals))] = 0
						}
					}
				}
				ref.inputs[w.Arr.Name] = vals
			}
			sys.Reset()
			for name, vals := range ref.inputs {
				if err := sys.LoadInput(name, vals); err != nil {
					t.Fatal(err)
				}
			}
			sim, err := sys.Run()
			if err != nil {
				var fe *dp.FaultError
				if !errors.As(err, &fe) {
					t.Fatalf("%s seed %d: unexpected serial error: %v", spec.Name, seed, err)
				}
				ref.fault = fe
				refs = append(refs, ref)
				continue
			}
			ref.cycles = sys.Cycles()
			ref.outputs = map[string][]int64{}
			for _, w := range res.Kernel.Writes {
				out, err := sys.Output(w.Arr.Name)
				if err != nil {
					t.Fatal(err)
				}
				ref.outputs[w.Arr.Name] = out
			}
			if len(res.Datapath.Feedbacks) > 0 {
				ref.feedbacks = map[string]int64{}
				for _, fb := range res.Datapath.Feedbacks {
					if v, ok := sim.FeedbackByName(fb.State.Name); ok {
						ref.feedbacks[fb.State.Name] = v
					}
				}
			}
			refs = append(refs, ref)
		}
	}
	return refs
}

// checkSoak compares one served stream against its reference.
func checkSoak(job *netlist.Job, ref *soakRef) error {
	if ref.fault != nil {
		var fe *dp.FaultError
		if !errors.As(job.Err, &fe) {
			return fmt.Errorf("%s: served %v, want fault %v", ref.kernel, job.Err, ref.fault)
		}
		if fe.Cycle != ref.fault.Cycle || fe.Msg != ref.fault.Msg {
			return fmt.Errorf("%s: served fault %+v, serial fault %+v", ref.kernel, fe, ref.fault)
		}
		return nil
	}
	if job.Err != nil {
		return fmt.Errorf("%s: served error %v, serial ran clean", ref.kernel, job.Err)
	}
	if job.Cycles != ref.cycles {
		return fmt.Errorf("%s: served %d cycles, serial %d", ref.kernel, job.Cycles, ref.cycles)
	}
	for name, want := range ref.outputs {
		got := job.Outputs[name]
		if len(got) != len(want) {
			return fmt.Errorf("%s: %s has %d elements served, %d serial", ref.kernel, name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("%s: %s[%d] = %d served, %d serial", ref.kernel, name, i, got[i], want[i])
			}
		}
	}
	for name, want := range ref.feedbacks {
		if got := job.Feedbacks[name]; got != want {
			return fmt.Errorf("%s: feedback %s = %d served, %d serial", ref.kernel, name, got, want)
		}
	}
	return nil
}

// TestServeSoak hammers a live server with concurrent TCP clients
// streaming the Table 1 kernels (and a guaranteed-fault divider) for a
// wall-clock budget, asserting zero dropped and zero mismatched
// responses. The budget defaults to a quick smoke locally; CI sets
// ROCCC_SOAK (e.g. "15s") and runs it under -race.
func TestServeSoak(t *testing.T) {
	budget := 1500 * time.Millisecond
	if testing.Short() {
		budget = 300 * time.Millisecond
	}
	if env := os.Getenv("ROCCC_SOAK"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("ROCCC_SOAK=%q: %v", env, err)
		}
		budget = d
	}

	specs := Table1Specs()
	specs = append(specs, KernelSpec{
		Name: "soak_divide", Source: dividerSource, Func: "divide",
		Options: core.DefaultOptions(), Config: netlist.Config{BusElems: 1},
	})
	refs := buildSoakRefs(t, specs, 4)
	if len(refs) < 8 {
		t.Fatalf("only %d soak references built", len(refs))
	}

	srv := NewServer(0)
	for _, spec := range specs {
		if err := srv.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	clients := min(8, max(2, runtime.GOMAXPROCS(0)))
	deadline := time.Now().Add(budget)
	var requested, answered atomic.Int64
	var next atomic.Int64
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := Dial(ln.Addr().String())
			if err != nil {
				errCh <- err
				return
			}
			defer conn.Close()
			// Per-client reusable batch: the same Job slots host every
			// request, exercising response-buffer reuse under load.
			const batch = 3
			jobs := make([]netlist.Job, batch)
			picked := make([]*soakRef, batch)
			for time.Now().Before(deadline) {
				sameKernel := refs[int(next.Add(1))%len(refs)].kernel
				n := 0
				for _, r := range pickRefs(refs, sameKernel) {
					if n == batch {
						break
					}
					picked[n] = r
					jobs[n] = netlist.Job{Inputs: r.inputs,
						Outputs: jobs[n].Outputs, Feedbacks: jobs[n].Feedbacks}
					n++
				}
				requested.Add(int64(n))
				err := conn.Run(sameKernel, jobs[:n])
				if err != nil && !isExpectedFaultBatch(picked[:n]) {
					errCh <- fmt.Errorf("%s: %v", sameKernel, err)
					return
				}
				for i := 0; i < n; i++ {
					if err := checkSoak(&jobs[i], picked[i]); err != nil {
						errCh <- err
						return
					}
					answered.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	if requested.Load() != answered.Load() {
		t.Fatalf("dropped responses: %d requested, %d answered", requested.Load(), answered.Load())
	}
	if answered.Load() == 0 {
		t.Fatal("soak answered zero streams")
	}
	streams, faults := srv.Served()
	t.Logf("soak: %d clients, %d streams served (%d faults) in %s", clients, streams, faults, budget)
}

// TestServeSoakPipelined is the v2 soak: M pipelined connections, each
// shared by K goroutines issuing concurrent requests with mixed kernels
// and guaranteed faults, while a rude client loop opens raw connections,
// delivers partial requests and hangs up. Zero dropped responses, zero
// cross-wired bits (every response must match its own request's serial
// ground truth), every connection still healthy, and every pool balanced
// (Gets == Puts + Rejected) once the server drains.
func TestServeSoakPipelined(t *testing.T) {
	budget := 1500 * time.Millisecond
	if testing.Short() {
		budget = 300 * time.Millisecond
	}
	if env := os.Getenv("ROCCC_SOAK"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("ROCCC_SOAK=%q: %v", env, err)
		}
		budget = d
	}

	specs := Table1Specs()
	specs = append(specs, KernelSpec{
		Name: "soak_divide", Source: dividerSource, Func: "divide",
		Options: core.DefaultOptions(), Config: netlist.Config{BusElems: 1},
	})
	refs := buildSoakRefs(t, specs, 4)
	if len(refs) < 8 {
		t.Fatalf("only %d soak references built", len(refs))
	}

	srv := NewServer(0)
	for _, spec := range specs {
		if err := srv.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	nconns := min(4, max(2, runtime.GOMAXPROCS(0)))
	const perConn = 3 // request goroutines sharing each connection
	conns := make([]*Conn, nconns)
	for i := range conns {
		if conns[i], err = DialPipelined(ln.Addr().String()); err != nil {
			t.Fatal(err)
		}
		defer conns[i].Close()
	}

	deadline := time.Now().Add(budget)
	var requested, answered atomic.Int64
	var next atomic.Int64
	errCh := make(chan error, nconns*perConn+1)
	var wg sync.WaitGroup

	// The rude neighbor: raw connections that promise streams, deliver a
	// partial request and vanish — pipelined traffic on the healthy
	// connections must not notice.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			c, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return // listener closing under a tight budget
			}
			var e encoder
			e.begin(frameOpen, 9)
			e.str8("fir")
			e.u32(3)
			c.Write(e.finish())
			if i%2 == 0 { // half the time, one real stream before vanishing
				e.begin(frameStream, 9)
				e.u32(0)
				e.u16(1)
				e.str8("A")
				e.vals(refs[0].inputs["A"])
				c.Write(e.finish())
			}
			c.Close()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	for ci := range conns {
		for w := 0; w < perConn; w++ {
			wg.Add(1)
			go func(conn *Conn, w int) {
				defer wg.Done()
				const batch = 3
				jobs := make([]netlist.Job, batch)
				picked := make([]*soakRef, batch)
				for it := 0; time.Now().Before(deadline); it++ {
					if w == 0 && it%7 == 3 {
						if err := conn.Ping(); err != nil {
							errCh <- fmt.Errorf("ping: %w", err)
							return
						}
					}
					sameKernel := refs[int(next.Add(1))%len(refs)].kernel
					n := 0
					for _, r := range pickRefs(refs, sameKernel) {
						if n == batch {
							break
						}
						picked[n] = r
						jobs[n] = netlist.Job{Inputs: r.inputs,
							Outputs: jobs[n].Outputs, Feedbacks: jobs[n].Feedbacks}
						n++
					}
					requested.Add(int64(n))
					err := conn.Run(sameKernel, jobs[:n])
					if err != nil && !isExpectedFaultBatch(picked[:n]) {
						errCh <- fmt.Errorf("%s: %v", sameKernel, err)
						return
					}
					for i := 0; i < n; i++ {
						if err := checkSoak(&jobs[i], picked[i]); err != nil {
							errCh <- err
							return
						}
						answered.Add(1)
					}
				}
			}(conns[ci], w)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	if requested.Load() != answered.Load() {
		t.Fatalf("dropped responses: %d requested, %d answered", requested.Load(), answered.Load())
	}
	if answered.Load() == 0 {
		t.Fatal("pipelined soak answered zero streams")
	}
	for i, c := range conns {
		if !c.Healthy() {
			t.Errorf("connection %d poisoned by the soak", i)
		}
	}
	if !srv.WaitIdle(10 * time.Second) {
		t.Fatal("server did not drain after the soak")
	}
	for name, st := range srv.Stats() {
		if st.Gets != st.Puts+st.Rejected {
			t.Errorf("pool %s unbalanced after soak: %+v", name, st)
		}
	}
	streams, faults := srv.Served()
	t.Logf("pipelined soak: %d conns x %d goroutines, %d streams served (%d faults) in %s",
		nconns, perConn, streams, faults, budget)
}

// pickRefs returns every reference for one kernel (a request carries
// streams for a single kernel).
func pickRefs(refs []soakRef, kernel string) []*soakRef {
	var out []*soakRef
	for i := range refs {
		if refs[i].kernel == kernel {
			out = append(out, &refs[i])
		}
	}
	return out
}

// isExpectedFaultBatch reports whether any picked reference faults (then
// Run's non-nil error is the contract, not a soak failure).
func isExpectedFaultBatch(picked []*soakRef) bool {
	for _, r := range picked {
		if r != nil && r.fault != nil {
			return true
		}
	}
	return false
}
