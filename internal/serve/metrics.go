package serve

import (
	"encoding/json"
	"net/http"

	"roccc/internal/calib"
	"roccc/internal/netlist"
)

// KernelInfo is the metrics-plane snapshot of one registered kernel.
// Backend fields are only meaningful once Compiled: BackendConfigured
// is what the spec asked for, BackendActive is what the built System
// actually executes on — it diverges from the configured backend when a
// calibration trial picked a faster one, or when the threaded/cone
// backends fall back per-kernel because a plan does not qualify.
// ClosedFormCone reports whether the feedback cone vectorizes in closed
// form (PR 7's fast path). Calibration carries the most recent trial —
// the pick, whether it switched, and every backend's measured ns/iter.
type KernelInfo struct {
	Kernel   string `json:"kernel"`
	Compiled bool   `json:"compiled"`
	Resident bool   `json:"resident"` // warm pool exists (false when evicted/cold)

	BackendConfigured string `json:"backend_configured"`
	BackendActive     string `json:"backend_active,omitempty"`
	ClosedFormCone    bool   `json:"closed_form_cone"`

	Calibrations int64         `json:"calibrations,omitempty"`
	Calibration  *calib.Result `json:"calibration,omitempty"`

	Opens     int64 `json:"opens"`
	Streams   int64 `json:"streams"`
	Faults    int64 `json:"faults"`
	InFlight  int64 `json:"in_flight"`
	HighWater int64 `json:"high_water"`
	Evictions int64 `json:"evictions"`
	LastUse   int64 `json:"last_use"` // server logical tick; 0 = never opened
	MaxIdle   int   `json:"max_idle"` // effective idle cap (<= 0 = uncapped)

	Pool *netlist.PoolStats `json:"pool,omitempty"`
}

// ConnInfo is the metrics-plane snapshot of one live client connection.
type ConnInfo struct {
	Remote  string `json:"remote"`
	Opens   int64  `json:"opens"`
	Streams int64  `json:"streams"`
	Faults  int64  `json:"faults"`
}

// Metrics is the full server snapshot the HTTP endpoint serializes.
type Metrics struct {
	Proto    int   `json:"proto"`
	Workers  int   `json:"workers"`
	Draining bool  `json:"draining"`
	Served   int64 `json:"served"`
	Faults   int64 `json:"faults"`
	Sheds    int64 `json:"sheds"`
	InFlight int64 `json:"in_flight"`
	// Calibrations counts backend trials completed; CalibSwaps the
	// subset whose pick rebuilt a live pool onto a faster backend.
	Calibrations int64        `json:"calibrations"`
	CalibSwaps   int64        `json:"calib_swaps"`
	Kernels      []KernelInfo `json:"kernels"`
	Conns        []ConnInfo   `json:"conns"`
}

// KernelInfos snapshots every registered kernel, sorted by name.
func (s *Server) KernelInfos() []KernelInfo {
	entries := s.sortedEntries()
	infos := make([]KernelInfo, len(entries))
	for i, e := range entries {
		info := KernelInfo{
			Kernel:            e.spec.Name,
			BackendConfigured: e.spec.Config.Backend.String(),
			Calibrations:      e.calibrations.Load(),
			Calibration:       e.lastCalib.Load(),
			Opens:             e.opens.Load(),
			Streams:           e.streams.Load(),
			Faults:            e.faults.Load(),
			InFlight:          e.inflight.Load(),
			HighWater:         e.hwm.Load(),
			Evictions:         e.evictions.Load(),
			LastUse:           e.lastUse.Load(),
			MaxIdle:           e.idleCap(),
		}
		e.mu.Lock()
		info.Compiled = e.compiled != nil
		e.mu.Unlock()
		if pool := e.pool.Load(); pool != nil {
			info.Resident = true
			info.BackendActive = e.backend.String()
			info.ClosedFormCone = e.cone
			st := pool.Stats()
			info.Pool = &st
		}
		infos[i] = info
	}
	return infos
}

// ConnInfos snapshots every live connection's counters.
func (s *Server) ConnInfos() []ConnInfo {
	s.mu.Lock()
	conns := make([]*srvConn, 0, len(s.conns))
	for _, sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	infos := make([]ConnInfo, len(conns))
	for i, sc := range conns {
		infos[i] = ConnInfo{
			Remote:  sc.c.RemoteAddr().String(),
			Opens:   sc.opens.Load(),
			Streams: sc.streams.Load(),
			Faults:  sc.faults.Load(),
		}
	}
	return infos
}

// Metrics snapshots the whole server for the observability plane.
func (s *Server) Metrics() Metrics {
	return Metrics{
		Proto:        ProtoV2,
		Workers:      s.workers,
		Draining:     s.closing.Load(),
		Served:       s.served.Load(),
		Faults:       s.faults.Load(),
		Sheds:        s.sheds.Load(),
		InFlight:     s.inflight.Load(),
		Calibrations: s.calib.calibrations.Load(),
		CalibSwaps:   s.calib.swaps.Load(),
		Kernels:      s.KernelInfos(),
		Conns:        s.ConnInfos(),
	}
}

// MetricsHandler serves the server's metrics snapshot as JSON — mount
// it on any mux (rocccserve exposes it at /metrics).
func (s *Server) MetricsHandler() http.Handler {
	return metricsHandler(func() any { return s.Metrics() })
}

// metricsHandler adapts any snapshot function to a JSON GET endpoint.
func metricsHandler(snapshot func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// FleetMetricsHandler serves any fleet-level snapshot (the fleet
// package cannot import serve's HTTP glue without a cycle, so the
// endpoint is built here from a closure).
func FleetMetricsHandler(snapshot func() any) http.Handler {
	return metricsHandler(snapshot)
}
