package serve

import (
	"context"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roccc/internal/bench"
	"roccc/internal/calib"
	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/netlist"
)

// calibFirSource is an array-streaming kernel the calibration tests
// serve; small enough that a trial is fast even at 1 CPU.
const calibFirSource = `
int A[32];
int B[32];
void fir(void) {
	int i;
	for (i = 0; i < 30; i++) {
		B[i] = A[i] + 2*A[i+1] + A[i+2];
	}
}
`

// calibCombSource has no loop nest: combinational, unservable.
const calibCombSource = `
void comb(int4 a, int4 b, int5* s) {
	*s = a + b;
}
`

var calibFastOpts = calib.Options{Warmup: 1, Reps: 1, Iters: 1}

func calibFirSpec() KernelSpec {
	return KernelSpec{
		Name: "fir", Source: calibFirSource, Func: "fir",
		Options: core.DefaultOptions(), Config: netlist.Config{BusElems: 1},
	}
}

// calibFirRef computes the serial interp ground truth for one input.
func calibFirRef(t *testing.T, inputs map[string][]int64) map[string][]int64 {
	t.Helper()
	res, err := core.CompileSource(calibFirSource, "fir", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := netlist.NewSystem(res.Kernel, res.Datapath, netlist.Config{BusElems: 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, vals := range inputs {
		if err := sys.LoadInput(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	out, err := sys.Output("B")
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]int64{"B": out}
}

func calibFirInputs(seed int64) map[string][]int64 {
	vals := make([]int64, 32)
	for i := range vals {
		vals[i] = (seed*31 + int64(i)*7) % 113
	}
	return map[string][]int64{"A": vals}
}

// CalibrateKernel must compile the kernel, measure every backend,
// publish the result on the metrics plane, and keep serving answers
// bit-identical to serial interp.
func TestCalibrateKernel(t *testing.T) {
	srv := NewServer(2)
	if err := srv.Register(calibFirSpec()); err != nil {
		t.Fatal(err)
	}
	res, err := srv.CalibrateKernel("fir", calibFastOpts)
	if err != nil {
		t.Fatalf("CalibrateKernel: %v", err)
	}
	if got, want := len(res.Samples), len(dp.Backends()); got != want {
		t.Fatalf("%d samples, want %d", got, want)
	}
	if trials, _ := srv.Calibrations(); trials != 1 {
		t.Fatalf("server counted %d trials, want 1", trials)
	}

	m := srv.Metrics()
	if m.Calibrations != 1 {
		t.Fatalf("metrics calibrations = %d, want 1", m.Calibrations)
	}
	var info *KernelInfo
	for i := range m.Kernels {
		if m.Kernels[i].Kernel == "fir" {
			info = &m.Kernels[i]
		}
	}
	if info == nil {
		t.Fatal("fir missing from kernel infos")
	}
	if info.BackendConfigured != "interp" {
		t.Errorf("backend_configured = %q, want interp", info.BackendConfigured)
	}
	if info.BackendActive == "" || !info.Resident {
		t.Errorf("calibrated kernel not resident with an active backend: %+v", info)
	}
	if info.Calibration == nil || info.Calibrations != 1 {
		t.Fatalf("calibration result missing from kernel info: %+v", info)
	}
	if info.Calibration.Picked != res.Picked {
		t.Errorf("info picked %q, result picked %q", info.Calibration.Picked, res.Picked)
	}
	if res.Switched && m.CalibSwaps != 1 {
		t.Errorf("switched pick recorded %d swaps, want 1", m.CalibSwaps)
	}

	// Whatever was picked, served answers stay bit-identical to interp.
	inputs := calibFirInputs(3)
	want := calibFirRef(t, inputs)
	job := netlist.Job{Inputs: inputs}
	if err := srv.RunStream("fir", &job); err != nil {
		t.Fatalf("RunStream after calibration: %v", err)
	}
	for i, v := range want["B"] {
		if job.Outputs["B"][i] != v {
			t.Fatalf("B[%d] = %d on %s, interp says %d", i, job.Outputs["B"][i], res.Picked, v)
		}
	}
}

// Auto-calibration arms the first-compile trigger: the first request
// for a kernel measures it before its first pool is built, and a
// combinational kernel still refuses with the same diagnosis.
func TestAutoCalibrateOnFirstCompile(t *testing.T) {
	srv := NewServer(2)
	srv.SetAutoCalibrate(true, calibFastOpts)
	if err := srv.Register(calibFirSpec()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(KernelSpec{
		Name: "comb", Source: calibCombSource, Func: "comb",
		Options: core.DefaultOptions(),
		Config:  netlist.Config{BusElems: 1, Scalars: map[string]int64{"a": 1, "b": 2}},
	}); err != nil {
		t.Fatal(err)
	}

	inputs := calibFirInputs(9)
	want := calibFirRef(t, inputs)
	job := netlist.Job{Inputs: inputs}
	if err := srv.RunStream("fir", &job); err != nil {
		t.Fatalf("first stream: %v", err)
	}
	for i, v := range want["B"] {
		if job.Outputs["B"][i] != v {
			t.Fatalf("B[%d] = %d, interp says %d", i, job.Outputs["B"][i], v)
		}
	}
	if trials, _ := srv.Calibrations(); trials == 0 {
		t.Fatal("first compile did not trigger a calibration trial")
	}

	cjob := netlist.Job{}
	if err := srv.RunStream("comb", &cjob); err == nil ||
		!strings.Contains(err.Error(), "no loop nest") {
		t.Fatalf("combinational kernel under auto-calibration returned %v, want a no-loop-nest refusal", err)
	}
}

// Calibrate (the hygiene-tick pass) covers compiled kernels only; cold
// ones wait for their first request.
func TestCalibratePassSkipsCold(t *testing.T) {
	srv := NewServer(2)
	if err := srv.Register(calibFirSpec()); err != nil {
		t.Fatal(err)
	}
	spec := calibFirSpec()
	spec.Name = "fir2"
	if err := srv.Register(spec); err != nil {
		t.Fatal(err)
	}
	job := netlist.Job{Inputs: calibFirInputs(1)}
	if err := srv.RunStream("fir", &job); err != nil {
		t.Fatal(err)
	}
	results, err := srv.Calibrate(calibFastOpts)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if len(results) != 1 || results[0].Kernel != "fir" {
		t.Fatalf("calibrated %d kernels %v, want just the compiled fir", len(results), results)
	}
}

// On a machine with real parallelism, calibrating mul_acc — 1024
// feedback iterations the closed-form cone collapses — must abandon
// the interpreter for a cone-vectorized backend (threaded or cone; both
// carry the closed form, and which one wins a timed trial is machine
// noise). Skipped below 4 CPUs: a starved runner's timings are noise.
func TestCalibrationPicksConeForMulAcc(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for stable trial timings, have %d", runtime.NumCPU())
	}
	srv := NewServer(0)
	if err := srv.Register(SpecFor(bench.MulAcc())); err != nil {
		t.Fatal(err)
	}
	res, err := srv.CalibrateKernel("mul_acc", calib.Options{Warmup: 2, Reps: 3, Iters: 8})
	if err != nil {
		t.Fatalf("CalibrateKernel: %v", err)
	}
	if res.Picked == dp.BackendInterp.String() {
		t.Fatalf("calibration kept interp for mul_acc: %+v", res.Samples)
	}
	var info *KernelInfo
	for _, ki := range srv.KernelInfos() {
		if ki.Kernel == "mul_acc" {
			k := ki
			info = &k
		}
	}
	if info == nil || !info.ClosedFormCone {
		t.Fatalf("picked backend %q does not report a closed-form cone: %+v", res.Picked, info)
	}
	if info.BackendActive != res.Picked {
		t.Errorf("backend_active = %q, pick was %q", info.BackendActive, res.Picked)
	}
}

// The acceptance gate: backend swaps under live pipelined streams must
// be invisible — zero client-visible errors, answers bit-identical to
// interp throughout, and balanced pool admission after the drain. The
// swap path exercised here (swapLocked) is exactly the one a switched
// calibration pick takes.
func TestBackendSwapUnderLiveStreams(t *testing.T) {
	srv := NewServer(4)
	if err := srv.Register(calibFirSpec()); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	// Fixed request set with precomputed interp ground truth.
	const variants = 4
	inputs := make([]map[string][]int64, variants)
	want := make([]map[string][]int64, variants)
	for i := range inputs {
		inputs[i] = calibFirInputs(int64(i) + 11)
		want[i] = calibFirRef(t, inputs[i])
	}

	conn, err := DialPipelined(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Warm the kernel so the entry is compiled before the first swap.
	warm := []netlist.Job{{Inputs: inputs[0]}}
	if err := conn.Run("fir", warm); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var streamsDone atomic.Int64
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; !stop.Load(); n++ {
				v := (g + n) % variants
				jobs := []netlist.Job{{Inputs: inputs[v]}, {Inputs: inputs[(v+1)%variants]}}
				if err := conn.Run("fir", jobs); err != nil {
					errc <- err
					return
				}
				for j := range jobs {
					w := want[(v+j)%variants]["B"]
					for i, x := range w {
						if jobs[j].Outputs["B"][i] != x {
							t.Errorf("stream output B[%d] = %d mid-swap, interp says %d", i, jobs[j].Outputs["B"][i], x)
							return
						}
					}
				}
				streamsDone.Add(int64(len(jobs)))
			}
		}(g)
	}

	// Cycle the backend under load: every transition is a full pool swap
	// on the live serving path.
	srv.mu.Lock()
	e := srv.kernels["fir"]
	srv.mu.Unlock()
	cycle := []dp.Backend{dp.BackendThreaded, dp.BackendCone, dp.BackendInterp, dp.BackendThreaded}
	for _, b := range cycle {
		time.Sleep(10 * time.Millisecond)
		e.mu.Lock()
		err := e.swapLocked(b)
		e.mu.Unlock()
		if err != nil {
			t.Fatalf("swap to %v: %v", b, err)
		}
	}
	time.Sleep(10 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("client-visible error during backend swaps: %v", err)
	}
	if streamsDone.Load() == 0 {
		t.Fatal("no streams completed while swapping")
	}
	if _, swaps := srv.Calibrations(); swaps != int64(len(cycle)) {
		t.Errorf("recorded %d swaps, want %d", swaps, len(cycle))
	}
	if !srv.WaitIdle(5 * time.Second) {
		t.Fatal("server did not drain")
	}
	st, ok := srv.Stats()["fir"]
	if !ok {
		t.Fatal("no pool stats for fir")
	}
	if st.Gets != st.Puts+st.Rejected {
		t.Fatalf("pool unbalanced after swaps: %+v", st)
	}
	if _, faults := srv.Served(); faults != 0 {
		t.Fatalf("%d faults served during swaps", faults)
	}
}
