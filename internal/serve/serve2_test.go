package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/netlist"
)

// TestProtoV1Compat pins the v1 byte stream: the request is assembled
// by hand with encoding/binary — NOT the package encoder — and the
// response parsed the same way, so any change to the wire layout breaks
// this test even if encoder and decoder change in lockstep. A v1 client
// never sends a hello, so this also proves the v2 server serves
// hello-less connections unchanged.
func TestProtoV1Compat(t *testing.T) {
	_, addr := startServer(t, 2)

	in := make([]int64, 32)
	var wantSum int64
	for i := range in {
		in[i] = int64(i*7 - 100)
		wantSum += in[i]
	}
	// Serial reference for the cycle count.
	res, err := core.CompileSource(accumSource, "accum", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := netlist.NewSystem(res.Kernel, res.Datapath, netlist.Config{BusElems: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadInput("A", in); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	wantCycles := uint64(sys.Cycles())

	// The pinned v1 request: Open("accum", 1 stream) + Stream(0, A=in).
	const req = 7
	open := []byte{frameOpen}
	open = binary.BigEndian.AppendUint32(open, req)
	open = append(open, byte(len("accum")))
	open = append(open, "accum"...)
	open = binary.BigEndian.AppendUint32(open, 1)

	stream := []byte{frameStream}
	stream = binary.BigEndian.AppendUint32(stream, req)
	stream = binary.BigEndian.AppendUint32(stream, 0) // stream idx
	stream = binary.BigEndian.AppendUint16(stream, 1) // one input array
	stream = append(stream, 1, 'A')
	stream = binary.BigEndian.AppendUint32(stream, uint32(len(in)))
	for _, v := range in {
		stream = binary.BigEndian.AppendUint64(stream, uint64(v))
	}

	var raw []byte
	for _, body := range [][]byte{open, stream} {
		raw = binary.BigEndian.AppendUint32(raw, uint32(len(body)))
		raw = append(raw, body...)
	}

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := c.Write(raw); err != nil {
		t.Fatal(err)
	}

	readRaw := func() []byte {
		t.Helper()
		var hdr [4]byte
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			t.Fatal(err)
		}
		p := make([]byte, binary.BigEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(c, p); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Result frame: 'R', req, idx=0, u64 cycles, u16 0 outputs,
	// u16 1 feedback, str8 "sum", i64 value — exactly 33 bytes.
	rp := readRaw()
	if len(rp) != 33 || rp[0] != frameResult {
		t.Fatalf("result frame = % x (len %d)", rp, len(rp))
	}
	if got := binary.BigEndian.Uint32(rp[1:5]); got != req {
		t.Fatalf("result request id = %d, want %d", got, req)
	}
	if got := binary.BigEndian.Uint32(rp[5:9]); got != 0 {
		t.Fatalf("result stream idx = %d, want 0", got)
	}
	if got := binary.BigEndian.Uint64(rp[9:17]); got != wantCycles {
		t.Fatalf("served %d cycles, serial %d", got, wantCycles)
	}
	if nouts := binary.BigEndian.Uint16(rp[17:19]); nouts != 0 {
		t.Fatalf("%d output arrays, want 0", nouts)
	}
	if nfb := binary.BigEndian.Uint16(rp[19:21]); nfb != 1 {
		t.Fatalf("%d feedbacks, want 1", nfb)
	}
	if rp[21] != 3 || string(rp[22:25]) != "sum" {
		t.Fatalf("feedback name bytes = % x", rp[21:25])
	}
	if got := int64(binary.BigEndian.Uint64(rp[25:33])); got != wantSum {
		t.Fatalf("served sum = %d, serial %d", got, wantSum)
	}

	// Done frame: 'D', req — exactly 5 bytes.
	dpf := readRaw()
	if len(dpf) != 5 || dpf[0] != frameDone || binary.BigEndian.Uint32(dpf[1:5]) != req {
		t.Fatalf("done frame = % x", dpf)
	}
}

// TestDialPipelinedV1Server: against a server that does not speak v2 the
// pipelined dial must fail with an error telling the caller what
// happened and what to use instead — never hang, never fall back
// silently to serial framing.
func TestDialPipelinedV1Server(t *testing.T) {
	// A v1 server answers the unknown 'V' frame with a request-level
	// error and closes; a misconfigured v2 server could also answer the
	// hello with a downgraded version. Both must refuse cleanly.
	fake := func(t *testing.T, respond func(c net.Conn, req uint32)) string {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			payload, err := readFrame(c, nil)
			if err != nil {
				return
			}
			d := decoder{b: payload}
			if typ := d.u8(); typ != frameHello {
				return
			}
			respond(c, d.u32())
		}()
		return ln.Addr().String()
	}

	t.Run("v1-error-close", func(t *testing.T) {
		addr := fake(t, func(c net.Conn, req uint32) {
			var e encoder
			e.begin(frameError, req)
			e.u32(streamNone)
			e.str16(`serve: unexpected frame type 'V'`)
			c.Write(e.finish())
		})
		_, err := DialPipelined(addr)
		if err == nil || !strings.Contains(err.Error(), "protocol v1") || !strings.Contains(err.Error(), "use Dial") {
			t.Fatalf("err = %v, want a protocol-v1 refusal pointing at Dial", err)
		}
	})
	t.Run("downgraded-hello", func(t *testing.T) {
		addr := fake(t, func(c net.Conn, req uint32) {
			var e encoder
			e.begin(frameHello, req)
			e.u16(ProtoV1)
			c.Write(e.finish())
		})
		_, err := DialPipelined(addr)
		if err == nil || !strings.Contains(err.Error(), "negotiated protocol v1") {
			t.Fatalf("err = %v, want a negotiated-v1 refusal", err)
		}
	})
}

// TestServePipelinedConcurrent: many goroutines share ONE pipelined
// connection — mixed kernels, a guaranteed fault, keepalives — and every
// response must land on the request that asked for it, bit-identical to
// the serial ground truth. A request-level failure (unknown kernel) must
// fail only its own Run, leaving the connection healthy.
func TestServePipelinedConcurrent(t *testing.T) {
	_, addr := startServer(t, 4)
	conn, err := DialPipelined(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Serial ground truth, computed once.
	type ref struct {
		out    []int64
		cycles int
	}
	refs := map[int64]ref{}
	for seed := int64(1); seed <= 6; seed++ {
		out, cycles := serialFIR(t, firStream(seed))
		refs[seed] = ref{out, cycles}
	}
	accumIn := make([]int64, 32)
	var accumSum int64
	for i := range accumIn {
		accumIn[i] = int64(i*13 - 170)
		accumSum += accumIn[i]
	}
	divA := make([]int64, 24)
	divB := make([]int64, 24)
	for i := range divA {
		divA[i] = int64(i + 2)
		divB[i] = 4
	}
	divB[9] = 0
	res, err := core.CompileSource(dividerSource, "divide", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dsys, err := netlist.NewSystem(res.Kernel, res.Datapath, netlist.Config{BusElems: 1})
	if err != nil {
		t.Fatal(err)
	}
	dsys.LoadInput("A", divA)
	dsys.LoadInput("B", divB)
	_, serialErr := dsys.Run()
	var wantFault *dp.FaultError
	if !errors.As(serialErr, &wantFault) {
		t.Fatalf("serial divide did not fault: %v", serialErr)
	}

	const goroutines = 8
	const iters = 6
	errCh := make(chan error, goroutines)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			jobs := make([]netlist.Job, 3)
			seeds := make([]int64, 3)
			for it := 0; it < iters; it++ {
				for i := range jobs {
					seeds[i] = int64((g+it+i)%6) + 1
					jobs[i] = netlist.Job{Inputs: firStream(seeds[i]),
						Outputs: jobs[i].Outputs, Feedbacks: jobs[i].Feedbacks}
				}
				if err := conn.Run("fir", jobs); err != nil {
					fail(err)
					return
				}
				for i := range jobs {
					want := refs[seeds[i]]
					if jobs[i].Cycles != want.cycles {
						fail(errors.New("fir cycle mismatch under pipelining"))
						return
					}
					for j := range want.out {
						if jobs[i].Outputs["C"][j] != want.out[j] {
							fail(errors.New("fir output cross-wired under pipelining"))
							return
						}
					}
				}
				switch g % 3 {
				case 0:
					a := []netlist.Job{{Inputs: map[string][]int64{"A": accumIn}}}
					if err := conn.Run("accum", a); err != nil {
						fail(err)
						return
					}
					if a[0].Feedbacks["sum"] != accumSum {
						fail(errors.New("accum sum cross-wired under pipelining"))
						return
					}
				case 1:
					d := []netlist.Job{{Inputs: map[string][]int64{"A": divA, "B": divB}}}
					if err := conn.Run("divide", d); err == nil {
						fail(errors.New("guaranteed fault returned nil"))
						return
					}
					var fe *dp.FaultError
					if !errors.As(d[0].Err, &fe) || fe.Cycle != wantFault.Cycle || fe.Msg != wantFault.Msg {
						fail(errors.New("served fault does not match serial fault"))
						return
					}
				case 2:
					if it%2 == 0 {
						if err := conn.Ping(); err != nil {
							fail(err)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Request-level failure only fails its own Run.
	if err := conn.Run("nope", []netlist.Job{{Inputs: firStream(1)}}); err == nil ||
		!strings.Contains(err.Error(), `unknown kernel "nope"`) {
		t.Fatalf("unknown-kernel err = %v", err)
	}
	if !conn.Healthy() {
		t.Fatal("connection poisoned by a request-level error")
	}
	final := []netlist.Job{{Inputs: firStream(2)}}
	if err := conn.Run("fir", final); err != nil {
		t.Fatalf("connection unusable after request error: %v", err)
	}
	if final[0].Cycles != refs[2].cycles {
		t.Fatal("post-error request mismatched serial reference")
	}
}

// TestServePing: the keepalive round-trips on a pipelined conn and is
// refused with a clear error on a serial one.
func TestServePing(t *testing.T) {
	_, addr := startServer(t, 1)
	pc, err := DialPipelined(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	for i := 0; i < 3; i++ {
		if err := pc.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	sc, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if err := sc.Ping(); err == nil || !strings.Contains(err.Error(), "pipelined") {
		t.Fatalf("serial Ping err = %v, want a pipelined-only refusal", err)
	}
}

// TestServeEvictionRebuild: evicting a kernel drops only its warm pool.
// The compiled artifacts and every plan on hir.Kernel.PlanCache survive
// — the next request rebuilds the pool from the cached plans, with
// results identical to before, and no plan is ever rebuilt (pointer
// identity across the eviction proves it).
func TestServeEvictionRebuild(t *testing.T) {
	srv := NewServer(2)
	if err := srv.Register(testSpecs()[0]); err != nil { // fir
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	local := srv.Local()

	jobs := []netlist.Job{{Inputs: firStream(11)}}
	if err := local.Run("fir", jobs); err != nil {
		t.Fatal(err)
	}
	baseline := append([]int64(nil), jobs[0].Outputs["C"]...)
	baseCycles := jobs[0].Cycles

	srv.mu.Lock()
	e := srv.kernels["fir"]
	srv.mu.Unlock()
	e.mu.Lock()
	compiled := e.compiled
	e.mu.Unlock()
	if compiled == nil {
		t.Fatal("kernel not compiled after first use")
	}
	plans := map[any]any{}
	compiled.Kernel.PlanCache.Range(func(k, v any) bool { plans[k] = v; return true })
	if len(plans) == 0 {
		t.Fatal("no system plans cached after first use")
	}

	if err := srv.Evict("fir"); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if e.pool.Load() != nil {
		t.Fatal("pool survived eviction")
	}
	var cold KernelInfo
	for _, info := range srv.KernelInfos() {
		if info.Kernel == "fir" {
			cold = info
		}
	}
	if !cold.Compiled || cold.Resident || cold.Evictions != 1 {
		t.Fatalf("post-evict metrics = %+v, want compiled, not resident, 1 eviction", cold)
	}
	// Evicting a cold kernel is a no-op, not an error.
	if err := srv.Evict("fir"); err != nil {
		t.Fatalf("second Evict: %v", err)
	}

	jobs2 := []netlist.Job{{Inputs: firStream(11)}}
	if err := local.Run("fir", jobs2); err != nil {
		t.Fatalf("post-eviction run: %v", err)
	}
	if jobs2[0].Cycles != baseCycles {
		t.Fatalf("post-eviction cycles %d, want %d", jobs2[0].Cycles, baseCycles)
	}
	for i := range baseline {
		if jobs2[0].Outputs["C"][i] != baseline[i] {
			t.Fatalf("post-eviction C[%d] = %d, want %d", i, jobs2[0].Outputs["C"][i], baseline[i])
		}
	}

	e.mu.Lock()
	again := e.compiled
	e.mu.Unlock()
	if again != compiled {
		t.Fatal("eviction triggered a recompile: compiled result replaced")
	}
	compiled.Kernel.PlanCache.Range(func(k, v any) bool {
		if prev, ok := plans[k]; ok && prev != v {
			t.Errorf("system plan rebuilt after eviction for key %v", k)
		}
		return true
	})
	if e.pool.Load() == nil {
		t.Fatal("pool not rebuilt by post-eviction request")
	}
}

// TestServeEvictBusy: eviction must refuse — typed, matchable with
// errors.Is — while the kernel has in-flight streams, and succeed once
// they drain.
func TestServeEvictBusy(t *testing.T) {
	srv := NewServer(1)
	if err := srv.Register(testSpecs()[0]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	jobs := []netlist.Job{{Inputs: firStream(1)}}
	if err := srv.Local().Run("fir", jobs); err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	e := srv.kernels["fir"]
	srv.mu.Unlock()

	e.inflight.Add(1) // a stream is mid-execution
	err := srv.Evict("fir")
	if !errors.Is(err, ErrEvictBusy) {
		t.Fatalf("Evict with in-flight stream: %v, want ErrEvictBusy", err)
	}
	if e.pool.Load() == nil {
		t.Fatal("refused eviction still dropped the pool")
	}
	e.inflight.Add(-1)
	if err := srv.Evict("fir"); err != nil {
		t.Fatalf("Evict after drain: %v", err)
	}
}

// TestServeEvictionInvisible races a client against an eviction loop:
// clients must never observe an error or a wrong bit — a stream that
// loses the race sees ErrPoolClosed internally and retries on the
// rebuilt pool.
func TestServeEvictionInvisible(t *testing.T) {
	srv := NewServer(2)
	if err := srv.Register(testSpecs()[0]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	local := srv.Local()
	want, wantCycles := serialFIR(t, firStream(9))

	// A free-running evictor probes the eviction/stream races (it mostly
	// sees ErrEvictBusy); the deterministic evictions happen in the client
	// loop below, where inflight is guaranteed zero.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				srv.Evict("fir") // ErrEvictBusy while streams run: fine
				runtime.Gosched()
			}
		}
	}()

	jobs := make([]netlist.Job, 1)
	for i := 0; i < 150; i++ {
		if i%10 == 5 {
			if err := srv.Evict("fir"); err != nil && !errors.Is(err, ErrEvictBusy) {
				t.Fatalf("iteration %d: Evict: %v", i, err)
			}
		}
		jobs[0] = netlist.Job{Inputs: firStream(9), Outputs: jobs[0].Outputs}
		if err := local.Run("fir", jobs); err != nil {
			t.Fatalf("iteration %d: eviction leaked to the client: %v", i, err)
		}
		if jobs[0].Cycles != wantCycles {
			t.Fatalf("iteration %d: %d cycles, want %d", i, jobs[0].Cycles, wantCycles)
		}
		for j := range want {
			if jobs[0].Outputs["C"][j] != want[j] {
				t.Fatalf("iteration %d: C[%d] = %d, want %d", i, j, jobs[0].Outputs["C"][j], want[j])
			}
		}
	}
	close(stop)
	wg.Wait()

	srv.mu.Lock()
	e := srv.kernels["fir"]
	srv.mu.Unlock()
	if e.evictions.Load() == 0 {
		t.Fatal("eviction loop never actually evicted")
	}
}

// TestServeSetMaxIdleFor: the per-kernel idle cap overrides the
// server-wide one, trims the warm pool immediately, and clears back to
// inherited on a negative value.
func TestServeSetMaxIdleFor(t *testing.T) {
	srv := NewServer(4)
	if err := srv.Register(testSpecs()[0]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	local := srv.Local()
	// A wide batch forces several pooled Systems to exist.
	jobs := make([]netlist.Job, 8)
	for i := range jobs {
		jobs[i] = netlist.Job{Inputs: firStream(int64(i))}
	}
	if err := local.Run("fir", jobs); err != nil {
		t.Fatal(err)
	}
	if idle := srv.Stats()["fir"].Idle; idle < 2 {
		t.Skipf("pool kept only %d idle Systems; nothing to trim", idle)
	}

	if err := srv.SetMaxIdleFor("fir", 1); err != nil {
		t.Fatal(err)
	}
	if idle := srv.Stats()["fir"].Idle; idle > 1 {
		t.Fatalf("idle = %d after SetMaxIdleFor(1)", idle)
	}
	var info KernelInfo
	for _, ki := range srv.KernelInfos() {
		if ki.Kernel == "fir" {
			info = ki
		}
	}
	if info.MaxIdle != 1 {
		t.Fatalf("KernelInfo.MaxIdle = %d, want 1", info.MaxIdle)
	}

	// The server-wide cap must not override the pinned kernel...
	srv.SetMaxIdle(6)
	srv.mu.Lock()
	e := srv.kernels["fir"]
	srv.mu.Unlock()
	if got := e.idleCap(); got != 1 {
		t.Fatalf("idleCap = %d after server-wide SetMaxIdle, want pinned 1", got)
	}
	// ...until the override is cleared.
	if err := srv.SetMaxIdleFor("fir", -1); err != nil {
		t.Fatal(err)
	}
	if got := e.idleCap(); got != 6 {
		t.Fatalf("idleCap = %d after clearing override, want inherited 6", got)
	}
	if err := srv.SetMaxIdleFor("nope", 1); err == nil {
		t.Fatal("SetMaxIdleFor on an unknown kernel succeeded")
	}
}

// TestServeMetricsEndpoint is the observability acceptance test: the
// HTTP endpoint's JSON must decode back into the Metrics shape and
// report, for every kernel, the backend the pooled Systems actually
// execute on and whether the feedback cone is closed-form — verified
// against an independently built System with the same config.
func TestServeMetricsEndpoint(t *testing.T) {
	srv := NewServer(2)
	type probe struct {
		source, fn string
		cfg        netlist.Config
	}
	probes := map[string]probe{}
	for _, b := range dp.Backends() {
		cfg := netlist.Config{BusElems: 1, Backend: b}
		for _, k := range []struct{ name, source, fn string }{
			{"fir-" + b.String(), firSource, "fir"},
			{"accum-" + b.String(), accumSource, "accum"},
		} {
			if err := srv.Register(KernelSpec{Name: k.name, Source: k.source, Func: k.fn,
				Options: core.DefaultOptions(), Config: cfg}); err != nil {
				t.Fatal(err)
			}
			probes[k.name] = probe{k.source, k.fn, cfg}
		}
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	local := srv.Local()
	ain := make([]int64, 32)
	for name := range probes {
		in := firStream(3)
		if strings.HasPrefix(name, "accum") {
			in = map[string][]int64{"A": ain}
		}
		if err := local.Run(name, []netlist.Job{{Inputs: in}}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	hs := httptest.NewServer(srv.MetricsHandler())
	defer hs.Close()
	resp, err := http.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}

	if m.Proto != ProtoV2 || m.Workers != 2 || m.Draining {
		t.Fatalf("metrics header = %+v", m)
	}
	if m.Served != int64(len(probes)) {
		t.Fatalf("served = %d, want %d", m.Served, len(probes))
	}
	if len(m.Kernels) != len(probes) {
		t.Fatalf("%d kernels in metrics, want %d", len(m.Kernels), len(probes))
	}
	if !sort.SliceIsSorted(m.Kernels, func(i, j int) bool {
		return m.Kernels[i].Kernel < m.Kernels[j].Kernel
	}) {
		t.Fatal("kernel infos not sorted by name")
	}
	for _, info := range m.Kernels {
		p := probes[info.Kernel]
		res, err := core.CompileSource(p.source, p.fn, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		sys, err := netlist.NewSystem(res.Kernel, res.Datapath, p.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Compiled || !info.Resident {
			t.Errorf("%s: compiled=%v resident=%v after serving", info.Kernel, info.Compiled, info.Resident)
		}
		if info.BackendConfigured != p.cfg.Backend.String() {
			t.Errorf("%s: configured backend %q, want %q", info.Kernel, info.BackendConfigured, p.cfg.Backend.String())
		}
		if want := sys.Backend().String(); info.BackendActive != want {
			t.Errorf("%s: active backend %q, independent System says %q", info.Kernel, info.BackendActive, want)
		}
		if want := sys.HasClosedFormCone(); info.ClosedFormCone != want {
			t.Errorf("%s: closed_form_cone %v, independent System says %v", info.Kernel, info.ClosedFormCone, want)
		}
		if info.Opens != 1 || info.Streams != 1 || info.LastUse == 0 {
			t.Errorf("%s: opens=%d streams=%d lastUse=%d, want 1/1/nonzero", info.Kernel, info.Opens, info.Streams, info.LastUse)
		}
		if info.Pool == nil || info.Pool.Gets == 0 || info.Pool.Gets != info.Pool.Puts+info.Pool.Rejected {
			t.Errorf("%s: pool stats missing or unbalanced: %+v", info.Kernel, info.Pool)
		}
	}
	if len(m.Conns) != 0 {
		t.Fatalf("%d conns reported with no TCP clients", len(m.Conns))
	}
}
