package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"roccc/internal/calib"
	"roccc/internal/dp"
	"roccc/internal/netlist"
)

// calibrate.go closes the measure→pick loop over the kernel registry:
// calib.Trial measures one compiled kernel on every execution backend,
// and the winner (past the noise floor) replaces the kernel's pool —
// live, under traffic, using the same swap discipline as eviction.
//
// The swap is invisible to clients by construction. Streams capture a
// pool pointer (getPool) before running; a swap stores the replacement
// pool and closes the old one. In-flight jobs already past the old
// pool's closed check finish there — bit-identical by the backend
// differential contract — and anyone arriving afterwards observes
// ErrPoolClosed, which RunStream already retries on the current pool.
// Each pool stays individually balanced (Gets == Puts + Rejected), so
// the metrics plane never sees a leak.
//
// Triggers, in increasing automation:
//
//   - CalibrateKernel: one kernel on demand (compiling it if cold);
//   - Calibrate: every compiled kernel (rocccserve's hygiene tick);
//   - SetAutoCalibrate: every kernel at first compile, inside ensure —
//     the on-register trigger, deferred to first use because
//     registration itself never compiles.

// calibState is the server-wide calibration configuration and counters,
// embedded in Server.
type calibState struct {
	mu  sync.Mutex
	opt calib.Options
	on  bool

	calibrations atomic.Int64 // trials completed
	swaps        atomic.Int64 // trials whose pick rebuilt a live pool
}

// SetAutoCalibrate arms (or disarms) calibration at first compile:
// every kernel entering service measures all backends before its first
// pool is built, so the pool is born on the winner. opt bounds each
// trial; the zero Options selects the calib defaults.
func (s *Server) SetAutoCalibrate(on bool, opt calib.Options) {
	s.calib.mu.Lock()
	s.calib.opt = opt
	s.calib.on = on
	s.calib.mu.Unlock()
}

// calibOptions snapshots the armed trial options (zero when never set).
func (s *Server) calibOptions() (calib.Options, bool) {
	s.calib.mu.Lock()
	defer s.calib.mu.Unlock()
	return s.calib.opt, s.calib.on
}

// Calibrations reports trials completed and live pool swaps performed.
func (s *Server) Calibrations() (trials, swaps int64) {
	return s.calib.calibrations.Load(), s.calib.swaps.Load()
}

// Calibrate measures every compiled, servable kernel on every backend
// and swaps pools onto the winners, returning one Result per kernel
// trialed (name order). Cold kernels are skipped — they calibrate at
// first compile when auto-calibration is armed, or via CalibrateKernel.
// The first trial failure aborts the pass; results already collected
// are returned with it.
func (s *Server) Calibrate(opt calib.Options) ([]*calib.Result, error) {
	var out []*calib.Result
	for _, e := range s.sortedEntries() {
		e.mu.Lock()
		if e.compiled == nil || e.cerr != nil {
			e.mu.Unlock()
			continue
		}
		res, err := e.calibrateLocked(opt)
		e.mu.Unlock()
		if err != nil {
			return out, fmt.Errorf("serve: calibrate %q: %w", e.spec.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// CalibrateKernel measures one kernel (compiling it on first use) and
// swaps its pool onto the winner. A combinational kernel fails with
// netlist.ErrCombinational inside the error, same as serving it would.
func (s *Server) CalibrateKernel(name string, opt calib.Options) (*calib.Result, error) {
	s.mu.Lock()
	e, ok := s.kernels[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown kernel %q", name)
	}
	if err := e.ensure(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calibrateLocked(opt)
}

// effectiveConfig is the spec config with the calibration pick (if any)
// overriding the backend — the configuration pools are built with.
func (e *kernelEntry) effectiveConfig() netlist.Config {
	cfg := e.spec.Config
	if p := e.picked.Load(); p > 0 {
		cfg.Backend = dp.Backend(p - 1)
	}
	return cfg
}

// calibrateLocked runs one trial and applies the pick. Caller holds
// e.mu with e.compiled non-nil; the trial defends the current effective
// backend (the spec's, or the previous pick), so recalibration under a
// stable machine is a no-op past the noise floor.
func (e *kernelEntry) calibrateLocked(opt calib.Options) (*calib.Result, error) {
	res, err := calib.Trial(e.spec.Name, e.compiled.Kernel, e.compiled.Datapath, e.effectiveConfig(), nil, opt)
	if err != nil {
		return nil, err
	}
	e.lastCalib.Store(res)
	e.calibrations.Add(1)
	e.srv.calib.calibrations.Add(1)
	if !res.Switched {
		return res, nil
	}
	if err := e.swapLocked(res.PickedBackend); err != nil {
		// A backend that just completed trials must build; give the pick
		// back rather than serving a half-applied state.
		e.picked.Store(0)
		return nil, fmt.Errorf("rebuild pool on %s: %w", res.Picked, err)
	}
	return res, nil
}

// swapLocked pins b as the kernel's backend pick and, when a pool is
// live, rebuilds it eviction-style: build the replacement fully,
// publish it, then close the old pool. In-flight streams finish on the
// old pool — bit-identical by the differential contract — and late
// arrivals retry onto the new one via ErrPoolClosed. On a cold entry
// (first-compile auto-calibration, post-eviction) the pick alone
// suffices: ensure builds the next pool on it. Caller holds e.mu.
func (e *kernelEntry) swapLocked(b dp.Backend) error {
	e.picked.Store(int32(b) + 1)
	old := e.pool.Load()
	if old == nil {
		return nil
	}
	pool, err := netlist.NewSystemPool(e.compiled.Kernel, e.compiled.Datapath, e.effectiveConfig(), e.srv.workers)
	if err != nil {
		return err
	}
	pool.SetMaxIdle(e.idleCap())
	if sys, gerr := pool.Get(); gerr == nil {
		e.backend = sys.Backend()
		e.cone = sys.HasClosedFormCone()
		pool.Put(sys)
	}
	e.pool.Store(pool)
	old.Close()
	e.srv.calib.swaps.Add(1)
	return nil
}

// autoCalibrateLocked is ensure's first-compile hook: when
// auto-calibration is armed, trial the freshly compiled kernel so the
// first pool is built on the winner. Failures are advisory — a
// combinational kernel's trial fails exactly like its pool build will,
// and the pool build's error is the one worth latching.
func (e *kernelEntry) autoCalibrateLocked() {
	opt, on := e.srv.calibOptions()
	if !on {
		return
	}
	if _, err := e.calibrateLocked(opt); err != nil && !errors.Is(err, netlist.ErrCombinational) {
		// Non-combinational trial failures leave the spec backend in
		// place; serving proceeds uncalibrated.
		e.picked.Store(0)
	}
}
