package serve

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire protocol: length-prefixed binary frames over a byte stream.
//
// Every frame is
//
//	u32  payload length (big-endian, not counting these 4 bytes)
//	u8   frame type
//	u32  request id
//	...  type-specific body
//
// Client → server:
//
//	'V' hello   u16 protocol version (the highest the client speaks)
//	'O' open    u8 kernel-name-len, name, u32 stream-count
//	'S' stream  u32 stream-idx, u16 #arrays,
//	            each: u8 name-len, name, u32 #elems, elems × i64
//	'K' keepalive (empty body; the server echoes it, request id intact)
//
// Server → client:
//
//	'V' hello   u16 protocol version (min of client's and server's)
//	'R' result  u32 stream-idx, u64 cycles,
//	            u16 #outputs,   each: u8 name-len, name, u32 #elems, elems × i64
//	            u16 #feedbacks, each: u8 name-len, name, i64 value
//	'F' fault   u32 stream-idx, u32 abort-cycle, u8 op-len, op,
//	            u16 msg-len, msg      (a dp.FaultError, cycle-exact)
//	'E' error   u32 stream-idx (0xFFFFFFFF = request-level), u16 msg-len, msg
//	'D' done    (empty body: every stream of the request was answered)
//	'K' keepalive (echo of a client keepalive)
//
// A request is one 'O' frame followed by exactly stream-count 'S'
// frames. The server answers each stream with one 'R', 'F' or
// stream-level 'E' frame — in completion order, not stream order; the
// stream-idx identifies the stream — and finishes the request with 'D'.
// A request-level 'E' (unknown kernel, kernel fails to compile, server
// draining) aborts the whole request: no 'D' follows and subsequent 'S'
// frames for that request id are discarded. Backpressure is the byte
// stream's own: the server stops reading while its per-connection
// executor is saturated, and a client that stops reading eventually
// blocks the server's writes.
//
// Versioning. Protocol v1 (PR 4) is the frame set above minus 'V' and
// 'K': one request in flight per connection, no negotiation. Protocol
// v2 keeps every v1 frame byte-for-byte identical and adds the hello
// handshake and keepalive, which is what makes pipelining safe to rely
// on: a v1 client's byte stream is a valid v2 byte stream, so v1
// clients work against a v2 server unchanged, while a pipelined (v2)
// client opens with 'V' and refuses to run against a server that does
// not ack it — a v1 server answers the unknown frame type with a
// request-level 'E' and closes. With the handshake done, one
// connection carries many requests concurrently: request ids demux the
// responses client-side, and the server's per-connection executor
// becomes a per-request-slot semaphore shared by all of them.
const (
	frameHello     = 'V'
	frameOpen      = 'O'
	frameStream    = 'S'
	frameResult    = 'R'
	frameFault     = 'F'
	frameError     = 'E'
	frameDone      = 'D'
	frameKeepAlive = 'K'
)

// Protocol versions. ProtoV1 is the PR 4 wire format (no hello, no
// keepalive, serial requests); ProtoV2 adds negotiation, keepalive and
// pipelined requests over one connection.
const (
	ProtoV1 = 1
	ProtoV2 = 2
)

// reqNone is the request id used for errors that cannot be attributed to
// a request (malformed frames); streamNone marks request-level errors.
const (
	reqNone    = ^uint32(0)
	streamNone = ^uint32(0)
)

// maxFrame bounds one frame's payload; a length prefix beyond it is a
// protocol error (it would otherwise size a multi-gigabyte read from a
// single corrupt word).
const maxFrame = 64 << 20

// maxName bounds kernel and array names (they travel as u8-length
// strings).
const maxName = 255

// bufHighWater is the receive-scratch retention bound: after one
// oversized frame, a long-lived connection's reuse buffer is dropped as
// soon as traffic returns to small frames, instead of pinning the
// high-water allocation for the connection's lifetime.
const bufHighWater = 1 << 20

// encoder builds one frame in a reusable buffer. The length prefix is
// patched in finish, so frames are written with a single Write call —
// concurrent responders never interleave partial frames.
type encoder struct {
	buf []byte
}

func (e *encoder) begin(typ byte, req uint32) {
	e.buf = append(e.buf[:0], 0, 0, 0, 0, typ)
	e.u32(req)
}

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }

func (e *encoder) str8(s string) {
	if len(s) > maxName {
		s = s[:maxName]
	}
	e.u8(uint8(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) str16(s string) {
	if len(s) > 1<<16-1 {
		s = s[:1<<16-1]
	}
	e.u16(uint16(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) vals(v []int64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.i64(x)
	}
}

// finish patches the length prefix and returns the complete frame.
func (e *encoder) finish() []byte {
	binary.BigEndian.PutUint32(e.buf[:4], uint32(len(e.buf)-4))
	return e.buf
}

// readFrame reads one length-prefixed frame payload into buf (grown as
// needed) and returns the payload.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("serve: zero-length frame")
	}
	if n > maxFrame {
		return nil, fmt.Errorf("serve: frame of %d bytes exceeds the %d-byte limit", n, maxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("serve: truncated frame: %w", err)
	}
	return buf, nil
}

// decoder walks one frame payload; the first decoding overrun latches
// into err and every later read returns zero values, so call sites check
// once at the end.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("serve: truncated frame body at offset %d", d.off)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) str8() string {
	n := int(d.u8())
	if d.err != nil || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) str16() string {
	n := int(d.u16())
	if d.err != nil || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// valsInto decodes a u32-counted i64 vector, reusing dst when it already
// has the right length (the client's steady-state buffer-reuse path).
func (d *decoder) valsInto(dst []int64) []int64 {
	n := int(d.u32())
	if d.err != nil || d.off+8*n > len(d.b) {
		d.fail()
		return nil
	}
	if len(dst) != n {
		dst = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		dst[i] = int64(binary.BigEndian.Uint64(d.b[d.off:]))
		d.off += 8
	}
	return dst
}

// remaining reports whether undecoded bytes are left (a well-formed
// frame is consumed exactly).
func (d *decoder) remaining() bool { return d.err == nil && d.off != len(d.b) }
