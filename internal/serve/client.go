package serve

import (
	"errors"
	"fmt"
	"net"

	"roccc/internal/dp"
	"roccc/internal/netlist"
)

// Client is the request surface shared by the TCP client (Conn) and the
// in-process client (Local): Run streams a batch of independent input
// streams through one kernel. Per-stream results land in each
// netlist.Job in place — Outputs, Feedbacks, Cycles on success, a typed
// error in Job.Err on a mid-stream fault — and buffers are reused across
// calls, so steady-state request loops do not allocate in the pool path.
// Run's own error is the first stream failure (request-level failures —
// unknown kernel, transport loss, server drain — abort the whole batch).
type Client interface {
	Run(kernel string, streams []netlist.Job) error
	Close() error
}

// firstStreamErr mirrors SystemPool.RunBatch's contract: the returned
// error is the first per-stream failure in stream order.
func firstStreamErr(kernel string, streams []netlist.Job) error {
	for i := range streams {
		if streams[i].Err != nil {
			return fmt.Errorf("serve: %s stream %d: %w", kernel, i, streams[i].Err)
		}
	}
	return nil
}

// Local is the in-process client: no sockets, no framing — Run goes
// straight to the kernel's warm SystemPool, which is also the path the
// 0 allocs/op steady-state gate measures.
type Local struct {
	srv *Server
}

// Local returns an in-process client bound to this server.
func (s *Server) Local() *Local { return &Local{srv: s} }

// Run shards the streams across the kernel pool's worker crew.
func (c *Local) Run(kernel string, streams []netlist.Job) error {
	e, err := c.srv.entry(kernel)
	if err != nil {
		return err
	}
	if !c.srv.beginStream() {
		return fmt.Errorf("serve: server is draining")
	}
	defer c.srv.endStream()
	err = e.pool.Load().RunBatch(streams)
	c.srv.served.Add(int64(len(streams)))
	// Count faulted streams exactly as the TCP path does: one per
	// stream whose error is a typed fault.
	var faults int64
	for i := range streams {
		if streams[i].Err != nil {
			var fe *dp.FaultError
			if errors.As(streams[i].Err, &fe) {
				faults++
			}
		}
	}
	if faults > 0 {
		c.srv.faults.Add(faults)
	}
	// RunBatch's error is the first per-stream failure unless the pool
	// itself was closed (no stream carries an error then).
	if serr := firstStreamErr(kernel, streams); serr != nil {
		return serr
	}
	return err
}

// Close is a no-op: the Local client owns no transport.
func (c *Local) Close() error { return nil }

// Conn is the TCP client. One request is in flight at a time; a Conn is
// not safe for concurrent use (open one Conn per client goroutine —
// they multiplex fine on the server side).
type Conn struct {
	c    net.Conn
	enc  encoder
	rbuf []byte
	next uint32
}

// Dial connects to a rocccserve address.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Conn{c: c}, nil
}

// Close closes the connection; in-flight server work completes and its
// pooled Systems return to their pools.
func (c *Conn) Close() error { return c.c.Close() }

// Run sends one request (kernel + all streams) and collects the
// responses, filling each stream's Job in place. Output and feedback
// buffers are reused when already sized; input slices are only read.
// A transport or framing failure leaves the connection's protocol state
// unknown, so Run closes it (after joining its writer): later Runs on
// the Conn fail fast instead of desynchronizing.
func (c *Conn) Run(kernel string, streams []netlist.Job) (err error) {
	c.next++
	req := c.next
	for i := range streams {
		streams[i].Err = nil
	}

	// Writer: Open + one frame per stream. Sending concurrently with the
	// read loop below keeps large batches from deadlocking on TCP
	// windows: the server responds while later streams are still being
	// written.
	werr := make(chan error, 1)
	go func() {
		e := &c.enc
		e.begin(frameOpen, req)
		e.str8(kernel)
		e.u32(uint32(len(streams)))
		if _, err := c.c.Write(e.finish()); err != nil {
			werr <- err
			return
		}
		for i := range streams {
			e.begin(frameStream, req)
			e.u32(uint32(i))
			e.u16(uint16(len(streams[i].Inputs)))
			for name, vals := range streams[i].Inputs {
				e.str8(name)
				e.vals(vals)
			}
			if _, err := c.c.Write(e.finish()); err != nil {
				werr <- err
				return
			}
		}
		werr <- nil
	}()

	// Reader: one response per stream, then Done (or a request-level
	// error, which aborts the batch). writerJoined marks the paths that
	// saw the writer finish; every other (error) return closes the
	// connection first, so the writer's blocked Write fails and the
	// goroutine cannot race a later Run on the shared encoder.
	writerJoined := false
	defer func() {
		if !writerJoined {
			c.c.Close()
			<-werr
		}
	}()
	answered := 0
	for {
		payload, rerr := readFrame(c.c, c.rbuf)
		if rerr != nil {
			return fmt.Errorf("serve: reading response: %w", rerr)
		}
		c.rbuf = payload[:cap(payload)]
		if cap(c.rbuf) > bufHighWater && len(payload) < bufHighWater/4 {
			c.rbuf = nil // small traffic again: stop pinning the high-water scratch
		}
		d := decoder{b: payload}
		typ := d.u8()
		gotReq := d.u32()
		// The only frame allowed to carry a different request id is an
		// unattributable protocol error (id reqNone); anything else out
		// of sequence means the stream state is unknown.
		if gotReq != req && !(typ == frameError && gotReq == reqNone) {
			return fmt.Errorf("serve: response for request %d while %d in flight", gotReq, req)
		}
		switch typ {
		case frameResult:
			idx := int(d.u32())
			if idx < 0 || idx >= len(streams) {
				return fmt.Errorf("serve: result for unknown stream %d", idx)
			}
			job := &streams[idx]
			job.Cycles = int(d.u64())
			nouts := int(d.u16())
			if job.Outputs == nil && nouts > 0 {
				job.Outputs = make(map[string][]int64, nouts)
			}
			// A Job reused across kernels may hold keys this response
			// never sends; remember the frame's names when the maps were
			// already populated, and purge everything else afterwards.
			// First fills (empty maps) skip the bookkeeping entirely.
			var outNames, fbNames []string
			collectOut := len(job.Outputs) > 0
			for i := 0; i < nouts; i++ {
				name := d.str8()
				vals := d.valsInto(job.Outputs[name])
				if d.err != nil {
					break
				}
				job.Outputs[name] = vals
				if collectOut {
					outNames = append(outNames, name)
				}
			}
			nfb := int(d.u16())
			if job.Feedbacks == nil && nfb > 0 {
				job.Feedbacks = make(map[string]int64, nfb)
			}
			collectFb := len(job.Feedbacks) > 0
			for i := 0; i < nfb; i++ {
				name := d.str8()
				job.Feedbacks[name] = d.i64()
				if collectFb {
					fbNames = append(fbNames, name)
				}
			}
			if d.err != nil {
				return fmt.Errorf("serve: malformed result frame: %w", d.err)
			}
			if len(job.Outputs) > nouts {
				purgeStale(job.Outputs, outNames)
			}
			if len(job.Feedbacks) > nfb {
				purgeStale(job.Feedbacks, fbNames)
			}
			answered++
		case frameFault:
			idx := int(d.u32())
			if idx < 0 || idx >= len(streams) {
				return fmt.Errorf("serve: fault for unknown stream %d", idx)
			}
			cycle := int(d.u32())
			op := d.str8()
			msg := d.str16()
			if d.err != nil {
				return fmt.Errorf("serve: malformed fault frame: %w", d.err)
			}
			// Reconstruct the exact typed error a serial System.Run
			// raises: same operator class, abort cycle and message.
			streams[idx].Err = &dp.FaultError{Op: op, Cycle: cycle, Msg: msg}
			answered++
		case frameError:
			idx := d.u32()
			msg := d.str16()
			if d.err != nil {
				return fmt.Errorf("serve: malformed error frame: %w", d.err)
			}
			if idx == streamNone {
				<-werr // writer may have failed too; the request error wins
				writerJoined = true
				return fmt.Errorf("serve: request failed: %s", msg)
			}
			if int(idx) >= len(streams) {
				return fmt.Errorf("serve: error for unknown stream %d", idx)
			}
			streams[idx].Err = fmt.Errorf("serve: %s", msg)
			answered++
		case frameDone:
			werrv := <-werr
			writerJoined = true
			if werrv != nil {
				// Done despite a failed send: the connection state is
				// inconsistent — kill it.
				c.c.Close()
				return fmt.Errorf("serve: sending request: %w", werrv)
			}
			if answered != len(streams) {
				c.c.Close()
				return fmt.Errorf("serve: done after %d of %d responses", answered, len(streams))
			}
			return firstStreamErr(kernel, streams)
		default:
			return fmt.Errorf("serve: unexpected response frame %q", typ)
		}
	}
}

// purgeStale deletes map keys that are not in keep (the names one
// response frame actually carried).
func purgeStale[V any](m map[string]V, keep []string) {
	for k := range m {
		found := false
		for _, s := range keep {
			if s == k {
				found = true
				break
			}
		}
		if !found {
			delete(m, k)
		}
	}
}
