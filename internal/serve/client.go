package serve

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"roccc/internal/dp"
	"roccc/internal/netlist"
)

// Client is the request surface shared by the TCP client (Conn) and the
// in-process client (Local): Run streams a batch of independent input
// streams through one kernel. Per-stream results land in each
// netlist.Job in place — Outputs, Feedbacks, Cycles on success, a typed
// error in Job.Err on a mid-stream fault — and buffers are reused across
// calls, so steady-state request loops do not allocate in the pool path.
// Run's own error is the first stream failure (request-level failures —
// unknown kernel, transport loss, server drain — abort the whole batch).
type Client interface {
	Run(kernel string, streams []netlist.Job) error
	Close() error
}

// firstStreamErr mirrors SystemPool.RunBatch's contract: the returned
// error is the first per-stream failure in stream order.
func firstStreamErr(kernel string, streams []netlist.Job) error {
	for i := range streams {
		if streams[i].Err != nil {
			return fmt.Errorf("serve: %s stream %d: %w", kernel, i, streams[i].Err)
		}
	}
	return nil
}

// Local is the in-process client: no sockets, no framing — Run goes
// straight to the kernel's warm SystemPool, which is also the path the
// 0 allocs/op steady-state gate measures.
type Local struct {
	srv *Server
}

// Local returns an in-process client bound to this server.
func (s *Server) Local() *Local { return &Local{srv: s} }

// Run shards the streams across the kernel pool's worker crew.
func (c *Local) Run(kernel string, streams []netlist.Job) error {
	e, err := c.srv.entry(kernel)
	if err != nil {
		return err
	}
	if !c.srv.beginStream() {
		return fmt.Errorf("serve: server is draining")
	}
	defer c.srv.endStream()
	e.opens.Add(1)
	e.lastUse.Store(c.srv.tick.Add(1))
	err = e.runBatch(streams)
	for i := range streams {
		c.srv.countStream(streams[i].Err)
	}
	// runBatch's error is the first per-stream failure unless the pool
	// itself failed to (re)build (no stream carries an error then).
	if serr := firstStreamErr(kernel, streams); serr != nil {
		return serr
	}
	return err
}

// Close is a no-op: the Local client owns no transport.
func (c *Local) Close() error { return nil }

// Conn is the TCP client. A serial (v1) Conn carries one request in
// flight at a time and is not safe for concurrent use (open one Conn
// per client goroutine — they multiplex fine on the server side). A
// pipelined Conn (DialContext with WithPipelined) speaks v2: a reader
// goroutine demuxes responses by request id, so any number of
// goroutines may Run on the same Conn concurrently and their requests
// share the connection's server-side executor slots.
type Conn struct {
	c    net.Conn
	enc  encoder
	rbuf []byte
	next uint32

	// Pipelined (v2) state. encs pools per-request frame encoders; wmu
	// makes each frame a single uninterleaved Write; pmu guards the
	// pending demux table and the latched transport error; slots, when
	// non-nil, is the client-side request-slot semaphore
	// (WithPipelined(n) with n > 0).
	pipelined  bool
	hsVersion  uint16
	slots      chan struct{}
	encs       sync.Pool
	wmu        sync.Mutex
	pmu        sync.Mutex
	pending    map[uint32]*pending
	preq       uint32
	rerr       error
	readerDone chan struct{}
}

// pending is one in-flight pipelined request. jobs and answered are
// owned by the reader goroutine until done is signalled; the Run
// goroutine reads the jobs only after receiving on done. mu orders a
// RunContext cancellation against the reader's in-progress decode: once
// cancelled is set the reader drops the request's remaining frames
// without touching jobs, so the caller may reuse its Job buffers the
// moment RunContext returns.
type pending struct {
	kernel   string
	jobs     []netlist.Job
	answered int
	ping     bool
	done     chan error

	mu        sync.Mutex
	cancelled bool
}

// DialOption configures DialContext.
type DialOption func(*dialConfig)

type dialConfig struct {
	pipelined bool
	slots     int
	timeout   time.Duration
	version   int
}

// WithPipelined negotiates protocol v2 and returns a Conn that is safe
// for concurrent Run/RunContext calls: a reader goroutine demuxes
// responses by request id. slots > 0 bounds the connection's concurrent
// in-flight requests client-side (RunContext blocks for a free slot, or
// until its context cancels); slots <= 0 leaves admission entirely to
// the server's per-connection executor budget.
func WithPipelined(slots int) DialOption {
	return func(c *dialConfig) {
		c.pipelined = true
		c.slots = slots
	}
}

// WithDialTimeout bounds the TCP connect (and, for pipelined conns, the
// hello handshake's send). Zero means no timeout beyond the context's.
func WithDialTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.timeout = d }
}

// WithProtocolVersion overrides the protocol version the client offers
// in its hello (default ProtoV2). Pipelined mode requires the
// negotiated version to be >= ProtoV2, so offering ProtoV1 together
// with WithPipelined fails at dial with a clear error.
func WithProtocolVersion(v int) DialOption {
	return func(c *dialConfig) { c.version = v }
}

// DialContext connects to a rocccserve address. With no options the
// Conn speaks protocol v1 (serial requests, no handshake — v1 byte
// streams are valid v2 byte streams, so it works against both v1 and
// v2 servers). WithPipelined negotiates v2 and enables concurrent
// requests over the one socket. ctx bounds the dial (and the v2
// handshake); it does not outlive DialContext.
func DialContext(ctx context.Context, addr string, opts ...DialOption) (*Conn, error) {
	cfg := dialConfig{version: ProtoV2}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.version < ProtoV1 || cfg.version > ProtoV2 {
		return nil, fmt.Errorf("serve: unsupported protocol version %d (have v%d..v%d)", cfg.version, ProtoV1, ProtoV2)
	}
	d := net.Dialer{Timeout: cfg.timeout}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if !cfg.pipelined {
		return &Conn{c: nc}, nil
	}
	c := &Conn{c: nc, pipelined: true,
		hsVersion:  uint16(cfg.version),
		pending:    map[uint32]*pending{},
		readerDone: make(chan struct{}),
	}
	if cfg.slots > 0 {
		c.slots = make(chan struct{}, cfg.slots)
	}
	c.encs.New = func() any { return new(encoder) }
	// The handshake round trip honours the context: a cancelled ctx
	// closes the socket under the blocked read.
	var stop func() bool
	if ctx.Done() != nil {
		stop = context.AfterFunc(ctx, func() { nc.Close() })
	}
	err = c.handshake()
	if stop != nil && !stop() {
		err = fmt.Errorf("serve: dial %s: %w", addr, ctx.Err())
	}
	if err != nil {
		nc.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

// Dial connects speaking protocol v1 (serial requests). It is a thin
// wrapper kept for existing call sites; new code should use
// DialContext.
func Dial(addr string) (*Conn, error) {
	return DialContext(context.Background(), addr)
}

// DialPipelined connects and negotiates protocol v2 with unbounded
// client-side request slots. It is a thin wrapper kept for existing
// call sites; new code should use DialContext with WithPipelined.
// Dialing a v1 server fails with a clear error (a v1 server answers the
// hello frame with a request-level error and closes the connection).
func DialPipelined(addr string) (*Conn, error) {
	return DialContext(context.Background(), addr, WithPipelined(0))
}

// handshake sends the client hello and classifies the server's answer.
func (c *Conn) handshake() error {
	e := &c.enc
	e.begin(frameHello, 0)
	e.u16(c.hsVersion)
	if _, err := c.c.Write(e.finish()); err != nil {
		return fmt.Errorf("serve: sending hello: %w", err)
	}
	payload, err := readFrame(c.c, nil)
	if err != nil {
		return fmt.Errorf("serve: reading hello response: %w", err)
	}
	d := decoder{b: payload}
	typ := d.u8()
	d.u32() // request id (0, or reqNone on an unattributable v1 error)
	switch typ {
	case frameHello:
		ver := int(d.u16())
		if d.err != nil {
			return fmt.Errorf("serve: malformed hello response: %w", d.err)
		}
		if ver < ProtoV2 {
			return fmt.Errorf("serve: server negotiated protocol v%d; pipelined mode needs v2 — use Dial for serial requests", ver)
		}
		return nil
	case frameError:
		// A v1 server does not know the hello frame type: it answers with
		// a request-level error and closes the connection.
		d.u32() // stream id
		msg := d.str16()
		return fmt.Errorf("serve: server speaks protocol v1 (no request pipelining; hello refused: %s) — use Dial for serial requests", msg)
	default:
		return fmt.Errorf("serve: unexpected hello response frame %q", typ)
	}
}

// Close closes the connection; in-flight server work completes and its
// pooled Systems return to their pools. On a pipelined Conn, in-flight
// Runs fail with a transport error.
func (c *Conn) Close() error {
	err := c.c.Close()
	if c.pipelined {
		<-c.readerDone
	}
	return err
}

// Healthy reports whether a pipelined Conn can still carry requests;
// connection pools use it to drop broken conns instead of reusing them.
func (c *Conn) Healthy() bool {
	if !c.pipelined {
		return true
	}
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.rerr == nil
}

// Ping round-trips a keepalive frame through the server (pipelined
// conns only): it proves the connection and the server's reader loop
// are alive without touching any kernel.
func (c *Conn) Ping() error {
	if !c.pipelined {
		return fmt.Errorf("serve: Ping requires a pipelined connection (DialPipelined)")
	}
	p := &pending{ping: true, done: make(chan error, 1)}
	req, err := c.register(p)
	if err != nil {
		return err
	}
	e := c.encs.Get().(*encoder)
	e.begin(frameKeepAlive, req)
	if err := c.writeFrame(e); err != nil {
		c.abort(fmt.Errorf("serve: sending keepalive: %w", err))
		return <-p.done
	}
	return <-p.done
}

// register installs a pending request under a fresh request id,
// refusing if the connection is already poisoned.
func (c *Conn) register(p *pending) (uint32, error) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.rerr != nil {
		return 0, c.rerr
	}
	c.preq++
	req := c.preq
	c.pending[req] = p
	return req, nil
}

// writeFrame writes one finished frame under the write lock and returns
// the encoder to the pool.
func (c *Conn) writeFrame(e *encoder) error {
	c.wmu.Lock()
	_, err := c.c.Write(e.finish())
	c.wmu.Unlock()
	c.encs.Put(e)
	return err
}

// abort poisons a pipelined Conn: the error latches, every in-flight
// request fails with it, and the connection closes. Responses can no
// longer be trusted to demux correctly, so nothing survives.
func (c *Conn) abort(err error) {
	c.pmu.Lock()
	if c.rerr == nil {
		c.rerr = err
	}
	err = c.rerr
	for req, p := range c.pending {
		delete(c.pending, req)
		p.done <- err
	}
	c.pmu.Unlock()
	c.c.Close()
}

// complete retires one pipelined request with its final status.
func (c *Conn) complete(req uint32, p *pending, err error) {
	c.pmu.Lock()
	delete(c.pending, req)
	c.pmu.Unlock()
	p.done <- err
}

// completeRequestError retires one request with a server-reported
// request-level failure (unknown kernel, compile error, drain); the
// connection itself stays healthy.
func (c *Conn) completeRequestError(req uint32, p *pending, msg string) {
	c.complete(req, p, fmt.Errorf("serve: request failed: %s", msg))
}

// Run sends one request (kernel + all streams) and collects the
// responses, filling each stream's Job in place. Output and feedback
// buffers are reused when already sized; input slices are only read.
// A transport or framing failure leaves the connection's protocol state
// unknown, so Run closes it (after joining its writer): later Runs on
// the Conn fail fast instead of desynchronizing.
func (c *Conn) Run(kernel string, streams []netlist.Job) (err error) {
	if c.pipelined {
		return c.runPipelined(context.Background(), kernel, streams)
	}
	c.next++
	req := c.next
	for i := range streams {
		streams[i].Err = nil
	}

	// Writer: Open + one frame per stream. Sending concurrently with the
	// read loop below keeps large batches from deadlocking on TCP
	// windows: the server responds while later streams are still being
	// written.
	werr := make(chan error, 1)
	go func() {
		e := &c.enc
		e.begin(frameOpen, req)
		e.str8(kernel)
		e.u32(uint32(len(streams)))
		if _, err := c.c.Write(e.finish()); err != nil {
			werr <- err
			return
		}
		for i := range streams {
			e.begin(frameStream, req)
			e.u32(uint32(i))
			e.u16(uint16(len(streams[i].Inputs)))
			for name, vals := range streams[i].Inputs {
				e.str8(name)
				e.vals(vals)
			}
			if _, err := c.c.Write(e.finish()); err != nil {
				werr <- err
				return
			}
		}
		werr <- nil
	}()

	// Reader: one response per stream, then Done (or a request-level
	// error, which aborts the batch). writerJoined marks the paths that
	// saw the writer finish; every other (error) return closes the
	// connection first, so the writer's blocked Write fails and the
	// goroutine cannot race a later Run on the shared encoder.
	writerJoined := false
	defer func() {
		if !writerJoined {
			c.c.Close()
			<-werr
		}
	}()
	answered := 0
	for {
		payload, rerr := readFrame(c.c, c.rbuf)
		if rerr != nil {
			return fmt.Errorf("serve: reading response: %w", rerr)
		}
		c.rbuf = payload[:cap(payload)]
		if cap(c.rbuf) > bufHighWater && len(payload) < bufHighWater/4 {
			c.rbuf = nil // small traffic again: stop pinning the high-water scratch
		}
		d := decoder{b: payload}
		typ := d.u8()
		gotReq := d.u32()
		// The only frame allowed to carry a different request id is an
		// unattributable protocol error (id reqNone); anything else out
		// of sequence means the stream state is unknown.
		if gotReq != req && !(typ == frameError && gotReq == reqNone) {
			return fmt.Errorf("serve: response for request %d while %d in flight", gotReq, req)
		}
		switch typ {
		case frameResult:
			idx := int(d.u32())
			if idx < 0 || idx >= len(streams) {
				return fmt.Errorf("serve: result for unknown stream %d", idx)
			}
			if err := decodeResultInto(&d, &streams[idx]); err != nil {
				return err
			}
			answered++
		case frameFault:
			idx := int(d.u32())
			if idx < 0 || idx >= len(streams) {
				return fmt.Errorf("serve: fault for unknown stream %d", idx)
			}
			if err := decodeFaultInto(&d, &streams[idx]); err != nil {
				return err
			}
			answered++
		case frameError:
			idx := d.u32()
			msg := d.str16()
			if d.err != nil {
				return fmt.Errorf("serve: malformed error frame: %w", d.err)
			}
			if idx == streamNone {
				<-werr // writer may have failed too; the request error wins
				writerJoined = true
				return fmt.Errorf("serve: request failed: %s", msg)
			}
			if int(idx) >= len(streams) {
				return fmt.Errorf("serve: error for unknown stream %d", idx)
			}
			streams[idx].Err = streamErrFromMsg(msg)
			answered++
		case frameDone:
			werrv := <-werr
			writerJoined = true
			if werrv != nil {
				// Done despite a failed send: the connection state is
				// inconsistent — kill it.
				c.c.Close()
				return fmt.Errorf("serve: sending request: %w", werrv)
			}
			if answered != len(streams) {
				c.c.Close()
				return fmt.Errorf("serve: done after %d of %d responses", answered, len(streams))
			}
			return firstStreamErr(kernel, streams)
		default:
			return fmt.Errorf("serve: unexpected response frame %q", typ)
		}
	}
}

// RunContext is Run with a per-request deadline/cancel. On a pipelined
// Conn a cancelled request releases its client-side slot immediately
// and leaves the connection healthy: the reader keeps draining the
// request's late frames but stops writing into the caller's Job
// buffers, so they are safe to reuse the moment RunContext returns.
// (The server still finishes the work — v2 has no cancel frame — so the
// server-side executor slot frees when it completes.) On a serial (v1)
// Conn the protocol cannot abandon a request mid-flight, so
// cancellation closes the connection under the blocked I/O and the Conn
// is dead afterwards.
func (c *Conn) RunContext(ctx context.Context, kernel string, streams []netlist.Job) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if c.pipelined {
		return c.runPipelined(ctx, kernel, streams)
	}
	if ctx.Done() == nil {
		return c.Run(kernel, streams)
	}
	stop := context.AfterFunc(ctx, func() { c.c.Close() })
	err := c.Run(kernel, streams)
	if !stop() && err != nil && ctx.Err() != nil {
		return fmt.Errorf("serve: %s: %w", kernel, ctx.Err())
	}
	return err
}

// runPipelined registers the request in the demux table, streams its
// frames (interleaving with other goroutines' requests frame-by-frame)
// and parks until the reader goroutine delivers the final status or ctx
// cancels the wait.
func (c *Conn) runPipelined(ctx context.Context, kernel string, streams []netlist.Job) error {
	if c.slots != nil {
		select {
		case c.slots <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
		defer func() { <-c.slots }()
	}
	for i := range streams {
		streams[i].Err = nil
	}
	p := &pending{kernel: kernel, jobs: streams, done: make(chan error, 1)}
	req, err := c.register(p)
	if err != nil {
		return err
	}
	e := c.encs.Get().(*encoder)
	e.begin(frameOpen, req)
	e.str8(kernel)
	e.u32(uint32(len(streams)))
	if err := c.writeFrame(e); err != nil {
		c.abort(fmt.Errorf("serve: sending request: %w", err))
		return <-p.done
	}
	for i := range streams {
		e := c.encs.Get().(*encoder)
		e.begin(frameStream, req)
		e.u32(uint32(i))
		e.u16(uint16(len(streams[i].Inputs)))
		for name, vals := range streams[i].Inputs {
			e.str8(name)
			e.vals(vals)
		}
		if err := c.writeFrame(e); err != nil {
			c.abort(fmt.Errorf("serve: sending request: %w", err))
			return <-p.done
		}
	}
	// Every frame is sent, so the server owes exactly one terminal
	// frame; cancellation waits only here — aborting mid-send would
	// leave the server's owed-stream accounting dangling.
	var derr error
	if ctx.Done() == nil {
		derr = <-p.done
	} else {
		select {
		case derr = <-p.done:
		case <-ctx.Done():
			if c.cancel(req, p) {
				return ctx.Err()
			}
			// The request reached a terminal state concurrently with
			// the cancel: take its real result.
			derr = <-p.done
		}
	}
	if derr != nil {
		return derr
	}
	return firstStreamErr(kernel, streams)
}

// cancel detaches a cancelled request from its Job buffers. It reports
// whether the request was still in flight: the pending entry stays in
// the demux table (so late frames attribute cleanly instead of
// poisoning the connection), but the reader stops decoding into the
// jobs. A false return means a terminal status raced the cancel and is
// already on p.done.
func (c *Conn) cancel(req uint32, p *pending) bool {
	c.pmu.Lock()
	inflight := c.pending[req] == p
	c.pmu.Unlock()
	if !inflight {
		return false
	}
	// Taking p.mu blocks until any in-progress decode for this request
	// finishes; afterwards the reader drops the request's frames.
	p.mu.Lock()
	p.cancelled = true
	p.mu.Unlock()
	return true
}

// readLoop is a pipelined Conn's single reader: every response frame is
// demuxed to its pending request, and the first frame that cannot be —
// transport loss, malformed body, unattributable id — poisons the
// connection (abort) rather than risking a cross-wired response.
func (c *Conn) readLoop() {
	defer close(c.readerDone)
	var buf []byte
	for {
		payload, err := readFrame(c.c, buf)
		if err != nil {
			c.abort(fmt.Errorf("serve: reading response: %w", err))
			return
		}
		buf = payload[:cap(payload)]
		if cap(buf) > bufHighWater && len(payload) < bufHighWater/4 {
			buf = nil // small traffic again: stop pinning the high-water scratch
		}
		if err := c.demux(payload); err != nil {
			c.abort(err)
			return
		}
	}
}

// demux attributes one response frame to its in-flight request and
// applies it; a non-nil return is fatal for the connection. This is the
// pipelined client's per-frame hot path — steady-state result frames
// touch only the demux table and the request's own Job buffers.
//
//roccc:hotpath
func (c *Conn) demux(payload []byte) error {
	d := decoder{b: payload}
	typ := d.u8()
	req := d.u32()
	c.pmu.Lock()
	p := c.pending[req]
	c.pmu.Unlock()
	if p == nil {
		if typ == frameError {
			// Unattributable (or already-aborted request's) error:
			// request-level protocol errors poison the connection,
			// stragglers for retired ids cannot be trusted either.
			d.u32()
			return fmt.Errorf("serve: request failed: %s", d.str16())
		}
		return fmt.Errorf("serve: response for unknown request %d", req)
	}
	switch typ {
	case frameKeepAlive:
		if !p.ping {
			return fmt.Errorf("serve: keepalive echo for request %d", req)
		}
		c.complete(req, p, nil)
	case frameResult:
		idx := int(d.u32())
		if idx < 0 || idx >= len(p.jobs) {
			return fmt.Errorf("serve: result for unknown stream %d of request %d", idx, req)
		}
		p.mu.Lock()
		if !p.cancelled {
			if err := decodeResultInto(&d, &p.jobs[idx]); err != nil {
				p.mu.Unlock()
				return err
			}
		}
		p.mu.Unlock()
		p.answered++
	case frameFault:
		idx := int(d.u32())
		if idx < 0 || idx >= len(p.jobs) {
			return fmt.Errorf("serve: fault for unknown stream %d of request %d", idx, req)
		}
		p.mu.Lock()
		if !p.cancelled {
			if err := decodeFaultInto(&d, &p.jobs[idx]); err != nil {
				p.mu.Unlock()
				return err
			}
		}
		p.mu.Unlock()
		p.answered++
	case frameError:
		idx := d.u32()
		msg := d.str16()
		if d.err != nil {
			return fmt.Errorf("serve: malformed error frame: %w", d.err)
		}
		if idx == streamNone {
			c.completeRequestError(req, p, msg)
			return nil
		}
		if int(idx) >= len(p.jobs) {
			return fmt.Errorf("serve: error for unknown stream %d of request %d", idx, req)
		}
		p.mu.Lock()
		if !p.cancelled {
			p.jobs[idx].Err = streamErrFromMsg(msg)
		}
		p.mu.Unlock()
		p.answered++
	case frameDone:
		if p.answered != len(p.jobs) {
			return fmt.Errorf("serve: done after %d of %d responses", p.answered, len(p.jobs))
		}
		c.complete(req, p, nil)
	default:
		return fmt.Errorf("serve: unexpected response frame %q", typ)
	}
	return nil
}

// decodeResultInto fills one stream's Job from a result frame body
// (after type/req/idx), reusing the Job's buffers when already sized.
func decodeResultInto(d *decoder, job *netlist.Job) error {
	job.Cycles = int(d.u64())
	nouts := int(d.u16())
	if job.Outputs == nil && nouts > 0 {
		job.Outputs = make(map[string][]int64, nouts)
	}
	// A Job reused across kernels may hold keys this response never
	// sends; remember the frame's names when the maps were already
	// populated, and purge everything else afterwards. First fills
	// (empty maps) skip the bookkeeping entirely.
	var outNames, fbNames []string
	collectOut := len(job.Outputs) > 0
	for i := 0; i < nouts; i++ {
		name := d.str8()
		vals := d.valsInto(job.Outputs[name])
		if d.err != nil {
			break
		}
		job.Outputs[name] = vals
		if collectOut {
			outNames = append(outNames, name)
		}
	}
	nfb := int(d.u16())
	if job.Feedbacks == nil && nfb > 0 {
		job.Feedbacks = make(map[string]int64, nfb)
	}
	collectFb := len(job.Feedbacks) > 0
	for i := 0; i < nfb; i++ {
		name := d.str8()
		job.Feedbacks[name] = d.i64()
		if collectFb {
			fbNames = append(fbNames, name)
		}
	}
	if d.err != nil {
		return fmt.Errorf("serve: malformed result frame: %w", d.err)
	}
	if len(job.Outputs) > nouts {
		purgeStale(job.Outputs, outNames)
	}
	if len(job.Feedbacks) > nfb {
		purgeStale(job.Feedbacks, fbNames)
	}
	return nil
}

// decodeFaultInto reconstructs the exact typed error a serial
// System.Run raises: same operator class, abort cycle and message.
func decodeFaultInto(d *decoder, job *netlist.Job) error {
	cycle := int(d.u32())
	op := d.str8()
	msg := d.str16()
	if d.err != nil {
		return fmt.Errorf("serve: malformed fault frame: %w", d.err)
	}
	job.Err = &dp.FaultError{Op: op, Cycle: cycle, Msg: msg}
	return nil
}

// streamErrFromMsg rebuilds a stream-level error from its wire message,
// recovering the typed BusyError for load-sheds so clients can match it
// with errors.As.
func streamErrFromMsg(msg string) error {
	if be := parseBusy(msg); be != nil {
		return be
	}
	return fmt.Errorf("serve: %s", msg)
}

// purgeStale deletes map keys that are not in keep (the names one
// response frame actually carried).
func purgeStale[V any](m map[string]V, keep []string) {
	for k := range m {
		found := false
		for _, s := range keep {
			if s == k {
				found = true
				break
			}
		}
		if !found {
			delete(m, k)
		}
	}
}
