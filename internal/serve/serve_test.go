package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/netlist"
)

const firSource = `
int A[21];
int C[17];
void fir() {
	int i;
	for (i = 0; i < 17; i = i + 1) {
		C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
	}
}
`

const accumSource = `
int A[32];
int sum;
void accum() {
	int i;
	sum = 0;
	for (i = 0; i < 32; i++) {
		sum = sum + A[i];
	}
}
`

const dividerSource = `
int A[24];
int B[24];
int Q[24];
void divide() {
	int i;
	for (i = 0; i < 24; i++) {
		Q[i] = A[i] / B[i];
	}
}
`

func testSpecs() []KernelSpec {
	return []KernelSpec{
		{Name: "fir", Source: firSource, Func: "fir", Options: core.DefaultOptions(), Config: netlist.Config{BusElems: 1}},
		{Name: "accum", Source: accumSource, Func: "accum", Options: core.DefaultOptions(), Config: netlist.Config{BusElems: 1}},
		{Name: "divide", Source: dividerSource, Func: "divide", Options: core.DefaultOptions(), Config: netlist.Config{BusElems: 1}},
	}
}

// startServer brings up a server with the test kernels on a loopback
// listener and tears it down with the test. The returned address is the
// listener's (not srv.Addr(), which only resolves once Serve runs).
func startServer(t *testing.T, workers int) (*Server, string) {
	t.Helper()
	srv := NewServer(workers)
	for _, spec := range testSpecs() {
		if err := srv.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ln.Addr().String()
}

func firStream(seed int64) map[string][]int64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([]int64, 21)
	for i := range in {
		in[i] = rng.Int63n(255) - 128
	}
	return map[string][]int64{"A": in}
}

// serialFIR runs one stream through a private System for reference.
func serialFIR(t *testing.T, inputs map[string][]int64) ([]int64, int) {
	t.Helper()
	res, err := core.CompileSource(firSource, "fir", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := netlist.NewSystem(res.Kernel, res.Datapath, netlist.Config{BusElems: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadInput("A", inputs["A"]); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	out, err := sys.Output("C")
	if err != nil {
		t.Fatal(err)
	}
	return out, sys.Cycles()
}

// TestServeTCPRoundTrip: a TCP batch must return outputs and cycle
// counts bit-identical to serial System.Run, with responses routed to
// the right streams regardless of completion order.
func TestServeTCPRoundTrip(t *testing.T) {
	srv, addr := startServer(t, 4)
	_ = srv
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const n = 12
	streams := make([]netlist.Job, n)
	for i := range streams {
		streams[i] = netlist.Job{Inputs: firStream(int64(i + 1))}
	}
	for round := 0; round < 3; round++ { // later rounds reuse response buffers
		if err := conn.Run("fir", streams); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range streams {
			want, wantCycles := serialFIR(t, streams[i].Inputs)
			if streams[i].Cycles != wantCycles {
				t.Fatalf("round %d stream %d: %d cycles, serial %d", round, i, streams[i].Cycles, wantCycles)
			}
			got := streams[i].Outputs["C"]
			if len(got) != len(want) {
				t.Fatalf("round %d stream %d: %d outputs, want %d", round, i, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("round %d stream %d: C[%d] = %d, want %d", round, i, j, got[j], want[j])
				}
			}
		}
	}
}

// TestServeFeedbackKernel: an accumulator with no output arrays must
// surface its feedback latch over the wire.
func TestServeFeedbackKernel(t *testing.T) {
	srv, addr := startServer(t, 2)
	_ = srv
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	in := make([]int64, 32)
	var want int64
	for i := range in {
		in[i] = int64(i*11 - 99)
		want += in[i]
	}
	streams := []netlist.Job{{Inputs: map[string][]int64{"A": in}}}
	if err := conn.Run("accum", streams); err != nil {
		t.Fatal(err)
	}
	if got := streams[0].Feedbacks["sum"]; got != want {
		t.Fatalf("served sum = %d, want %d", got, want)
	}
}

// TestServeUnknownKernel: a request for an unregistered kernel is a
// request-level error naming the kernel, and the connection survives it.
func TestServeUnknownKernel(t *testing.T) {
	srv, addr := startServer(t, 1)
	_ = srv
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	streams := []netlist.Job{{Inputs: firStream(1)}}
	err = conn.Run("nope", streams)
	if err == nil || !strings.Contains(err.Error(), `unknown kernel "nope"`) {
		t.Fatalf("err = %v, want unknown-kernel request error", err)
	}
	// Same connection must still serve real requests.
	if err := conn.Run("fir", streams); err != nil {
		t.Fatalf("connection unusable after unknown-kernel error: %v", err)
	}
}

// TestServeNonStreamableKernel: a kernel that compiles but has no loop
// nest (combinational data path) fails at first use with a request
// error, not a hang or crash.
func TestServeNonStreamableKernel(t *testing.T) {
	srv, addr := startServer(t, 1)
	if err := srv.Register(KernelSpec{
		Name:   "comb",
		Source: "void comb(int8 x, int16* y) { *y = x * 3; }",
		Func:   "comb", Options: core.DefaultOptions(),
		Config: netlist.Config{BusElems: 1},
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	err = conn.Run("comb", []netlist.Job{{Inputs: map[string][]int64{}}})
	if err == nil || !strings.Contains(err.Error(), "no loop nest") {
		t.Fatalf("err = %v, want a no-loop-nest request error", err)
	}
}

// TestServeMalformedFrame: garbage framing must close the connection
// without taking the server down, and new connections keep working.
func TestServeMalformedFrame(t *testing.T) {
	srv, addr := startServer(t, 1)
	_ = srv

	cases := map[string][]byte{
		// Length prefix far beyond maxFrame.
		"oversized": binary.BigEndian.AppendUint32(nil, 1<<30),
		// Zero-length frame.
		"zero": binary.BigEndian.AppendUint32(nil, 0),
		// Valid length, truncated payload, then close.
		"truncated": append(binary.BigEndian.AppendUint32(nil, 64), 'O', 0, 0),
		// Complete frame with an unknown type byte.
		"unknown-type": append(binary.BigEndian.AppendUint32(nil, 5), 'Z', 0, 0, 0, 1),
		// An Open frame whose body is shorter than its fields claim.
		"short-open": append(binary.BigEndian.AppendUint32(nil, 7), 'O', 0, 0, 0, 1, 200, 'x'),
	}
	for name, raw := range cases {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := c.Write(raw); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		// Half-close: nothing more is coming, so a server waiting on the
		// rest of a truncated frame sees EOF now instead of blocking.
		c.(*net.TCPConn).CloseWrite()
		// The server must close the connection (possibly after a
		// best-effort error frame). Drain until EOF with a deadline.
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 4096)
		for {
			if _, err := c.Read(buf); err != nil {
				break
			}
		}
		c.Close()
	}

	// Server still alive and serving.
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	streams := []netlist.Job{{Inputs: firStream(7)}}
	if err := conn.Run("fir", streams); err != nil {
		t.Fatalf("server unusable after malformed frames: %v", err)
	}
}

// TestServeDisconnectMidStream: a client that opens a request, delivers
// only part of it and vanishes must not leak pooled Systems — every Get
// is balanced by a Put/Reject once in-flight work drains, and the
// kernel keeps serving other clients.
func TestServeDisconnectMidStream(t *testing.T) {
	srv, addr := startServer(t, 2)

	// Prime the kernel so stats exist before the rude client.
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	streams := []netlist.Job{{Inputs: firStream(3)}}
	if err := conn.Run("fir", streams); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	for i := 0; i < 8; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		var e encoder
		e.begin(frameOpen, 1)
		e.str8("fir")
		e.u32(4) // promise four streams...
		if _, err := c.Write(e.finish()); err != nil {
			t.Fatal(err)
		}
		e.begin(frameStream, 1)
		e.u32(0)
		e.u16(1)
		e.str8("A")
		e.vals(firStream(int64(i))["A"])
		if _, err := c.Write(e.finish()); err != nil {
			t.Fatal(err)
		}
		c.Close() // ...deliver one, hang up mid-request
	}

	if !srv.WaitIdle(5 * time.Second) {
		t.Fatal("server did not drain in-flight streams after disconnects")
	}
	st := srv.Stats()["fir"]
	if st.Gets != st.Puts+st.Rejected {
		t.Fatalf("pooled Systems leaked after disconnects: %+v", st)
	}
	if st.Idle == 0 {
		t.Fatalf("pool has no idle Systems after drain: %+v", st)
	}

	// And the kernel still serves.
	conn2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := conn2.Run("fir", streams); err != nil {
		t.Fatalf("server unusable after disconnects: %v", err)
	}
}

// TestServeFaultAbortCycle: a divide-by-zero on a valid iteration must
// arrive as a typed dp.FaultError whose abort cycle and message match a
// serial System.Run of the same stream exactly.
func TestServeFaultAbortCycle(t *testing.T) {
	_, addr := startServer(t, 2)

	a := make([]int64, 24)
	b := make([]int64, 24)
	for i := range a {
		a[i] = int64(i + 1)
		b[i] = 3
	}
	b[11] = 0 // valid iteration 11 divides by zero
	inputs := map[string][]int64{"A": a, "B": b}

	// Serial reference fault.
	res, err := core.CompileSource(dividerSource, "divide", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := netlist.NewSystem(res.Kernel, res.Datapath, netlist.Config{BusElems: 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, vals := range inputs {
		if err := sys.LoadInput(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	_, serialErr := sys.Run()
	var want *dp.FaultError
	if !errors.As(serialErr, &want) {
		t.Fatalf("serial run did not raise a typed fault: %v", serialErr)
	}

	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A healthy stream alongside the faulting one: the batch must not
	// abort wholesale.
	ok := map[string][]int64{"A": a, "B": append([]int64(nil), b...)}
	ok["B"][11] = 5
	streams := []netlist.Job{{Inputs: inputs}, {Inputs: ok}}
	runErr := conn.Run("divide", streams)
	if runErr == nil {
		t.Fatal("faulting batch returned nil")
	}
	var got *dp.FaultError
	if !errors.As(streams[0].Err, &got) {
		t.Fatalf("stream 0 error is %v, want a typed dp.FaultError", streams[0].Err)
	}
	if got.Cycle != want.Cycle || got.Op != want.Op || got.Msg != want.Msg {
		t.Fatalf("served fault %+v, serial fault %+v", got, want)
	}
	if !errors.As(runErr, &got) || !strings.Contains(runErr.Error(), "stream 0") {
		t.Fatalf("Run error %v does not wrap the stream-0 fault", runErr)
	}
	if streams[1].Err != nil {
		t.Fatalf("healthy stream failed alongside the fault: %v", streams[1].Err)
	}
	if len(streams[1].Outputs["Q"]) != 24 {
		t.Fatal("healthy stream missing outputs")
	}
}

// TestServeLocalMatchesTCP: the in-process client and the TCP client
// must produce identical results (same pool, same semantics, no wire).
func TestServeLocalMatchesTCP(t *testing.T) {
	srv, addr := startServer(t, 2)
	local := srv.Local()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	mk := func() []netlist.Job {
		jobs := make([]netlist.Job, 6)
		for i := range jobs {
			jobs[i] = netlist.Job{Inputs: firStream(int64(100 + i))}
		}
		return jobs
	}
	viaTCP, viaLocal := mk(), mk()
	if err := conn.Run("fir", viaTCP); err != nil {
		t.Fatal(err)
	}
	if err := local.Run("fir", viaLocal); err != nil {
		t.Fatal(err)
	}
	for i := range viaTCP {
		if viaTCP[i].Cycles != viaLocal[i].Cycles {
			t.Fatalf("stream %d: cycles %d via TCP, %d via Local", i, viaTCP[i].Cycles, viaLocal[i].Cycles)
		}
		a, b := viaTCP[i].Outputs["C"], viaLocal[i].Outputs["C"]
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("stream %d: C[%d] = %d via TCP, %d via Local", i, j, a[j], b[j])
			}
		}
	}

	// Local must also report unknown kernels.
	if err := local.Run("nope", mk()); err == nil || !strings.Contains(err.Error(), "unknown kernel") {
		t.Fatalf("Local unknown-kernel err = %v", err)
	}
}

// TestServeGracefulShutdown: Shutdown refuses new requests, lets
// in-flight ones finish, and Serve returns nil.
func TestServeGracefulShutdown(t *testing.T) {
	srv := NewServer(2)
	for _, spec := range testSpecs() {
		if err := srv.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	streams := []netlist.Job{{Inputs: firStream(5)}}
	if err := conn.Run("fir", streams); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful Shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}

	// Post-shutdown requests fail: connection refused or drain error.
	if c2, err := Dial(ln.Addr().String()); err == nil {
		if err := c2.Run("fir", streams); err == nil {
			t.Fatal("request succeeded after Shutdown")
		}
		c2.Close()
	}
	if err := srv.Local().Run("fir", streams); err == nil {
		t.Fatal("Local request succeeded after Shutdown")
	}
}

// TestServeBackendSelection: the server inherits the execution backend
// per registered kernel through KernelSpec.Config — the same source
// registered on different backends must serve bit-identical outputs,
// cycle counts and feedback values, and each entry's pool must build
// Systems on its own backend.
func TestServeBackendSelection(t *testing.T) {
	srv := NewServer(2)
	for _, b := range dp.Backends() {
		for _, spec := range []KernelSpec{
			{Name: "fir-" + b.String(), Source: firSource, Func: "fir", Options: core.DefaultOptions(),
				Config: netlist.Config{BusElems: 1, Backend: b}},
			{Name: "accum-" + b.String(), Source: accumSource, Func: "accum", Options: core.DefaultOptions(),
				Config: netlist.Config{BusElems: 1, Backend: b}},
		} {
			if err := srv.Register(spec); err != nil {
				t.Fatal(err)
			}
		}
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	local := srv.Local()

	fin := firStream(97)["A"]
	ain := make([]int64, 32)
	for i := range ain {
		ain[i] = int64(i*13 - 200)
	}
	type got struct {
		out      []int64
		cycles   int
		feedback int64
	}
	results := map[string]got{}
	for _, b := range dp.Backends() {
		fjobs := []netlist.Job{{Inputs: map[string][]int64{"A": fin}}}
		if err := local.Run("fir-"+b.String(), fjobs); err != nil {
			t.Fatalf("[%v] fir: %v", b, err)
		}
		ajobs := []netlist.Job{{Inputs: map[string][]int64{"A": ain}}}
		if err := local.Run("accum-"+b.String(), ajobs); err != nil {
			t.Fatalf("[%v] accum: %v", b, err)
		}
		results[b.String()] = got{
			out:      fjobs[0].Outputs["C"],
			cycles:   fjobs[0].Cycles,
			feedback: ajobs[0].Feedbacks["sum"],
		}
	}
	ref := results[dp.BackendInterp.String()]
	for _, b := range dp.Backends()[1:] {
		r := results[b.String()]
		if r.cycles != ref.cycles {
			t.Fatalf("[%v] fir cycles %d, interp %d", b, r.cycles, ref.cycles)
		}
		if len(r.out) != len(ref.out) {
			t.Fatalf("[%v] fir output length %d, interp %d", b, len(r.out), len(ref.out))
		}
		for j := range ref.out {
			if r.out[j] != ref.out[j] {
				t.Fatalf("[%v] fir C[%d] = %d, interp %d", b, j, r.out[j], ref.out[j])
			}
		}
		if r.feedback != ref.feedback {
			t.Fatalf("[%v] accum sum = %d, interp %d", b, r.feedback, ref.feedback)
		}
	}
}
