package dfa

import (
	"testing"

	"roccc/internal/cfg"
	"roccc/internal/hir"
	"roccc/internal/vm"
)

func buildGraph(t *testing.T, src, name string) *cfg.Graph {
	t.Helper()
	p, f, err := hir.BuildFunc(src, name)
	if err != nil {
		t.Fatal(err)
	}
	k, err := hir.ExtractKernel(p, f)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := vm.Lower(k.DP)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(rt)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRegSetOps(t *testing.T) {
	a := RegSet{1: true, 2: true}
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Add(3)
	if a.Equal(b) {
		t.Error("sets diverged but compare equal")
	}
	changed := a.Union(b)
	if !changed || !a[3] {
		t.Error("union failed")
	}
	if a.Union(b) {
		t.Error("second union reported change")
	}
}

func TestDefsUsesBranchCond(t *testing.T) {
	src := `void f(int a, int b, int* o) { int r; if (a < b) { r = a; } else { r = b; } *o = r; }`
	g := buildGraph(t, src, "f")
	defs, uses := DefsUses(g.Entry())
	// The comparison defines its result and uses the inputs; the branch
	// condition use is covered by the defining SLT.
	if len(defs) == 0 || len(uses) == 0 {
		t.Errorf("defs=%d uses=%d", len(defs), len(uses))
	}
	for _, p := range g.Routine.Inputs {
		if !uses[p.Reg] {
			t.Errorf("input %s not recorded as use", p.Reg)
		}
	}
}

func TestLivenessStraightLine(t *testing.T) {
	g := buildGraph(t, `void f(int a, int b, int* o) { *o = a * b + a; }`, "f")
	liveIn, liveOut := Liveness(g)
	for _, p := range g.Routine.Inputs {
		if !liveIn[g.Entry()][p.Reg] {
			t.Errorf("input %s not live-in", p.Reg)
		}
	}
	// Output register must be live somewhere.
	out := g.Routine.Outputs[0].Reg
	found := false
	for _, b := range g.Blocks {
		if liveOut[b][out] {
			found = true
		}
	}
	if !found {
		t.Error("output never live-out")
	}
}

func TestLivenessThroughBranch(t *testing.T) {
	// c is defined before the branch and used after: live through both
	// branch blocks (the value pipe nodes carry, §4.2.2).
	src := `
void f(int x1, int x2, int* x3, int* x4) {
	int a, c;
	c = x1 - x2;
	if (c < x2) { a = x1*x1; } else { a = x1 * x2 + 3; }
	c = c - a;
	*x3 = c;
	*x4 = a;
}
`
	g := buildGraph(t, src, "f")
	liveIn, _ := Liveness(g)
	// Find c's register: defined in entry by the SUB.
	var cReg vm.Reg
	for _, in := range g.Entry().Instrs {
		if in.Op == vm.SUB {
			cReg = in.Dst
		}
	}
	if cReg == 0 {
		t.Fatal("no SUB in entry")
	}
	throughs := 0
	for _, b := range g.Blocks {
		if b != g.Entry() && liveIn[b][cReg] {
			throughs++
		}
	}
	if throughs < 2 {
		t.Errorf("c live-in at %d blocks, want >= 2 (both branch paths)", throughs)
	}
}

func TestDefSites(t *testing.T) {
	src := `void f(int a, int* o) { int r; if (a > 0) { r = a; } else { r = -a; } *o = r; }`
	g := buildGraph(t, src, "f")
	sites := DefSites(g)
	for _, p := range g.Routine.Inputs {
		found := false
		for _, d := range sites[p.Reg] {
			if d.Index == -1 && d.Block == g.Entry() {
				found = true
			}
		}
		if !found {
			t.Errorf("input %s missing entry def site", p.Reg)
		}
	}
	// r has two definition sites (one per branch).
	twoSites := 0
	for _, defs := range sites {
		if len(defs) == 2 {
			twoSites++
		}
	}
	if twoSites == 0 {
		t.Error("no register with two def sites (r should have them)")
	}
}

func TestUseCount(t *testing.T) {
	g := buildGraph(t, `void f(int a, int* o) { *o = a + a; }`, "f")
	counts := UseCount(g)
	in := g.Routine.Inputs[0].Reg
	if counts[in] < 2 {
		t.Errorf("a used %d times, want >= 2", counts[in])
	}
	out := g.Routine.Outputs[0].Reg
	if counts[out] < 1 {
		t.Error("output port not counted as use")
	}
}
