// Package dfa is the reproduction's Machine-SUIF bit-vector
// data-flow-analysis library analogue [15]: liveness and reaching
// definitions over vm virtual registers, plus def-use summaries. SSA
// conversion and pipe-node insertion (live-through variables around
// alternative branches, §4.2.2) are built on it.
package dfa

import (
	"roccc/internal/cfg"
	"roccc/internal/vm"
)

// RegSet is a set of virtual registers.
type RegSet map[vm.Reg]bool

// Clone copies the set.
func (s RegSet) Clone() RegSet {
	c := make(RegSet, len(s))
	for r := range s {
		c[r] = true
	}
	return c
}

// Equal reports set equality.
func (s RegSet) Equal(o RegSet) bool {
	if len(s) != len(o) {
		return false
	}
	for r := range s {
		if !o[r] {
			return false
		}
	}
	return true
}

// Add inserts r.
func (s RegSet) Add(r vm.Reg) { s[r] = true }

// Union adds all of o into s and reports whether s changed.
func (s RegSet) Union(o RegSet) bool {
	changed := false
	for r := range o {
		if !s[r] {
			s[r] = true
			changed = true
		}
	}
	return changed
}

// DefsUses returns the registers defined and used by one block,
// including the branch condition use.
func DefsUses(b *cfg.Block) (defs, uses RegSet) {
	defs, uses = RegSet{}, RegSet{}
	for _, in := range b.Instrs {
		for _, r := range in.Uses() {
			if !defs[r] {
				uses[r] = true
			}
		}
		if in.Op.HasDst() {
			defs[in.Dst] = true
		}
	}
	if b.BranchCond != nil {
		for _, r := range b.BranchCond.Uses() {
			if !defs[r] {
				uses[r] = true
			}
		}
	}
	return defs, uses
}

// Liveness computes per-block live-in and live-out register sets with
// the standard backward bit-vector fixpoint. Routine outputs are live at
// the exit block.
func Liveness(g *cfg.Graph) (liveIn, liveOut map[*cfg.Block]RegSet) {
	liveIn = map[*cfg.Block]RegSet{}
	liveOut = map[*cfg.Block]RegSet{}
	blocks := append([]*cfg.Block{}, g.Blocks...)
	blocks = append(blocks, g.Exit)
	for _, b := range blocks {
		liveIn[b] = RegSet{}
		liveOut[b] = RegSet{}
	}
	for _, p := range g.Routine.Outputs {
		liveIn[g.Exit].Add(p.Reg)
	}
	for changed := true; changed; {
		changed = false
		for i := len(blocks) - 1; i >= 0; i-- {
			b := blocks[i]
			if b == g.Exit {
				continue // live-in at the exit is the fixed output seed
			}
			out := RegSet{}
			for _, s := range b.Succs {
				out.Union(liveIn[s])
			}
			defs, uses := DefsUses(b)
			in := uses.Clone()
			for r := range out {
				if !defs[r] {
					in.Add(r)
				}
			}
			if !out.Equal(liveOut[b]) || !in.Equal(liveIn[b]) {
				changed = true
				liveOut[b] = out
				liveIn[b] = in
			}
		}
	}
	return liveIn, liveOut
}

// Def is a definition site: block and instruction index within it.
type Def struct {
	Block *cfg.Block
	Index int
}

// DefSites returns, per register, every definition site in the graph.
// Routine inputs are treated as defined in the entry block at index -1.
func DefSites(g *cfg.Graph) map[vm.Reg][]Def {
	sites := map[vm.Reg][]Def{}
	for _, p := range g.Routine.Inputs {
		sites[p.Reg] = append(sites[p.Reg], Def{Block: g.Entry(), Index: -1})
	}
	for _, b := range g.Blocks {
		for i, in := range b.Instrs {
			if in.Op.HasDst() {
				sites[in.Dst] = append(sites[in.Dst], Def{Block: b, Index: i})
			}
		}
	}
	return sites
}

// UseCount returns, per register, the number of reading occurrences.
func UseCount(g *cfg.Graph) map[vm.Reg]int {
	counts := map[vm.Reg]int{}
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			for _, r := range in.Uses() {
				counts[r]++
			}
		}
		if b.BranchCond != nil {
			for _, r := range b.BranchCond.Uses() {
				counts[r]++
			}
		}
	}
	for _, p := range g.Routine.Outputs {
		counts[p.Reg]++
	}
	return counts
}
