package smartbuf

import (
	"fmt"

	"roccc/internal/hir"
)

// ConfigFor derives the smart-buffer configuration from a front-end
// window access pattern (hir.Window), the surrounding loop nest and the
// memory bus width in elements. The window's dimensions must follow the
// nest order (outer variable indexes dimension 0) so that row-major
// streaming matches the iteration order.
func ConfigFor(w *hir.Window, nest *hir.LoopNest, busElems int) (Config, error) {
	ndim := len(w.Dims)
	cfg := Config{
		Extent:    make([]int, ndim),
		MinOff:    make([]int, ndim),
		Stride:    make([]int, ndim),
		ArrayDims: append([]int{}, w.Arr.Dims...),
		Origin:    make([]int, ndim),
		Windows:   make([]int, ndim),
		ElemBits:  w.Arr.Elem.Bits,
		BusElems:  busElems,
	}
	if len(cfg.ArrayDims) != ndim {
		return Config{}, fmt.Errorf("smartbuf: array %s has %d dims, window has %d",
			w.Arr.Name, len(cfg.ArrayDims), ndim)
	}
	for d := 0; d < ndim; d++ {
		dim := w.Dims[d]
		if dim.Var == nil {
			return Config{}, fmt.Errorf("smartbuf: window dimension %d of %s is constant", d, w.Arr.Name)
		}
		// Match the dimension's induction variable to a nest level.
		level := -1
		for l, v := range nest.Vars {
			if v == dim.Var {
				level = l
			}
		}
		if level < 0 {
			return Config{}, fmt.Errorf("smartbuf: window on %s uses non-nest variable %s", w.Arr.Name, dim.Var.Name)
		}
		if ndim == 2 && ((d == 0 && level != nest.Depth()-2) || (d == 1 && level != nest.Depth()-1)) {
			return Config{}, fmt.Errorf("smartbuf: window dims of %s do not follow nest order", w.Arr.Name)
		}
		if ndim == 1 && level != nest.Depth()-1 {
			return Config{}, fmt.Errorf("smartbuf: 1-D window of %s must use the innermost loop variable", w.Arr.Name)
		}
		scale := dim.Scale
		if scale <= 0 {
			return Config{}, fmt.Errorf("smartbuf: non-positive index scale on %s", w.Arr.Name)
		}
		min, extent := w.Span(d)
		cfg.MinOff[d] = int(min)
		cfg.Extent[d] = int(extent)
		cfg.Stride[d] = int(nest.Step[level] * scale)
		cfg.Origin[d] = int(nest.From[level]*scale + min)
		cfg.Windows[d] = int(nest.Trips(level))
	}
	for _, e := range w.Elems {
		tap := make([]int64, len(e.Offsets))
		copy(tap, e.Offsets)
		cfg.Taps = append(cfg.Taps, tap)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
