package smartbuf

// verify.go is the smart-buffer slice of the static invariant verifier
// (internal/dpverify, cmd/rocccvet). FeedStreak's O(1) guaranteed-feed
// bound rests on one structural fact — the buffer's logical capacity is
// EXACTLY the window span plus one bus word, so a blocked push implies
// the pending window is fully resident ("blocked implies ready") — and
// this pass re-derives that capacity from the configuration geometry
// and checks it against what New actually allocated.

import "fmt"

// VerifyBuffer statically checks a constructed buffer against the
// capacity contract and its derived storage layout. It returns one
// error string per violated invariant, each prefixed with a stable
// invariant slug; an empty slice means the buffer is sound.
func VerifyBuffer(b *Buffer) []string {
	var vs []string
	c := b.cfg
	if err := c.Validate(); err != nil {
		vs = append(vs, fmt.Sprintf("buffer/config: %v", err))
		return vs
	}
	// Independent span re-derivation: the pending window's last
	// streaming index minus its first, plus one — the live range a
	// window pins — then one bus word of arrival slack. For 1-D windows
	// that is Extent+B; for 2-D the window spans Extent[0]-1 whole array
	// rows plus Extent[1] elements of the last row.
	span := 0
	switch len(c.Extent) {
	case 1:
		span = c.Extent[0]
	case 2:
		span = (c.Extent[0]-1)*c.ArrayDims[1] + c.Extent[1]
	default:
		vs = append(vs, fmt.Sprintf("buffer/config: %d-dimensional window survived Validate", len(c.Extent)))
		return vs
	}
	want := span + c.BusElems
	if b.cap != want {
		vs = append(vs, fmt.Sprintf(
			"buffer/capacity: logical capacity %d, want window span %d + bus word %d = %d (FeedStreak's blocked-implies-ready proof needs exactly span+B)",
			b.cap, span, c.BusElems, want))
	}
	// The physical ring must be a power of two no smaller than the
	// logical capacity (indices resolve by mask), and the mask must
	// match it.
	if n := len(b.ring); n < b.cap || n&(n-1) != 0 {
		vs = append(vs, fmt.Sprintf("buffer/capacity: physical ring of %d elements cannot hold logical capacity %d as a power-of-two store", n, b.cap))
	} else if b.mask != n-1 {
		vs = append(vs, fmt.Sprintf("buffer/capacity: ring mask %#x does not match ring size %d", b.mask, n))
	}
	// Every tap offset must address inside the window span: a tap
	// outside it could read an evicted (or not-yet-arrived) element even
	// when WindowReady holds.
	if len(b.tapOff) != len(c.Taps) {
		vs = append(vs, fmt.Sprintf("buffer/taps: %d flattened tap offsets for %d taps", len(b.tapOff), len(c.Taps)))
	}
	for i, off := range b.tapOff {
		if off < 0 || off >= span {
			vs = append(vs, fmt.Sprintf("buffer/taps: tap %d flattens to offset %d outside the window span %d", i, off, span))
		}
	}
	return vs
}

// Capacity returns the buffer's logical capacity (the eviction horizon
// and CanAccept bound) — exposed for the static verifier and tests.
func (b *Buffer) Capacity() int { return b.cap }
