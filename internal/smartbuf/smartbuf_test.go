package smartbuf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"roccc/internal/hir"
)

// fir5 returns the FIR window config: 5-wide window, stride 1, on a
// 21-element array, 17 windows (the paper's Fig. 3).
func fir5(bus int) Config {
	return Config{
		Extent:    []int{5},
		MinOff:    []int{0},
		Stride:    []int{1},
		ArrayDims: []int{21},
		Origin:    []int{0},
		Windows:   []int{17},
		ElemBits:  8,
		BusElems:  bus,
		Taps:      [][]int64{{0}, {1}, {2}, {3}, {4}},
	}
}

func TestFIRWindows(t *testing.T) {
	b, err := New(fir5(1))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, 21)
	for i := range data {
		data[i] = int64(i * 3)
	}
	var got [][]int64
	i := 0
	for !b.Done() {
		if !b.WindowReady() {
			if i >= len(data) {
				t.Fatal("ran out of data before windows finished")
			}
			if err := b.Push(data[i : i+1]); err != nil {
				t.Fatal(err)
			}
			i++
			continue
		}
		w, err := b.PopWindow()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, w)
	}
	if len(got) != 17 {
		t.Fatalf("windows = %d, want 17", len(got))
	}
	for wi, w := range got {
		for ti := 0; ti < 5; ti++ {
			if w[ti] != data[wi+ti] {
				t.Errorf("window %d tap %d = %d, want %d", wi, ti, w[ti], data[wi+ti])
			}
		}
	}
	// The reuse property: 21 elements fetched for 17×5 = 85 tap reads.
	if b.Fetched() != 21 {
		t.Errorf("fetched = %d, want 21 (every element exactly once)", b.Fetched())
	}
}

func TestStride8Disjoint(t *testing.T) {
	// DCT-style: 8-wide disjoint windows over 64 elements.
	cfg := Config{
		Extent:    []int{8},
		MinOff:    []int{0},
		Stride:    []int{8},
		ArrayDims: []int{64},
		Origin:    []int{0},
		Windows:   []int{8},
		ElemBits:  8,
		BusElems:  8,
		Taps:      [][]int64{{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}},
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, 64)
	for i := range data {
		data[i] = int64(i)
	}
	var wins [][]int64
	pos := 0
	for !b.Done() {
		if b.WindowReady() {
			w, err := b.PopWindow()
			if err != nil {
				t.Fatal(err)
			}
			wins = append(wins, w)
			continue
		}
		end := pos + 8
		if err := b.Push(data[pos:end]); err != nil {
			t.Fatal(err)
		}
		pos = end
	}
	if len(wins) != 8 {
		t.Fatalf("windows = %d, want 8", len(wins))
	}
	for wi, w := range wins {
		for ti := range w {
			if w[ti] != int64(wi*8+ti) {
				t.Errorf("window %d tap %d = %d", wi, ti, w[ti])
			}
		}
	}
}

func Test2DWindow(t *testing.T) {
	// 3x3 stencil over an 8x8 image, unit strides: 6x6 windows.
	cfg := Config{
		Extent:    []int{3, 3},
		MinOff:    []int{-1, -1},
		Stride:    []int{1, 1},
		ArrayDims: []int{8, 8},
		Origin:    []int{0, 0},
		Windows:   []int{6, 6},
		ElemBits:  8,
		BusElems:  1,
		Taps: [][]int64{
			{-1, -1}, {-1, 0}, {-1, 1},
			{0, -1}, {0, 0}, {0, 1},
			{1, -1}, {1, 0}, {1, 1},
		},
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, 64)
	for i := range data {
		data[i] = int64(i)
	}
	var wins [][]int64
	pos := 0
	for !b.Done() {
		if b.WindowReady() {
			w, err := b.PopWindow()
			if err != nil {
				t.Fatal(err)
			}
			wins = append(wins, w)
			continue
		}
		if pos >= len(data) {
			t.Fatal("data exhausted")
		}
		if err := b.Push(data[pos : pos+1]); err != nil {
			t.Fatal(err)
		}
		pos++
	}
	if len(wins) != 36 {
		t.Fatalf("windows = %d, want 36", len(wins))
	}
	// Window (r,c) origin is at (r,c); taps relative to (r+1,c+1).
	wi := 0
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			w := wins[wi]
			wi++
			ti := 0
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					want := int64((r+1+dr)*8 + (c + 1 + dc))
					if w[ti] != want {
						t.Errorf("window (%d,%d) tap (%d,%d) = %d, want %d", r, c, dr, dc, w[ti], want)
					}
					ti++
				}
			}
		}
	}
	if b.Fetched() != 64 {
		t.Errorf("fetched = %d, want 64", b.Fetched())
	}
}

func TestStorageBits(t *testing.T) {
	if got := fir5(1).StorageBits(); got != 40 {
		t.Errorf("1-D storage = %d bits, want 40", got)
	}
	cfg2 := Config{
		Extent: []int{3, 3}, MinOff: []int{0, 0}, Stride: []int{1, 1},
		ArrayDims: []int{16, 16}, Origin: []int{0, 0}, Windows: []int{14, 14},
		ElemBits: 8, BusElems: 1,
		Taps: [][]int64{{0, 0}},
	}
	// (3-1)*16 + 3 = 35 elements * 8 bits.
	if got := cfg2.StorageBits(); got != 35*8 {
		t.Errorf("2-D storage = %d bits, want %d", got, 35*8)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := fir5(1)
	bad.Windows = []int{18} // 0+17*1+5 = 22 > 21
	if _, err := New(bad); err == nil {
		t.Error("overrun not caught")
	}
	bad2 := fir5(1)
	bad2.Stride = []int{0}
	if _, err := New(bad2); err == nil {
		t.Error("zero stride not caught")
	}
	bad3 := fir5(0)
	if _, err := New(bad3); err == nil {
		t.Error("zero bus not caught")
	}
}

func TestConfigFor(t *testing.T) {
	// Build the FIR kernel and derive the config from its window.
	src := `
int A[21];
int C[17];
void fir() {
	int i;
	for (i = 0; i < 17; i = i + 1) {
		C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
	}
}
`
	p, f, err := hir.BuildFunc(src, "fir")
	if err != nil {
		t.Fatal(err)
	}
	k, err := hir.ExtractKernel(p, f)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ConfigFor(k.Reads[0], &k.Nest, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Extent[0] != 5 || cfg.Stride[0] != 1 || cfg.Windows[0] != 17 || cfg.Origin[0] != 0 {
		t.Errorf("cfg = %+v", cfg)
	}
	if len(cfg.Taps) != 5 {
		t.Errorf("taps = %d", len(cfg.Taps))
	}
}

// Property: for random 1-D window shapes, streaming any data through the
// buffer reproduces exactly the windows that direct array slicing gives,
// with each element fetched once.
func TestWindowEquivalenceQuick(t *testing.T) {
	f := func(seed int64, extent8, stride8, wins8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		extent := int(extent8%6) + 1
		stride := int(stride8%4) + 1
		wins := int(wins8%10) + 1
		n := (wins-1)*stride + extent
		taps := make([][]int64, extent)
		for i := range taps {
			taps[i] = []int64{int64(i)}
		}
		cfg := Config{
			Extent: []int{extent}, MinOff: []int{0}, Stride: []int{stride},
			ArrayDims: []int{n}, Origin: []int{0}, Windows: []int{wins},
			ElemBits: 16, BusElems: 1, Taps: taps,
		}
		b, err := New(cfg)
		if err != nil {
			return false
		}
		data := make([]int64, n)
		for i := range data {
			data[i] = rng.Int63n(1000)
		}
		pos := 0
		var got [][]int64
		for !b.Done() {
			if b.WindowReady() {
				w, err := b.PopWindow()
				if err != nil {
					return false
				}
				got = append(got, w)
				continue
			}
			if pos >= n {
				return false
			}
			if b.Push(data[pos:pos+1]) != nil {
				return false
			}
			pos++
		}
		if len(got) != wins || b.Fetched() > n {
			return false
		}
		for wi, w := range got {
			for ti := 0; ti < extent; ti++ {
				if w[ti] != data[wi*stride+ti] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPopWindowIntoAndReset pins the allocation-free window export used
// by the netlist cycle loop: PopWindowInto fills a caller buffer of
// exactly Taps() elements (and rejects any other size), and Reset
// rewinds the buffer for an identical second pass over fresh data.
func TestPopWindowIntoAndReset(t *testing.T) {
	b, err := New(fir5(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PopWindowInto(make([]int64, 3)); err == nil {
		t.Error("undersized window buffer not rejected")
	}
	run := func(scale int64) [][]int64 {
		data := make([]int64, 21)
		for i := range data {
			data[i] = int64(i) * scale
		}
		win := make([]int64, b.Taps())
		var got [][]int64
		pos := 0
		for !b.Done() {
			if b.WindowReady() {
				if err := b.PopWindowInto(win); err != nil {
					t.Fatal(err)
				}
				cp := make([]int64, len(win))
				copy(cp, win)
				got = append(got, cp)
				continue
			}
			if err := b.Push(data[pos : pos+1]); err != nil {
				t.Fatal(err)
			}
			pos++
		}
		return got
	}
	first := run(3)
	if len(first) != 17 {
		t.Fatalf("windows = %d, want 17", len(first))
	}
	if b.Fetched() != 21 {
		t.Fatalf("fetched = %d, want 21 (each element once)", b.Fetched())
	}
	b.Reset()
	if b.Fetched() != 0 || b.Done() {
		t.Fatal("Reset did not rewind the buffer")
	}
	second := run(7)
	if len(second) != 17 {
		t.Fatalf("windows after Reset = %d, want 17", len(second))
	}
	for wi := range second {
		for ti := range second[wi] {
			want := int64(wi+ti) * 7
			if second[wi][ti] != want {
				t.Fatalf("window %d tap %d after Reset = %d, want %d", wi, ti, second[wi][ti], want)
			}
		}
	}
}
