package smartbuf

import (
	"math/rand"
	"testing"
)

// streak_test.go pins the O(1) streak/stall predictors against a
// cycle-by-cycle oracle: the buffer is driven exactly as the system's
// memory stage drives it (one bus word pushed per cycle while CanAccept,
// push before pop), and every prediction is checked against what then
// actually happens — FeedStreak and WindowsBuffered must never promise
// a feed cycle that stalls, and StallStreak must name the exact cycle
// the window becomes ready.

// randomGeometry builds a valid random 1-D or 2-D window configuration.
func randomGeometry(rng *rand.Rand) Config {
	if rng.Intn(2) == 0 {
		s := 1 + rng.Intn(4)
		e := 1 + rng.Intn(5)
		w := 1 + rng.Intn(20)
		o := rng.Intn(3)
		taps := make([][]int64, e)
		for i := range taps {
			taps[i] = []int64{int64(i)}
		}
		return Config{
			Extent:    []int{e},
			MinOff:    []int{0},
			Stride:    []int{s},
			ArrayDims: []int{o + (w-1)*s + e + rng.Intn(4)},
			Origin:    []int{o},
			Windows:   []int{w},
			ElemBits:  16,
			BusElems:  1 + rng.Intn(4),
			Taps:      taps,
		}
	}
	e0, e1 := 1+rng.Intn(3), 1+rng.Intn(3)
	s0, s1 := 1+rng.Intn(2), 1+rng.Intn(3)
	w0, w1 := 1+rng.Intn(4), 1+rng.Intn(6)
	var taps [][]int64
	for r := 0; r < e0; r++ {
		for c := 0; c < e1; c++ {
			taps = append(taps, []int64{int64(r), int64(c)})
		}
	}
	return Config{
		Extent:    []int{e0, e1},
		MinOff:    []int{0, 0},
		Stride:    []int{s0, s1},
		ArrayDims: []int{(w0-1)*s0 + e0 + rng.Intn(2), (w1-1)*s1 + e1 + rng.Intn(3)},
		Origin:    []int{0, 0},
		Windows:   []int{w0, w1},
		ElemBits:  16,
		BusElems:  1 + rng.Intn(4),
		Taps:      taps,
	}
}

func TestStreakPredictorsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20260726))
	for trial := 0; trial < 300; trial++ {
		cfg := randomGeometry(rng)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d: invalid geometry: %v\n%+v", trial, err, cfg)
		}
		b, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		total := 1
		for _, d := range cfg.ArrayDims {
			total *= d
		}
		data := make([]int64, total)
		for i := range data {
			data[i] = rng.Int63n(1 << 20)
		}
		pos := 0
		push := func() {
			if pos >= total || !b.CanAccept() {
				return
			}
			n := cfg.BusElems
			if pos+n > total {
				n = total - pos
			}
			if err := b.Push(data[pos : pos+n]); err != nil {
				t.Fatal(err)
			}
			pos += n
		}
		out := make([]int64, len(cfg.Taps))
		promised := 0 // feed cycles FeedStreak still guarantees
		stall := -1   // exact stall cycles StallStreak still predicts
		for cycle := 0; !b.Done(); cycle++ {
			if cycle > 8*total+64 {
				t.Fatalf("trial %d: runaway oracle\n%+v", trial, cfg)
			}
			push()
			ready := b.WindowReady()
			if promised > 0 && !ready {
				t.Fatalf("trial %d cycle %d: FeedStreak promised a feed, window stalled\n%+v", trial, cycle, cfg)
			}
			if stall > 0 && ready {
				t.Fatalf("trial %d cycle %d: StallStreak promised a stall, window is ready\n%+v", trial, cycle, cfg)
			}
			if stall == 0 && !ready {
				t.Fatalf("trial %d cycle %d: StallStreak ended, window still stalled\n%+v", trial, cycle, cfg)
			}
			if ready {
				stall = -1
				if st := b.StallStreak(); st != 0 {
					t.Fatalf("trial %d cycle %d: StallStreak = %d on a ready window", trial, cycle, st)
				}
				if k := b.FeedStreak(1 << 30); k > promised {
					promised = k
				}
				if wb := b.WindowsBuffered(); wb < 1 {
					t.Fatalf("trial %d cycle %d: WindowsBuffered = %d on a ready window", trial, cycle, wb)
				} else if wb > promised && wb > b.FeedStreak(1<<30) {
					// Resident windows are a guaranteed feed streak too.
					promised = wb
				}
				if promised < 1 {
					t.Fatalf("trial %d cycle %d: ready window but FeedStreak = 0\n%+v", trial, cycle, cfg)
				}
				if err := b.PopWindowInto(out); err != nil {
					t.Fatal(err)
				}
				promised--
			} else {
				promised = 0 // never promised: checked above
				m := b.StallStreak()
				if m < 1 {
					t.Fatalf("trial %d cycle %d: stalled window but StallStreak = %d\n%+v", trial, cycle, m, cfg)
				}
				if stall > 0 && m != stall {
					t.Fatalf("trial %d cycle %d: StallStreak drifted %d -> %d mid-stall", trial, cycle, stall, m)
				}
				stall = m - 1
			}
		}
		if b.Fetched() > total {
			t.Fatalf("trial %d: fetched %d of %d elements", trial, b.Fetched(), total)
		}
	}
}

// TestPopWindowRouted pins the routed pop against PopWindowInto plus a
// hand-applied routing table, including a dropped (-1) tap.
func TestPopWindowRouted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		cfg := randomGeometry(rng)
		b1, _ := New(cfg)
		b2, _ := New(cfg)
		total := 1
		for _, d := range cfg.ArrayDims {
			total *= d
		}
		data := make([]int64, total)
		for i := range data {
			data[i] = rng.Int63n(1 << 20)
		}
		route := make([]int32, len(cfg.Taps))
		width := len(cfg.Taps) + 2
		perm := rng.Perm(width)
		for i := range route {
			route[i] = int32(perm[i])
		}
		drop := -1
		if len(route) > 1 {
			drop = rng.Intn(len(route))
			route[drop] = -1
		}
		pos := 0
		win := make([]int64, len(cfg.Taps))
		routed := make([]int64, width)
		for !b1.Done() {
			if pos < total && b1.CanAccept() {
				n := cfg.BusElems
				if pos+n > total {
					n = total - pos
				}
				b1.Push(data[pos : pos+n])
				b2.Push(data[pos : pos+n])
				pos += n
			}
			if !b1.WindowReady() {
				continue
			}
			if err := b1.PopWindowInto(win); err != nil {
				t.Fatal(err)
			}
			for i := range routed {
				routed[i] = -999
			}
			if err := b2.PopWindowRouted(routed, route); err != nil {
				t.Fatal(err)
			}
			for i, d := range route {
				if i == drop {
					continue
				}
				if routed[d] != win[i] {
					t.Fatalf("trial %d: routed[%d] = %d, want tap %d = %d", trial, d, routed[d], i, win[i])
				}
			}
			if drop >= 0 {
				used := map[int32]bool{}
				for i, d := range route {
					if i != drop {
						used[d] = true
					}
				}
				for i := range routed {
					if !used[int32(i)] && routed[i] != -999 {
						t.Fatalf("trial %d: dropped tap wrote slot %d", trial, i)
					}
				}
			}
		}
	}
}

func TestPopWindowRoutedBadTable(t *testing.T) {
	b, err := New(fir5(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PopWindowRouted(make([]int64, 5), make([]int32, 3)); err == nil {
		t.Fatal("short routing table not rejected")
	}
}
