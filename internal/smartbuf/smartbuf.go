// Package smartbuf implements the paper's smart buffer (§4.1, [18]):
// a compiler-generated input buffer that exploits sliding-window data
// reuse. "ROCCC ... uses the knowledge of memory access pattern from the
// input code ... to automatically generate an intelligent buffer, based
// on the bus size, window size, data size and sliding-window stride.
// This buffer unit is able to reuse live input data, clean unused data
// and export the present valid input data set to the data path."
//
// Every array element is fetched from memory exactly once; consecutive
// windows share all but stride-many elements per dimension.
package smartbuf

import (
	"fmt"
	"math/bits"
)

// Config describes one array's window access pattern, produced by scalar
// replacement (hir.Window) plus the physical parameters.
type Config struct {
	// Extent is the window size per indexed dimension (1 or 2 dims).
	Extent []int
	// MinOff is the smallest window offset per dimension (window taps
	// are addressed relative to it).
	MinOff []int
	// Stride is the window advance per iteration in the innermost
	// dimension (loop step × index scale) and per row for 2-D.
	Stride []int
	// ArrayDims are the full array bounds (elements per dimension).
	ArrayDims []int
	// Origin is the first window's top-left corner in array coordinates
	// (loop lower bound × scale + MinOff).
	Origin []int
	// Windows is the number of windows per dimension (the loop nest
	// trip counts).
	Windows []int
	// ElemBits is the data size in bits.
	ElemBits int
	// BusElems is how many elements arrive from memory per cycle
	// (bus size / data size).
	BusElems int
	// Taps are the window offsets (relative coordinates, row-major
	// order as produced by the front end) exported to the data path.
	Taps [][]int64
}

// Validate checks structural consistency.
func (c Config) Validate() error {
	if len(c.Extent) == 0 || len(c.Extent) > 2 {
		return fmt.Errorf("smartbuf: %d-dimensional windows are not supported", len(c.Extent))
	}
	if len(c.Extent) != len(c.ArrayDims) || len(c.Extent) != len(c.Stride) ||
		len(c.Extent) != len(c.MinOff) || len(c.Extent) != len(c.Origin) ||
		len(c.Extent) != len(c.Windows) {
		return fmt.Errorf("smartbuf: dimension mismatch")
	}
	for d, e := range c.Extent {
		if e <= 0 || e > c.ArrayDims[d] {
			return fmt.Errorf("smartbuf: window extent %d exceeds array dimension %d", e, c.ArrayDims[d])
		}
		if c.Stride[d] <= 0 {
			return fmt.Errorf("smartbuf: non-positive stride")
		}
		if c.Windows[d] <= 0 {
			return fmt.Errorf("smartbuf: non-positive window count")
		}
		if c.Origin[d] < 0 {
			return fmt.Errorf("smartbuf: negative window origin (index underflow at the loop lower bound)")
		}
		last := c.Origin[d] + (c.Windows[d]-1)*c.Stride[d] + e
		if last > c.ArrayDims[d] {
			return fmt.Errorf("smartbuf: window sweep overruns array dimension %d (%d > %d)", d, last, c.ArrayDims[d])
		}
	}
	if c.ElemBits <= 0 || c.ElemBits > 64 {
		return fmt.Errorf("smartbuf: bad element size %d", c.ElemBits)
	}
	if c.BusElems <= 0 {
		return fmt.Errorf("smartbuf: bad bus width")
	}
	if len(c.Taps) == 0 {
		return fmt.Errorf("smartbuf: no window taps")
	}
	return nil
}

// StorageBits returns the register storage the buffer occupies: a 1-D
// window keeps the window extent; a 2-D window keeps (rows-1) line
// buffers plus one partial row — the structure a (5,3) wavelet engine
// uses (§5).
func (c Config) StorageBits() int {
	switch len(c.Extent) {
	case 1:
		return c.Extent[0] * c.ElemBits
	default:
		cols := c.ArrayDims[1]
		return ((c.Extent[0]-1)*cols + c.Extent[1]) * c.ElemBits
	}
}

// Buffer is a cycle-level behavioural model of the smart buffer. Push
// delivers up to BusElems elements per cycle in row-major streaming
// order; PopWindow yields consecutive windows as their last element
// arrives.
type Buffer struct {
	cfg Config
	// ring holds the most recent elements in streaming order. It is
	// allocated at the next power of two above the logical capacity so
	// streaming indices resolve with a mask instead of a modulo; cap is
	// the logical capacity — the storage the synthesized buffer actually
	// has (StorageBits) plus bus slack — and stays the eviction horizon
	// and CanAccept bound, so the physical slack never changes
	// backpressure timing.
	ring []int64
	mask int
	cap  int
	// tapOff[i] is Taps[i] flattened to a streaming-index offset from
	// the window origin, so the pop loop adds one int per tap instead of
	// chasing per-tap coordinate slices.
	tapOff []int
	count  int // total elements pushed
	// win is the next window's origin in array coordinates; popped is
	// the per-dimension count of windows already produced.
	win    []int
	popped []int
}

// New builds a buffer; the config must validate.
func New(cfg Config) (*Buffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cap := cfg.capacity()
	b := &Buffer{
		cfg:    cfg,
		ring:   make([]int64, 1<<bits.Len(uint(cap-1))),
		cap:    cap,
		win:    make([]int, len(cfg.Extent)),
		popped: make([]int, len(cfg.Extent)),
	}
	b.mask = len(b.ring) - 1
	copy(b.win, cfg.Origin)
	b.tapOff = make([]int, len(cfg.Taps))
	for i, tap := range cfg.Taps {
		if len(cfg.Extent) == 1 {
			b.tapOff[i] = int(tap[0]) - cfg.MinOff[0]
		} else {
			b.tapOff[i] = (int(tap[0])-cfg.MinOff[0])*cfg.ArrayDims[1] + int(tap[1]) - cfg.MinOff[1]
		}
	}
	return b, nil
}

// capacity is the number of live elements the buffer must retain.
func (c Config) capacity() int {
	if len(c.Extent) == 1 {
		// Extra slack for bus-granular arrival.
		return c.Extent[0] + c.BusElems
	}
	return (c.Extent[0]-1)*c.ArrayDims[1] + c.Extent[1] + c.BusElems
}

// Fetched returns how many elements have been pushed (for the
// fetch-once property): every pushed element is a fetch, so the push
// count is the fetch count.
func (b *Buffer) Fetched() int { return b.count }

// minNeededIndex is a lower bound on the oldest element index the next
// window still references.
func (b *Buffer) minNeededIndex() int {
	if b.done() {
		return b.count
	}
	switch len(b.cfg.Extent) {
	case 1:
		return b.win[0]
	default:
		return b.win[0]*b.cfg.ArrayDims[1] + b.win[1]
	}
}

// CanAccept reports whether a full bus word can be pushed without
// evicting data the next window still needs — the buffer's backpressure
// signal to the read address generator.
//
//roccc:hotpath
func (b *Buffer) CanAccept() bool {
	return b.count+b.cfg.BusElems-b.minNeededIndex() <= b.cap
}

// Push delivers the next elems (<= BusElems) in streaming order.
//
//roccc:hotpath
func (b *Buffer) Push(elems []int64) error {
	if len(elems) > b.cfg.BusElems {
		return fmt.Errorf("smartbuf: push of %d elements exceeds bus width %d", len(elems), b.cfg.BusElems)
	}
	for _, v := range elems {
		b.ring[b.count&b.mask] = v
		b.count++
	}
	return nil
}

// at reads the element with streaming index i (global element order).
func (b *Buffer) at(i int) (int64, error) {
	if i >= b.count {
		return 0, fmt.Errorf("smartbuf: element %d not yet arrived (count %d)", i, b.count)
	}
	if b.count-i > b.cap {
		return 0, fmt.Errorf("smartbuf: element %d already evicted (reuse distance exceeded)", i)
	}
	return b.ring[i&b.mask], nil
}

// WindowReady reports whether the next window's last element has
// arrived.
//
//roccc:hotpath
func (b *Buffer) WindowReady() bool {
	need := b.lastIndexOfWindow() + 1
	return need <= b.count && !b.done()
}

func (b *Buffer) done() bool {
	return b.popped[0] >= b.cfg.Windows[0]
}

// Done reports whether every window has been produced.
func (b *Buffer) Done() bool { return b.done() }

// lastIndexOfWindow returns the streaming index of the bottom-right
// element of the next window.
func (b *Buffer) lastIndexOfWindow() int {
	switch len(b.cfg.Extent) {
	case 1:
		return b.win[0] + b.cfg.Extent[0] - 1
	default:
		r := b.win[0] + b.cfg.Extent[0] - 1
		c := b.win[1] + b.cfg.Extent[1] - 1
		return r*b.cfg.ArrayDims[1] + c
	}
}

// PopWindow exports the current window's taps (in cfg.Taps order) and
// slides the window by the stride: innermost dimension first, wrapping
// to the next row-strip for 2-D patterns.
func (b *Buffer) PopWindow() ([]int64, error) {
	out := make([]int64, len(b.cfg.Taps))
	if err := b.PopWindowInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// PopWindowInto is PopWindow writing into a caller-provided buffer of
// exactly len(cfg.Taps) elements, so a cycle loop popping one window per
// clock does not allocate.
//
// The tap reads skip at()'s per-element checks: WindowReady guarantees
// every tap has arrived (all taps lie at or before the window's last
// element), and no tap can be evicted — taps lie at or after the window
// origin, and the push-side CanAccept invariant keeps
// count <= cap + origin at all times.
//
//roccc:hotpath
func (b *Buffer) PopWindowInto(out []int64) error {
	if len(out) != len(b.cfg.Taps) {
		return fmt.Errorf("smartbuf: window buffer holds %d elements, want %d taps", len(out), len(b.cfg.Taps))
	}
	if !b.WindowReady() {
		return fmt.Errorf("smartbuf: window not ready")
	}
	ring, mask := b.ring, b.mask
	base := b.win[0]
	if len(b.cfg.Extent) > 1 {
		base = b.win[0]*b.cfg.ArrayDims[1] + b.win[1]
	}
	for i, off := range b.tapOff {
		out[i] = ring[(base+off)&mask]
	}
	b.slide()
	return nil
}

// slide advances the window by the stride: innermost dimension first,
// wrapping to the next row strip for 2-D patterns.
//
//roccc:hotpath
func (b *Buffer) slide() {
	last := len(b.cfg.Extent) - 1
	b.popped[last]++
	b.win[last] += b.cfg.Stride[last]
	if last == 1 && b.popped[1] >= b.cfg.Windows[1] {
		b.popped[1] = 0
		b.win[1] = b.cfg.Origin[1]
		b.popped[0]++
		b.win[0] += b.cfg.Stride[0]
	}
}

// PopWindowRouted is PopWindowInto with the tap→destination routing
// fused in: tap t lands at out[route[t]], taps routed negative are
// dropped. Cycle loops that would otherwise pop into a scratch window
// and re-copy through a routing table (the netlist feed stage) save the
// intermediate buffer entirely.
//
//roccc:hotpath
func (b *Buffer) PopWindowRouted(out []int64, route []int32) error {
	if len(route) != len(b.tapOff) {
		return fmt.Errorf("smartbuf: routing table holds %d entries, want %d taps", len(route), len(b.tapOff))
	}
	if !b.WindowReady() {
		return fmt.Errorf("smartbuf: window not ready")
	}
	ring, mask := b.ring, b.mask
	base := b.win[0]
	if len(b.cfg.Extent) > 1 {
		base = b.win[0]*b.cfg.ArrayDims[1] + b.win[1]
	}
	for i, off := range b.tapOff {
		if d := route[i]; d >= 0 {
			out[d] = ring[(base+off)&mask]
		}
	}
	b.slide()
	return nil
}

// Taps returns the number of window taps a popped window exports — the
// required length of a PopWindowInto destination buffer.
func (b *Buffer) Taps() int { return len(b.cfg.Taps) }

// stripRemaining is how many windows are left in the innermost sweep
// dimension before the window walk wraps to the next row strip (for 1-D
// patterns, before the walk ends). Within a strip the window's last
// element advances by exactly the innermost stride per pop; at the strip
// boundary it jumps by whole array rows, so streak reasoning stops there.
func (b *Buffer) stripRemaining() int {
	last := len(b.cfg.Extent) - 1
	return b.cfg.Windows[last] - b.popped[last]
}

// WindowsBuffered reports how many consecutive windows, starting with
// the next one, are already fully resident — poppable now, with no
// further Push required. It is O(1): within a row strip the window's
// last streaming index advances by the innermost stride per pop, so the
// resident count is a division, capped at the strip boundary (the first
// window of the next strip needs whole new array rows). The count is a
// guaranteed-feed lower bound regardless of how memory-stage pushes
// interleave: resident data is never evicted while a window still
// references it (CanAccept backpressure).
//
//roccc:hotpath
func (b *Buffer) WindowsBuffered() int {
	if !b.WindowReady() {
		return 0
	}
	stride := b.cfg.Stride[len(b.cfg.Extent)-1]
	k := (b.count-1-b.lastIndexOfWindow())/stride + 1
	if strip := b.stripRemaining(); k > strip {
		k = strip
	}
	return k
}

// StallStreak returns, for a buffer whose next window is NOT ready, the
// exact number of consecutive cycles the window stays unready under the
// serial memory-stage schedule (one bus word per cycle): the cycles a
// stalled system spends filling. It is O(1): the missing element count
// divided by the bus width. Backpressure cannot block a fill — pushes
// are admitted exactly until the pending window's last element arrives
// (capacity() is the window span plus one bus word) — and a validated
// window sweep never needs elements past the array, so the generator
// cannot run dry first. Returns 0 if the window is already ready (or
// all windows are done: the caller's controller is draining then).
//
//roccc:hotpath
func (b *Buffer) StallStreak() int {
	if b.done() {
		return 0
	}
	missing := b.lastIndexOfWindow() + 1 - b.count
	if missing <= 0 {
		return 0
	}
	return (missing + b.cfg.BusElems - 1) / b.cfg.BusElems
}

// FeedStreak returns a safe lower bound on the number of consecutive
// cycles, starting now, for which WindowReady holds every cycle under
// the serial memory-stage schedule — at most one bus word pushed per
// cycle while CanAccept allows it (push before pop, as the system cycle
// orders them), one window popped per cycle — capped at max. The caller
// must have run the current cycle's push already: the bound counts this
// cycle's window as streak position zero.
//
// The bound is O(1). Within a row strip the requirement (the window's
// last streaming index) grows by the innermost stride S per cycle while
// the supply grows by up to BusElems B per cycle, so:
//
//   - S <= B: supply never falls behind. If a push is ever blocked by
//     backpressure, the buffer is holding a full window span plus a bus
//     word (capacity() is exactly that), which already contains the
//     cycle's window — blocked implies ready. The streak runs to the end
//     of the strip.
//   - S > B: consumption outruns the bus. Backpressure cannot re-arm
//     mid-streak (the gap between supply and the window origin only
//     widens), so if the next push is unblocked the supply is exactly
//     count + i*B and the streak length is the largest k with
//     lastIndex + i*S < count + i*B for all i < k. If the next push IS
//     blocked, fall back to the windows already resident — always safe.
//
// Cycles beyond the array's last element need no supply at all: the
// validated window sweep never references past the array, so the
// min(T, ...) clamp on supply can only relax the bound.
//
//roccc:hotpath
func (b *Buffer) FeedStreak(max int) int {
	if max <= 0 || !b.WindowReady() {
		return 0
	}
	stride := b.cfg.Stride[len(b.cfg.Extent)-1]
	k := b.stripRemaining()
	if stride > b.cfg.BusElems {
		if !b.CanAccept() {
			k = b.WindowsBuffered()
		} else if supply := (b.count - 1 - b.lastIndexOfWindow()) / (stride - b.cfg.BusElems); supply+1 < k {
			k = supply + 1
		}
	}
	if k > max {
		k = max
	}
	return k
}

// Reset empties the buffer and rewinds the window walk to the first
// window, without allocating, so one buffer can be reused across runs.
func (b *Buffer) Reset() {
	b.count = 0
	copy(b.win, b.cfg.Origin)
	for i := range b.popped {
		b.popped[i] = 0
	}
}

// WindowsTotal returns how many windows the configuration produces.
func (c Config) WindowsTotal() int {
	n := 1
	for d := range c.Extent {
		n *= c.Windows[d]
	}
	return n
}
