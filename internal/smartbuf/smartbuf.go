// Package smartbuf implements the paper's smart buffer (§4.1, [18]):
// a compiler-generated input buffer that exploits sliding-window data
// reuse. "ROCCC ... uses the knowledge of memory access pattern from the
// input code ... to automatically generate an intelligent buffer, based
// on the bus size, window size, data size and sliding-window stride.
// This buffer unit is able to reuse live input data, clean unused data
// and export the present valid input data set to the data path."
//
// Every array element is fetched from memory exactly once; consecutive
// windows share all but stride-many elements per dimension.
package smartbuf

import (
	"fmt"
)

// Config describes one array's window access pattern, produced by scalar
// replacement (hir.Window) plus the physical parameters.
type Config struct {
	// Extent is the window size per indexed dimension (1 or 2 dims).
	Extent []int
	// MinOff is the smallest window offset per dimension (window taps
	// are addressed relative to it).
	MinOff []int
	// Stride is the window advance per iteration in the innermost
	// dimension (loop step × index scale) and per row for 2-D.
	Stride []int
	// ArrayDims are the full array bounds (elements per dimension).
	ArrayDims []int
	// Origin is the first window's top-left corner in array coordinates
	// (loop lower bound × scale + MinOff).
	Origin []int
	// Windows is the number of windows per dimension (the loop nest
	// trip counts).
	Windows []int
	// ElemBits is the data size in bits.
	ElemBits int
	// BusElems is how many elements arrive from memory per cycle
	// (bus size / data size).
	BusElems int
	// Taps are the window offsets (relative coordinates, row-major
	// order as produced by the front end) exported to the data path.
	Taps [][]int64
}

// Validate checks structural consistency.
func (c Config) Validate() error {
	if len(c.Extent) == 0 || len(c.Extent) > 2 {
		return fmt.Errorf("smartbuf: %d-dimensional windows are not supported", len(c.Extent))
	}
	if len(c.Extent) != len(c.ArrayDims) || len(c.Extent) != len(c.Stride) ||
		len(c.Extent) != len(c.MinOff) || len(c.Extent) != len(c.Origin) ||
		len(c.Extent) != len(c.Windows) {
		return fmt.Errorf("smartbuf: dimension mismatch")
	}
	for d, e := range c.Extent {
		if e <= 0 || e > c.ArrayDims[d] {
			return fmt.Errorf("smartbuf: window extent %d exceeds array dimension %d", e, c.ArrayDims[d])
		}
		if c.Stride[d] <= 0 {
			return fmt.Errorf("smartbuf: non-positive stride")
		}
		if c.Windows[d] <= 0 {
			return fmt.Errorf("smartbuf: non-positive window count")
		}
		if c.Origin[d] < 0 {
			return fmt.Errorf("smartbuf: negative window origin (index underflow at the loop lower bound)")
		}
		last := c.Origin[d] + (c.Windows[d]-1)*c.Stride[d] + e
		if last > c.ArrayDims[d] {
			return fmt.Errorf("smartbuf: window sweep overruns array dimension %d (%d > %d)", d, last, c.ArrayDims[d])
		}
	}
	if c.ElemBits <= 0 || c.ElemBits > 64 {
		return fmt.Errorf("smartbuf: bad element size %d", c.ElemBits)
	}
	if c.BusElems <= 0 {
		return fmt.Errorf("smartbuf: bad bus width")
	}
	if len(c.Taps) == 0 {
		return fmt.Errorf("smartbuf: no window taps")
	}
	return nil
}

// StorageBits returns the register storage the buffer occupies: a 1-D
// window keeps the window extent; a 2-D window keeps (rows-1) line
// buffers plus one partial row — the structure a (5,3) wavelet engine
// uses (§5).
func (c Config) StorageBits() int {
	switch len(c.Extent) {
	case 1:
		return c.Extent[0] * c.ElemBits
	default:
		cols := c.ArrayDims[1]
		return ((c.Extent[0]-1)*cols + c.Extent[1]) * c.ElemBits
	}
}

// Buffer is a cycle-level behavioural model of the smart buffer. Push
// delivers up to BusElems elements per cycle in row-major streaming
// order; PopWindow yields consecutive windows as their last element
// arrives.
type Buffer struct {
	cfg Config
	// ring holds the most recent elements in streaming order.
	ring  []int64
	count int // total elements pushed
	// win is the next window's origin in array coordinates; popped is
	// the per-dimension count of windows already produced.
	win    []int
	popped []int
	// fetched tracks total fetches for the reuse property (each element
	// exactly once).
	fetched int
}

// New builds a buffer; the config must validate.
func New(cfg Config) (*Buffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &Buffer{
		cfg:    cfg,
		ring:   make([]int64, cfg.capacity()),
		win:    make([]int, len(cfg.Extent)),
		popped: make([]int, len(cfg.Extent)),
	}
	copy(b.win, cfg.Origin)
	return b, nil
}

// capacity is the number of live elements the buffer must retain.
func (c Config) capacity() int {
	if len(c.Extent) == 1 {
		// Extra slack for bus-granular arrival.
		return c.Extent[0] + c.BusElems
	}
	return (c.Extent[0]-1)*c.ArrayDims[1] + c.Extent[1] + c.BusElems
}

// Fetched returns how many elements have been pushed (for the
// fetch-once property).
func (b *Buffer) Fetched() int { return b.fetched }

// minNeededIndex is a lower bound on the oldest element index the next
// window still references.
func (b *Buffer) minNeededIndex() int {
	if b.done() {
		return b.count
	}
	switch len(b.cfg.Extent) {
	case 1:
		return b.win[0]
	default:
		return b.win[0]*b.cfg.ArrayDims[1] + b.win[1]
	}
}

// CanAccept reports whether a full bus word can be pushed without
// evicting data the next window still needs — the buffer's backpressure
// signal to the read address generator.
func (b *Buffer) CanAccept() bool {
	return b.count+b.cfg.BusElems-b.minNeededIndex() <= len(b.ring)
}

// Push delivers the next elems (<= BusElems) in streaming order.
func (b *Buffer) Push(elems []int64) error {
	if len(elems) > b.cfg.BusElems {
		return fmt.Errorf("smartbuf: push of %d elements exceeds bus width %d", len(elems), b.cfg.BusElems)
	}
	for _, v := range elems {
		b.ring[b.count%len(b.ring)] = v
		b.count++
		b.fetched++
	}
	return nil
}

// at reads the element with streaming index i (global element order).
func (b *Buffer) at(i int) (int64, error) {
	if i >= b.count {
		return 0, fmt.Errorf("smartbuf: element %d not yet arrived (count %d)", i, b.count)
	}
	if b.count-i > len(b.ring) {
		return 0, fmt.Errorf("smartbuf: element %d already evicted (reuse distance exceeded)", i)
	}
	return b.ring[i%len(b.ring)], nil
}

// WindowReady reports whether the next window's last element has
// arrived.
func (b *Buffer) WindowReady() bool {
	need := b.lastIndexOfWindow() + 1
	return need <= b.count && !b.done()
}

func (b *Buffer) done() bool {
	return b.popped[0] >= b.cfg.Windows[0]
}

// Done reports whether every window has been produced.
func (b *Buffer) Done() bool { return b.done() }

// lastIndexOfWindow returns the streaming index of the bottom-right
// element of the next window.
func (b *Buffer) lastIndexOfWindow() int {
	switch len(b.cfg.Extent) {
	case 1:
		return b.win[0] + b.cfg.Extent[0] - 1
	default:
		r := b.win[0] + b.cfg.Extent[0] - 1
		c := b.win[1] + b.cfg.Extent[1] - 1
		return r*b.cfg.ArrayDims[1] + c
	}
}

// PopWindow exports the current window's taps (in cfg.Taps order) and
// slides the window by the stride: innermost dimension first, wrapping
// to the next row-strip for 2-D patterns.
func (b *Buffer) PopWindow() ([]int64, error) {
	out := make([]int64, len(b.cfg.Taps))
	if err := b.PopWindowInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// PopWindowInto is PopWindow writing into a caller-provided buffer of
// exactly len(cfg.Taps) elements, so a cycle loop popping one window per
// clock does not allocate.
func (b *Buffer) PopWindowInto(out []int64) error {
	if len(out) != len(b.cfg.Taps) {
		return fmt.Errorf("smartbuf: window buffer holds %d elements, want %d taps", len(out), len(b.cfg.Taps))
	}
	if !b.WindowReady() {
		return fmt.Errorf("smartbuf: window not ready")
	}
	for i, tap := range b.cfg.Taps {
		var idx int
		switch len(b.cfg.Extent) {
		case 1:
			idx = b.win[0] + int(tap[0]) - b.cfg.MinOff[0]
		default:
			r := b.win[0] + int(tap[0]) - b.cfg.MinOff[0]
			c := b.win[1] + int(tap[1]) - b.cfg.MinOff[1]
			idx = r*b.cfg.ArrayDims[1] + c
		}
		v, err := b.at(idx)
		if err != nil {
			return err
		}
		out[i] = v
	}
	// Slide: innermost dimension first, wrapping to the next row strip.
	last := len(b.cfg.Extent) - 1
	b.popped[last]++
	b.win[last] += b.cfg.Stride[last]
	if last == 1 && b.popped[1] >= b.cfg.Windows[1] {
		b.popped[1] = 0
		b.win[1] = b.cfg.Origin[1]
		b.popped[0]++
		b.win[0] += b.cfg.Stride[0]
	}
	return nil
}

// Taps returns the number of window taps a popped window exports — the
// required length of a PopWindowInto destination buffer.
func (b *Buffer) Taps() int { return len(b.cfg.Taps) }

// Reset empties the buffer and rewinds the window walk to the first
// window, without allocating, so one buffer can be reused across runs.
func (b *Buffer) Reset() {
	b.count = 0
	b.fetched = 0
	copy(b.win, b.cfg.Origin)
	for i := range b.popped {
		b.popped[i] = 0
	}
}

// WindowsTotal returns how many windows the configuration produces.
func (c Config) WindowsTotal() int {
	n := 1
	for d := range c.Extent {
		n *= c.Windows[d]
	}
	return n
}
