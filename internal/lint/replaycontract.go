package lint

// replaycontract enforces the batch execution path's fault contract:
// the lane-parallel chunk computation commits nothing until it has run
// fault-free, so any caller of the chunk computation must, on its error
// branch, fall back to the serial replay — that is what makes a batch
// fault bit-identical to the serial core's abort (same cycle, same
// error, same state).
//
// Two directives mark the protocol's endpoints:
//
//	//roccc:chunk-compute — the speculative, nothing-committed computation
//	//roccc:serial-replay — the serial fallback that reproduces the abort
//
// Every call to a chunk-compute function must appear as the error
// source of an if-guard whose body calls a serial-replay function:
//
//	if err := s.batchCompute(...); err != nil { ...; return s.serialChunk(...) }
//	err := s.batchCompute(...)        // or assign-then-if
//	if err != nil { ... s.serialChunk(...) ... }
//
// Anything else — a bare call, `return s.batchCompute(...)`, or an
// error branch that does not replay — drops the fault contract.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ReplayContract is the serial-replay fault-contract analyzer.
var ReplayContract = &Analyzer{
	Name: "replaycontract",
	Doc:  "require //roccc:chunk-compute error branches to reach a //roccc:serial-replay call",
	Run:  runReplayContract,
}

func runReplayContract(pass *Pass) error {
	compute := markedFuncs(pass, "roccc:chunk-compute")
	replay := markedFuncs(pass, "roccc:serial-replay")
	if len(compute) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok && compute[obj] {
				continue // the computation itself is below the protocol
			}
			checkReplayBody(pass, fd.Body, compute, replay)
		}
	}
	return nil
}

func markedFuncs(pass *Pass, directive string) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc, directive) {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				out[obj] = true
			}
		}
	}
	return out
}

// checkReplayBody walks every block of one function. Within a block,
// statement position decides the verdict: a chunk-compute call is legal
// only as an if-init (`if err := cc(); err != nil {...}`) or as an
// assignment whose error is tested by a following if in the same block,
// and in both forms the if body must call a serial-replay function.
func checkReplayBody(pass *Pass, body *ast.BlockStmt, compute, replay map[*types.Func]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			switch s := stmt.(type) {
			case *ast.IfStmt:
				// if err := cc(...); err != nil { ... }
				if call := computeCallIn(pass, s.Init, compute); call != nil {
					if !callsAny(pass, s.Body, replay) {
						pass.Reportf(call.Pos(), "error branch of this //roccc:chunk-compute call never reaches a //roccc:serial-replay call")
					}
					continue
				}
				checkStrayComputeCalls(pass, stmt, compute)
			case *ast.AssignStmt:
				call := computeCallIn(pass, s, compute)
				if call == nil {
					checkStrayComputeCalls(pass, stmt, compute)
					continue
				}
				errIdent := assignedErrIdent(pass, s)
				if errIdent == nil || !guardedBelow(pass, block.List[i+1:], errIdent, replay) {
					pass.Reportf(call.Pos(), "error of this //roccc:chunk-compute call is never guarded by an if that reaches a //roccc:serial-replay call")
				}
			default:
				checkStrayComputeCalls(pass, stmt, compute)
			}
		}
		return true
	})
}

// checkStrayComputeCalls flags chunk-compute calls embedded anywhere in
// a statement that is not one of the two sanctioned forms.
func checkStrayComputeCalls(pass *Pass, stmt ast.Stmt, compute map[*types.Func]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.BlockStmt); ok {
			return false // inner blocks are visited by checkReplayBody
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if obj := funcObj(pass.Info, call); obj != nil && compute[obj] {
				pass.Reportf(call.Pos(), "//roccc:chunk-compute call outside an error-guarded form; a fault here skips the serial replay")
			}
		}
		return true
	})
}

// computeCallIn returns the chunk-compute call when stmt is an
// assignment (or if-init assignment) whose RHS is exactly that call.
func computeCallIn(pass *Pass, stmt ast.Stmt, compute map[*types.Func]bool) *ast.CallExpr {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	if obj := funcObj(pass.Info, call); obj != nil && compute[obj] {
		return call
	}
	return nil
}

// assignedErrIdent returns the object of the last assigned variable —
// the error, by Go convention — of a chunk-compute assignment.
func assignedErrIdent(pass *Pass, as *ast.AssignStmt) types.Object {
	id, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if as.Tok == token.DEFINE {
		return pass.Info.Defs[id]
	}
	return pass.Info.Uses[id]
}

// guardedBelow reports whether one of the statements following the
// assignment is an if testing the error object with a serial-replay
// call in its body.
func guardedBelow(pass *Pass, rest []ast.Stmt, errObj types.Object, replay map[*types.Func]bool) bool {
	for _, stmt := range rest {
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok {
			continue
		}
		usesErr := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == errObj {
				usesErr = true
			}
			return true
		})
		if usesErr {
			return callsAny(pass, ifs.Body, replay)
		}
	}
	return false
}

// callsAny reports whether the subtree contains a call to any function
// in the set.
func callsAny(pass *Pass, n ast.Node, set map[*types.Func]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if obj := funcObj(pass.Info, call); obj != nil && set[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
