// Package lint is a self-contained static-analysis framework in the
// shape of golang.org/x/tools/go/analysis, built only on the standard
// library's go/ast, go/types and go/importer (the repo vendors no
// third-party code). It exists to enforce the repo's two hand-written
// performance contracts at the source level:
//
//   - hot-path functions (marked //roccc:hotpath) must not allocate
//     per cycle — see Analyzers()[0];
//   - the batch execution path must replay faulting chunks through the
//     serial core (markers //roccc:chunk-compute, //roccc:serial-replay);
//   - every SystemPool.Get must be matched by a Put or escape.
//
// cmd/roccclint drives the analyzers over the module; RunFixture drives
// them over `// want` annotated testdata packages.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named check. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass carries one package's syntax and type information to an
// analyzer, mirroring analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding, positioned in the linted source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the repo's analyzer set in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{HotPathAlloc, ReplayContract, PoolHygiene}
}

// RunPackage runs the given analyzers over one loaded package and
// returns the findings sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		diags = append(diags, pass.diags...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// funcObj resolves the called function object of a call expression, or
// nil for builtins, conversions and indirect calls.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// hasDirective reports whether the function's doc comment carries the
// //roccc:<name> directive.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == "//"+directive {
			return true
		}
	}
	return false
}
