package lint_test

import (
	"path/filepath"
	"testing"

	"roccc/internal/lint"
	"roccc/internal/lint/linttest"
)

func newLoader(t *testing.T) *lint.Loader {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	ldr, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return ldr
}

func TestHotPathAllocFixture(t *testing.T) {
	linttest.RunFixture(t, newLoader(t), "testdata/hotpath", lint.HotPathAlloc)
}

func TestReplayContractFixture(t *testing.T) {
	linttest.RunFixture(t, newLoader(t), "testdata/replay", lint.ReplayContract)
}

func TestPoolHygieneFixture(t *testing.T) {
	linttest.RunFixture(t, newLoader(t), "testdata/pool", lint.PoolHygiene)
}

// TestTreeClean runs every analyzer over the whole module — the same
// run CI's lint job performs via cmd/roccclint. The tree carries the
// //roccc:hotpath and replay/pool markers, so this proves the real
// hot paths satisfy the contracts, not just the fixtures.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module (stdlib from source)")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, npkgs, err := lint.Run(root, []string{"./..."}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if npkgs == 0 {
		t.Fatal("no packages matched ./...")
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestExpandPatterns pins the loader's pattern grammar.
func TestExpandPatterns(t *testing.T) {
	ldr := newLoader(t)
	paths, err := ldr.Expand([]string{"./internal/lint/..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"roccc/internal/lint":          false,
		"roccc/internal/lint/linttest": false,
	}
	for _, p := range paths {
		if _, ok := want[p]; !ok {
			t.Errorf("unexpected package %s (testdata must not match)", p)
		} else {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("pattern missed %s", p)
		}
	}
}
