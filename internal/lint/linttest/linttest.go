// Package linttest runs lint analyzers over annotated fixture
// packages, in the shape of x/tools' analysistest: a fixture source
// line that should be diagnosed carries a trailing
//
//	// want `regexp`
//
// comment. RunFixture fails the test for every diagnostic without a
// matching want on its line, and for every want no diagnostic matched
// — so fixtures prove both that an analyzer fires and that it stays
// silent.
package linttest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"roccc/internal/lint"
)

var wantRE = regexp.MustCompile("// want `([^`]+)`")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// RunFixture loads dir as a standalone package and checks the
// analyzers' diagnostics against its `// want` annotations.
func RunFixture(t *testing.T, loader *lint.Loader, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range collectComments(f) {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					pos := pkg.Fset.Position(c.Pos())
					t.Fatalf("%s: bad want regexp: %v", pos, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	diags, err := lint.RunPackage(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want `%s`", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched want on the diagnostic's line whose
// regexp matches it.
func claim(wants []*want, d lint.Diagnostic) bool {
	msg := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func collectComments(f *ast.File) []*ast.CommentGroup {
	return f.Comments
}

// Describe returns a one-line summary of an analyzer set, for test
// names and logs.
func Describe(analyzers []*lint.Analyzer) string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return strings.Join(names, "+")
}
