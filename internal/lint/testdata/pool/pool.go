// Package pool is the poolhygiene fixture. It declares its own
// SystemPool and Router: the analyzer matches the receiver's type name,
// so the protocol is checkable without importing the real netlist or
// fleet packages.
package pool

import "errors"

type System struct{ busy bool }

type SystemPool struct{ free []*System }

func (p *SystemPool) Get() (*System, error) {
	if len(p.free) == 0 {
		return nil, errors.New("empty")
	}
	s := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return s, nil
}

func (p *SystemPool) Put(s *System) { p.free = append(p.free, s) }

type holder struct{ sys *System }

func work(s *System) {}

func goodPaired(p *SystemPool) error {
	sys, err := p.Get()
	if err != nil {
		return err
	}
	work(sys)
	p.Put(sys)
	return nil
}

func goodDeferred(p *SystemPool) error {
	sys, err := p.Get()
	if err != nil {
		return err
	}
	defer p.Put(sys)
	work(sys)
	return nil
}

func goodEscapeReturn(p *SystemPool) (*System, error) {
	sys, err := p.Get()
	if err != nil {
		return nil, err
	}
	return sys, nil
}

func goodEscapeStore(p *SystemPool, dst *holder) error {
	sys, err := p.Get()
	if err != nil {
		return err
	}
	dst.sys = sys
	return nil
}

func goodEscapeSend(p *SystemPool, ch chan *System) error {
	sys, err := p.Get()
	if err != nil {
		return err
	}
	ch <- sys
	return nil
}

func badLeak(p *SystemPool) error {
	sys, err := p.Get() // want `without a Put`
	if err != nil {
		return err
	}
	work(sys)
	return nil
}

func badDiscard(p *SystemPool) {
	p.Get() // want `discarded`
}

func badUnderscore(p *SystemPool) error {
	_, err := p.Get() // want `discarded`
	return err
}

// Router mirrors fleet.Router's per-shard pipelined-connection free
// list: Get checks a connection out for one stream, Put returns it.
type Conn struct{ healthy bool }

type Router struct{ conns [][]*Conn }

func (r *Router) Get(shard int) (*Conn, error) {
	free := r.conns[shard]
	if len(free) == 0 {
		return nil, errors.New("dial failed")
	}
	c := free[len(free)-1]
	r.conns[shard] = free[:len(free)-1]
	return c, nil
}

func (r *Router) Put(shard int, c *Conn) {
	r.conns[shard] = append(r.conns[shard], c)
}

func send(c *Conn) {}

func goodRouterPaired(r *Router) error {
	c, err := r.Get(0)
	if err != nil {
		return err
	}
	send(c)
	r.Put(0, c)
	return nil
}

func goodRouterEscape(r *Router, ch chan *Conn) error {
	c, err := r.Get(1)
	if err != nil {
		return err
	}
	ch <- c
	return nil
}

func badRouterLeak(r *Router) error {
	c, err := r.Get(0) // want `without a Put`
	if err != nil {
		return err
	}
	send(c)
	return nil
}

func badRouterDiscard(r *Router) {
	r.Get(2) // want `discarded`
}
