// Package pool is the poolhygiene fixture. It declares its own
// SystemPool: the analyzer matches the receiver's type name, so the
// protocol is checkable without importing the real netlist package.
package pool

import "errors"

type System struct{ busy bool }

type SystemPool struct{ free []*System }

func (p *SystemPool) Get() (*System, error) {
	if len(p.free) == 0 {
		return nil, errors.New("empty")
	}
	s := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return s, nil
}

func (p *SystemPool) Put(s *System) { p.free = append(p.free, s) }

type holder struct{ sys *System }

func work(s *System) {}

func goodPaired(p *SystemPool) error {
	sys, err := p.Get()
	if err != nil {
		return err
	}
	work(sys)
	p.Put(sys)
	return nil
}

func goodDeferred(p *SystemPool) error {
	sys, err := p.Get()
	if err != nil {
		return err
	}
	defer p.Put(sys)
	work(sys)
	return nil
}

func goodEscapeReturn(p *SystemPool) (*System, error) {
	sys, err := p.Get()
	if err != nil {
		return nil, err
	}
	return sys, nil
}

func goodEscapeStore(p *SystemPool, dst *holder) error {
	sys, err := p.Get()
	if err != nil {
		return err
	}
	dst.sys = sys
	return nil
}

func goodEscapeSend(p *SystemPool, ch chan *System) error {
	sys, err := p.Get()
	if err != nil {
		return err
	}
	ch <- sys
	return nil
}

func badLeak(p *SystemPool) error {
	sys, err := p.Get() // want `without a Put`
	if err != nil {
		return err
	}
	work(sys)
	return nil
}

func badDiscard(p *SystemPool) {
	p.Get() // want `discarded`
}

func badUnderscore(p *SystemPool) error {
	_, err := p.Get() // want `discarded`
	return err
}
