// Package replay is the replaycontract fixture: the two sanctioned
// guard forms, then every shape that drops the serial-replay fallback.
package replay

import "errors"

type sim struct{ faulty bool }

//roccc:chunk-compute
func (s *sim) compute(n int) error {
	if s.faulty {
		return errors.New("fault")
	}
	return nil
}

//roccc:serial-replay
func (s *sim) replay(n int) error { return nil }

func goodIfInit(s *sim, n int) error {
	if err := s.compute(n); err != nil {
		return s.replay(n)
	}
	return nil
}

func goodAssignThenIf(s *sim, n int) error {
	err := s.compute(n)
	if err != nil {
		n = 0 // housekeeping before the replay is fine
		return s.replay(n)
	}
	return nil
}

func badReturn(s *sim, n int) error {
	return s.compute(n) // want `outside an error-guarded form`
}

func badBare(s *sim, n int) {
	s.compute(n) // want `outside an error-guarded form`
}

func badGuardWithoutReplay(s *sim, n int) error {
	if err := s.compute(n); err != nil { // want `never reaches a //roccc:serial-replay`
		return err
	}
	return nil
}

func badAssignNeverGuarded(s *sim, n int) error {
	err := s.compute(n) // want `never guarded`
	_ = err
	return nil
}
