// Package hotpath is the hotpathalloc fixture: every construct the
// analyzer must flag, next to the same construct in an exempt position.
package hotpath

import "fmt"

type ticker interface{ tick() int }

type counter int

func (c counter) tick() int { return int(c) }

//roccc:hotpath
func hotStep(in, out []int64, m map[string]int, c counter) ([]int64, error) {
	out = append(out[:0], in...) // resliced backing array: reuse, ok
	out = append(out, 1)         // want `append may grow per call`
	for k := range m {           // want `map iteration`
		_ = k
	}
	fmt.Println("tick") // want `fmt\.Println allocates per call`
	s := "a" + "b"      // constant-folded, ok
	_ = s
	name := "x"
	label := name + "y" // want `string concatenation`
	_ = label
	name += "z" // want `string concatenation`
	_ = name
	v := ticker(c) // want `conversion to interface`
	_ = v
	if in == nil {
		return nil, fmt.Errorf("no input") // abort path: exempt
	}
	return out, nil
}

//roccc:hotpath-closures
func compilePlan(n int) func() int {
	scratch := make([]int, 0, n)
	seed := append([]int{}, n) // compile time, not hot: ok
	_ = seed
	return func() int {
		scratch = append(scratch, 1) // want `append may grow per call`
		return len(scratch)
	}
}

// cold has no directive: the same constructs stay silent.
func cold(m map[string]int) string {
	var parts []string
	for k := range m {
		parts = append(parts, k)
	}
	fmt.Println(parts)
	name := "x"
	name = name + "y"
	return name
}
