package lint

// hotpathalloc enforces the repo's per-cycle allocation contract: the
// simulator's inner loops (Step/StepN/DrainN, the batch classes, the
// smart-buffer pop paths, the controller ticks) run millions of times
// per Run and must not allocate or dispatch dynamically per call.
//
// Two directives opt code in:
//
//	//roccc:hotpath          — the whole function body is hot
//	//roccc:hotpath-closures — only func literals inside are hot
//	                           (plan-compile functions allocate freely
//	                           while building, but the step/lane
//	                           closures they return run per cycle)
//
// Inside hot code the analyzer flags:
//
//   - append whose destination is not a sliced backing array
//     (append(buf[:0], ...) reuses; bare append grows);
//   - ranging over a map (runtime-randomized iteration, hidden
//     hashing cost);
//   - calls into package fmt, and string concatenation — both build
//     garbage per call;
//   - explicit conversions to interface types — each one may box.
//
// fmt calls, string concatenation and interface conversions inside a
// return statement are exempt: fault paths like
// `return nil, fmt.Errorf(...)` abort the hot loop, so their cost is
// paid once, not per cycle.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc is the per-cycle allocation analyzer.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid per-cycle allocation in //roccc:hotpath functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch {
			case hasDirective(fd.Doc, "roccc:hotpath"):
				checkHotBody(pass, fd.Body, fd.Name.Name)
			case hasDirective(fd.Doc, "roccc:hotpath-closures"):
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if fl, ok := n.(*ast.FuncLit); ok {
						checkHotBody(pass, fl.Body, fd.Name.Name+" closure")
						return false // checkHotBody covers nested literals
					}
					return true
				})
			}
		}
	}
	return nil
}

// checkHotBody walks one hot function body keeping an ancestor stack,
// so abort paths (inside a return statement) can be exempted.
func checkHotBody(pass *Pass, body *ast.BlockStmt, where string) {
	var stack []ast.Node
	inReturn := func() bool {
		for _, n := range stack {
			if _, ok := n.(*ast.ReturnStmt); ok {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, n, where, inReturn())
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "%s is hot (//roccc:hotpath): map iteration hashes and randomizes per call", where)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pass, n) && !isConstExpr(pass, n) && !inReturn() {
				pass.Reportf(n.Pos(), "%s is hot (//roccc:hotpath): string concatenation allocates per call", where)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pass, n.Lhs[0]) {
				pass.Reportf(n.Pos(), "%s is hot (//roccc:hotpath): string concatenation allocates per call", where)
			}
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr, where string, inReturn bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
			if _, reuse := ast.Unparen(call.Args[0]).(*ast.SliceExpr); !reuse {
				pass.Reportf(call.Pos(), "%s is hot (//roccc:hotpath): append may grow per call; append to a resliced backing array (buf[:0]) or pre-size outside the loop", where)
			}
			return
		}
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[x].(*types.PkgName); ok && pn.Imported().Path() == "fmt" && !inReturn {
				pass.Reportf(call.Pos(), "%s is hot (//roccc:hotpath): fmt.%s allocates per call; only abort paths (inside return) may format", where, fun.Sel.Name)
				return
			}
		}
	}
	// Explicit conversion to an interface type boxes its operand.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 && !inReturn {
		if types.IsInterface(tv.Type) {
			if at := pass.Info.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) {
				pass.Reportf(call.Pos(), "%s is hot (//roccc:hotpath): conversion to interface %s boxes per call", where, tv.Type)
			}
		}
	}
}

func isStringExpr(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}
