package lint

// Run loads the packages matched by patterns in the module rooted at
// root and applies the analyzers, returning all findings in package
// order. It is the shared driver behind cmd/roccclint and the
// tree-cleanliness test.
func Run(root string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, int, error) {
	ldr, err := NewLoader(root)
	if err != nil {
		return nil, 0, err
	}
	paths, err := ldr.Expand(patterns)
	if err != nil {
		return nil, 0, err
	}
	var all []Diagnostic
	for _, p := range paths {
		pkg, err := ldr.Load(p)
		if err != nil {
			return nil, 0, err
		}
		diags, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, 0, err
		}
		all = append(all, diags...)
	}
	return all, len(paths), nil
}
