package lint

// poolhygiene enforces the SystemPool checkout protocol: every system
// taken with Get must be returned with Put (the pool's worker count is
// its concurrency budget — a dropped handle permanently shrinks it) or
// must provably leave the function (returned, stored, or sent onward,
// making the new holder responsible).
//
// The check is per function: a function that calls SystemPool.Get must
// either also call SystemPool.Put (anywhere, including deferred — the
// analyzer does not prove path coverage, it catches the forgotten-Put
// shape), or the checked-out value must escape. Discarding the result
// (`p.Get()` as a statement, or assigning the system to _) is always a
// leak.

import (
	"go/ast"
	"go/types"
)

// PoolHygiene is the SystemPool Get/Put pairing analyzer.
var PoolHygiene = &Analyzer{
	Name: "poolhygiene",
	Doc:  "require every SystemPool.Get to be paired with a Put or to escape",
	Run:  runPoolHygiene,
}

// poolTypeNames matches the receiver's named type; fixtures declare
// their own SystemPool/Router, so the check is name-based, not
// path-based. Router is fleet.Router's pipelined-connection free list —
// same checkout protocol, same leak consequence (a dropped conn pins a
// TCP socket and shrinks the shard's reuse pool).
var poolTypeNames = map[string]bool{
	"SystemPool": true,
	"Router":     true,
}

func runPoolHygiene(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolBody(pass, fd.Body)
		}
	}
	return nil
}

func checkPoolBody(pass *Pass, body *ast.BlockStmt) {
	hasPut := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && poolMethodType(pass, call, "Put") != "" {
			hasPut = true
		}
		return !hasPut
	})

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		tname := poolMethodType(pass, call, "Get")
		if tname == "" || hasPut {
			return true
		}
		obj := getResultObj(pass, body, call)
		if obj == nil {
			pass.Reportf(call.Pos(), "%s.Get result is discarded: the checked-out value can never be Put back", tname)
			return true
		}
		if !escapes(pass, body, obj) {
			pass.Reportf(call.Pos(), "%s.Get without a Put: %s neither returns to the pool nor escapes", tname, obj.Name())
		}
		return true
	})
}

// poolMethodType reports the receiver type name when call invokes the
// named method on a value whose (possibly pointed-to) named type is one
// of the checked pool types, "" otherwise.
func poolMethodType(pass *Pass, call *ast.CallExpr, method string) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	f, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Name() != method {
		return ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !poolTypeNames[named.Obj().Name()] {
		return ""
	}
	return named.Obj().Name()
}

// getResultObj finds the variable the Get call's first result is bound
// to: nil when the call is a bare statement or the system goes to _.
func getResultObj(pass *Pass, body *ast.BlockStmt, call *ast.CallExpr) types.Object {
	var obj types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || as.Rhs[0] != ast.Expr(call) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if o := pass.Info.Defs[id]; o != nil {
				obj = o
			} else {
				obj = pass.Info.Uses[id]
			}
		}
		return false
	})
	return obj
}

// escapes reports whether the checked-out system leaves the function:
// returned, sent on a channel, stored in a composite literal, or
// assigned through a selector/index (a field, map or slice visible to
// the caller). A plain call argument does not transfer responsibility.
func escapes(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	usesObj := func(e ast.Expr) bool {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				hit = true
			}
			return !hit
		})
		return hit
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if usesObj(r) {
					found = true
				}
			}
		case *ast.SendStmt:
			if usesObj(n.Value) {
				found = true
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if usesObj(e) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && usesObj(rhs) {
					switch n.Lhs[i].(type) {
					case *ast.SelectorExpr, *ast.IndexExpr:
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
