package lint

// load.go is the package loader behind the analyzers: a minimal,
// module-aware stand-in for go/packages. It resolves imports under the
// repo's module path to directories, honors //go:build constraints via
// go/build (so mutually exclusive files like the dpverify hooks never
// collide), excludes _test.go files, and delegates standard-library
// imports to the compiler's source importer — no toolchain invocation,
// no network, no module cache.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed and type-checked package.
type Package struct {
	Path  string // import path (or fixture:<dir> for LoadDir)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader loads packages of a single module rooted at Root, memoizing
// by import path. It implements types.Importer.
type Loader struct {
	Root   string
	Module string
	Fset   *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at root (the
// directory holding go.mod).
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		Module:  module,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// Import implements types.Importer: module-local paths load from the
// tree, everything else (the standard library) comes from the source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load loads a package of this module by import path.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")))
	l.loading[path] = true
	pkg, err := l.loadDir(path, dir)
	delete(l.loading, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir loads a standalone directory (a lint fixture) that is not
// part of the module; its imports must resolve via the loader as usual.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	return l.loadDir("fixture:"+filepath.Base(dir), dir)
}

func (l *Loader) loadDir(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// MatchFile applies //go:build constraints with the default
		// (empty) tag set: of the dpverify on/off hook pair exactly one
		// side loads, as in a plain `go build`.
		ok, err := build.Default.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", filepath.Join(dir, name), err)
		}
		if !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: %s: no buildable Go files in %s", path, dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, typeErr)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// Expand turns command-line patterns into module import paths. "..."
// wildcards walk the tree; testdata and hidden directories never match.
// Bare paths may be module-relative ("./internal/dp", "internal/dp") or
// full import paths ("roccc/internal/dp").
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." {
			pat = "./..."
		}
		if suf, ok := strings.CutSuffix(pat, "/..."); ok {
			base := strings.TrimPrefix(strings.TrimPrefix(suf, l.Module), "/")
			root := filepath.Join(l.Root, filepath.FromSlash(base))
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if !l.hasGoFiles(p) {
					return nil
				}
				rel, err := filepath.Rel(l.Root, p)
				if err != nil {
					return err
				}
				if rel == "." {
					add(l.Module)
				} else {
					add(l.Module + "/" + filepath.ToSlash(rel))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if pat == "" || pat == "." {
			add(l.Module)
			continue
		}
		if pat == l.Module || strings.HasPrefix(pat, l.Module+"/") {
			add(pat)
			continue
		}
		add(l.Module + "/" + filepath.ToSlash(pat))
	}
	sort.Strings(out)
	return out, nil
}

func (l *Loader) hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if n := e.Name(); !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}
