package vhdl

// verify.go is the VHDL slice of the static invariant verifier
// (internal/dpverify, cmd/rocccvet): structural checks over the emitted
// file set — entity/port correspondence with the data path, ROM
// component and init-file presence, feedback-latch registers, and the
// per-read-port buffer/generator/controller units of a full kernel
// emission. This is also the shared home for the pipeline valid-chain
// check: once the emitted data path carries an explicit valid chain
// (the ROADMAP's VHDL drain-semantics item), VerifyDatapathFiles
// requires its length to equal Datapath.Stages; until the signal
// appears in the output, the check stays dormant.

import (
	"fmt"
	"strings"

	"roccc/internal/dp"
	"roccc/internal/hir"
	"roccc/internal/vm"
)

// validChainSignal is the signal-name prefix the valid-chain check
// keys on. The emitter does not generate it yet; the check arms itself
// automatically when it does.
const validChainSignal = "valid_pipe"

// VerifyDatapathFiles structurally checks an EmitDatapath file set
// against the data path it was emitted from.
func VerifyDatapathFiles(d *dp.Datapath, files []File) []dp.Violation {
	var vs []dp.Violation
	add := func(inv, format string, args ...any) {
		vs = append(vs, dp.Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
	}
	byName := make(map[string]string, len(files))
	for _, f := range files {
		byName[f.Name] = f.Content
	}
	topName := d.Name + "_dp.vhd"
	top, ok := byName[topName]
	if !ok {
		add("vhdl/file-set", "file set has no data-path unit %s", topName)
		return vs
	}
	if !strings.Contains(top, "entity "+d.Name+"_dp is") {
		add("vhdl/entity", "%s does not declare entity %s_dp", topName, d.Name)
	}
	// Port correspondence: every data-path input and output port must
	// appear in the entity with its declared direction.
	for _, p := range d.Inputs {
		if !strings.Contains(top, sigName(p.Reg)+" : in ") {
			add("vhdl/entity", "input port %s (%s) missing from entity %s_dp", sigName(p.Reg), p.Var.Name, d.Name)
		}
	}
	for _, p := range d.Outputs {
		if !strings.Contains(top, sigName(p.Reg)+"_out : out ") {
			add("vhdl/entity", "output port %s_out (%s) missing from entity %s_dp", sigName(p.Reg), p.Var.Name, d.Name)
		}
	}
	// Feedback latches: each needs a declared fb_ signal, a reset
	// assignment and a clocked update in the pipeline process.
	for _, fb := range d.Feedbacks {
		sig := "fb_" + fb.State.Name
		if !strings.Contains(top, "signal "+sig+" :") {
			add("vhdl/feedback", "feedback latch signal %s not declared", sig)
			continue
		}
		if strings.Count(top, sig+" <= ") < 2 {
			add("vhdl/feedback", "feedback latch %s lacks reset or clocked update", sig)
		}
	}
	// ROM instantiations: every LUT op must instantiate its ROM, and the
	// ROM's component file must be in the set.
	romSeen := map[*hir.Rom]bool{}
	for _, op := range d.Ops {
		if op.Instr.Op != vm.LUT || romSeen[op.Instr.Rom] {
			continue
		}
		romSeen[op.Instr.Rom] = true
		name := op.Instr.Rom.Name
		if !strings.Contains(top, "entity work.rom_"+name) {
			add("vhdl/rom", "LUT op for ROM %s is never instantiated in %s", name, topName)
		}
		if _, ok := byName["rom_"+name+".vhd"]; !ok {
			add("vhdl/rom", "ROM component file rom_%s.vhd missing from file set", name)
		}
	}
	vs = append(vs, verifyValidChain(d, topName, top)...)
	return vs
}

// verifyValidChain checks the emitted pipeline valid chain, when
// present, against the data path's stage count: a drain-correct circuit
// needs exactly Stages valid registers between admission and exit.
// Dormant (no violations) while the emitter produces no valid chain.
func verifyValidChain(d *dp.Datapath, name, content string) []dp.Violation {
	if !strings.Contains(content, validChainSignal) {
		return nil
	}
	n := strings.Count(content, validChainSignal+"_q")
	if n == d.Stages {
		return nil
	}
	return []dp.Violation{{Invariant: "vhdl/valid-chain",
		Detail: fmt.Sprintf("%s carries %d valid-chain registers for %d pipeline stages", name, n, d.Stages)}}
}

// VerifyKernelFiles structurally checks a full EmitKernel file set for
// a streaming kernel: the data-path checks plus one smart buffer and
// address generator per read window, the controller FSM, and a
// plain-text init file per ROM.
func VerifyKernelFiles(k *hir.Kernel, d *dp.Datapath, files []File) []dp.Violation {
	vs := VerifyDatapathFiles(d, files)
	add := func(inv, format string, args ...any) {
		vs = append(vs, dp.Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
	}
	byName := make(map[string]bool, len(files))
	for _, f := range files {
		byName[f.Name] = true
	}
	for _, r := range k.Reads {
		if !byName[fmt.Sprintf("%s_smartbuf_%s.vhd", k.Name, r.Arr.Name)] {
			add("vhdl/file-set", "no smart-buffer unit for read window %s", r.Arr.Name)
		}
		if !byName[fmt.Sprintf("%s_addrgen_%s.vhd", k.Name, r.Arr.Name)] {
			add("vhdl/file-set", "no address generator for read window %s", r.Arr.Name)
		}
	}
	if len(k.Reads) > 0 && !byName[k.Name+"_ctrl.vhd"] {
		add("vhdl/file-set", "no controller FSM unit %s_ctrl.vhd", k.Name)
	}
	for _, r := range k.Roms {
		if !byName[r.Name+".init"] {
			add("vhdl/rom", "ROM %s has no plain-text init file", r.Name)
		}
	}
	return vs
}
