// Package vhdl implements §4.2.4 of the paper: RTL VHDL generation.
// "ROCCC generates one VHDL component for each CFG node that goes to
// hardware. In a node, every virtual register is single assigned and is
// converted into wires in hardware. All arithmetic opcodes in SUIFvm
// have corresponding functionality in IEEE 1076.3 VHDL with the
// exception of division. Arithmetic, logic and copying instructions
// become combinational or sequential VHDL statement according to whether
// the instruction needs latched or not. A LUT instruction invokes an
// instantiation of a lookup table component."
package vhdl

import (
	"fmt"
	"sort"
	"strings"

	"roccc/internal/dp"
	"roccc/internal/hir"
	"roccc/internal/vm"
)

// File is one generated VHDL design unit.
type File struct {
	Name    string // file name, e.g. "fir_dp.vhd"
	Content string
}

// EmitDatapath renders the complete data path: one component per
// hardware node plus a top-level entity that instantiates them, the
// pipeline registers and the feedback latches.
func EmitDatapath(d *dp.Datapath) []File {
	var files []File
	// ROM components first (instantiated by LUT ops).
	romSeen := map[*hir.Rom]bool{}
	for _, op := range d.Ops {
		if op.Instr.Op == vm.LUT && !romSeen[op.Instr.Rom] {
			romSeen[op.Instr.Rom] = true
			files = append(files, EmitRom(op.Instr.Rom))
		}
	}
	files = append(files, File{
		Name:    d.Name + "_dp.vhd",
		Content: emitTop(d),
	})
	return files
}

// sigName is the VHDL signal for a virtual register.
func sigName(r vm.Reg) string { return fmt.Sprintf("vr%d", int(r)) }

func slv(w int) string {
	return fmt.Sprintf("std_logic_vector(%d downto 0)", w-1)
}

// operand renders a vm operand as a numeric_std expression of width w.
func operand(d *dp.Datapath, o vm.Operand, signed bool, w int) string {
	if o.IsImm {
		if signed {
			return fmt.Sprintf("to_signed(%d, %d)", o.Imm, w)
		}
		if o.Imm < 0 {
			return fmt.Sprintf("unsigned(to_signed(%d, %d))", o.Imm, w)
		}
		return fmt.Sprintf("to_unsigned(%d, %d)", o.Imm, w)
	}
	def := d.DefOf[o.Reg]
	srcW := 32
	srcSigned := signed
	if def != nil {
		srcW = def.Width
		srcSigned = def.Signed
	}
	base := sigName(o.Reg)
	var typed string
	if srcSigned {
		typed = fmt.Sprintf("signed(%s)", base)
	} else {
		typed = fmt.Sprintf("unsigned(%s)", base)
	}
	if srcSigned != signed {
		// Re-interpret after resizing in the source domain.
		if signed {
			typed = fmt.Sprintf("signed(resize(%s, %d))", typed, w)
		} else {
			typed = fmt.Sprintf("unsigned(resize(%s, %d))", typed, w)
		}
		return typed
	}
	if srcW != w {
		return fmt.Sprintf("resize(%s, %d)", typed, w)
	}
	return typed
}

// opExpr renders the combinational expression computing op's value.
func opExpr(d *dp.Datapath, op *dp.Op) string {
	in := op.Instr
	w := op.Width
	s := op.Signed
	a := func() string { return operand(d, in.Srcs[0], s, w) }
	b := func() string { return operand(d, in.Srcs[1], s, w) }
	cast := "std_logic_vector"
	switch in.Op {
	case vm.MOV, vm.LDC, vm.CVT:
		return fmt.Sprintf("%s(%s)", cast, operand(d, in.Srcs[0], s, w))
	case vm.ADD:
		return fmt.Sprintf("%s(%s + %s)", cast, a(), b())
	case vm.SUB:
		return fmt.Sprintf("%s(%s - %s)", cast, a(), b())
	case vm.MUL:
		return fmt.Sprintf("%s(resize(%s * %s, %d))", cast, a(), b(), w)
	case vm.DIV:
		// "All arithmetic opcodes ... with the exception of division":
		// division instantiates a divider component; the inline form is
		// emitted for simulation-only builds.
		return fmt.Sprintf("%s(%s / %s) -- divider core instantiation", cast, a(), b())
	case vm.REM:
		return fmt.Sprintf("%s(%s rem %s)", cast, a(), b())
	case vm.AND:
		return fmt.Sprintf("%s(%s and %s)", cast, a(), b())
	case vm.IOR:
		return fmt.Sprintf("%s(%s or %s)", cast, a(), b())
	case vm.XOR:
		return fmt.Sprintf("%s(%s xor %s)", cast, a(), b())
	case vm.NOT:
		return fmt.Sprintf("%s(not %s)", cast, a())
	case vm.NEG:
		return fmt.Sprintf("%s(-%s)", cast, operand(d, in.Srcs[0], true, w))
	case vm.SHL:
		return fmt.Sprintf("%s(shift_left(%s, to_integer(%s)))", cast, a(),
			operand(d, in.Srcs[1], false, 6))
	case vm.SHR:
		return fmt.Sprintf("%s(shift_right(%s, to_integer(%s)))", cast, a(),
			operand(d, in.Srcs[1], false, 6))
	case vm.SEQ, vm.SNE, vm.SLT, vm.SLE:
		wCmp := cmpWidth(d, in)
		sCmp := cmpSigned(d, in)
		x := operand(d, in.Srcs[0], sCmp, wCmp)
		y := operand(d, in.Srcs[1], sCmp, wCmp)
		rel := map[vm.Opcode]string{vm.SEQ: "=", vm.SNE: "/=", vm.SLT: "<", vm.SLE: "<="}[in.Op]
		return fmt.Sprintf("\"1\" when %s %s %s else \"0\"", x, rel, y)
	case vm.MUX:
		sel := sigName(in.Srcs[0].Reg)
		if in.Srcs[0].IsImm {
			sel = fmt.Sprintf("\"%d\"", in.Srcs[0].Imm&1)
		}
		t := fmt.Sprintf("std_logic_vector(%s)", operand(d, in.Srcs[1], s, w))
		f := fmt.Sprintf("std_logic_vector(%s)", operand(d, in.Srcs[2], s, w))
		return fmt.Sprintf("%s when %s = \"1\" else %s", t, sel, f)
	default:
		return "(others => '0')"
	}
}

// cmpWidth picks a comparison width covering both operands plus a sign
// bit when mixing domains.
func cmpWidth(d *dp.Datapath, in *vm.Instr) int {
	w := 2
	for _, o := range in.Srcs {
		if o.IsImm {
			continue
		}
		if def := d.DefOf[o.Reg]; def != nil && def.Width+1 > w {
			w = def.Width + 1
		}
	}
	return w
}

func cmpSigned(d *dp.Datapath, in *vm.Instr) bool {
	for _, o := range in.Srcs {
		if o.IsImm {
			if o.Imm < 0 {
				return true
			}
			continue
		}
		if def := d.DefOf[o.Reg]; def != nil && def.Signed {
			return true
		}
	}
	return false
}

// emitTop renders the single-entity data path: wires for every virtual
// register, concurrent statements for combinational ops, one clocked
// process holding the pipeline registers and feedback latches, and ROM
// instantiations for LUT ops.
func emitTop(d *dp.Datapath) string {
	var b strings.Builder
	name := d.Name + "_dp"
	b.WriteString("library IEEE;\nuse IEEE.std_logic_1164.all;\nuse IEEE.numeric_std.all;\n\n")
	fmt.Fprintf(&b, "-- Generated by the ROCCC reproduction: pipelined data path %q\n", d.Name)
	fmt.Fprintf(&b, "-- %d ops, %d pipeline stages, target period %.2f ns\n\n", d.NumOps(), d.Stages, d.Period)
	fmt.Fprintf(&b, "entity %s is\n  port (\n    clk : in std_logic;\n    rst : in std_logic;\n", name)
	for _, p := range d.Inputs {
		fmt.Fprintf(&b, "    %s : in %s;  -- %s\n", sigName(p.Reg), slv(p.Width), p.Var.Name)
	}
	for i, p := range d.Outputs {
		sep := ";"
		if i == len(d.Outputs)-1 {
			sep = ""
		}
		fmt.Fprintf(&b, "    %s_out : out %s%s  -- %s\n", sigName(p.Reg), slv(p.Width), sep, p.Var.Name)
	}
	b.WriteString("  );\nend entity;\n\n")
	fmt.Fprintf(&b, "architecture rtl of %s is\n", name)

	// Wire declarations: every op's result ("every virtual register ...
	// converted into wires"). Latched ops also get a registered copy.
	for _, op := range d.Ops {
		if op.Node.Kind == dp.InputNode || !op.Instr.Op.HasDst() {
			continue
		}
		fmt.Fprintf(&b, "  signal %s : %s;\n", sigName(op.Instr.Dst), slv(op.Width))
		if op.Latched {
			fmt.Fprintf(&b, "  signal %s_q : %s;\n", sigName(op.Instr.Dst), slv(op.Width))
		}
	}
	for _, fb := range d.Feedbacks {
		fmt.Fprintf(&b, "  signal fb_%s : %s; -- feedback latch (LPR/SNX)\n",
			fb.State.Name, slv(fb.State.Type.Bits))
	}
	b.WriteString("begin\n")

	// Node-by-node concurrent statements, grouped with comments that
	// preserve the soft/mux/pipe structure of §4.2.2.
	nodes := append([]*dp.Node{}, d.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		if n.Kind == dp.InputNode {
			continue
		}
		fmt.Fprintf(&b, "\n  -- node %d (%s, level %d)\n", n.ID, n.Kind, n.Level)
		for _, op := range n.Ops {
			in := op.Instr
			switch in.Op {
			case vm.SNX:
				fmt.Fprintf(&b, "  -- snx %s feeds the feedback latch in the clocked process\n", in.State.Name)
			case vm.LPR:
				fmt.Fprintf(&b, "  %s <= fb_%s;\n", sigName(in.Dst), in.State.Name)
			case vm.LUT:
				fmt.Fprintf(&b, "  u_%s_%d: entity work.rom_%s port map (addr => %s, data => %s);\n",
					in.Rom.Name, op.ID, in.Rom.Name, sigName(in.Srcs[0].Reg), sigName(in.Dst))
			default:
				fmt.Fprintf(&b, "  %s <= %s;\n", sigName(in.Dst), opExpr(d, op))
			}
		}
	}

	// Clocked process: pipeline registers and feedback latches (§4.2.3).
	b.WriteString("\n  pipeline: process(clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n")
	for _, fb := range d.Feedbacks {
		fmt.Fprintf(&b, "        fb_%s <= std_logic_vector(to_signed(%d, %d));\n",
			fb.State.Name, fb.Init, fb.State.Type.Bits)
	}
	b.WriteString("      else\n")
	for _, op := range d.Ops {
		if op.Latched && op.Instr.Op.HasDst() {
			fmt.Fprintf(&b, "        %s_q <= %s;\n", sigName(op.Instr.Dst), sigName(op.Instr.Dst))
		}
	}
	for _, fb := range d.Feedbacks {
		src := fb.SNX.Instr.Srcs[0]
		fmt.Fprintf(&b, "        fb_%s <= %s;\n", fb.State.Name, sigName(src.Reg))
	}
	b.WriteString("      end if;\n    end if;\n  end process;\n\n")

	for _, p := range d.Outputs {
		fmt.Fprintf(&b, "  %s_out <= %s;\n", sigName(p.Reg), sigName(p.Reg))
	}
	b.WriteString("end architecture;\n")
	return b.String()
}

// EmitRom renders a ROM component plus its plain-text init file contents
// (the paper: "the compiler instantiates the lookup table as a regular
// ROM IP core unit in the VHDL code. The only thing the user needs to do
// is to edit a pure text initialization file").
func EmitRom(r *hir.Rom) File {
	var b strings.Builder
	b.WriteString("library IEEE;\nuse IEEE.std_logic_1164.all;\nuse IEEE.numeric_std.all;\n\n")
	addrW := 1
	for 1<<uint(addrW) < r.Size {
		addrW++
	}
	fmt.Fprintf(&b, "entity rom_%s is\n  port (\n    addr : in std_logic_vector(%d downto 0);\n    data : out std_logic_vector(%d downto 0)\n  );\nend entity;\n\n",
		r.Name, addrW-1, r.Elem.Bits-1)
	fmt.Fprintf(&b, "architecture rtl of rom_%s is\n", r.Name)
	fmt.Fprintf(&b, "  type rom_t is array (0 to %d) of std_logic_vector(%d downto 0);\n", r.Size-1, r.Elem.Bits-1)
	b.WriteString("  constant CONTENT : rom_t := (\n")
	for i, v := range r.Content {
		sep := ","
		if i == len(r.Content)-1 {
			sep = ""
		}
		fmt.Fprintf(&b, "    %d => std_logic_vector(to_signed(%d, %d))%s\n", i, v, r.Elem.Bits, sep)
	}
	b.WriteString("  );\nbegin\n  data <= CONTENT(to_integer(unsigned(addr)));\nend architecture;\n")
	return File{Name: "rom_" + r.Name + ".vhd", Content: b.String()}
}

// RomInitFile renders the plain-text initialization file for a ROM.
func RomInitFile(r *hir.Rom) File {
	var b strings.Builder
	fmt.Fprintf(&b, "-- init file for lookup table %s: %d x %d bits\n", r.Name, r.Size, r.Elem.Bits)
	for _, v := range r.Content {
		fmt.Fprintf(&b, "%d\n", v)
	}
	return File{Name: r.Name + ".init", Content: b.String()}
}
