package vhdl

import (
	"strings"
	"testing"

	"roccc/internal/core"
	"roccc/internal/smartbuf"
)

const firSource = `
int A[21];
int C[17];
void fir() {
	int i;
	for (i = 0; i < 17; i = i + 1) {
		C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
	}
}
`

func TestEmitDatapathFIR(t *testing.T) {
	res, err := core.CompileSource(firSource, "fir", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	files := EmitDatapath(res.Datapath)
	if len(files) != 1 {
		t.Fatalf("files = %d, want 1", len(files))
	}
	v := files[0].Content
	for _, want := range []string{
		"entity fir_dp is",
		"library IEEE",
		"use IEEE.numeric_std.all",
		"architecture rtl of fir_dp",
		"pipeline: process(clk)",
		"rising_edge(clk)",
		"end architecture;",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q in generated VHDL", want)
		}
	}
	// 5 inputs, 1 output port.
	if n := strings.Count(v, ": in std_logic_vector"); n != 5 {
		t.Errorf("input ports = %d, want 5", n)
	}
	if n := strings.Count(v, ": out std_logic_vector"); n != 1 {
		t.Errorf("output ports = %d, want 1", n)
	}
	// Multiplications present.
	if !strings.Contains(v, "*") {
		t.Error("no multiplier in FIR data path")
	}
}

func TestEmitAccumulatorFeedback(t *testing.T) {
	src := `
int A[32];
int sum;
void accum() {
	int i;
	sum = 0;
	for (i = 0; i < 32; i++) { sum = sum + A[i]; }
}
`
	res, err := core.CompileSource(src, "accum", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v := EmitDatapath(res.Datapath)[0].Content
	if !strings.Contains(v, "fb_sum") {
		t.Error("missing feedback latch signal fb_sum")
	}
	if !strings.Contains(v, "rst = '1'") {
		t.Error("missing latch reset")
	}
}

func TestEmitRomComponent(t *testing.T) {
	src := `
const int16 tab[8] = {1, -2, 3, -4, 5, -6, 7, -8};
void f(uint3 i, int16* o) { *o = tab[i]; }
`
	res, err := core.CompileSource(src, "f", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	files := EmitDatapath(res.Datapath)
	if len(files) != 2 {
		t.Fatalf("files = %d, want 2 (rom + dp)", len(files))
	}
	rom := files[0].Content
	for _, want := range []string{"entity rom_tab", "constant CONTENT", "to_signed(-8, 16)"} {
		if !strings.Contains(rom, want) {
			t.Errorf("rom missing %q", want)
		}
	}
	top := files[1].Content
	if !strings.Contains(top, "entity work.rom_tab") {
		t.Error("data path does not instantiate the ROM component")
	}
	// Init file.
	init := RomInitFile(res.Kernel.Roms[0])
	if !strings.Contains(init.Content, "-8") {
		t.Errorf("init file content:\n%s", init.Content)
	}
}

func TestEmitMuxBranch(t *testing.T) {
	src := `
void f(int a, int b, int* o) {
	int r;
	if (a < b) { r = a; } else { r = b; }
	*o = r;
}
`
	res, err := core.CompileSource(src, "f", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v := EmitDatapath(res.Datapath)[0].Content
	if !strings.Contains(v, "when") || !strings.Contains(v, "else") {
		t.Error("missing mux select statement")
	}
	if !strings.Contains(v, "(mux, level") {
		t.Error("missing mux node comment")
	}
}

func TestEmitSmartBufferLibrary(t *testing.T) {
	res, err := core.CompileSource(firSource, "fir", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := smartbuf.ConfigFor(res.Kernel.Reads[0], &res.Kernel.Nest, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := EmitSmartBuffer("fir_smartbuf_A", cfg)
	for _, want := range []string{"entity fir_smartbuf_A", "window_ready", "tap4", "ring"} {
		if !strings.Contains(f.Content, want) {
			t.Errorf("smart buffer missing %q", want)
		}
	}
}

func TestEmitControllerAndAddrGen(t *testing.T) {
	c := EmitController("fir_ctrl", 17, 3)
	for _, want := range []string{"S_IDLE", "S_FILL", "S_STREAM", "S_DRAIN", "S_DONE", "feed"} {
		if !strings.Contains(c.Content, want) {
			t.Errorf("controller missing %q", want)
		}
	}
	a := EmitAddressGenerator("fir_addrgen_A", 21, 1, 5)
	for _, want := range []string{"entity fir_addrgen_A", "pos + 1", "done"} {
		if !strings.Contains(a.Content, want) {
			t.Errorf("addrgen missing %q", want)
		}
	}
}

func TestEmitKernelFileSet(t *testing.T) {
	res, err := core.CompileSource(firSource, "fir", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	files := EmitDatapath(res.Datapath)
	cfg, err := smartbuf.ConfigFor(res.Kernel.Reads[0], &res.Kernel.Nest, 1)
	if err != nil {
		t.Fatal(err)
	}
	files = EmitKernel(res.Kernel, files, []smartbuf.Config{cfg}, res.Datapath.Latency())
	names := map[string]bool{}
	for _, f := range files {
		names[f.Name] = true
	}
	for _, want := range []string{"fir_dp.vhd", "fir_smartbuf_A.vhd", "fir_addrgen_A.vhd", "fir_ctrl.vhd"} {
		if !names[want] {
			t.Errorf("missing generated file %s (have %v)", want, names)
		}
	}
}

func TestBalancedParens(t *testing.T) {
	// Structural sanity on every emitted expression: parentheses and
	// if/end if balance.
	res, err := core.CompileSource(firSource, "fir", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v := EmitDatapath(res.Datapath)[0].Content
	if strings.Count(v, "(") != strings.Count(v, ")") {
		t.Error("unbalanced parentheses")
	}
	if strings.Count(v, "process") != 2 { // declaration + end process
		t.Errorf("process count = %d", strings.Count(v, "process"))
	}
}
