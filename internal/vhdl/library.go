package vhdl

import (
	"fmt"
	"strings"

	"roccc/internal/hir"
	"roccc/internal/smartbuf"
)

// library.go renders the "pre-existing parameterized FSMs in a VHDL
// library" of §4.1: smart buffers, address generators and the top-level
// controller, plus the system wrapper that wires them to the data path
// (the execution model of Fig. 2).

// EmitSmartBuffer renders a smart buffer: a shift-register (1-D) or
// line-buffer (2-D) structure with window-export logic.
func EmitSmartBuffer(name string, cfg smartbuf.Config) File {
	var b strings.Builder
	b.WriteString("library IEEE;\nuse IEEE.std_logic_1164.all;\nuse IEEE.numeric_std.all;\n\n")
	depth := cfg.StorageBits() / cfg.ElemBits
	fmt.Fprintf(&b, "-- smart buffer: window %v, stride %v, %d taps, %d elements retained\n",
		cfg.Extent, cfg.Stride, len(cfg.Taps), depth)
	fmt.Fprintf(&b, "entity %s is\n  port (\n    clk : in std_logic;\n    rst : in std_logic;\n", name)
	fmt.Fprintf(&b, "    din : in std_logic_vector(%d downto 0);\n", cfg.ElemBits*cfg.BusElems-1)
	b.WriteString("    din_valid : in std_logic;\n    window_ready : out std_logic;\n")
	for i := range cfg.Taps {
		sep := ";"
		if i == len(cfg.Taps)-1 {
			sep = ""
		}
		fmt.Fprintf(&b, "    tap%d : out std_logic_vector(%d downto 0)%s\n", i, cfg.ElemBits-1, sep)
	}
	b.WriteString("  );\nend entity;\n\n")
	fmt.Fprintf(&b, "architecture rtl of %s is\n", name)
	fmt.Fprintf(&b, "  type line_t is array (0 to %d) of std_logic_vector(%d downto 0);\n", depth-1, cfg.ElemBits-1)
	b.WriteString("  signal ring : line_t;\n  signal fill : integer range 0 to 65535;\nbegin\n")
	b.WriteString("  shift: process(clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        fill <= 0;\n      elsif din_valid = '1' then\n")
	if depth > cfg.BusElems {
		fmt.Fprintf(&b, "        ring(%d to %d) <= ring(%d to %d);\n", cfg.BusElems, depth-1, 0, depth-1-cfg.BusElems)
	}
	for i := 0; i < cfg.BusElems; i++ {
		fmt.Fprintf(&b, "        ring(%d) <= din(%d downto %d);\n",
			i, (i+1)*cfg.ElemBits-1, i*cfg.ElemBits)
	}
	fmt.Fprintf(&b, "        fill <= fill + %d;\n", cfg.BusElems)
	b.WriteString("      end if;\n    end if;\n  end process;\n\n")
	fmt.Fprintf(&b, "  window_ready <= '1' when fill >= %d else '0';\n", depth)
	// Tap wiring: relative positions inside the retained region.
	for i, tap := range cfg.Taps {
		var idx int
		if len(cfg.Extent) == 1 {
			idx = int(tap[0]) - cfg.MinOff[0]
		} else {
			idx = (int(tap[0])-cfg.MinOff[0])*cfg.ArrayDims[1] + int(tap[1]) - cfg.MinOff[1]
		}
		// Newest element is ring(0); taps count back from the window end.
		pos := depth - 1 - idx
		if pos < 0 {
			pos = 0
		}
		fmt.Fprintf(&b, "  tap%d <= ring(%d);\n", i, pos)
	}
	b.WriteString("end architecture;\n")
	return File{Name: name + ".vhd", Content: b.String()}
}

// EmitAddressGenerator renders a sequential read address generator FSM.
func EmitAddressGenerator(name string, total, busElems, addrBits int) File {
	var b strings.Builder
	b.WriteString("library IEEE;\nuse IEEE.std_logic_1164.all;\nuse IEEE.numeric_std.all;\n\n")
	fmt.Fprintf(&b, "-- read address generator: %d elements, %d per cycle\n", total, busElems)
	fmt.Fprintf(&b, "entity %s is\n  port (\n    clk : in std_logic;\n    rst : in std_logic;\n    enable : in std_logic;\n    addr : out std_logic_vector(%d downto 0);\n    valid : out std_logic;\n    done : out std_logic\n  );\nend entity;\n\n", name, addrBits-1)
	fmt.Fprintf(&b, "architecture fsm of %s is\n", name)
	fmt.Fprintf(&b, "  signal pos : unsigned(%d downto 0);\nbegin\n", addrBits-1)
	b.WriteString("  step: process(clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        pos <= (others => '0');\n")
	fmt.Fprintf(&b, "      elsif enable = '1' and pos < %d then\n        pos <= pos + %d;\n", total, busElems)
	b.WriteString("      end if;\n    end if;\n  end process;\n")
	b.WriteString("  addr <= std_logic_vector(pos);\n")
	fmt.Fprintf(&b, "  valid <= '1' when pos < %d else '0';\n", total)
	fmt.Fprintf(&b, "  done <= '1' when pos >= %d else '0';\n", total)
	b.WriteString("end architecture;\n")
	return File{Name: name + ".vhd", Content: b.String()}
}

// EmitController renders the higher-level controller FSM (idle / fill /
// stream / drain / done) that sequences the address generators and the
// data path.
func EmitController(name string, totalIters, latency int) File {
	var b strings.Builder
	b.WriteString("library IEEE;\nuse IEEE.std_logic_1164.all;\nuse IEEE.numeric_std.all;\n\n")
	fmt.Fprintf(&b, "-- higher-level controller: %d iterations, data-path latency %d\n", totalIters, latency)
	fmt.Fprintf(&b, "entity %s is\n  port (\n    clk : in std_logic;\n    rst : in std_logic;\n    window_ready : in std_logic;\n    feed : out std_logic;\n    done : out std_logic\n  );\nend entity;\n\n", name)
	fmt.Fprintf(&b, "architecture fsm of %s is\n", name)
	b.WriteString("  type state_t is (S_IDLE, S_FILL, S_STREAM, S_DRAIN, S_DONE);\n  signal state : state_t;\n  signal fed, collected : integer range 0 to 1048575;\nbegin\n")
	b.WriteString(`  fsm: process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        state <= S_IDLE;
        fed <= 0;
        collected <= 0;
      else
        case state is
          when S_IDLE => state <= S_FILL;
          when S_FILL | S_STREAM =>
            if window_ready = '1' then
              fed <= fed + 1;
              state <= S_STREAM;
            end if;
`)
	fmt.Fprintf(&b, "            if fed >= %d then state <= S_DRAIN; end if;\n", totalIters)
	fmt.Fprintf(&b, "          when S_DRAIN =>\n            if collected >= %d then state <= S_DONE; end if;\n", totalIters)
	b.WriteString("          when S_DONE => null;\n        end case;\n      end if;\n    end if;\n  end process;\n")
	fmt.Fprintf(&b, "  feed <= '1' when (state = S_FILL or state = S_STREAM) and window_ready = '1' and fed < %d else '0';\n", totalIters)
	b.WriteString("  done <= '1' when state = S_DONE else '0';\nend architecture;\n")
	return File{Name: name + ".vhd", Content: b.String()}
}

// EmitKernel renders the full file set for a compiled kernel: data path,
// ROM cores + init files, one smart buffer per read window, address
// generators and the controller.
func EmitKernel(k *hir.Kernel, files []File, cfgs []smartbuf.Config, latency int) []File {
	for i, cfg := range cfgs {
		name := fmt.Sprintf("%s_smartbuf_%s", k.Name, k.Reads[i].Arr.Name)
		files = append(files, EmitSmartBuffer(name, cfg))
		addrBits := 1
		for 1<<uint(addrBits) < k.Reads[i].Arr.Len() {
			addrBits++
		}
		files = append(files, EmitAddressGenerator(
			fmt.Sprintf("%s_addrgen_%s", k.Name, k.Reads[i].Arr.Name),
			k.Reads[i].Arr.Len(), cfg.BusElems, addrBits))
	}
	total := int(k.Nest.TotalIterations())
	if total == 0 {
		total = 1
	}
	files = append(files, EmitController(k.Name+"_ctrl", total, latency))
	for _, r := range k.Roms {
		files = append(files, RomInitFile(r))
	}
	return files
}
