package ssa

import (
	"math/rand"
	"testing"

	"roccc/internal/cfg"
	"roccc/internal/dfa"
	"roccc/internal/hir"
	"roccc/internal/vm"
)

const ifElseSource = `
void if_else(int x1, int x2, int* x3, int* x4) {
	int a, c;
	c = x1 - x2;
	if (c < x2)
		a = x1*x1;
	else
		a = x1 * x2 + 3;
	c = c - a;
	*x3 = c;
	*x4 = a;
	return;
}
`

func buildGraph(t *testing.T, src, name string) (*hir.Kernel, *cfg.Graph) {
	t.Helper()
	p, f, err := hir.BuildFunc(src, name)
	if err != nil {
		t.Fatal(err)
	}
	k, err := hir.ExtractKernel(p, f)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := vm.Lower(k.DP)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(rt)
	if err != nil {
		t.Fatal(err)
	}
	return k, g
}

func TestCFGDiamond(t *testing.T) {
	_, g := buildGraph(t, ifElseSource, "if_else")
	// if/else produces a diamond: entry, then, else, join (some possibly
	// merged/empty). The entry must end in a conditional branch.
	if g.Entry().BranchCond == nil {
		t.Fatal("entry has no conditional branch")
	}
	if len(g.Entry().Succs) != 2 {
		t.Fatalf("entry succs = %d", len(g.Entry().Succs))
	}
	// Exactly one block with 2 predecessors (the join).
	joins := 0
	for _, b := range g.Blocks {
		if len(b.Preds) == 2 {
			joins++
		}
	}
	if joins != 1 {
		t.Errorf("joins = %d, want 1", joins)
	}
}

func TestDominators(t *testing.T) {
	_, g := buildGraph(t, ifElseSource, "if_else")
	idom := g.Dominators()
	entry := g.Entry()
	for _, b := range g.ReversePostOrder() {
		if b == entry {
			continue
		}
		// All blocks in a diamond are dominated (transitively) by entry.
		d := b
		for i := 0; i < 10 && d != entry; i++ {
			d = idom[d]
		}
		if d != entry {
			t.Errorf("block %d not dominated by entry", b.ID)
		}
	}
}

func TestDominanceFrontierJoin(t *testing.T) {
	_, g := buildGraph(t, ifElseSource, "if_else")
	df := g.DominanceFrontier()
	// The two branch blocks must have the join in their frontier.
	var join *cfg.Block
	for _, b := range g.Blocks {
		if len(b.Preds) == 2 {
			join = b
		}
	}
	if join == nil {
		t.Fatal("no join block")
	}
	count := 0
	for _, frontier := range df {
		for _, fb := range frontier {
			if fb == join {
				count++
			}
		}
	}
	if count < 2 {
		t.Errorf("join appears in %d frontiers, want >= 2", count)
	}
}

func TestLiveness(t *testing.T) {
	_, g := buildGraph(t, ifElseSource, "if_else")
	liveIn, liveOut := dfa.Liveness(g)
	// Inputs must be live-in at the entry (used in branches).
	for _, p := range g.Routine.Inputs {
		if !liveIn[g.Entry()][p.Reg] {
			t.Errorf("input %s not live-in at entry", p.Reg)
		}
	}
	// Output registers are live-out of their defining block.
	for _, p := range g.Routine.Outputs {
		found := false
		for _, b := range g.Blocks {
			if liveOut[b][p.Reg] {
				found = true
			}
		}
		if !found {
			t.Errorf("output %s never live-out", p.Reg)
		}
	}
}

func TestConvertInsertsPhis(t *testing.T) {
	_, g := buildGraph(t, ifElseSource, "if_else")
	if err := Convert(g); err != nil {
		t.Fatal(err)
	}
	phis := 0
	for _, b := range g.Blocks {
		phis += len(b.Phis)
	}
	// Variable a is assigned in both branches: at least one phi.
	if phis < 1 {
		t.Errorf("phis = %d, want >= 1", phis)
	}
}

func TestConvertSSASingleAssignment(t *testing.T) {
	_, g := buildGraph(t, ifElseSource, "if_else")
	if err := Convert(g); err != nil {
		t.Fatal(err)
	}
	if err := Check(g); err != nil {
		t.Error(err)
	}
}

func TestSSAExecMatchesHIR(t *testing.T) {
	k, g := buildGraph(t, ifElseSource, "if_else")
	if err := Convert(g); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		x1 := rng.Int63n(1<<16) - 1<<15
		x2 := rng.Int63n(1<<16) - 1<<15
		env := hir.NewEnv()
		env.Vars[k.DP.Params[0]] = x1
		env.Vars[k.DP.Params[1]] = x2
		if err := hir.RunFunc(k.DP, env); err != nil {
			t.Fatal(err)
		}
		outs, err := Exec(g, []int64{x1, x2}, map[*hir.Var]int64{})
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range k.DP.Outs {
			if outs[i] != env.Vars[o] {
				t.Fatalf("trial %d: out[%d] = %d, want %d", trial, i, outs[i], env.Vars[o])
			}
		}
	}
}

func TestSSAFeedbackKernel(t *testing.T) {
	src := `
int acc;
void macc(int12 a, int12 b, uint1 nd) {
	int i;
	acc = 0;
	for (i = 0; i < 4; i++) {
		if (nd) { acc = acc + a * b; }
	}
}
`
	k, g := buildGraph(t, src, "macc")
	if err := Convert(g); err != nil {
		t.Fatal(err)
	}
	fb := k.Feedback[0]
	state := map[*hir.Var]int64{fb.Var: fb.Init}
	// nd=1 accumulates, nd=0 holds.
	if _, err := Exec(g, []int64{3, 5, 1}, state); err != nil {
		t.Fatal(err)
	}
	if state[fb.Var] != 15 {
		t.Errorf("state after nd=1: %d, want 15", state[fb.Var])
	}
	if _, err := Exec(g, []int64{7, 7, 0}, state); err != nil {
		t.Fatal(err)
	}
	if state[fb.Var] != 15 {
		t.Errorf("state after nd=0: %d, want 15 (hold)", state[fb.Var])
	}
	if _, err := Exec(g, []int64{2, 2, 1}, state); err != nil {
		t.Fatal(err)
	}
	if state[fb.Var] != 19 {
		t.Errorf("state = %d, want 19", state[fb.Var])
	}
}

func TestSSANestedIf(t *testing.T) {
	src := `
void f(int a, int b, int* o) {
	int r;
	if (a > 0) {
		if (b > 0) { r = a + b; } else { r = a - b; }
	} else {
		r = -a;
	}
	*o = r;
}
`
	k, g := buildGraph(t, src, "f")
	if err := Convert(g); err != nil {
		t.Fatal(err)
	}
	ref := func(a, b int64) int64 {
		if a > 0 {
			if b > 0 {
				return a + b
			}
			return a - b
		}
		return -a
	}
	_ = k
	for a := int64(-3); a <= 3; a++ {
		for b := int64(-3); b <= 3; b++ {
			outs, err := Exec(g, []int64{a, b}, map[*hir.Var]int64{})
			if err != nil {
				t.Fatal(err)
			}
			if outs[0] != ref(a, b) {
				t.Errorf("f(%d,%d) = %d, want %d", a, b, outs[0], ref(a, b))
			}
		}
	}
}
