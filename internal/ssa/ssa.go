// Package ssa is the reproduction's Machine-SUIF Static Single
// Assignment library analogue [16]. After Convert runs, "control flow
// graph information is visible and every virtual register is assigned
// only once" (§4.2.1) — the precondition for data-path building, where
// phis become the mux nodes of §4.2.2.
package ssa

import (
	"fmt"

	"roccc/internal/cfg"
	"roccc/internal/dfa"
	"roccc/internal/hir"
	"roccc/internal/vm"
)

// Convert rewrites the graph into pruned SSA form: phi instructions are
// inserted at dominance frontiers for registers live at the join, and
// all registers are renamed so each has exactly one definition. Routine
// output ports are updated to the renamed registers.
func Convert(g *cfg.Graph) error {
	rt := g.Routine
	liveIn, _ := dfa.Liveness(g)
	defSites := dfa.DefSites(g)
	df := g.DominanceFrontier()
	idom := g.Dominators()

	// Phase 1: phi placement (pruned SSA).
	phiOrig := map[*vm.Instr]vm.Reg{} // phi -> original register
	hasPhiFor := map[*cfg.Block]map[vm.Reg]bool{}
	for reg, sites := range defSites {
		if len(sites) < 2 {
			continue
		}
		work := append([]dfa.Def{}, sites...)
		seen := map[*cfg.Block]bool{}
		for len(work) > 0 {
			d := work[len(work)-1]
			work = work[:len(work)-1]
			for _, y := range df[d.Block] {
				if seen[y] || !liveIn[y][reg] {
					continue
				}
				seen[y] = true
				phi := &vm.Instr{
					Op:   vm.PHI,
					Dst:  reg,
					Srcs: make([]vm.Operand, len(y.Preds)),
					Typ:  rt.RegType[reg],
				}
				for i := range phi.Srcs {
					phi.Srcs[i] = vm.R(reg)
				}
				y.Phis = append(y.Phis, phi)
				phiOrig[phi] = reg
				if hasPhiFor[y] == nil {
					hasPhiFor[y] = map[vm.Reg]bool{}
				}
				hasPhiFor[y][reg] = true
				work = append(work, dfa.Def{Block: y, Index: -1})
			}
		}
	}

	// Phase 2: renaming along the dominator tree.
	domChildren := map[*cfg.Block][]*cfg.Block{}
	for _, b := range g.ReversePostOrder() {
		if b == g.Entry() {
			continue
		}
		if p, ok := idom[b]; ok && p != b {
			domChildren[p] = append(domChildren[p], b)
		}
	}

	stacks := map[vm.Reg][]vm.Reg{}
	newName := func(orig vm.Reg) vm.Reg {
		rt.NumRegs++
		nr := vm.Reg(rt.NumRegs)
		rt.RegType[nr] = rt.RegType[orig]
		stacks[orig] = append(stacks[orig], nr)
		return nr
	}
	top := func(orig vm.Reg) vm.Reg {
		st := stacks[orig]
		if len(st) == 0 {
			// Never-defined register (read of an undefined value):
			// keep the original name.
			return orig
		}
		return st[len(st)-1]
	}
	// Inputs are defined at the entry: seed their stacks with
	// themselves so uses keep the port register.
	for _, p := range rt.Inputs {
		stacks[p.Reg] = append(stacks[p.Reg], p.Reg)
	}

	renameOperand := func(o *vm.Operand) {
		if !o.IsImm && o.Reg != 0 {
			o.Reg = top(o.Reg)
		}
	}
	outputRenamed := map[vm.Reg]vm.Reg{}

	var rename func(b *cfg.Block)
	rename = func(b *cfg.Block) {
		var pushed []vm.Reg
		for _, phi := range b.Phis {
			orig := phiOrig[phi]
			phi.Dst = newName(orig)
			pushed = append(pushed, orig)
		}
		for _, in := range b.Instrs {
			for i := range in.Srcs {
				renameOperand(&in.Srcs[i])
			}
			if in.Op.HasDst() {
				orig := in.Dst
				in.Dst = newName(orig)
				pushed = append(pushed, orig)
				if isOutputReg(rt, orig) {
					outputRenamed[orig] = in.Dst
				}
			}
		}
		if b.BranchCond != nil {
			for i := range b.BranchCond.Srcs {
				renameOperand(&b.BranchCond.Srcs[i])
			}
		}
		for _, s := range b.Succs {
			pi := s.PredIndex(b)
			for _, phi := range s.Phis {
				orig := phiOrig[phi]
				phi.Srcs[pi] = vm.R(top(orig))
			}
		}
		for _, c := range domChildren[b] {
			rename(c)
		}
		for _, orig := range pushed {
			stacks[orig] = stacks[orig][:len(stacks[orig])-1]
		}
	}
	rename(g.Entry())

	// Update output ports to the renamed definitions.
	for i := range rt.Outputs {
		if nr, ok := outputRenamed[rt.Outputs[i].Reg]; ok {
			rt.Outputs[i].Reg = nr
		}
	}
	return Check(g)
}

func isOutputReg(rt *vm.Routine, r vm.Reg) bool {
	for _, p := range rt.Outputs {
		if p.Reg == r {
			return true
		}
	}
	return false
}

// Check verifies the single-assignment invariant: every register is
// defined at most once across the graph (inputs count as definitions).
func Check(g *cfg.Graph) error {
	defs := map[vm.Reg]int{}
	for _, p := range g.Routine.Inputs {
		defs[p.Reg]++
	}
	for _, b := range g.Blocks {
		for _, phi := range b.Phis {
			defs[phi.Dst]++
		}
		for _, in := range b.Instrs {
			if in.Op.HasDst() {
				defs[in.Dst]++
			}
		}
	}
	for r, n := range defs {
		if n > 1 {
			return fmt.Errorf("ssa: register %s has %d definitions", r, n)
		}
	}
	return nil
}

// Exec interprets an SSA-form graph: one call is one kernel iteration.
// state carries the feedback latches (LPR reads, SNX stages; staged
// values commit on return). It is used to validate SSA conversion and
// as a reference for the data-path generator.
func Exec(g *cfg.Graph, inputs []int64, state map[*hir.Var]int64) ([]int64, error) {
	rt := g.Routine
	if len(inputs) != len(rt.Inputs) {
		return nil, fmt.Errorf("ssa: exec: %d inputs, routine has %d", len(inputs), len(rt.Inputs))
	}
	regs := map[vm.Reg]int64{}
	for i, p := range rt.Inputs {
		regs[p.Reg] = p.Var.Type.Wrap(inputs[i])
	}
	next := map[*hir.Var]int64{}
	val := func(o vm.Operand) int64 {
		if o.IsImm {
			return o.Imm
		}
		return regs[o.Reg]
	}
	var prev *cfg.Block
	blk := g.Entry()
	steps := 0
	for blk != g.Exit {
		steps++
		if steps > 10000 {
			return nil, fmt.Errorf("ssa: exec: runaway control flow")
		}
		// Phis read values along the incoming edge, all in parallel.
		if len(blk.Phis) > 0 {
			pi := blk.PredIndex(prev)
			if pi < 0 {
				return nil, fmt.Errorf("ssa: exec: block %d entered from non-predecessor", blk.ID)
			}
			vals := make([]int64, len(blk.Phis))
			for i, phi := range blk.Phis {
				vals[i] = phi.Typ.Wrap(val(phi.Srcs[pi]))
			}
			for i, phi := range blk.Phis {
				regs[phi.Dst] = vals[i]
			}
		}
		for _, in := range blk.Instrs {
			switch in.Op {
			case vm.SNX:
				next[in.State] = in.Typ.Wrap(val(in.Srcs[0]))
			case vm.LPR:
				regs[in.Dst] = state[in.State]
			case vm.LUT:
				ix := val(in.Srcs[0])
				if ix < 0 || ix >= int64(in.Rom.Size) {
					return nil, fmt.Errorf("ssa: exec: LUT index %d out of range", ix)
				}
				regs[in.Dst] = in.Rom.Content[ix]
			default:
				v, err := vm.EvalOp(in, val)
				if err != nil {
					return nil, err
				}
				regs[in.Dst] = v
			}
		}
		prev = blk
		switch {
		case blk.BranchCond != nil:
			taken := val(blk.BranchCond.Srcs[0]) != 0
			if blk.BranchCond.Op == vm.BFL {
				taken = !taken
			}
			if taken {
				blk = blk.Succs[0]
			} else {
				blk = blk.Succs[1]
			}
		case len(blk.Succs) > 0:
			blk = blk.Succs[0]
		default:
			return nil, fmt.Errorf("ssa: exec: block %d has no successor", blk.ID)
		}
	}
	for v, nv := range next {
		state[v] = nv
	}
	outs := make([]int64, len(rt.Outputs))
	for i, p := range rt.Outputs {
		outs[i] = regs[p.Reg]
	}
	return outs, nil
}
