package netlist

// verify.go is the system slice of the static invariant verifier
// (internal/dpverify, cmd/rocccvet): it checks a compiled sysPlan's
// routing tables, loop-nest odometer, harvest ring geometry and
// needClear derivation against the kernel and data path they were
// compiled from, and a constructed System's buffers against the
// smart-buffer capacity contract — all without running a cycle. Under
// the `dpverify` build tag the plan checks also run at plan-cache time
// (verify_hook_on.go), so every System CI builds carries them.

import (
	"fmt"

	"roccc/internal/dp"
	"roccc/internal/hir"
	"roccc/internal/smartbuf"
)

// VerifySystem statically checks a constructed System: the data path's
// compiled plan (dp.Verify), the system plan's congruence with kernel
// and data path, the smart-buffer capacity contract for every read
// port, and the sizing of the streak-dispatch scratch buffers.
func VerifySystem(s *System) []dp.Violation {
	vs := dp.Verify(s.Datapath)
	vs = append(vs, verifySysPlan(s.plan, s.Kernel, s.Datapath)...)
	for i, b := range s.buffers {
		for _, msg := range smartbuf.VerifyBuffer(b) {
			vs = append(vs, dp.Violation{Invariant: "system/smartbuf",
				Detail: fmt.Sprintf("read port %d (%s): %s", i, s.plan.reads[i].arrName, msg)})
		}
	}
	p := s.plan
	if len(s.buffers) != len(p.reads) || len(s.readGens) != len(p.reads) || len(s.readBRAMs) != len(p.reads) {
		vs = append(vs, violation("system/wiring", "system carries %d buffers / %d generators / %d BRAMs for %d read plans",
			len(s.buffers), len(s.readGens), len(s.readBRAMs), len(p.reads)))
	}
	if len(s.writeGens) != len(p.writes) || len(s.writeBRAMs) != len(p.writes) {
		vs = append(vs, violation("system/wiring", "system carries %d write generators / %d BRAMs for %d write plans",
			len(s.writeGens), len(s.writeBRAMs), len(p.writes)))
	}
	// Streak-dispatch scratch: a chunk stages up to min(total,
	// sysChunkMax) input rows, and the harvest replay snapshots
	// latency-many pre-chunk fed bits.
	if wantStage := min(p.total, sysChunkMax) * len(s.Datapath.Inputs); len(s.stage) < wantStage {
		vs = append(vs, violation("system/wiring", "staging buffer holds %d values, a full chunk needs %d", len(s.stage), wantStage))
	}
	if len(s.fedPre) < p.latency {
		vs = append(vs, violation("system/wiring", "fedPre snapshot holds %d bits, harvest replay needs %d", len(s.fedPre), p.latency))
	}
	if len(s.fedRing) != s.fedMask+1 || s.fedMask != p.fedMask {
		vs = append(vs, violation("system/wiring", "fed ring of %d bits does not match mask %#x (plan mask %#x)", len(s.fedRing), s.fedMask, p.fedMask))
	}
	return vs
}

func violation(inv, format string, args ...any) dp.Violation {
	return dp.Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)}
}

// verifySysPlan checks a compiled system plan against its kernel and
// data path: every routing index in bounds, the loop nest congruent
// with the kernel's, the harvest ring deep enough for the pipeline, and
// needClear re-derived from the actual input coverage.
func verifySysPlan(p *sysPlan, k *hir.Kernel, d *dp.Datapath) []dp.Violation {
	var vs []dp.Violation
	add := func(inv, format string, args ...any) {
		vs = append(vs, violation(inv, format, args...))
	}

	// system/nest: the dense odometer must reproduce the kernel's loop
	// nest exactly — Run's cycle budget and the write generators both
	// derive from it.
	depth := k.Nest.Depth()
	if len(p.from) != depth || len(p.step) != depth || len(p.trips) != depth {
		add("system/nest", "odometer tables cover %d/%d/%d levels for a depth-%d nest", len(p.from), len(p.step), len(p.trips), depth)
	} else {
		total := 1
		for l := 0; l < depth; l++ {
			if p.trips[l] != k.Nest.Trips(l) {
				add("system/nest", "level %d trips %d, kernel nest has %d", l, p.trips[l], k.Nest.Trips(l))
			}
			if p.trips[l] <= 0 {
				add("system/nest", "level %d has non-positive trip count %d", l, p.trips[l])
			}
			if p.from[l] != k.Nest.From[l] {
				add("system/nest", "level %d lower bound %d, kernel nest has %d", l, p.from[l], k.Nest.From[l])
			}
			total *= int(p.trips[l])
		}
		if p.total != total {
			add("system/nest", "plan total %d is not the product of trip counts %d", p.total, total)
		}
	}
	if p.total != int(k.Nest.TotalIterations()) {
		add("system/nest", "plan total %d, kernel nest iterates %d", p.total, k.Nest.TotalIterations())
	}

	// system/harvest-ring: latency must match the data path, and the fed
	// ring must hold latency+1 cycles of history as a power of two —
	// harvest reads the bit from `latency` cycles ago before the current
	// cycle's write wraps onto it.
	if p.latency != d.Latency() {
		add("system/harvest-ring", "plan latency %d, data path latency %d", p.latency, d.Latency())
	}
	if n := p.fedMask + 1; n&(n-1) != 0 || n < p.latency+1 {
		add("system/harvest-ring", "fed ring of %d bits cannot hold latency %d + 1 cycles as a power of two", n, p.latency)
	}

	// system/routing: every dense table must address real data-path
	// ports; -1 marks a deliberately unrouted slot.
	nIn, nOut := len(d.Inputs), len(d.Outputs)
	if len(p.reads) != len(k.Reads) {
		add("system/routing", "%d read plans for %d kernel read windows", len(p.reads), len(k.Reads))
	}
	for i := range p.reads {
		rp := &p.reads[i]
		if err := rp.cfg.Validate(); err != nil {
			add("system/routing", "read port %d (%s): invalid buffer config: %v", i, rp.arrName, err)
		}
		if len(rp.route) != len(rp.cfg.Taps) {
			add("system/routing", "read port %d (%s): %d route entries for %d window taps", i, rp.arrName, len(rp.route), len(rp.cfg.Taps))
		}
		for t, ix := range rp.route {
			if ix < -1 || int(ix) >= nIn {
				add("system/routing", "read port %d (%s): tap %d routes to input %d of %d", i, rp.arrName, t, ix, nIn)
			}
		}
	}
	if len(p.writes) != len(k.Writes) {
		add("system/routing", "%d write plans for %d kernel write accesses", len(p.writes), len(k.Writes))
	}
	for i := range p.writes {
		wp := &p.writes[i]
		for e, ix := range wp.outIdx {
			if ix < 0 || ix >= nOut {
				add("system/routing", "write port %d (%s): element %d routes to output %d of %d", i, wp.arrName, e, ix, nOut)
			}
		}
	}
	for i, iv := range p.ivs {
		if iv.in < 0 || iv.in >= nIn {
			add("system/routing", "IV %d routes to input %d of %d", i, iv.in, nIn)
		}
		if iv.level < 0 || iv.level >= depth {
			add("system/routing", "IV %d reads nest level %d of %d", i, iv.level, depth)
		}
	}
	if len(p.scalarIn) != len(k.ScalarParams) {
		add("system/routing", "%d scalar routes for %d scalar parameters", len(p.scalarIn), len(k.ScalarParams))
	}
	for i, ix := range p.scalarIn {
		if ix < -1 || ix >= nIn {
			add("system/routing", "scalar %d routes to input %d of %d", i, ix, nIn)
		}
	}

	// system/need-clear: re-derive input coverage. needClear may only be
	// false when every data-path input is overwritten each feed cycle;
	// a stale value surviving into an uncovered port would silently
	// corrupt the stream.
	covered := make([]bool, nIn)
	mark := func(ix int) {
		if ix >= 0 && ix < nIn {
			covered[ix] = true
		}
	}
	for i := range p.reads {
		for _, ix := range p.reads[i].route {
			mark(int(ix))
		}
	}
	for _, iv := range p.ivs {
		mark(iv.in)
	}
	for _, ix := range p.scalarIn {
		mark(ix)
	}
	wantClear := false
	for _, c := range covered {
		if !c {
			wantClear = true
		}
	}
	if p.needClear != wantClear {
		add("system/need-clear", "plan records needClear=%v, input coverage derives %v", p.needClear, wantClear)
	}
	return vs
}
