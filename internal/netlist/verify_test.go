package netlist

// verify_test.go exercises the system-plan verifier two ways: a real
// compiled System must verify clean, and targeted corruptions of a
// plan copy must each be rejected with the right named invariant.

import (
	"testing"

	"roccc/internal/core"
	"roccc/internal/dp"
)

func assertSysInvariant(t *testing.T, vs []dp.Violation, invariant string) {
	t.Helper()
	if invariant == "" {
		if len(vs) != 0 {
			t.Fatalf("want a clean verification, got %d violations, first: %v", len(vs), vs[0])
		}
		return
	}
	for _, v := range vs {
		if v.Invariant == invariant {
			return
		}
	}
	t.Fatalf("no %q violation in %v", invariant, vs)
}

// planCopy deep-copies the cached plan so corruptions never leak into
// the kernel's PlanCache (other tests share it).
func planCopy(p *sysPlan) *sysPlan {
	c := *p
	c.reads = append([]readPlan(nil), p.reads...)
	for i := range c.reads {
		c.reads[i].route = append([]int32(nil), p.reads[i].route...)
	}
	c.writes = append([]writePlan(nil), p.writes...)
	c.ivs = append([]ivPlan(nil), p.ivs...)
	c.scalarIn = append([]int(nil), p.scalarIn...)
	c.from = append([]int64(nil), p.from...)
	c.step = append([]int64(nil), p.step...)
	c.trips = append([]int64(nil), p.trips...)
	return &c
}

func TestVerifySystemClean(t *testing.T) {
	res, sys := buildSystem(t, firSource, "fir", core.DefaultOptions(), Config{BusElems: 1})
	assertSysInvariant(t, VerifySystem(sys), "")
	assertSysInvariant(t, verifySysPlan(sys.plan, res.Kernel, sys.Datapath), "")
}

func TestVerifySysPlanCorruptions(t *testing.T) {
	res, sys := buildSystem(t, firSource, "fir", core.DefaultOptions(), Config{BusElems: 1})
	k, d := res.Kernel, sys.Datapath

	cases := []struct {
		name      string
		invariant string
		mut       func(p *sysPlan)
	}{
		{"trip count drift", "system/nest", func(p *sysPlan) { p.trips[0]++ }},
		{"stale total", "system/nest", func(p *sysPlan) { p.total *= 2 }},
		{"latency mismatch", "system/harvest-ring", func(p *sysPlan) { p.latency++ }},
		{"fed ring too shallow", "system/harvest-ring", func(p *sysPlan) { p.fedMask = 0 }},
		{"route past input ports", "system/routing", func(p *sysPlan) {
			p.reads[0].route[0] = int32(len(d.Inputs))
		}},
		{"scalar route past input ports", "system/routing", func(p *sysPlan) {
			p.scalarIn = append(p.scalarIn, len(d.Inputs))
		}},
		{"needClear dropped", "system/need-clear", func(p *sysPlan) {
			// Unroute a tap so one input port goes uncovered while the
			// plan still claims no clearing is needed.
			p.reads[0].route[0] = -1
			p.needClear = false
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := planCopy(sys.plan)
			tc.mut(p)
			assertSysInvariant(t, verifySysPlan(p, k, d), tc.invariant)
		})
	}
}
