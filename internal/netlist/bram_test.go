package netlist

import "testing"

func TestBRAMReadWrite(t *testing.T) {
	m := NewBRAM("A", 8, 16)
	if err := m.Write(3, 42); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read(3)
	if err != nil || v != 42 {
		t.Fatalf("read = %d (%v)", v, err)
	}
	reads, writes := m.Stats()
	if reads != 1 || writes != 1 {
		t.Errorf("stats = %d/%d", reads, writes)
	}
}

func TestBRAMBounds(t *testing.T) {
	m := NewBRAM("A", 4, 8)
	if _, err := m.Read(4); err == nil {
		t.Error("read out of range not caught")
	}
	if _, err := m.Read(-1); err == nil {
		t.Error("negative read not caught")
	}
	if err := m.Write(4, 0); err == nil {
		t.Error("write out of range not caught")
	}
}

func TestBRAMLoad(t *testing.T) {
	m := NewBRAM("A", 4, 8)
	m.Load([]int64{1, 2, 3, 4, 5}) // extra elements ignored
	if m.Data[3] != 4 {
		t.Errorf("data = %v", m.Data)
	}
	m.Load([]int64{9})
	if m.Data[0] != 9 || m.Data[1] != 2 {
		t.Errorf("partial load corrupted data: %v", m.Data)
	}
}

func TestEngineZeroBus(t *testing.T) {
	e := Engine{}
	if e.LoadCycles(10) != 10 {
		t.Error("zero-bus engine should degrade to 1 elem/cycle")
	}
}
