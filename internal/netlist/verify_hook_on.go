//go:build dpverify

package netlist

import (
	"strings"

	"roccc/internal/dp"
	"roccc/internal/hir"
)

// sysVerifyHook runs the static system-plan verifier at plan-cache time
// and panics on any violation: under `-tags dpverify` a malformed plan
// can never reach a Run cycle.
func sysVerifyHook(p *sysPlan, k *hir.Kernel, d *dp.Datapath) {
	vs := verifySysPlan(p, k, d)
	if len(vs) == 0 {
		return
	}
	msgs := make([]string, len(vs))
	for i, v := range vs {
		msgs[i] = v.String()
	}
	panic("dpverify: " + k.Name + ": " + strings.Join(msgs, "; "))
}
