package netlist

import "fmt"

// sysbatch.go is the streak-batched dispatch path of System.Run. The
// serial loop in system.go interleaves the memory stage, smart-buffer
// windowing and the pipelined data path one clock at a time, paying one
// Step dispatch per cycle. Most of a healthy run, though, is a streak:
// a run of consecutive cycles in which every read port is WindowReady
// and the controller feeds one iteration per clock. A streak's
// data-path work is exactly what dp.Sim.StepN batches, so Run detects
// streaks up front and hands each one to StepN in a single dispatch:
//
//  1. the predictor (feedStreak, built on smartbuf.FeedStreak) proves
//     that the next k cycles all feed — an O(1) query per read port,
//     not a scan over cycles;
//  2. the executor (runStreak) replays the serial loop's memory stage
//     and window pops cycle by cycle — bit-identically, so BRAM fetch
//     pacing, backpressure and the fetch-once property are untouched —
//     but materializes the k input vectors into one flat staging region
//     instead of stepping the simulator each cycle;
//  3. one StepN call executes all k clocks; the harvest stage then
//     replays from StepN's flat output block using the same lat-delayed
//     fed-ring logic as the serial loop;
//  4. when the streak exhausts the iteration space, the pipeline flush
//     runs as one DrainN call (drainTail) instead of lat Drain cycles.
//
// Faults keep the chunk-with-serial-replay contract end to end: StepN
// and DrainN detect a fault in batch scratch, discard it, and replay
// the chunk through the serial core, so the abort cycle, the
// *dp.FaultError and the post-abort simulator state are Step's exactly;
// runStreak then stops the system clock on that same cycle. Stall and
// fill cycles — anything the predictor cannot prove — fall back to the
// serial per-cycle path, which shares every stage helper with this one.

const (
	// sysChunkMax bounds one streak chunk, and with it the input staging
	// region (sysChunkMax rows of len(Datapath.Inputs) values). StepN
	// chunks its own lane scratch internally, so larger streaks gain
	// little beyond amortizing the per-chunk bookkeeping here.
	sysChunkMax = 256
	// sysBatchMin is the shortest streak worth dispatching through
	// StepN: below it the serial path's per-cycle dispatch is cheaper
	// than staging rows (StepN itself falls back to the serial core for
	// tiny chunks anyway).
	sysBatchMin = 4
)

// stallStreak is the bubble-streak predictor: when at least one read
// port's window is not ready, it returns the exact number of
// consecutive cycles the system stalls (pipeline bubbles) before every
// port is ready again — the max over the ports' O(1) fill counts, since
// ports fill independently and feeding resumes only when all are ready.
// Zero when nothing is stalled (all ready, or the run is draining).
func (s *System) stallStreak() int {
	m := 0
	for _, buf := range s.buffers {
		if st := buf.StallStreak(); st > m {
			m = st
		}
	}
	return m
}

// feedStreak is the streak predictor: the number of consecutive cycles,
// starting with the current one (whose memory stage has already run),
// for which every read port is provably WindowReady and the controller
// has iterations left to feed — so every one of them is a feed cycle in
// the serial schedule. The bound is a safe underestimate: a shorter
// streak only splits the batch, it never diverges from the serial
// cycle-for-cycle behavior. Kernels with no read arrays (pure
// scalar/feedback nests like mul_acc) are limited by the iteration
// space alone.
func (s *System) feedStreak() int {
	k := s.plan.total - s.ctl.Fed()
	if k > sysChunkMax {
		k = sysChunkMax
	}
	if k < sysBatchMin {
		return 0
	}
	for _, buf := range s.buffers {
		if k = buf.FeedStreak(k); k == 0 {
			return 0
		}
	}
	return k
}

// runStreak executes k guaranteed feed cycles in one StepN dispatch,
// returning the updated harvest count. The per-cycle memory stage and
// window pops replay serially (cycle 0's memory stage already ran —
// the predictor needed it); only the data-path stepping is batched.
func (s *System) runStreak(k, harvested int) (int, error) {
	p := s.plan
	lat := p.latency
	c0 := s.cycles
	inW := len(s.inputs)
	stage := s.stage[:k*inW]
	// Snapshot the pre-chunk fed bits the first min(lat,k) harvests will
	// read: the chunk's own fedRing writes may wrap over them before the
	// harvest replay runs. In-chunk exits need no snapshot — every chunk
	// cycle fed, and fedRing wraparound only ever overwrites true with
	// true inside a chunk.
	npre := min(lat, k)
	for i := 0; i < npre; i++ {
		e := c0 + i - lat
		s.fedPre[i] = e >= 0 && s.fedRing[e&s.fedMask]
	}
	// One FSM transition admits the whole streak — exactly k Tick(true)
	// calls that all feed (the predictor capped k at the remaining
	// iteration count).
	if !s.ctl.TickFeedN(k) {
		return harvested, fmt.Errorf("netlist: internal: controller refused predicted %d-cycle streak at cycle %d", k, c0)
	}
	for i := 0; i < k; i++ {
		if i > 0 {
			if err := s.memoryStage(); err != nil {
				s.cycles = c0 + i
				return harvested, err
			}
		}
		row := stage[i*inW : (i+1)*inW]
		if p.needClear {
			clear(row)
		}
		if err := s.fillInputs(row); err != nil {
			// PopWindowInto validates readiness, so an overestimating
			// predictor fails loudly here instead of diverging silently.
			s.cycles = c0 + i
			return harvested, fmt.Errorf("netlist: internal: streak predictor overran window readiness at cycle %d: %w", c0+i, err)
		}
	}
	// Mark the whole streak fed: k consecutive true entries, which is
	// the entire ring once k wraps it.
	if k > s.fedMask {
		for i := range s.fedRing {
			s.fedRing[i] = true
		}
	} else {
		for i := 0; i < k; i++ {
			s.fedRing[(c0+i)&s.fedMask] = true
		}
	}
	outs, err := s.sim.StepN(stage, k)
	if err != nil {
		// The faulting cycle aborted inside StepN exactly as Step aborts
		// it; stop the system clock on that cycle, as the serial loop
		// would have (pre-fault harvests are unobservable: Output is
		// gated on completion and Reset clears the write BRAMs).
		s.cycles = s.sim.Cycle()
		return harvested, err
	}
	outW := s.sim.OutWidth()
	for i := 0; i < k; i++ {
		exit := c0 + i - lat
		if exit < 0 || (i < lat && !s.fedPre[i]) {
			continue // pre-run cycles, or a pre-chunk bubble's exit
		}
		if err := s.harvest(outs[i*outW : (i+1)*outW]); err != nil {
			s.cycles = c0 + i
			return harvested, err
		}
		harvested++
	}
	s.cycles = c0 + k
	s.batched += k
	return harvested, nil
}

// runStall executes m guaranteed bubble cycles in one DrainN dispatch —
// the fill phase and mid-run window stalls (e.g. a 2-D sweep waiting
// for the next row strip). The memory stage still runs once per cycle,
// so fills progress exactly as the serial loop paces them; in-flight
// valid iterations exiting during the stall harvest from DrainN's row
// block (rows at or past the latency horizon exit bubbles admitted
// inside this same stall — never harvested).
func (s *System) runStall(m, harvested int) (int, error) {
	lat := s.plan.latency
	c0 := s.cycles
	npre := min(lat, m)
	for i := 0; i < npre; i++ {
		e := c0 + i - lat
		s.fedPre[i] = e >= 0 && s.fedRing[e&s.fedMask]
	}
	for i := 0; i < m; i++ {
		if i > 0 {
			if err := s.memoryStage(); err != nil {
				s.cycles = c0 + i
				return harvested, err
			}
		}
		s.fedRing[(c0+i)&s.fedMask] = false
	}
	outs, err := s.sim.DrainN(m)
	if err != nil {
		s.cycles = s.sim.Cycle()
		return harvested, err
	}
	outW := s.sim.OutWidth()
	for i := 0; i < npre; i++ {
		if !s.fedPre[i] {
			continue
		}
		if err := s.harvest(outs[i*outW : (i+1)*outW]); err != nil {
			s.cycles = c0 + i
			return harvested, err
		}
		harvested++
	}
	s.cycles = c0 + m
	s.batched += m
	return harvested, nil
}

// drainTail flushes the pipeline after the final feed cycle in one
// DrainN dispatch: exactly latency drain clocks remain, after which
// every in-flight iteration has exited — the same cycle count on which
// the serial loop completes. The memory stage still runs once per drain
// cycle (trailing array elements the window sweep never referenced keep
// streaming in, preserving fetch pacing and the fetch-once property);
// window state is static, so running the stages back to back is
// order-equivalent to interleaving them.
func (s *System) drainTail(harvested int) (int, error) {
	lat := s.plan.latency
	c0 := s.cycles
	for i := 0; i < lat; i++ {
		e := c0 + i - lat
		s.fedPre[i] = e >= 0 && s.fedRing[e&s.fedMask]
	}
	for i := 0; i < lat; i++ {
		if err := s.memoryStage(); err != nil {
			s.cycles = c0 + i
			return harvested, err
		}
	}
	outs, err := s.sim.DrainN(lat)
	if err != nil {
		// An in-flight valid iteration faulted during the flush; DrainN
		// replayed the chunk serially, so the abort cycle is Drain's.
		s.cycles = s.sim.Cycle()
		return harvested, err
	}
	outW := s.sim.OutWidth()
	for i := 0; i < lat; i++ {
		if !s.fedPre[i] {
			continue
		}
		if err := s.harvest(outs[i*outW : (i+1)*outW]); err != nil {
			s.cycles = c0 + i
			return harvested, err
		}
		harvested++
	}
	s.cycles = c0 + lat
	s.batched += lat
	return harvested, nil
}
