//go:build !dpverify

package netlist

import (
	"roccc/internal/dp"
	"roccc/internal/hir"
)

// sysVerifyHook is a no-op in default builds; `-tags dpverify` swaps in
// the verifying hook (verify_hook_on.go).
func sysVerifyHook(p *sysPlan, k *hir.Kernel, d *dp.Datapath) {}
