package netlist

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"roccc/internal/core"
	"roccc/internal/dp"
)

// firJobs builds n FIR input streams (seeded, so serial and sharded
// runs see identical data) with reusable output buffers.
func firJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		in := make([]int64, 21)
		for j := range in {
			in[j] = rng.Int63n(255) - 128
		}
		jobs[i] = Job{Inputs: map[string][]int64{"A": in}}
	}
	return jobs
}

// TestSystemPoolRunBatch shards a sweep of independent FIR streams
// across the pool and checks every stream against a serially-run
// System over the same inputs.
func TestSystemPoolRunBatch(t *testing.T) {
	res, sys := buildSystem(t, firSource, "fir", core.Options{Optimize: true, PeriodNs: 5}, Config{BusElems: 1})
	jobs := firJobs(23)

	// Serial reference: one System, Reset per stream.
	want := make([][]int64, len(jobs))
	wantCycles := make([]int, len(jobs))
	for i := range jobs {
		sys.Reset()
		if err := sys.LoadInput("A", jobs[i].Inputs["A"]); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		out, err := sys.Output("C")
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
		wantCycles[i] = sys.Cycles()
	}

	pool, err := NewSystemPool(res.Kernel, res.Datapath, Config{BusElems: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	// Two batches over the same jobs: the second exercises buffer reuse.
	for round := 0; round < 2; round++ {
		if err := pool.RunBatch(jobs); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range jobs {
			if jobs[i].Err != nil {
				t.Fatalf("round %d: job %d: %v", round, i, jobs[i].Err)
			}
			if jobs[i].Cycles != wantCycles[i] {
				t.Fatalf("round %d: job %d: %d cycles, serial took %d", round, i, jobs[i].Cycles, wantCycles[i])
			}
			got := jobs[i].Outputs["C"]
			for j := range want[i] {
				if got[j] != want[i][j] {
					t.Fatalf("round %d: job %d: C[%d] = %d, serial %d", round, i, j, got[j], want[i][j])
				}
			}
		}
	}
}

// TestSystemPoolJobError: one bad stream must fail with its own error
// while the rest of the batch completes.
func TestSystemPoolJobError(t *testing.T) {
	res, _ := buildSystem(t, firSource, "fir", core.Options{Optimize: true, PeriodNs: 5}, Config{BusElems: 1})
	pool, err := NewSystemPool(res.Kernel, res.Datapath, Config{BusElems: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	jobs := firJobs(5)
	jobs[2].Inputs = map[string][]int64{"NOPE": make([]int64, 21)}
	err = pool.RunBatch(jobs)
	if err == nil || !strings.Contains(err.Error(), "job 2") {
		t.Fatalf("RunBatch error = %v, want a job-2 failure", err)
	}
	for i := range jobs {
		if i == 2 {
			if jobs[i].Err == nil {
				t.Fatal("bad job has no error")
			}
			continue
		}
		if jobs[i].Err != nil {
			t.Fatalf("job %d failed: %v", i, jobs[i].Err)
		}
		if len(jobs[i].Outputs["C"]) != 17 {
			t.Fatalf("job %d: missing outputs", i)
		}
	}
}

// TestSystemPoolGetPut: Get hands out Reset systems, Put recycles them,
// and foreign systems are dropped instead of poisoning the pool.
func TestSystemPoolGetPut(t *testing.T) {
	res, _ := buildSystem(t, firSource, "fir", core.Options{Optimize: true, PeriodNs: 5}, Config{BusElems: 1})
	pool, err := NewSystemPool(res.Kernel, res.Datapath, Config{BusElems: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	a, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	in := make([]int64, 21)
	for i := range in {
		in[i] = int64(i)
	}
	if err := a.LoadInput("A", in); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	pool.Put(a)
	b, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatal("Put system was not reused")
	}
	// The recycled system must be runnable again (Put resets it).
	if err := b.LoadInput("A", in); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(); err != nil {
		t.Fatalf("recycled system: %v", err)
	}
	// A system for a different bus width must not enter the pool.
	other, err := NewSystem(res.Kernel, res.Datapath, Config{BusElems: 2})
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(b)
	pool.Put(other)
	if got, _ := pool.Get(); got == other {
		t.Fatal("foreign system entered the pool")
	}
}

// TestSystemPoolNormalizesBus: a pool built with BusElems <= 0 must
// normalize it the way NewSystem does, so Put actually recycles the
// Systems it hands out (a mismatch here silently rebuilt a System per
// job, defeating the pool).
func TestSystemPoolNormalizesBus(t *testing.T) {
	res, _ := buildSystem(t, firSource, "fir", core.Options{Optimize: true, PeriodNs: 5}, Config{BusElems: 1})
	pool, err := NewSystemPool(res.Kernel, res.Datapath, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	s, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if s.BusElems != 1 {
		t.Fatalf("BusElems = %d, want the normalized 1", s.BusElems)
	}
	pool.Put(s)
	s2, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s {
		t.Fatal("Put did not recycle the System under a zero-valued Config")
	}
}

// TestSystemPoolScalarGuard: a same-kernel System carrying different
// scalar parameter bindings must not enter the pool — jobs run after
// such a Put would silently compute with the wrong scalars.
func TestSystemPoolScalarGuard(t *testing.T) {
	src := `
int A[16];
int B[16];
void scale(int k) {
	int i;
	for (i = 0; i < 16; i++) { B[i] = A[i] * k + 1; }
}
`
	res, err := core.CompileSource(src, "scale", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewSystemPool(res.Kernel, res.Datapath,
		Config{BusElems: 1, Scalars: map[string]int64{"k": 7}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	foreign, err := NewSystem(res.Kernel, res.Datapath, Config{BusElems: 1, Scalars: map[string]int64{"k": 9}})
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(foreign)
	got, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if got == foreign {
		t.Fatal("a System with different scalar bindings entered the pool")
	}
	// The pool's jobs must still compute with k=7.
	in := make([]int64, 16)
	for i := range in {
		in[i] = int64(i)
	}
	pool.Put(got)
	jobs := []Job{{Inputs: map[string][]int64{"A": in}}}
	if err := pool.RunBatch(jobs); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if want := in[i]*7 + 1; jobs[0].Outputs["B"][i] != want {
			t.Fatalf("B[%d] = %d, want %d", i, jobs[0].Outputs["B"][i], want)
		}
	}
}

// TestConcurrentPlanCacheSharing hammers NewSystem + Run + Output from
// many goroutines sharing one compiled Kernel/Datapath: every goroutine
// exercises hir.Kernel.PlanCache (the shared sysPlan), the data path's
// planOnce simulator plan, and full runs over private Systems. Run
// under -race in CI; results must also be independent of interleaving.
func TestConcurrentPlanCacheSharing(t *testing.T) {
	res, sys := buildSystem(t, firSource, "fir", core.Options{Optimize: true, PeriodNs: 5}, Config{BusElems: 1})
	in := make([]int64, 21)
	rng := rand.New(rand.NewSource(9))
	for i := range in {
		in[i] = rng.Int63n(255) - 128
	}
	if err := sys.LoadInput("A", in); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	want, err := sys.Output("C")
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const rounds = 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				s, err := NewSystem(res.Kernel, res.Datapath, Config{BusElems: 1})
				if err != nil {
					errs[g] = err
					return
				}
				if err := s.LoadInput("A", in); err != nil {
					errs[g] = err
					return
				}
				if _, err := s.Run(); err != nil {
					errs[g] = err
					return
				}
				out, err := s.Output("C")
				if err != nil {
					errs[g] = err
					return
				}
				for i := range want {
					if out[i] != want[i] {
						errs[g] = fmt.Errorf("round %d: C[%d] = %d, want %d", r, i, out[i], want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestSystemPoolStats pins the admission/metrics counters a service
// builds on: Gets balance Puts+Rejected once work drains (no leaked
// Systems), Built counts constructions, and the MaxIdle cap rejects
// returns beyond it.
func TestSystemPoolStats(t *testing.T) {
	res, _ := buildSystem(t, firSource, "fir", core.Options{Optimize: true, PeriodNs: 5}, Config{BusElems: 1})
	pool, err := NewSystemPool(res.Kernel, res.Datapath, Config{BusElems: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	st := pool.Stats()
	if st.Built != 1 || st.Idle != 1 || st.Gets != 0 {
		t.Fatalf("fresh pool stats = %+v, want Built=1 Idle=1 Gets=0", st)
	}

	jobs := firJobs(9)
	if err := pool.RunBatch(jobs); err != nil {
		t.Fatal(err)
	}
	if err := pool.RunJob(&jobs[0]); err != nil {
		t.Fatal(err)
	}
	st = pool.Stats()
	if st.Gets != st.Puts+st.Rejected {
		t.Fatalf("leaked Systems: %+v (Gets != Puts+Rejected)", st)
	}
	if st.Batches != 1 || st.Jobs != 10 {
		t.Fatalf("stats = %+v, want Batches=1 Jobs=10", st)
	}
	if st.Idle < 1 {
		t.Fatalf("stats = %+v, want at least one idle System", st)
	}

	// A foreign System counts as Rejected, not Put.
	other, err := NewSystem(res.Kernel, res.Datapath, Config{BusElems: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := pool.Stats()
	pool.Put(other)
	if st = pool.Stats(); st.Rejected != before.Rejected+1 || st.Puts != before.Puts {
		t.Fatalf("foreign Put: %+v -> %+v, want one more Rejected", before, st)
	}

	// MaxIdle caps the free list.
	pool.SetMaxIdle(1)
	a, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(a)
	before = pool.Stats()
	pool.Put(b) // free list already at the cap
	st = pool.Stats()
	if st.Idle != 1 || st.Rejected != before.Rejected+1 {
		t.Fatalf("MaxIdle=1: stats %+v, want Idle=1 and one more Rejected", st)
	}
}

// TestRunJobHarvestsFeedbacks: a feedback kernel with no output arrays
// must surface its latch value through Job.Feedbacks, and reusing the
// Job must reuse the map.
func TestRunJobHarvestsFeedbacks(t *testing.T) {
	src := `
int A[32];
int sum;
void accum() {
	int i;
	sum = 0;
	for (i = 0; i < 32; i++) {
		sum = sum + A[i];
	}
}
`
	res, _ := buildSystem(t, src, "accum", core.DefaultOptions(), Config{BusElems: 1})
	pool, err := NewSystemPool(res.Kernel, res.Datapath, Config{BusElems: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	in := make([]int64, 32)
	var want int64
	for i := range in {
		in[i] = int64(i*3 - 40)
		want += in[i]
	}
	job := Job{Inputs: map[string][]int64{"A": in}}
	if err := pool.RunJob(&job); err != nil {
		t.Fatal(err)
	}
	if got := job.Feedbacks["sum"]; got != want {
		t.Fatalf("Feedbacks[sum] = %d, want %d", got, want)
	}
	fb := job.Feedbacks
	in[0] += 5
	want += 5
	if err := pool.RunJob(&job); err != nil {
		t.Fatal(err)
	}
	if got := job.Feedbacks["sum"]; got != want {
		t.Fatalf("rerun Feedbacks[sum] = %d, want %d", got, want)
	}
	if fmt.Sprintf("%p", fb) != fmt.Sprintf("%p", job.Feedbacks) {
		t.Fatal("Feedbacks map was reallocated on reuse")
	}
}

// TestSystemPoolMaxIdleTrim: lowering the cap must drop idle Systems
// immediately, not only refuse future Puts.
func TestSystemPoolMaxIdleTrim(t *testing.T) {
	res, _ := buildSystem(t, firSource, "fir", core.Options{Optimize: true, PeriodNs: 5}, Config{BusElems: 1})
	pool, err := NewSystemPool(res.Kernel, res.Datapath, Config{BusElems: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var held []*System
	for i := 0; i < 3; i++ {
		s, err := pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, s)
	}
	for _, s := range held {
		pool.Put(s)
	}
	if st := pool.Stats(); st.Idle != 3 {
		t.Fatalf("Idle = %d, want 3 before the trim", st.Idle)
	}
	pool.SetMaxIdle(1)
	if st := pool.Stats(); st.Idle != 1 {
		t.Fatalf("Idle = %d after SetMaxIdle(1), want 1", st.Idle)
	}
}

// TestJobReuseAcrossKernels: recycling one Job between kernels must not
// leave the previous kernel's arrays or latches in the result maps.
func TestJobReuseAcrossKernels(t *testing.T) {
	firRes, _ := buildSystem(t, firSource, "fir", core.Options{Optimize: true, PeriodNs: 5}, Config{BusElems: 1})
	accumSrc := `
int A[32];
int sum;
void accum() {
	int i;
	sum = 0;
	for (i = 0; i < 32; i++) {
		sum = sum + A[i];
	}
}
`
	accumRes, err := core.CompileSource(accumSrc, "accum", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	firPool, err := NewSystemPool(firRes.Kernel, firRes.Datapath, Config{BusElems: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer firPool.Close()
	accumPool, err := NewSystemPool(accumRes.Kernel, accumRes.Datapath, Config{BusElems: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer accumPool.Close()

	job := Job{Inputs: firJobs(1)[0].Inputs}
	if err := firPool.RunJob(&job); err != nil {
		t.Fatal(err)
	}
	if len(job.Outputs["C"]) != 17 || len(job.Feedbacks) != 0 {
		t.Fatalf("fir run: Outputs=%v Feedbacks=%v", job.Outputs, job.Feedbacks)
	}

	// Same Job, different kernel: fir's C must vanish, accum's sum appear.
	in := make([]int64, 32)
	var want int64
	for i := range in {
		in[i] = int64(i)
		want += in[i]
	}
	job.Inputs = map[string][]int64{"A": in}
	if err := accumPool.RunJob(&job); err != nil {
		t.Fatal(err)
	}
	if _, stale := job.Outputs["C"]; stale {
		t.Fatalf("stale fir output survived kernel switch: %v", job.Outputs)
	}
	if got := job.Feedbacks["sum"]; got != want {
		t.Fatalf("Feedbacks[sum] = %d, want %d", got, want)
	}

	// And back: accum's latch must vanish from the fir result.
	job.Inputs = firJobs(1)[0].Inputs
	if err := firPool.RunJob(&job); err != nil {
		t.Fatal(err)
	}
	if _, stale := job.Feedbacks["sum"]; stale {
		t.Fatalf("stale feedback survived kernel switch: %v", job.Feedbacks)
	}
	if len(job.Outputs["C"]) != 17 {
		t.Fatalf("fir rerun outputs: %v", job.Outputs)
	}
}

// TestSystemPoolBackend pins the pool's backend plumbing: a pool built
// with Config.Backend serves Systems on that backend, every matched
// return is admitted, mismatched backends are rejected, and the
// drained-pool accounting invariant Gets == Puts + Rejected holds with
// the backend checks in the admission path.
func TestSystemPoolBackend(t *testing.T) {
	res, _ := buildSystem(t, firSource, "fir", core.Options{Optimize: true, PeriodNs: 5}, Config{BusElems: 1})
	cfg := Config{BusElems: 1, Backend: dp.BackendThreaded}
	pool, err := NewSystemPool(res.Kernel, res.Datapath, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	var sims [3]*System
	for i := range sims {
		sys, err := pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		if got := sys.Backend(); got != dp.BackendThreaded {
			t.Fatalf("threaded pool served a System on backend %v", got)
		}
		sims[i] = sys
	}
	// One mismatched return per foreign axis: interp backend, and the
	// cone backend; both must be rejected without poisoning the free
	// list.
	for _, b := range []dp.Backend{dp.BackendInterp, dp.BackendCone} {
		fcfg := cfg
		fcfg.Backend = b
		foreign, err := NewSystem(res.Kernel, res.Datapath, fcfg)
		if err != nil {
			t.Fatal(err)
		}
		pool.Put(foreign)
	}
	for _, sys := range sims {
		pool.Put(sys)
	}
	st := pool.Stats()
	if st.Rejected < 2 {
		t.Fatalf("backend-mismatched Systems admitted: %+v", st)
	}
	// All three Gets were returned; the two foreign Puts are surplus
	// attempts, so the drained invariant reads Gets + foreign == Puts +
	// Rejected.
	if st.Gets+2 != st.Puts+st.Rejected {
		t.Fatalf("pool accounting out of balance: %+v (Gets+2 != Puts+Rejected)", st)
	}
	// A re-Get must come off the free list on the pool's backend.
	sys, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Backend(); got != dp.BackendThreaded {
		t.Fatalf("recycled System on backend %v, want threaded", got)
	}
	pool.Put(sys)
}
