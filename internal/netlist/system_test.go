package netlist

import (
	"math/rand"
	"testing"

	"roccc/internal/cc"
	"roccc/internal/core"
	"roccc/internal/hir"
)

func buildSystem(t *testing.T, src, name string, opt core.Options, cfg Config) (*core.Result, *System) {
	t.Helper()
	res, err := core.CompileSource(src, name, opt)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(res.Kernel, res.Datapath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, sys
}

// runInterp runs the original C through the reference interpreter.
func runInterp(t *testing.T, src, fname string, arrays map[string][]int64, args ...int64) *cc.Interp {
	t.Helper()
	file, err := cc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cc.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}
	ip := cc.NewInterp(info)
	for name, vals := range arrays {
		ip.SetArray(name, vals)
	}
	if _, _, err := ip.Call(fname, args...); err != nil {
		t.Fatal(err)
	}
	return ip
}

const firSource = `
int A[21];
int C[17];
void fir() {
	int i;
	for (i = 0; i < 17; i = i + 1) {
		C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
	}
}
`

// TestSystemFIR is the paper's Fig. 2 executed end to end: engine loads
// BRAM, smart buffer streams windows, pipelined data path computes, and
// results land in the output BRAM — bit-identical to software.
func TestSystemFIR(t *testing.T) {
	_, sys := buildSystem(t, firSource, "fir", core.DefaultOptions(), Config{BusElems: 1})
	rng := rand.New(rand.NewSource(2))
	in := make([]int64, 21)
	for i := range in {
		in[i] = rng.Int63n(255) - 128
	}
	if err := sys.LoadInput("A", in); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := sys.Output("C")
	if err != nil {
		t.Fatal(err)
	}
	ip := runInterp(t, firSource, "fir", map[string][]int64{"A": in})
	want := ip.Arrays["C"]
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Fetch-once property at system level.
	reads, _ := sys.inBRAMs["A"].Stats()
	if reads != 21 {
		t.Errorf("BRAM reads = %d, want 21 (every element once)", reads)
	}
	// Throughput: after the fill, one window per cycle; total cycles
	// near iterations + window fill + pipeline latency.
	maxCycles := 17 + 5 + sys.Datapath.Latency() + 8
	if sys.Cycles() > maxCycles {
		t.Errorf("cycles = %d, want <= %d (fully pipelined)", sys.Cycles(), maxCycles)
	}
}

const accumSource = `
int A[32];
int sum;
void accum() {
	int i;
	sum = 0;
	for (i = 0; i < 32; i++) {
		sum = sum + A[i];
	}
}
`

func TestSystemAccumulator(t *testing.T) {
	_, sys := buildSystem(t, accumSource, "accum", core.DefaultOptions(), Config{BusElems: 1})
	in := make([]int64, 32)
	var want int64
	for i := range in {
		in[i] = int64(i*7 - 50)
		want += in[i]
	}
	if err := sys.LoadInput("A", in); err != nil {
		t.Fatal(err)
	}
	sim, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := sys.FeedbackValue(sim, "sum")
	if !ok {
		t.Fatal("no feedback latch named sum")
	}
	if got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestSystem2DStencil(t *testing.T) {
	src := `
int img[12][12];
int out[12][12];
void stencil() {
	int i; int j;
	for (i = 1; i < 11; i++)
		for (j = 1; j < 11; j++)
			out[i][j] = img[i-1][j] + img[i+1][j] + img[i][j-1] + img[i][j+1] - 4*img[i][j];
}
`
	_, sys := buildSystem(t, src, "stencil", core.DefaultOptions(), Config{BusElems: 1})
	rng := rand.New(rand.NewSource(4))
	in := make([]int64, 144)
	for i := range in {
		in[i] = rng.Int63n(200) - 100
	}
	if err := sys.LoadInput("img", in); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := sys.Output("out")
	if err != nil {
		t.Fatal(err)
	}
	ip := runInterp(t, src, "stencil", map[string][]int64{"img": in})
	want := ip.Arrays["out"]
	for i := 1; i < 11; i++ {
		for j := 1; j < 11; j++ {
			if got[i*12+j] != want[i*12+j] {
				t.Errorf("out[%d][%d] = %d, want %d", i, j, got[i*12+j], want[i*12+j])
			}
		}
	}
	reads, _ := sys.inBRAMs["img"].Stats()
	if reads != 144 {
		t.Errorf("BRAM reads = %d, want 144", reads)
	}
}

// TestSystemBlockKernel: DCT-shaped stride-8 kernel, eight outputs per
// iteration, wide bus.
func TestSystemBlockKernel(t *testing.T) {
	src := `
int X[64];
int Y[64];
void blk() {
	int i;
	for (i = 0; i < 64; i = i + 8) {
		Y[i]   = X[i] + X[i+7];
		Y[i+1] = X[i+1] + X[i+6];
		Y[i+2] = X[i+2] + X[i+5];
		Y[i+3] = X[i+3] + X[i+4];
		Y[i+4] = X[i+3] - X[i+4];
		Y[i+5] = X[i+2] - X[i+5];
		Y[i+6] = X[i+1] - X[i+6];
		Y[i+7] = X[i] - X[i+7];
	}
}
`
	_, sys := buildSystem(t, src, "blk", core.DefaultOptions(), Config{BusElems: 8})
	rng := rand.New(rand.NewSource(6))
	in := make([]int64, 64)
	for i := range in {
		in[i] = rng.Int63n(255) - 128
	}
	if err := sys.LoadInput("X", in); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := sys.Output("Y")
	if err != nil {
		t.Fatal(err)
	}
	ip := runInterp(t, src, "blk", map[string][]int64{"X": in})
	want := ip.Arrays["Y"]
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Y[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// 8 outputs per cycle once streaming: cycles should be close to 8
	// iterations + fill + latency.
	if sys.Cycles() > 8+2+sys.Datapath.Latency()+8 {
		t.Errorf("cycles = %d (throughput below 8 outputs/cycle)", sys.Cycles())
	}
}

func TestSystemScalarParams(t *testing.T) {
	src := `
int A[16];
int B[16];
void scale(int k) {
	int i;
	for (i = 0; i < 16; i++) { B[i] = A[i] * k + 1; }
}
`
	_, sys := buildSystem(t, src, "scale", core.DefaultOptions(),
		Config{BusElems: 1, Scalars: map[string]int64{"k": 7}})
	in := make([]int64, 16)
	for i := range in {
		in[i] = int64(i)
	}
	if err := sys.LoadInput("A", in); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := sys.Output("B")
	for i := range in {
		if got[i] != in[i]*7+1 {
			t.Errorf("B[%d] = %d, want %d", i, got[i], in[i]*7+1)
		}
	}
}

func TestSystemIVInput(t *testing.T) {
	src := `
int A[16];
int B[16];
void f() {
	int i;
	for (i = 0; i < 16; i++) { B[i] = A[i] + i; }
}
`
	_, sys := buildSystem(t, src, "f", core.DefaultOptions(), Config{BusElems: 1})
	in := make([]int64, 16)
	for i := range in {
		in[i] = int64(100 - i)
	}
	if err := sys.LoadInput("A", in); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := sys.Output("B")
	for i := range in {
		if got[i] != 100 {
			t.Errorf("B[%d] = %d, want 100", i, got[i])
		}
	}
}

func TestSystemMissingScalar(t *testing.T) {
	src := `
int A[4]; int B[4];
void f(int k) { int i; for (i = 0; i < 4; i++) { B[i] = A[i] * k; } }
`
	res, err := core.CompileSource(src, "f", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(res.Kernel, res.Datapath, Config{BusElems: 1}); err == nil {
		t.Error("missing scalar parameter not reported")
	}
}

func TestEngineCycles(t *testing.T) {
	e := Engine{BusElems: 4}
	if e.LoadCycles(16) != 4 || e.LoadCycles(17) != 5 {
		t.Error("engine cycle arithmetic wrong")
	}
}

const dividerSource = `
int A[24];
int B[24];
int Q[24];
void divide() {
	int i;
	for (i = 0; i < 24; i++) {
		Q[i] = A[i] / B[i];
	}
}
`

// TestSystemDividerDrainBubbles is the poison-semantics acceptance test:
// a kernel with an input-dependent divisor must run end to end through
// System.Run even though every fill/drain bubble feeds the divider a
// zero divisor. The seed simulator faulted with "division by zero"
// mid-flush; poisoned bubbles now mask the fault, and the harvested
// outputs still match software exactly.
func TestSystemDividerDrainBubbles(t *testing.T) {
	_, sys := buildSystem(t, dividerSource, "divide", core.DefaultOptions(), Config{BusElems: 1})
	rng := rand.New(rand.NewSource(9))
	a := make([]int64, 24)
	b := make([]int64, 24)
	for i := range a {
		a[i] = rng.Int63n(2000) - 1000
		b[i] = rng.Int63n(99) + 1 // valid iterations divide by nonzero
		if rng.Intn(2) == 0 {
			b[i] = -b[i]
		}
	}
	if err := sys.LoadInput("A", a); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadInput("B", b); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatalf("Run with drain bubbles faulted: %v", err)
	}
	got, err := sys.Output("Q")
	if err != nil {
		t.Fatal(err)
	}
	ip := runInterp(t, dividerSource, "divide", map[string][]int64{"A": a, "B": b})
	want := ip.Arrays["Q"]
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Q[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestSystemDividerValidFault pins the other half of the poison
// contract: a divide-by-zero on a *valid* iteration is a genuine fault
// and must still abort the run.
func TestSystemDividerValidFault(t *testing.T) {
	_, sys := buildSystem(t, dividerSource, "divide", core.DefaultOptions(), Config{BusElems: 1})
	a := make([]int64, 24)
	b := make([]int64, 24)
	for i := range a {
		a[i] = int64(i + 1)
		b[i] = 3
	}
	b[11] = 0 // valid iteration 11 divides by zero
	if err := sys.LoadInput("A", a); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadInput("B", b); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err == nil {
		t.Fatal("divide by zero on a valid iteration did not fault")
	}
}

// TestSystemRunTwiceGuarded pins the Run lifecycle: the seed silently
// mis-executed a second Run (generators already consumed, cycles stale);
// now it returns a clear error, and Reset rearms the system for a
// bit-identical rerun on fresh data.
func TestSystemRunTwiceGuarded(t *testing.T) {
	_, sys := buildSystem(t, firSource, "fir", core.DefaultOptions(), Config{BusElems: 1})
	rng := rand.New(rand.NewSource(21))
	in := make([]int64, 21)
	for i := range in {
		in[i] = rng.Int63n(255) - 128
	}
	if err := sys.LoadInput("A", in); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	first, err := sys.Output("C")
	if err != nil {
		t.Fatal(err)
	}
	firstCycles := sys.Cycles()
	if _, err := sys.Run(); err == nil {
		t.Fatal("second Run without Reset did not error")
	}
	// Reset + reload different data: the rerun must match software again
	// and burn the same cycle count.
	for i := range in {
		in[i] = rng.Int63n(255) - 128
	}
	sys.Reset()
	if err := sys.LoadInput("A", in); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatalf("Run after Reset: %v", err)
	}
	got, err := sys.Output("C")
	if err != nil {
		t.Fatal(err)
	}
	ip := runInterp(t, firSource, "fir", map[string][]int64{"A": in})
	want := ip.Arrays["C"]
	same := len(first) == len(got)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rerun C[%d] = %d, want %d", i, got[i], want[i])
		}
		if same && got[i] != first[i] {
			same = false
		}
	}
	if sys.Cycles() != firstCycles {
		t.Errorf("rerun cycles = %d, first run %d", sys.Cycles(), firstCycles)
	}
	// Fetch-once property must hold per run after Reset.
	reads, _ := sys.inBRAMs["A"].Stats()
	if reads != 21 {
		t.Errorf("rerun BRAM reads = %d, want 21", reads)
	}
}

// TestSystemOutputBeforeRun: reading an output BRAM before a completed
// run used to return all-zero data indistinguishable from a real
// result; it must be an error.
func TestSystemOutputBeforeRun(t *testing.T) {
	_, sys := buildSystem(t, firSource, "fir", core.DefaultOptions(), Config{BusElems: 1})
	if _, err := sys.Output("C"); err == nil {
		t.Fatal("Output before Run did not error")
	}
	in := make([]int64, 21)
	for i := range in {
		in[i] = int64(i)
	}
	if err := sys.LoadInput("A", in); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Output("C"); err != nil {
		t.Fatalf("Output after Run: %v", err)
	}
	// After Reset the previous results are gone again.
	sys.Reset()
	if _, err := sys.Output("C"); err == nil {
		t.Fatal("Output after Reset (before rerun) did not error")
	}
}

// TestSystemFusedLoops runs loop fusion through the complete pipeline:
// two adjacent filters fused into one kernel with two read windows and
// two write patterns, streamed through one controller.
func TestSystemFusedLoops(t *testing.T) {
	src := `
int A[20];
int B[20];
int S[18];
int D[18];
void two(int k) {
	int i; int j;
	for (i = 0; i < 18; i++) { S[i] = A[i] + A[i+1] + A[i+2]; }
	for (j = 0; j < 18; j++) { D[j] = (B[j] - B[j+2]) * k; }
}
`
	// Fuse at the HIR level, then continue through the normal pipeline.
	file, err := cc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cc.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := hir.Build(info)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("two")
	if n := hir.FuseAdjacent(f); n != 1 {
		t.Fatalf("fused %d loop pairs, want 1", n)
	}
	res, err := core.Compile(prog, f, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kernel.Reads) != 2 || len(res.Kernel.Writes) != 2 {
		t.Fatalf("fused kernel: %d reads, %d writes", len(res.Kernel.Reads), len(res.Kernel.Writes))
	}
	sys, err := NewSystem(res.Kernel, res.Datapath, Config{
		BusElems: 1, Scalars: map[string]int64{"k": 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	a := make([]int64, 20)
	b := make([]int64, 20)
	for i := range a {
		a[i] = rng.Int63n(100)
		b[i] = rng.Int63n(100)
	}
	if err := sys.LoadInput("A", a); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadInput("B", b); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	s, _ := sys.Output("S")
	d, _ := sys.Output("D")
	for i := 0; i < 18; i++ {
		if s[i] != a[i]+a[i+1]+a[i+2] {
			t.Errorf("S[%d] = %d", i, s[i])
		}
		if d[i] != (b[i]-b[i+2])*3 {
			t.Errorf("D[%d] = %d", i, d[i])
		}
	}
	// One fused loop: both outputs stream under a single controller in
	// ~18 iterations + fill, not 2x.
	if sys.Cycles() > 18+4+res.Datapath.Latency()+8 {
		t.Errorf("fused kernel took %d cycles", sys.Cycles())
	}
}
