package netlist

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"roccc/internal/dp"
	"roccc/internal/hir"
)

// SystemPool is a pool of Reset-able Systems for one compiled kernel,
// plus a fixed crew of persistent worker goroutines that shard
// independent input streams across cores. It builds on the PR 2 plan
// caches: every pooled System shares the kernel's compiled sysPlan
// (hir.Kernel.PlanCache) and the data path's compiled simulator plan,
// so Get after warm-up reuses a System without recompiling or
// allocating, and RunBatch in steady state (reused Job buffers)
// allocates nothing at all — the workers are parked on a channel, not
// respawned per call.
type SystemPool struct {
	kernel *hir.Kernel
	dpath  *dp.Datapath
	cfg    Config
	// scalars are the scalar parameter values a pooled System must carry
	// (bound at NewSystem in k.ScalarParams order); Put compares against
	// them so a same-kernel System built with different scalar bindings
	// cannot poison the pool.
	scalars []int64

	mu   sync.Mutex
	free []*System

	workers int
	spawn   sync.Once
	kick    chan *sweepRun
	run     *sweepRun
	runMu   sync.Mutex // serializes RunBatch calls on one pool

	closed atomic.Bool
}

// sweepRun is the shared state of one RunBatch call, reused across
// calls so dispatching a batch allocates nothing in steady state.
type sweepRun struct {
	jobs []Job
	next atomic.Int64
	wg   sync.WaitGroup
}

// Job is one independent input stream for RunBatch: the per-array input
// data in, the per-array results, consumed cycle count and error out.
// Outputs buffers are reused when present (allocated on first use
// otherwise), so a sweep that recycles its Job slice reaches a
// zero-allocation steady state.
type Job struct {
	// Inputs maps input array names to their data (one element per
	// address), as LoadInput takes them.
	Inputs map[string][]int64
	// Outputs receives one slice per output array, sized to the array.
	Outputs map[string][]int64
	// Cycles is the clock count the stream's Run consumed.
	Cycles int
	// Err is the stream's failure, if any; other jobs still run.
	Err error
}

// NewSystemPool builds a pool over a compiled kernel. workers bounds
// the goroutines RunBatch shards across (<= 0 means GOMAXPROCS). The
// constructor builds one System eagerly, so configuration errors
// (missing scalars, bad buffer geometry) surface here rather than
// mid-sweep, and the shared plans are compiled before the first batch.
func NewSystemPool(k *hir.Kernel, d *dp.Datapath, cfg Config, workers int) (*SystemPool, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Normalize exactly as NewSystem does, so Put's configuration check
	// compares what built Systems actually carry.
	if cfg.BusElems <= 0 {
		cfg.BusElems = 1
	}
	sys, err := NewSystem(k, d, cfg)
	if err != nil {
		return nil, err
	}
	p := &SystemPool{
		kernel:  k,
		dpath:   d,
		cfg:     cfg,
		scalars: sys.scalarVals,
		free:    []*System{sys},
		workers: workers,
		kick:    make(chan *sweepRun, workers),
		run:     &sweepRun{},
	}
	return p, nil
}

// Workers returns the pool's shard width.
func (p *SystemPool) Workers() int { return p.workers }

// Get returns a Reset System for the pool's kernel, reusing a pooled
// one when available. Callers hand it back with Put.
func (p *SystemPool) Get() (*System, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		sys := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return sys, nil
	}
	p.mu.Unlock()
	return NewSystem(p.kernel, p.dpath, p.cfg)
}

// Put resets a System and returns it to the pool. Systems built for a
// different kernel, data path, bus width or scalar binding are dropped
// rather than poisoning the pool.
func (p *SystemPool) Put(sys *System) {
	if sys == nil || sys.Kernel != p.kernel || sys.Datapath != p.dpath ||
		sys.BusElems != p.cfg.BusElems || !slices.Equal(sys.scalarVals, p.scalars) {
		return
	}
	sys.Reset()
	p.mu.Lock()
	p.free = append(p.free, sys)
	p.mu.Unlock()
}

// RunBatch executes every job — Reset, LoadInput, Run, harvest — over
// the worker crew, each worker pulling the next unclaimed job off a
// shared counter so uneven stream lengths balance naturally. Per-job
// failures land in Job.Err without stopping the rest of the batch; the
// returned error is the first failure in job order (nil when all
// streams completed). Concurrent RunBatch calls on one pool serialize.
func (p *SystemPool) RunBatch(jobs []Job) error {
	if len(jobs) == 0 {
		return nil
	}
	p.runMu.Lock()
	defer p.runMu.Unlock()
	if p.closed.Load() {
		return fmt.Errorf("netlist: RunBatch on a closed SystemPool")
	}
	p.spawn.Do(func() {
		for i := 0; i < p.workers; i++ {
			go p.worker()
		}
	})
	w := min(p.workers, len(jobs))
	r := p.run
	r.jobs = jobs
	r.next.Store(0)
	r.wg.Add(w)
	for i := 0; i < w; i++ {
		p.kick <- r
	}
	r.wg.Wait()
	r.jobs = nil
	for i := range jobs {
		if jobs[i].Err != nil {
			return fmt.Errorf("netlist: sweep job %d: %w", i, jobs[i].Err)
		}
	}
	return nil
}

// Close stops the worker crew (waiting out an in-flight RunBatch). The
// pool cannot run batches afterwards; Get/Put keep working.
func (p *SystemPool) Close() {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	if p.closed.CompareAndSwap(false, true) {
		p.spawn.Do(func() {}) // never spawned: closing the channel suffices
		close(p.kick)
	}
}

// worker is one persistent shard: parked on the kick channel, it drains
// unclaimed jobs on a System borrowed from the pool for the whole
// batch.
func (p *SystemPool) worker() {
	for r := range p.kick {
		sys, err := p.Get()
		for {
			i := int(r.next.Add(1)) - 1
			if i >= len(r.jobs) {
				break
			}
			job := &r.jobs[i]
			if err != nil {
				job.Err = err
				continue
			}
			job.Err = runJob(sys, job)
		}
		p.Put(sys)
		r.wg.Done()
	}
}

// runJob streams one job through a pooled System.
func runJob(sys *System, job *Job) error {
	sys.Reset()
	for name, vals := range job.Inputs {
		if err := sys.LoadInput(name, vals); err != nil {
			return err
		}
	}
	if _, err := sys.Run(); err != nil {
		return err
	}
	job.Cycles = sys.Cycles()
	if job.Outputs == nil {
		job.Outputs = make(map[string][]int64, len(sys.outBRAMs))
	}
	for name, bram := range sys.outBRAMs {
		dst := job.Outputs[name]
		if len(dst) != len(bram.Data) {
			dst = make([]int64, len(bram.Data))
			job.Outputs[name] = dst
		}
		if err := sys.OutputInto(name, dst); err != nil {
			return err
		}
	}
	return nil
}
