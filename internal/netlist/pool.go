package netlist

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"roccc/internal/dp"
	"roccc/internal/hir"
)

// ErrPoolClosed is the sentinel inside every RunJob/RunBatch failure on
// a closed pool. Services that evict and rebuild pools (serve's
// registry hygiene) match it with errors.Is to distinguish "lost a race
// with eviction — retry on the rebuilt pool" from a real stream error.
var ErrPoolClosed = errors.New("netlist: SystemPool is closed")

// SystemPool is a pool of Reset-able Systems for one compiled kernel,
// plus a fixed crew of persistent worker goroutines that shard
// independent input streams across cores. It builds on the PR 2 plan
// caches: every pooled System shares the kernel's compiled sysPlan
// (hir.Kernel.PlanCache) and the data path's compiled simulator plan,
// so Get after warm-up reuses a System without recompiling or
// allocating, and RunBatch in steady state (reused Job buffers)
// allocates nothing at all — the workers are parked on a channel, not
// respawned per call.
type SystemPool struct {
	kernel *hir.Kernel
	dpath  *dp.Datapath
	cfg    Config
	// scalars are the scalar parameter values a pooled System must carry
	// (bound at NewSystem in k.ScalarParams order); Put compares against
	// them so a same-kernel System built with different scalar bindings
	// cannot poison the pool.
	scalars []int64

	mu   sync.Mutex
	free []*System

	workers int
	spawn   sync.Once
	kick    chan *sweepRun
	run     *sweepRun
	runMu   sync.Mutex // serializes RunBatch calls on one pool

	closed atomic.Bool

	// Admission/metrics counters (Stats). maxIdle bounds the free list
	// when set (> 0): a long-lived service can cap how many warm Systems
	// one kernel keeps resident.
	maxIdle  atomic.Int64
	built    atomic.Int64
	gets     atomic.Int64
	puts     atomic.Int64
	rejected atomic.Int64
	batches  atomic.Int64
	jobs     atomic.Int64
}

// PoolStats is a snapshot of a SystemPool's admission and usage
// counters. Services expose it for observability; tests use it to prove
// pooled Systems are returned rather than leaked (a balanced pool has
// Gets == Puts + Rejected once all work has drained).
type PoolStats struct {
	// Built counts Systems constructed for this pool (the eager one at
	// NewSystemPool plus every Get that missed the free list).
	Built int64
	// Gets and Puts count successful checkouts and accepted returns.
	Gets, Puts int64
	// Rejected counts Puts refused admission: foreign Systems (wrong
	// kernel/datapath/bus/scalars) and returns beyond the MaxIdle cap.
	Rejected int64
	// Idle is the current free-list depth.
	Idle int
	// Batches and Jobs count RunBatch calls and jobs executed through
	// RunBatch and RunJob.
	Batches, Jobs int64
}

// sweepRun is the shared state of one RunBatch call, reused across
// calls so dispatching a batch allocates nothing in steady state.
type sweepRun struct {
	jobs []Job
	next atomic.Int64
	wg   sync.WaitGroup
}

// Job is one independent input stream for RunBatch: the per-array input
// data in, the per-array results, consumed cycle count and error out.
// Outputs buffers and the Feedbacks map are reused when present
// (allocated on first use otherwise), so a sweep that recycles its Job
// slice reaches a zero-allocation steady state.
type Job struct {
	// Inputs maps input array names to their data (one element per
	// address), as LoadInput takes them.
	Inputs map[string][]int64
	// Outputs receives one slice per output array, sized to the array.
	Outputs map[string][]int64
	// Feedbacks receives the final value of every feedback latch (by
	// state-variable name) when the kernel's data path has any — the
	// observable result of accumulator-style kernels with no output
	// arrays, e.g. Table 1's mul_acc.
	Feedbacks map[string]int64
	// Cycles is the clock count the stream's Run consumed.
	Cycles int
	// Err is the stream's failure, if any; other jobs still run.
	Err error
}

// NewSystemPool builds a pool over a compiled kernel. workers bounds
// the goroutines RunBatch shards across (<= 0 means GOMAXPROCS). The
// constructor builds one System eagerly, so configuration errors
// (missing scalars, bad buffer geometry) surface here rather than
// mid-sweep, and the shared plans are compiled before the first batch.
func NewSystemPool(k *hir.Kernel, d *dp.Datapath, cfg Config, workers int) (*SystemPool, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Normalize exactly as NewSystem does, so Put's configuration check
	// compares what built Systems actually carry.
	if cfg.BusElems <= 0 {
		cfg.BusElems = 1
	}
	sys, err := NewSystem(k, d, cfg)
	if err != nil {
		return nil, err
	}
	p := &SystemPool{
		kernel:  k,
		dpath:   d,
		cfg:     cfg,
		scalars: sys.scalarVals,
		free:    []*System{sys},
		workers: workers,
		kick:    make(chan *sweepRun, workers),
		run:     &sweepRun{},
	}
	p.built.Store(1)
	return p, nil
}

// Workers returns the pool's shard width.
func (p *SystemPool) Workers() int { return p.workers }

// SetMaxIdle caps the free list: a Put that would grow it past n is
// dropped (and counted as Rejected). n <= 0 removes the cap. Idle
// Systems already beyond a newly lowered cap are dropped immediately,
// so the resident memory actually shrinks.
func (p *SystemPool) SetMaxIdle(n int) {
	p.maxIdle.Store(int64(n))
	if n <= 0 {
		return
	}
	p.mu.Lock()
	if len(p.free) > n {
		for i := n; i < len(p.free); i++ {
			p.free[i] = nil // release for GC
		}
		p.free = p.free[:n]
	}
	p.mu.Unlock()
}

// Stats snapshots the pool's admission and usage counters.
func (p *SystemPool) Stats() PoolStats {
	p.mu.Lock()
	idle := len(p.free)
	p.mu.Unlock()
	return PoolStats{
		Built:    p.built.Load(),
		Gets:     p.gets.Load(),
		Puts:     p.puts.Load(),
		Rejected: p.rejected.Load(),
		Idle:     idle,
		Batches:  p.batches.Load(),
		Jobs:     p.jobs.Load(),
	}
}

// Get returns a Reset System for the pool's kernel, reusing a pooled
// one when available. Callers hand it back with Put.
func (p *SystemPool) Get() (*System, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		sys := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		p.gets.Add(1)
		return sys, nil
	}
	p.mu.Unlock()
	sys, err := NewSystem(p.kernel, p.dpath, p.cfg)
	if err != nil {
		return nil, err
	}
	p.built.Add(1)
	p.gets.Add(1)
	return sys, nil
}

// Put resets a System and returns it to the pool. Systems built for a
// different kernel, data path, bus width, scalar binding, dispatch path
// (Config.Serial) or execution backend (Config.Backend) are dropped
// rather than poisoning the pool, as are returns beyond the MaxIdle
// cap.
func (p *SystemPool) Put(sys *System) {
	if sys == nil || sys.Kernel != p.kernel || sys.Datapath != p.dpath ||
		sys.BusElems != p.cfg.BusElems || sys.serial != p.cfg.Serial ||
		sys.Backend() != p.cfg.Backend ||
		!slices.Equal(sys.scalarVals, p.scalars) {
		if sys != nil {
			p.rejected.Add(1)
		}
		return
	}
	sys.Reset()
	max := int(p.maxIdle.Load())
	p.mu.Lock()
	if max > 0 && len(p.free) >= max {
		p.mu.Unlock()
		p.rejected.Add(1)
		return
	}
	p.free = append(p.free, sys)
	p.mu.Unlock()
	p.puts.Add(1)
}

// RunJob streams one job through a pooled System — Reset, LoadInput,
// Run, harvest — returning the System to the pool afterwards (also on
// failure: a faulted System Resets cleanly). Unlike RunBatch it does not
// serialize on the pool's batch lock, so a service can run many
// independent single-stream requests concurrently against one pool; the
// steady state (reused Job buffers, warm free list) allocates nothing.
func (p *SystemPool) RunJob(job *Job) error {
	if p.closed.Load() {
		job.Err = fmt.Errorf("netlist: RunJob: %w", ErrPoolClosed)
		return job.Err
	}
	sys, err := p.Get()
	if err != nil {
		return err
	}
	p.jobs.Add(1)
	job.Err = runJob(sys, job)
	p.Put(sys)
	return job.Err
}

// RunBatch executes every job — Reset, LoadInput, Run, harvest — over
// the worker crew, each worker pulling the next unclaimed job off a
// shared counter so uneven stream lengths balance naturally. Per-job
// failures land in Job.Err without stopping the rest of the batch; the
// returned error is the first failure in job order (nil when all
// streams completed). Concurrent RunBatch calls on one pool serialize.
func (p *SystemPool) RunBatch(jobs []Job) error {
	if len(jobs) == 0 {
		return nil
	}
	p.runMu.Lock()
	defer p.runMu.Unlock()
	if p.closed.Load() {
		return fmt.Errorf("netlist: RunBatch: %w", ErrPoolClosed)
	}
	p.spawn.Do(func() {
		for i := 0; i < p.workers; i++ {
			go p.worker()
		}
	})
	p.batches.Add(1)
	p.jobs.Add(int64(len(jobs)))
	w := min(p.workers, len(jobs))
	r := p.run
	r.jobs = jobs
	r.next.Store(0)
	r.wg.Add(w)
	for i := 0; i < w; i++ {
		p.kick <- r
	}
	r.wg.Wait()
	r.jobs = nil
	for i := range jobs {
		if jobs[i].Err != nil {
			return fmt.Errorf("netlist: sweep job %d: %w", i, jobs[i].Err)
		}
	}
	return nil
}

// Close stops the worker crew (waiting out an in-flight RunBatch). The
// pool cannot run batches afterwards; Get/Put keep working.
func (p *SystemPool) Close() {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	if p.closed.CompareAndSwap(false, true) {
		p.spawn.Do(func() {}) // never spawned: closing the channel suffices
		close(p.kick)
	}
}

// worker is one persistent shard: parked on the kick channel, it drains
// unclaimed jobs on a System borrowed from the pool for the whole
// batch.
func (p *SystemPool) worker() {
	for r := range p.kick {
		sys, err := p.Get()
		for {
			i := int(r.next.Add(1)) - 1
			if i >= len(r.jobs) {
				break
			}
			job := &r.jobs[i]
			if err != nil {
				job.Err = err
				continue
			}
			job.Err = runJob(sys, job)
		}
		p.Put(sys)
		r.wg.Done()
	}
}

// runJob streams one job through a pooled System.
func runJob(sys *System, job *Job) error {
	sys.Reset()
	for name, vals := range job.Inputs {
		if err := sys.LoadInput(name, vals); err != nil {
			return err
		}
	}
	sim, err := sys.Run()
	if err != nil {
		return err
	}
	job.Cycles = sys.Cycles()
	if job.Outputs == nil {
		job.Outputs = make(map[string][]int64, len(sys.outBRAMs))
	}
	// A Job recycled across kernels may carry keys this kernel never
	// writes; purge them so the result holds exactly this run's arrays.
	// Same-kernel reuse (the zero-alloc steady state) deletes nothing
	// and allocates nothing (map iteration + lookups only).
	for name := range job.Outputs {
		if _, ok := sys.outBRAMs[name]; !ok {
			delete(job.Outputs, name)
		}
	}
	for name, bram := range sys.outBRAMs {
		dst := job.Outputs[name]
		if len(dst) != len(bram.Data) {
			dst = make([]int64, len(bram.Data))
			job.Outputs[name] = dst
		}
		if err := sys.OutputInto(name, dst); err != nil {
			return err
		}
	}
	if job.Feedbacks != nil {
		for name := range job.Feedbacks {
			if _, ok := sim.FeedbackByName(name); !ok {
				delete(job.Feedbacks, name)
			}
		}
	}
	if fbs := sys.Datapath.Feedbacks; len(fbs) > 0 {
		if job.Feedbacks == nil {
			job.Feedbacks = make(map[string]int64, len(fbs))
		}
		for _, fb := range fbs {
			if v, ok := sim.FeedbackByName(fb.State.Name); ok {
				job.Feedbacks[fb.State.Name] = v
			}
		}
	}
	return nil
}
