package netlist

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"roccc/internal/bench"
	"roccc/internal/core"
	"roccc/internal/dp"
)

// sysbatch_test.go pins the streak-batched System.Run bit-identical to
// the serial per-cycle path: outputs, feedback latches, cycle counts,
// BRAM fetch counts (the fetch-once property) and — on planted faults —
// the abort cycle and the full *dp.FaultError. The matrix covers the
// streamable Table 1 kernels (including the mul_acc feedback row),
// fuzzed window geometries chosen to produce every backpressure regime
// (stride under/at/over the bus width, 2-D strips), and divide-by-zero
// faults planted on valid iterations.

// diffRun runs the same streams through a serial interpreter System and
// a streak-batched System on cfg's execution backend, and fails on any
// observable divergence — the failing backend is named in the message.
// It returns how many cycles the batched systems dispatched through the
// streak path, so callers can assert the batch machinery actually
// engaged.
func diffRun(t *testing.T, res *core.Result, cfg Config, streams []map[string][]int64, tag string) int {
	t.Helper()
	tag = fmt.Sprintf("%s[%v]", tag, cfg.Backend)
	// The reference is always the serial interpreter core, whatever
	// backend the batched system runs.
	scfg := cfg
	scfg.Serial = true
	scfg.Backend = dp.BackendInterp
	serial, err := NewSystem(res.Kernel, res.Datapath, scfg)
	if err != nil {
		t.Fatalf("%s: serial system: %v", tag, err)
	}
	bcfg := cfg
	bcfg.Serial = false
	batched, err := NewSystem(res.Kernel, res.Datapath, bcfg)
	if err != nil {
		t.Fatalf("%s: batched system: %v", tag, err)
	}
	batchedCycles := 0
	for si, inputs := range streams {
		serial.Reset()
		batched.Reset()
		for name, vals := range inputs {
			if err := serial.LoadInput(name, vals); err != nil {
				t.Fatalf("%s stream %d: %v", tag, si, err)
			}
			if err := batched.LoadInput(name, vals); err != nil {
				t.Fatalf("%s stream %d: %v", tag, si, err)
			}
		}
		sSim, sErr := serial.Run()
		bSim, bErr := batched.Run()
		if (sErr != nil) != (bErr != nil) {
			t.Fatalf("%s stream %d: error mismatch: serial %v, batched %v", tag, si, sErr, bErr)
		}
		if sErr != nil {
			var sf, bf *dp.FaultError
			sIsFault := errors.As(sErr, &sf)
			bIsFault := errors.As(bErr, &bf)
			if sIsFault != bIsFault {
				t.Fatalf("%s stream %d: fault typing mismatch: serial %v, batched %v", tag, si, sErr, bErr)
			}
			if sIsFault && (sf.Op != bf.Op || sf.Cycle != bf.Cycle || sf.Msg != bf.Msg) {
				t.Fatalf("%s stream %d: fault mismatch: serial %+v, batched %+v", tag, si, sf, bf)
			}
			if !sIsFault && sErr.Error() != bErr.Error() {
				t.Fatalf("%s stream %d: error mismatch: serial %q, batched %q", tag, si, sErr, bErr)
			}
			if serial.Cycles() != batched.Cycles() {
				t.Fatalf("%s stream %d: abort cycle mismatch: serial stopped at %d, batched at %d",
					tag, si, serial.Cycles(), batched.Cycles())
			}
			continue
		}
		if serial.Cycles() != batched.Cycles() {
			t.Fatalf("%s stream %d: cycles: serial %d, batched %d", tag, si, serial.Cycles(), batched.Cycles())
		}
		batchedCycles += batched.BatchedCycles()
		for _, w := range res.Kernel.Writes {
			want, err := serial.Output(w.Arr.Name)
			if err != nil {
				t.Fatalf("%s stream %d: %v", tag, si, err)
			}
			got, err := batched.Output(w.Arr.Name)
			if err != nil {
				t.Fatalf("%s stream %d: %v", tag, si, err)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s stream %d: %s[%d] = %d batched, %d serial",
						tag, si, w.Arr.Name, j, got[j], want[j])
				}
			}
		}
		for _, fb := range res.Datapath.Feedbacks {
			want, wok := sSim.FeedbackByName(fb.State.Name)
			got, gok := bSim.FeedbackByName(fb.State.Name)
			if wok != gok || got != want {
				t.Fatalf("%s stream %d: feedback %s = %d/%v batched, %d/%v serial",
					tag, si, fb.State.Name, got, gok, want, wok)
			}
		}
		// Fetch pacing parity: the streak executor replays the serial
		// memory stage, so every input BRAM must see the same number of
		// reads (each element exactly once when the sweep covers the
		// array, but parity is the property — not a specific count).
		for name, m := range serial.inBRAMs {
			sr, _ := m.Stats()
			br, _ := batched.inBRAMs[name].Stats()
			if sr != br {
				t.Fatalf("%s stream %d: BRAM %s reads: serial %d, batched %d", tag, si, name, sr, br)
			}
		}
	}
	return batchedCycles
}

// randStreams builds n random input streams for a compiled kernel.
func randStreams(res *core.Result, rng *rand.Rand, n int) []map[string][]int64 {
	streams := make([]map[string][]int64, n)
	for i := range streams {
		inputs := map[string][]int64{}
		for _, w := range res.Kernel.Reads {
			vals := make([]int64, w.Arr.Len())
			for j := range vals {
				vals[j] = rng.Int63n(511) - 256
			}
			inputs[w.Arr.Name] = vals
		}
		streams[i] = inputs
	}
	return streams
}

// TestSysBatchTable1 runs every streamable Table 1 row — including the
// mul_acc feedback kernel, whose 1024-iteration nest has no read arrays
// at all — through both dispatch paths.
func TestSysBatchTable1(t *testing.T) {
	rng := rand.New(rand.NewSource(20260726))
	for _, backend := range dp.Backends() {
		sawStreak := false
		for _, k := range bench.All() {
			res, err := k.Compile()
			if err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			cfg := Config{BusElems: k.BusElems, Scalars: k.Scalars, Backend: backend}
			if _, err := NewSystem(res.Kernel, res.Datapath, cfg); err != nil {
				continue // combinational row: no loop nest to stream
			}
			bc := diffRun(t, res, cfg, randStreams(res, rng, 4), k.Name)
			if bc > 0 {
				sawStreak = true
			}
		}
		if !sawStreak {
			t.Fatalf("[%v] no Table 1 kernel dispatched a single streak chunk; the batch path never engaged", backend)
		}
	}
}

// TestSysBatchFuzzGeometry fuzzes the window geometry — tap offsets,
// stride vs bus width (supply-limited, balanced and supply-rich
// regimes), and 2-D strips — so the streak predictor sees every
// backpressure schedule, including ones where it must refuse to batch.
func TestSysBatchFuzzGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for ki := 0; ki < 24; ki++ {
		stride := 1 + rng.Intn(3)
		iters := 8 + rng.Intn(24)
		ntaps := 1 + rng.Intn(4)
		maxOff := 0
		taps := make([]int, ntaps)
		for i := range taps {
			taps[i] = rng.Intn(4)
			if taps[i] > maxOff {
				maxOff = taps[i]
			}
		}
		alen := stride*(iters-1) + maxOff + 1
		var expr strings.Builder
		for i, off := range taps {
			if i > 0 {
				expr.WriteString(" + ")
			}
			fmt.Fprintf(&expr, "%d*A[%d*i+%d]", rng.Intn(9)-4, stride, off)
		}
		src := fmt.Sprintf(`
int A[%d];
int C[%d];
void k() {
	int i;
	for (i = 0; i < %d; i = i + 1) {
		C[i] = %s;
	}
}
`, alen, iters, iters, expr.String())
		res, err := core.CompileSource(src, "k", core.Options{Optimize: ki%2 == 0, PeriodNs: 5})
		if err != nil {
			t.Fatalf("kernel %d: %v\n%s", ki, err, src)
		}
		bus := 1 + rng.Intn(4)
		tag := fmt.Sprintf("fuzz%d(stride=%d,bus=%d,taps=%d)", ki, stride, bus, ntaps)
		diffRun(t, res, Config{BusElems: bus}, randStreams(res, rng, 3), tag)
	}
}

// TestSysBatch2DStencils covers the row-strip boundary logic: 2-D
// windows stream strip by strip, and the predictor must stop each
// streak at the strip edge (the next strip needs whole new image rows).
func TestSysBatch2DStencils(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		rows, cols int
		eh, ew     int // window extent
		bus        int
	}{
		{10, 10, 3, 3, 1},
		{12, 12, 2, 4, 2},
		{9, 16, 3, 2, 4},
	} {
		var expr strings.Builder
		for r := 0; r < tc.eh; r++ {
			for c := 0; c < tc.ew; c++ {
				if r+c > 0 {
					expr.WriteString(" + ")
				}
				fmt.Fprintf(&expr, "%d*img[i+%d][j+%d]", rng.Intn(7)-3, r, c)
			}
		}
		oh, ow := tc.rows-tc.eh+1, tc.cols-tc.ew+1
		src := fmt.Sprintf(`
int img[%d][%d];
int out[%d][%d];
void k() {
	int i; int j;
	for (i = 0; i < %d; i++)
		for (j = 0; j < %d; j++)
			out[i][j] = %s;
}
`, tc.rows, tc.cols, oh, ow, oh, ow, expr.String())
		res, err := core.CompileSource(src, "k", core.DefaultOptions())
		if err != nil {
			t.Fatalf("stencil %dx%d: %v\n%s", tc.eh, tc.ew, err, src)
		}
		tag := fmt.Sprintf("stencil%dx%d(bus=%d)", tc.eh, tc.ew, tc.bus)
		diffRun(t, res, Config{BusElems: tc.bus}, randStreams(res, rng, 2), tag)
	}
}

// TestSysBatchFaultParity plants divide-by-zero faults on valid
// iterations at positions spanning fill, steady-state and drain-adjacent
// cycles; both paths must abort with the identical *dp.FaultError
// (operator class, data-path cycle, message) and the identical system
// cycle count, and clean streams through the same divider must agree
// end to end (drain bubbles feed the divider zeros that poison must
// mask).
func TestSysBatchFaultParity(t *testing.T) {
	const n = 24
	src := fmt.Sprintf(`
int A[%d];
int B[%d];
int Q[%d];
void divide() {
	int i;
	for (i = 0; i < %d; i++) {
		Q[i] = A[i] / B[i];
	}
}
`, n, n, n, n)
	res, err := core.CompileSource(src, "divide", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var streams []map[string][]int64
	mk := func(zeroAt int) map[string][]int64 {
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i] = rng.Int63n(2000) - 1000
			b[i] = rng.Int63n(97) + 1
			if rng.Intn(2) == 0 {
				b[i] = -b[i]
			}
		}
		if zeroAt >= 0 {
			b[zeroAt] = 0
		}
		return map[string][]int64{"A": a, "B": b}
	}
	streams = append(streams, mk(-1)) // clean: bubbles must stay masked
	for _, at := range []int{0, 1, 5, n / 2, n - 2, n - 1} {
		streams = append(streams, mk(at))
	}
	for _, backend := range dp.Backends() {
		cfg := Config{BusElems: 1, Backend: backend}
		if bc := diffRun(t, res, cfg, streams, "divider"); bc == 0 {
			t.Fatalf("[%v] divider never dispatched a streak chunk; fault replay path untested", backend)
		}
	}
}

// TestSysBatchPoolPassthrough pins the pool plumbing: a SystemPool built
// without Config.Serial serves batched systems (the serve path inherits
// the streak speedup unchanged), and Put refuses a System whose dispatch
// path differs from the pool's configuration.
func TestSysBatchPoolPassthrough(t *testing.T) {
	k := bench.FIR()
	res, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{BusElems: k.BusElems}
	pool, err := NewSystemPool(res.Kernel, res.Datapath, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sys, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if sys.serial {
		t.Fatal("pool without Config.Serial built a serial System")
	}
	rng := rand.New(rand.NewSource(3))
	in := randStreams(res, rng, 1)[0]
	for name, vals := range in {
		if err := sys.LoadInput(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.BatchedCycles() == 0 {
		t.Fatal("pooled System.Run dispatched no streak cycles")
	}
	pool.Put(sys)

	scfg := cfg
	scfg.Serial = true
	foreign, err := NewSystem(res.Kernel, res.Datapath, scfg)
	if err != nil {
		t.Fatal(err)
	}
	before := pool.Stats()
	pool.Put(foreign)
	after := pool.Stats()
	if after.Rejected != before.Rejected+1 {
		t.Fatalf("serial System admitted into a batched pool (rejected %d -> %d)", before.Rejected, after.Rejected)
	}

	// A System on a different execution backend must be rejected too —
	// an interp pool fed a threaded System (or vice versa) would silently
	// change the dispatch path of later Gets.
	bcfg := cfg
	bcfg.Backend = dp.BackendThreaded
	alien, err := NewSystem(res.Kernel, res.Datapath, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	before = pool.Stats()
	pool.Put(alien)
	after = pool.Stats()
	if after.Rejected != before.Rejected+1 {
		t.Fatalf("threaded System admitted into an interp pool (rejected %d -> %d)", before.Rejected, after.Rejected)
	}
	if after.Puts != before.Puts {
		t.Fatalf("backend-mismatched Put also counted as accepted (puts %d -> %d)", before.Puts, after.Puts)
	}
}
