package netlist

import (
	"fmt"
	"math/bits"

	"roccc/internal/ctrl"
	"roccc/internal/dp"
	"roccc/internal/hir"
	"roccc/internal/smartbuf"
)

// System wires one compiled kernel into the Fig. 2 execution model:
// input BRAMs feed smart buffers through read address generators, the
// pipelined data path consumes one window set per cycle, and write
// address generators place results into output BRAMs. A top-level
// controller FSM sequences everything.
type System struct {
	Kernel   *hir.Kernel
	Datapath *dp.Datapath

	BusElems int

	inBRAMs  map[string]*BRAM
	outBRAMs map[string]*BRAM
	buffers  []*smartbuf.Buffer
	readGens []*ctrl.ReadGen
	writes   []*writeBinding
	ctl      *ctrl.Controller

	// input assembly: position of each dp input port.
	inputIndex map[*hir.Var]int
	scalars    map[*hir.Var]int64

	// fedRing mirrors the data-path valid pipeline for output
	// harvesting: only the last Latency()+1 cycles are ever read, so a
	// power-of-two ring (indexed by cycle&fedMask) bounds memory on
	// arbitrarily long runs.
	fedRing []bool
	fedMask int

	cycles int
}

type writeBinding struct {
	gen  *ctrl.WriteGen
	bram *BRAM
	// outIdx maps each write element to its dp output position.
	outIdx []int
}

// Config for system construction.
type Config struct {
	// BusElems is the memory bus width in elements per cycle.
	BusElems int
	// Scalars provides values for kernel-level scalar parameters.
	Scalars map[string]int64
}

// NewSystem builds the full system for a compiled kernel.
func NewSystem(k *hir.Kernel, d *dp.Datapath, cfg Config) (*System, error) {
	if cfg.BusElems <= 0 {
		cfg.BusElems = 1
	}
	if k.Nest.Depth() == 0 {
		return nil, fmt.Errorf("netlist: kernel %s has no loop nest; simulate its data path directly", k.Name)
	}
	sys := &System{
		Kernel:     k,
		Datapath:   d,
		BusElems:   cfg.BusElems,
		inBRAMs:    map[string]*BRAM{},
		outBRAMs:   map[string]*BRAM{},
		inputIndex: map[*hir.Var]int{},
		scalars:    map[*hir.Var]int64{},
	}
	for i, p := range d.Inputs {
		sys.inputIndex[p.Var] = i
	}
	outIndex := map[*hir.Var]int{}
	for i, p := range d.Outputs {
		outIndex[p.Var] = i
	}
	// Read side: one BRAM + address generator + smart buffer per window.
	for _, w := range k.Reads {
		bcfg, err := smartbuf.ConfigFor(w, &k.Nest, cfg.BusElems)
		if err != nil {
			return nil, err
		}
		buf, err := smartbuf.New(bcfg)
		if err != nil {
			return nil, err
		}
		sys.buffers = append(sys.buffers, buf)
		sys.readGens = append(sys.readGens, ctrl.NewReadGen(w.Arr.Len(), cfg.BusElems))
		sys.inBRAMs[w.Arr.Name] = NewBRAM(w.Arr.Name, w.Arr.Len(), w.Arr.Elem.Bits)
	}
	// Write side.
	for _, acc := range k.Writes {
		gen, err := ctrl.NewWriteGen(acc, &k.Nest)
		if err != nil {
			return nil, err
		}
		wb := &writeBinding{gen: gen, bram: NewBRAM(acc.Arr.Name, acc.Arr.Len(), acc.Arr.Elem.Bits)}
		for _, e := range acc.Elems {
			ix, ok := outIndex[e.Elem]
			if !ok {
				return nil, fmt.Errorf("netlist: write element %s has no dp output", e.Elem.Name)
			}
			wb.outIdx = append(wb.outIdx, ix)
		}
		sys.outBRAMs[acc.Arr.Name] = wb.bram
		sys.writes = append(sys.writes, wb)
	}
	// Scalar parameters.
	for _, prm := range k.ScalarParams {
		v, ok := cfg.Scalars[prm.Name]
		if !ok {
			return nil, fmt.Errorf("netlist: missing value for scalar parameter %q", prm.Name)
		}
		sys.scalars[prm] = v
	}
	total := int(k.Nest.TotalIterations())
	sys.ctl = ctrl.NewController(total, d.Latency())
	// Smallest power of two holding Latency()+1 entries.
	ringLen := 1 << bits.Len(uint(d.Latency()))
	sys.fedRing = make([]bool, ringLen)
	sys.fedMask = ringLen - 1
	return sys, nil
}

// LoadInput preloads an input array's BRAM (the off-chip engine's load).
func (s *System) LoadInput(name string, vals []int64) error {
	m, ok := s.inBRAMs[name]
	if !ok {
		return fmt.Errorf("netlist: no input array %q", name)
	}
	m.Load(vals)
	return nil
}

// Output returns the contents of an output BRAM after Run.
func (s *System) Output(name string) ([]int64, error) {
	m, ok := s.outBRAMs[name]
	if !ok {
		return nil, fmt.Errorf("netlist: no output array %q", name)
	}
	cp := make([]int64, len(m.Data))
	copy(cp, m.Data)
	return cp, nil
}

// Cycles returns the clock cycles consumed by Run.
func (s *System) Cycles() int { return s.cycles }

// FeedbackValue returns a feedback latch's final value (e.g. the
// accumulator sum after the loop).
func (s *System) FeedbackValue(sim *dp.Sim, name string) (int64, bool) {
	for v, val := range sim.State {
		if v.Name == name {
			return val, true
		}
	}
	return 0, false
}

// Run executes the whole kernel: it streams every array element from
// BRAM through the smart buffers exactly once, pushes one iteration per
// cycle into the data path when windows are ready, and writes results
// back. It returns the data-path simulator (for feedback state) and the
// consumed cycle count.
func (s *System) Run() (*dp.Sim, error) {
	sim := dp.NewSim(s.Datapath)
	d := s.Datapath
	k := s.Kernel
	lat := d.Latency()
	total := int(k.Nest.TotalIterations())
	harvested := 0
	iterOdo := newOdometer(&k.Nest)
	limit := 4*total + 16*(lat+2) + 64
	inputs := make([]int64, len(d.Inputs))

	for harvested < total {
		if s.cycles > limit {
			return nil, fmt.Errorf("netlist: cycle limit exceeded (%d cycles, %d/%d outputs)", s.cycles, harvested, total)
		}
		// 1. Memory stage: each read port fetches up to BusElems
		// elements and pushes them into its smart buffer.
		for i, buf := range s.buffers {
			gen := s.readGens[i]
			if gen.Done() || !buf.CanAccept() {
				continue // backpressure: window data still live
			}
			addrs := gen.Next()
			word := make([]int64, len(addrs))
			bram := s.inBRAMs[k.Reads[i].Arr.Name]
			for j, a := range addrs {
				v, err := bram.Read(a)
				if err != nil {
					return nil, err
				}
				word[j] = v
			}
			if err := buf.Push(word); err != nil {
				return nil, err
			}
		}
		// 2. Window readiness across every read port.
		ready := true
		for _, buf := range s.buffers {
			if !buf.WindowReady() {
				ready = false
			}
		}
		feed := s.ctl.Tick(ready)
		var outs []int64
		var err error
		if feed {
			for j := range inputs {
				inputs[j] = 0
			}
			for bi, buf := range s.buffers {
				win, err := buf.PopWindow()
				if err != nil {
					return nil, err
				}
				for ei, e := range k.Reads[bi].Elems {
					inputs[s.inputIndex[e.Elem]] = win[ei]
				}
			}
			for lv, in := range k.IVInputs {
				inputs[s.inputIndex[in]] = iterOdo.value(lv)
			}
			for prm, v := range s.scalars {
				inputs[s.inputIndex[prm]] = v
			}
			iterOdo.advance()
			s.fedRing[s.cycles&s.fedMask] = true
			outs, err = sim.Step(inputs)
		} else {
			s.fedRing[s.cycles&s.fedMask] = false
			outs, err = sim.Drain()
		}
		if err != nil {
			return nil, err
		}
		// 3. Harvest: the outputs visible now belong to the iteration
		// admitted lat cycles ago.
		exit := s.cycles - lat
		if exit >= 0 && s.fedRing[exit&s.fedMask] {
			for _, wb := range s.writes {
				addrs := wb.gen.Next()
				if addrs == nil {
					return nil, fmt.Errorf("netlist: write generator exhausted early")
				}
				for ei, a := range addrs {
					if err := wb.bram.Write(a, outs[wb.outIdx[ei]]); err != nil {
						return nil, err
					}
				}
			}
			s.ctl.Collect()
			harvested++
		}
		s.cycles++
	}
	return sim, nil
}

// odometer walks the loop nest iteration space in row-major order,
// mirroring the smart buffer's window order.
type odometer struct {
	nest *hir.LoopNest
	iter []int64
}

func newOdometer(nest *hir.LoopNest) *odometer {
	return &odometer{nest: nest, iter: make([]int64, nest.Depth())}
}

func (o *odometer) value(v *hir.Var) int64 {
	for l, nv := range o.nest.Vars {
		if nv == v {
			return o.nest.From[l] + o.iter[l]*o.nest.Step[l]
		}
	}
	return 0
}

func (o *odometer) advance() {
	for l := o.nest.Depth() - 1; l >= 0; l-- {
		o.iter[l]++
		if o.iter[l] < o.nest.Trips(l) {
			return
		}
		o.iter[l] = 0
	}
}
