package netlist

import (
	"errors"
	"fmt"
	"math/bits"

	"roccc/internal/ctrl"
	"roccc/internal/dp"
	"roccc/internal/hir"
	"roccc/internal/smartbuf"
)

// ErrCombinational is the sentinel inside every NewSystem failure for a
// kernel without a loop nest (fully unrolled bit-level kernels, LUTs):
// such kernels have no memory system to stream through and must be
// simulated at the data-path level instead. Services and the
// calibration plane match it with errors.Is to distinguish "cannot
// stream, skip" from a real build failure.
var ErrCombinational = errors.New("no loop nest")

// System wires one compiled kernel into the Fig. 2 execution model:
// input BRAMs feed smart buffers through read address generators, the
// pipelined data path consumes one window set per cycle, and write
// address generators place results into output BRAMs. A top-level
// controller FSM sequences everything.
//
// A System is compiled: NewSystem resolves every per-cycle decision that
// does not depend on data — window-tap→input routing, induction-variable
// and scalar input positions, the loop-nest odometer, buffer sizes —
// into a sysPlan of dense integer tables, so the Run cycle loop performs
// no map lookups and no allocations. Plans are cached by
// (kernel, datapath, bus width) identity: sweep-style repeated NewSystem
// calls skip recompilation.
//
// Lifecycle: LoadInput → Run → Output/FeedbackValue. Run consumes the
// address generators and smart buffers, so a second Run without an
// intervening Reset returns an error instead of silently mis-executing;
// Reset rewinds everything (without allocating) for the next run.
type System struct {
	Kernel   *hir.Kernel
	Datapath *dp.Datapath

	BusElems int

	plan *sysPlan
	sim  *dp.Sim

	inBRAMs  map[string]*BRAM
	outBRAMs map[string]*BRAM
	// readBRAMs/writeBRAMs are the same BRAMs in plan order, so the cycle
	// loop indexes instead of hashing names.
	readBRAMs  []*BRAM
	writeBRAMs []*BRAM
	buffers    []*smartbuf.Buffer
	readGens   []*ctrl.ReadGen
	writeGens  []*ctrl.WriteGen
	ctl        *ctrl.Controller

	// scalarVals are the scalar parameter values, aligned with
	// plan.scalarIn.
	scalarVals []int64

	// Preallocated cycle-loop buffers: the data-path input vector and
	// per-write address buffers (bus words stream as BRAM views).
	inputs     []int64
	writeAddrs [][]int

	// iter is the dense loop-nest odometer (counters per level,
	// outermost first); IV values derive from plan.from/step.
	iter []int64

	// serial forces the one-Step-per-cycle dispatch path; the default
	// Run hands guaranteed-feed streaks to dp.Sim.StepN (sysbatch.go).
	serial bool
	// stage is the flat input staging region of one streak chunk (up to
	// sysChunkMax rows of len(inputs) values each); fedPre snapshots the
	// pre-chunk fed bits a chunk's harvest replay needs before the
	// chunk's own fedRing writes can wrap over them.
	stage  []int64
	fedPre []bool

	// fedRing mirrors the data-path valid pipeline for output
	// harvesting: only the last Latency()+1 cycles are ever read, so a
	// power-of-two ring (indexed by cycle&fedMask) bounds memory on
	// arbitrarily long runs.
	fedRing []bool
	fedMask int

	cycles int
	// batched counts the cycles Run dispatched through the streak path
	// (StepN chunks plus the DrainN tail) — observability for tests and
	// the sysbatch sweep table.
	batched   int
	started   bool
	completed bool
}

// sysPlan is the compiled, immutable part of a System, shared by every
// System over the same (kernel, datapath, bus width) triple.
type sysPlan struct {
	reads    []readPlan
	writes   []writePlan
	ivs      []ivPlan
	scalarIn []int // dp input index per Kernel.ScalarParams entry (-1: unused)
	total    int   // loop nest iterations
	latency  int
	fedMask  int
	// needClear reports whether any data-path input is covered by no
	// window route, IV or scalar: only then must the input vector be
	// zeroed before a feed cycle (otherwise every slot is overwritten).
	needClear bool
	// Dense loop nest: level l counts iter[l] in [0,trips[l]) and the IV
	// value is from[l] + iter[l]*step[l].
	from, step []int64
	trips      []int64
}

// readPlan compiles one input window: its smart-buffer configuration and
// the dense routing table from window taps to data-path input ports.
type readPlan struct {
	cfg      smartbuf.Config
	arrName  string
	arrLen   int
	elemBits int
	// route maps window tap index -> dp input index (-1: unused), in the
	// int32 form smartbuf.PopWindowRouted consumes, so the feed stage
	// pops taps straight into the staged input row.
	route []int32
}

// ivPlan routes one loop induction variable into a data-path input.
type ivPlan struct {
	in    int // dp input index
	level int // nest level
}

// writePlan compiles one output access pattern: the BRAM geometry and
// the dense routing table from write elements to data-path outputs.
type writePlan struct {
	acc      *hir.WriteAccess
	arrName  string
	arrLen   int
	elemBits int
	outIdx   []int // write element -> dp output index
}

type planKey struct {
	d   *dp.Datapath
	bus int
}

// planFor returns the compiled system plan for (kernel, datapath, bus),
// building it on first use. Plans are cached on the kernel itself
// (hir.Kernel.PlanCache) rather than in a package-global map, so sweeps
// that rebuild the System for the same compiled kernel (ablation and
// unroll studies, benchmarks) skip recompilation while the cache is
// reclaimed together with the kernel — nothing outlives its key.
func planFor(k *hir.Kernel, d *dp.Datapath, bus int) (*sysPlan, error) {
	key := planKey{d: d, bus: bus}
	if p, ok := k.PlanCache.Load(key); ok {
		return p.(*sysPlan), nil
	}
	p, err := compileSysPlan(k, d, bus)
	if err != nil {
		return nil, err
	}
	sysVerifyHook(p, k, d)
	actual, _ := k.PlanCache.LoadOrStore(key, p)
	return actual.(*sysPlan), nil
}

// compileSysPlan resolves every data-independent per-cycle decision into
// dense integer tables.
func compileSysPlan(k *hir.Kernel, d *dp.Datapath, bus int) (*sysPlan, error) {
	inputIndex := make(map[*hir.Var]int, len(d.Inputs))
	for i, p := range d.Inputs {
		inputIndex[p.Var] = i
	}
	outIndex := make(map[*hir.Var]int, len(d.Outputs))
	for i, p := range d.Outputs {
		outIndex[p.Var] = i
	}
	p := &sysPlan{
		total:   int(k.Nest.TotalIterations()),
		latency: d.Latency(),
	}
	// Dense loop nest.
	for l := range k.Nest.Vars {
		p.from = append(p.from, k.Nest.From[l])
		p.step = append(p.step, k.Nest.Step[l])
		p.trips = append(p.trips, k.Nest.Trips(l))
	}
	// Read side: one window per input array.
	for _, w := range k.Reads {
		bcfg, err := smartbuf.ConfigFor(w, &k.Nest, bus)
		if err != nil {
			return nil, err
		}
		rp := readPlan{
			cfg:      bcfg,
			arrName:  w.Arr.Name,
			arrLen:   w.Arr.Len(),
			elemBits: w.Arr.Elem.Bits,
			route:    make([]int32, len(w.Elems)),
		}
		for ei, e := range w.Elems {
			ix, ok := inputIndex[e.Elem]
			if !ok {
				ix = -1 // window tap unused by the data path (e.g. DCE'd)
			}
			rp.route[ei] = int32(ix)
		}
		p.reads = append(p.reads, rp)
	}
	// Write side.
	for _, acc := range k.Writes {
		wp := writePlan{
			acc:      acc,
			arrName:  acc.Arr.Name,
			arrLen:   acc.Arr.Len(),
			elemBits: acc.Arr.Elem.Bits,
		}
		for _, e := range acc.Elems {
			ix, ok := outIndex[e.Elem]
			if !ok {
				return nil, fmt.Errorf("netlist: write element %s has no dp output", e.Elem.Name)
			}
			wp.outIdx = append(wp.outIdx, ix)
		}
		p.writes = append(p.writes, wp)
	}
	// Induction-variable inputs.
	for lv, in := range k.IVInputs {
		ix, ok := inputIndex[in]
		if !ok {
			continue // IV input eliminated from the data path
		}
		level := -1
		for l, v := range k.Nest.Vars {
			if v == lv {
				level = l
			}
		}
		if level < 0 {
			return nil, fmt.Errorf("netlist: IV input %s is not a nest variable", lv.Name)
		}
		p.ivs = append(p.ivs, ivPlan{in: ix, level: level})
	}
	// Scalar parameters (values bind at NewSystem, positions here).
	for _, prm := range k.ScalarParams {
		ix, ok := inputIndex[prm]
		if !ok {
			ix = -1
		}
		p.scalarIn = append(p.scalarIn, ix)
	}
	// Smallest power of two holding Latency()+1 entries.
	p.fedMask = 1<<bits.Len(uint(p.latency)) - 1
	// A feed cycle must clear the input vector only when some data-path
	// input receives no routed value (e.g. a port whose producer was
	// eliminated): with full coverage every slot is overwritten anyway.
	covered := make([]bool, len(d.Inputs))
	for _, rp := range p.reads {
		for _, ix := range rp.route {
			if ix >= 0 {
				covered[ix] = true
			}
		}
	}
	for _, iv := range p.ivs {
		covered[iv.in] = true
	}
	for _, ix := range p.scalarIn {
		if ix >= 0 {
			covered[ix] = true
		}
	}
	for _, c := range covered {
		if !c {
			p.needClear = true
			break
		}
	}
	return p, nil
}

// Config for system construction.
type Config struct {
	// BusElems is the memory bus width in elements per cycle.
	BusElems int
	// Scalars provides values for kernel-level scalar parameters.
	Scalars map[string]int64
	// Serial forces the one-Step-per-cycle dispatch path instead of the
	// streak-batched default — the differential baseline for tests and
	// benchmarks. Both paths are bit-identical on outputs, feedback
	// latches, cycle counts and fault abort cycles.
	Serial bool
	// Backend selects the data-path execution backend (interp, threaded,
	// cone). The zero value is the interpreter reference; every backend
	// is bit-identical on outputs, feedback latches, cycle counts and
	// fault abort cycles.
	Backend dp.Backend
}

// NewSystem builds the full system for a compiled kernel.
func NewSystem(k *hir.Kernel, d *dp.Datapath, cfg Config) (*System, error) {
	if cfg.BusElems <= 0 {
		cfg.BusElems = 1
	}
	if k.Nest.Depth() == 0 {
		return nil, fmt.Errorf("netlist: kernel %s has %w; simulate its data path directly", k.Name, ErrCombinational)
	}
	plan, err := planFor(k, d, cfg.BusElems)
	if err != nil {
		return nil, err
	}
	sys := &System{
		Kernel:   k,
		Datapath: d,
		BusElems: cfg.BusElems,
		plan:     plan,
		sim:      dp.NewSimWith(d, cfg.Backend),
		inBRAMs:  map[string]*BRAM{},
		outBRAMs: map[string]*BRAM{},
		inputs:   make([]int64, len(d.Inputs)),
		iter:     make([]int64, len(plan.from)),
		fedRing:  make([]bool, plan.fedMask+1),
		fedMask:  plan.fedMask,
		serial:   cfg.Serial,
		stage:    make([]int64, min(plan.total, sysChunkMax)*len(d.Inputs)),
		fedPre:   make([]bool, plan.latency),
	}
	for _, rp := range plan.reads {
		buf, err := smartbuf.New(rp.cfg)
		if err != nil {
			return nil, err
		}
		bram := NewBRAM(rp.arrName, rp.arrLen, rp.elemBits)
		sys.buffers = append(sys.buffers, buf)
		sys.readGens = append(sys.readGens, ctrl.NewReadGen(rp.arrLen, cfg.BusElems))
		sys.readBRAMs = append(sys.readBRAMs, bram)
		sys.inBRAMs[rp.arrName] = bram
	}
	for _, wp := range plan.writes {
		gen, err := ctrl.NewWriteGen(wp.acc, &k.Nest)
		if err != nil {
			return nil, err
		}
		bram := NewBRAM(wp.arrName, wp.arrLen, wp.elemBits)
		sys.writeGens = append(sys.writeGens, gen)
		sys.writeBRAMs = append(sys.writeBRAMs, bram)
		sys.outBRAMs[wp.arrName] = bram
		sys.writeAddrs = append(sys.writeAddrs, make([]int, len(wp.outIdx)))
	}
	for _, prm := range k.ScalarParams {
		v, ok := cfg.Scalars[prm.Name]
		if !ok {
			return nil, fmt.Errorf("netlist: missing value for scalar parameter %q", prm.Name)
		}
		sys.scalarVals = append(sys.scalarVals, v)
	}
	sys.ctl = ctrl.NewController(plan.total, plan.latency)
	return sys, nil
}

// LoadInput preloads an input array's BRAM (the off-chip engine's load).
func (s *System) LoadInput(name string, vals []int64) error {
	m, ok := s.inBRAMs[name]
	if !ok {
		return fmt.Errorf("netlist: no input array %q", name)
	}
	m.Load(vals)
	return nil
}

// Output returns the contents of an output BRAM. It errors until a Run
// has completed: before that the BRAM holds all-zero (or stale) data
// indistinguishable from a real result.
func (s *System) Output(name string) ([]int64, error) {
	m, ok := s.outBRAMs[name]
	if !ok {
		return nil, fmt.Errorf("netlist: no output array %q", name)
	}
	if !s.completed {
		return nil, fmt.Errorf("netlist: Output(%q) before a completed Run", name)
	}
	cp := make([]int64, len(m.Data))
	copy(cp, m.Data)
	return cp, nil
}

// OutputInto copies an output BRAM's contents into a caller-provided
// buffer of exactly the array's length, so sweep loops harvest results
// without allocating. Like Output, it errors until a Run has completed.
func (s *System) OutputInto(name string, dst []int64) error {
	m, ok := s.outBRAMs[name]
	if !ok {
		return fmt.Errorf("netlist: no output array %q", name)
	}
	if !s.completed {
		return fmt.Errorf("netlist: OutputInto(%q) before a completed Run", name)
	}
	if len(dst) != len(m.Data) {
		return fmt.Errorf("netlist: OutputInto(%q): buffer holds %d elements, array has %d", name, len(dst), len(m.Data))
	}
	copy(dst, m.Data)
	return nil
}

// Cycles returns the clock cycles consumed by Run.
func (s *System) Cycles() int { return s.cycles }

// Backend returns the data-path execution backend this system was
// built with.
func (s *System) Backend() dp.Backend { return s.sim.Backend() }

// HasClosedFormCone reports whether the system's data-path plan carries
// a closed-form feedback cone (the prefix-sum vectorization of ADD-cone
// latch recurrences). Observability surfaces expose it so operators can
// see which kernels' feedback paths vectorize and which fall back to
// lane-serial execution.
func (s *System) HasClosedFormCone() bool { return s.sim.HasClosedFormCone() }

// BatchedCycles returns how many of Run's cycles were dispatched
// through the streak-batched path (StepN chunks and the DrainN tail);
// the rest took the serial per-cycle path. Zero on a Config.Serial
// system.
func (s *System) BatchedCycles() int { return s.batched }

// FeedbackValue returns a feedback latch's final value (e.g. the
// accumulator sum after the loop). The lookup uses the simulator's
// precompiled name→latch index: O(1) and deterministic under name
// collisions (first latch in plan order wins), unlike scanning a map.
func (s *System) FeedbackValue(sim *dp.Sim, name string) (int64, bool) {
	return sim.FeedbackByName(name)
}

// Reset rewinds the system to its pre-Run state without allocating:
// address generators, smart buffers, the controller FSM, the data-path
// simulator and all cycle bookkeeping restart from zero. Input BRAM
// contents are kept (reload with LoadInput to change them); output BRAM
// contents are cleared; BRAM access counters restart so per-run
// properties (fetch-once) stay checkable.
func (s *System) Reset() {
	for _, g := range s.readGens {
		g.Reset()
	}
	for _, g := range s.writeGens {
		g.Reset()
	}
	for _, b := range s.buffers {
		b.Reset()
	}
	for _, m := range s.readBRAMs {
		m.ResetStats()
	}
	for _, m := range s.writeBRAMs {
		m.ResetStats()
		clear(m.Data)
	}
	s.ctl.Reset()
	s.sim.Reset()
	clear(s.fedRing)
	clear(s.iter)
	s.cycles = 0
	s.batched = 0
	s.started = false
	s.completed = false
}

// SetSerial toggles the one-Step-per-cycle dispatch path (see
// Config.Serial) without rebuilding the System. It must not be flipped
// mid-run.
func (s *System) SetSerial(on bool) { s.serial = on }

// Run executes the whole kernel: it streams every array element from
// BRAM through the smart buffers exactly once, pushes one iteration per
// cycle into the data path when windows are ready, and writes results
// back. It returns the data-path simulator (for feedback state) and the
// consumed cycle count. Pipeline bubbles (fill and drain cycles) are
// poisoned in the data path, so kernels with input-dependent divisors do
// not fault while flushing; a genuine fault on a valid iteration still
// aborts the run. Run consumes the system's generators and buffers: call
// Reset before running again.
//
// Run dispatches guaranteed-feed streaks — runs of cycles for which
// every read port is provably WindowReady — through dp.Sim.StepN in one
// call per streak (sysbatch.go); stall and fill cycles take the serial
// per-cycle path below. Both paths are bit-identical on outputs,
// feedback latches, cycle counts and fault abort cycles.
//
//roccc:hotpath
func (s *System) Run() (*dp.Sim, error) {
	if s.started {
		return nil, fmt.Errorf("netlist: System.Run called again without Reset (address generators and smart buffers were consumed by the previous run)")
	}
	s.started = true
	p := s.plan
	lat := p.latency
	total := p.total
	harvested := 0
	limit := 4*total + 16*(lat+2) + 64
	inputs := s.inputs

	for harvested < total {
		if s.cycles > limit {
			return nil, fmt.Errorf("netlist: cycle limit exceeded (%d cycles, %d/%d outputs)", s.cycles, harvested, total)
		}
		// 1. Memory stage: each read port fetches up to BusElems
		// elements and pushes them into its smart buffer.
		if err := s.memoryStage(); err != nil {
			return nil, err
		}
		// Streak dispatch: when the predictor proves the next k cycles
		// all feed, they run through one StepN call instead of k Step
		// dispatches; a final streak also batches the drain tail, and a
		// proven stall (fill, or a 2-D sweep waiting on its next row
		// strip) batches its bubbles through DrainN. Both chunk sizes
		// stay under the runaway limit so a pathological geometry still
		// errors on the same cycle as the serial loop.
		if !s.serial {
			if k := min(s.feedStreak(), limit+1-s.cycles); k >= sysBatchMin {
				var err error
				harvested, err = s.runStreak(k, harvested)
				if err != nil {
					return nil, err
				}
				if s.ctl.Fed() == total && harvested < total {
					harvested, err = s.drainTail(harvested)
					if err != nil {
						return nil, err
					}
				}
				continue
			}
			if m := min(s.stallStreak(), limit+1-s.cycles); m >= sysBatchMin {
				var err error
				harvested, err = s.runStall(m, harvested)
				if err != nil {
					return nil, err
				}
				continue
			}
		}
		// 2. Window readiness across every read port.
		ready := true
		for _, buf := range s.buffers {
			if !buf.WindowReady() {
				ready = false
				break
			}
		}
		feed := s.ctl.Tick(ready)
		var outs []int64
		var err error
		if feed {
			if p.needClear {
				clear(inputs)
			}
			if err := s.fillInputs(inputs); err != nil {
				return nil, err
			}
			s.fedRing[s.cycles&s.fedMask] = true
			outs, err = s.sim.Step(inputs)
		} else {
			s.fedRing[s.cycles&s.fedMask] = false
			outs, err = s.sim.Drain()
		}
		if err != nil {
			return nil, err
		}
		// 3. Harvest: the outputs visible now belong to the iteration
		// admitted lat cycles ago.
		exit := s.cycles - lat
		if exit >= 0 && s.fedRing[exit&s.fedMask] {
			if err := s.harvest(outs); err != nil {
				return nil, err
			}
			harvested++
		}
		s.cycles++
	}
	s.completed = true
	return s.sim, nil
}

// memoryStage runs one cycle of the memory stage: each read port whose
// generator has addresses left and whose smart buffer can accept a bus
// word fetches up to BusElems elements from BRAM and pushes them.
//
//roccc:hotpath
func (s *System) memoryStage() error {
	for i, buf := range s.buffers {
		gen := s.readGens[i]
		if gen.Done() || !buf.CanAccept() {
			continue // backpressure: window data still live
		}
		start, n := gen.NextRange()
		word, err := s.readBRAMs[i].ReadRange(start, n)
		if err != nil {
			return err
		}
		if err := buf.Push(word); err != nil {
			return err
		}
	}
	return nil
}

// fillInputs materializes one feed cycle's data-path input vector:
// window taps through the routing tables, induction-variable values off
// the odometer (which it advances), and scalar parameters. The caller
// zeroes the row first iff plan.needClear.
//
//roccc:hotpath
func (s *System) fillInputs(row []int64) error {
	p := s.plan
	for bi, buf := range s.buffers {
		if err := buf.PopWindowRouted(row, p.reads[bi].route); err != nil {
			return err
		}
	}
	// The odometer exists to value induction-variable inputs; kernels
	// whose IVs were eliminated from the data path (pure windowing) skip
	// it entirely.
	if len(p.ivs) > 0 {
		for _, iv := range p.ivs {
			row[iv.in] = p.from[iv.level] + s.iter[iv.level]*p.step[iv.level]
		}
		s.advanceOdometer()
	}
	for si, ix := range p.scalarIn {
		if ix >= 0 {
			row[ix] = s.scalarVals[si]
		}
	}
	return nil
}

// harvest writes one exited iteration's output-port values into the
// output BRAMs through the write address generators and records the
// completion with the controller.
//
//roccc:hotpath
func (s *System) harvest(outs []int64) error {
	p := s.plan
	for wi := range s.writeGens {
		addrs := s.writeGens[wi].NextInto(s.writeAddrs[wi])
		if addrs == nil {
			return fmt.Errorf("netlist: write generator exhausted early")
		}
		outIdx := p.writes[wi].outIdx
		bram := s.writeBRAMs[wi]
		for ei, a := range addrs {
			if err := bram.Write(a, outs[outIdx[ei]]); err != nil {
				return err
			}
		}
	}
	s.ctl.Collect()
	return nil
}

// advanceOdometer walks the loop nest iteration space in row-major
// order, mirroring the smart buffer's window order.
//
//roccc:hotpath
func (s *System) advanceOdometer() {
	for l := len(s.iter) - 1; l >= 0; l-- {
		s.iter[l]++
		if s.iter[l] < s.plan.trips[l] {
			return
		}
		s.iter[l] = 0
	}
}
