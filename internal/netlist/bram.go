// Package netlist is the cycle-level system model of the paper's
// execution model (Fig. 2): "An engine moves the data from off-chip to a
// BRAM storage. The compiler-generated circuit accesses the arrays in
// BRAM and stores the output data into another BRAM, from which an
// engine retrieves data into the off-chip memory. Inside the
// compiler-generated circuit, the data path is fully pipelined. The
// controllers and buffers are in charge of feeding input data and
// retrieving output data to and from the data path."
package netlist

import "fmt"

// BRAM models an on-chip block RAM holding one array, one element per
// address.
type BRAM struct {
	Name string
	Data []int64
	// ElemBits is the stored element width (for reporting only; values
	// are wrapped by the producers).
	ElemBits int
	reads    int
	writes   int
}

// NewBRAM allocates a block RAM of n elements.
func NewBRAM(name string, n, elemBits int) *BRAM {
	return &BRAM{Name: name, Data: make([]int64, n), ElemBits: elemBits}
}

// Load fills the BRAM from off-chip data (the engine's job).
func (m *BRAM) Load(vals []int64) {
	copy(m.Data, vals)
}

// Read returns the element at addr.
func (m *BRAM) Read(addr int) (int64, error) {
	if addr < 0 || addr >= len(m.Data) {
		return 0, fmt.Errorf("netlist: %s: read address %d out of range [0,%d)", m.Name, addr, len(m.Data))
	}
	m.reads++
	return m.Data[addr], nil
}

// ReadRange returns the n-element range starting at addr as a read-only
// view — one bounds check per bus word instead of one per element — and
// counts n reads. Callers must consume the view before the next Load.
func (m *BRAM) ReadRange(addr, n int) ([]int64, error) {
	if addr < 0 || addr+n > len(m.Data) {
		return nil, fmt.Errorf("netlist: %s: read range [%d,%d) out of range [0,%d)", m.Name, addr, addr+n, len(m.Data))
	}
	m.reads += n
	return m.Data[addr : addr+n], nil
}

// Write stores v at addr.
func (m *BRAM) Write(addr int, v int64) error {
	if addr < 0 || addr >= len(m.Data) {
		return fmt.Errorf("netlist: %s: write address %d out of range [0,%d)", m.Name, addr, len(m.Data))
	}
	m.writes++
	m.Data[addr] = v
	return nil
}

// Stats returns the access counters (reads, writes) — used to verify the
// smart buffer's fetch-once property at system level.
func (m *BRAM) Stats() (reads, writes int) { return m.reads, m.writes }

// ResetStats zeroes the access counters (the stored data is untouched),
// so the fetch-once property can be checked per run when a BRAM is
// reused across System resets.
func (m *BRAM) ResetStats() { m.reads, m.writes = 0, 0 }

// Engine models the off-chip transfer engine. Transfers are not on the
// compute critical path (the paper double-buffers them); the engine
// reports the cycles a transfer would take on a bus moving busElems
// elements per cycle.
type Engine struct {
	BusElems int
}

// LoadCycles returns the cycle cost of moving n elements on-chip.
func (e Engine) LoadCycles(n int) int {
	if e.BusElems <= 0 {
		return n
	}
	return (n + e.BusElems - 1) / e.BusElems
}
