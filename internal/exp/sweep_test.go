package exp

import "testing"

// TestSystemSweep: the sharded sweep must verify bit-identical against
// the serial path (systemSweep fails internally on any divergence) and
// report sane bookkeeping.
func TestSystemSweep(t *testing.T) {
	r, err := SystemSweep(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs != 12 || r.Workers != 3 {
		t.Fatalf("jobs/workers = %d/%d, want 12/3", r.Jobs, r.Workers)
	}
	if r.Cycles <= 0 {
		t.Fatal("no cycles recorded")
	}
	if r.Speedup <= 0 {
		t.Fatal("no speedup recorded")
	}
	if FormatSweeps([]*SweepResult{r}) == "" {
		t.Fatal("empty report")
	}
}

// TestDCTSystemSweep covers the wide-bus kernel path.
func TestDCTSystemSweep(t *testing.T) {
	r, err := DCTSystemSweep(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kernel != "dct" || r.Cycles <= 0 {
		t.Fatalf("unexpected result: %+v", r)
	}
}
