package exp

import (
	"strings"
	"testing"

	"roccc/internal/dp"
)

// TestSystemSweep: the sharded sweep must verify bit-identical against
// the serial path (systemSweep fails internally on any divergence) and
// report sane bookkeeping.
func TestSystemSweep(t *testing.T) {
	r, err := SystemSweep(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs != 12 || r.Workers != 3 {
		t.Fatalf("jobs/workers = %d/%d, want 12/3", r.Jobs, r.Workers)
	}
	if r.Cycles <= 0 {
		t.Fatal("no cycles recorded")
	}
	if r.Speedup <= 0 {
		t.Fatal("no speedup recorded")
	}
	if FormatSweeps([]*SweepResult{r}) == "" {
		t.Fatal("empty report")
	}
}

// TestDCTSystemSweep covers the wide-bus kernel path.
func TestDCTSystemSweep(t *testing.T) {
	r, err := DCTSystemSweep(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kernel != "dct" || r.Cycles <= 0 {
		t.Fatalf("unexpected result: %+v", r)
	}
}

// TestServeSweep is the serve acceptance harness: every Table 1 kernel
// served over TCP must be bit-identical to serial System.Run, the
// feedback row (mul_acc) must surface its latch, the fault kernel must
// abort with the serial cycle, and the combinational rows must be
// refused with a clear diagnosis.
func TestServeSweep(t *testing.T) {
	rows, err := ServeSweep(4)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ServeRow{}
	for _, r := range rows {
		byName[r.Kernel] = r
	}
	if len(rows) != 10 { // nine Table 1 rows + the fault divider
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for _, name := range []string{"mul_acc", "fir", "dct", "wavelet"} {
		r, ok := byName[name]
		if !ok || r.Skipped != "" || r.Streams != 4 {
			t.Errorf("%s: row %+v, want 4 served streams", name, r)
		}
	}
	for _, name := range []string{"bit_correlator", "udiv", "square_root", "cos", "arbitrary_lut"} {
		if r := byName[name]; r.Skipped == "" {
			t.Errorf("%s: combinational row was not skipped: %+v", name, r)
		}
	}
	if r := byName["divide_fault"]; r.Faults != 2 { // odd streams plant a zero
		t.Errorf("divide_fault: %d faults, want 2: %+v", r.Faults, r)
	}
	out := FormatServeSweep(rows)
	for _, want := range []string{"bit-identical", "divide_fault", "skipped"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q in:\n%s", want, out)
		}
	}
}

// TestFleetSweep is the Serve v2 acceptance harness: the pipelined
// client + router + sharded workers stack must be bit-identical to
// serial System.Run for every Table 1 kernel, the fault divider and the
// ci/corpus kernels, on all three execution backends — with every shard
// pool balanced after the concurrent storm. FleetSweep fails internally
// on any divergence, shed or leak; here we pin the matrix shape.
func TestFleetSweep(t *testing.T) {
	for _, b := range dp.Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			t.Parallel()
			rows, err := FleetSweep(3, 3, b, "../../ci/corpus", false)
			if err != nil {
				t.Fatal(err)
			}
			byName := map[string]ServeRow{}
			corpus, corpusStreamed := 0, 0
			for _, r := range rows {
				byName[r.Kernel] = r
				if strings.HasPrefix(r.Kernel, "corpus_") {
					corpus++
					if r.Skipped == "" {
						corpusStreamed++
					}
				}
			}
			// Straight-line corpus kernels (no loop nest) are verified via
			// the refusal path; the rest must stream bit-identical.
			if corpus < 5 || corpusStreamed < 3 {
				t.Fatalf("corpus coverage too thin: %d kernels, %d streamed", corpus, corpusStreamed)
			}
			for _, name := range []string{"mul_acc", "fir", "dct", "wavelet"} {
				if r := byName[name]; r.Skipped != "" || r.Streams != 3 {
					t.Errorf("%s: row %+v, want 3 served streams", name, r)
				}
			}
			if r := byName["divide_fault"]; r.Faults != 1 { // odd streams plant a zero
				t.Errorf("divide_fault: %d faults, want 1: %+v", r.Faults, r)
			}
			out := FormatFleetSweep(rows, 3)
			if !strings.Contains(out, "3 shards") || !strings.Contains(out, "bit-identical") {
				t.Errorf("unexpected table:\n%s", out)
			}
		})
	}
}

// TestFleetSweepCalibrated is the auto-pick differential gate: a fleet
// whose kernels were calibrated (noise-floor guard off, so winners
// actually take over the pools) must stay bit-identical to serial
// interp across Table 1, the fault divider and the ci/corpus kernels.
func TestFleetSweepCalibrated(t *testing.T) {
	rows, err := FleetSweep(3, 3, dp.BackendInterp, "../../ci/corpus", true)
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	for _, r := range rows {
		if r.Skipped == "" {
			streamed++
		}
	}
	if streamed < 8 {
		t.Fatalf("only %d kernels streamed through the calibrated fleet", streamed)
	}
}

// TestSysBatchSweep runs the serial-vs-streak system sweep small: the
// sweep fails on any bit divergence, so a passing run certifies the
// streak-batched Run across the Table 1 matrix end to end.
func TestSysBatchSweep(t *testing.T) {
	rows, err := SysBatchSweep(2, dp.BackendThreaded)
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	for _, r := range rows {
		if r.Skipped == "" {
			streamed++
			if r.BatchedPct <= 0 {
				t.Errorf("%s: no cycles took the streak path", r.Kernel)
			}
			if r.Backed <= 0 {
				t.Errorf("%s: threaded backend column not measured", r.Kernel)
			}
		}
	}
	if streamed < 5 {
		t.Fatalf("only %d kernels streamed", streamed)
	}
	s := FormatSysBatch(rows)
	for _, want := range []string{"speedup", "backend/it", "vs streak"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q header:\n%s", want, s)
		}
	}
}
