package exp

import (
	"fmt"
	"strings"

	"roccc/internal/bench"
	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/synth"
	"roccc/internal/vm"
)

// ablation.go quantifies the design choices the paper calls out:
// common-subexpression elimination on the DCT's butterfly symmetry (§5),
// the pipeline-target area/clock trade-off of automatic latch placement
// (§4.2.3), and partial unrolling as the throughput lever (§2, FIR/DCT).

// CSEAblationResult compares the symmetry-exploiting DCT (even/odd
// butterflies + CSE) against a naive direct-form 8x8 matrix multiply.
type CSEAblationResult struct {
	WithOps, WithoutOps       int
	WithMuls, WithoutMuls     int
	WithSlices, WithoutSlices int
}

// naiveDCTSource renders the direct-form DCT: 64 constant multiplies,
// no shared butterflies.
func naiveDCTSource() string {
	var b strings.Builder
	b.WriteString("int8 X[64];\nint19 Y[64];\nvoid dct() {\n\tint i;\n\tfor (i = 0; i < 64; i = i + 8) {\n")
	for k := 0; k < 8; k++ {
		var terms []string
		for n := 0; n < 8; n++ {
			c := dctMatrix(k, n)
			terms = append(terms, fmt.Sprintf("%d*X[i+%d]", c, n))
		}
		fmt.Fprintf(&b, "\t\tY[i+%d] = (int19)((%s) >> 4);\n", k, strings.Join(terms, " + "))
	}
	b.WriteString("\t}\n}\n")
	return b.String()
}

// dctMatrix returns round(cos((2n+1)kπ/16) * 2048).
func dctMatrix(k, n int) int {
	v := 2048.0 * cosApprox(float64(2*n+1)*float64(k)*3.14159265358979/16)
	if v >= 0 {
		return int(v + 0.5)
	}
	return int(v - 0.5)
}

func cosApprox(x float64) float64 {
	// Range-reduce and evaluate with the math package (wrapped for the
	// generator only).
	return mathCos(x)
}

// CSEAblation measures how much area the symmetry structure saves
// ("Both ROCCC DCT and Xilinx IP DCT explore the symmetry within the
// cosine coefficients"): the butterfly source shares sums/differences
// and halves the constant multipliers against the direct form.
func CSEAblation() (*CSEAblationResult, error) {
	run := func(src string) (int, int, int, error) {
		res, err := core.CompileSource(src, "dct", core.Options{Optimize: true, PeriodNs: 6})
		if err != nil {
			return 0, 0, 0, err
		}
		muls := 0
		for _, op := range res.Datapath.Ops {
			if op.Instr.Op == vm.MUL {
				muls++
			}
		}
		rep := synth.Synthesize(res.Datapath, synth.Options{})
		return res.Datapath.NumOps(), muls, rep.Slices, nil
	}
	r := &CSEAblationResult{}
	var err error
	if r.WithOps, r.WithMuls, r.WithSlices, err = run(bench.DCT().Source); err != nil {
		return nil, err
	}
	if r.WithoutOps, r.WithoutMuls, r.WithoutSlices, err = run(naiveDCTSource()); err != nil {
		return nil, err
	}
	return r, nil
}

// PeriodSweepPoint is one pipeline-target measurement.
type PeriodSweepPoint struct {
	PeriodNs float64
	Stages   int
	Latches  int
	Slices   int
	ClockMHz float64
}

// PeriodSweep compiles the FIR at several pipeline targets, exposing the
// latch-placement trade-off: tighter targets mean more stages and more
// register area but a faster clock.
func PeriodSweep(periods []float64) ([]PeriodSweepPoint, error) {
	k := bench.FIR()
	var pts []PeriodSweepPoint
	for _, p := range periods {
		opt := k.Options
		opt.PeriodNs = p
		res, err := core.CompileSource(k.Source, k.Func, opt)
		if err != nil {
			return nil, err
		}
		if err := dp.Pipeline(res.Datapath, dp.PipelineConfig{
			Period: p,
			Delay:  synth.OpDelay(res.Datapath, k.LUTMultStyle),
		}); err != nil {
			return nil, err
		}
		rep := synth.Synthesize(res.Datapath, synth.Options{LUTMultipliers: k.LUTMultStyle})
		pts = append(pts, PeriodSweepPoint{
			PeriodNs: p,
			Stages:   res.Datapath.Stages,
			Latches:  res.Datapath.LatchCount(),
			Slices:   rep.Slices,
			ClockMHz: rep.ClockMHz,
		})
	}
	return pts, nil
}

// UnrollSweepPoint is one unroll-factor measurement for the FIR.
type UnrollSweepPoint struct {
	Factor     int64
	OutsPerCyc int
	Slices     int
	ClockMHz   float64
	// MspsTotal is the sustained throughput: outputs/cycle × clock.
	MspsTotal float64
}

// UnrollSweep widens the FIR data path by partial unrolling — the
// strip-mining/unrolling lever of §2 that trades area for throughput.
func UnrollSweep(factors []int64) ([]UnrollSweepPoint, error) {
	base := `
int8 A[64];
int16 C[60];
void fir() {
	int i;
	for (i = 0; i < 60; i = i + 1) {
		C[i] = (int16)((3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4]) >> 3);
	}
}
`
	var pts []UnrollSweepPoint
	for _, f := range factors {
		opt := core.Options{Optimize: true, PeriodNs: 5, UnrollFactor: f}
		res, err := core.CompileSource(base, "fir", opt)
		if err != nil {
			return nil, err
		}
		rep := synth.Synthesize(res.Datapath, synth.Options{})
		outs := len(res.Datapath.Outputs)
		pts = append(pts, UnrollSweepPoint{
			Factor:     f,
			OutsPerCyc: outs,
			Slices:     rep.Slices,
			ClockMHz:   rep.ClockMHz,
			MspsTotal:  rep.ClockMHz * float64(outs),
		})
	}
	return pts, nil
}

// FormatAblations renders all three studies.
func FormatAblations() (string, error) {
	var b strings.Builder
	cse, err := CSEAblation()
	if err != nil {
		return "", err
	}
	b.WriteString("Ablation 1: DCT symmetry (butterflies + CSE) vs direct form\n")
	fmt.Fprintf(&b, "  butterfly form: %3d ops, %2d multipliers, %4d slices\n",
		cse.WithOps, cse.WithMuls, cse.WithSlices)
	fmt.Fprintf(&b, "  direct form:    %3d ops, %2d multipliers, %4d slices\n",
		cse.WithoutOps, cse.WithoutMuls, cse.WithoutSlices)
	fmt.Fprintf(&b, "  saving: %.0f%% of slices\n\n",
		100*(1-float64(cse.WithSlices)/float64(cse.WithoutSlices)))

	pts, err := PeriodSweep([]float64{2, 3, 5, 8, 1000})
	if err != nil {
		return "", err
	}
	b.WriteString("Ablation 2: latch placement vs pipeline target (FIR)\n")
	fmt.Fprintf(&b, "  %10s %8s %8s %8s %10s\n", "target(ns)", "stages", "latches", "slices", "clock(MHz)")
	for _, p := range pts {
		fmt.Fprintf(&b, "  %10.1f %8d %8d %8d %10.0f\n", p.PeriodNs, p.Stages, p.Latches, p.Slices, p.ClockMHz)
	}
	b.WriteString("\n")

	ups, err := UnrollSweep([]int64{1, 2, 4, 6})
	if err != nil {
		return "", err
	}
	b.WriteString("Ablation 3: partial unrolling vs throughput (FIR)\n")
	fmt.Fprintf(&b, "  %7s %10s %8s %10s %12s\n", "factor", "outs/cyc", "slices", "clock", "Msamples/s")
	for _, p := range ups {
		fmt.Fprintf(&b, "  %7d %10d %8d %10.0f %12.0f\n", p.Factor, p.OutsPerCyc, p.Slices, p.ClockMHz, p.MspsTotal)
	}
	return b.String(), nil
}
