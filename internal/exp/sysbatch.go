package exp

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"roccc/internal/bench"
	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/netlist"
)

// sysbatch.go measures the streak-batched System.Run (netlist
// sysbatch.go) against the serial per-cycle dispatch on the same
// streams, kernel by kernel. Every streak-batched stream is verified
// bit-identical to its serial run — outputs, feedback latches and cycle
// counts — so the sweep doubles as an end-to-end correctness harness
// for the streak predictor, and the table it prints is the reproducible
// form of the speedup claim.

// SysBatchRow is one kernel's serial-vs-streak measurement.
type SysBatchRow struct {
	Kernel string
	// Backend is the execution backend the third column ran on (the
	// serial and streak references always run the interpreter).
	Backend dp.Backend
	Streams int
	// Iters is the loop-nest iteration count of one stream.
	Iters int
	// Cycles is the total clock count across streams (identical on both
	// paths by construction).
	Cycles int64
	// BatchedPct is the fraction of cycles the streak path dispatched
	// through StepN/DrainN chunks (the rest fell back to per-cycle
	// stepping).
	BatchedPct float64
	// Serial and Streak are per-iteration costs (total wall clock over
	// total data-path iterations executed) on the interpreter.
	Serial, Streak time.Duration
	Speedup        float64
	// Backed is the streak path's per-iteration cost on Backend, and
	// BackSpeedup its speedup over the interpreter streak path (the PR 5
	// baseline). Zero when Backend is the interpreter — there is nothing
	// to compare.
	Backed      time.Duration
	BackSpeedup float64
	// Skipped is non-empty for kernels that cannot stream.
	Skipped string
}

// LongFIRSource is a long-stream FIR: 4096 iterations, so the steady
// state (256-cycle StepN chunks) dominates fill and drain — the
// serve-path shape, where one request streams a long input. It is the
// workload of both this sweep's fir_4096 row and the CI-gated
// BenchmarkSysRun/fir4k pair, shared so the two stay comparable.
const LongFIRSource = `
int A[4100];
int C[4096];
void fir() {
	int i;
	for (i = 0; i < 4096; i = i + 1) {
		C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
	}
}
`

// SysBatchSweep runs `streams` random streams per kernel through a
// serial and a streak-batched System and returns the verified
// measurement rows: the Fig. 3 FIR (the Fig. 2 benchmark workload), a
// 4096-iteration FIR (steady-state shape), and every streamable Table 1
// row including the mul_acc feedback kernel.
func SysBatchSweep(streams int, backend dp.Backend) ([]SysBatchRow, error) {
	if streams <= 0 {
		streams = 8
	}
	type cand struct {
		name string
		res  *core.Result
		cfg  netlist.Config
		err  error
	}
	var cands []cand
	add := func(name, src, fn string, opt core.Options, cfg netlist.Config) {
		res, err := core.CompileSource(src, fn, opt)
		cands = append(cands, cand{name: name, res: res, cfg: cfg, err: err})
	}
	add("fir_fig3", Fig3Source, "fir", core.DefaultOptions(), netlist.Config{BusElems: 1})
	add("fir_4096", LongFIRSource, "fir", core.DefaultOptions(), netlist.Config{BusElems: 1})
	for _, k := range bench.All() {
		res, err := k.Compile()
		cands = append(cands, cand{
			name: k.Name, res: res,
			cfg: netlist.Config{BusElems: k.BusElems, Scalars: k.Scalars},
			err: err,
		})
	}

	var rows []SysBatchRow
	for _, c := range cands {
		if c.err != nil {
			return nil, fmt.Errorf("exp: sysbatch %s: %w", c.name, c.err)
		}
		row, err := sysBatchKernel(c.name, c.res, c.cfg, streams, backend)
		if err != nil {
			return nil, fmt.Errorf("exp: sysbatch %s: %w", c.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// sysBatchKernel measures one kernel, verifying every measured system
// — the interpreter streak path and, when backend is not the
// interpreter, the backend streak path — bit-identical to the serial
// interpreter reference on every stream.
func sysBatchKernel(name string, res *core.Result, cfg netlist.Config, streams int, backend dp.Backend) (SysBatchRow, error) {
	row := SysBatchRow{Kernel: name, Backend: backend, Streams: streams}
	scfg := cfg
	scfg.Serial = true
	scfg.Backend = dp.BackendInterp
	serial, err := netlist.NewSystem(res.Kernel, res.Datapath, scfg)
	if err != nil {
		row.Skipped = err.Error()
		if strings.Contains(row.Skipped, "no loop nest") {
			row.Skipped = "combinational (no loop nest)"
		}
		return row, nil
	}
	bcfg := cfg
	bcfg.Serial = false
	bcfg.Backend = dp.BackendInterp
	streak, err := netlist.NewSystem(res.Kernel, res.Datapath, bcfg)
	if err != nil {
		return row, err
	}
	var backed *netlist.System
	if backend != dp.BackendInterp {
		kcfg := bcfg
		kcfg.Backend = backend
		if backed, err = netlist.NewSystem(res.Kernel, res.Datapath, kcfg); err != nil {
			return row, err
		}
	}
	row.Iters = int(res.Kernel.Nest.TotalIterations())

	inputs := make([]map[string][]int64, streams)
	for i := range inputs {
		rng := rand.New(rand.NewSource(int64(i)*7919 + 3))
		in := map[string][]int64{}
		for _, w := range res.Kernel.Reads {
			vals := make([]int64, w.Arr.Len())
			for j := range vals {
				vals[j] = rng.Int63n(255) - 128
			}
			in[w.Arr.Name] = vals
		}
		inputs[i] = in
	}

	type result struct {
		outputs   map[string][]int64
		feedbacks map[string]int64
		cycles    int
	}
	runOne := func(sys *netlist.System, in map[string][]int64) (result, error) {
		var r result
		sys.Reset()
		for arr, vals := range in {
			if err := sys.LoadInput(arr, vals); err != nil {
				return r, err
			}
		}
		sim, err := sys.Run()
		if err != nil {
			return r, err
		}
		r.cycles = sys.Cycles()
		r.outputs = map[string][]int64{}
		for _, w := range res.Kernel.Writes {
			out, err := sys.Output(w.Arr.Name)
			if err != nil {
				return r, err
			}
			r.outputs[w.Arr.Name] = out
		}
		r.feedbacks = map[string]int64{}
		for _, fb := range res.Datapath.Feedbacks {
			if v, ok := sim.FeedbackByName(fb.State.Name); ok {
				r.feedbacks[fb.State.Name] = v
			}
		}
		return r, nil
	}

	// Correctness pass (also the warm-up): every measured system ≡ the
	// serial interpreter per stream, with the diverging system named.
	diff := func(tag string, sys *netlist.System, i int, in map[string][]int64, sr result) error {
		br, err := runOne(sys, in)
		if err != nil {
			return fmt.Errorf("%s stream %d: %w", tag, i, err)
		}
		if br.cycles != sr.cycles {
			return fmt.Errorf("stream %d: %d cycles %s, %d serial", i, br.cycles, tag, sr.cycles)
		}
		for arr, want := range sr.outputs {
			got := br.outputs[arr]
			for j := range want {
				if got[j] != want[j] {
					return fmt.Errorf("stream %d: %s[%d] = %d %s, %d serial", i, arr, j, got[j], tag, want[j])
				}
			}
		}
		for fb, want := range sr.feedbacks {
			if got := br.feedbacks[fb]; got != want {
				return fmt.Errorf("stream %d: feedback %s = %d %s, %d serial", i, fb, got, tag, want)
			}
		}
		return nil
	}
	for i, in := range inputs {
		sr, err := runOne(serial, in)
		if err != nil {
			return row, fmt.Errorf("serial stream %d: %w", i, err)
		}
		if err := diff("streak[interp]", streak, i, in, sr); err != nil {
			return row, err
		}
		row.Cycles += int64(sr.cycles)
		row.BatchedPct += float64(streak.BatchedCycles())
		if backed != nil {
			if err := diff("streak["+backend.String()+"]", backed, i, in, sr); err != nil {
				return row, err
			}
		}
	}
	row.BatchedPct = 100 * row.BatchedPct / float64(row.Cycles)

	// Timing passes: whole sweep per path, best of three.
	time1 := func(sys *netlist.System) (time.Duration, error) {
		best := time.Duration(1<<62 - 1)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			for _, in := range inputs {
				if _, err := runOne(sys, in); err != nil {
					return 0, err
				}
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best, nil
	}
	ser, err := time1(serial)
	if err != nil {
		return row, err
	}
	str, err := time1(streak)
	if err != nil {
		return row, err
	}
	iters := int64(row.Iters) * int64(streams)
	row.Serial = ser / time.Duration(iters)
	row.Streak = str / time.Duration(iters)
	if str > 0 {
		row.Speedup = float64(ser) / float64(str)
	}
	if backed != nil {
		bk, err := time1(backed)
		if err != nil {
			return row, err
		}
		row.Backed = bk / time.Duration(iters)
		if bk > 0 {
			row.BackSpeedup = float64(str) / float64(bk)
		}
	}
	return row, nil
}

// FormatSysBatch renders the serial-vs-streak table; when the rows were
// measured on a non-interpreter backend it appends the backend columns
// (per-iteration cost and speedup over the interpreter streak path).
func FormatSysBatch(rows []SysBatchRow) string {
	withBackend := false
	for _, r := range rows {
		if r.Backend != dp.BackendInterp {
			withBackend = true
			break
		}
	}
	var b strings.Builder
	b.WriteString("System cycle-loop batching: serial Step dispatch vs streak-batched StepN\n")
	fmt.Fprintf(&b, "%-12s %8s %7s %9s %9s %11s %11s %9s",
		"kernel", "streams", "iters", "cycles", "batched", "serial/it", "streak/it", "speedup")
	if withBackend {
		fmt.Fprintf(&b, " %11s %9s", "backend/it", "vs streak")
	}
	b.WriteString("\n")
	for _, r := range rows {
		if r.Skipped != "" {
			fmt.Fprintf(&b, "%-12s %8s %7s %9s %9s %11s %11s %9s  (%s)\n",
				r.Kernel, "-", "-", "-", "-", "-", "-", "-", r.Skipped)
			continue
		}
		fmt.Fprintf(&b, "%-12s %8d %7d %9d %8.1f%% %11s %11s %8.2fx",
			r.Kernel, r.Streams, r.Iters, r.Cycles, r.BatchedPct,
			r.Serial.Round(time.Nanosecond), r.Streak.Round(time.Nanosecond), r.Speedup)
		if withBackend {
			fmt.Fprintf(&b, " %11s %8.2fx", r.Backed.Round(time.Nanosecond), r.BackSpeedup)
		}
		b.WriteString("\n")
	}
	return b.String()
}
