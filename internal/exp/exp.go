// Package exp regenerates the paper's evaluation: Table 1 (Xilinx IP vs
// ROCCC-generated hardware), the DCT throughput comparison of §5, the
// compile-time area estimation claim of §2 [13], and the structural
// figures (Fig. 3-7).
package exp

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"roccc/internal/bench"
	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/ip"
	"roccc/internal/synth"
)

// Row is one Table 1 line: IP clock/area, ROCCC clock/area, and the
// ratios the paper reports (%Clock = ROCCC/IP clock, %Area = ROCCC/IP
// area).
type Row struct {
	Example    string
	IPClock    float64
	IPArea     int
	RocccClock float64
	RocccArea  int
	PctClock   float64
	PctArea    float64
}

// PaperRow holds the original publication's numbers for side-by-side
// reporting in EXPERIMENTS.md.
type PaperRow struct {
	IPClock, RocccClock float64
	IPArea, RocccArea   int
	PctClock, PctArea   float64
}

// PaperTable1 is Table 1 as printed in the paper.
var PaperTable1 = map[string]PaperRow{
	"bit_correlator": {212, 144, 9, 19, 0.679, 2.11},
	"mul_acc":        {238, 238, 18, 59, 1.00, 3.28},
	"udiv":           {216, 272, 144, 495, 1.26, 3.44},
	"square_root":    {167, 220, 585, 1199, 1.32, 2.05},
	"cos":            {170, 170, 150, 150, 1.00, 1.00},
	"arbitrary_lut":  {170, 170, 549, 549, 1.00, 1.00},
	"fir":            {185, 194, 270, 293, 1.05, 1.09},
	"dct":            {181, 133, 412, 724, 0.735, 1.76},
	"wavelet":        {104, 101, 1464, 2415, 0.971, 1.65},
}

// SynthesizeKernel compiles a bench kernel, re-pipelines its data path
// against the Virtex-II delay model and synthesizes it (with smart
// buffers and controller for the streaming rows).
func SynthesizeKernel(k bench.Kernel) (*core.Result, *synth.Report, error) {
	res, err := k.Compile()
	if err != nil {
		return nil, nil, err
	}
	// Latch placement against the same technology model used for area.
	if err := dp.Pipeline(res.Datapath, dp.PipelineConfig{
		Period: k.Options.PeriodNs,
		Delay:  synth.OpDelay(res.Datapath, k.LUTMultStyle),
	}); err != nil {
		return nil, nil, err
	}
	opt := synth.Options{LUTMultipliers: k.LUTMultStyle}
	if res.Kernel.Nest.Depth() > 0 && len(res.Kernel.Reads) > 0 {
		cfgs, err := synth.KernelBufferConfigs(res.Kernel, k.BusElems)
		if err != nil {
			return nil, nil, err
		}
		opt.BufferConfigs = cfgs
		opt.ControllerIters = int(res.Kernel.Nest.TotalIterations())
	}
	rep := synth.Synthesize(res.Datapath, opt)
	rep.Name = k.Name + "(ROCCC)"
	return res, rep, nil
}

// Table1 regenerates the paper's Table 1 with the reproduction's
// synthesis model on both sides. The rows are independent full
// compile+synthesize pipelines, so they shard across GOMAXPROCS
// goroutines (each row compiles its own bench.Kernel — nothing is
// shared between rows); row order stays the paper's regardless of
// completion order.
func Table1() ([]Row, error) {
	kernels := bench.All()
	cores := ip.All()
	if len(kernels) != len(cores) {
		return nil, fmt.Errorf("exp: kernel/baseline count mismatch")
	}
	rows := make([]Row, len(kernels))
	errs := make([]error, len(kernels))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	wg.Add(len(kernels))
	for i := range kernels {
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			k, c := kernels[i], cores[i]
			if c.Name != k.Name {
				errs[i] = fmt.Errorf("exp: row %d: kernel %s vs core %s", i, k.Name, c.Name)
				return
			}
			_, rep, err := SynthesizeKernel(k)
			if err != nil {
				errs[i] = fmt.Errorf("exp: %s: %v", k.Name, err)
				return
			}
			row := Row{
				Example:    k.Name,
				IPClock:    c.Report.ClockMHz,
				IPArea:     c.Report.Slices,
				RocccClock: rep.ClockMHz,
				RocccArea:  rep.Slices,
			}
			row.PctClock = row.RocccClock / row.IPClock
			row.PctArea = float64(row.RocccArea) / float64(row.IPArea)
			rows[i] = row
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatTable1 renders rows in the paper's layout, with the published
// values alongside when withPaper is set.
func FormatTable1(rows []Row, withPaper bool) string {
	var b strings.Builder
	b.WriteString("Table 1: hardware performance, Xilinx IP vs ROCCC-generated VHDL\n")
	b.WriteString("(reproduction: both sides synthesized with the Virtex-II xc2v2000-5 model)\n\n")
	fmt.Fprintf(&b, "%-15s %21s %21s %8s %8s\n", "", "Xilinx IP", "ROCCC", "", "")
	fmt.Fprintf(&b, "%-15s %10s %10s %10s %10s %8s %8s\n",
		"Example", "Clock(MHz)", "Area(sl)", "Clock(MHz)", "Area(sl)", "%Clock", "%Area")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %10.0f %10d %10.0f %10d %8.3f %8.2f\n",
			r.Example, r.IPClock, r.IPArea, r.RocccClock, r.RocccArea, r.PctClock, r.PctArea)
		if withPaper {
			p, ok := PaperTable1[r.Example]
			if ok {
				fmt.Fprintf(&b, "%-15s %10.0f %10d %10.0f %10d %8.3f %8.2f\n",
					"  (paper)", p.IPClock, p.IPArea, p.RocccClock, p.RocccArea, p.PctClock, p.PctArea)
			}
		}
	}
	gmClock, gmArea := GeoMeans(rows)
	fmt.Fprintf(&b, "\ngeometric mean: %%Clock %.3f, %%Area %.2f (paper: ~1.0 and 2x-3x)\n", gmClock, gmArea)
	return b.String()
}

// GeoMeans returns the geometric means of the clock and area ratios over
// the non-LUT rows (the LUT rows are 1.00 by construction, as in the
// paper).
func GeoMeans(rows []Row) (clock, area float64) {
	clock, area = 1, 1
	n := 0
	for _, r := range rows {
		if r.Example == "cos" || r.Example == "arbitrary_lut" {
			continue
		}
		clock *= r.PctClock
		area *= r.PctArea
		n++
	}
	if n == 0 {
		return 1, 1
	}
	inv := 1.0 / float64(n)
	return pow(clock, inv), pow(area, inv)
}

func pow(x, p float64) float64 {
	if x <= 0 {
		return 0
	}
	// math.Pow without importing math twice; keep explicit.
	return exp2(p * log2(x))
}

// ThroughputResult is the §5 DCT comparison.
type ThroughputResult struct {
	IPClockMHz        float64
	RocccClockMHz     float64
	IPOutsPerCycle    float64
	RocccOutsPerCycle float64
	// Msamples/s = clock × outputs/cycle.
	IPMsps    float64
	RocccMsps float64
	Speedup   float64
}

// DCTThroughput reproduces the §5 observation: the ROCCC DCT runs at a
// lower clock (0.735x in the paper) but produces eight outputs per cycle
// against the IP's one, so its overall throughput is higher.
func DCTThroughput() (*ThroughputResult, error) {
	k := bench.DCT()
	_, rep, err := SynthesizeKernel(k)
	if err != nil {
		return nil, err
	}
	c := ip.DCT()
	t := &ThroughputResult{
		IPClockMHz:        c.Report.ClockMHz,
		RocccClockMHz:     rep.ClockMHz,
		IPOutsPerCycle:    c.OutputsPerCycle,
		RocccOutsPerCycle: k.OutputsPerCycle,
	}
	t.IPMsps = t.IPClockMHz * t.IPOutsPerCycle
	t.RocccMsps = t.RocccClockMHz * t.RocccOutsPerCycle
	t.Speedup = t.RocccMsps / t.IPMsps
	return t, nil
}

// EstimationRow is one kernel's compile-time area estimation result.
type EstimationRow struct {
	Kernel    string
	Estimate  int
	Synthesis int
	ErrorPct  float64
	Elapsed   time.Duration
}

// AreaEstimation reproduces the §2 claim from [13]: compile-time area
// estimation "in less than one millisecond and within 5% accuracy".
func AreaEstimation() ([]EstimationRow, error) {
	var rows []EstimationRow
	for _, k := range bench.All() {
		res, rep, err := SynthesizeKernel(k)
		if err != nil {
			return nil, err
		}
		opt := synth.Options{LUTMultipliers: k.LUTMultStyle}
		if res.Kernel.Nest.Depth() > 0 && len(res.Kernel.Reads) > 0 {
			cfgs, err := synth.KernelBufferConfigs(res.Kernel, k.BusElems)
			if err != nil {
				return nil, err
			}
			opt.BufferConfigs = cfgs
			opt.ControllerIters = int(res.Kernel.Nest.TotalIterations())
		}
		// Best of several runs: the estimator's cost is what matters, not
		// scheduler noise on the first call.
		est, elapsed := synth.Estimate(res.Datapath, opt)
		for i := 0; i < 4; i++ {
			e2, t2 := synth.Estimate(res.Datapath, opt)
			est = e2
			if t2 < elapsed {
				elapsed = t2
			}
		}
		errPct := 100 * float64(est-rep.Slices) / float64(rep.Slices)
		rows = append(rows, EstimationRow{
			Kernel: k.Name, Estimate: est, Synthesis: rep.Slices,
			ErrorPct: errPct, Elapsed: elapsed,
		})
	}
	return rows, nil
}

// FormatEstimation renders the estimation accuracy table.
func FormatEstimation(rows []EstimationRow) string {
	var b strings.Builder
	b.WriteString("Compile-time area estimation vs detailed synthesis ([13], §2)\n\n")
	fmt.Fprintf(&b, "%-15s %10s %10s %8s %12s\n", "Kernel", "Estimate", "Synthesis", "Err(%)", "Time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %10d %10d %+8.1f %12s\n",
			r.Kernel, r.Estimate, r.Synthesis, r.ErrorPct, r.Elapsed)
	}
	return b.String()
}
