package exp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"time"

	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/netlist"
	"roccc/internal/serve"
)

// servesweep.go verifies the rocccserve deployment shape end to end:
// every Table 1 kernel served over the TCP protocol must return output
// windows, feedback latches, cycle counts and mid-stream faults
// bit-identical to a serial netlist.System.Run of the same streams. The
// sweep doubles as the serve acceptance harness: feedback kernels
// (mul_acc) and fault cases (a divider fed a zero on a valid iteration)
// are part of the matrix, not separate tests.

// ServeRow is one kernel's served-vs-serial verification result.
type ServeRow struct {
	Kernel  string
	Streams int
	// Faults counts streams that (correctly) aborted with a typed
	// dp.FaultError carrying the serial run's abort cycle.
	Faults int
	// Cycles is the total clock count across served streams.
	Cycles int64
	// Elapsed is the wall-clock time of the served batch.
	Elapsed time.Duration
	// Skipped is non-empty for Table 1 rows that cannot stream (the
	// fully-unrolled bit-level kernels and LUTs have no loop nest).
	Skipped string
}

// serveSweepSource is the fault kernel: an elementwise divide whose
// drain bubbles would fault without poison semantics, and whose planted
// zero divisor on a valid iteration must abort with the serial cycle.
const serveSweepSource = `
int A[24];
int B[24];
int Q[24];
void divide() {
	int i;
	for (i = 0; i < 24; i++) {
		Q[i] = A[i] / B[i];
	}
}
`

// ServeSweep starts an in-memory rocccserve with every Table 1 kernel
// (plus the fault divider), streams `streams` random input streams per
// kernel through the TCP protocol, and verifies each response against a
// serial System.Run of the same inputs. Any divergence — a value, a
// cycle count, a feedback latch, a fault's abort cycle or message — is
// an error.
func ServeSweep(streams int) ([]ServeRow, error) {
	if streams <= 0 {
		streams = 8
	}
	specs := serve.Table1Specs()
	specs = append(specs, serve.KernelSpec{
		Name: "divide_fault", Source: serveSweepSource, Func: "divide",
		Options: core.DefaultOptions(), Config: netlist.Config{BusElems: 1},
	})

	srv := serve.NewServer(0)
	for _, spec := range specs {
		if err := srv.Register(spec); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	conn, err := serve.Dial(ln.Addr().String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	var rows []ServeRow
	for _, spec := range specs {
		row, err := serveSweepKernel(conn, spec, streams)
		if err != nil {
			return nil, fmt.Errorf("exp: serve sweep %s: %w", spec.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// serveSweepKernel checks one kernel: serial ground truth first, then
// the served batch against it.
func serveSweepKernel(conn *serve.Conn, spec serve.KernelSpec, streams int) (ServeRow, error) {
	row := ServeRow{Kernel: spec.Name, Streams: streams}
	res, err := core.CompileSource(spec.Source, spec.Func, spec.Options)
	if err != nil {
		return row, err
	}
	sys, err := netlist.NewSystem(res.Kernel, res.Datapath, spec.Config)
	if err != nil {
		// Combinational Table 1 rows cannot stream; the served request
		// must refuse them with the same diagnosis.
		if jerr := conn.Run(spec.Name, []netlist.Job{{}}); jerr == nil ||
			!strings.Contains(jerr.Error(), "no loop nest") {
			return row, fmt.Errorf("served request for combinational kernel returned %v, want a no-loop-nest refusal", jerr)
		}
		row.Streams = 0
		row.Skipped = "combinational (no loop nest)"
		return row, nil
	}

	// Build the streams; the fault kernel plants one zero divisor on a
	// valid iteration in every odd stream.
	jobs := make([]netlist.Job, streams)
	for i := range jobs {
		rng := rand.New(rand.NewSource(int64(i)*104729 + 7))
		inputs := map[string][]int64{}
		for _, w := range res.Kernel.Reads {
			vals := make([]int64, w.Arr.Len())
			for j := range vals {
				vals[j] = rng.Int63n(255) - 128
			}
			if spec.Name == "divide_fault" && w.Arr.Name == "B" {
				for j := range vals {
					vals[j] = rng.Int63n(97) + 1
				}
				if i%2 == 1 {
					vals[rng.Intn(len(vals))] = 0
				}
			}
			inputs[w.Arr.Name] = vals
		}
		jobs[i] = netlist.Job{Inputs: inputs}
	}

	// Serial ground truth: one System, Reset per stream.
	type ref struct {
		outputs   map[string][]int64
		feedbacks map[string]int64
		cycles    int
		fault     *dp.FaultError
	}
	refs := make([]ref, streams)
	for i := range jobs {
		sys.Reset()
		for name, vals := range jobs[i].Inputs {
			if err := sys.LoadInput(name, vals); err != nil {
				return row, err
			}
		}
		sim, err := sys.Run()
		if err != nil {
			var fe *dp.FaultError
			if !errors.As(err, &fe) {
				return row, fmt.Errorf("serial stream %d: %w", i, err)
			}
			refs[i].fault = fe
			continue
		}
		refs[i].cycles = sys.Cycles()
		refs[i].outputs = map[string][]int64{}
		for _, w := range res.Kernel.Writes {
			out, err := sys.Output(w.Arr.Name)
			if err != nil {
				return row, err
			}
			refs[i].outputs[w.Arr.Name] = out
		}
		if len(res.Datapath.Feedbacks) > 0 {
			refs[i].feedbacks = map[string]int64{}
			for _, fb := range res.Datapath.Feedbacks {
				if v, ok := sim.FeedbackByName(fb.State.Name); ok {
					refs[i].feedbacks[fb.State.Name] = v
				}
			}
		}
	}

	// Served batch over the live TCP connection.
	start := time.Now()
	runErr := conn.Run(spec.Name, jobs)
	row.Elapsed = time.Since(start)
	expectFault := false
	for i := range refs {
		if refs[i].fault != nil {
			expectFault = true
		}
	}
	if runErr != nil && !expectFault {
		return row, runErr
	}

	// Bit-exact comparison, stream by stream.
	for i := range jobs {
		r, job := &refs[i], &jobs[i]
		if r.fault != nil {
			var fe *dp.FaultError
			if !errors.As(job.Err, &fe) {
				return row, fmt.Errorf("stream %d: served %v, serial faulted with %v", i, job.Err, r.fault)
			}
			if fe.Cycle != r.fault.Cycle || fe.Op != r.fault.Op || fe.Msg != r.fault.Msg {
				return row, fmt.Errorf("stream %d: served fault %+v, serial fault %+v", i, fe, r.fault)
			}
			row.Faults++
			continue
		}
		if job.Err != nil {
			return row, fmt.Errorf("stream %d: served error %v, serial ran clean", i, job.Err)
		}
		if job.Cycles != r.cycles {
			return row, fmt.Errorf("stream %d: served %d cycles, serial %d", i, job.Cycles, r.cycles)
		}
		row.Cycles += int64(job.Cycles)
		for name, want := range r.outputs {
			got := job.Outputs[name]
			if len(got) != len(want) {
				return row, fmt.Errorf("stream %d: %s has %d elements served, %d serial", i, name, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					return row, fmt.Errorf("stream %d: %s[%d] = %d served, %d serial", i, name, j, got[j], want[j])
				}
			}
		}
		for name, want := range r.feedbacks {
			if got := job.Feedbacks[name]; got != want {
				return row, fmt.Errorf("stream %d: feedback %s = %d served, %d serial", i, name, got, want)
			}
		}
	}
	return row, nil
}

// FormatServeSweep renders the served-vs-serial verification table.
func FormatServeSweep(rows []ServeRow) string {
	var b strings.Builder
	b.WriteString("Serve sweep: rocccserve TCP responses vs serial netlist.System.Run\n")
	fmt.Fprintf(&b, "%-15s %8s %7s %10s %10s  %s\n",
		"kernel", "streams", "faults", "cycles", "elapsed", "verdict")
	for _, r := range rows {
		if r.Skipped != "" {
			fmt.Fprintf(&b, "%-15s %8s %7s %10s %10s  skipped: %s\n",
				r.Kernel, "-", "-", "-", "-", r.Skipped)
			continue
		}
		fmt.Fprintf(&b, "%-15s %8d %7d %10d %10s  bit-identical\n",
			r.Kernel, r.Streams, r.Faults, r.Cycles, r.Elapsed.Round(time.Microsecond))
	}
	return b.String()
}
