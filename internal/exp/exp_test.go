package exp

import (
	"math/rand"
	"strings"
	"testing"

	"roccc/internal/dp"
)

// TestTable1Shape verifies the reproduction preserves the paper's
// qualitative results: ROCCC circuits cost 1.3x-4x the IP area on the
// computational kernels, exactly 1.00 on the LUT rows, and run at a
// comparable clock (within ~35%).
func TestTable1Shape(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	for _, r := range rows {
		switch r.Example {
		case "cos", "arbitrary_lut":
			if r.PctArea != 1.0 || r.PctClock < 0.9 || r.PctClock > 1.1 {
				t.Errorf("%s: ratios %.3f/%.2f, want 1.00/1.00 (ROCCC instantiates the same IP)",
					r.Example, r.PctClock, r.PctArea)
			}
		default:
			if r.PctArea < 1.0 || r.PctArea > 4.5 {
				t.Errorf("%s: area ratio %.2f outside the paper's 1x-4x band", r.Example, r.PctArea)
			}
			if r.PctClock < 0.5 || r.PctClock > 1.5 {
				t.Errorf("%s: clock ratio %.3f not comparable", r.Example, r.PctClock)
			}
		}
	}
	gmClock, gmArea := GeoMeans(rows)
	if gmArea < 1.5 || gmArea > 3.5 {
		t.Errorf("geomean area ratio %.2f, paper reports ~2x-3x", gmArea)
	}
	if gmClock < 0.7 || gmClock > 1.3 {
		t.Errorf("geomean clock ratio %.3f, paper reports comparable clock", gmClock)
	}
}

func TestTable1Format(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable1(rows, true)
	for _, want := range []string{"bit_correlator", "wavelet", "%Clock", "%Area", "(paper)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

// TestDCTThroughputShape reproduces §5: lower or comparable clock but 8x
// outputs per cycle gives the ROCCC DCT the higher overall throughput.
func TestDCTThroughputShape(t *testing.T) {
	res, err := DCTThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if res.RocccOutsPerCycle != 8 || res.IPOutsPerCycle != 1 {
		t.Errorf("outputs per cycle: roccc %.0f ip %.0f, want 8 and 1",
			res.RocccOutsPerCycle, res.IPOutsPerCycle)
	}
	if res.Speedup <= 1 {
		t.Errorf("throughput speedup %.2f, want > 1 (paper: higher overall throughput)", res.Speedup)
	}
}

// TestAreaEstimationClaim reproduces the §2 claim: estimation runs well
// under a millisecond per kernel; accuracy is reported per kernel and
// the suite-level mean absolute error should be within ~15% (the paper's
// calibrated estimator reached 5% on its own benchmark set).
func TestAreaEstimationClaim(t *testing.T) {
	rows, err := AreaEstimation()
	if err != nil {
		t.Fatal(err)
	}
	sumAbs := 0.0
	for _, r := range rows {
		if r.Elapsed.Microseconds() > 1000 {
			t.Errorf("%s: estimation took %s, want < 1ms", r.Kernel, r.Elapsed)
		}
		abs := r.ErrorPct
		if abs < 0 {
			abs = -abs
		}
		sumAbs += abs
		if abs > 60 {
			t.Errorf("%s: estimation error %.1f%%", r.Kernel, r.ErrorPct)
		}
	}
	if mean := sumAbs / float64(len(rows)); mean > 25 {
		t.Errorf("mean absolute estimation error %.1f%%, want <= 25%%", mean)
	}
}

func TestFig3(t *testing.T) {
	f, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fir_dp", "int32 A0", "A[i+4]->A4", "17 iterations"} {
		if !strings.Contains(f.Text, want) {
			t.Errorf("Fig3 missing %q in:\n%s", want, f.Text)
		}
	}
}

func TestFig4(t *testing.T) {
	f, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ROCCC_load_prev(sum)", "ROCCC_store2next(sum", "init 0"} {
		if !strings.Contains(f.Text, want) {
			t.Errorf("Fig4 missing %q in:\n%s", want, f.Text)
		}
	}
}

func TestFig6(t *testing.T) {
	f, d, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.NodesOfKind(dp.MuxNode)) != 1 || len(d.NodesOfKind(dp.PipeNode)) != 1 {
		t.Errorf("Fig6 structure: %s", d.Summary())
	}
	if !strings.Contains(f.Text, "mux") || !strings.Contains(f.Text, "pipe") {
		t.Error("Fig6 text missing hard nodes")
	}
}

func TestFig7(t *testing.T) {
	f, d, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Feedbacks) != 1 {
		t.Fatalf("feedbacks = %d", len(d.Feedbacks))
	}
	if !strings.Contains(f.Text, "feedback latch sum") {
		t.Errorf("Fig7 text:\n%s", f.Text)
	}
}

func TestSoftNodePropertyIfElse(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	vectors := make([][]int64, 100)
	for i := range vectors {
		vectors[i] = []int64{rng.Int63n(1 << 15), rng.Int63n(1 << 15)}
	}
	n, err := SoftNodeProperty(Fig5Source, "if_else", vectors)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("checked %d vectors", n)
	}
}

// TestSpeedupClaim reproduces the §1 motivation: the streaming kernels
// run 10x-100x faster on the FPGA system than on the embedded-CPU model.
func TestSpeedupClaim(t *testing.T) {
	rows, err := Speedups()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup < 5 || r.Speedup > 400 {
			t.Errorf("%s: speedup %.1fx outside the plausible band", r.Kernel, r.Speedup)
		}
	}
	out := FormatSpeedups(rows)
	if !strings.Contains(out, "speedup") {
		t.Error("missing table header")
	}
}

// TestCSEAblation: symmetry sharing must reduce operator count and area.
func TestCSEAblation(t *testing.T) {
	r, err := CSEAblation()
	if err != nil {
		t.Fatal(err)
	}
	if r.WithOps >= r.WithoutOps {
		t.Errorf("ops: with=%d without=%d", r.WithOps, r.WithoutOps)
	}
	if r.WithSlices >= r.WithoutSlices {
		t.Errorf("slices: with=%d without=%d", r.WithSlices, r.WithoutSlices)
	}
}

// TestPeriodSweep: tighter targets must never reduce the stage count,
// and the loosest target collapses to a single stage.
func TestPeriodSweep(t *testing.T) {
	pts, err := PeriodSweep([]float64{2, 3, 5, 8, 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Stages > pts[i-1].Stages {
			t.Errorf("stages increased with a looser target: %+v -> %+v", pts[i-1], pts[i])
		}
	}
	last := pts[len(pts)-1]
	if last.Stages != 1 {
		t.Errorf("1000ns target yields %d stages, want 1", last.Stages)
	}
	if pts[0].ClockMHz < last.ClockMHz {
		t.Errorf("tight target clock %.0f below loose %.0f", pts[0].ClockMHz, last.ClockMHz)
	}
}

// TestUnrollSweep: throughput scales with the unroll factor.
func TestUnrollSweep(t *testing.T) {
	pts, err := UnrollSweep([]int64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{1, 2, 4} {
		if pts[i].OutsPerCyc != want {
			t.Errorf("factor %d: %d outputs/cycle", want, pts[i].OutsPerCyc)
		}
	}
	if pts[2].MspsTotal <= pts[0].MspsTotal {
		t.Error("4x unroll did not raise throughput")
	}
	if pts[2].Slices <= pts[0].Slices {
		t.Error("4x unroll did not cost area")
	}
}

func TestFormatAblations(t *testing.T) {
	out, err := FormatAblations()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Ablation 1", "Ablation 2", "Ablation 3", "Msamples/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}
