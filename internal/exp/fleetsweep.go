package exp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"roccc/internal/calib"
	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/fleet"
	"roccc/internal/netlist"
	"roccc/internal/serve"
)

// fleetsweep.go is the Serve v2 acceptance harness: the full serving
// stack — pipelined v2 client, front-end server, consistent-hash
// router, N in-process worker shards, warm SystemPools — must return
// outputs, feedback latches, cycle counts and fault abort cycles
// bit-identical to a serial netlist.System.Run, for every Table 1
// kernel, the fault divider and every ci/corpus kernel, on any
// execution backend. All kernels sweep concurrently over ONE pipelined
// connection, so the request-id demux is load-bearing, not decorative.

// LoadCorpusSpecs compiles-checks nothing: it reads every .c kernel in
// dir (the checked-in fuzz corpus, function name k) into servable specs
// with the given backend. An empty dir or a missing directory yields no
// specs and no error, so callers away from the repo root degrade to the
// Table 1 matrix.
func LoadCorpusSpecs(dir string, backend dp.Backend) ([]serve.KernelSpec, error) {
	if dir == "" {
		return nil, nil
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.c"))
	if err != nil || len(files) == 0 {
		return nil, err
	}
	sort.Strings(files)
	specs := make([]serve.KernelSpec, 0, len(files))
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("exp: corpus: %w", err)
		}
		specs = append(specs, serve.KernelSpec{
			Name:    "corpus_" + filepath.Base(f),
			Source:  string(src),
			Func:    "k",
			Options: core.DefaultOptions(),
			Config:  netlist.Config{BusElems: 1, Backend: backend},
		})
	}
	return specs, nil
}

// FleetSweep stands up a sharded fleet (front-end server dispatching
// through a fleet.Router into `shards` in-process workers), registers
// every Table 1 kernel, the fault divider and the ci/corpus kernels on
// every shard, then sweeps `streams` random streams per kernel — all
// kernels concurrently over one pipelined TCP connection — verifying
// each response bit-exact against a serial System.Run on the same
// backend. After the storm it asserts every shard pool balanced
// (Gets == Puts + Rejected) and the router's route table consistent
// with its own ring.
//
// Calibrated mode (calibrate=true) is the auto-pick differential gate:
// backend is forced to interp — registration AND the serial ground
// truth — then every streamable kernel is calibrated on its ring-owner
// shard with the noise-floor guard disabled, so any backend that wins
// its trial actually takes over the serving pool. The sweep then pins
// the auto-picked fleet bit-identical to serial interp.
func FleetSweep(streams, shards int, backend dp.Backend, corpusDir string, calibrate bool) ([]ServeRow, error) {
	if streams <= 0 {
		streams = 8
	}
	if shards <= 0 {
		shards = 3
	}
	if calibrate {
		backend = dp.BackendInterp
	}
	specs := serve.Table1Specs()
	specs = append(specs, serve.KernelSpec{
		Name: "divide_fault", Source: serveSweepSource, Func: "divide",
		Options: core.DefaultOptions(), Config: netlist.Config{BusElems: 1},
	})
	corpus, err := LoadCorpusSpecs(corpusDir, backend)
	if err != nil {
		return nil, err
	}
	specs = append(specs, corpus...)
	for i := range specs {
		specs[i].Config.Backend = backend
	}

	// Workers: every kernel registered on every shard; the ring decides
	// which shard actually compiles and serves each one. Slots are sized
	// so the differential sweep never sheds — admission control has its
	// own test; here a Busy fault would be a false divergence.
	workers := make([]*serve.Server, shards)
	fshards := make([]fleet.Shard, shards)
	for i := range workers {
		workers[i] = serve.NewServer(0)
		for _, spec := range specs {
			if err := workers[i].Register(spec); err != nil {
				return nil, err
			}
		}
		fshards[i] = fleet.Shard{Local: workers[i], Slots: len(specs) * streams}
	}
	router, err := fleet.NewRouter(fshards)
	if err != nil {
		return nil, err
	}
	defer router.Close()

	if calibrate {
		// Calibrate each kernel on the shard the ring routes it to — the
		// one that will actually serve it — with the noise-floor guard off
		// (NoiseFloor < 0) so any measured win swaps the pool and the
		// sweep exercises genuinely auto-picked backends. Combinational
		// kernels cannot stream, hence cannot be trialed; the sweep
		// separately asserts they refuse requests with the same diagnosis.
		opt := calib.Options{Warmup: 1, Reps: 1, Iters: 2, NoiseFloor: -1}
		for _, spec := range specs {
			_, cerr := workers[router.ShardFor(spec.Name)].CalibrateKernel(spec.Name, opt)
			if cerr != nil && !errors.Is(cerr, netlist.ErrCombinational) {
				return nil, fmt.Errorf("exp: fleet sweep: calibrate %s: %w", spec.Name, cerr)
			}
		}
	}

	front := serve.NewServer(0)
	front.SetDispatcher(router)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go front.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		front.Shutdown(ctx)
		for _, w := range workers {
			w.Shutdown(ctx)
		}
	}()
	conn, err := serve.DialPipelined(ln.Addr().String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	// One goroutine per kernel, all multiplexed on the single pipelined
	// connection: the serial ground truth and the bit-exact comparison
	// are serveSweepKernel's, identical to the single-server sweep.
	rows := make([]ServeRow, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec serve.KernelSpec) {
			defer wg.Done()
			rows[i], errs[i] = serveSweepKernel(conn, spec, streams)
		}(i, spec)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exp: fleet sweep %s: %w", specs[i].Name, err)
		}
	}

	// Hygiene after the storm: every shard pool balanced, and the route
	// table agreeing with the ring it was built from.
	for i, w := range workers {
		if !w.WaitIdle(5 * time.Second) {
			return nil, fmt.Errorf("exp: fleet sweep: shard %d still has in-flight streams", i)
		}
		for name, st := range w.Stats() {
			if st.Gets != st.Puts+st.Rejected {
				return nil, fmt.Errorf("exp: fleet sweep: shard %d pool %s unbalanced: gets=%d puts=%d rejected=%d",
					i, name, st.Gets, st.Puts, st.Rejected)
			}
		}
	}
	m := router.Metrics()
	if len(m.Shards) != shards {
		return nil, fmt.Errorf("exp: fleet sweep: metrics report %d shards, want %d", len(m.Shards), shards)
	}
	for _, kr := range m.Kernels {
		if want := router.ShardFor(kr.Kernel); kr.Shard != want {
			return nil, fmt.Errorf("exp: fleet sweep: kernel %s routed to shard %d, ring says %d", kr.Kernel, kr.Shard, want)
		}
	}
	var sheds int64
	for _, sm := range m.Shards {
		sheds += sm.Sheds
	}
	if sheds != 0 {
		return nil, fmt.Errorf("exp: fleet sweep: %d streams shed despite uncontended slots", sheds)
	}
	return rows, nil
}

// FormatFleetSweep renders the fleet verification table.
func FormatFleetSweep(rows []ServeRow, shards int) string {
	s := FormatServeSweep(rows)
	return fmt.Sprintf("Fleet sweep: pipelined v2 client -> router -> %d shards, vs serial System.Run\n%s", shards, s)
}
