package exp

import (
	"fmt"
	"strings"

	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/hir"
)

// figures.go regenerates the paper's structural figures: the code
// transformations of Fig. 3 and Fig. 4 and the data-path structures of
// Fig. 6 and Fig. 7.

// Fig3Source is the 5-tap FIR of Fig. 3(a).
const Fig3Source = `
int A[21];
int C[17];
void fir() {
	int i;
	for (i = 0; i < 17; i = i + 1) {
		C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
	}
}
`

// Fig4Source is the accumulator of Fig. 4(a).
const Fig4Source = `
int A[32];
int sum;
void accum() {
	int i;
	sum = 0;
	for (i = 0; i < 32; i++) {
		sum = sum + A[i];
	}
}
`

// Fig5Source is the alternative-branch kernel of Fig. 5.
const Fig5Source = `
void if_else(int x1, int x2, int* x3, int* x4) {
	int a, c;
	c = x1 - x2;
	if (c < x2)
		a = x1*x1;
	else
		a = x1 * x2 + 3;
	c = c - a;
	*x3 = c;
	*x4 = a;
	return;
}
`

// FigureResult bundles one figure's regenerated artifacts.
type FigureResult struct {
	Title string
	Text  string
}

// Fig3 reproduces Fig. 3: scalar replacement isolates the FIR's memory
// accesses; the exported data-path function takes the five window
// scalars and produces one output.
func Fig3() (*FigureResult, error) {
	res, err := core.CompileSource(Fig3Source, "fir", core.Options{Optimize: false, PeriodNs: 5})
	if err != nil {
		return nil, err
	}
	k := res.Kernel
	var b strings.Builder
	b.WriteString("Fig. 3 — scalar replacement on the 5-tap FIR\n\n")
	b.WriteString("(c) exported data-path function:\n")
	b.WriteString(k.DataPathC())
	b.WriteString("\n\nwindow: array A, taps ")
	for i, e := range k.Reads[0].Elems {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "A[i+%d]->%s", e.Offsets[0], e.Elem.Name)
	}
	lo, extent := k.Reads[0].Span(0)
	fmt.Fprintf(&b, "\nwindow span [%d,%d), stride %d, %d iterations\n",
		lo, lo+extent, k.Nest.Step[0], k.Nest.Trips(0))
	return &FigureResult{Title: "Fig3", Text: b.String()}, nil
}

// Fig4 reproduces Fig. 4: the accumulator's sum is detected as feedback
// and annotated with ROCCC_load_prev / ROCCC_store2next.
func Fig4() (*FigureResult, error) {
	res, err := core.CompileSource(Fig4Source, "accum", core.Options{Optimize: false, PeriodNs: 5})
	if err != nil {
		return nil, err
	}
	k := res.Kernel
	var b strings.Builder
	b.WriteString("Fig. 4 — feedback detection on the accumulator\n\n")
	b.WriteString("(c) exported data-path function with feedback macros:\n")
	b.WriteString(k.DataPathC())
	fmt.Fprintf(&b, "\n\nfeedback variables: %d\n", len(k.Feedback))
	for _, fb := range k.Feedback {
		fmt.Fprintf(&b, "  %s (init %d) -> output %s\n", fb.Var.Name, fb.Init, fb.Out.Name)
	}
	return &FigureResult{Title: "Fig4", Text: b.String()}, nil
}

// Fig6 reproduces Fig. 6: the if_else data path with soft nodes for the
// CFG blocks, a pipe node copying the live c, and a mux node merging a.
func Fig6() (*FigureResult, *dp.Datapath, error) {
	res, err := core.CompileSource(Fig5Source, "if_else", core.Options{Optimize: false, PeriodNs: 5})
	if err != nil {
		return nil, nil, err
	}
	d := res.Datapath
	var b strings.Builder
	b.WriteString("Fig. 6 — alternative-branch data path (Fig. 5 kernel)\n\n")
	fmt.Fprintf(&b, "%s\n\n", d.Summary())
	for _, n := range d.Nodes {
		fmt.Fprintf(&b, "node %d: %s, level %d, %d ops\n", n.ID, n.Kind, n.Level, len(n.Ops))
	}
	b.WriteString("\nDOT:\n")
	b.WriteString(d.Dot())
	return &FigureResult{Title: "Fig6", Text: b.String()}, d, nil
}

// Fig7 reproduces Fig. 7: the accumulator data path with the SNX/LPR
// feedback latch.
func Fig7() (*FigureResult, *dp.Datapath, error) {
	res, err := core.CompileSource(Fig4Source, "accum", core.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	d := res.Datapath
	var b strings.Builder
	b.WriteString("Fig. 7 — accumulator data path with feedback latch\n\n")
	fmt.Fprintf(&b, "%s\n", d.Summary())
	for _, fb := range d.Feedbacks {
		fmt.Fprintf(&b, "feedback latch %s: %d LPR reader(s), SNX at stage %d, init %d\n",
			fb.State.Name, len(fb.LPRs), fb.SNX.Stage, fb.Init)
	}
	b.WriteString("\nDOT:\n")
	b.WriteString(d.Dot())
	return &FigureResult{Title: "Fig7", Text: b.String()}, d, nil
}

// SoftNodeProperty checks the paper's §4.2.2 equivalence on a compiled
// kernel: running the SSA soft nodes in software equals the pipelined
// hardware data path. It returns the number of vectors checked.
func SoftNodeProperty(src, fname string, vectors [][]int64) (int, error) {
	res, err := core.CompileSource(src, fname, core.DefaultOptions())
	if err != nil {
		return 0, err
	}
	sim := dp.NewSim(res.Datapath)
	hw, err := sim.Run(vectors)
	if err != nil {
		return 0, err
	}
	for i, in := range vectors {
		env := hir.NewEnv()
		for j, p := range res.Kernel.DP.Params {
			env.Vars[p] = in[j]
		}
		if err := hir.RunFunc(res.Kernel.DP, env); err != nil {
			return 0, err
		}
		for j, o := range res.Kernel.DP.Outs {
			if hw[i][j] != env.Vars[o] {
				return i, fmt.Errorf("exp: vector %d output %d: hw %d != sw %d",
					i, j, hw[i][j], env.Vars[o])
			}
		}
	}
	return len(vectors), nil
}
