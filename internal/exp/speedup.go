package exp

import (
	"fmt"
	"strings"

	"roccc/internal/bench"
	"roccc/internal/hir"
	"roccc/internal/netlist"
)

// speedup.go reproduces the paper's motivating claim (§1): CSoC/FPGA
// implementations "have been shown to achieve very large speedups,
// ranging from 10x to 100x, over microprocessors" — quantified in the
// authors' companion study [17] by comparing kernel execution on a
// superscalar processor against the streaming circuit.
//
// The reproduction uses a simple embedded-CPU model (the CSoC's
// integrated processor class): a single-issue core at 400 MHz executing
// the kernel's dynamic operation count with per-class CPI, including
// load/store instructions the FPGA's smart buffer amortizes away.

// CPUModel is the scalar-processor cost model.
type CPUModel struct {
	Name     string
	ClockMHz float64
	// CPIs per dynamic instruction class.
	CPIALU    float64
	CPIMul    float64
	CPILoad   float64
	CPIStore  float64
	CPIBranch float64
}

// EmbeddedCPU models the CSoC-integrated processor class of the paper's
// platforms (Triscend A7 / Excalibur ARM9-era cores).
var EmbeddedCPU = CPUModel{
	Name: "embedded-risc-400MHz", ClockMHz: 400,
	CPIALU: 1, CPIMul: 4, CPILoad: 2.5, CPIStore: 2, CPIBranch: 2,
}

// SpeedupRow is one kernel's CPU-vs-FPGA comparison.
type SpeedupRow struct {
	Kernel     string
	CPUCycles  float64
	CPUMicros  float64
	FPGACycles int
	FPGAMicros float64
	Speedup    float64
}

// kernelDynamicCost estimates the CPU's dynamic cost for one kernel
// iteration from the data-path function plus the loop's memory traffic.
func kernelDynamicCost(k *hir.Kernel, m CPUModel) float64 {
	alu, mul := 0.0, 0.0
	hir.VisitExprs(k.DP.Body, func(e hir.Expr) hir.Expr {
		switch x := e.(type) {
		case *hir.Bin:
			if x.Op == hir.OpMul || x.Op == hir.OpDiv || x.Op == hir.OpRem {
				mul++
			} else {
				alu++
			}
		case *hir.Un, *hir.Sel:
			alu++
		}
		return e
	})
	loads, stores := 0.0, 0.0
	for _, w := range k.Reads {
		// Without the smart buffer's reuse, the CPU re-loads the window
		// per iteration (the paper's Streams-C discussion: data reuse
		// must be hand-written).
		loads += float64(len(w.Elems))
	}
	for _, w := range k.Writes {
		stores += float64(len(w.Elems))
	}
	// Loop overhead: index update, compare, branch.
	overhead := 2*m.CPIALU + m.CPIBranch
	return alu*m.CPIALU + mul*m.CPIMul + loads*m.CPILoad + stores*m.CPIStore + overhead
}

// Speedups compares the streaming Table 1 kernels (FIR, DCT, wavelet —
// the ones with memory-resident data) on the CPU model against the full
// FPGA system simulation.
func Speedups() ([]SpeedupRow, error) {
	var rows []SpeedupRow
	for _, k := range []bench.Kernel{bench.FIR(), bench.DCT(), bench.Wavelet()} {
		res, rep, err := SynthesizeKernel(k)
		if err != nil {
			return nil, err
		}
		sys, err := netlist.NewSystem(res.Kernel, res.Datapath, netlist.Config{
			BusElems: k.BusElems,
			Scalars:  scalarsFor(k),
		})
		if err != nil {
			return nil, err
		}
		for _, w := range res.Kernel.Reads {
			if err := sys.LoadInput(w.Arr.Name, make([]int64, w.Arr.Len())); err != nil {
				return nil, err
			}
		}
		if _, err := sys.Run(); err != nil {
			return nil, err
		}
		iters := float64(res.Kernel.Nest.TotalIterations())
		cpuCycles := kernelDynamicCost(res.Kernel, EmbeddedCPU) * iters
		row := SpeedupRow{
			Kernel:     k.Name,
			CPUCycles:  cpuCycles,
			CPUMicros:  cpuCycles / EmbeddedCPU.ClockMHz,
			FPGACycles: sys.Cycles(),
			FPGAMicros: float64(sys.Cycles()) / rep.ClockMHz,
		}
		row.Speedup = row.CPUMicros / row.FPGAMicros
		rows = append(rows, row)
	}
	return rows, nil
}

func scalarsFor(k bench.Kernel) map[string]int64 {
	if k.Scalars != nil {
		return k.Scalars
	}
	return map[string]int64{}
}

// FormatSpeedups renders the speedup table.
func FormatSpeedups(rows []SpeedupRow) string {
	var b strings.Builder
	b.WriteString("FPGA speedup over an embedded processor (§1 claim: 10x-100x)\n\n")
	fmt.Fprintf(&b, "%-10s %14s %12s %14s %12s %9s\n",
		"Kernel", "CPU cycles", "CPU µs", "FPGA cycles", "FPGA µs", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %14.0f %12.2f %14d %12.2f %8.1fx\n",
			r.Kernel, r.CPUCycles, r.CPUMicros, r.FPGACycles, r.FPGAMicros, r.Speedup)
	}
	return b.String()
}
