package exp

import "math"

func exp2(x float64) float64 { return math.Exp2(x) }
func log2(x float64) float64 { return math.Log2(x) }

func mathCos(x float64) float64 { return math.Cos(x) }
