package exp

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"roccc/internal/bench"
	"roccc/internal/core"
	"roccc/internal/netlist"
)

// sweep.go measures the batch execution paths on sweep-style workloads:
// many independent input streams through one compiled kernel. The
// serial path runs one System per stream on one goroutine (one Step
// dispatch per cycle); the sharded path runs the same streams through a
// netlist.SystemPool. Every sharded stream is checked bit-identical to
// its serial run, so the sweep doubles as an end-to-end correctness
// harness for SystemPool.RunBatch.

// SweepResult is one batch-vs-serial sweep measurement.
type SweepResult struct {
	Kernel  string
	Jobs    int
	Workers int
	// Serial and Sharded are wall-clock times for the whole sweep.
	Serial  time.Duration
	Sharded time.Duration
	Speedup float64
	// Cycles is the total clock count across all streams (identical on
	// both paths).
	Cycles int64
}

// SystemSweep runs `jobs` random FIR input streams serially and through
// a SystemPool with `workers` shards (<= 0 means GOMAXPROCS), verifying
// the sharded outputs against the serial ones and returning both
// timings.
func SystemSweep(jobs, workers int) (*SweepResult, error) {
	if jobs <= 0 {
		jobs = 64
	}
	res, err := core.CompileSource(Fig3Source, "fir", core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return systemSweep("fir", res, netlist.Config{BusElems: 1}, jobs, workers, func(rng *rand.Rand) map[string][]int64 {
		in := make([]int64, 21)
		for i := range in {
			in[i] = rng.Int63n(255) - 128
		}
		return map[string][]int64{"A": in}
	})
}

// DCTSystemSweep is SystemSweep over the Table 1 DCT row (the widest
// streaming kernel: eight outputs per cycle on an eight-element bus).
func DCTSystemSweep(jobs, workers int) (*SweepResult, error) {
	if jobs <= 0 {
		jobs = 64
	}
	k := bench.DCT()
	res, err := k.Compile()
	if err != nil {
		return nil, err
	}
	return systemSweep(k.Name, res, netlist.Config{BusElems: k.BusElems}, jobs, workers, func(rng *rand.Rand) map[string][]int64 {
		in := make([]int64, 64)
		for i := range in {
			in[i] = rng.Int63n(255) - 128
		}
		return map[string][]int64{"X": in}
	})
}

func systemSweep(name string, res *core.Result, cfg netlist.Config, jobs, workers int,
	gen func(*rand.Rand) map[string][]int64) (*SweepResult, error) {
	pool, err := netlist.NewSystemPool(res.Kernel, res.Datapath, cfg, workers)
	if err != nil {
		return nil, err
	}
	defer pool.Close()

	batch := make([]netlist.Job, jobs)
	for i := range batch {
		batch[i] = netlist.Job{Inputs: gen(rand.New(rand.NewSource(int64(i + 1))))}
	}

	// Serial path: one System, one stream at a time.
	sys, err := pool.Get()
	if err != nil {
		return nil, err
	}
	serialOuts := make([]map[string][]int64, jobs)
	var cycles int64
	serialStart := time.Now()
	for i := range batch {
		sys.Reset()
		for arr, vals := range batch[i].Inputs {
			if err := sys.LoadInput(arr, vals); err != nil {
				return nil, err
			}
		}
		if _, err := sys.Run(); err != nil {
			return nil, err
		}
		cycles += int64(sys.Cycles())
		outs := map[string][]int64{}
		for _, wr := range res.Kernel.Writes {
			o, err := sys.Output(wr.Arr.Name)
			if err != nil {
				return nil, err
			}
			outs[wr.Arr.Name] = o
		}
		serialOuts[i] = outs
	}
	serial := time.Since(serialStart)
	pool.Put(sys)

	// Sharded path: the same streams across the pool's worker crew. The
	// untimed first batch is the warm-up — it spawns the workers, fills
	// the pool and allocates the per-job output buffers — so the timed
	// batch measures the steady state the benchmarks gate.
	if err := pool.RunBatch(batch); err != nil {
		return nil, err
	}
	shardedStart := time.Now()
	if err := pool.RunBatch(batch); err != nil {
		return nil, err
	}
	sharded := time.Since(shardedStart)

	var shardedCycles int64
	for i := range batch {
		shardedCycles += int64(batch[i].Cycles)
		for arr, want := range serialOuts[i] {
			got := batch[i].Outputs[arr]
			if len(got) != len(want) {
				return nil, fmt.Errorf("exp: sweep job %d: %s has %d elements sharded, %d serial", i, arr, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					return nil, fmt.Errorf("exp: sweep job %d: %s[%d] = %d sharded, %d serial", i, arr, j, got[j], want[j])
				}
			}
		}
	}
	if shardedCycles != cycles {
		return nil, fmt.Errorf("exp: sweep cycle mismatch: %d sharded, %d serial", shardedCycles, cycles)
	}
	r := &SweepResult{
		Kernel:  name,
		Jobs:    jobs,
		Workers: pool.Workers(),
		Serial:  serial,
		Sharded: sharded,
		Cycles:  cycles,
	}
	if sharded > 0 {
		r.Speedup = float64(serial) / float64(sharded)
	}
	return r, nil
}

// FormatSweeps renders sweep results.
func FormatSweeps(rs []*SweepResult) string {
	var b strings.Builder
	b.WriteString("Batch sweep: independent input streams, serial vs sharded SystemPool\n")
	fmt.Fprintf(&b, "%-10s %6s %8s %12s %12s %9s %10s\n",
		"kernel", "jobs", "workers", "serial", "sharded", "speedup", "cycles")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-10s %6d %8d %12s %12s %8.2fx %10d\n",
			r.Kernel, r.Jobs, r.Workers, r.Serial.Round(time.Microsecond),
			r.Sharded.Round(time.Microsecond), r.Speedup, r.Cycles)
	}
	return b.String()
}
