package calib

import (
	"errors"
	"reflect"
	"testing"

	"roccc/internal/bench"
	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/netlist"
)

// firSource is an array-streaming kernel for the input-schedule tests
// (mul_acc is scalar-driven, so it exercises the empty-Reads path).
const firSource = `
int A[64];
int B[64];
void fir(void) {
	int i;
	for (i = 0; i < 62; i++) {
		B[i] = A[i] + 2*A[i+1] + A[i+2];
	}
}
`

func compileFir(t *testing.T) (*core.Result, netlist.Config) {
	t.Helper()
	res, err := core.CompileSource(firSource, "fir", core.DefaultOptions())
	if err != nil {
		t.Fatalf("compile fir: %v", err)
	}
	return res, netlist.Config{BusElems: 1}
}

func compileMulAcc(t *testing.T) (*core.Result, netlist.Config) {
	t.Helper()
	k := bench.MulAcc()
	res, err := core.CompileSource(k.Source, k.Func, k.Options)
	if err != nil {
		t.Fatalf("compile mul_acc: %v", err)
	}
	return res, netlist.Config{BusElems: k.BusElems, Scalars: k.Scalars}
}

// A trial must measure every backend exactly once (interp first, the
// dp.Backends order), report the configured backend verbatim, and pick
// a backend it actually sampled.
func TestTrialCoversEveryBackend(t *testing.T) {
	res, cfg := compileFir(t)
	r, err := Trial("fir", res.Kernel, res.Datapath, cfg, nil, Options{Warmup: 1, Reps: 1, Iters: 1})
	if err != nil {
		t.Fatalf("Trial: %v", err)
	}
	backends := dp.Backends()
	if len(r.Samples) != len(backends) {
		t.Fatalf("got %d samples, want %d", len(r.Samples), len(backends))
	}
	picked := false
	for i, b := range backends {
		if r.Samples[i].Backend != b.String() {
			t.Errorf("sample %d is %q, want %q", i, r.Samples[i].Backend, b)
		}
		if r.Samples[i].NsPerIter <= 0 {
			t.Errorf("sample %d ns/iter = %v, want > 0", i, r.Samples[i].NsPerIter)
		}
		if r.Picked == b.String() {
			picked = true
			if r.PickedBackend != b {
				t.Errorf("PickedBackend = %v, Picked = %q", r.PickedBackend, r.Picked)
			}
		}
	}
	if !picked {
		t.Errorf("picked %q is not a measured backend", r.Picked)
	}
	if r.Configured != cfg.Backend.String() {
		t.Errorf("Configured = %q, want %q", r.Configured, cfg.Backend)
	}
	if r.Kernel != "fir" {
		t.Errorf("Kernel = %q", r.Kernel)
	}
}

// An absurdly high noise floor means no challenger can ever clear it:
// the configured backend must keep the seat regardless of timings.
func TestTrialNoiseFloorKeepsConfigured(t *testing.T) {
	res, cfg := compileMulAcc(t)
	for _, b := range dp.Backends() {
		c := cfg
		c.Backend = b
		r, err := Trial("mul_acc", res.Kernel, res.Datapath, c, nil, Options{Warmup: 1, Reps: 1, Iters: 1, NoiseFloor: 1e9})
		if err != nil {
			t.Fatalf("Trial on %v: %v", b, err)
		}
		if r.Switched || r.Picked != b.String() || r.PickedBackend != b {
			t.Errorf("configured %v: picked %q switched=%v, want the incumbent", b, r.Picked, r.Switched)
		}
	}
}

// A combinational kernel cannot stream, so a trial must fail with the
// netlist sentinel rather than a panic or a silent zero result.
func TestTrialCombinationalKernel(t *testing.T) {
	k := bench.BitCorrelator()
	res, err := core.CompileSource(k.Source, k.Func, k.Options)
	if err != nil {
		t.Fatalf("compile %s: %v", k.Name, err)
	}
	_, err = Trial(k.Name, res.Kernel, res.Datapath, netlist.Config{BusElems: k.BusElems}, nil, Options{})
	if !errors.Is(err, netlist.ErrCombinational) {
		t.Fatalf("Trial error = %v, want ErrCombinational", err)
	}
}

// The fixed input schedule is the whole point: identical across calls
// at the same seed, strictly positive so dividers cannot fault, and
// sized to the kernel's input arrays.
func TestInputsForDeterministicAndPositive(t *testing.T) {
	res, _ := compileFir(t)
	a := InputsFor(res.Kernel, DefaultSeed)
	b := InputsFor(res.Kernel, DefaultSeed)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("fir has input arrays; schedule is empty")
	}
	for name, vals := range a {
		for i, v := range vals {
			if v < 1 || v > 96 {
				t.Fatalf("%s[%d] = %d, want [1, 96]", name, i, v)
			}
		}
	}
	c := InputsFor(res.Kernel, DefaultSeed+1)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// Feeds are name-sorted so the timed loop's load order is stable.
func TestFeedsForSorted(t *testing.T) {
	feeds := FeedsFor(map[string][]int64{"c": {3}, "a": {1}, "b": {2}})
	want := []string{"a", "b", "c"}
	if len(feeds) != len(want) {
		t.Fatalf("got %d feeds, want %d", len(feeds), len(want))
	}
	for i, name := range want {
		if feeds[i].Name != name {
			t.Errorf("feed %d is %q, want %q", i, feeds[i].Name, name)
		}
	}
}

// The defaults must resolve once and be idempotent.
func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Warmup != 2 || o.Reps != 3 || o.Iters != 4 || o.NoiseFloor != 0.10 {
		t.Fatalf("defaults = %+v", o)
	}
	if got := (Options{NoiseFloor: -1}).withDefaults().NoiseFloor; got != 0 {
		t.Fatalf("negative NoiseFloor resolved to %v, want 0 (guard disabled)", got)
	}
}
