// Package calib is the backend calibration plane: it measures one
// compiled kernel on every dp.Backend with a fixed, deterministic input
// schedule and picks the fastest, so a serving stack can stop trusting
// a hand-set KernelSpec.Backend and route traffic to whatever actually
// wins on the machine it runs on.
//
// The paper's pitch is compile-time selection of the best datapath
// implementation per kernel; the runtime equivalent is this trial
// runner. The codegen benches showed the win is kernel-shaped — cone
// vectorization takes mul_acc ~2x but does nothing for fig3 — so a
// global -backend flag always leaves throughput on the table somewhere.
//
// Correctness is not calibration's problem by construction: every
// backend is pinned bit-identical to the interpreter reference
// (outputs, feedback latches, cycle counts, fault abort cycles) by the
// dp backend differential matrix, and exp.FleetSweep's calibrated mode
// re-proves the whole serving stack end to end. A trial only ever
// changes how fast the same answer arrives.
//
// Measurement discipline:
//
//   - fixed input schedule: InputsFor derives every input array from a
//     deterministic splitmix64 stream of strictly positive values, so a
//     trial can never trip a divide-by-zero fault and two trials of the
//     same kernel measure identical work;
//   - warmup + timed reps: each backend runs Warmup iterations unmeasured
//     (plan-cache compilation, branch predictors, pool-free allocations
//     all land there), then Reps timed repetitions of Iters iterations;
//     the per-backend figure is the minimum ns/iter across reps — the
//     standard noise-robust estimator;
//   - noise-floor guard: a challenger must beat the configured backend
//     by more than NoiseFloor (relative) to win. Ties and within-noise
//     wins keep the configured backend, so repeated recalibration does
//     not flap pools on measurement jitter.
package calib

import (
	"fmt"
	"math"
	"sort"
	"time"

	"roccc/internal/dp"
	"roccc/internal/hir"
	"roccc/internal/netlist"
)

// Options bounds one calibration trial. The zero value selects the
// defaults, so callers can pass Options{} and get sane behavior.
type Options struct {
	// Warmup iterations per backend, run unmeasured (default 2).
	Warmup int
	// Reps is the number of timed repetitions per backend; the minimum
	// wins (default 3).
	Reps int
	// Iters is the iterations per timed repetition (default 4).
	Iters int
	// NoiseFloor is the relative margin a challenger must clear over the
	// configured backend: picked != configured only when
	// configured_ns > fastest_ns * (1 + NoiseFloor). Default 0.10.
	// Negative disables the guard (any strict win switches).
	NoiseFloor float64
}

// withDefaults resolves the zero value to the documented defaults.
func (o Options) withDefaults() Options {
	if o.Warmup <= 0 {
		o.Warmup = 2
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if o.Iters <= 0 {
		o.Iters = 4
	}
	if o.NoiseFloor == 0 {
		o.NoiseFloor = 0.10
	}
	if o.NoiseFloor < 0 {
		o.NoiseFloor = 0
	}
	return o
}

// Sample is one backend's measured cost for a kernel: the minimum
// nanoseconds per full System.Run iteration across the trial's timed
// repetitions. The metrics plane serializes samples verbatim, so
// /metrics consumers see the raw numbers behind every pick.
type Sample struct {
	Backend   string  `json:"backend"`
	NsPerIter float64 `json:"ns_per_iter"`
}

// Result is one kernel's calibration verdict.
type Result struct {
	Kernel string `json:"kernel"`
	// Configured is the backend the trial defended (the spec's, or the
	// previous pick on recalibration); Picked is the winner.
	Configured string `json:"configured"`
	Picked     string `json:"picked"`
	// Switched reports Picked != Configured past the noise floor — the
	// caller should rebuild pools onto PickedBackend.
	Switched bool `json:"switched"`
	// Samples carries every backend's ns/iter, interp first.
	Samples []Sample `json:"samples"`

	// PickedBackend is Picked as a typed value (not serialized; the
	// string form travels the metrics plane).
	PickedBackend dp.Backend `json:"-"`
}

// Feed is one input array of the trial's fixed schedule. Trials
// pre-resolve the input map into a slice so the timed loop never
// iterates a map (see RunIters).
type Feed struct {
	Name string
	Vals []int64
}

// FeedsFor flattens an input map into name-sorted Feeds.
func FeedsFor(inputs map[string][]int64) []Feed {
	feeds := make([]Feed, 0, len(inputs))
	for name, vals := range inputs {
		feeds = append(feeds, Feed{Name: name, Vals: vals})
	}
	sort.Slice(feeds, func(i, j int) bool { return feeds[i].Name < feeds[j].Name })
	return feeds
}

// InputsFor generates the kernel's fixed input schedule: every input
// array filled from a deterministic splitmix64 stream of values in
// [1, 96] — strictly positive, so divider kernels cannot fault
// mid-trial and the measured work is identical across runs and
// backends.
func InputsFor(k *hir.Kernel, seed uint64) map[string][]int64 {
	rng := seed
	inputs := make(map[string][]int64, len(k.Reads))
	for _, w := range k.Reads {
		vals := make([]int64, w.Arr.Len())
		for i := range vals {
			vals[i] = int64(splitmix64(&rng)%96) + 1
		}
		inputs[w.Arr.Name] = vals
	}
	return inputs
}

// DefaultSeed is the trial input schedule's seed when the caller does
// not bring inputs of its own.
const DefaultSeed = 0x05ca11b

// RunIters is the trial's timed region: iters full streaming runs —
// Reset, input load, Run — on one System. It is the only code inside
// the ns/iter measurement, so it must not allocate or format; the input
// map is pre-flattened into feeds precisely so this loop ranges a slice
// instead of hashing a map per iteration.
//
//roccc:hotpath
func RunIters(sys *netlist.System, feeds []Feed, iters int) error {
	for i := 0; i < iters; i++ {
		sys.Reset()
		for j := range feeds {
			if err := sys.LoadInput(feeds[j].Name, feeds[j].Vals); err != nil {
				return err
			}
		}
		if _, err := sys.Run(); err != nil {
			return err
		}
	}
	return nil
}

// Trial measures the kernel on every execution backend and returns the
// pick. cfg is the serving configuration (bus width, scalars) with
// cfg.Backend naming the backend the trial defends — the incumbent a
// challenger must beat past the noise floor. inputs may be nil, in
// which case the fixed InputsFor schedule is used. A kernel that cannot
// stream (no loop nest) fails with netlist.ErrCombinational inside the
// error.
func Trial(name string, k *hir.Kernel, d *dp.Datapath, cfg netlist.Config, inputs map[string][]int64, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if inputs == nil {
		inputs = InputsFor(k, DefaultSeed)
	}
	feeds := FeedsFor(inputs)
	res := &Result{Kernel: name, Configured: cfg.Backend.String()}

	backends := dp.Backends()
	ns := make([]float64, len(backends))
	for bi, b := range backends {
		c := cfg
		c.Backend = b
		sys, err := netlist.NewSystem(k, d, c)
		if err != nil {
			return nil, fmt.Errorf("calib: %s on %v: %w", name, b, err)
		}
		if err := RunIters(sys, feeds, opt.Warmup); err != nil {
			return nil, fmt.Errorf("calib: %s on %v (warmup): %w", name, b, err)
		}
		best := math.Inf(1)
		for rep := 0; rep < opt.Reps; rep++ {
			start := time.Now()
			if err := RunIters(sys, feeds, opt.Iters); err != nil {
				return nil, fmt.Errorf("calib: %s on %v: %w", name, b, err)
			}
			if got := float64(time.Since(start)) / float64(opt.Iters); got < best {
				best = got
			}
		}
		ns[bi] = best
		res.Samples = append(res.Samples, Sample{Backend: b.String(), NsPerIter: best})
	}

	// Pick: fastest overall, but the configured backend keeps the seat
	// unless a challenger clears the noise floor.
	confNs := math.Inf(1)
	fastest, fastestNs := cfg.Backend, math.Inf(1)
	for bi, b := range backends {
		if b == cfg.Backend {
			confNs = ns[bi]
		}
		if ns[bi] < fastestNs {
			fastest, fastestNs = b, ns[bi]
		}
	}
	pick := cfg.Backend
	if fastest != cfg.Backend && confNs > fastestNs*(1+opt.NoiseFloor) {
		pick = fastest
		res.Switched = true
	}
	res.Picked = pick.String()
	res.PickedBackend = pick
	return res, nil
}

// splitmix64 advances the state and returns the next 64 random bits
// (Steele, Lea, Flood — deterministic, seedable, alloc-free).
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
